//! The TPM 1.2 command engine.
//!
//! [`Tpm::execute`] takes a raw command byte stream at a locality and
//! returns the raw response — the same interface a hardware TPM's TIS
//! buffer exposes, and exactly what the vTPM layer forwards. All parsing,
//! authorization, and state mutation happens here.

use tpm_crypto::drbg::Drbg;
use tpm_crypto::rsa::RsaPrivateKey;
use tpm_crypto::sha1;

use crate::buffer::{BufError, Reader, Writer};
use crate::counter::{CounterError, CounterStore};
use crate::keys::{self, KeyBlob, KeyError, KeyStore, LoadedKey};
use crate::nv::{NvAttributes, NvError, NvStore};
use crate::pcr::{PcrBank, PcrSelection};
use crate::session::{
    out_param_digest, param_digest, AuthCheck, SessionTable,
};
use crate::types::{entity, handle, ordinal, rc, tag, KeyUsage, DIGEST_LEN, NUM_PCRS};

/// Manufacturing/runtime parameters of a TPM instance.
#[derive(Debug, Clone)]
pub struct TpmConfig {
    /// Modulus bits for the EK and SRK. 1024 keeps simulations fast while
    /// exercising identical code paths to 2048-bit production chips.
    pub root_key_bits: usize,
    /// Default modulus bits for created (child) keys.
    pub child_key_bits: usize,
    /// Loaded-key slots.
    pub key_slots: usize,
    /// Concurrent auth sessions.
    pub session_slots: usize,
    /// NV storage budget in bytes.
    pub nv_budget: usize,
}

impl Default for TpmConfig {
    fn default() -> Self {
        TpmConfig {
            root_key_bits: 1024,
            child_key_bits: 512,
            key_slots: 10,
            session_slots: 16,
            nv_budget: 2048,
        }
    }
}

/// A software TPM 1.2.
pub struct Tpm {
    cfg: TpmConfig,
    rng: Drbg,
    started: bool,
    owned: bool,
    owner_auth: [u8; DIGEST_LEN],
    /// Secret proof value mixed into sealed blobs so only this TPM can
    /// unseal them (TPM_PERMANENT_DATA.tpmProof).
    tpm_proof: [u8; DIGEST_LEN],
    ek: RsaPrivateKey,
    srk: Option<LoadedKey>,
    pcrs: PcrBank,
    keys: KeyStore,
    sessions: SessionTable,
    nv: NvStore,
    counters: CounterStore,
    /// Count of commands executed (diagnostics / experiments).
    pub commands_executed: u64,
    /// Bumped on every mutation of *permanent* state (the part
    /// `serialize_state` captures). Lets callers skip re-serialization
    /// and mirroring when a command touched only transient state.
    state_generation: u64,
}

/// A parsed authorization trailer.
#[derive(Debug, Clone, Copy)]
struct AuthBlock {
    handle: u32,
    nonce_odd: [u8; 20],
    continue_session: bool,
    auth: [u8; 20],
}

const AUTH_BLOCK_LEN: usize = 4 + 20 + 1 + 20;
const HEADER_LEN: usize = 2 + 4 + 4;

fn parse_auth_block(data: &[u8]) -> Result<AuthBlock, BufError> {
    let mut r = Reader::new(data);
    Ok(AuthBlock {
        handle: r.u32()?,
        nonce_odd: r.digest()?,
        continue_session: r.u8()? != 0,
        auth: r.digest()?,
    })
}

/// The sealed-data blob produced by TPM_Seal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedBlob {
    /// Optional PCR binding: selection and digest-at-release.
    pub pcr_binding: Option<(PcrSelection, [u8; DIGEST_LEN])>,
    /// OAEP ciphertext: tpmProof || dataAuth || sized data.
    pub enc_data: Vec<u8>,
}

/// OAEP label for sealed blobs.
const SEAL_LABEL: &[u8] = b"TCPA";

impl SealedBlob {
    /// Wire encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(32 + self.enc_data.len());
        match &self.pcr_binding {
            Some((sel, digest)) => {
                w.u8(1);
                w.bytes(&sel.encode());
                w.bytes(digest);
            }
            None => {
                w.u8(0);
            }
        }
        w.sized_u32(&self.enc_data);
        w.into_vec()
    }

    /// Wire decoding; returns the blob and bytes consumed.
    pub fn decode(data: &[u8]) -> Result<(Self, usize), BufError> {
        let mut r = Reader::new(data);
        let pcr_binding = if r.u8()? == 1 {
            let (sel, used) =
                PcrSelection::decode(&data[r.position()..]).ok_or(BufError::BadLength)?;
            r.bytes(used)?;
            Some((sel, r.digest()?))
        } else {
            None
        };
        let enc_data = r.sized_u32()?.to_vec();
        Ok((SealedBlob { pcr_binding, enc_data }, r.position()))
    }
}

impl Tpm {
    /// Manufacture a TPM: generates the EK and the tpmProof from `seed`.
    /// Deterministic for a given seed, so experiments replay identically.
    pub fn manufacture(seed: &[u8], cfg: TpmConfig) -> Self {
        let mut rng = Drbg::new(seed);
        let ek = RsaPrivateKey::generate(cfg.root_key_bits, &mut rng);
        let mut tpm_proof = [0u8; DIGEST_LEN];
        rng.fill_bytes(&mut tpm_proof);
        Tpm {
            keys: KeyStore::new(cfg.key_slots),
            sessions: SessionTable::new(cfg.session_slots),
            nv: NvStore::new(cfg.nv_budget),
            counters: CounterStore::new(4),
            cfg,
            rng,
            started: false,
            owned: false,
            owner_auth: [0; DIGEST_LEN],
            tpm_proof,
            ek,
            srk: None,
            pcrs: PcrBank::new(),
            commands_executed: 0,
            state_generation: 0,
        }
    }

    /// Manufacture with default config.
    pub fn new(seed: &[u8]) -> Self {
        Self::manufacture(seed, TpmConfig::default())
    }

    /// The configuration this TPM was manufactured with.
    pub fn config(&self) -> &TpmConfig {
        &self.cfg
    }

    /// Whether TPM_Startup has run.
    pub fn is_started(&self) -> bool {
        self.started
    }

    /// Whether the TPM has an owner (and hence an SRK).
    pub fn is_owned(&self) -> bool {
        self.owned
    }

    /// Generation of the permanent state. Unchanged between two calls
    /// means `serialize_state` would return identical bytes; callers use
    /// this to elide snapshot + mirror work after read-only commands.
    pub fn state_generation(&self) -> u64 {
        self.state_generation
    }

    /// Record a permanent-state mutation.
    #[inline]
    fn touch_state(&mut self) {
        self.state_generation += 1;
    }

    /// Direct PCR access for platform code (the simulated BIOS/bootloader
    /// measures into PCRs without the command interface, as real
    /// pre-OS firmware effectively does via hardware localities).
    pub fn pcrs_mut(&mut self) -> &mut PcrBank {
        // Conservative: hand-out of mutable PCR access counts as a
        // mutation even if the caller ends up not writing.
        self.touch_state();
        &mut self.pcrs
    }

    /// Read-only PCR access.
    pub fn pcrs(&self) -> &PcrBank {
        &self.pcrs
    }

    /// Pre-provision an NV area with data, bypassing authorization — the
    /// manufacturing path vendors use to install EK certificates, and the
    /// path the benchmark harness uses to grow instance state.
    pub fn provision_nv(&mut self, index: u32, data: &[u8]) -> Result<(), NvError> {
        self.nv.define(
            index,
            data.len(),
            NvAttributes { owner_write: false, ..Default::default() },
        )?;
        self.nv.write(index, 0, data, true)?;
        self.touch_state();
        Ok(())
    }

    /// Release a provisioned NV area (the companion of `provision_nv`,
    /// used by the harness to shrink instance state again).
    pub fn release_nv(&mut self, index: u32) -> Result<(), NvError> {
        self.nv.release(index)?;
        self.touch_state();
        Ok(())
    }

    /// Read-only NV store view (diagnostics and the differential-testing
    /// oracle, which diffs final NV contents against a reference model).
    pub fn nv(&self) -> &NvStore {
        &self.nv
    }

    /// Read-only counter-table view (same callers as [`Tpm::nv`]).
    pub fn counters(&self) -> &CounterStore {
        &self.counters
    }

    /// Toolstack path: create a monotonic counter without the wire-format
    /// authorization plumbing (companion of [`Tpm::provision_nv`]).
    pub fn create_counter(&mut self, auth: [u8; DIGEST_LEN], label: [u8; 4]) -> Result<u32, CounterError> {
        let handle = self.counters.create(auth, label)?;
        self.touch_state();
        Ok(handle)
    }

    /// Toolstack path: increment a counter; returns the new value.
    pub fn increment_counter(&mut self, handle: u32) -> Result<u32, CounterError> {
        let value = self.counters.increment(handle)?;
        self.touch_state();
        Ok(value)
    }

    /// TPM-internal OAEP decryption with the EK.
    ///
    /// Models the endorsement-key operations the 1.2 migration commands
    /// (TPM_CreateMigrationBlob family) perform inside the chip: the EK
    /// private half never leaves the TPM; callers hand in ciphertext and
    /// get plaintext. The vTPM migration protocol binds packages to the
    /// destination platform through this.
    pub fn ek_decrypt_oaep(&self, ciphertext: &[u8]) -> Result<Vec<u8>, tpm_crypto::RsaError> {
        self.ek.decrypt_oaep(ciphertext, b"TCPA")
    }

    /// The EK public key (freely readable, as via TPM_ReadPubek).
    pub fn ek_public(&self) -> tpm_crypto::RsaPublicKey {
        self.ek.public.clone()
    }

    // ---- state-snapshot plumbing (used by the `state` module) -------------

    /// Owner auth secret (crate-internal: snapshots only).
    pub(crate) fn owner_auth_ref(&self) -> &[u8; DIGEST_LEN] {
        &self.owner_auth
    }

    /// tpmProof (crate-internal: snapshots only).
    pub(crate) fn tpm_proof_ref(&self) -> &[u8; DIGEST_LEN] {
        &self.tpm_proof
    }

    /// EK (crate-internal: snapshots only).
    pub(crate) fn ek_ref(&self) -> &RsaPrivateKey {
        &self.ek
    }

    /// SRK (crate-internal: snapshots only).
    pub(crate) fn srk_ref(&self) -> Option<&LoadedKey> {
        self.srk.as_ref()
    }

    /// NV store (crate-internal: snapshots only).
    pub(crate) fn nv_ref(&self) -> &NvStore {
        &self.nv
    }

    /// Mutable NV store (crate-internal: snapshot restore).
    pub(crate) fn nv_mut(&mut self) -> &mut NvStore {
        self.touch_state();
        &mut self.nv
    }

    /// Counter store (crate-internal: snapshots only).
    pub(crate) fn counters_ref(&self) -> &CounterStore {
        &self.counters
    }

    /// Mutable counter store (crate-internal: snapshot restore).
    pub(crate) fn counters_mut(&mut self) -> &mut CounterStore {
        self.touch_state();
        &mut self.counters
    }

    /// Assemble a TPM from restored permanent state.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        cfg: TpmConfig,
        seed: &[u8],
        started: bool,
        owned: bool,
        owner_auth: [u8; DIGEST_LEN],
        tpm_proof: [u8; DIGEST_LEN],
        ek: RsaPrivateKey,
        srk: Option<LoadedKey>,
        pcrs: PcrBank,
    ) -> Self {
        Tpm {
            keys: KeyStore::new(cfg.key_slots),
            sessions: SessionTable::new(cfg.session_slots),
            nv: NvStore::new(cfg.nv_budget),
            counters: CounterStore::new(4),
            cfg,
            rng: Drbg::new(seed),
            started,
            owned,
            owner_auth,
            tpm_proof,
            ek,
            srk,
            pcrs,
            commands_executed: 0,
            state_generation: 0,
        }
    }

    /// Execute one command at `locality`, producing the response bytes.
    pub fn execute(&mut self, locality: u8, request: &[u8]) -> Vec<u8> {
        self.commands_executed += 1;
        match self.execute_inner(locality, request) {
            Ok(resp) => resp,
            Err(code) => error_response(code),
        }
    }

    fn execute_inner(&mut self, locality: u8, request: &[u8]) -> Result<Vec<u8>, u32> {
        if request.len() < HEADER_LEN {
            return Err(rc::BAD_PARAM_SIZE);
        }
        let mut r = Reader::new(request);
        let tag_v = r.u16().map_err(|_| rc::BAD_PARAM_SIZE)?;
        let size = r.u32().map_err(|_| rc::BAD_PARAM_SIZE)? as usize;
        let ord = r.u32().map_err(|_| rc::BAD_PARAM_SIZE)?;
        if size != request.len() {
            return Err(rc::BAD_PARAM_SIZE);
        }

        // Startup gating: only Startup is allowed before Startup.
        if !self.started && ord != ordinal::STARTUP {
            return Err(rc::INVALID_POSTINIT);
        }

        let n_auth = match tag_v {
            tag::RQU_COMMAND => 0usize,
            tag::RQU_AUTH1_COMMAND => 1,
            tag::RQU_AUTH2_COMMAND => 2,
            _ => return Err(rc::BADTAG),
        };
        let trailer = n_auth * AUTH_BLOCK_LEN;
        if request.len() < HEADER_LEN + trailer {
            return Err(rc::BAD_PARAM_SIZE);
        }
        let params = &request[HEADER_LEN..request.len() - trailer];
        let auth1 = if n_auth >= 1 {
            Some(
                parse_auth_block(&request[request.len() - trailer..])
                    .map_err(|_| rc::BAD_PARAM_SIZE)?,
            )
        } else {
            None
        };
        let auth2 = if n_auth == 2 {
            Some(
                parse_auth_block(&request[request.len() - AUTH_BLOCK_LEN..])
                    .map_err(|_| rc::BAD_PARAM_SIZE)?,
            )
        } else {
            None
        };

        match ord {
            ordinal::STARTUP => self.cmd_startup(params),
            ordinal::GET_RANDOM => self.cmd_get_random(params),
            ordinal::PCR_READ => self.cmd_pcr_read(params),
            ordinal::EXTEND => self.cmd_extend(params),
            ordinal::PCR_RESET => self.cmd_pcr_reset(params, locality),
            ordinal::OIAP => self.cmd_oiap(params),
            ordinal::OSAP => self.cmd_osap(params),
            ordinal::READ_PUBEK => self.cmd_read_pubek(params),
            ordinal::GET_CAPABILITY => self.cmd_get_capability(params),
            ordinal::FLUSH_SPECIFIC => self.cmd_flush_specific(params),
            ordinal::SAVE_STATE => Ok(simple_response(rc::SUCCESS, &[])),
            ordinal::TAKE_OWNERSHIP => {
                self.cmd_take_ownership(params, auth1.ok_or(rc::AUTHFAIL)?, ord)
            }
            ordinal::OWNER_CLEAR => self.cmd_owner_clear(params, auth1.ok_or(rc::AUTHFAIL)?, ord),
            ordinal::CREATE_WRAP_KEY => {
                self.cmd_create_wrap_key(params, auth1.ok_or(rc::AUTHFAIL)?, ord)
            }
            ordinal::LOAD_KEY2 => self.cmd_load_key2(params, auth1.ok_or(rc::AUTHFAIL)?, ord),
            ordinal::SEAL => self.cmd_seal(params, auth1.ok_or(rc::AUTHFAIL)?, ord),
            ordinal::UNSEAL => self.cmd_unseal(
                params,
                auth1.ok_or(rc::AUTHFAIL)?,
                auth2.ok_or(rc::AUTHFAIL)?,
                ord,
            ),
            ordinal::QUOTE => self.cmd_quote(params, auth1.ok_or(rc::AUTHFAIL)?, ord),
            ordinal::SIGN => self.cmd_sign(params, auth1.ok_or(rc::AUTHFAIL)?, ord),
            ordinal::NV_DEFINE_SPACE => {
                self.cmd_nv_define(params, auth1.ok_or(rc::AUTHFAIL)?, ord)
            }
            ordinal::NV_WRITE_VALUE => self.cmd_nv_write(params, auth1, ord),
            ordinal::NV_READ_VALUE => self.cmd_nv_read(params, auth1, ord),
            ordinal::CREATE_COUNTER => {
                self.cmd_create_counter(params, auth1.ok_or(rc::AUTHFAIL)?, ord)
            }
            ordinal::INCREMENT_COUNTER => {
                self.cmd_increment_counter(params, auth1.ok_or(rc::AUTHFAIL)?, ord)
            }
            ordinal::READ_COUNTER => self.cmd_read_counter(params),
            ordinal::RELEASE_COUNTER => {
                self.cmd_release_counter(params, auth1.ok_or(rc::AUTHFAIL)?, ord)
            }
            _ => Err(rc::BAD_ORDINAL),
        }
    }

    // ---- unauthorized commands ---------------------------------------------

    fn cmd_startup(&mut self, params: &[u8]) -> Result<Vec<u8>, u32> {
        let mut r = Reader::new(params);
        let startup_type = r.u16().map_err(|_| rc::BAD_PARAM_SIZE)?;
        match startup_type {
            // TPM_ST_CLEAR
            0x0001 => {
                self.pcrs = PcrBank::new();
                self.keys.clear();
                self.sessions.clear();
                self.counters.startup();
                self.started = true;
                self.touch_state();
                Ok(simple_response(rc::SUCCESS, &[]))
            }
            // TPM_ST_STATE — resume (vTPM resume path keeps PCRs).
            0x0002 => {
                self.sessions.clear();
                self.counters.startup();
                if !self.started {
                    self.started = true;
                    self.touch_state();
                }
                Ok(simple_response(rc::SUCCESS, &[]))
            }
            _ => Err(rc::BAD_PARAMETER),
        }
    }

    fn cmd_get_random(&mut self, params: &[u8]) -> Result<Vec<u8>, u32> {
        let mut r = Reader::new(params);
        let n = r.u32().map_err(|_| rc::BAD_PARAM_SIZE)? as usize;
        // The spec caps output at what the internal buffer holds.
        let n = n.min(4096);
        let bytes = self.rng.bytes(n);
        let mut out = Writer::with_capacity(4 + n);
        out.sized_u32(&bytes);
        Ok(simple_response(rc::SUCCESS, out.as_slice()))
    }

    fn cmd_pcr_read(&mut self, params: &[u8]) -> Result<Vec<u8>, u32> {
        let mut r = Reader::new(params);
        let idx = r.u32().map_err(|_| rc::BAD_PARAM_SIZE)? as usize;
        let v = self.pcrs.read(idx).ok_or(rc::BADINDEX)?;
        Ok(simple_response(rc::SUCCESS, &v))
    }

    fn cmd_extend(&mut self, params: &[u8]) -> Result<Vec<u8>, u32> {
        let mut r = Reader::new(params);
        let idx = r.u32().map_err(|_| rc::BAD_PARAM_SIZE)? as usize;
        let digest = r.digest().map_err(|_| rc::BAD_PARAM_SIZE)?;
        let v = self.pcrs.extend(idx, &digest).ok_or(rc::BADINDEX)?;
        self.touch_state();
        Ok(simple_response(rc::SUCCESS, &v))
    }

    fn cmd_pcr_reset(&mut self, params: &[u8], locality: u8) -> Result<Vec<u8>, u32> {
        let (sel, _) = PcrSelection::decode(params).ok_or(rc::BAD_PARAM_SIZE)?;
        for i in sel.indices() {
            if !self.pcrs.reset(i, locality) {
                return Err(rc::BAD_LOCALITY);
            }
        }
        self.touch_state();
        Ok(simple_response(rc::SUCCESS, &[]))
    }

    fn cmd_oiap(&mut self, _params: &[u8]) -> Result<Vec<u8>, u32> {
        let (h, nonce_even) = self.sessions.open_oiap(&mut self.rng).ok_or(rc::RESOURCES)?;
        let mut out = Writer::with_capacity(24);
        out.u32(h).bytes(&nonce_even);
        Ok(simple_response(rc::SUCCESS, out.as_slice()))
    }

    fn cmd_osap(&mut self, params: &[u8]) -> Result<Vec<u8>, u32> {
        let mut r = Reader::new(params);
        let entity_type = r.u16().map_err(|_| rc::BAD_PARAM_SIZE)?;
        let entity_value = r.u32().map_err(|_| rc::BAD_PARAM_SIZE)?;
        let nonce_odd_osap = r.digest().map_err(|_| rc::BAD_PARAM_SIZE)?;
        let (norm_entity, auth_secret) = self.entity_auth(entity_type, entity_value)?;
        let (h, nonce_even, nonce_even_osap) = self
            .sessions
            .open_osap(norm_entity.0, norm_entity.1, &auth_secret, &nonce_odd_osap, &mut self.rng)
            .ok_or(rc::RESOURCES)?;
        let mut out = Writer::with_capacity(44);
        out.u32(h).bytes(&nonce_even).bytes(&nonce_even_osap);
        Ok(simple_response(rc::SUCCESS, out.as_slice()))
    }

    fn cmd_read_pubek(&mut self, _params: &[u8]) -> Result<Vec<u8>, u32> {
        let mut out = Writer::new();
        out.sized_u32(&self.ek.public.n.to_bytes_be());
        Ok(simple_response(rc::SUCCESS, out.as_slice()))
    }

    fn cmd_get_capability(&mut self, params: &[u8]) -> Result<Vec<u8>, u32> {
        let mut r = Reader::new(params);
        let cap = r.u32().map_err(|_| rc::BAD_PARAM_SIZE)?;
        let sub = r.u32().map_err(|_| rc::BAD_PARAM_SIZE)?;
        // TPM_CAP_PROPERTY with a few TPM_CAP_PROP_* subcaps.
        let value: u32 = match (cap, sub) {
            (0x0005, 0x0101) => NUM_PCRS as u32,             // PROP_PCR
            (0x0005, 0x0102) => 0x0102,                      // PROP_MANUFACTURER-ish
            (0x0005, 0x0103) => self.cfg.key_slots as u32,   // PROP_SLOTS
            (0x0005, 0x010B) => self.owned as u32,           // owner present (custom)
            _ => return Err(rc::BAD_PARAMETER),
        };
        let mut out = Writer::new();
        out.sized_u32(&value.to_be_bytes());
        Ok(simple_response(rc::SUCCESS, out.as_slice()))
    }

    fn cmd_flush_specific(&mut self, params: &[u8]) -> Result<Vec<u8>, u32> {
        let mut r = Reader::new(params);
        let h = r.u32().map_err(|_| rc::BAD_PARAM_SIZE)?;
        let resource_type = r.u32().map_err(|_| rc::BAD_PARAM_SIZE)?;
        match resource_type {
            // TPM_RT_KEY
            0x0000_0001 => self.keys.flush(h).map_err(|_| rc::INVALID_KEYHANDLE)?,
            // TPM_RT_AUTH
            0x0000_0002 => {
                if !self.sessions.flush(h) {
                    return Err(rc::INVALID_AUTHHANDLE);
                }
            }
            _ => return Err(rc::BAD_PARAMETER),
        }
        Ok(simple_response(rc::SUCCESS, &[]))
    }

    // ---- authorized commands ------------------------------------------------

    fn cmd_take_ownership(
        &mut self,
        params: &[u8],
        auth: AuthBlock,
        ord: u32,
    ) -> Result<Vec<u8>, u32> {
        if self.owned {
            return Err(rc::OWNER_SET);
        }
        let mut r = Reader::new(params);
        let enc_owner_auth = r.sized_u32().map_err(|_| rc::BAD_PARAM_SIZE)?;
        let enc_srk_auth = r.sized_u32().map_err(|_| rc::BAD_PARAM_SIZE)?;
        let owner_auth: [u8; 20] = self
            .ek
            .decrypt_oaep(enc_owner_auth, SEAL_LABEL)
            .map_err(|_| rc::DECRYPT_ERROR)?
            .try_into()
            .map_err(|_| rc::BAD_PARAMETER)?;
        let srk_auth: [u8; 20] = self
            .ek
            .decrypt_oaep(enc_srk_auth, SEAL_LABEL)
            .map_err(|_| rc::DECRYPT_ERROR)?
            .try_into()
            .map_err(|_| rc::BAD_PARAMETER)?;

        // The auth session is keyed by the *new* owner auth.
        let digest = param_digest(ord, params);
        let key = self
            .sessions
            .resolve_key(auth.handle, (entity::OWNER, handle::OWNER), &owner_auth)
            .ok_or(rc::INVALID_AUTHHANDLE)?;
        let (check, fresh) = self.sessions.verify(
            auth.handle,
            (entity::OWNER, handle::OWNER),
            &owner_auth,
            &digest,
            &auth.nonce_odd,
            auth.continue_session,
            &auth.auth,
            &mut self.rng,
        );
        self.auth_ok(check)?;

        // Generate the SRK.
        let srk_private = RsaPrivateKey::generate(self.cfg.root_key_bits, &mut self.rng);
        let srk_pub = srk_private.public.n.to_bytes_be();
        self.srk = Some(LoadedKey {
            usage: KeyUsage::Storage,
            private: srk_private,
            usage_auth: srk_auth,
            pcr_binding: None,
        });
        self.owner_auth = owner_auth;
        self.owned = true;
        self.touch_state();

        let mut out = Writer::new();
        out.sized_u32(&srk_pub);
        Ok(auth1_response(
            rc::SUCCESS,
            ord,
            out.as_slice(),
            &key,
            &fresh.expect("verified"),
            &auth.nonce_odd,
            auth.continue_session,
        ))
    }

    fn cmd_owner_clear(
        &mut self,
        params: &[u8],
        auth: AuthBlock,
        ord: u32,
    ) -> Result<Vec<u8>, u32> {
        if !self.owned {
            return Err(rc::NOSRK);
        }
        let owner_auth = self.owner_auth;
        let (key, fresh) =
            self.check_auth1(&auth, (entity::OWNER, handle::OWNER), &owner_auth, ord, params)?;
        self.owned = false;
        self.owner_auth = [0; DIGEST_LEN];
        self.srk = None;
        self.keys.clear();
        self.touch_state();
        Ok(auth1_response(rc::SUCCESS, ord, &[], &key, &fresh, &auth.nonce_odd, auth.continue_session))
    }

    fn cmd_create_wrap_key(
        &mut self,
        params: &[u8],
        auth: AuthBlock,
        ord: u32,
    ) -> Result<Vec<u8>, u32> {
        let mut r = Reader::new(params);
        let parent_handle = r.u32().map_err(|_| rc::BAD_PARAM_SIZE)?;
        let enc_usage_auth = r.digest().map_err(|_| rc::BAD_PARAM_SIZE)?;
        let usage = KeyUsage::from_u16(r.u16().map_err(|_| rc::BAD_PARAM_SIZE)?)
            .ok_or(rc::BAD_PARAMETER)?;
        let bits = r.u32().map_err(|_| rc::BAD_PARAM_SIZE)? as usize;
        let pcr_binding = self.read_pcr_binding(&mut r, params)?;

        if !(512..=4096).contains(&bits) || !bits.is_multiple_of(2) {
            return Err(rc::BAD_PARAMETER);
        }
        let parent = self.key(parent_handle)?.clone();
        if !parent.usage.can_store() {
            return Err(rc::INVALID_KEYUSAGE);
        }
        // The new key's usageAuth arrives ADIP-encrypted: XOR with
        // SHA1(sharedSecret || nonceEven). Requires an OSAP session.
        let session = self.sessions.get(auth.handle).ok_or(rc::INVALID_AUTHHANDLE)?;
        let nonce_even_before = session.nonce_even;
        let key = self
            .sessions
            .resolve_key(auth.handle, (entity::KEYHANDLE, parent_handle), &parent.usage_auth)
            .ok_or(rc::AUTHFAIL)?;
        let (check, fresh) = self.sessions.verify(
            auth.handle,
            (entity::KEYHANDLE, parent_handle),
            &parent.usage_auth,
            &param_digest(ord, params),
            &auth.nonce_odd,
            auth.continue_session,
            &auth.auth,
            &mut self.rng,
        );
        self.auth_ok(check)?;
        let usage_auth = adip_decrypt(&key, &nonce_even_before, &enc_usage_auth);

        let blob =
            keys::create_wrap_key(&parent, usage, bits, usage_auth, pcr_binding, &mut self.rng)
                .map_err(key_rc)?;
        let mut out = Writer::new();
        out.sized_u32(&blob.encode());
        Ok(auth1_response(
            rc::SUCCESS,
            ord,
            out.as_slice(),
            &key,
            &fresh.expect("verified"),
            &auth.nonce_odd,
            auth.continue_session,
        ))
    }

    fn cmd_load_key2(&mut self, params: &[u8], auth: AuthBlock, ord: u32) -> Result<Vec<u8>, u32> {
        let mut r = Reader::new(params);
        let parent_handle = r.u32().map_err(|_| rc::BAD_PARAM_SIZE)?;
        let blob_bytes = r.sized_u32().map_err(|_| rc::BAD_PARAM_SIZE)?;
        let parent = self.key(parent_handle)?.clone();
        let parent_auth = parent.usage_auth;
        let (key, fresh) = self.check_auth1(
            &auth,
            (entity::KEYHANDLE, parent_handle),
            &parent_auth,
            ord,
            params,
        )?;
        let (blob, _) = KeyBlob::decode(blob_bytes).map_err(|_| rc::BAD_PARAMETER)?;
        let loaded = keys::unwrap_key(&parent, &blob).map_err(key_rc)?;
        let new_handle = self.keys.load(loaded).map_err(key_rc)?;
        let mut out = Writer::new();
        out.u32(new_handle);
        Ok(auth1_response(rc::SUCCESS, ord, out.as_slice(), &key, &fresh, &auth.nonce_odd, auth.continue_session))
    }

    fn cmd_seal(&mut self, params: &[u8], auth: AuthBlock, ord: u32) -> Result<Vec<u8>, u32> {
        let mut r = Reader::new(params);
        let key_handle = r.u32().map_err(|_| rc::BAD_PARAM_SIZE)?;
        let enc_data_auth = r.digest().map_err(|_| rc::BAD_PARAM_SIZE)?;
        let pcr_binding = self.read_pcr_binding(&mut r, params)?;
        let data = r.sized_u32().map_err(|_| rc::BAD_PARAM_SIZE)?.to_vec();

        let storage = self.key(key_handle)?.clone();
        if !storage.usage.can_store() {
            return Err(rc::INVALID_KEYUSAGE);
        }
        let session = self.sessions.get(auth.handle).ok_or(rc::INVALID_AUTHHANDLE)?;
        let nonce_even_before = session.nonce_even;
        let key = self
            .sessions
            .resolve_key(auth.handle, (entity::KEYHANDLE, key_handle), &storage.usage_auth)
            .ok_or(rc::AUTHFAIL)?;
        let (check, fresh) = self.sessions.verify(
            auth.handle,
            (entity::KEYHANDLE, key_handle),
            &storage.usage_auth,
            &param_digest(ord, params),
            &auth.nonce_odd,
            auth.continue_session,
            &auth.auth,
            &mut self.rng,
        );
        self.auth_ok(check)?;
        let data_auth = adip_decrypt(&key, &nonce_even_before, &enc_data_auth);

        // Payload: tpmProof || dataAuth || sized data.
        let mut payload = Writer::with_capacity(42 + data.len());
        payload.bytes(&self.tpm_proof);
        payload.bytes(&data_auth);
        payload.sized_u16(&data);
        let enc_data = storage
            .public()
            .encrypt_oaep(payload.as_slice(), SEAL_LABEL, &mut self.rng)
            .map_err(|_| rc::BAD_PARAMETER /* data too large for key */)?;
        let blob = SealedBlob { pcr_binding, enc_data };
        let mut out = Writer::new();
        out.sized_u32(&blob.encode());
        Ok(auth1_response(
            rc::SUCCESS,
            ord,
            out.as_slice(),
            &key,
            &fresh.expect("verified"),
            &auth.nonce_odd,
            auth.continue_session,
        ))
    }

    fn cmd_unseal(
        &mut self,
        params: &[u8],
        auth_key: AuthBlock,
        auth_data: AuthBlock,
        ord: u32,
    ) -> Result<Vec<u8>, u32> {
        let mut r = Reader::new(params);
        let key_handle = r.u32().map_err(|_| rc::BAD_PARAM_SIZE)?;
        let blob_bytes = r.sized_u32().map_err(|_| rc::BAD_PARAM_SIZE)?;
        let (blob, _) = SealedBlob::decode(blob_bytes).map_err(|_| rc::BAD_PARAMETER)?;
        let storage = self.key(key_handle)?.clone();

        // First session authorizes the key.
        let storage_auth = storage.usage_auth;
        let (_k1, fresh1) = self.check_auth1(
            &auth_key,
            (entity::KEYHANDLE, key_handle),
            &storage_auth,
            ord,
            params,
        )?;

        // Decrypt and validate the blob.
        let payload = storage
            .private
            .decrypt_oaep(&blob.enc_data, SEAL_LABEL)
            .map_err(|_| rc::DECRYPT_ERROR)?;
        let mut pr = Reader::new(&payload);
        let proof = pr.digest().map_err(|_| rc::DECRYPT_ERROR)?;
        let data_auth = pr.digest().map_err(|_| rc::DECRYPT_ERROR)?;
        let data = pr.sized_u16().map_err(|_| rc::DECRYPT_ERROR)?.to_vec();
        if proof != self.tpm_proof {
            // Blob sealed by a different TPM.
            return Err(rc::DECRYPT_ERROR);
        }
        if let Some((sel, digest_at_release)) = &blob.pcr_binding {
            if self.pcrs.composite_hash(sel) != *digest_at_release {
                return Err(rc::WRONGPCRVAL);
            }
        }

        // Second session proves knowledge of the data auth.
        let (key2, fresh2) = self.check_auth1(
            &auth_data,
            (entity::KEYHANDLE, key_handle),
            &data_auth,
            ord,
            params,
        )?;

        let mut out = Writer::new();
        out.sized_u32(&data);
        Ok(auth2_response(
            rc::SUCCESS,
            ord,
            out.as_slice(),
            &_k1,
            &fresh1,
            &auth_key.nonce_odd,
            auth_key.continue_session,
            &key2,
            &fresh2,
            &auth_data.nonce_odd,
            auth_data.continue_session,
        ))
    }

    fn cmd_quote(&mut self, params: &[u8], auth: AuthBlock, ord: u32) -> Result<Vec<u8>, u32> {
        let mut r = Reader::new(params);
        let key_handle = r.u32().map_err(|_| rc::BAD_PARAM_SIZE)?;
        let external_data = r.digest().map_err(|_| rc::BAD_PARAM_SIZE)?;
        let (sel, _) =
            PcrSelection::decode(&params[r.position()..]).ok_or(rc::BAD_PARAM_SIZE)?;
        let signing = self.key(key_handle)?.clone();
        if !signing.usage.can_sign() {
            return Err(rc::INVALID_KEYUSAGE);
        }
        let signing_auth = signing.usage_auth;
        let (key, fresh) =
            self.check_auth1(&auth, (entity::KEYHANDLE, key_handle), &signing_auth, ord, params)?;

        let composite = self.pcrs.composite_hash(&sel);
        let quote_info = quote_info_digest(&composite, &external_data);
        let sig = signing.private.sign_pkcs1_sha1(&quote_info).map_err(|_| rc::BAD_PARAMETER)?;

        // Response: pcrData (selection + u32 size + values) + sized sig.
        let mut out = Writer::new();
        out.bytes(&sel.encode());
        let indices = sel.indices();
        out.u32((indices.len() * DIGEST_LEN) as u32);
        for i in indices {
            out.bytes(&self.pcrs.read(i).expect("selection validated"));
        }
        out.sized_u32(&sig);
        Ok(auth1_response(rc::SUCCESS, ord, out.as_slice(), &key, &fresh, &auth.nonce_odd, auth.continue_session))
    }

    fn cmd_sign(&mut self, params: &[u8], auth: AuthBlock, ord: u32) -> Result<Vec<u8>, u32> {
        let mut r = Reader::new(params);
        let key_handle = r.u32().map_err(|_| rc::BAD_PARAM_SIZE)?;
        let data = r.sized_u32().map_err(|_| rc::BAD_PARAM_SIZE)?.to_vec();
        let signing = self.key(key_handle)?.clone();
        if !signing.usage.can_sign() {
            return Err(rc::INVALID_KEYUSAGE);
        }
        let signing_auth = signing.usage_auth;
        let (key, fresh) =
            self.check_auth1(&auth, (entity::KEYHANDLE, key_handle), &signing_auth, ord, params)?;
        let sig = signing.private.sign_pkcs1_sha1(&data).map_err(|_| rc::BAD_PARAMETER)?;
        let mut out = Writer::new();
        out.sized_u32(&sig);
        Ok(auth1_response(rc::SUCCESS, ord, out.as_slice(), &key, &fresh, &auth.nonce_odd, auth.continue_session))
    }

    fn cmd_nv_define(&mut self, params: &[u8], auth: AuthBlock, ord: u32) -> Result<Vec<u8>, u32> {
        if !self.owned {
            return Err(rc::NOSRK);
        }
        let mut r = Reader::new(params);
        let index = r.u32().map_err(|_| rc::BAD_PARAM_SIZE)?;
        let size = r.u32().map_err(|_| rc::BAD_PARAM_SIZE)? as usize;
        let attr_bits = r.u32().map_err(|_| rc::BAD_PARAM_SIZE)?;
        let owner_auth = self.owner_auth;
        let (key, fresh) =
            self.check_auth1(&auth, (entity::OWNER, handle::OWNER), &owner_auth, ord, params)?;
        let attrs = NvAttributes {
            owner_write: attr_bits & 0x1 != 0,
            owner_read: attr_bits & 0x2 != 0,
            write_once: attr_bits & 0x4 != 0,
            read_pcr: None,
        };
        self.nv.define(index, size, attrs).map_err(nv_rc)?;
        self.touch_state();
        Ok(auth1_response(rc::SUCCESS, ord, &[], &key, &fresh, &auth.nonce_odd, auth.continue_session))
    }

    fn cmd_nv_write(
        &mut self,
        params: &[u8],
        auth: Option<AuthBlock>,
        ord: u32,
    ) -> Result<Vec<u8>, u32> {
        let mut r = Reader::new(params);
        let index = r.u32().map_err(|_| rc::BAD_PARAM_SIZE)?;
        let offset = r.u32().map_err(|_| rc::BAD_PARAM_SIZE)? as usize;
        let data = r.sized_u32().map_err(|_| rc::BAD_PARAM_SIZE)?.to_vec();
        match auth {
            Some(a) => {
                let owner_auth = self.owner_auth;
                let (key, fresh) =
                    self.check_auth1(&a, (entity::OWNER, handle::OWNER), &owner_auth, ord, params)?;
                self.nv.write(index, offset, &data, true).map_err(nv_rc)?;
                self.touch_state();
                Ok(auth1_response(rc::SUCCESS, ord, &[], &key, &fresh, &a.nonce_odd, a.continue_session))
            }
            None => {
                self.nv.write(index, offset, &data, false).map_err(nv_rc)?;
                self.touch_state();
                Ok(simple_response(rc::SUCCESS, &[]))
            }
        }
    }

    fn cmd_nv_read(
        &mut self,
        params: &[u8],
        auth: Option<AuthBlock>,
        ord: u32,
    ) -> Result<Vec<u8>, u32> {
        let mut r = Reader::new(params);
        let index = r.u32().map_err(|_| rc::BAD_PARAM_SIZE)?;
        let offset = r.u32().map_err(|_| rc::BAD_PARAM_SIZE)? as usize;
        let len = r.u32().map_err(|_| rc::BAD_PARAM_SIZE)? as usize;
        match auth {
            Some(a) => {
                let owner_auth = self.owner_auth;
                let (key, fresh) =
                    self.check_auth1(&a, (entity::OWNER, handle::OWNER), &owner_auth, ord, params)?;
                let data = self.nv.read(index, offset, len, true, &self.pcrs).map_err(nv_rc)?;
                let mut out = Writer::new();
                out.sized_u32(&data);
                Ok(auth1_response(rc::SUCCESS, ord, out.as_slice(), &key, &fresh, &a.nonce_odd, a.continue_session))
            }
            None => {
                let data = self.nv.read(index, offset, len, false, &self.pcrs).map_err(nv_rc)?;
                let mut out = Writer::new();
                out.sized_u32(&data);
                Ok(simple_response(rc::SUCCESS, out.as_slice()))
            }
        }
    }

    /// TPM_CreateCounter (owner-authorized via OSAP; counter auth arrives
    /// ADIP-encrypted like every new-entity auth).
    fn cmd_create_counter(
        &mut self,
        params: &[u8],
        auth: AuthBlock,
        ord: u32,
    ) -> Result<Vec<u8>, u32> {
        if !self.owned {
            return Err(rc::NOSRK);
        }
        let mut r = Reader::new(params);
        let enc_counter_auth = r.digest().map_err(|_| rc::BAD_PARAM_SIZE)?;
        let label: [u8; 4] = r
            .bytes(4)
            .map_err(|_| rc::BAD_PARAM_SIZE)?
            .try_into()
            .expect("4 bytes");
        let session = self.sessions.get(auth.handle).ok_or(rc::INVALID_AUTHHANDLE)?;
        let nonce_even_before = session.nonce_even;
        let owner_auth = self.owner_auth;
        let key = self
            .sessions
            .resolve_key(auth.handle, (entity::OWNER, handle::OWNER), &owner_auth)
            .ok_or(rc::AUTHFAIL)?;
        let (check, fresh) = self.sessions.verify(
            auth.handle,
            (entity::OWNER, handle::OWNER),
            &owner_auth,
            &param_digest(ord, params),
            &auth.nonce_odd,
            auth.continue_session,
            &auth.auth,
            &mut self.rng,
        );
        self.auth_ok(check)?;
        let counter_auth = adip_decrypt(&key, &nonce_even_before, &enc_counter_auth);
        let count_id = self.counters.create(counter_auth, label).map_err(counter_rc)?;
        self.touch_state();
        let value = self.counters.read(count_id).expect("just created").value;
        let mut out = Writer::new();
        out.u32(count_id).u32(value);
        Ok(auth1_response(
            rc::SUCCESS,
            ord,
            out.as_slice(),
            &key,
            &fresh.expect("verified"),
            &auth.nonce_odd,
            auth.continue_session,
        ))
    }

    /// TPM_IncrementCounter (counter-authorized).
    fn cmd_increment_counter(
        &mut self,
        params: &[u8],
        auth: AuthBlock,
        ord: u32,
    ) -> Result<Vec<u8>, u32> {
        let mut r = Reader::new(params);
        let count_id = r.u32().map_err(|_| rc::BAD_PARAM_SIZE)?;
        let counter_auth = self.counters.read(count_id).map_err(counter_rc)?.auth;
        let (key, fresh) = self.check_auth1(
            &auth,
            (entity::COUNTER, count_id),
            &counter_auth,
            ord,
            params,
        )?;
        let value = self.counters.increment(count_id).map_err(counter_rc)?;
        self.touch_state();
        let mut out = Writer::new();
        out.u32(value);
        Ok(auth1_response(rc::SUCCESS, ord, out.as_slice(), &key, &fresh, &auth.nonce_odd, auth.continue_session))
    }

    /// TPM_ReadCounter (no authorization, per spec).
    fn cmd_read_counter(&mut self, params: &[u8]) -> Result<Vec<u8>, u32> {
        let mut r = Reader::new(params);
        let count_id = r.u32().map_err(|_| rc::BAD_PARAM_SIZE)?;
        let counter = self.counters.read(count_id).map_err(counter_rc)?;
        let mut out = Writer::new();
        out.bytes(&counter.label).u32(counter.value);
        Ok(simple_response(rc::SUCCESS, out.as_slice()))
    }

    /// TPM_ReleaseCounter (counter-authorized).
    fn cmd_release_counter(
        &mut self,
        params: &[u8],
        auth: AuthBlock,
        ord: u32,
    ) -> Result<Vec<u8>, u32> {
        let mut r = Reader::new(params);
        let count_id = r.u32().map_err(|_| rc::BAD_PARAM_SIZE)?;
        let counter_auth = self.counters.read(count_id).map_err(counter_rc)?.auth;
        let (key, fresh) = self.check_auth1(
            &auth,
            (entity::COUNTER, count_id),
            &counter_auth,
            ord,
            params,
        )?;
        self.counters.release(count_id).map_err(counter_rc)?;
        self.touch_state();
        Ok(auth1_response(rc::SUCCESS, ord, &[], &key, &fresh, &auth.nonce_odd, auth.continue_session))
    }

    // ---- helpers -------------------------------------------------------------

    /// Resolve a key handle (SRK or transient).
    fn key(&self, h: u32) -> Result<&LoadedKey, u32> {
        if h == handle::SRK {
            return self.srk.as_ref().ok_or(rc::NOSRK);
        }
        self.keys.get(h).map_err(|_| rc::INVALID_KEYHANDLE)
    }

    /// Normalize an OSAP entity and fetch its auth secret.
    fn entity_auth(&self, etype: u16, evalue: u32) -> Result<((u16, u32), [u8; DIGEST_LEN]), u32> {
        match etype {
            entity::OWNER => {
                if !self.owned {
                    return Err(rc::NOSRK);
                }
                Ok(((entity::OWNER, handle::OWNER), self.owner_auth))
            }
            entity::SRK => {
                let srk = self.srk.as_ref().ok_or(rc::NOSRK)?;
                Ok(((entity::KEYHANDLE, handle::SRK), srk.usage_auth))
            }
            entity::KEYHANDLE => {
                let key = self.key(evalue)?;
                Ok(((entity::KEYHANDLE, evalue), key.usage_auth))
            }
            entity::COUNTER => {
                let counter = self.counters.read(evalue).map_err(counter_rc)?;
                Ok(((entity::COUNTER, evalue), counter.auth))
            }
            _ => Err(rc::BAD_PARAMETER),
        }
    }

    /// Standard auth1 verification; returns (hmac key, fresh nonceEven).
    fn check_auth1(
        &mut self,
        auth: &AuthBlock,
        entity: (u16, u32),
        entity_auth: &[u8; DIGEST_LEN],
        ord: u32,
        params: &[u8],
    ) -> Result<([u8; DIGEST_LEN], [u8; 20]), u32> {
        let key = self
            .sessions
            .resolve_key(auth.handle, entity, entity_auth)
            .ok_or(rc::INVALID_AUTHHANDLE)?;
        let (check, fresh) = self.sessions.verify(
            auth.handle,
            entity,
            entity_auth,
            &param_digest(ord, params),
            &auth.nonce_odd,
            auth.continue_session,
            &auth.auth,
            &mut self.rng,
        );
        self.auth_ok(check)?;
        Ok((key, fresh.expect("verified")))
    }

    fn auth_ok(&self, check: AuthCheck) -> Result<(), u32> {
        match check {
            AuthCheck::Ok => Ok(()),
            AuthCheck::Failed => Err(rc::AUTHFAIL),
            AuthCheck::BadHandle => Err(rc::INVALID_AUTHHANDLE),
        }
    }

    /// Parse the optional PCR-binding section used by Seal/CreateWrapKey:
    /// flag u8, then selection + digest-at-release. A zero digest means
    /// "bind to the current composite".
    fn read_pcr_binding(
        &self,
        r: &mut Reader,
        params: &[u8],
    ) -> Result<Option<(PcrSelection, [u8; DIGEST_LEN])>, u32> {
        let flag = r.u8().map_err(|_| rc::BAD_PARAM_SIZE)?;
        if flag == 0 {
            return Ok(None);
        }
        let (sel, used) =
            PcrSelection::decode(&params[r.position()..]).ok_or(rc::BAD_PARAM_SIZE)?;
        r.bytes(used).map_err(|_| rc::BAD_PARAM_SIZE)?;
        let digest = r.digest().map_err(|_| rc::BAD_PARAM_SIZE)?;
        let digest = if digest == [0; DIGEST_LEN] {
            self.pcrs.composite_hash(&sel)
        } else {
            digest
        };
        Ok(Some((sel, digest)))
    }
}

/// Map key-layer errors to TPM return codes.
fn key_rc(e: KeyError) -> u32 {
    match e {
        KeyError::BadBlob => rc::DECRYPT_ERROR,
        KeyError::NoSpace => rc::RESOURCES,
        KeyError::BadHandle => rc::INVALID_KEYHANDLE,
        KeyError::NotStorageKey => rc::INVALID_KEYUSAGE,
    }
}

/// Map counter-layer errors to TPM return codes.
fn counter_rc(e: CounterError) -> u32 {
    match e {
        CounterError::BadHandle => rc::BADINDEX,
        CounterError::NoSpace => rc::RESOURCES,
        CounterError::NotActive => rc::BAD_PARAMETER,
    }
}

/// Map NV-layer errors to TPM return codes.
fn nv_rc(e: NvError) -> u32 {
    match e {
        NvError::BadIndex => rc::BADINDEX,
        NvError::OutOfRange => rc::BAD_PARAMETER,
        NvError::AuthRequired => rc::AUTHFAIL,
        NvError::WrongPcr => rc::WRONGPCRVAL,
        NvError::Locked => rc::AREA_LOCKED,
        NvError::NoSpace => rc::RESOURCES,
    }
}

/// ADIP: decrypt an encrypted auth value with XOR of SHA1(key || nonceEven).
fn adip_decrypt(
    key: &[u8; DIGEST_LEN],
    nonce_even: &[u8; 20],
    enc: &[u8; DIGEST_LEN],
) -> [u8; DIGEST_LEN] {
    let mut buf = [0u8; 40];
    buf[..20].copy_from_slice(key);
    buf[20..].copy_from_slice(nonce_even);
    let pad = sha1(&buf);
    let mut out = [0u8; DIGEST_LEN];
    for i in 0..DIGEST_LEN {
        out[i] = enc[i] ^ pad[i];
    }
    out
}

/// Caller-side ADIP encryption (same XOR).
pub fn adip_encrypt(
    key: &[u8; DIGEST_LEN],
    nonce_even: &[u8; 20],
    plain: &[u8; DIGEST_LEN],
) -> [u8; DIGEST_LEN] {
    adip_decrypt(key, nonce_even, plain)
}

/// TPM_QUOTE_INFO digest: SHA1(version || "QUOT" || composite || external).
pub fn quote_info_digest(
    composite: &[u8; DIGEST_LEN],
    external_data: &[u8; DIGEST_LEN],
) -> [u8; DIGEST_LEN] {
    let mut buf = [0u8; 4 + 4 + 20 + 20];
    buf[0] = 1;
    buf[1] = 1;
    buf[4..8].copy_from_slice(b"QUOT");
    buf[8..28].copy_from_slice(composite);
    buf[28..48].copy_from_slice(external_data);
    sha1(&buf)
}

/// Verifier-side TPM_PCR_COMPOSITE digest over externally supplied PCR
/// values: SHA1(selection || u32 value-bytes || values). Computes the
/// same digest `PcrBank::composite_hash` produces inside the TPM for
/// the same selection, so a remote verifier can reconstruct the
/// composite a quote signed from the values shipped alongside it.
pub fn pcr_composite_digest(
    selection: &PcrSelection,
    values: &[[u8; DIGEST_LEN]],
) -> [u8; DIGEST_LEN] {
    let encoded = selection.encode();
    let mut buf = Vec::with_capacity(encoded.len() + 4 + values.len() * DIGEST_LEN);
    buf.extend_from_slice(&encoded);
    buf.extend_from_slice(&((values.len() * DIGEST_LEN) as u32).to_be_bytes());
    for v in values {
        buf.extend_from_slice(v);
    }
    sha1(&buf)
}

/// Response with no auth sessions.
fn simple_response(code: u32, out_params: &[u8]) -> Vec<u8> {
    let mut w = Writer::with_capacity(10 + out_params.len());
    w.u16(tag::RSP_COMMAND).u32(0).u32(code).bytes(out_params);
    let total = w.len() as u32;
    w.patch_u32(2, total);
    w.into_vec()
}

/// Error response (always tag RSP_COMMAND, no params).
fn error_response(code: u32) -> Vec<u8> {
    simple_response(code, &[])
}

/// Response with one auth trailer.
fn auth1_response(
    code: u32,
    ord: u32,
    out_params: &[u8],
    key: &[u8; DIGEST_LEN],
    nonce_even: &[u8; 20],
    nonce_odd: &[u8; 20],
    continue_session: bool,
) -> Vec<u8> {
    let mut w = Writer::with_capacity(10 + out_params.len() + 41);
    w.u16(tag::RSP_AUTH1_COMMAND).u32(0).u32(code).bytes(out_params);
    let od = out_param_digest(code, ord, out_params);
    let mac = SessionTable::response_auth(key, &od, nonce_even, nonce_odd, continue_session);
    w.bytes(nonce_even).u8(continue_session as u8).bytes(&mac);
    let total = w.len() as u32;
    w.patch_u32(2, total);
    w.into_vec()
}

/// Response with two auth trailers.
#[allow(clippy::too_many_arguments)]
fn auth2_response(
    code: u32,
    ord: u32,
    out_params: &[u8],
    key1: &[u8; DIGEST_LEN],
    nonce_even1: &[u8; 20],
    nonce_odd1: &[u8; 20],
    cont1: bool,
    key2: &[u8; DIGEST_LEN],
    nonce_even2: &[u8; 20],
    nonce_odd2: &[u8; 20],
    cont2: bool,
) -> Vec<u8> {
    let mut w = Writer::with_capacity(10 + out_params.len() + 82);
    w.u16(tag::RSP_AUTH2_COMMAND).u32(0).u32(code).bytes(out_params);
    let od = out_param_digest(code, ord, out_params);
    let mac1 = SessionTable::response_auth(key1, &od, nonce_even1, nonce_odd1, cont1);
    w.bytes(nonce_even1).u8(cont1 as u8).bytes(&mac1);
    let mac2 = SessionTable::response_auth(key2, &od, nonce_even2, nonce_odd2, cont2);
    w.bytes(nonce_even2).u8(cont2 as u8).bytes(&mac2);
    let total = w.len() as u32;
    w.patch_u32(2, total);
    w.into_vec()
}

/// Parse a response header: (tag, rc, body-after-rc).
pub fn parse_response(resp: &[u8]) -> Result<(u16, u32, &[u8]), BufError> {
    let mut r = Reader::new(resp);
    let tag_v = r.u16()?;
    let size = r.u32()? as usize;
    let code = r.u32()?;
    if size != resp.len() {
        return Err(BufError::BadLength);
    }
    Ok((tag_v, code, &resp[10..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn started_tpm() -> Tpm {
        let mut t = Tpm::new(b"test-tpm");
        let resp = t.execute(0, &startup_cmd());
        let (_, code, _) = parse_response(&resp).unwrap();
        assert_eq!(code, rc::SUCCESS);
        t
    }

    fn startup_cmd() -> Vec<u8> {
        let mut w = Writer::new();
        w.u16(tag::RQU_COMMAND).u32(0).u32(ordinal::STARTUP).u16(0x0001);
        let total = w.len() as u32;
        w.patch_u32(2, total);
        w.into_vec()
    }

    fn simple_cmd(ord: u32, params: &[u8]) -> Vec<u8> {
        let mut w = Writer::new();
        w.u16(tag::RQU_COMMAND).u32(0).u32(ord).bytes(params);
        let total = w.len() as u32;
        w.patch_u32(2, total);
        w.into_vec()
    }

    #[test]
    fn startup_required_first() {
        let mut t = Tpm::new(b"x");
        let resp = t.execute(0, &simple_cmd(ordinal::GET_RANDOM, &8u32.to_be_bytes()));
        let (_, code, _) = parse_response(&resp).unwrap();
        assert_eq!(code, rc::INVALID_POSTINIT);
    }

    #[test]
    fn get_random_returns_requested_bytes() {
        let mut t = started_tpm();
        let resp = t.execute(0, &simple_cmd(ordinal::GET_RANDOM, &16u32.to_be_bytes()));
        let (tag_v, code, body) = parse_response(&resp).unwrap();
        assert_eq!(tag_v, tag::RSP_COMMAND);
        assert_eq!(code, rc::SUCCESS);
        let mut r = Reader::new(body);
        let bytes = r.sized_u32().unwrap();
        assert_eq!(bytes.len(), 16);
        // Two calls differ.
        let resp2 = t.execute(0, &simple_cmd(ordinal::GET_RANDOM, &16u32.to_be_bytes()));
        assert_ne!(resp, resp2);
    }

    #[test]
    fn pcr_read_and_extend_via_wire() {
        let mut t = started_tpm();
        // Read PCR 5 -> zeros.
        let resp = t.execute(0, &simple_cmd(ordinal::PCR_READ, &5u32.to_be_bytes()));
        let (_, code, body) = parse_response(&resp).unwrap();
        assert_eq!(code, rc::SUCCESS);
        assert_eq!(body, &[0u8; 20][..]);
        // Extend PCR 5.
        let mut params = Writer::new();
        params.u32(5).bytes(&[0xAB; 20]);
        let resp = t.execute(0, &simple_cmd(ordinal::EXTEND, params.as_slice()));
        let (_, code, new_val) = parse_response(&resp).unwrap();
        assert_eq!(code, rc::SUCCESS);
        assert_eq!(new_val, &t.pcrs().read(5).unwrap()[..]);
        assert_ne!(new_val, &[0u8; 20][..]);
    }

    #[test]
    fn bad_pcr_index_rejected() {
        let mut t = started_tpm();
        let resp = t.execute(0, &simple_cmd(ordinal::PCR_READ, &99u32.to_be_bytes()));
        let (_, code, _) = parse_response(&resp).unwrap();
        assert_eq!(code, rc::BADINDEX);
    }

    #[test]
    fn pcr_reset_locality_rules_via_wire() {
        let mut t = started_tpm();
        let mut params = Writer::new();
        params.bytes(&PcrSelection::of(&[16]).encode());
        // Locality 0: refused.
        let resp = t.execute(0, &simple_cmd(ordinal::PCR_RESET, params.as_slice()));
        assert_eq!(parse_response(&resp).unwrap().1, rc::BAD_LOCALITY);
        // Locality 2: allowed.
        let resp = t.execute(2, &simple_cmd(ordinal::PCR_RESET, params.as_slice()));
        assert_eq!(parse_response(&resp).unwrap().1, rc::SUCCESS);
    }

    #[test]
    fn size_mismatch_rejected() {
        let mut t = started_tpm();
        let mut cmd = simple_cmd(ordinal::GET_RANDOM, &8u32.to_be_bytes());
        // Corrupt the size field.
        cmd[5] = 0xFF;
        let resp = t.execute(0, &cmd);
        assert_eq!(parse_response(&resp).unwrap().1, rc::BAD_PARAM_SIZE);
    }

    #[test]
    fn unknown_ordinal_rejected() {
        let mut t = started_tpm();
        let resp = t.execute(0, &simple_cmd(0xdead_beef, &[]));
        assert_eq!(parse_response(&resp).unwrap().1, rc::BAD_ORDINAL);
    }

    #[test]
    fn bad_tag_rejected() {
        let mut t = started_tpm();
        let mut w = Writer::new();
        w.u16(0x1234).u32(0).u32(ordinal::GET_RANDOM).u32(4);
        let total = w.len() as u32;
        w.patch_u32(2, total);
        let resp = t.execute(0, &w.into_vec());
        assert_eq!(parse_response(&resp).unwrap().1, rc::BADTAG);
    }

    #[test]
    fn oiap_opens_sessions_until_capacity() {
        let mut t = started_tpm();
        for _ in 0..t.cfg.session_slots {
            let resp = t.execute(0, &simple_cmd(ordinal::OIAP, &[]));
            assert_eq!(parse_response(&resp).unwrap().1, rc::SUCCESS);
        }
        let resp = t.execute(0, &simple_cmd(ordinal::OIAP, &[]));
        assert_eq!(parse_response(&resp).unwrap().1, rc::RESOURCES);
    }

    #[test]
    fn read_pubek_exposes_modulus() {
        let mut t = started_tpm();
        let resp = t.execute(0, &simple_cmd(ordinal::READ_PUBEK, &[]));
        let (_, code, body) = parse_response(&resp).unwrap();
        assert_eq!(code, rc::SUCCESS);
        let mut r = Reader::new(body);
        let n = r.sized_u32().unwrap();
        assert_eq!(n, t.ek.public.n.to_bytes_be());
    }

    #[test]
    fn get_capability_properties() {
        let mut t = started_tpm();
        let mut params = Writer::new();
        params.u32(0x0005).u32(0x0101);
        let resp = t.execute(0, &simple_cmd(ordinal::GET_CAPABILITY, params.as_slice()));
        let (_, code, body) = parse_response(&resp).unwrap();
        assert_eq!(code, rc::SUCCESS);
        let mut r = Reader::new(body);
        let v = r.sized_u32().unwrap();
        assert_eq!(u32::from_be_bytes(v.try_into().unwrap()), 24);
    }

    #[test]
    fn manufacture_deterministic() {
        let a = Tpm::new(b"same-seed");
        let b = Tpm::new(b"same-seed");
        assert_eq!(a.ek.public, b.ek.public);
        assert_eq!(a.tpm_proof, b.tpm_proof);
        let c = Tpm::new(b"other-seed");
        assert_ne!(a.tpm_proof, c.tpm_proof);
    }

    #[test]
    fn startup_state_preserves_pcrs() {
        let mut t = started_tpm();
        t.pcrs_mut().extend(3, &[1; 20]).unwrap();
        let pcr3 = t.pcrs().read(3).unwrap();
        // Startup(ST_STATE)
        let mut w = Writer::new();
        w.u16(tag::RQU_COMMAND).u32(0).u32(ordinal::STARTUP).u16(0x0002);
        let total = w.len() as u32;
        w.patch_u32(2, total);
        let resp = t.execute(0, &w.into_vec());
        assert_eq!(parse_response(&resp).unwrap().1, rc::SUCCESS);
        assert_eq!(t.pcrs().read(3).unwrap(), pcr3);
        // Startup(ST_CLEAR) resets them.
        let resp = t.execute(0, &startup_cmd());
        assert_eq!(parse_response(&resp).unwrap().1, rc::SUCCESS);
        assert_eq!(t.pcrs().read(3).unwrap(), [0; 20]);
    }

    #[test]
    fn truncated_command_rejected() {
        let mut t = started_tpm();
        let resp = t.execute(0, &[0x00, 0xC1, 0x00]);
        assert_eq!(parse_response(&resp).unwrap().1, rc::BAD_PARAM_SIZE);
    }

    #[test]
    fn state_generation_tracks_permanent_mutations_only() {
        let mut t = started_tpm();
        let g0 = t.state_generation();
        // Read-only / transient-only commands leave the generation alone.
        t.execute(0, &simple_cmd(ordinal::GET_RANDOM, &16u32.to_be_bytes()));
        t.execute(0, &simple_cmd(ordinal::PCR_READ, &5u32.to_be_bytes()));
        t.execute(0, &simple_cmd(ordinal::OIAP, &[]));
        t.execute(0, &simple_cmd(ordinal::READ_PUBEK, &[]));
        assert_eq!(t.state_generation(), g0, "transient commands must not bump");
        // A PCR extend is a permanent mutation.
        let mut params = Writer::new();
        params.u32(5).bytes(&[0xAB; 20]);
        t.execute(0, &simple_cmd(ordinal::EXTEND, params.as_slice()));
        assert!(t.state_generation() > g0, "extend must bump");
        // A failing mutation (bad index) must not bump.
        let g1 = t.state_generation();
        let mut bad = Writer::new();
        bad.u32(99).bytes(&[0xAB; 20]);
        t.execute(0, &simple_cmd(ordinal::EXTEND, bad.as_slice()));
        assert_eq!(t.state_generation(), g1, "failed extend must not bump");
        // Equal generations really do mean identical snapshots.
        let snap_a = t.serialize_state();
        t.execute(0, &simple_cmd(ordinal::GET_RANDOM, &16u32.to_be_bytes()));
        assert_eq!(t.state_generation(), g1);
        assert_eq!(t.serialize_state(), snap_a);
    }

    #[test]
    fn auth_command_without_session_block_fails() {
        let mut t = started_tpm();
        // SEAL sent with a plain tag -> AUTHFAIL (no auth block).
        let resp = t.execute(0, &simple_cmd(ordinal::SEAL, &[]));
        let code = parse_response(&resp).unwrap().1;
        assert!(code != rc::SUCCESS);
    }
}
