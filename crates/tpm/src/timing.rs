//! Virtual-time cost model for TPM commands.
//!
//! Hardware TPM 1.2 chips are slow serial devices: RSA operations take
//! tens to hundreds of milliseconds, hashes hundreds of microseconds. The
//! simulator charges these costs to the virtual clock so that
//! latency-shaped results (R-T1, R-F1) reflect a hardware-backed system
//! rather than our software TPM's wall-clock speed. Figures are drawn
//! from published TPM 1.2 benchmarks (Infineon/Atmel-class parts).

use crate::types::ordinal;

/// Virtual cost of executing `ord`, in nanoseconds.
pub fn command_cost_ns(ord: u32) -> u64 {
    const US: u64 = 1_000;
    const MS: u64 = 1_000_000;
    match ord {
        ordinal::STARTUP => MS,
        ordinal::GET_RANDOM => 300 * US,
        ordinal::PCR_READ => 200 * US,
        ordinal::EXTEND => 400 * US,
        ordinal::PCR_RESET => 300 * US,
        ordinal::OIAP | ordinal::OSAP => 300 * US,
        ordinal::READ_PUBEK => 5 * MS,
        ordinal::GET_CAPABILITY => 200 * US,
        ordinal::FLUSH_SPECIFIC => 200 * US,
        // RSA-heavy commands.
        ordinal::TAKE_OWNERSHIP => 800 * MS, // two decrypts + SRK keygen
        ordinal::OWNER_CLEAR => 10 * MS,
        ordinal::CREATE_WRAP_KEY => 500 * MS, // keygen dominates
        ordinal::LOAD_KEY2 => 20 * MS,        // one private decrypt
        ordinal::SEAL => 15 * MS,             // one public encrypt
        ordinal::UNSEAL => 25 * MS,           // one private decrypt
        ordinal::QUOTE => 35 * MS,            // one private sign
        ordinal::SIGN => 30 * MS,
        ordinal::NV_DEFINE_SPACE => 10 * MS,
        ordinal::NV_WRITE_VALUE => 5 * MS,
        ordinal::NV_READ_VALUE => 2 * MS,
        ordinal::SAVE_STATE => 5 * MS,
        // Counter writes hit NV cells; reads are cheap.
        ordinal::CREATE_COUNTER => 10 * MS,
        ordinal::INCREMENT_COUNTER => 5 * MS,
        ordinal::READ_COUNTER => MS,
        ordinal::RELEASE_COUNTER => 5 * MS,
        _ => MS,
    }
}

/// Extract the ordinal from a raw command buffer (for cost accounting at
/// the transport layer, which sees only bytes).
pub fn ordinal_of(request: &[u8]) -> Option<u32> {
    if request.len() < 10 {
        return None;
    }
    Some(u32::from_be_bytes(request[6..10].try_into().unwrap()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rsa_commands_cost_more_than_hashes() {
        assert!(command_cost_ns(ordinal::QUOTE) > command_cost_ns(ordinal::EXTEND));
        assert!(command_cost_ns(ordinal::SEAL) > command_cost_ns(ordinal::PCR_READ));
        assert!(command_cost_ns(ordinal::CREATE_WRAP_KEY) > command_cost_ns(ordinal::SEAL));
    }

    #[test]
    fn unknown_ordinal_has_default_cost() {
        assert_eq!(command_cost_ns(0xdeadbeef), 1_000_000);
    }

    #[test]
    fn ordinal_extraction() {
        let mut cmd = vec![0u8; 14];
        cmd[6..10].copy_from_slice(&ordinal::SEAL.to_be_bytes());
        assert_eq!(ordinal_of(&cmd), Some(ordinal::SEAL));
        assert_eq!(ordinal_of(&cmd[..8]), None);
    }
}
