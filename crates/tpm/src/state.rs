//! TPM state (de)serialization.
//!
//! A vTPM instance *is* a TPM whose lifetime outlives any single host
//! boot: the manager must snapshot its permanent state (ownership, EK,
//! SRK, PCRs, NV) to persist or migrate it, and rebuild an identical TPM
//! later. Transient state (loaded keys, sessions) is deliberately not
//! captured — real TPMs lose it at power-off too.
//!
//! The snapshot contains private key material in the clear. Whether those
//! bytes ever touch dumpable memory is exactly the difference between the
//! baseline vTPM manager and the paper's improved one (AC3).

use tpm_crypto::bignum::BigUint;
use tpm_crypto::rsa::{RsaPrivateKey, RsaPublicKey, E};

use crate::buffer::{BufError, Reader, Writer};
use crate::keys::LoadedKey;
use crate::nv::{NvArea, NvAttributes};
use crate::pcr::{PcrBank, PcrSelection};
use crate::tpm::Tpm;
use crate::types::{KeyUsage, DIGEST_LEN, NUM_PCRS};

/// Magic + version prefix of the snapshot format.
const MAGIC: &[u8; 4] = b"VTS1";

/// Errors from snapshot parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateError {
    /// Bad magic/version or truncated data.
    Malformed,
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed TPM state snapshot")
    }
}

impl std::error::Error for StateError {}

fn write_private_key(w: &mut Writer, key: &RsaPrivateKey) {
    w.sized_u32(&key.p.to_bytes_be());
    w.sized_u32(&key.public.n.to_bytes_be());
}

fn read_private_key(r: &mut Reader) -> Result<RsaPrivateKey, BufError> {
    let p = BigUint::from_bytes_be(r.sized_u32()?);
    let n = BigUint::from_bytes_be(r.sized_u32()?);
    rebuild(p, n).ok_or(BufError::BadLength)
}

fn rebuild(p: BigUint, n: BigUint) -> Option<RsaPrivateKey> {
    if p.is_zero() || n.is_zero() {
        return None;
    }
    let (q, rem) = n.div_rem(&p);
    if !rem.is_zero() {
        return None;
    }
    let one = BigUint::one();
    let e = BigUint::from_u64(E);
    let p1 = p.checked_sub(&one)?;
    let q1 = q.checked_sub(&one)?;
    let phi = p1.mul(&q1);
    let d = e.mod_inverse(&phi)?;
    let dp = d.rem(&p1);
    let dq = d.rem(&q1);
    let qinv = q.mod_inverse(&p)?;
    Some(RsaPrivateKey { public: RsaPublicKey { n, e }, d, p, q, dp, dq, qinv })
}

impl Tpm {
    /// Snapshot the permanent state to bytes.
    pub fn serialize_state(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(1024);
        w.bytes(MAGIC);
        w.u8(self.is_started() as u8);
        w.u8(self.is_owned() as u8);
        w.bytes(self.owner_auth_ref());
        w.bytes(self.tpm_proof_ref());
        write_private_key(&mut w, self.ek_ref());
        match self.srk_ref() {
            Some(srk) => {
                w.u8(1);
                write_private_key(&mut w, &srk.private);
                w.bytes(&srk.usage_auth);
            }
            None => {
                w.u8(0);
            }
        }
        for pcr in self.pcrs().snapshot() {
            w.bytes(pcr);
        }
        // NV areas.
        let indices = self.nv_ref().indices();
        w.u32(indices.len() as u32);
        for idx in indices {
            let area = self.nv_ref().area(idx).expect("listed");
            w.u32(idx);
            w.u32(area.size as u32);
            w.u8(area.attrs.owner_write as u8);
            w.u8(area.attrs.owner_read as u8);
            w.u8(area.attrs.write_once as u8);
            w.u8(area.written as u8);
            match &area.attrs.read_pcr {
                Some((sel, digest)) => {
                    w.u8(1);
                    w.bytes(&sel.encode());
                    w.bytes(digest);
                }
                None => {
                    w.u8(0);
                }
            }
            w.sized_u32(&area.data);
        }
        // Monotonic counters (non-volatile by definition).
        let counter_handles = self.counters_ref().handles();
        w.u32(counter_handles.len() as u32);
        for h in counter_handles {
            let c = self.counters_ref().read(h).expect("listed");
            w.u32(h);
            w.u32(c.value);
            w.bytes(&c.auth);
            w.bytes(&c.label);
        }
        w.into_vec()
    }

    /// Rebuild a TPM from a snapshot. `seed` re-seeds the DRBG (randomness
    /// is not part of permanent state).
    pub fn restore_state(data: &[u8], seed: &[u8], cfg: crate::tpm::TpmConfig) -> Result<Tpm, StateError> {
        let mut r = Reader::new(data);
        let magic = r.bytes(4).map_err(|_| StateError::Malformed)?;
        if magic != MAGIC {
            return Err(StateError::Malformed);
        }
        let started = r.u8().map_err(|_| StateError::Malformed)? != 0;
        let owned = r.u8().map_err(|_| StateError::Malformed)? != 0;
        let owner_auth: [u8; DIGEST_LEN] = r.digest().map_err(|_| StateError::Malformed)?;
        let tpm_proof: [u8; DIGEST_LEN] = r.digest().map_err(|_| StateError::Malformed)?;
        let ek = read_private_key(&mut r).map_err(|_| StateError::Malformed)?;
        let srk = if r.u8().map_err(|_| StateError::Malformed)? == 1 {
            let private = read_private_key(&mut r).map_err(|_| StateError::Malformed)?;
            let usage_auth = r.digest().map_err(|_| StateError::Malformed)?;
            Some(LoadedKey { usage: KeyUsage::Storage, private, usage_auth, pcr_binding: None })
        } else {
            None
        };
        let mut pcr_values = [[0u8; DIGEST_LEN]; NUM_PCRS];
        for v in pcr_values.iter_mut() {
            *v = r.digest().map_err(|_| StateError::Malformed)?;
        }
        let pcrs = PcrBank::restore(pcr_values);

        let mut tpm = Tpm::from_parts(
            cfg, seed, started, owned, owner_auth, tpm_proof, ek, srk, pcrs,
        );

        let n_areas = r.u32().map_err(|_| StateError::Malformed)?;
        for _ in 0..n_areas {
            let idx = r.u32().map_err(|_| StateError::Malformed)?;
            let size = r.u32().map_err(|_| StateError::Malformed)? as usize;
            let owner_write = r.u8().map_err(|_| StateError::Malformed)? != 0;
            let owner_read = r.u8().map_err(|_| StateError::Malformed)? != 0;
            let write_once = r.u8().map_err(|_| StateError::Malformed)? != 0;
            let written = r.u8().map_err(|_| StateError::Malformed)? != 0;
            let read_pcr = if r.u8().map_err(|_| StateError::Malformed)? == 1 {
                let pos = r.position();
                let (sel, used) =
                    PcrSelection::decode(&data[pos..]).ok_or(StateError::Malformed)?;
                r.bytes(used).map_err(|_| StateError::Malformed)?;
                let digest = r.digest().map_err(|_| StateError::Malformed)?;
                Some((sel, digest))
            } else {
                None
            };
            let area_data = r.sized_u32().map_err(|_| StateError::Malformed)?.to_vec();
            if area_data.len() != size {
                return Err(StateError::Malformed);
            }
            tpm.nv_mut().restore_area(
                idx,
                NvArea {
                    size,
                    attrs: NvAttributes { owner_write, owner_read, read_pcr, write_once },
                    data: area_data,
                    written,
                },
            );
        }
        let n_counters = r.u32().map_err(|_| StateError::Malformed)?;
        for _ in 0..n_counters {
            let h = r.u32().map_err(|_| StateError::Malformed)?;
            let value = r.u32().map_err(|_| StateError::Malformed)?;
            let auth = r.digest().map_err(|_| StateError::Malformed)?;
            let label: [u8; 4] = r
                .bytes(4)
                .map_err(|_| StateError::Malformed)?
                .try_into()
                .expect("4 bytes");
            tpm.counters_mut().restore(h, crate::counter::Counter { value, auth, label });
        }
        Ok(tpm)
    }
}

#[cfg(test)]
mod tests {
    use crate::client::{DirectTransport, TpmClient};
    use crate::tpm::{Tpm, TpmConfig};
    use crate::types::handle;

    const OWNER: [u8; 20] = [1; 20];
    const SRK_AUTH: [u8; 20] = [2; 20];

    #[test]
    fn snapshot_roundtrip_preserves_seal() {
        let mut tpm = Tpm::new(b"state-seal");
        let blob = {
            let mut c = TpmClient::new(DirectTransport { tpm: &mut tpm, locality: 0 }, b"c");
            c.startup_clear().unwrap();
            c.take_ownership(&OWNER, &SRK_AUTH).unwrap();
            c.extend(4, &[9; 20]).unwrap();
            c.seal(handle::SRK, &SRK_AUTH, &[5; 20], None, b"survives").unwrap()
        };
        let snap = tpm.serialize_state();

        // Rebuild on a "different host".
        let mut tpm2 = Tpm::restore_state(&snap, b"new-seed", TpmConfig::default()).unwrap();
        assert!(tpm2.is_owned());
        assert_eq!(tpm2.pcrs().read(4), tpm.pcrs().read(4));
        let mut c2 = TpmClient::new(DirectTransport { tpm: &mut tpm2, locality: 0 }, b"c2");
        // Resume (not clear!) keeps PCRs; sessions were transient anyway.
        c2.startup_state().unwrap();
        let out = c2.unseal(handle::SRK, &SRK_AUTH, &[5; 20], &blob).unwrap();
        assert_eq!(out, b"survives");
    }

    #[test]
    fn snapshot_of_unowned_tpm() {
        let tpm = Tpm::new(b"state-unowned");
        let snap = tpm.serialize_state();
        let tpm2 = Tpm::restore_state(&snap, b"s", TpmConfig::default()).unwrap();
        assert!(!tpm2.is_owned());
        assert!(!tpm2.is_started());
    }

    #[test]
    fn snapshot_preserves_nv() {
        let mut tpm = Tpm::new(b"state-nv");
        {
            let mut c = TpmClient::new(DirectTransport { tpm: &mut tpm, locality: 0 }, b"c");
            c.startup_clear().unwrap();
            c.take_ownership(&OWNER, &SRK_AUTH).unwrap();
            c.nv_define(&OWNER, 0x20, 16, 0x1).unwrap();
            c.nv_write(Some(&OWNER), 0x20, 0, b"nv-data").unwrap();
        }
        let snap = tpm.serialize_state();
        let mut tpm2 = Tpm::restore_state(&snap, b"s", TpmConfig::default()).unwrap();
        let mut c2 = TpmClient::new(DirectTransport { tpm: &mut tpm2, locality: 0 }, b"c2");
        c2.startup_state().unwrap();
        assert_eq!(c2.nv_read(Some(&OWNER), 0x20, 0, 7).unwrap(), b"nv-data");
    }

    #[test]
    fn snapshot_preserves_counters() {
        let mut tpm = Tpm::new(b"state-counter");
        let cauth = [7u8; 20];
        let id = {
            let mut c = TpmClient::new(DirectTransport { tpm: &mut tpm, locality: 0 }, b"c");
            c.startup_clear().unwrap();
            c.take_ownership(&OWNER, &SRK_AUTH).unwrap();
            let (id, _) = c.create_counter(&OWNER, &cauth, *b"ctr1").unwrap();
            c.increment_counter(id, &cauth).unwrap();
            id
        };
        let snap = tpm.serialize_state();
        let mut tpm2 = Tpm::restore_state(&snap, b"s", TpmConfig::default()).unwrap();
        let mut c2 = TpmClient::new(DirectTransport { tpm: &mut tpm2, locality: 0 }, b"c2");
        c2.startup_state().unwrap();
        let (label, value) = c2.read_counter(id).unwrap();
        assert_eq!(label, *b"ctr1");
        assert_eq!(value, 2, "monotonic value survives the snapshot");
        // And it still increments with the original auth.
        assert_eq!(c2.increment_counter(id, &cauth).unwrap(), 3);
    }

    #[test]
    fn garbage_rejected() {
        assert!(Tpm::restore_state(b"nonsense", b"s", TpmConfig::default()).is_err());
        assert!(Tpm::restore_state(b"", b"s", TpmConfig::default()).is_err());
        // Right magic, truncated body.
        assert!(Tpm::restore_state(b"VTS1\x01", b"s", TpmConfig::default()).is_err());
    }

    #[test]
    fn snapshot_differs_between_tpms() {
        let a = Tpm::new(b"tpm-a");
        let b = Tpm::new(b"tpm-b");
        assert_ne!(a.serialize_state(), b.serialize_state());
    }
}
