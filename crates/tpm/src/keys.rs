//! The TPM 1.2 key hierarchy: the SRK at the root, storage keys wrapping
//! children, signing keys for quotes.
//!
//! A *wrapped key blob* is what leaves the TPM: public material in clear,
//! private material OAEP-encrypted to the parent storage key, so only a
//! TPM holding the parent can load it. The blob layout here is a
//! simplified-but-faithful TPM_KEY12: usage, public modulus/exponent,
//! optional PCR binding, and the encrypted private payload (prime p +
//! usageAuth). `q` is recovered as `n / p` at load time.

use std::collections::HashMap;

use tpm_crypto::bignum::BigUint;
use tpm_crypto::drbg::Drbg;
use tpm_crypto::rsa::{RsaPrivateKey, RsaPublicKey, E};

use crate::buffer::{BufError, Reader, Writer};
use crate::pcr::PcrSelection;
use crate::types::{KeyUsage, DIGEST_LEN};

/// OAEP label for key wrapping (the spec uses "TCPA" for all TPM OAEP).
pub const OAEP_LABEL: &[u8] = b"TCPA";

/// A key loaded into a TPM slot.
#[derive(Clone)]
pub struct LoadedKey {
    /// What the key may be used for.
    pub usage: KeyUsage,
    /// Full private key (present because the key is loaded).
    pub private: RsaPrivateKey,
    /// Authorization secret required to use the key.
    pub usage_auth: [u8; DIGEST_LEN],
    /// Optional PCR binding: (selection, digest-at-release).
    pub pcr_binding: Option<(PcrSelection, [u8; DIGEST_LEN])>,
}

impl LoadedKey {
    /// The public half.
    pub fn public(&self) -> &RsaPublicKey {
        &self.private.public
    }
}

/// A wrapped key blob as produced by TPM_CreateWrapKey.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyBlob {
    /// Usage type.
    pub usage: KeyUsage,
    /// Public modulus.
    pub n: Vec<u8>,
    /// Optional PCR binding carried in the clear part.
    pub pcr_binding: Option<(PcrSelection, [u8; DIGEST_LEN])>,
    /// OAEP ciphertext of the private payload, decryptable by the parent.
    pub enc_private: Vec<u8>,
}

impl KeyBlob {
    /// Serialize to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(64 + self.n.len() + self.enc_private.len());
        w.u16(self.usage.to_u16());
        w.sized_u32(&self.n);
        w.u32(E as u32);
        match &self.pcr_binding {
            Some((sel, digest)) => {
                w.u8(1);
                w.bytes(&sel.encode());
                w.bytes(digest);
            }
            None => {
                w.u8(0);
            }
        }
        w.sized_u32(&self.enc_private);
        w.into_vec()
    }

    /// Parse from wire bytes, returning the blob and bytes consumed.
    pub fn decode(data: &[u8]) -> Result<(Self, usize), BufError> {
        let mut r = Reader::new(data);
        let usage = KeyUsage::from_u16(r.u16()?).ok_or(BufError::BadLength)?;
        let n = r.sized_u32()?.to_vec();
        let e = r.u32()?;
        if e != E as u32 {
            return Err(BufError::BadLength);
        }
        let pcr_binding = if r.u8()? == 1 {
            let (sel, used) =
                PcrSelection::decode(&data[r.position()..]).ok_or(BufError::BadLength)?;
            r.bytes(used)?; // advance past the selection
            let digest: [u8; DIGEST_LEN] = r.digest()?;
            Some((sel, digest))
        } else {
            None
        };
        let enc_private = r.sized_u32()?.to_vec();
        Ok((
            KeyBlob { usage, n, pcr_binding, enc_private },
            r.position(),
        ))
    }
}

/// Errors from key operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyError {
    /// The blob failed to decrypt or parse under this parent.
    BadBlob,
    /// Loaded-key slots are exhausted.
    NoSpace,
    /// The handle names no loaded key.
    BadHandle,
    /// The parent key cannot wrap (not a storage key).
    NotStorageKey,
}

/// Create a fresh keypair and wrap it to `parent`.
///
/// Returns the blob; the private key never leaves in the clear. `bits` is
/// the child modulus size.
pub fn create_wrap_key(
    parent: &LoadedKey,
    usage: KeyUsage,
    bits: usize,
    usage_auth: [u8; DIGEST_LEN],
    pcr_binding: Option<(PcrSelection, [u8; DIGEST_LEN])>,
    rng: &mut Drbg,
) -> Result<KeyBlob, KeyError> {
    if !parent.usage.can_store() {
        return Err(KeyError::NotStorageKey);
    }
    let key = RsaPrivateKey::generate(bits, rng);
    wrap_key(parent, usage, &key, usage_auth, pcr_binding, rng)
}

/// Wrap an existing keypair to `parent` (used by tests and by vTPM state
/// migration, where a key must be re-wrapped to a new parent).
pub fn wrap_key(
    parent: &LoadedKey,
    usage: KeyUsage,
    key: &RsaPrivateKey,
    usage_auth: [u8; DIGEST_LEN],
    pcr_binding: Option<(PcrSelection, [u8; DIGEST_LEN])>,
    rng: &mut Drbg,
) -> Result<KeyBlob, KeyError> {
    if !parent.usage.can_store() {
        return Err(KeyError::NotStorageKey);
    }
    // Private payload: u16 p-length || p || usageAuth.
    let p_bytes = key.p.to_bytes_be();
    let mut payload = Writer::with_capacity(2 + p_bytes.len() + DIGEST_LEN);
    payload.sized_u16(&p_bytes);
    payload.bytes(&usage_auth);
    let enc_private = parent
        .public()
        .encrypt_oaep(payload.as_slice(), OAEP_LABEL, rng)
        .map_err(|_| KeyError::BadBlob)?;
    Ok(KeyBlob {
        usage,
        n: key.public.n.to_bytes_be(),
        pcr_binding,
        enc_private,
    })
}

/// Unwrap a blob under `parent`, reconstructing the full private key.
pub fn unwrap_key(parent: &LoadedKey, blob: &KeyBlob) -> Result<LoadedKey, KeyError> {
    if !parent.usage.can_store() {
        return Err(KeyError::NotStorageKey);
    }
    let payload = parent
        .private
        .decrypt_oaep(&blob.enc_private, OAEP_LABEL)
        .map_err(|_| KeyError::BadBlob)?;
    let mut r = Reader::new(&payload);
    let p_bytes = r.sized_u16().map_err(|_| KeyError::BadBlob)?;
    let usage_auth: [u8; DIGEST_LEN] = r.digest().map_err(|_| KeyError::BadBlob)?;
    let p = BigUint::from_bytes_be(p_bytes);
    let n = BigUint::from_bytes_be(&blob.n);
    if p.is_zero() || n.is_zero() {
        return Err(KeyError::BadBlob);
    }
    let (q, rem) = n.div_rem(&p);
    if !rem.is_zero() {
        return Err(KeyError::BadBlob);
    }
    let private = rebuild_private(p, q, n).ok_or(KeyError::BadBlob)?;
    Ok(LoadedKey { usage: blob.usage, private, usage_auth, pcr_binding: blob.pcr_binding })
}

/// Rebuild CRT material from the two primes.
fn rebuild_private(p: BigUint, q: BigUint, n: BigUint) -> Option<RsaPrivateKey> {
    let one = BigUint::one();
    let e = BigUint::from_u64(E);
    let p1 = p.checked_sub(&one)?;
    let q1 = q.checked_sub(&one)?;
    let phi = p1.mul(&q1);
    let d = e.mod_inverse(&phi)?;
    let dp = d.rem(&p1);
    let dq = d.rem(&q1);
    let qinv = q.mod_inverse(&p)?;
    Some(RsaPrivateKey { public: RsaPublicKey { n, e }, d, p, q, dp, dq, qinv })
}

/// The loaded-key slot table.
pub struct KeyStore {
    slots: HashMap<u32, LoadedKey>,
    next_handle: u32,
    capacity: usize,
}

impl KeyStore {
    /// A store with `capacity` loadable slots (hardware TPMs have ~10).
    pub fn new(capacity: usize) -> Self {
        KeyStore { slots: HashMap::new(), next_handle: 0x0100_0000, capacity }
    }

    /// Insert a key, returning its transient handle.
    pub fn load(&mut self, key: LoadedKey) -> Result<u32, KeyError> {
        if self.slots.len() >= self.capacity {
            return Err(KeyError::NoSpace);
        }
        let handle = self.next_handle;
        self.next_handle += 1;
        self.slots.insert(handle, key);
        Ok(handle)
    }

    /// Look up a loaded key.
    pub fn get(&self, handle: u32) -> Result<&LoadedKey, KeyError> {
        self.slots.get(&handle).ok_or(KeyError::BadHandle)
    }

    /// Evict a loaded key.
    pub fn flush(&mut self, handle: u32) -> Result<(), KeyError> {
        self.slots.remove(&handle).map(|_| ()).ok_or(KeyError::BadHandle)
    }

    /// Number of keys currently loaded.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no keys are loaded.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Evict everything (TPM_Startup(CLEAR)).
    pub fn clear(&mut self) {
        self.slots.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storage_parent(rng: &mut Drbg) -> LoadedKey {
        LoadedKey {
            usage: KeyUsage::Storage,
            private: RsaPrivateKey::generate(1024, rng),
            usage_auth: [0; 20],
            pcr_binding: None,
        }
    }

    #[test]
    fn create_and_unwrap_roundtrip() {
        let mut rng = Drbg::new(b"keys-roundtrip");
        let parent = storage_parent(&mut rng);
        let auth = [7u8; 20];
        let blob =
            create_wrap_key(&parent, KeyUsage::Signing, 512, auth, None, &mut rng).unwrap();
        let child = unwrap_key(&parent, &blob).unwrap();
        assert_eq!(child.usage, KeyUsage::Signing);
        assert_eq!(child.usage_auth, auth);
        // The reconstructed private key actually works.
        let sig = child.private.sign_pkcs1_sha1(b"test").unwrap();
        assert!(child.public().verify_pkcs1_sha1(b"test", &sig).is_ok());
    }

    #[test]
    fn wrong_parent_cannot_unwrap() {
        let mut rng = Drbg::new(b"keys-wrongparent");
        let parent = storage_parent(&mut rng);
        let other = storage_parent(&mut rng);
        let blob =
            create_wrap_key(&parent, KeyUsage::Signing, 512, [0; 20], None, &mut rng).unwrap();
        assert!(matches!(unwrap_key(&other, &blob), Err(KeyError::BadBlob)));
    }

    #[test]
    fn non_storage_parent_rejected() {
        let mut rng = Drbg::new(b"keys-nonstorage");
        let mut parent = storage_parent(&mut rng);
        parent.usage = KeyUsage::Signing;
        assert!(matches!(
            create_wrap_key(&parent, KeyUsage::Signing, 512, [0; 20], None, &mut rng),
            Err(KeyError::NotStorageKey)
        ));
    }

    #[test]
    fn blob_wire_roundtrip() {
        let mut rng = Drbg::new(b"keys-wire");
        let parent = storage_parent(&mut rng);
        let binding = Some((PcrSelection::of(&[0, 5]), [3u8; 20]));
        let blob = create_wrap_key(&parent, KeyUsage::Binding, 512, [1; 20], binding, &mut rng)
            .unwrap();
        let bytes = blob.encode();
        let (blob2, used) = KeyBlob::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(blob, blob2);
    }

    #[test]
    fn blob_decode_rejects_garbage() {
        assert!(KeyBlob::decode(&[0xFF; 4]).is_err());
        assert!(KeyBlob::decode(&[]).is_err());
        // Valid blob with a flipped usage field.
        let mut rng = Drbg::new(b"keys-garbage");
        let parent = storage_parent(&mut rng);
        let blob =
            create_wrap_key(&parent, KeyUsage::Signing, 512, [0; 20], None, &mut rng).unwrap();
        let mut bytes = blob.encode();
        bytes[0] = 0xEE;
        assert!(KeyBlob::decode(&bytes).is_err());
    }

    #[test]
    fn tampered_enc_private_fails_unwrap() {
        let mut rng = Drbg::new(b"keys-tamper");
        let parent = storage_parent(&mut rng);
        let mut blob =
            create_wrap_key(&parent, KeyUsage::Signing, 512, [0; 20], None, &mut rng).unwrap();
        let last = blob.enc_private.len() - 1;
        blob.enc_private[last] ^= 1;
        assert!(unwrap_key(&parent, &blob).is_err());
    }

    #[test]
    fn keystore_slots_and_capacity() {
        let mut rng = Drbg::new(b"keys-slots");
        let parent = storage_parent(&mut rng);
        let mut store = KeyStore::new(2);
        let h1 = store.load(parent.clone()).unwrap();
        let h2 = store.load(parent.clone()).unwrap();
        assert_ne!(h1, h2);
        assert_eq!(store.load(parent.clone()), Err(KeyError::NoSpace));
        assert!(store.get(h1).is_ok());
        store.flush(h1).unwrap();
        assert_eq!(store.get(h1).err(), Some(KeyError::BadHandle));
        // Slot freed; loading works again.
        store.load(parent).unwrap();
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn keystore_clear() {
        let mut rng = Drbg::new(b"keys-clear");
        let parent = storage_parent(&mut rng);
        let mut store = KeyStore::new(4);
        store.load(parent).unwrap();
        store.clear();
        assert!(store.is_empty());
    }

    #[test]
    fn deep_hierarchy_wraps() {
        // SRK -> storage child -> signing grandchild.
        let mut rng = Drbg::new(b"keys-deep");
        let srk = storage_parent(&mut rng);
        let child_blob =
            create_wrap_key(&srk, KeyUsage::Storage, 1024, [2; 20], None, &mut rng).unwrap();
        let child = unwrap_key(&srk, &child_blob).unwrap();
        let grand_blob =
            create_wrap_key(&child, KeyUsage::Signing, 512, [3; 20], None, &mut rng).unwrap();
        let grand = unwrap_key(&child, &grand_blob).unwrap();
        let sig = grand.private.sign_pkcs1_sha1(b"deep").unwrap();
        assert!(grand.public().verify_pkcs1_sha1(b"deep", &sig).is_ok());
    }
}
