//! Authorization sessions (OIAP / OSAP).
//!
//! TPM 1.2 authorizes commands with a rolling-nonce HMAC protocol:
//!
//! * the caller opens a session, receiving a session handle and the TPM's
//!   `nonceEven`;
//! * each authorized command carries `nonceOdd` (caller-fresh) and an
//!   HMAC over `SHA1(ordinal || params) || nonceEven || nonceOdd ||
//!   continueAuthSession`, keyed by the entity's auth secret (OIAP) or the
//!   OSAP shared secret `HMAC(entityAuth, nonceEvenOSAP || nonceOddOSAP)`;
//! * the response carries a fresh `nonceEven` and a response HMAC the
//!   caller should verify.
//!
//! The session table lives inside the TPM; handles are transient.

use std::collections::HashMap;

use tpm_crypto::drbg::Drbg;
use tpm_crypto::hmac::{ct_eq, hmac_sha1};
use tpm_crypto::sha1;

use crate::types::{AUTH_LEN, DIGEST_LEN, NONCE_LEN};

/// Session kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionKind {
    /// Object-independent: HMAC keyed by the target entity's auth secret.
    Oiap,
    /// Object-specific: HMAC keyed by a shared secret derived at open time
    /// for one specific entity.
    Osap,
}

/// One live session.
#[derive(Debug, Clone)]
pub struct Session {
    /// OIAP or OSAP.
    pub kind: SessionKind,
    /// The TPM-side rolling nonce.
    pub nonce_even: [u8; NONCE_LEN],
    /// OSAP only: the derived shared secret used as HMAC key.
    pub shared_secret: Option<[u8; DIGEST_LEN]>,
    /// OSAP only: the entity (type, value) the session is bound to.
    pub bound_entity: Option<(u16, u32)>,
}

/// The session table.
pub struct SessionTable {
    sessions: HashMap<u32, Session>,
    next_handle: u32,
    capacity: usize,
}

/// Outcome of verifying a command's auth block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthCheck {
    /// HMAC verified.
    Ok,
    /// HMAC mismatch.
    Failed,
    /// Unknown session handle.
    BadHandle,
}

impl SessionTable {
    /// A table with `capacity` concurrent sessions.
    pub fn new(capacity: usize) -> Self {
        SessionTable { sessions: HashMap::new(), next_handle: 0x0200_0000, capacity }
    }

    /// Open an OIAP session; returns (handle, nonceEven).
    pub fn open_oiap(&mut self, rng: &mut Drbg) -> Option<(u32, [u8; NONCE_LEN])> {
        if self.sessions.len() >= self.capacity {
            return None;
        }
        let mut nonce_even = [0u8; NONCE_LEN];
        rng.fill_bytes(&mut nonce_even);
        let handle = self.next_handle;
        self.next_handle += 1;
        self.sessions.insert(
            handle,
            Session { kind: SessionKind::Oiap, nonce_even, shared_secret: None, bound_entity: None },
        );
        Some((handle, nonce_even))
    }

    /// Open an OSAP session against `(entity_type, entity_value)` whose
    /// auth secret is `entity_auth`. The caller supplied `nonce_odd_osap`;
    /// returns (handle, nonceEven, nonceEvenOSAP).
    pub fn open_osap(
        &mut self,
        entity_type: u16,
        entity_value: u32,
        entity_auth: &[u8; DIGEST_LEN],
        nonce_odd_osap: &[u8; NONCE_LEN],
        rng: &mut Drbg,
    ) -> Option<(u32, [u8; NONCE_LEN], [u8; NONCE_LEN])> {
        if self.sessions.len() >= self.capacity {
            return None;
        }
        let mut nonce_even = [0u8; NONCE_LEN];
        let mut nonce_even_osap = [0u8; NONCE_LEN];
        rng.fill_bytes(&mut nonce_even);
        rng.fill_bytes(&mut nonce_even_osap);
        // sharedSecret = HMAC(entityAuth, nonceEvenOSAP || nonceOddOSAP)
        let mut msg = [0u8; 2 * NONCE_LEN];
        msg[..NONCE_LEN].copy_from_slice(&nonce_even_osap);
        msg[NONCE_LEN..].copy_from_slice(nonce_odd_osap);
        let shared = hmac_sha1(entity_auth, &msg);
        let handle = self.next_handle;
        self.next_handle += 1;
        self.sessions.insert(
            handle,
            Session {
                kind: SessionKind::Osap,
                nonce_even,
                shared_secret: Some(shared),
                bound_entity: Some((entity_type, entity_value)),
            },
        );
        Some((handle, nonce_even, nonce_even_osap))
    }

    /// Access a session.
    pub fn get(&self, handle: u32) -> Option<&Session> {
        self.sessions.get(&handle)
    }

    /// Resolve the HMAC key a session uses against `entity`: the entity's
    /// own auth secret for OIAP, the stored shared secret for OSAP (or
    /// `None` when the OSAP session is bound to a different entity).
    /// Handlers need this before [`SessionTable::verify`] to decrypt ADIP
    /// fields and to MAC the response.
    pub fn resolve_key(
        &self,
        handle: u32,
        entity: (u16, u32),
        entity_auth: &[u8; DIGEST_LEN],
    ) -> Option<[u8; DIGEST_LEN]> {
        let session = self.sessions.get(&handle)?;
        match session.kind {
            SessionKind::Oiap => Some(*entity_auth),
            SessionKind::Osap => {
                if session.bound_entity != Some(entity) {
                    return None;
                }
                session.shared_secret
            }
        }
    }

    /// Verify a command auth block for session `handle`.
    ///
    /// `in_param_digest` is `SHA1(ordinal || inParams)`; `entity_auth` is
    /// the auth secret of the entity the command targets (used for OIAP;
    /// OSAP uses the stored shared secret — and rejects a mismatched
    /// entity). On success the session's nonceEven rolls to a fresh value,
    /// which is also returned for the response block.
    #[allow(clippy::too_many_arguments)]
    pub fn verify(
        &mut self,
        handle: u32,
        entity: (u16, u32),
        entity_auth: &[u8; DIGEST_LEN],
        in_param_digest: &[u8; DIGEST_LEN],
        nonce_odd: &[u8; NONCE_LEN],
        continue_session: bool,
        auth: &[u8; AUTH_LEN],
        rng: &mut Drbg,
    ) -> (AuthCheck, Option<[u8; NONCE_LEN]>) {
        let session = match self.sessions.get(&handle) {
            Some(s) => s.clone(),
            None => return (AuthCheck::BadHandle, None),
        };
        let key: [u8; DIGEST_LEN] = match session.kind {
            SessionKind::Oiap => *entity_auth,
            SessionKind::Osap => {
                if session.bound_entity != Some(entity) {
                    self.sessions.remove(&handle);
                    return (AuthCheck::Failed, None);
                }
                session.shared_secret.expect("OSAP has shared secret")
            }
        };
        let expected = auth_mac(&key, in_param_digest, &session.nonce_even, nonce_odd, continue_session);
        if !ct_eq(&expected, auth) {
            // Spec: auth failure terminates the session.
            self.sessions.remove(&handle);
            return (AuthCheck::Failed, None);
        }
        // Roll nonceEven.
        let mut fresh = [0u8; NONCE_LEN];
        rng.fill_bytes(&mut fresh);
        if continue_session {
            self.sessions.get_mut(&handle).expect("present").nonce_even = fresh;
        } else {
            self.sessions.remove(&handle);
        }
        (AuthCheck::Ok, Some(fresh))
    }

    /// Compute the response auth block:
    /// `HMAC(key, SHA1(rc || ordinal || outParams) || newNonceEven || nonceOdd || continue)`.
    pub fn response_auth(
        key: &[u8; DIGEST_LEN],
        out_param_digest: &[u8; DIGEST_LEN],
        new_nonce_even: &[u8; NONCE_LEN],
        nonce_odd: &[u8; NONCE_LEN],
        continue_session: bool,
    ) -> [u8; AUTH_LEN] {
        auth_mac(key, out_param_digest, new_nonce_even, nonce_odd, continue_session)
    }

    /// Close a session explicitly (TPM_FlushSpecific).
    pub fn flush(&mut self, handle: u32) -> bool {
        self.sessions.remove(&handle).is_some()
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Drop all sessions (startup).
    pub fn clear(&mut self) {
        self.sessions.clear();
    }
}

/// The shared MAC shape for command and response auth.
fn auth_mac(
    key: &[u8; DIGEST_LEN],
    param_digest: &[u8; DIGEST_LEN],
    nonce_even: &[u8; NONCE_LEN],
    nonce_odd: &[u8; NONCE_LEN],
    continue_session: bool,
) -> [u8; AUTH_LEN] {
    let mut msg = [0u8; DIGEST_LEN + 2 * NONCE_LEN + 1];
    msg[..DIGEST_LEN].copy_from_slice(param_digest);
    msg[DIGEST_LEN..DIGEST_LEN + NONCE_LEN].copy_from_slice(nonce_even);
    msg[DIGEST_LEN + NONCE_LEN..DIGEST_LEN + 2 * NONCE_LEN].copy_from_slice(nonce_odd);
    msg[DIGEST_LEN + 2 * NONCE_LEN] = continue_session as u8;
    hmac_sha1(key, &msg)
}

/// Caller-side helper: compute the command auth block. Used by the vTPM
/// front-end library and tests; mirrors the TPM-side MAC computation.
pub fn command_auth(
    key: &[u8; DIGEST_LEN],
    ordinal: u32,
    in_params: &[u8],
    nonce_even: &[u8; NONCE_LEN],
    nonce_odd: &[u8; NONCE_LEN],
    continue_session: bool,
) -> [u8; AUTH_LEN] {
    let digest = param_digest(ordinal, in_params);
    auth_mac(key, &digest, nonce_even, nonce_odd, continue_session)
}

/// `SHA1(ordinal || params)` — the inParamDigest / outParamDigest shape.
pub fn param_digest(ordinal_or_rc_ordinal: u32, params: &[u8]) -> [u8; DIGEST_LEN] {
    let mut buf = Vec::with_capacity(4 + params.len());
    buf.extend_from_slice(&ordinal_or_rc_ordinal.to_be_bytes());
    buf.extend_from_slice(params);
    sha1(&buf)
}

/// `SHA1(rc || ordinal || outParams)` for responses.
pub fn out_param_digest(rc: u32, ordinal: u32, out_params: &[u8]) -> [u8; DIGEST_LEN] {
    let mut buf = Vec::with_capacity(8 + out_params.len());
    buf.extend_from_slice(&rc.to_be_bytes());
    buf.extend_from_slice(&ordinal.to_be_bytes());
    buf.extend_from_slice(out_params);
    sha1(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Drbg {
        Drbg::new(b"session-tests")
    }

    const ENTITY: (u16, u32) = (0x0001, 42);

    #[test]
    fn oiap_verify_roundtrip() {
        let mut rng = rng();
        let mut table = SessionTable::new(4);
        let auth_secret = [9u8; 20];
        let (h, nonce_even) = table.open_oiap(&mut rng).unwrap();

        let digest = param_digest(0x14, b"params");
        let nonce_odd = [1u8; 20];
        let mac = auth_mac(&auth_secret, &digest, &nonce_even, &nonce_odd, true);
        let (check, fresh) =
            table.verify(h, ENTITY, &auth_secret, &digest, &nonce_odd, true, &mac, &mut rng);
        assert_eq!(check, AuthCheck::Ok);
        let fresh = fresh.unwrap();
        assert_ne!(fresh, nonce_even, "nonceEven must roll");
        // Session still live (continue = true) with the rolled nonce.
        assert_eq!(table.get(h).unwrap().nonce_even, fresh);
    }

    #[test]
    fn wrong_secret_fails_and_kills_session() {
        let mut rng = rng();
        let mut table = SessionTable::new(4);
        let (h, nonce_even) = table.open_oiap(&mut rng).unwrap();
        let digest = param_digest(0x14, b"params");
        let nonce_odd = [1u8; 20];
        let mac = auth_mac(&[8u8; 20], &digest, &nonce_even, &nonce_odd, true);
        let (check, _) =
            table.verify(h, ENTITY, &[9u8; 20], &digest, &nonce_odd, true, &mac, &mut rng);
        assert_eq!(check, AuthCheck::Failed);
        assert!(table.get(h).is_none(), "failed auth terminates the session");
    }

    #[test]
    fn replay_rejected_by_rolling_nonce() {
        let mut rng = rng();
        let mut table = SessionTable::new(4);
        let secret = [9u8; 20];
        let (h, nonce_even) = table.open_oiap(&mut rng).unwrap();
        let digest = param_digest(0x14, b"params");
        let nonce_odd = [1u8; 20];
        let mac = auth_mac(&secret, &digest, &nonce_even, &nonce_odd, true);
        let (c1, _) = table.verify(h, ENTITY, &secret, &digest, &nonce_odd, true, &mac, &mut rng);
        assert_eq!(c1, AuthCheck::Ok);
        // Same bytes again: nonceEven rolled, so the MAC no longer matches.
        let (c2, _) = table.verify(h, ENTITY, &secret, &digest, &nonce_odd, true, &mac, &mut rng);
        assert_eq!(c2, AuthCheck::Failed);
    }

    #[test]
    fn continue_false_closes_session() {
        let mut rng = rng();
        let mut table = SessionTable::new(4);
        let secret = [9u8; 20];
        let (h, nonce_even) = table.open_oiap(&mut rng).unwrap();
        let digest = param_digest(0x15, b"");
        let nonce_odd = [2u8; 20];
        let mac = auth_mac(&secret, &digest, &nonce_even, &nonce_odd, false);
        let (c, _) = table.verify(h, ENTITY, &secret, &digest, &nonce_odd, false, &mac, &mut rng);
        assert_eq!(c, AuthCheck::Ok);
        assert!(table.get(h).is_none());
    }

    #[test]
    fn osap_uses_shared_secret_and_binds_entity() {
        let mut rng = rng();
        let mut table = SessionTable::new(4);
        let entity_auth = [5u8; 20];
        let nonce_odd_osap = [6u8; 20];
        let (h, nonce_even, nonce_even_osap) =
            table.open_osap(ENTITY.0, ENTITY.1, &entity_auth, &nonce_odd_osap, &mut rng).unwrap();

        // Client derives the same shared secret.
        let mut msg = [0u8; 40];
        msg[..20].copy_from_slice(&nonce_even_osap);
        msg[20..].copy_from_slice(&nonce_odd_osap);
        let shared = hmac_sha1(&entity_auth, &msg);

        let digest = param_digest(0x17, b"seal-params");
        let nonce_odd = [7u8; 20];
        let mac = auth_mac(&shared, &digest, &nonce_even, &nonce_odd, true);
        // NOTE: entity_auth argument is ignored for OSAP; pass zeros.
        let (c, _) =
            table.verify(h, ENTITY, &[0; 20], &digest, &nonce_odd, true, &mac, &mut rng);
        assert_eq!(c, AuthCheck::Ok);
    }

    #[test]
    fn osap_wrong_entity_rejected() {
        let mut rng = rng();
        let mut table = SessionTable::new(4);
        let entity_auth = [5u8; 20];
        let nonce_odd_osap = [6u8; 20];
        let (h, nonce_even, nonce_even_osap) =
            table.open_osap(ENTITY.0, ENTITY.1, &entity_auth, &nonce_odd_osap, &mut rng).unwrap();
        let mut msg = [0u8; 40];
        msg[..20].copy_from_slice(&nonce_even_osap);
        msg[20..].copy_from_slice(&nonce_odd_osap);
        let shared = hmac_sha1(&entity_auth, &msg);
        let digest = param_digest(0x17, b"x");
        let nonce_odd = [7u8; 20];
        let mac = auth_mac(&shared, &digest, &nonce_even, &nonce_odd, true);
        // Different entity than the session was opened for.
        let (c, _) =
            table.verify(h, (0x0001, 43), &[0; 20], &digest, &nonce_odd, true, &mac, &mut rng);
        assert_eq!(c, AuthCheck::Failed);
    }

    #[test]
    fn capacity_enforced() {
        let mut rng = rng();
        let mut table = SessionTable::new(2);
        table.open_oiap(&mut rng).unwrap();
        table.open_oiap(&mut rng).unwrap();
        assert!(table.open_oiap(&mut rng).is_none());
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn flush_and_clear() {
        let mut rng = rng();
        let mut table = SessionTable::new(4);
        let (h, _) = table.open_oiap(&mut rng).unwrap();
        assert!(table.flush(h));
        assert!(!table.flush(h));
        table.open_oiap(&mut rng).unwrap();
        table.clear();
        assert!(table.is_empty());
    }

    #[test]
    fn bad_handle_reported() {
        let mut rng = rng();
        let mut table = SessionTable::new(4);
        let digest = [0u8; 20];
        let (c, _) =
            table.verify(0xdead, ENTITY, &[0; 20], &digest, &[0; 20], true, &[0; 20], &mut rng);
        assert_eq!(c, AuthCheck::BadHandle);
    }

    #[test]
    fn response_auth_shape() {
        let key = [1u8; 20];
        let od = out_param_digest(0, 0x14, b"out");
        let r1 = SessionTable::response_auth(&key, &od, &[2; 20], &[3; 20], true);
        let r2 = SessionTable::response_auth(&key, &od, &[2; 20], &[3; 20], false);
        assert_ne!(r1, r2, "continue flag is MAC'd");
    }
}
