//! Client-side TPM 1.2 driver: builds command byte streams, manages
//! authorization sessions, verifies response MACs.
//!
//! This is the code that runs *inside a guest* in the vTPM architecture
//! (the kernel TPM driver + trousers equivalent). It talks to any
//! [`Transport`] — a direct in-process TPM for unit tests, or the
//! tpmfront/ring path in the full stack.

use tpm_crypto::drbg::Drbg;
use tpm_crypto::hmac::ct_eq;
use tpm_crypto::rsa::RsaPublicKey;
use tpm_crypto::BigUint;

use crate::buffer::{Reader, Writer};
use crate::keys::KeyBlob;
use crate::pcr::PcrSelection;
use crate::session::{command_auth, out_param_digest, SessionTable};
use crate::tpm::{adip_encrypt, SealedBlob};
use crate::types::{entity, ordinal, rc, tag, KeyUsage, DIGEST_LEN};

/// Anything that can carry a TPM command and return its response.
pub trait Transport {
    /// Send `cmd`, receive the full response buffer.
    fn transact(&mut self, cmd: &[u8]) -> Vec<u8>;
}

impl<T: Transport + ?Sized> Transport for &mut T {
    fn transact(&mut self, cmd: &[u8]) -> Vec<u8> {
        (**self).transact(cmd)
    }
}

/// Direct in-process transport (tests, manager-internal use).
pub struct DirectTransport<'a> {
    /// The TPM to drive.
    pub tpm: &'a mut crate::tpm::Tpm,
    /// Locality commands arrive at.
    pub locality: u8,
}

impl Transport for DirectTransport<'_> {
    fn transact(&mut self, cmd: &[u8]) -> Vec<u8> {
        self.tpm.execute(self.locality, cmd)
    }
}

/// Client-side errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The TPM returned a non-zero code.
    Tpm(u32),
    /// Response could not be parsed.
    Malformed,
    /// The response authorization MAC failed — the transport tampered
    /// with the reply (or impersonated the TPM).
    ResponseAuth,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Tpm(code) => write!(f, "TPM error {code:#x}"),
            ClientError::Malformed => write!(f, "malformed TPM response"),
            ClientError::ResponseAuth => write!(f, "response authorization MAC mismatch"),
        }
    }
}

impl std::error::Error for ClientError {}

type Result<T> = std::result::Result<T, ClientError>;

/// An open auth session tracked by the client.
struct ClientSession {
    handle: u32,
    nonce_even: [u8; 20],
    /// HMAC key: entity auth (OIAP) or shared secret (OSAP).
    key: [u8; DIGEST_LEN],
}

/// The session-managing TPM client.
pub struct TpmClient<T: Transport> {
    transport: T,
    rng: Drbg,
}

impl<T: Transport> TpmClient<T> {
    /// Wrap a transport. `seed` drives client-side nonces.
    pub fn new(transport: T, seed: &[u8]) -> Self {
        TpmClient { transport, rng: Drbg::new(seed) }
    }

    /// Access the underlying transport.
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    fn nonce(&mut self) -> [u8; 20] {
        let mut n = [0u8; 20];
        self.rng.fill_bytes(&mut n);
        n
    }

    // ---- plain commands ----------------------------------------------------

    fn simple(&mut self, ord: u32, params: &[u8]) -> Result<Vec<u8>> {
        let mut w = Writer::with_capacity(10 + params.len());
        w.u16(tag::RQU_COMMAND).u32(0).u32(ord).bytes(params);
        let total = w.len() as u32;
        w.patch_u32(2, total);
        let resp = self.transport.transact(w.as_slice());
        let (tag_v, code, body) =
            crate::tpm::parse_response(&resp).map_err(|_| ClientError::Malformed)?;
        if code != rc::SUCCESS {
            return Err(ClientError::Tpm(code));
        }
        if tag_v != tag::RSP_COMMAND {
            return Err(ClientError::Malformed);
        }
        Ok(body.to_vec())
    }

    /// TPM_Startup(ST_CLEAR).
    pub fn startup_clear(&mut self) -> Result<()> {
        self.simple(ordinal::STARTUP, &0x0001u16.to_be_bytes()).map(|_| ())
    }

    /// TPM_Startup(ST_STATE) — resume with preserved PCRs.
    pub fn startup_state(&mut self) -> Result<()> {
        self.simple(ordinal::STARTUP, &0x0002u16.to_be_bytes()).map(|_| ())
    }

    /// TPM_GetRandom.
    pub fn get_random(&mut self, n: u32) -> Result<Vec<u8>> {
        let body = self.simple(ordinal::GET_RANDOM, &n.to_be_bytes())?;
        let mut r = Reader::new(&body);
        Ok(r.sized_u32().map_err(|_| ClientError::Malformed)?.to_vec())
    }

    /// TPM_PcrRead.
    pub fn pcr_read(&mut self, index: u32) -> Result<[u8; 20]> {
        let body = self.simple(ordinal::PCR_READ, &index.to_be_bytes())?;
        body.as_slice().try_into().map_err(|_| ClientError::Malformed)
    }

    /// TPM_Extend.
    pub fn extend(&mut self, index: u32, digest: &[u8; 20]) -> Result<[u8; 20]> {
        let mut params = Writer::with_capacity(24);
        params.u32(index).bytes(digest);
        let body = self.simple(ordinal::EXTEND, params.as_slice())?;
        body.as_slice().try_into().map_err(|_| ClientError::Malformed)
    }

    /// TPM_PCR_Reset.
    pub fn pcr_reset(&mut self, selection: &PcrSelection) -> Result<()> {
        self.simple(ordinal::PCR_RESET, &selection.encode()).map(|_| ())
    }

    /// TPM_ReadPubek — returns the EK public key.
    pub fn read_pubek(&mut self) -> Result<RsaPublicKey> {
        let body = self.simple(ordinal::READ_PUBEK, &[])?;
        let mut r = Reader::new(&body);
        let n = r.sized_u32().map_err(|_| ClientError::Malformed)?;
        Ok(RsaPublicKey {
            n: BigUint::from_bytes_be(n),
            e: BigUint::from_u64(tpm_crypto::rsa::E),
        })
    }

    /// TPM_GetCapability (property subcaps).
    pub fn get_capability(&mut self, cap: u32, sub: u32) -> Result<u32> {
        let mut params = Writer::new();
        params.u32(cap).u32(sub);
        let body = self.simple(ordinal::GET_CAPABILITY, params.as_slice())?;
        let mut r = Reader::new(&body);
        let v = r.sized_u32().map_err(|_| ClientError::Malformed)?;
        Ok(u32::from_be_bytes(v.try_into().map_err(|_| ClientError::Malformed)?))
    }

    /// TPM_FlushSpecific on a key handle.
    pub fn flush_key(&mut self, handle: u32) -> Result<()> {
        let mut params = Writer::new();
        params.u32(handle).u32(0x0000_0001);
        self.simple(ordinal::FLUSH_SPECIFIC, params.as_slice()).map(|_| ())
    }

    // ---- session machinery ----------------------------------------------------

    fn open_oiap(&mut self, key: [u8; DIGEST_LEN]) -> Result<ClientSession> {
        let body = self.simple(ordinal::OIAP, &[])?;
        let mut r = Reader::new(&body);
        let handle = r.u32().map_err(|_| ClientError::Malformed)?;
        let nonce_even = r.digest().map_err(|_| ClientError::Malformed)?;
        Ok(ClientSession { handle, nonce_even, key })
    }

    fn open_osap(
        &mut self,
        etype: u16,
        evalue: u32,
        entity_auth: &[u8; DIGEST_LEN],
    ) -> Result<ClientSession> {
        let nonce_odd_osap = self.nonce();
        let mut params = Writer::new();
        params.u16(etype).u32(evalue).bytes(&nonce_odd_osap);
        let body = self.simple(ordinal::OSAP, params.as_slice())?;
        let mut r = Reader::new(&body);
        let handle = r.u32().map_err(|_| ClientError::Malformed)?;
        let nonce_even = r.digest().map_err(|_| ClientError::Malformed)?;
        let nonce_even_osap = r.digest().map_err(|_| ClientError::Malformed)?;
        let mut msg = [0u8; 40];
        msg[..20].copy_from_slice(&nonce_even_osap);
        msg[20..].copy_from_slice(&nonce_odd_osap);
        let shared = tpm_crypto::hmac_sha1(entity_auth, &msg);
        Ok(ClientSession { handle, nonce_even, key: shared })
    }

    /// Execute an auth1 command: append the auth trailer, verify the
    /// response MAC. Session is single-use (continueAuthSession = false).
    fn auth1(&mut self, ord: u32, params: &[u8], session: ClientSession) -> Result<Vec<u8>> {
        let nonce_odd = self.nonce();
        let mac = command_auth(&session.key, ord, params, &session.nonce_even, &nonce_odd, false);

        let mut w = Writer::with_capacity(10 + params.len() + 45);
        w.u16(tag::RQU_AUTH1_COMMAND).u32(0).u32(ord).bytes(params);
        w.u32(session.handle).bytes(&nonce_odd).u8(0).bytes(&mac);
        let total = w.len() as u32;
        w.patch_u32(2, total);

        let resp = self.transport.transact(w.as_slice());
        let (tag_v, code, body) =
            crate::tpm::parse_response(&resp).map_err(|_| ClientError::Malformed)?;
        if code != rc::SUCCESS {
            return Err(ClientError::Tpm(code));
        }
        if tag_v != tag::RSP_AUTH1_COMMAND || body.len() < 41 {
            return Err(ClientError::Malformed);
        }
        let out_params = &body[..body.len() - 41];
        let trailer = &body[body.len() - 41..];
        let new_nonce_even: [u8; 20] = trailer[..20].try_into().unwrap();
        let cont = trailer[20] != 0;
        let resp_mac = &trailer[21..41];
        let od = out_param_digest(code, ord, out_params);
        let expect =
            SessionTable::response_auth(&session.key, &od, &new_nonce_even, &nonce_odd, cont);
        if !ct_eq(&expect, resp_mac) {
            return Err(ClientError::ResponseAuth);
        }
        Ok(out_params.to_vec())
    }

    /// Execute an auth2 command (Unseal): two single-use sessions.
    fn auth2(
        &mut self,
        ord: u32,
        params: &[u8],
        s1: ClientSession,
        s2: ClientSession,
    ) -> Result<Vec<u8>> {
        let nonce_odd1 = self.nonce();
        let nonce_odd2 = self.nonce();
        let mac1 = command_auth(&s1.key, ord, params, &s1.nonce_even, &nonce_odd1, false);
        let mac2 = command_auth(&s2.key, ord, params, &s2.nonce_even, &nonce_odd2, false);

        let mut w = Writer::with_capacity(10 + params.len() + 90);
        w.u16(tag::RQU_AUTH2_COMMAND).u32(0).u32(ord).bytes(params);
        w.u32(s1.handle).bytes(&nonce_odd1).u8(0).bytes(&mac1);
        w.u32(s2.handle).bytes(&nonce_odd2).u8(0).bytes(&mac2);
        let total = w.len() as u32;
        w.patch_u32(2, total);

        let resp = self.transport.transact(w.as_slice());
        let (tag_v, code, body) =
            crate::tpm::parse_response(&resp).map_err(|_| ClientError::Malformed)?;
        if code != rc::SUCCESS {
            return Err(ClientError::Tpm(code));
        }
        if tag_v != tag::RSP_AUTH2_COMMAND || body.len() < 82 {
            return Err(ClientError::Malformed);
        }
        let out_params = &body[..body.len() - 82];
        let t1 = &body[body.len() - 82..body.len() - 41];
        let t2 = &body[body.len() - 41..];
        let od = out_param_digest(code, ord, out_params);
        for (trailer, sess, nonce_odd) in [(t1, &s1, &nonce_odd1), (t2, &s2, &nonce_odd2)] {
            let ne: [u8; 20] = trailer[..20].try_into().unwrap();
            let cont = trailer[20] != 0;
            let mac = &trailer[21..41];
            let expect = SessionTable::response_auth(&sess.key, &od, &ne, nonce_odd, cont);
            if !ct_eq(&expect, mac) {
                return Err(ClientError::ResponseAuth);
            }
        }
        Ok(out_params.to_vec())
    }

    // ---- authorized commands -------------------------------------------------

    /// TPM_TakeOwnership: encrypts the new owner and SRK auth secrets to
    /// the EK, authorizes with the new owner auth. Returns the SRK public
    /// modulus.
    pub fn take_ownership(
        &mut self,
        owner_auth: &[u8; 20],
        srk_auth: &[u8; 20],
    ) -> Result<Vec<u8>> {
        let ek = self.read_pubek()?;
        let enc_owner = ek
            .encrypt_oaep(owner_auth, b"TCPA", &mut self.rng)
            .map_err(|_| ClientError::Malformed)?;
        let enc_srk = ek
            .encrypt_oaep(srk_auth, b"TCPA", &mut self.rng)
            .map_err(|_| ClientError::Malformed)?;
        let mut params = Writer::new();
        params.sized_u32(&enc_owner).sized_u32(&enc_srk);
        let session = self.open_oiap(*owner_auth)?;
        let body = self.auth1(ordinal::TAKE_OWNERSHIP, params.as_slice(), session)?;
        let mut r = Reader::new(&body);
        Ok(r.sized_u32().map_err(|_| ClientError::Malformed)?.to_vec())
    }

    /// TPM_OwnerClear.
    pub fn owner_clear(&mut self, owner_auth: &[u8; 20]) -> Result<()> {
        let session = self.open_oiap(*owner_auth)?;
        self.auth1(ordinal::OWNER_CLEAR, &[], session).map(|_| ())
    }

    /// TPM_CreateWrapKey under `parent_handle`. The new key's usage auth
    /// is ADIP-encrypted inside an OSAP session on the parent.
    pub fn create_wrap_key(
        &mut self,
        parent_handle: u32,
        parent_auth: &[u8; 20],
        usage: KeyUsage,
        bits: u32,
        usage_auth: &[u8; 20],
        pcr_binding: Option<&PcrSelection>,
    ) -> Result<KeyBlob> {
        let session = self.open_osap(entity::KEYHANDLE, parent_handle, parent_auth)?;
        let enc_auth = adip_encrypt(&session.key, &session.nonce_even, usage_auth);
        let mut params = Writer::new();
        params.u32(parent_handle).bytes(&enc_auth).u16(usage.to_u16()).u32(bits);
        match pcr_binding {
            Some(sel) => {
                params.u8(1).bytes(&sel.encode()).bytes(&[0u8; 20]);
            }
            None => {
                params.u8(0);
            }
        }
        let body = self.auth1(ordinal::CREATE_WRAP_KEY, params.as_slice(), session)?;
        let mut r = Reader::new(&body);
        let blob_bytes = r.sized_u32().map_err(|_| ClientError::Malformed)?;
        let (blob, _) = KeyBlob::decode(blob_bytes).map_err(|_| ClientError::Malformed)?;
        Ok(blob)
    }

    /// TPM_LoadKey2: load a wrapped key under its parent; returns the
    /// transient handle.
    pub fn load_key2(
        &mut self,
        parent_handle: u32,
        parent_auth: &[u8; 20],
        blob: &KeyBlob,
    ) -> Result<u32> {
        let mut params = Writer::new();
        params.u32(parent_handle).sized_u32(&blob.encode());
        let session = self.open_oiap(*parent_auth)?;
        let body = self.auth1(ordinal::LOAD_KEY2, params.as_slice(), session)?;
        let mut r = Reader::new(&body);
        r.u32().map_err(|_| ClientError::Malformed)
    }

    /// TPM_Seal under storage key `key_handle`; `data_auth` protects the
    /// blob, optional PCR binding restricts unsealing.
    pub fn seal(
        &mut self,
        key_handle: u32,
        key_auth: &[u8; 20],
        data_auth: &[u8; 20],
        pcr_binding: Option<&PcrSelection>,
        data: &[u8],
    ) -> Result<SealedBlob> {
        let session = self.open_osap(entity::KEYHANDLE, key_handle, key_auth)?;
        let enc_auth = adip_encrypt(&session.key, &session.nonce_even, data_auth);
        let mut params = Writer::new();
        params.u32(key_handle).bytes(&enc_auth);
        match pcr_binding {
            Some(sel) => {
                params.u8(1).bytes(&sel.encode()).bytes(&[0u8; 20]);
            }
            None => {
                params.u8(0);
            }
        }
        params.sized_u32(data);
        let body = self.auth1(ordinal::SEAL, params.as_slice(), session)?;
        let mut r = Reader::new(&body);
        let blob_bytes = r.sized_u32().map_err(|_| ClientError::Malformed)?;
        let (blob, _) = SealedBlob::decode(blob_bytes).map_err(|_| ClientError::Malformed)?;
        Ok(blob)
    }

    /// TPM_Unseal (auth2: key session + data session).
    pub fn unseal(
        &mut self,
        key_handle: u32,
        key_auth: &[u8; 20],
        data_auth: &[u8; 20],
        blob: &SealedBlob,
    ) -> Result<Vec<u8>> {
        let mut params = Writer::new();
        params.u32(key_handle).sized_u32(&blob.encode());
        let s1 = self.open_oiap(*key_auth)?;
        let s2 = self.open_oiap(*data_auth)?;
        let body = self.auth2(ordinal::UNSEAL, params.as_slice(), s1, s2)?;
        let mut r = Reader::new(&body);
        Ok(r.sized_u32().map_err(|_| ClientError::Malformed)?.to_vec())
    }

    /// TPM_Quote with signing key `key_handle` over `selection`; returns
    /// (selected PCR values, signature).
    pub fn quote(
        &mut self,
        key_handle: u32,
        key_auth: &[u8; 20],
        external_data: &[u8; 20],
        selection: &PcrSelection,
    ) -> Result<(Vec<[u8; 20]>, Vec<u8>)> {
        let mut params = Writer::new();
        params.u32(key_handle).bytes(external_data).bytes(&selection.encode());
        let session = self.open_oiap(*key_auth)?;
        let body = self.auth1(ordinal::QUOTE, params.as_slice(), session)?;
        // Parse: selection + u32 size + values + sized sig.
        let (sel, used) = PcrSelection::decode(&body).ok_or(ClientError::Malformed)?;
        let mut r = Reader::new(&body);
        r.bytes(used).map_err(|_| ClientError::Malformed)?;
        let total = r.u32().map_err(|_| ClientError::Malformed)? as usize;
        if total != sel.count() * 20 {
            return Err(ClientError::Malformed);
        }
        let mut values = Vec::with_capacity(sel.count());
        for _ in 0..sel.count() {
            values.push(r.digest().map_err(|_| ClientError::Malformed)?);
        }
        let sig = r.sized_u32().map_err(|_| ClientError::Malformed)?.to_vec();
        Ok((values, sig))
    }

    /// TPM_Sign with signing key `key_handle`.
    pub fn sign(&mut self, key_handle: u32, key_auth: &[u8; 20], data: &[u8]) -> Result<Vec<u8>> {
        let mut params = Writer::new();
        params.u32(key_handle).sized_u32(data);
        let session = self.open_oiap(*key_auth)?;
        let body = self.auth1(ordinal::SIGN, params.as_slice(), session)?;
        let mut r = Reader::new(&body);
        Ok(r.sized_u32().map_err(|_| ClientError::Malformed)?.to_vec())
    }

    /// TPM_CreateCounter (owner-authorized, OSAP): returns (countID, value).
    pub fn create_counter(
        &mut self,
        owner_auth: &[u8; 20],
        counter_auth: &[u8; 20],
        label: [u8; 4],
    ) -> Result<(u32, u32)> {
        let session = self.open_osap(entity::OWNER, crate::types::handle::OWNER, owner_auth)?;
        let enc_auth = adip_encrypt(&session.key, &session.nonce_even, counter_auth);
        let mut params = Writer::new();
        params.bytes(&enc_auth).bytes(&label);
        let body = self.auth1(ordinal::CREATE_COUNTER, params.as_slice(), session)?;
        let mut r = Reader::new(&body);
        let id = r.u32().map_err(|_| ClientError::Malformed)?;
        let value = r.u32().map_err(|_| ClientError::Malformed)?;
        Ok((id, value))
    }

    /// TPM_IncrementCounter: returns the new value.
    pub fn increment_counter(&mut self, id: u32, counter_auth: &[u8; 20]) -> Result<u32> {
        let session = self.open_oiap(*counter_auth)?;
        let body = self.auth1(ordinal::INCREMENT_COUNTER, &id.to_be_bytes(), session)?;
        let mut r = Reader::new(&body);
        r.u32().map_err(|_| ClientError::Malformed)
    }

    /// TPM_ReadCounter: returns (label, value); no authorization.
    pub fn read_counter(&mut self, id: u32) -> Result<([u8; 4], u32)> {
        let body = self.simple(ordinal::READ_COUNTER, &id.to_be_bytes())?;
        let mut r = Reader::new(&body);
        let label: [u8; 4] = r
            .bytes(4)
            .map_err(|_| ClientError::Malformed)?
            .try_into()
            .map_err(|_| ClientError::Malformed)?;
        let value = r.u32().map_err(|_| ClientError::Malformed)?;
        Ok((label, value))
    }

    /// TPM_ReleaseCounter.
    pub fn release_counter(&mut self, id: u32, counter_auth: &[u8; 20]) -> Result<()> {
        let session = self.open_oiap(*counter_auth)?;
        self.auth1(ordinal::RELEASE_COUNTER, &id.to_be_bytes(), session).map(|_| ())
    }

    /// TPM_NV_DefineSpace (owner-authorized). `attr_bits`: bit0 owner
    /// write, bit1 owner read, bit2 write-once.
    pub fn nv_define(
        &mut self,
        owner_auth: &[u8; 20],
        index: u32,
        size: u32,
        attr_bits: u32,
    ) -> Result<()> {
        let mut params = Writer::new();
        params.u32(index).u32(size).u32(attr_bits);
        let session = self.open_oiap(*owner_auth)?;
        self.auth1(ordinal::NV_DEFINE_SPACE, params.as_slice(), session).map(|_| ())
    }

    /// TPM_NV_WriteValue; pass `owner_auth` for owner-protected areas.
    pub fn nv_write(
        &mut self,
        owner_auth: Option<&[u8; 20]>,
        index: u32,
        offset: u32,
        data: &[u8],
    ) -> Result<()> {
        let mut params = Writer::new();
        params.u32(index).u32(offset).sized_u32(data);
        match owner_auth {
            Some(auth) => {
                let session = self.open_oiap(*auth)?;
                self.auth1(ordinal::NV_WRITE_VALUE, params.as_slice(), session).map(|_| ())
            }
            None => self.simple(ordinal::NV_WRITE_VALUE, params.as_slice()).map(|_| ()),
        }
    }

    /// TPM_NV_ReadValue.
    pub fn nv_read(
        &mut self,
        owner_auth: Option<&[u8; 20]>,
        index: u32,
        offset: u32,
        len: u32,
    ) -> Result<Vec<u8>> {
        let mut params = Writer::new();
        params.u32(index).u32(offset).u32(len);
        let body = match owner_auth {
            Some(auth) => {
                let session = self.open_oiap(*auth)?;
                self.auth1(ordinal::NV_READ_VALUE, params.as_slice(), session)?
            }
            None => self.simple(ordinal::NV_READ_VALUE, params.as_slice())?,
        };
        let mut r = Reader::new(&body);
        Ok(r.sized_u32().map_err(|_| ClientError::Malformed)?.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpm::{quote_info_digest, Tpm};

    const OWNER: [u8; 20] = [1u8; 20];
    const SRK_AUTH: [u8; 20] = [2u8; 20];

    fn owned_client(tpm: &mut Tpm) -> TpmClient<DirectTransport<'_>> {
        let mut c = TpmClient::new(DirectTransport { tpm, locality: 0 }, b"client-seed");
        c.startup_clear().unwrap();
        c.take_ownership(&OWNER, &SRK_AUTH).unwrap();
        c
    }

    #[test]
    fn take_ownership_end_to_end() {
        let mut tpm = Tpm::new(b"e2e-own");
        let mut c = TpmClient::new(DirectTransport { tpm: &mut tpm, locality: 0 }, b"cl");
        c.startup_clear().unwrap();
        let srk_pub = c.take_ownership(&OWNER, &SRK_AUTH).unwrap();
        assert!(!srk_pub.is_empty());
        assert!(tpm.is_owned());
        // Second TakeOwnership refused.
        let mut c2 = TpmClient::new(DirectTransport { tpm: &mut tpm, locality: 0 }, b"cl2");
        assert_eq!(
            c2.take_ownership(&OWNER, &SRK_AUTH),
            Err(ClientError::Tpm(rc::OWNER_SET))
        );
    }

    #[test]
    fn take_ownership_then_clear() {
        let mut tpm = Tpm::new(b"e2e-clear");
        let mut c = owned_client(&mut tpm);
        c.owner_clear(&OWNER).unwrap();
        assert!(!c.transport_mut().tpm.is_owned());
    }

    #[test]
    fn owner_clear_wrong_auth_fails() {
        let mut tpm = Tpm::new(b"e2e-clear2");
        let mut c = owned_client(&mut tpm);
        assert_eq!(c.owner_clear(&[9; 20]), Err(ClientError::Tpm(rc::AUTHFAIL)));
    }

    #[test]
    fn create_load_sign_verify() {
        let mut tpm = Tpm::new(b"e2e-key");
        let mut c = owned_client(&mut tpm);
        let key_auth = [3u8; 20];
        let blob = c
            .create_wrap_key(
                crate::types::handle::SRK,
                &SRK_AUTH,
                KeyUsage::Signing,
                512,
                &key_auth,
                None,
            )
            .unwrap();
        let h = c.load_key2(crate::types::handle::SRK, &SRK_AUTH, &blob).unwrap();
        let sig = c.sign(h, &key_auth, b"message").unwrap();
        // Verify against the blob's public key.
        let pk = RsaPublicKey {
            n: BigUint::from_bytes_be(&blob.n),
            e: BigUint::from_u64(tpm_crypto::rsa::E),
        };
        assert!(pk.verify_pkcs1_sha1(b"message", &sig).is_ok());
        // Wrong key auth fails.
        assert_eq!(
            c.sign(h, &[0; 20], b"message"),
            Err(ClientError::Tpm(rc::AUTHFAIL))
        );
        c.flush_key(h).unwrap();
        assert_eq!(
            c.sign(h, &key_auth, b"m"),
            Err(ClientError::Tpm(rc::INVALID_KEYHANDLE))
        );
    }

    #[test]
    fn storage_key_cannot_sign() {
        let mut tpm = Tpm::new(b"e2e-usage");
        let mut c = owned_client(&mut tpm);
        let key_auth = [4u8; 20];
        let blob = c
            .create_wrap_key(
                crate::types::handle::SRK,
                &SRK_AUTH,
                KeyUsage::Storage,
                1024,
                &key_auth,
                None,
            )
            .unwrap();
        let h = c.load_key2(crate::types::handle::SRK, &SRK_AUTH, &blob).unwrap();
        assert_eq!(
            c.sign(h, &key_auth, b"m"),
            Err(ClientError::Tpm(rc::INVALID_KEYUSAGE))
        );
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let mut tpm = Tpm::new(b"e2e-seal");
        let mut c = owned_client(&mut tpm);
        let data_auth = [5u8; 20];
        let secret = b"master key material";
        let blob = c
            .seal(crate::types::handle::SRK, &SRK_AUTH, &data_auth, None, secret)
            .unwrap();
        let out = c
            .unseal(crate::types::handle::SRK, &SRK_AUTH, &data_auth, &blob)
            .unwrap();
        assert_eq!(out, secret);
    }

    #[test]
    fn unseal_wrong_data_auth_fails() {
        let mut tpm = Tpm::new(b"e2e-seal2");
        let mut c = owned_client(&mut tpm);
        let blob = c
            .seal(crate::types::handle::SRK, &SRK_AUTH, &[5; 20], None, b"s")
            .unwrap();
        assert_eq!(
            c.unseal(crate::types::handle::SRK, &SRK_AUTH, &[6; 20], &blob),
            Err(ClientError::Tpm(rc::AUTHFAIL))
        );
    }

    #[test]
    fn unseal_from_other_tpm_fails() {
        // A blob sealed by TPM A must not unseal on TPM B even with the
        // same SRK auth (tpmProof differs) — but B has a different SRK
        // anyway, so decryption fails outright.
        let mut tpm_a = Tpm::new(b"tpm-a");
        let blob = {
            let mut c = owned_client(&mut tpm_a);
            c.seal(crate::types::handle::SRK, &SRK_AUTH, &[5; 20], None, b"s").unwrap()
        };
        let mut tpm_b = Tpm::new(b"tpm-b");
        let mut c = owned_client(&mut tpm_b);
        assert!(matches!(
            c.unseal(crate::types::handle::SRK, &SRK_AUTH, &[5; 20], &blob),
            Err(ClientError::Tpm(_))
        ));
    }

    #[test]
    fn seal_with_pcr_binding_enforced() {
        let mut tpm = Tpm::new(b"e2e-sealpcr");
        let mut c = owned_client(&mut tpm);
        let sel = PcrSelection::of(&[10]);
        let data_auth = [5u8; 20];
        let blob = c
            .seal(crate::types::handle::SRK, &SRK_AUTH, &data_auth, Some(&sel), b"pcr-bound")
            .unwrap();
        // Unseals while PCR 10 unchanged.
        let out = c
            .unseal(crate::types::handle::SRK, &SRK_AUTH, &data_auth, &blob)
            .unwrap();
        assert_eq!(out, b"pcr-bound");
        // Extend PCR 10 -> refused.
        c.extend(10, &[0xEE; 20]).unwrap();
        assert_eq!(
            c.unseal(crate::types::handle::SRK, &SRK_AUTH, &data_auth, &blob),
            Err(ClientError::Tpm(rc::WRONGPCRVAL))
        );
    }

    #[test]
    fn quote_signature_verifies() {
        let mut tpm = Tpm::new(b"e2e-quote");
        let mut c = owned_client(&mut tpm);
        let key_auth = [6u8; 20];
        let blob = c
            .create_wrap_key(
                crate::types::handle::SRK,
                &SRK_AUTH,
                KeyUsage::Signing,
                512,
                &key_auth,
                None,
            )
            .unwrap();
        let h = c.load_key2(crate::types::handle::SRK, &SRK_AUTH, &blob).unwrap();
        c.extend(7, &[0x11; 20]).unwrap();
        let sel = PcrSelection::of(&[7]);
        let external = [0x42u8; 20];
        let (values, sig) = c.quote(h, &key_auth, &external, &sel).unwrap();
        assert_eq!(values.len(), 1);
        // Reconstruct the quote digest and verify.
        let composite = c.transport_mut().tpm.pcrs().composite_hash(&sel);
        let digest = quote_info_digest(&composite, &external);
        let pk = RsaPublicKey {
            n: BigUint::from_bytes_be(&blob.n),
            e: BigUint::from_u64(tpm_crypto::rsa::E),
        };
        assert!(pk.verify_pkcs1_sha1(&digest, &sig).is_ok());
        // A different external nonce must not verify against this sig.
        let digest2 = quote_info_digest(&composite, &[0x43; 20]);
        assert!(pk.verify_pkcs1_sha1(&digest2, &sig).is_err());
    }

    #[test]
    fn nv_cycle_via_client() {
        let mut tpm = Tpm::new(b"e2e-nv");
        let mut c = owned_client(&mut tpm);
        c.nv_define(&OWNER, 0x10, 32, 0x1).unwrap();
        c.nv_write(Some(&OWNER), 0x10, 0, b"persisted").unwrap();
        assert_eq!(c.nv_read(None, 0x10, 0, 9).unwrap(), b"persisted");
        // Owner-write area refuses unauthenticated writes.
        assert!(matches!(c.nv_write(None, 0x10, 0, b"x"), Err(ClientError::Tpm(_))));
        // Wrong owner auth for define.
        assert!(matches!(c.nv_define(&[9; 20], 0x11, 8, 0), Err(ClientError::Tpm(_))));
    }

    #[test]
    fn pcr_extend_via_client_matches_direct() {
        let mut tpm = Tpm::new(b"e2e-pcr");
        let mut c = TpmClient::new(DirectTransport { tpm: &mut tpm, locality: 0 }, b"cl");
        c.startup_clear().unwrap();
        let v = c.extend(1, &[7; 20]).unwrap();
        assert_eq!(c.pcr_read(1).unwrap(), v);
    }

    #[test]
    fn get_random_via_client() {
        let mut tpm = Tpm::new(b"e2e-rand");
        let mut c = TpmClient::new(DirectTransport { tpm: &mut tpm, locality: 0 }, b"cl");
        c.startup_clear().unwrap();
        let a = c.get_random(32).unwrap();
        let b = c.get_random(32).unwrap();
        assert_eq!(a.len(), 32);
        assert_ne!(a, b);
    }

    #[test]
    fn counter_lifecycle_via_client() {
        let mut tpm = Tpm::new(b"e2e-counter");
        let mut c = owned_client(&mut tpm);
        let cauth = [7u8; 20];
        let (id, v0) = c.create_counter(&OWNER, &cauth, *b"rbak").unwrap();
        assert_eq!(v0, 1);
        assert_eq!(c.increment_counter(id, &cauth).unwrap(), 2);
        assert_eq!(c.increment_counter(id, &cauth).unwrap(), 3);
        let (label, v) = c.read_counter(id).unwrap();
        assert_eq!(label, *b"rbak");
        assert_eq!(v, 3);
        // Wrong auth fails, counter unchanged.
        assert_eq!(
            c.increment_counter(id, &[0; 20]),
            Err(ClientError::Tpm(rc::AUTHFAIL))
        );
        assert_eq!(c.read_counter(id).unwrap().1, 3);
        c.release_counter(id, &cauth).unwrap();
        assert!(matches!(c.read_counter(id), Err(ClientError::Tpm(_))));
    }

    #[test]
    fn create_counter_requires_owner() {
        let mut tpm = Tpm::new(b"e2e-counter2");
        let mut c = owned_client(&mut tpm);
        assert!(matches!(
            c.create_counter(&[9; 20], &[7; 20], *b"nope"),
            Err(ClientError::Tpm(_))
        ));
    }

    #[test]
    fn one_active_counter_per_boot_via_wire() {
        let mut tpm = Tpm::new(b"e2e-counter3");
        let mut c = owned_client(&mut tpm);
        let ca = [7u8; 20];
        let cb = [8u8; 20];
        let (a, _) = c.create_counter(&OWNER, &ca, *b"ctra").unwrap();
        let (b, _) = c.create_counter(&OWNER, &cb, *b"ctrb").unwrap();
        c.increment_counter(a, &ca).unwrap();
        assert_eq!(
            c.increment_counter(b, &cb),
            Err(ClientError::Tpm(rc::BAD_PARAMETER))
        );
        // Resume (not clear — that wipes PCRs but counters persist either
        // way) frees the active slot.
        c.startup_state().unwrap();
        assert_eq!(c.increment_counter(b, &cb).unwrap(), 2);
    }

    #[test]
    fn response_tamper_detected() {
        // A transport that flips a bit in auth1 response bodies.
        struct Tamper<'a>(&'a mut Tpm);
        impl Transport for Tamper<'_> {
            fn transact(&mut self, cmd: &[u8]) -> Vec<u8> {
                let mut resp = self.0.execute(0, cmd);
                let (t, code, _) = crate::tpm::parse_response(&resp).unwrap();
                if t == tag::RSP_AUTH1_COMMAND && code == rc::SUCCESS && resp.len() > 60 {
                    resp[12] ^= 0x01; // flip a bit inside outParams
                }
                resp
            }
        }
        let mut tpm = Tpm::new(b"e2e-tamper");
        {
            let _ = owned_client(&mut tpm);
        }
        let mut c = TpmClient::new(Tamper(&mut tpm), b"cl");
        let blob = c.create_wrap_key(
            crate::types::handle::SRK,
            &SRK_AUTH,
            KeyUsage::Signing,
            512,
            &[0; 20],
            None,
        );
        assert_eq!(blob.err(), Some(ClientError::ResponseAuth));
    }
}
