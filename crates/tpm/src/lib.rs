//! # tpm
//!
//! A from-scratch software TPM 1.2 emulator for the vtpm-xen reproduction.
//!
//! The Xen vTPM architecture needs two TPMs: the *hardware* TPM rooted in
//! the platform (which the vTPM manager seals its state to) and one
//! *virtual* TPM instance per guest. Both are instances of [`Tpm`] here.
//!
//! What's implemented (all on the real TPM 1.2 wire format, big-endian,
//! with genuine tags/ordinals/return codes):
//!
//! * command dispatch with strict size/tag validation ([`tpm`]);
//! * PCRs, extend semantics, locality-gated reset, composite hashes
//!   ([`pcr`]);
//! * OIAP/OSAP authorization sessions with rolling nonces and
//!   constant-time HMAC checks ([`session`]);
//! * the EK/SRK key hierarchy with OAEP-wrapped child keys ([`keys`]);
//! * Seal/Unseal with tpmProof and PCR bindings, Quote, Sign;
//! * NV storage with owner/PCR protections ([`nv`]);
//! * permanent-state snapshots for vTPM persistence and migration
//!   ([`state`]);
//! * a client-side driver that builds byte-exact commands and verifies
//!   response MACs ([`client`]);
//! * a hardware-latency cost model for virtual-time accounting
//!   ([`timing`]).

pub mod buffer;
pub mod client;
pub mod counter;
pub mod keys;
pub mod nv;
pub mod pcr;
pub mod session;
pub mod state;
pub mod timing;
#[allow(clippy::module_inception)]
pub mod tpm;
pub mod types;

pub use client::{ClientError, DirectTransport, TpmClient, Transport};
pub use counter::{Counter, CounterError, CounterStore};
pub use keys::{KeyBlob, KeyError, LoadedKey};
pub use nv::{NvArea, NvAttributes, NvError, NvStore};
pub use pcr::{PcrBank, PcrSelection};
pub use state::StateError;
pub use timing::{command_cost_ns, ordinal_of};
pub use tpm::{parse_response, pcr_composite_digest, quote_info_digest, SealedBlob, Tpm, TpmConfig};
pub use types::{handle, ordinal, rc, tag, KeyUsage, DIGEST_LEN, NUM_PCRS};
