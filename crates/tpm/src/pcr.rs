//! Platform Configuration Registers.
//!
//! 24 SHA-1-sized registers. `extend` is the only way to change most of
//! them (`new = SHA1(old || input)`), which is what makes them useful as a
//! tamper-evident measurement log. PCRs 16–23 are resettable from
//! sufficient localities, as in the 1.2 PC-client profile.

use tpm_crypto::sha1;

use crate::types::{DIGEST_LEN, NUM_PCRS};

/// A PCR selection bitmap (TPM_PCR_SELECTION): 3 bytes covering 24 PCRs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PcrSelection {
    bits: [u8; 3],
}

impl PcrSelection {
    /// Empty selection.
    pub fn none() -> Self {
        Self::default()
    }

    /// Selection containing exactly the listed indices.
    pub fn of(indices: &[usize]) -> Self {
        let mut s = Self::default();
        for &i in indices {
            s.select(i);
        }
        s
    }

    /// Add PCR `i` to the selection.
    pub fn select(&mut self, i: usize) {
        assert!(i < NUM_PCRS, "pcr index {i} out of range");
        self.bits[i / 8] |= 1 << (i % 8);
    }

    /// Whether PCR `i` is selected.
    pub fn contains(&self, i: usize) -> bool {
        i < NUM_PCRS && self.bits[i / 8] & (1 << (i % 8)) != 0
    }

    /// Selected indices in ascending order.
    pub fn indices(&self) -> Vec<usize> {
        (0..NUM_PCRS).filter(|&i| self.contains(i)).collect()
    }

    /// Number of selected PCRs.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Wire encoding: u16 size (always 3 here) + bitmap.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(5);
        v.extend_from_slice(&3u16.to_be_bytes());
        v.extend_from_slice(&self.bits);
        v
    }

    /// Parse the wire encoding.
    pub fn decode(data: &[u8]) -> Option<(Self, usize)> {
        if data.len() < 2 {
            return None;
        }
        let size = u16::from_be_bytes([data[0], data[1]]) as usize;
        if size > 3 || data.len() < 2 + size {
            return None;
        }
        let mut bits = [0u8; 3];
        bits[..size].copy_from_slice(&data[2..2 + size]);
        Some((PcrSelection { bits }, 2 + size))
    }
}

/// The PCR bank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcrBank {
    values: [[u8; DIGEST_LEN]; NUM_PCRS],
}

/// First resettable PCR (PC-client: 16..23 are resettable).
pub const FIRST_RESETTABLE: usize = 16;

impl Default for PcrBank {
    fn default() -> Self {
        Self::new()
    }
}

impl PcrBank {
    /// All-zero bank (post-TPM_Startup(CLEAR) state).
    pub fn new() -> Self {
        PcrBank { values: [[0; DIGEST_LEN]; NUM_PCRS] }
    }

    /// Read PCR `i`.
    pub fn read(&self, i: usize) -> Option<[u8; DIGEST_LEN]> {
        self.values.get(i).copied()
    }

    /// Extend PCR `i` with `input`, returning the new value.
    pub fn extend(&mut self, i: usize, input: &[u8; DIGEST_LEN]) -> Option<[u8; DIGEST_LEN]> {
        let cur = self.values.get_mut(i)?;
        let mut buf = [0u8; 2 * DIGEST_LEN];
        buf[..DIGEST_LEN].copy_from_slice(cur);
        buf[DIGEST_LEN..].copy_from_slice(input);
        *cur = sha1(&buf);
        Some(*cur)
    }

    /// Reset PCR `i` to zero; only resettable PCRs, and only from locality
    /// >= 2 (simplified PC-client rule). Returns false when refused.
    pub fn reset(&mut self, i: usize, locality: u8) -> bool {
        if !(FIRST_RESETTABLE..NUM_PCRS).contains(&i) || locality < 2 {
            return false;
        }
        self.values[i] = [0; DIGEST_LEN];
        true
    }

    /// TPM_COMPOSITE_HASH over the selected PCRs:
    /// `SHA1(selection || u32 valueSize || value_0 .. value_k)`.
    pub fn composite_hash(&self, selection: &PcrSelection) -> [u8; DIGEST_LEN] {
        let indices = selection.indices();
        let mut buf = Vec::with_capacity(5 + 4 + indices.len() * DIGEST_LEN);
        buf.extend_from_slice(&selection.encode());
        buf.extend_from_slice(&((indices.len() * DIGEST_LEN) as u32).to_be_bytes());
        for i in indices {
            buf.extend_from_slice(&self.values[i]);
        }
        sha1(&buf)
    }

    /// Raw snapshot for state serialization.
    pub fn snapshot(&self) -> &[[u8; DIGEST_LEN]; NUM_PCRS] {
        &self.values
    }

    /// Restore from a snapshot.
    pub fn restore(values: [[u8; DIGEST_LEN]; NUM_PCRS]) -> Self {
        PcrBank { values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_bank_is_zero() {
        let b = PcrBank::new();
        assert_eq!(b.read(0).unwrap(), [0; 20]);
        assert_eq!(b.read(23).unwrap(), [0; 20]);
        assert!(b.read(24).is_none());
    }

    #[test]
    fn extend_known_value() {
        let mut b = PcrBank::new();
        let input = [0xAAu8; 20];
        let v1 = b.extend(5, &input).unwrap();
        // extend = SHA1(zeros || input)
        let mut expect_in = [0u8; 40];
        expect_in[20..].copy_from_slice(&input);
        assert_eq!(v1, sha1(&expect_in));
        // Extending again changes it (not idempotent).
        let v2 = b.extend(5, &input).unwrap();
        assert_ne!(v1, v2);
        // Other PCRs untouched.
        assert_eq!(b.read(4).unwrap(), [0; 20]);
    }

    #[test]
    fn extend_order_matters() {
        let mut b1 = PcrBank::new();
        let mut b2 = PcrBank::new();
        let a = [1u8; 20];
        let c = [2u8; 20];
        b1.extend(0, &a);
        b1.extend(0, &c);
        b2.extend(0, &c);
        b2.extend(0, &a);
        assert_ne!(b1.read(0), b2.read(0), "PCR chains are order-sensitive");
    }

    #[test]
    fn reset_rules() {
        let mut b = PcrBank::new();
        b.extend(16, &[1; 20]).unwrap();
        b.extend(3, &[1; 20]).unwrap();
        // Low PCRs never reset.
        assert!(!b.reset(3, 4));
        // Resettable PCR needs locality >= 2.
        assert!(!b.reset(16, 1));
        assert!(b.reset(16, 2));
        assert_eq!(b.read(16).unwrap(), [0; 20]);
        // Out of range.
        assert!(!b.reset(24, 4));
    }

    #[test]
    fn selection_bitmap() {
        let s = PcrSelection::of(&[0, 7, 8, 23]);
        assert!(s.contains(0) && s.contains(7) && s.contains(8) && s.contains(23));
        assert!(!s.contains(1) && !s.contains(22));
        assert_eq!(s.count(), 4);
        assert_eq!(s.indices(), vec![0, 7, 8, 23]);
        assert!(!s.contains(99));
    }

    #[test]
    fn selection_wire_roundtrip() {
        let s = PcrSelection::of(&[3, 17]);
        let enc = s.encode();
        assert_eq!(enc.len(), 5);
        let (s2, used) = PcrSelection::decode(&enc).unwrap();
        assert_eq!(used, 5);
        assert_eq!(s, s2);
        assert!(PcrSelection::decode(&[0x00]).is_none());
        assert!(PcrSelection::decode(&[0x00, 0x09]).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn selecting_out_of_range_panics() {
        PcrSelection::of(&[24]);
    }

    #[test]
    fn composite_hash_tracks_values_and_selection() {
        let mut b = PcrBank::new();
        let sel = PcrSelection::of(&[1, 2]);
        let h0 = b.composite_hash(&sel);
        b.extend(1, &[9; 20]).unwrap();
        let h1 = b.composite_hash(&sel);
        assert_ne!(h0, h1, "composite must change when a selected PCR changes");
        b.extend(5, &[9; 20]).unwrap();
        assert_eq!(h1, b.composite_hash(&sel), "unselected PCRs don't affect it");
        // Different selections over the same bank differ.
        assert_ne!(b.composite_hash(&sel), b.composite_hash(&PcrSelection::of(&[1])));
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut b = PcrBank::new();
        b.extend(2, &[3; 20]).unwrap();
        let snap = *b.snapshot();
        let b2 = PcrBank::restore(snap);
        assert_eq!(b, b2);
    }
}
