//! Non-volatile storage (TPM_NV_*).
//!
//! The vTPM manager uses NV space in the *hardware* TPM to root its
//! persistent state (the sealed symmetric key protecting the instance
//! database). Each area has an index, fixed size, and simplified
//! attributes: owner-write protection and an optional PCR read binding.

use std::collections::BTreeMap;

use crate::pcr::{PcrBank, PcrSelection};
use crate::types::DIGEST_LEN;

/// Attributes of an NV area.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NvAttributes {
    /// Writes require owner authorization.
    pub owner_write: bool,
    /// Reads require owner authorization.
    pub owner_read: bool,
    /// Optional PCR binding that must match for reads.
    pub read_pcr: Option<(PcrSelection, [u8; DIGEST_LEN])>,
    /// Write-once: after the first write the area locks.
    pub write_once: bool,
}

impl Default for NvAttributes {
    fn default() -> Self {
        NvAttributes { owner_write: true, owner_read: false, read_pcr: None, write_once: false }
    }
}

/// One defined NV area.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NvArea {
    /// Declared size in bytes.
    pub size: usize,
    /// Attributes.
    pub attrs: NvAttributes,
    /// Contents (zero-filled until written).
    pub data: Vec<u8>,
    /// Whether the area has been written (write_once locking).
    pub written: bool,
}

/// Errors from NV operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NvError {
    /// Index not defined / already defined.
    BadIndex,
    /// Offset+length outside the area.
    OutOfRange,
    /// Owner authorization required but absent.
    AuthRequired,
    /// PCR binding did not match.
    WrongPcr,
    /// Area is locked (write-once already written).
    Locked,
    /// Total NV budget exhausted.
    NoSpace,
}

/// The NV store.
pub struct NvStore {
    areas: BTreeMap<u32, NvArea>,
    budget: usize,
    used: usize,
}

impl NvStore {
    /// A store with `budget` total bytes (1.2 chips had ~1-2 KiB).
    pub fn new(budget: usize) -> Self {
        NvStore { areas: BTreeMap::new(), budget, used: 0 }
    }

    /// Define a new area. Fails if the index exists or budget is exceeded.
    pub fn define(&mut self, index: u32, size: usize, attrs: NvAttributes) -> Result<(), NvError> {
        if self.areas.contains_key(&index) {
            return Err(NvError::BadIndex);
        }
        if self.used + size > self.budget {
            return Err(NvError::NoSpace);
        }
        self.used += size;
        self.areas.insert(
            index,
            NvArea { size, attrs, data: vec![0; size], written: false },
        );
        Ok(())
    }

    /// Release an area (owner operation; caller enforces authorization).
    pub fn release(&mut self, index: u32) -> Result<(), NvError> {
        let area = self.areas.remove(&index).ok_or(NvError::BadIndex)?;
        self.used -= area.size;
        Ok(())
    }

    /// Write `data` at `offset`; `owner_authorized` says whether the
    /// caller proved owner auth.
    pub fn write(
        &mut self,
        index: u32,
        offset: usize,
        data: &[u8],
        owner_authorized: bool,
    ) -> Result<(), NvError> {
        let area = self.areas.get_mut(&index).ok_or(NvError::BadIndex)?;
        if area.attrs.owner_write && !owner_authorized {
            return Err(NvError::AuthRequired);
        }
        if area.attrs.write_once && area.written {
            return Err(NvError::Locked);
        }
        if offset + data.len() > area.size {
            return Err(NvError::OutOfRange);
        }
        area.data[offset..offset + data.len()].copy_from_slice(data);
        area.written = true;
        Ok(())
    }

    /// Read `len` bytes at `offset`, checking owner auth and PCR binding
    /// against the live bank.
    pub fn read(
        &self,
        index: u32,
        offset: usize,
        len: usize,
        owner_authorized: bool,
        pcrs: &PcrBank,
    ) -> Result<Vec<u8>, NvError> {
        let area = self.areas.get(&index).ok_or(NvError::BadIndex)?;
        if area.attrs.owner_read && !owner_authorized {
            return Err(NvError::AuthRequired);
        }
        if let Some((sel, digest)) = &area.attrs.read_pcr {
            if &pcrs.composite_hash(sel) != digest {
                return Err(NvError::WrongPcr);
            }
        }
        if offset + len > area.size {
            return Err(NvError::OutOfRange);
        }
        Ok(area.data[offset..offset + len].to_vec())
    }

    /// Defined indices.
    pub fn indices(&self) -> Vec<u32> {
        self.areas.keys().copied().collect()
    }

    /// Whether an index is defined.
    pub fn is_defined(&self, index: u32) -> bool {
        self.areas.contains_key(&index)
    }

    /// Bytes of budget remaining.
    pub fn free_bytes(&self) -> usize {
        self.budget - self.used
    }

    /// Access an area record (state serialization).
    pub fn area(&self, index: u32) -> Option<&NvArea> {
        self.areas.get(&index)
    }

    /// Restore an area record verbatim (state deserialization).
    pub fn restore_area(&mut self, index: u32, area: NvArea) {
        self.used += area.size;
        self.areas.insert(index, area);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> PcrBank {
        PcrBank::new()
    }

    #[test]
    fn define_write_read_cycle() {
        let mut nv = NvStore::new(1024);
        nv.define(1, 32, NvAttributes::default()).unwrap();
        nv.write(1, 0, b"hello", true).unwrap();
        assert_eq!(nv.read(1, 0, 5, false, &bank()).unwrap(), b"hello");
        // Unwritten tail reads zeros.
        assert_eq!(nv.read(1, 5, 3, false, &bank()).unwrap(), vec![0, 0, 0]);
    }

    #[test]
    fn duplicate_define_rejected() {
        let mut nv = NvStore::new(1024);
        nv.define(1, 32, NvAttributes::default()).unwrap();
        assert_eq!(nv.define(1, 16, NvAttributes::default()), Err(NvError::BadIndex));
    }

    #[test]
    fn budget_enforced_and_released() {
        let mut nv = NvStore::new(64);
        nv.define(1, 48, NvAttributes::default()).unwrap();
        assert_eq!(nv.define(2, 32, NvAttributes::default()), Err(NvError::NoSpace));
        assert_eq!(nv.free_bytes(), 16);
        nv.release(1).unwrap();
        nv.define(2, 64, NvAttributes::default()).unwrap();
        assert_eq!(nv.free_bytes(), 0);
    }

    #[test]
    fn owner_write_protection() {
        let mut nv = NvStore::new(128);
        nv.define(1, 16, NvAttributes::default()).unwrap();
        assert_eq!(nv.write(1, 0, b"x", false), Err(NvError::AuthRequired));
        nv.write(1, 0, b"x", true).unwrap();
        // A world-writable area.
        nv.define(
            2,
            16,
            NvAttributes { owner_write: false, ..Default::default() },
        )
        .unwrap();
        nv.write(2, 0, b"y", false).unwrap();
    }

    #[test]
    fn owner_read_protection() {
        let mut nv = NvStore::new(128);
        nv.define(
            1,
            16,
            NvAttributes { owner_read: true, ..Default::default() },
        )
        .unwrap();
        nv.write(1, 0, b"secret", true).unwrap();
        assert_eq!(nv.read(1, 0, 6, false, &bank()), Err(NvError::AuthRequired));
        assert_eq!(nv.read(1, 0, 6, true, &bank()).unwrap(), b"secret");
    }

    #[test]
    fn pcr_bound_read() {
        let mut pcrs = bank();
        let sel = PcrSelection::of(&[4]);
        let digest = pcrs.composite_hash(&sel);
        let mut nv = NvStore::new(128);
        nv.define(
            1,
            16,
            NvAttributes { read_pcr: Some((sel, digest)), owner_write: false, ..Default::default() },
        )
        .unwrap();
        nv.write(1, 0, b"bound", false).unwrap();
        // Matches while PCR 4 untouched.
        assert_eq!(nv.read(1, 0, 5, false, &pcrs).unwrap(), b"bound");
        // Extend PCR 4 -> read refused.
        pcrs.extend(4, &[1; 20]).unwrap();
        assert_eq!(nv.read(1, 0, 5, false, &pcrs), Err(NvError::WrongPcr));
    }

    #[test]
    fn write_once_locks() {
        let mut nv = NvStore::new(128);
        nv.define(
            1,
            16,
            NvAttributes { write_once: true, ..Default::default() },
        )
        .unwrap();
        nv.write(1, 0, b"first", true).unwrap();
        assert_eq!(nv.write(1, 0, b"again", true), Err(NvError::Locked));
        assert_eq!(nv.read(1, 0, 5, false, &bank()).unwrap(), b"first");
    }

    #[test]
    fn bounds_checked() {
        let mut nv = NvStore::new(128);
        nv.define(1, 8, NvAttributes::default()).unwrap();
        assert_eq!(nv.write(1, 6, b"abc", true), Err(NvError::OutOfRange));
        assert_eq!(nv.read(1, 6, 3, false, &bank()), Err(NvError::OutOfRange));
        assert_eq!(nv.write(9, 0, b"a", true), Err(NvError::BadIndex));
    }

    #[test]
    fn restore_roundtrip() {
        let mut nv = NvStore::new(128);
        nv.define(7, 8, NvAttributes::default()).unwrap();
        nv.write(7, 0, b"persist", true).unwrap();
        let area = nv.area(7).unwrap().clone();
        let mut nv2 = NvStore::new(128);
        nv2.restore_area(7, area);
        assert_eq!(nv2.read(7, 0, 7, false, &bank()).unwrap(), b"persist");
        assert_eq!(nv2.free_bytes(), 120);
    }
}
