//! Big-endian marshalling for TPM 1.2 structures.
//!
//! The TPM wire format is strictly big-endian with length-prefixed
//! variable fields. [`Reader`] is a non-allocating cursor over the request
//! bytes; [`Writer`] appends to a reusable `Vec` so hot paths can recycle
//! buffers.

/// Marshalling errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufError {
    /// The reader ran past the end of the buffer.
    Underflow,
    /// A declared length exceeds sane bounds.
    BadLength,
}

impl std::fmt::Display for BufError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BufError::Underflow => write!(f, "buffer underflow"),
            BufError::BadLength => write!(f, "bad length field"),
        }
    }
}

impl std::error::Error for BufError {}

/// Cursor over received bytes.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading at the beginning of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Current offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Take `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], BufError> {
        if self.remaining() < n {
            return Err(BufError::Underflow);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read a u8.
    pub fn u8(&mut self) -> Result<u8, BufError> {
        Ok(self.bytes(1)?[0])
    }

    /// Read a big-endian u16.
    pub fn u16(&mut self) -> Result<u16, BufError> {
        Ok(u16::from_be_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    /// Read a big-endian u32.
    pub fn u32(&mut self) -> Result<u32, BufError> {
        Ok(u32::from_be_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    /// Read a fixed 20-byte digest/nonce.
    pub fn digest(&mut self) -> Result<[u8; 20], BufError> {
        Ok(self.bytes(20)?.try_into().unwrap())
    }

    /// Read a u32 length followed by that many bytes.
    pub fn sized_u32(&mut self) -> Result<&'a [u8], BufError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(BufError::BadLength);
        }
        self.bytes(n)
    }

    /// Read a u16 length followed by that many bytes.
    pub fn sized_u16(&mut self) -> Result<&'a [u8], BufError> {
        let n = self.u16()? as usize;
        if n > self.remaining() {
            return Err(BufError::BadLength);
        }
        self.bytes(n)
    }
}

/// Append-only big-endian writer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writer with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        Writer { buf: Vec::with_capacity(n) }
    }

    /// Append a u8.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a big-endian u16.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Append a big-endian u32.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Append raw bytes.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(v);
        self
    }

    /// Append a u32 length prefix followed by the bytes.
    pub fn sized_u32(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.bytes(v)
    }

    /// Append a u16 length prefix followed by the bytes.
    pub fn sized_u16(&mut self, v: &[u8]) -> &mut Self {
        self.u16(v.len() as u16);
        self.bytes(v)
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Overwrite 4 bytes at `pos` with a big-endian u32 (header size
    /// back-patching).
    pub fn patch_u32(&mut self, pos: usize, v: u32) {
        self.buf[pos..pos + 4].copy_from_slice(&v.to_be_bytes());
    }

    /// View the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Take the finished buffer.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Clear for reuse, keeping capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = Writer::new();
        w.u8(0xAB).u16(0x1234).u32(0xDEADBEEF);
        let bytes = w.into_vec();
        assert_eq!(bytes, vec![0xAB, 0x12, 0x34, 0xDE, 0xAD, 0xBE, 0xEF]);
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn underflow_detected() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(r.u32(), Err(BufError::Underflow));
        // Position unchanged after a failed read of multi-byte scalar?
        // (bytes() checks before consuming)
        assert_eq!(r.u16().unwrap(), 0x0102);
    }

    #[test]
    fn sized_fields() {
        let mut w = Writer::new();
        w.sized_u32(b"hello").sized_u16(b"xy");
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.sized_u32().unwrap(), b"hello");
        assert_eq!(r.sized_u16().unwrap(), b"xy");
    }

    #[test]
    fn bogus_length_rejected() {
        // Declared length 1000 but only 2 bytes follow.
        let mut w = Writer::new();
        w.u32(1000).bytes(b"ab");
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.sized_u32(), Err(BufError::BadLength));
    }

    #[test]
    fn digest_read() {
        let d = [7u8; 20];
        let mut r = Reader::new(&d);
        assert_eq!(r.digest().unwrap(), d);
        let mut r2 = Reader::new(&d[..19]);
        assert_eq!(r2.digest(), Err(BufError::Underflow));
    }

    #[test]
    fn patch_u32_backfills_header() {
        let mut w = Writer::new();
        w.u16(0x00C4).u32(0) /* size placeholder */ .u32(0);
        w.bytes(b"payload");
        let total = w.len() as u32;
        w.patch_u32(2, total);
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes);
        r.u16().unwrap();
        assert_eq!(r.u32().unwrap(), total);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut w = Writer::with_capacity(64);
        w.bytes(&[0u8; 50]);
        let cap = w.buf.capacity();
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.buf.capacity(), cap);
    }
}
