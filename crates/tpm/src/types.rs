//! TPM 1.2 wire-protocol constants (TPM Main Specification Part 2).
//!
//! Only the subset the vTPM stack exercises is defined, but the values are
//! the real ones, so byte streams produced here look like genuine TPM 1.2
//! traffic — which matters for the dump/sniffing experiments.

/// Command/response tags.
pub mod tag {
    /// Command with no authorization sessions.
    pub const RQU_COMMAND: u16 = 0x00C1;
    /// Command with one authorization session.
    pub const RQU_AUTH1_COMMAND: u16 = 0x00C2;
    /// Command with two authorization sessions.
    pub const RQU_AUTH2_COMMAND: u16 = 0x00C3;
    /// Response with no authorization sessions.
    pub const RSP_COMMAND: u16 = 0x00C4;
    /// Response with one authorization session.
    pub const RSP_AUTH1_COMMAND: u16 = 0x00C5;
    /// Response with two authorization sessions.
    pub const RSP_AUTH2_COMMAND: u16 = 0x00C6;
}

/// Command ordinals.
pub mod ordinal {
    /// TPM_OIAP — open an object-independent auth session.
    pub const OIAP: u32 = 0x0000000A;
    /// TPM_OSAP — open an object-specific auth session.
    pub const OSAP: u32 = 0x0000000B;
    /// TPM_TakeOwnership.
    pub const TAKE_OWNERSHIP: u32 = 0x0000000D;
    /// TPM_Extend — extend a PCR.
    pub const EXTEND: u32 = 0x00000014;
    /// TPM_PcrRead.
    pub const PCR_READ: u32 = 0x00000015;
    /// TPM_Quote.
    pub const QUOTE: u32 = 0x00000016;
    /// TPM_Seal.
    pub const SEAL: u32 = 0x00000017;
    /// TPM_Unseal.
    pub const UNSEAL: u32 = 0x00000018;
    /// TPM_CreateWrapKey.
    pub const CREATE_WRAP_KEY: u32 = 0x0000001F;
    /// TPM_GetCapability.
    pub const GET_CAPABILITY: u32 = 0x00000065;
    /// TPM_LoadKey2.
    pub const LOAD_KEY2: u32 = 0x00000041;
    /// TPM_GetRandom.
    pub const GET_RANDOM: u32 = 0x00000046;
    /// TPM_Sign.
    pub const SIGN: u32 = 0x0000003C;
    /// TPM_Startup.
    pub const STARTUP: u32 = 0x00000099;
    /// TPM_FlushSpecific — evict a loaded key or session.
    pub const FLUSH_SPECIFIC: u32 = 0x000000BA;
    /// TPM_ReadPubek.
    pub const READ_PUBEK: u32 = 0x0000007C;
    /// TPM_OwnerClear.
    pub const OWNER_CLEAR: u32 = 0x0000005B;
    /// TPM_NV_DefineSpace.
    pub const NV_DEFINE_SPACE: u32 = 0x000000CC;
    /// TPM_NV_WriteValue.
    pub const NV_WRITE_VALUE: u32 = 0x000000CD;
    /// TPM_NV_ReadValue.
    pub const NV_READ_VALUE: u32 = 0x000000CF;
    /// TPM_PCR_Reset.
    pub const PCR_RESET: u32 = 0x000000C8;
    /// TPM_SaveState (vTPM suspend path).
    pub const SAVE_STATE: u32 = 0x00000098;
    /// TPM_CreateCounter.
    pub const CREATE_COUNTER: u32 = 0x000000DC;
    /// TPM_IncrementCounter.
    pub const INCREMENT_COUNTER: u32 = 0x000000DD;
    /// TPM_ReadCounter.
    pub const READ_COUNTER: u32 = 0x000000DE;
    /// TPM_ReleaseCounter.
    pub const RELEASE_COUNTER: u32 = 0x000000DF;

    /// Ordinals that require owner privilege (subset used by the policy
    /// engine's "owner commands" group).
    pub const OWNER_PRIVILEGED: &[u32] =
        &[TAKE_OWNERSHIP, OWNER_CLEAR, NV_DEFINE_SPACE];

    /// Human-readable ordinal name (diagnostics, audit logs, reports).
    pub fn name(ord: u32) -> &'static str {
        match ord {
            OIAP => "TPM_OIAP",
            OSAP => "TPM_OSAP",
            TAKE_OWNERSHIP => "TPM_TakeOwnership",
            EXTEND => "TPM_Extend",
            PCR_READ => "TPM_PcrRead",
            QUOTE => "TPM_Quote",
            SEAL => "TPM_Seal",
            UNSEAL => "TPM_Unseal",
            CREATE_WRAP_KEY => "TPM_CreateWrapKey",
            GET_CAPABILITY => "TPM_GetCapability",
            LOAD_KEY2 => "TPM_LoadKey2",
            GET_RANDOM => "TPM_GetRandom",
            SIGN => "TPM_Sign",
            STARTUP => "TPM_Startup",
            FLUSH_SPECIFIC => "TPM_FlushSpecific",
            READ_PUBEK => "TPM_ReadPubek",
            OWNER_CLEAR => "TPM_OwnerClear",
            NV_DEFINE_SPACE => "TPM_NV_DefineSpace",
            NV_WRITE_VALUE => "TPM_NV_WriteValue",
            NV_READ_VALUE => "TPM_NV_ReadValue",
            PCR_RESET => "TPM_PCR_Reset",
            SAVE_STATE => "TPM_SaveState",
            CREATE_COUNTER => "TPM_CreateCounter",
            INCREMENT_COUNTER => "TPM_IncrementCounter",
            READ_COUNTER => "TPM_ReadCounter",
            RELEASE_COUNTER => "TPM_ReleaseCounter",
            _ => "TPM_Unknown",
        }
    }
}

/// Return codes.
pub mod rc {
    /// Success.
    pub const SUCCESS: u32 = 0;
    /// Authentication failed.
    pub const AUTHFAIL: u32 = 1;
    /// Bad index (PCR or NV).
    pub const BADINDEX: u32 = 2;
    /// Bad parameter.
    pub const BAD_PARAMETER: u32 = 3;
    /// TPM disabled or not owned where ownership required.
    pub const DEACTIVATED: u32 = 6;
    /// TPM already has an owner.
    pub const OWNER_SET: u32 = 0x14;
    /// No space / resource exhaustion.
    pub const RESOURCES: u32 = 0x15;
    /// The named key handle is invalid (TPM_KEYNOTFOUND).
    pub const INVALID_KEYHANDLE: u32 = 0x0D;
    /// Bad command tag (TPM_BADTAG).
    pub const BADTAG: u32 = 0x1E;
    /// Bad ordinal.
    pub const BAD_ORDINAL: u32 = 0x0A;
    /// Command size field disagrees with the buffer.
    pub const BAD_PARAM_SIZE: u32 = 0x19;
    /// The TPM does not have an EK where one is required.
    pub const NO_ENDORSEMENT: u32 = 0x23;
    /// PCR composite disagrees (unseal against wrong PCR state).
    pub const WRONGPCRVAL: u32 = 0x18;
    /// Key usage not permitted (e.g. signing with a storage key).
    pub const INVALID_KEYUSAGE: u32 = 0x24;
    /// The named session handle is invalid.
    pub const INVALID_AUTHHANDLE: u32 = 0x28;
    /// NV area is locked/write-protected.
    pub const AREA_LOCKED: u32 = 0x3C;
    /// Command arrived at a disallowed locality.
    pub const BAD_LOCALITY: u32 = 0x3D;
    /// Decryption of a blob failed.
    pub const DECRYPT_ERROR: u32 = 0x21;
    /// TPM_NOSRK — no storage root key present.
    pub const NOSRK: u32 = 0x12;
    /// Operation disabled until reboot/startup.
    pub const INVALID_POSTINIT: u32 = 0x26;
}

/// Well-known permanent handles.
pub mod handle {
    /// The Storage Root Key.
    pub const SRK: u32 = 0x4000_0000;
    /// The owner (authorization target for owner-authorized commands).
    pub const OWNER: u32 = 0x4000_0001;
    /// The Endorsement Key.
    pub const EK: u32 = 0x4000_0006;
}

/// Entity types for OSAP.
pub mod entity {
    /// A loaded key handle.
    pub const KEYHANDLE: u16 = 0x0001;
    /// The owner.
    pub const OWNER: u16 = 0x0002;
    /// The SRK.
    pub const SRK: u16 = 0x0004;
    /// A monotonic counter.
    pub const COUNTER: u16 = 0x000A;
}

/// Key usage values (TPM_KEY_USAGE).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyUsage {
    /// Signing only.
    Signing,
    /// Storage (wrapping children, sealing).
    Storage,
    /// Binding (encrypt small blobs externally).
    Binding,
    /// Legacy (sign + bind) — allowed for both.
    Legacy,
}

impl KeyUsage {
    /// Encode as the spec's u16.
    pub fn to_u16(self) -> u16 {
        match self {
            KeyUsage::Signing => 0x0010,
            KeyUsage::Storage => 0x0011,
            KeyUsage::Binding => 0x0014,
            KeyUsage::Legacy => 0x0015,
        }
    }

    /// Decode from the spec's u16.
    pub fn from_u16(v: u16) -> Option<Self> {
        match v {
            0x0010 => Some(KeyUsage::Signing),
            0x0011 => Some(KeyUsage::Storage),
            0x0014 => Some(KeyUsage::Binding),
            0x0015 => Some(KeyUsage::Legacy),
            _ => None,
        }
    }

    /// May this key sign?
    pub fn can_sign(self) -> bool {
        matches!(self, KeyUsage::Signing | KeyUsage::Legacy)
    }

    /// May this key wrap children / seal?
    pub fn can_store(self) -> bool {
        matches!(self, KeyUsage::Storage)
    }
}

/// Number of PCRs in a 1.2 TPM.
pub const NUM_PCRS: usize = 24;
/// SHA-1 digest length, the TPM 1.2 digest size.
pub const DIGEST_LEN: usize = 20;
/// Nonce length.
pub const NONCE_LEN: usize = 20;
/// Auth code (HMAC-SHA1) length.
pub const AUTH_LEN: usize = 20;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_usage_roundtrip() {
        for u in [KeyUsage::Signing, KeyUsage::Storage, KeyUsage::Binding, KeyUsage::Legacy] {
            assert_eq!(KeyUsage::from_u16(u.to_u16()), Some(u));
        }
        assert_eq!(KeyUsage::from_u16(0xFFFF), None);
    }

    #[test]
    fn usage_capabilities() {
        assert!(KeyUsage::Signing.can_sign());
        assert!(!KeyUsage::Signing.can_store());
        assert!(KeyUsage::Storage.can_store());
        assert!(!KeyUsage::Storage.can_sign());
        assert!(KeyUsage::Legacy.can_sign());
    }

    #[test]
    fn ordinal_names() {
        assert_eq!(ordinal::name(ordinal::SEAL), "TPM_Seal");
        assert_eq!(ordinal::name(0xdeadbeef), "TPM_Unknown");
    }

    #[test]
    fn spec_values_spotcheck() {
        assert_eq!(tag::RQU_AUTH1_COMMAND, 0x00C2);
        assert_eq!(ordinal::EXTEND, 0x14);
        assert_eq!(handle::SRK, 0x4000_0000);
        assert_eq!(rc::SUCCESS, 0);
    }
}
