//! Monotonic counters (TPM_CreateCounter family).
//!
//! TPM 1.2 provides owner-created monotonic counters whose values can
//! only increase — the primitive behind rollback protection for sealed
//! databases and audit logs. The 1.2 PC-client profile allows only one
//! counter to be *active* (incrementable) per boot; we model that rule
//! because the vTPM migration path must preserve it.

use std::collections::BTreeMap;

use crate::types::DIGEST_LEN;

/// One counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    /// Current value.
    pub value: u32,
    /// Authorization secret for increment/release.
    pub auth: [u8; DIGEST_LEN],
    /// 4-byte label supplied at creation.
    pub label: [u8; 4],
}

/// Errors from counter operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterError {
    /// The handle names no counter.
    BadHandle,
    /// All counter slots are in use.
    NoSpace,
    /// A different counter is already active this boot.
    NotActive,
}

/// The counter table.
pub struct CounterStore {
    counters: BTreeMap<u32, Counter>,
    next_handle: u32,
    capacity: usize,
    /// The counter incremented first this boot; only it may increment
    /// again until the next startup.
    active: Option<u32>,
}

impl CounterStore {
    /// A store with `capacity` counters (1.2 chips: at least 4).
    pub fn new(capacity: usize) -> Self {
        CounterStore { counters: BTreeMap::new(), next_handle: 1, capacity, active: None }
    }

    /// Create a counter; returns its handle. Starts at 1 (per spec, the
    /// first increment of a new counter family starts above zero).
    pub fn create(&mut self, auth: [u8; DIGEST_LEN], label: [u8; 4]) -> Result<u32, CounterError> {
        if self.counters.len() >= self.capacity {
            return Err(CounterError::NoSpace);
        }
        let handle = self.next_handle;
        self.next_handle += 1;
        self.counters.insert(handle, Counter { value: 1, auth, label });
        Ok(handle)
    }

    /// Increment; only one counter may be active per boot.
    pub fn increment(&mut self, handle: u32) -> Result<u32, CounterError> {
        if !self.counters.contains_key(&handle) {
            return Err(CounterError::BadHandle);
        }
        match self.active {
            Some(active) if active != handle => return Err(CounterError::NotActive),
            _ => self.active = Some(handle),
        }
        let c = self.counters.get_mut(&handle).expect("checked");
        c.value += 1;
        Ok(c.value)
    }

    /// Read the value (no authorization per spec).
    pub fn read(&self, handle: u32) -> Result<&Counter, CounterError> {
        self.counters.get(&handle).ok_or(CounterError::BadHandle)
    }

    /// Release (delete) a counter.
    pub fn release(&mut self, handle: u32) -> Result<(), CounterError> {
        self.counters.remove(&handle).map(|_| ()).ok_or(CounterError::BadHandle)?;
        if self.active == Some(handle) {
            self.active = None;
        }
        Ok(())
    }

    /// New boot: any counter may become the active one again. Values are
    /// retained (they are non-volatile).
    pub fn startup(&mut self) {
        self.active = None;
    }

    /// Handles currently defined.
    pub fn handles(&self) -> Vec<u32> {
        self.counters.keys().copied().collect()
    }

    /// Restore a counter verbatim (state deserialization).
    pub fn restore(&mut self, handle: u32, counter: Counter) {
        self.next_handle = self.next_handle.max(handle + 1);
        self.counters.insert(handle, counter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> CounterStore {
        CounterStore::new(4)
    }

    #[test]
    fn create_read_increment() {
        let mut s = store();
        let h = s.create([1; 20], *b"log1").unwrap();
        assert_eq!(s.read(h).unwrap().value, 1);
        assert_eq!(s.increment(h).unwrap(), 2);
        assert_eq!(s.increment(h).unwrap(), 3);
        assert_eq!(s.read(h).unwrap().label, *b"log1");
    }

    #[test]
    fn one_active_counter_per_boot() {
        let mut s = store();
        let a = s.create([1; 20], *b"aaaa").unwrap();
        let b = s.create([2; 20], *b"bbbb").unwrap();
        s.increment(a).unwrap();
        assert_eq!(s.increment(b), Err(CounterError::NotActive));
        // After "reboot" the other counter can be chosen.
        s.startup();
        s.increment(b).unwrap();
        assert_eq!(s.increment(a), Err(CounterError::NotActive));
    }

    #[test]
    fn values_survive_startup() {
        let mut s = store();
        let h = s.create([1; 20], *b"keep").unwrap();
        s.increment(h).unwrap();
        s.startup();
        assert_eq!(s.read(h).unwrap().value, 2);
    }

    #[test]
    fn capacity_and_release() {
        let mut s = CounterStore::new(2);
        let a = s.create([0; 20], *b"aaaa").unwrap();
        let _b = s.create([0; 20], *b"bbbb").unwrap();
        assert_eq!(s.create([0; 20], *b"cccc"), Err(CounterError::NoSpace));
        s.release(a).unwrap();
        assert_eq!(s.release(a), Err(CounterError::BadHandle));
        s.create([0; 20], *b"cccc").unwrap();
        assert_eq!(s.handles().len(), 2);
    }

    #[test]
    fn releasing_active_counter_frees_the_boot_slot() {
        let mut s = store();
        let a = s.create([0; 20], *b"aaaa").unwrap();
        let b = s.create([0; 20], *b"bbbb").unwrap();
        s.increment(a).unwrap();
        s.release(a).unwrap();
        // b may now become active without a reboot.
        s.increment(b).unwrap();
    }

    #[test]
    fn restore_preserves_handles() {
        let mut s = store();
        let h = s.create([3; 20], *b"orig").unwrap();
        s.increment(h).unwrap();
        let c = s.read(h).unwrap().clone();
        let mut s2 = store();
        s2.restore(h, c);
        assert_eq!(s2.read(h).unwrap().value, 2);
        // New handles don't collide.
        let h2 = s2.create([0; 20], *b"next").unwrap();
        assert_ne!(h, h2);
    }
}
