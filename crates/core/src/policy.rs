//! AC2: per-domain TPM command filtering.
//!
//! The baseline manager executes any ordinal that reaches it. The policy
//! engine maps (domain, ordinal) to allow/deny through an ordered rule
//! list over *ordinal groups* (owner commands, key management, sealing,
//! …), with a default action. Rules come from a small text language the
//! administrator writes:
//!
//! ```text
//! # comments and blank lines are ignored
//! deny  group owner            # nobody clears ownership remotely
//! deny  dom 5 group attestation
//! allow dom 5 ordinal TPM_Quote
//! default allow
//! ```
//!
//! First matching rule wins; `default` is the fallthrough. Decisions are
//! cached per (domain, ordinal) and the cache is invalidated atomically
//! when rules change.

use std::collections::HashMap;

use parking_lot::RwLock;
use tpm::ordinal;

/// Coarse command classes the policy language can address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrdinalGroup {
    /// Ownership management: TakeOwnership, OwnerClear.
    Owner,
    /// NV space administration: NV_DefineSpace.
    NvAdmin,
    /// NV data access: NV_Read/WriteValue.
    Nv,
    /// PCR operations: Extend, PcrRead, PCR_Reset.
    Pcr,
    /// Seal/Unseal.
    Sealing,
    /// Quote/Sign.
    Attestation,
    /// Key lifecycle: CreateWrapKey, LoadKey2, FlushSpecific.
    Keys,
    /// Auth sessions: OIAP, OSAP.
    Session,
    /// GetRandom.
    Random,
    /// Startup, capabilities, pubek reads, everything else.
    Other,
}

impl OrdinalGroup {
    /// Classify a TPM ordinal.
    pub fn of(ord: u32) -> OrdinalGroup {
        match ord {
            ordinal::TAKE_OWNERSHIP | ordinal::OWNER_CLEAR => OrdinalGroup::Owner,
            ordinal::NV_DEFINE_SPACE => OrdinalGroup::NvAdmin,
            ordinal::NV_READ_VALUE | ordinal::NV_WRITE_VALUE => OrdinalGroup::Nv,
            ordinal::EXTEND | ordinal::PCR_READ | ordinal::PCR_RESET => OrdinalGroup::Pcr,
            ordinal::SEAL | ordinal::UNSEAL => OrdinalGroup::Sealing,
            ordinal::QUOTE | ordinal::SIGN => OrdinalGroup::Attestation,
            ordinal::CREATE_WRAP_KEY | ordinal::LOAD_KEY2 | ordinal::FLUSH_SPECIFIC => {
                OrdinalGroup::Keys
            }
            ordinal::OIAP | ordinal::OSAP => OrdinalGroup::Session,
            ordinal::GET_RANDOM => OrdinalGroup::Random,
            _ => OrdinalGroup::Other,
        }
    }

    /// Parse a group name from the policy language.
    pub fn parse(name: &str) -> Option<OrdinalGroup> {
        Some(match name {
            "owner" => OrdinalGroup::Owner,
            "nv-admin" => OrdinalGroup::NvAdmin,
            "nv" => OrdinalGroup::Nv,
            "pcr" => OrdinalGroup::Pcr,
            "sealing" => OrdinalGroup::Sealing,
            "attestation" => OrdinalGroup::Attestation,
            "keys" => OrdinalGroup::Keys,
            "session" => OrdinalGroup::Session,
            "random" => OrdinalGroup::Random,
            "other" => OrdinalGroup::Other,
            _ => return None,
        })
    }
}

/// What a rule matches on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Target {
    /// Any command.
    Any,
    /// A whole group.
    Group(OrdinalGroup),
    /// One specific ordinal.
    Ordinal(u32),
}

/// One rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Rule {
    /// `None` = any domain.
    domain: Option<u32>,
    target: Target,
    allow: bool,
}

impl Rule {
    fn matches(&self, domain: u32, ord: u32) -> bool {
        if let Some(d) = self.domain {
            if d != domain {
                return false;
            }
        }
        match self.target {
            Target::Any => true,
            Target::Group(g) => OrdinalGroup::of(ord) == g,
            Target::Ordinal(o) => o == ord,
        }
    }
}

/// Errors from policy parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for PolicyParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "policy line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PolicyParseError {}

/// Parse an ordinal name (`TPM_Seal`) or hex literal (`0x17`).
fn parse_ordinal(token: &str) -> Option<u32> {
    if let Some(hex) = token.strip_prefix("0x") {
        return u32::from_str_radix(hex, 16).ok();
    }
    // Reverse lookup through the name table.
    const KNOWN: &[u32] = &[
        ordinal::OIAP,
        ordinal::OSAP,
        ordinal::TAKE_OWNERSHIP,
        ordinal::EXTEND,
        ordinal::PCR_READ,
        ordinal::QUOTE,
        ordinal::SEAL,
        ordinal::UNSEAL,
        ordinal::CREATE_WRAP_KEY,
        ordinal::GET_CAPABILITY,
        ordinal::LOAD_KEY2,
        ordinal::GET_RANDOM,
        ordinal::SIGN,
        ordinal::STARTUP,
        ordinal::FLUSH_SPECIFIC,
        ordinal::READ_PUBEK,
        ordinal::OWNER_CLEAR,
        ordinal::NV_DEFINE_SPACE,
        ordinal::NV_WRITE_VALUE,
        ordinal::NV_READ_VALUE,
        ordinal::PCR_RESET,
        ordinal::SAVE_STATE,
    ];
    KNOWN.iter().copied().find(|&o| ordinal::name(o) == token)
}

struct Compiled {
    rules: Vec<Rule>,
    default_allow: bool,
    /// Bumped on every rule change; cache entries carry the epoch they
    /// were computed under.
    epoch: u64,
}

/// The policy engine.
pub struct PolicyEngine {
    compiled: RwLock<Compiled>,
    cache: RwLock<HashMap<(u32, u32), (u64, bool)>>,
}

impl Default for PolicyEngine {
    fn default() -> Self {
        Self::allow_all()
    }
}

impl PolicyEngine {
    /// An engine with no rules and default allow.
    pub fn allow_all() -> Self {
        PolicyEngine {
            compiled: RwLock::new(Compiled { rules: Vec::new(), default_allow: true, epoch: 0 }),
            cache: RwLock::new(HashMap::new()),
        }
    }

    /// The recommended guest policy from the paper's setting: guests may
    /// use their vTPM fully except for NV administration and remote
    /// ownership clearing.
    pub fn recommended() -> Self {
        Self::parse(
            "deny group nv-admin\n\
             deny ordinal TPM_OwnerClear\n\
             default allow\n",
        )
        .expect("recommended policy parses")
    }

    /// Parse policy text into an engine.
    pub fn parse(text: &str) -> Result<Self, PolicyParseError> {
        let engine = Self::allow_all();
        engine.replace(text)?;
        Ok(engine)
    }

    /// Replace the rule set atomically from policy text.
    pub fn replace(&self, text: &str) -> Result<(), PolicyParseError> {
        let mut rules = Vec::new();
        let mut default_allow = true;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |message: &str| PolicyParseError { line: i + 1, message: message.into() };
            let tokens: Vec<&str> = line.split_whitespace().collect();
            match tokens[0] {
                "default" => {
                    default_allow = match tokens.get(1) {
                        Some(&"allow") => true,
                        Some(&"deny") => false,
                        _ => return Err(err("expected `default allow|deny`")),
                    };
                }
                verb @ ("allow" | "deny") => {
                    let allow = verb == "allow";
                    let mut domain = None;
                    let mut target = Target::Any;
                    let mut rest = &tokens[1..];
                    while !rest.is_empty() {
                        match rest[0] {
                            "dom" => {
                                let v = rest.get(1).ok_or_else(|| err("dom needs a value"))?;
                                if *v != "*" {
                                    domain = Some(
                                        v.parse().map_err(|_| err("bad domain id"))?,
                                    );
                                }
                                rest = &rest[2..];
                            }
                            "group" => {
                                let v = rest.get(1).ok_or_else(|| err("group needs a name"))?;
                                target = Target::Group(
                                    OrdinalGroup::parse(v).ok_or_else(|| err("unknown group"))?,
                                );
                                rest = &rest[2..];
                            }
                            "ordinal" => {
                                let v =
                                    rest.get(1).ok_or_else(|| err("ordinal needs a value"))?;
                                target = Target::Ordinal(
                                    parse_ordinal(v).ok_or_else(|| err("unknown ordinal"))?,
                                );
                                rest = &rest[2..];
                            }
                            "*" => {
                                target = Target::Any;
                                rest = &rest[1..];
                            }
                            other => {
                                return Err(err(&format!("unexpected token `{other}`")));
                            }
                        }
                    }
                    rules.push(Rule { domain, target, allow });
                }
                other => return Err(err(&format!("unknown verb `{other}`"))),
            }
        }
        let mut compiled = self.compiled.write();
        compiled.rules = rules;
        compiled.default_allow = default_allow;
        compiled.epoch += 1;
        Ok(())
    }

    /// Decide (domain, ordinal), consulting the cache first.
    pub fn check(&self, domain: u32, ord: u32) -> bool {
        let epoch = self.compiled.read().epoch;
        if let Some(&(e, verdict)) = self.cache.read().get(&(domain, ord)) {
            if e == epoch {
                return verdict;
            }
        }
        let verdict = self.check_uncached(domain, ord);
        self.cache.write().insert((domain, ord), (epoch, verdict));
        verdict
    }

    /// Decide without the cache (benchmark comparator for R-T3).
    pub fn check_uncached(&self, domain: u32, ord: u32) -> bool {
        let compiled = self.compiled.read();
        for rule in &compiled.rules {
            if rule.matches(domain, ord) {
                return rule.allow;
            }
        }
        compiled.default_allow
    }

    /// Number of rules loaded.
    pub fn rule_count(&self) -> usize {
        self.compiled.read().rules.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_classification() {
        assert_eq!(OrdinalGroup::of(ordinal::SEAL), OrdinalGroup::Sealing);
        assert_eq!(OrdinalGroup::of(ordinal::TAKE_OWNERSHIP), OrdinalGroup::Owner);
        assert_eq!(OrdinalGroup::of(ordinal::QUOTE), OrdinalGroup::Attestation);
        assert_eq!(OrdinalGroup::of(0xdeadbeef), OrdinalGroup::Other);
    }

    #[test]
    fn allow_all_default() {
        let e = PolicyEngine::allow_all();
        assert!(e.check(1, ordinal::SEAL));
        assert!(e.check(99, ordinal::OWNER_CLEAR));
    }

    #[test]
    fn recommended_policy_blocks_admin() {
        let e = PolicyEngine::recommended();
        assert!(!e.check(1, ordinal::NV_DEFINE_SPACE));
        assert!(!e.check(1, ordinal::OWNER_CLEAR));
        // TakeOwnership of one's own vTPM stays legitimate.
        assert!(e.check(1, ordinal::TAKE_OWNERSHIP));
        assert!(e.check(1, ordinal::SEAL));
        assert!(e.check(1, ordinal::QUOTE));
    }

    #[test]
    fn first_match_wins() {
        let e = PolicyEngine::parse(
            "allow dom 5 ordinal TPM_Quote\n\
             deny dom 5 group attestation\n\
             default allow\n",
        )
        .unwrap();
        assert!(e.check(5, ordinal::QUOTE), "specific allow precedes group deny");
        assert!(!e.check(5, ordinal::SIGN));
        assert!(e.check(6, ordinal::SIGN), "other domains unaffected");
    }

    #[test]
    fn default_deny_posture() {
        let e = PolicyEngine::parse(
            "allow group pcr\nallow group session\ndefault deny\n",
        )
        .unwrap();
        assert!(e.check(1, ordinal::EXTEND));
        assert!(e.check(1, ordinal::OIAP));
        assert!(!e.check(1, ordinal::SEAL));
    }

    #[test]
    fn hex_ordinals_and_comments() {
        let e = PolicyEngine::parse(
            "# lock down sealing by raw ordinal\n\
             deny ordinal 0x17\n\
             \n\
             default allow # trailing comment\n",
        )
        .unwrap();
        assert!(!e.check(1, ordinal::SEAL));
        assert!(e.check(1, ordinal::UNSEAL));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = PolicyEngine::parse("default allow\nfrobnicate everything\n")
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err.line, 2);
        assert!(PolicyEngine::parse("deny group nonsense\n").is_err());
        assert!(PolicyEngine::parse("deny ordinal TPM_DoesNotExist\n").is_err());
        assert!(PolicyEngine::parse("deny dom abc\n").is_err());
    }

    #[test]
    fn cache_matches_uncached() {
        let e = PolicyEngine::recommended();
        for dom in [1u32, 2, 3] {
            for ord in [ordinal::SEAL, ordinal::NV_DEFINE_SPACE, ordinal::GET_RANDOM] {
                assert_eq!(e.check(dom, ord), e.check_uncached(dom, ord));
                // Second (cached) call agrees.
                assert_eq!(e.check(dom, ord), e.check_uncached(dom, ord));
            }
        }
    }

    #[test]
    fn replace_invalidates_cache() {
        let e = PolicyEngine::allow_all();
        assert!(e.check(1, ordinal::SEAL)); // cached as allow
        e.replace("deny group sealing\ndefault allow\n").unwrap();
        assert!(!e.check(1, ordinal::SEAL), "stale cache entry must not survive");
        assert_eq!(e.rule_count(), 1);
    }

    #[test]
    fn wildcard_domain_and_any_target() {
        let e = PolicyEngine::parse("deny dom * group owner\ndefault allow\n").unwrap();
        assert!(!e.check(7, ordinal::OWNER_CLEAR));
        let e2 = PolicyEngine::parse("deny dom 3 *\ndefault allow\n").unwrap();
        assert!(!e2.check(3, ordinal::GET_RANDOM));
        assert!(e2.check(4, ordinal::GET_RANDOM));
    }
}
