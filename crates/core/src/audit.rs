//! AC4: the tamper-evident audit log.
//!
//! Every access decision is appended as an entry hash-chained to its
//! predecessor (`h_i = SHA256(h_{i-1} || entry_i)`), so truncation or
//! in-place modification is detectable by re-walking the chain. In a full
//! deployment the head hash would be periodically extended into a vTPM
//! PCR; here the chain itself plus [`AuditLog::verify`] covers the
//! mechanism.

use parking_lot::Mutex;
use tpm_crypto::{sha256::Sha256, Digest};

use vtpm::DenyReason;

/// A live-migration protocol stage transition, recorded by the cluster
/// migration driver into the hash chain of every host it touches — so a
/// host that later denies having handed an instance off (or claims a
/// different epoch) contradicts its own tamper-evident log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationStage {
    /// Destination accepted a prepare for (vm, epoch).
    Prepared = 0,
    /// Source froze the instance (downtime window opens).
    Quiesced = 1,
    /// Source shipped the sealed package.
    Transferred = 2,
    /// Destination verified binding/integrity/epoch of the package.
    Verified = 3,
    /// Destination adopted the instance (downtime window closes).
    Committed = 4,
    /// Source released (scrubbed) its copy.
    Released = 5,
    /// Either side aborted; the source copy stays authoritative.
    Aborted = 6,
    /// Destination refused a stale or replayed epoch (anti-rollback).
    RejectedStale = 7,
}

/// The decision recorded for an entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditOutcome {
    /// Request was dispatched.
    Allowed,
    /// Request was denied for the given reason.
    Denied(DenyReason),
    /// A live-migration stage transition (AC4 coverage of the handoff
    /// protocol; the entry's `instance` is the cluster-wide vm id and
    /// its `ordinal` carries the migration epoch).
    Migration(MigrationStage),
}

/// One audit record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEntry {
    /// Position in the log (0-based).
    pub index: u64,
    /// Virtual timestamp (ns) when the decision was made.
    pub timestamp_ns: u64,
    /// Telemetry request id (`RequestContext::request_id`), covered by
    /// the chain hash, so audit entries join against telemetry spans.
    /// 0 for decisions made outside the instrumented request path.
    pub request_id: u64,
    /// Requesting domain (claimed).
    pub domain: u32,
    /// Target instance.
    pub instance: u32,
    /// TPM ordinal (0 when unparsable).
    pub ordinal: u32,
    /// The decision.
    pub outcome: AuditOutcome,
    /// Chain hash up to and including this entry.
    pub chain: [u8; 32],
}

/// Serialized chain material for one entry: three u64s, three u32s, and
/// the outcome code — 37 bytes, built on the stack.
fn entry_material(
    index: u64,
    timestamp_ns: u64,
    request_id: u64,
    domain: u32,
    instance: u32,
    ordinal: u32,
    outcome: &AuditOutcome,
) -> [u8; 37] {
    let mut buf = [0u8; 37];
    buf[0..8].copy_from_slice(&index.to_be_bytes());
    buf[8..16].copy_from_slice(&timestamp_ns.to_be_bytes());
    buf[16..24].copy_from_slice(&request_id.to_be_bytes());
    buf[24..28].copy_from_slice(&domain.to_be_bytes());
    buf[28..32].copy_from_slice(&instance.to_be_bytes());
    buf[32..36].copy_from_slice(&ordinal.to_be_bytes());
    let code: u8 = match outcome {
        AuditOutcome::Allowed => 0,
        AuditOutcome::Denied(r) => 1 + *r as u8,
        // Migration stages occupy a disjoint code band well above any
        // deny reason, so no stage can collide with (or be rewritten
        // into) an allow/deny record without breaking the chain.
        AuditOutcome::Migration(s) => 32 + *s as u8,
    };
    buf[36] = code;
    buf
}

/// One chain link: `SHA256(prev ‖ material)`, streamed through the
/// incremental context — no concatenation buffer, no allocation. The
/// digest is byte-identical to hashing the concatenation.
fn chain_hash(prev: &[u8; 32], material: &[u8; 37]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(prev);
    h.update(material);
    let mut out = [0u8; 32];
    h.finalize_into(&mut out);
    out
}

/// The log.
#[derive(Default)]
pub struct AuditLog {
    entries: Mutex<Vec<AuditEntry>>,
}

impl AuditLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a decision; returns the new chain head. `request_id` is
    /// the telemetry id the manager minted for the request (0 outside
    /// the request path); it is covered by the chain hash.
    pub fn record(
        &self,
        timestamp_ns: u64,
        request_id: u64,
        domain: u32,
        instance: u32,
        ordinal: u32,
        outcome: AuditOutcome,
    ) -> [u8; 32] {
        let mut entries = self.entries.lock();
        let index = entries.len() as u64;
        let prev = entries.last().map(|e| e.chain).unwrap_or([0; 32]);
        let material =
            entry_material(index, timestamp_ns, request_id, domain, instance, ordinal, &outcome);
        let chain = chain_hash(&prev, &material);
        entries.push(AuditEntry {
            index,
            timestamp_ns,
            request_id,
            domain,
            instance,
            ordinal,
            outcome,
            chain,
        });
        chain
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Clone the entries (reporting).
    pub fn entries(&self) -> Vec<AuditEntry> {
        self.entries.lock().clone()
    }

    /// Count of denied entries.
    pub fn denials(&self) -> usize {
        self.entries
            .lock()
            .iter()
            .filter(|e| matches!(e.outcome, AuditOutcome::Denied(_)))
            .count()
    }

    /// Current chain head (zero hash when empty).
    pub fn head(&self) -> [u8; 32] {
        self.entries.lock().last().map(|e| e.chain).unwrap_or([0; 32])
    }

    /// Re-walk the chain; true iff every link verifies. `verify` on a
    /// tampered copy (the attacker's edited log) returns false.
    pub fn verify(entries: &[AuditEntry]) -> bool {
        let mut prev = [0u8; 32];
        for (i, e) in entries.iter().enumerate() {
            if e.index != i as u64 {
                return false;
            }
            let material = entry_material(
                e.index,
                e.timestamp_ns,
                e.request_id,
                e.domain,
                e.instance,
                e.ordinal,
                &e.outcome,
            );
            if chain_hash(&prev, &material) != e.chain {
                return false;
            }
            prev = e.chain;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_with(n: usize) -> AuditLog {
        let log = AuditLog::new();
        for i in 0..n {
            let outcome = if i % 3 == 0 {
                AuditOutcome::Denied(DenyReason::BadTag)
            } else {
                AuditOutcome::Allowed
            };
            log.record(i as u64 * 1000, i as u64 + 1, 1, 1, 0x17, outcome);
        }
        log
    }

    #[test]
    fn chain_verifies_when_untouched() {
        let log = log_with(10);
        assert_eq!(log.len(), 10);
        assert!(AuditLog::verify(&log.entries()));
        assert_eq!(log.denials(), 4);
        assert_ne!(log.head(), [0; 32]);
    }

    #[test]
    fn empty_log_verifies() {
        let log = AuditLog::new();
        assert!(AuditLog::verify(&log.entries()));
        assert_eq!(log.head(), [0; 32]);
        assert!(log.is_empty());
    }

    #[test]
    fn in_place_edit_detected() {
        let log = log_with(5);
        let mut entries = log.entries();
        entries[2].domain = 99; // attacker rewrites who did it
        assert!(!AuditLog::verify(&entries));
    }

    #[test]
    fn request_id_edit_detected() {
        // The span join key is covered by the chain: an attacker cannot
        // re-point an audit entry at a different request's span.
        let log = log_with(5);
        let mut entries = log.entries();
        entries[2].request_id = 42;
        assert!(!AuditLog::verify(&entries));
    }

    #[test]
    fn outcome_flip_detected() {
        let log = log_with(5);
        let mut entries = log.entries();
        entries[3].outcome = AuditOutcome::Allowed;
        assert!(!AuditLog::verify(&entries));
    }

    #[test]
    fn truncation_from_middle_detected() {
        let log = log_with(5);
        let mut entries = log.entries();
        entries.remove(1);
        assert!(!AuditLog::verify(&entries));
        // Truncating the *tail* is only detectable against an externally
        // anchored head — verify() alone accepts a clean prefix:
        let prefix = &log.entries()[..3];
        assert!(AuditLog::verify(prefix));
        // ...which is why the head hash matters:
        assert_ne!(prefix.last().unwrap().chain, log.head());
    }

    #[test]
    fn migration_stage_entries_are_chained() {
        let log = AuditLog::new();
        for (i, stage) in [
            MigrationStage::Prepared,
            MigrationStage::Quiesced,
            MigrationStage::Transferred,
            MigrationStage::Verified,
            MigrationStage::Committed,
            MigrationStage::Released,
        ]
        .into_iter()
        .enumerate()
        {
            // instance = cluster vm id, ordinal = migration epoch.
            log.record(i as u64 * 500, 0, 2, 7, 3, AuditOutcome::Migration(stage));
        }
        assert!(AuditLog::verify(&log.entries()));
        assert_eq!(log.denials(), 0, "stage records are not denials");
        // Rewriting history — claiming the handoff aborted when the log
        // says it committed — breaks the chain.
        let mut entries = log.entries();
        entries[4].outcome = AuditOutcome::Migration(MigrationStage::Aborted);
        assert!(!AuditLog::verify(&entries));
        // So does moving the epoch (ordinal) of a recorded stage.
        let mut entries = log.entries();
        entries[0].ordinal = 2;
        assert!(!AuditLog::verify(&entries));
    }

    #[test]
    fn chain_hash_edit_detected() {
        let log = log_with(4);
        let mut entries = log.entries();
        entries[1].chain[0] ^= 1;
        assert!(!AuditLog::verify(&entries));
    }

    #[test]
    fn concurrent_appends_keep_chain_valid() {
        use std::sync::Arc;
        let log = Arc::new(AuditLog::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        log.record(i, 0, t, 1, 0x15, AuditOutcome::Allowed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.len(), 200);
        assert!(AuditLog::verify(&log.entries()));
    }
}
