//! AC1: per-domain credentials binding a domain to its vTPM instance.
//!
//! The baseline system's only domain↔instance binding is XenStore data —
//! rewritable by anything with Dom0 privileges and absent from any
//! cryptographic check. The improvement provisions a secret credential
//! per (domain, instance) pair at domain-build time, held (a) in the
//! guest's frontend and (b) in this table inside the manager. Every
//! request must carry an HMAC under the credential; the binding is
//! therefore enforced by key possession, not by mutable configuration.

use std::collections::HashMap;

use parking_lot::RwLock;
use tpm_crypto::drbg::Drbg;

/// Credential length in bytes (HMAC-SHA256 key).
pub const CREDENTIAL_LEN: usize = 32;

/// The manager-side credential table.
pub struct CredentialTable {
    inner: RwLock<Inner>,
}

struct Inner {
    /// (domain, instance) -> key.
    keys: HashMap<(u32, u32), [u8; CREDENTIAL_LEN]>,
    /// domain -> bound instance (for precise BindingMismatch reporting).
    bindings: HashMap<u32, u32>,
    rng: Drbg,
}

impl CredentialTable {
    /// Empty table; `seed` drives credential generation.
    pub fn new(seed: &[u8]) -> Self {
        CredentialTable {
            inner: RwLock::new(Inner {
                keys: HashMap::new(),
                bindings: HashMap::new(),
                rng: Drbg::new(&[seed, b"/credentials"].concat()),
            }),
        }
    }

    /// Provision a fresh credential binding `domain` to `instance`,
    /// replacing any previous binding for the domain. Returns the key to
    /// hand to the guest's frontend (over the domain-builder channel,
    /// never XenStore).
    pub fn provision(&self, domain: u32, instance: u32) -> [u8; CREDENTIAL_LEN] {
        let mut inner = self.inner.write();
        if let Some(old) = inner.bindings.insert(domain, instance) {
            inner.keys.remove(&(domain, old));
        }
        let mut key = [0u8; CREDENTIAL_LEN];
        inner.rng.fill_bytes(&mut key);
        inner.keys.insert((domain, instance), key);
        key
    }

    /// Revoke a domain's credential (domain destruction).
    pub fn revoke(&self, domain: u32) {
        let mut inner = self.inner.write();
        if let Some(instance) = inner.bindings.remove(&domain) {
            inner.keys.remove(&(domain, instance));
        }
    }

    /// Key for (domain, instance), if that exact binding is provisioned.
    pub fn key_for(&self, domain: u32, instance: u32) -> Option<[u8; CREDENTIAL_LEN]> {
        self.inner.read().keys.get(&(domain, instance)).copied()
    }

    /// The instance `domain` is bound to, if any.
    pub fn binding_of(&self, domain: u32) -> Option<u32> {
        self.inner.read().bindings.get(&domain).copied()
    }

    /// Number of provisioned bindings.
    pub fn len(&self) -> usize {
        self.inner.read().bindings.len()
    }

    /// Whether no bindings exist.
    pub fn is_empty(&self) -> bool {
        self.inner.read().bindings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provision_and_lookup() {
        let t = CredentialTable::new(b"cred");
        let k = t.provision(3, 7);
        assert_eq!(t.key_for(3, 7), Some(k));
        assert_eq!(t.binding_of(3), Some(7));
        // The wrong instance yields nothing.
        assert_eq!(t.key_for(3, 8), None);
        // Another domain can't look up this binding.
        assert_eq!(t.key_for(4, 7), None);
    }

    #[test]
    fn credentials_unique_per_provision() {
        let t = CredentialTable::new(b"cred");
        let k1 = t.provision(1, 1);
        let k2 = t.provision(2, 2);
        assert_ne!(k1, k2);
    }

    #[test]
    fn reprovision_replaces_binding() {
        let t = CredentialTable::new(b"cred");
        let k1 = t.provision(3, 7);
        let k2 = t.provision(3, 9);
        assert_ne!(k1, k2);
        assert_eq!(t.binding_of(3), Some(9));
        assert_eq!(t.key_for(3, 7), None, "old binding revoked");
        assert_eq!(t.key_for(3, 9), Some(k2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn revoke_removes_everything() {
        let t = CredentialTable::new(b"cred");
        t.provision(3, 7);
        t.revoke(3);
        assert!(t.is_empty());
        assert_eq!(t.key_for(3, 7), None);
        // Revoking twice is harmless.
        t.revoke(3);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = CredentialTable::new(b"same");
        let b = CredentialTable::new(b"same");
        assert_eq!(a.provision(1, 1), b.provision(1, 1));
        let c = CredentialTable::new(b"different");
        assert_ne!(a.provision(2, 2), c.provision(2, 2));
    }
}
