//! # vtpm-ac
//!
//! **The paper's contribution**: improved access control for the Xen
//! vTPM, reproducing *Improvement for vTPM Access Control on Xen*
//! (Morikawa, Ebara, Onishi, Nakano — ICPPW 2010).
//!
//! The stock Xen vTPM trusts its environment: the domain↔instance
//! binding is mutable XenStore data, any ordinal reaching the manager
//! executes, and instance secrets sit in cleartext Dom0 memory where
//! "CPU and memory dump software" (the abstract's attack) reads them.
//! This crate hardens that access path with four mechanisms, installed
//! into the unmodified manager through its [`vtpm::AccessHook`] seam:
//!
//! * **AC1 — authenticated binding** ([`credentials`], [`replay`]): a
//!   per-domain credential provisioned at domain-build time keys an
//!   HMAC-SHA256 over every request envelope; sequence numbers defeat
//!   replay. Configuration rewrites (XenStore rebinding) and request
//!   forgery stop working because the binding is now key possession.
//! * **AC2 — command filtering** ([`policy`]): an ordered-rule policy
//!   engine over ordinal groups decides (domain, ordinal) with an
//!   epoch-invalidated decision cache.
//! * **AC3 — dump-resistant state** (mechanism lives in `vtpm`:
//!   [`vtpm::MirrorMode::Encrypted`] + ring scrubbing; this crate turns
//!   it on via [`SecurePlatform`]): resident instance state is encrypted
//!   under a master key held in hypervisor-protected memory.
//! * **AC4 — audit** ([`audit`]): every decision appends to a
//!   hash-chained, tamper-evident log.
//!
//! [`SecurePlatform`] assembles all of it; `vtpm::Platform::baseline()`
//! is the unmodified comparator.

pub mod audit;
pub mod credentials;
pub mod improved;
pub mod policy;
pub mod provision;
pub mod replay;

pub use audit::{AuditEntry, AuditLog, AuditOutcome, MigrationStage};
pub use credentials::{CredentialTable, CREDENTIAL_LEN};
pub use improved::{AcConfig, AcCosts, ImprovedHook};
pub use policy::{OrdinalGroup, PolicyEngine, PolicyParseError};
pub use provision::SecurePlatform;
pub use replay::ReplayGuard;
