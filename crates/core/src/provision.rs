//! Assembly: install the improved access control on a platform and
//! provision guests with credentials.
//!
//! [`SecurePlatform`] is the top-level object the paper's "improved"
//! system corresponds to: a [`vtpm::Platform`] in improved mechanism mode
//! (encrypted mirror, ring scrubbing) with an [`ImprovedHook`] installed
//! and a domain-builder path that provisions AC1 credentials into both
//! the manager and the guest frontend.

use std::sync::Arc;

use xen_sim::Result as XenResult;

use vtpm::{Guest, Platform};

use crate::improved::{AcConfig, ImprovedHook};

/// A platform running the paper's improved vTPM access control.
pub struct SecurePlatform {
    /// The underlying platform (improved mechanism mode).
    pub platform: Platform,
    /// The installed hook (shared with the manager).
    pub hook: Arc<ImprovedHook>,
}

impl SecurePlatform {
    /// Build an improved platform with the given AC configuration.
    pub fn new(seed: &[u8], cfg: AcConfig) -> XenResult<Self> {
        let platform = Platform::improved(seed)?;
        let hook = Arc::new(ImprovedHook::new(
            Arc::clone(&platform.hv),
            seed,
            cfg,
        ));
        platform.manager.set_hook(Arc::clone(&hook) as Arc<dyn vtpm::AccessHook>);
        Ok(SecurePlatform { platform, hook })
    }

    /// Build with the full (default) AC configuration.
    pub fn full(seed: &[u8]) -> XenResult<Self> {
        Self::new(seed, AcConfig::default())
    }

    /// Launch a guest *with* credential provisioning: the domain builder
    /// creates the domain and device, generates the credential, and
    /// installs it into both the manager's table and the guest frontend —
    /// never touching XenStore.
    pub fn launch_guest(&self, name: &str) -> XenResult<Guest> {
        let mut guest = self.platform.launch_guest(name)?;
        let key = self.hook.credentials.provision(guest.domain.0, guest.instance);
        guest.front.set_credential(key.to_vec());
        Ok(guest)
    }

    /// Tear down a guest's credential (domain destruction path).
    pub fn revoke_guest(&self, guest: &Guest) {
        self.hook.credentials.revoke(guest.domain.0);
        self.hook.replay.reset(guest.domain.0, guest.instance);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpm::PcrSelection;

    #[test]
    fn secure_platform_serves_credentialed_guests() {
        let sp = SecurePlatform::full(b"secure-1").unwrap();
        let mut g = sp.launch_guest("web1").unwrap();
        assert!(g.front.has_credential());
        let mut c = g.client(b"c");
        c.startup_clear().unwrap();
        let owner = [1u8; 20];
        let srk = [2u8; 20];
        c.take_ownership(&owner, &srk).unwrap();
        let blob = c
            .seal(tpm::handle::SRK, &srk, &[3; 20], Some(&PcrSelection::of(&[10])), b"secret")
            .unwrap();
        assert_eq!(c.unseal(tpm::handle::SRK, &srk, &[3; 20], &blob).unwrap(), b"secret");
        // Every one of those requests was audited as allowed.
        assert!(sp.hook.audit.len() > 0);
        assert_eq!(sp.hook.audit.denials(), 0);
    }

    #[test]
    fn uncredentialed_guest_denied() {
        let sp = SecurePlatform::full(b"secure-2").unwrap();
        // Launch through the *base* platform, skipping provisioning: this
        // is what an out-of-band / rogue domain looks like.
        let mut g = sp.platform.launch_guest("rogue").unwrap();
        let mut c = g.client(b"c");
        assert!(matches!(
            c.startup_clear(),
            Err(tpm::ClientError::Tpm(vtpm::VTPM_FAIL_RC))
        ));
        assert!(sp.hook.audit.denials() > 0);
    }

    #[test]
    fn two_guests_cannot_cross_talk() {
        let sp = SecurePlatform::full(b"secure-3").unwrap();
        let mut g1 = sp.launch_guest("a").unwrap();
        let g2 = sp.launch_guest("b").unwrap();
        // Rewire g1's frontend to claim g2's instance (the post-rebinding
        // state): tags no longer match the manager's table.
        g1.front.instance = g2.instance;
        let mut c = g1.client(b"c");
        assert!(c.startup_clear().is_err());
    }

    #[test]
    fn revoke_guest_cuts_access() {
        let sp = SecurePlatform::full(b"secure-4").unwrap();
        let mut g = sp.launch_guest("a").unwrap();
        {
            let mut c = g.client(b"c");
            c.startup_clear().unwrap();
        }
        sp.revoke_guest(&g);
        let mut c = g.client(b"c2");
        assert!(c.get_random(8).is_err());
    }

    #[test]
    fn denied_ordinals_blocked_end_to_end() {
        let sp = SecurePlatform::full(b"secure-5").unwrap();
        let mut g = sp.launch_guest("a").unwrap();
        let mut c = g.client(b"c");
        c.startup_clear().unwrap();
        let owner = [1u8; 20];
        c.take_ownership(&owner, &[2; 20]).unwrap();
        // NV_DefineSpace is in the denied nv-admin group.
        assert!(c.nv_define(&owner, 0x10, 16, 0x1).is_err());
    }
}
