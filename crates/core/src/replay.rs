//! AC1 (continued): replay protection.
//!
//! The tag makes envelopes unforgeable but not unrepeatable — an attacker
//! who dumps a ring can resubmit a captured envelope verbatim. Each
//! (domain, instance) pair therefore carries a strictly increasing
//! sequence number; the guard accepts an envelope only if its sequence
//! exceeds the highest accepted so far.
//!
//! The table is lock-striped: a single mutex over the whole map would
//! serialize every guest's fast path through one lock even though
//! distinct (domain, instance) bindings never interact. Bindings hash to
//! one of [`SHARDS`] independently locked sub-maps, so contention only
//! arises between requests for bindings that land on the same shard.

use std::collections::HashMap;

use parking_lot::Mutex;

/// Number of lock stripes. Power of two so shard selection is a mask.
const SHARDS: usize = 16;

/// The per-binding sequence tracker.
pub struct ReplayGuard {
    shards: [Mutex<HashMap<(u32, u32), u64>>; SHARDS],
}

impl Default for ReplayGuard {
    fn default() -> Self {
        ReplayGuard {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }
}

impl ReplayGuard {
    /// Fresh guard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Map a binding to its stripe. Fibonacci-style multiplicative
    /// hashing keeps sequentially allocated domain/instance ids from
    /// clustering on a few shards.
    fn shard(&self, domain: u32, instance: u32) -> &Mutex<HashMap<(u32, u32), u64>> {
        let h = (domain as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (instance as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        &self.shards[(h >> 32) as usize & (SHARDS - 1)]
    }

    /// Accept `seq` for (domain, instance) iff it advances; updates the
    /// watermark on acceptance.
    pub fn check_and_advance(&self, domain: u32, instance: u32, seq: u64) -> bool {
        let mut last = self.shard(domain, instance).lock();
        let entry = last.entry((domain, instance)).or_insert(0);
        if seq > *entry {
            *entry = seq;
            true
        } else {
            false
        }
    }

    /// Current watermark for a binding.
    pub fn watermark(&self, domain: u32, instance: u32) -> u64 {
        self.shard(domain, instance)
            .lock()
            .get(&(domain, instance))
            .copied()
            .unwrap_or(0)
    }

    /// Forget a binding (domain destruction / re-provision).
    pub fn reset(&self, domain: u32, instance: u32) {
        self.shard(domain, instance).lock().remove(&(domain, instance));
    }

    /// Total bindings tracked across all shards (diagnostics).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when no binding is tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_acceptance() {
        let g = ReplayGuard::new();
        assert!(g.check_and_advance(1, 1, 1));
        assert!(g.check_and_advance(1, 1, 2));
        // Replay of 2 and regression to 1 both refused.
        assert!(!g.check_and_advance(1, 1, 2));
        assert!(!g.check_and_advance(1, 1, 1));
        // Gaps are fine (lost messages).
        assert!(g.check_and_advance(1, 1, 100));
        assert_eq!(g.watermark(1, 1), 100);
    }

    #[test]
    fn zero_never_accepted() {
        let g = ReplayGuard::new();
        assert!(!g.check_and_advance(1, 1, 0), "sequences start at 1");
    }

    #[test]
    fn bindings_independent() {
        let g = ReplayGuard::new();
        assert!(g.check_and_advance(1, 1, 5));
        assert!(g.check_and_advance(1, 2, 5));
        assert!(g.check_and_advance(2, 1, 5));
    }

    #[test]
    fn reset_forgets() {
        let g = ReplayGuard::new();
        g.check_and_advance(1, 1, 50);
        g.reset(1, 1);
        assert!(g.check_and_advance(1, 1, 1));
    }

    #[test]
    fn concurrent_unique_acceptance() {
        use std::sync::Arc;
        // With racing submitters of the same seq, exactly one wins.
        let g = Arc::new(ReplayGuard::new());
        let mut handles = Vec::new();
        let accepted = Arc::new(std::sync::atomic::AtomicU64::new(0));
        for _ in 0..8 {
            let g = Arc::clone(&g);
            let accepted = Arc::clone(&accepted);
            handles.push(std::thread::spawn(move || {
                for seq in 1..=100u64 {
                    if g.check_and_advance(9, 9, seq) {
                        accepted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(accepted.load(std::sync::atomic::Ordering::Relaxed), 100);
    }

    #[test]
    fn striping_preserves_per_binding_isolation() {
        // Many bindings spread over shards; watermarks never bleed into
        // each other even when bindings collide on a stripe.
        let g = ReplayGuard::new();
        for domain in 0..64u32 {
            for instance in 0..4u32 {
                let seq = u64::from(domain * 10 + instance + 1);
                assert!(g.check_and_advance(domain, instance, seq));
            }
        }
        assert_eq!(g.len(), 64 * 4);
        for domain in 0..64u32 {
            for instance in 0..4u32 {
                let seq = u64::from(domain * 10 + instance + 1);
                assert_eq!(g.watermark(domain, instance), seq);
                assert!(!g.check_and_advance(domain, instance, seq));
            }
        }
        // Reset one binding; its neighbours keep their watermarks.
        g.reset(7, 2);
        assert_eq!(g.watermark(7, 2), 0);
        assert_eq!(g.watermark(7, 1), 72);
        assert_eq!(g.len(), 64 * 4 - 1);
    }

    #[test]
    fn concurrent_distinct_bindings_all_accepted() {
        use std::sync::Arc;
        // Threads on disjoint bindings must not interfere: every
        // submission is a fresh maximum for its own binding.
        let g = Arc::new(ReplayGuard::new());
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let g = Arc::clone(&g);
            handles.push(std::thread::spawn(move || {
                for seq in 1..=200u64 {
                    assert!(g.check_and_advance(t, t * 3, seq));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..8u32 {
            assert_eq!(g.watermark(t, t * 3), 200);
        }
    }
}
