//! AC1 (continued): replay protection.
//!
//! The tag makes envelopes unforgeable but not unrepeatable — an attacker
//! who dumps a ring can resubmit a captured envelope verbatim. Each
//! (domain, instance) pair therefore carries a strictly increasing
//! sequence number; the guard accepts an envelope only if its sequence
//! exceeds the highest accepted so far.

use std::collections::HashMap;

use parking_lot::Mutex;

/// The per-binding sequence tracker.
#[derive(Default)]
pub struct ReplayGuard {
    last: Mutex<HashMap<(u32, u32), u64>>,
}

impl ReplayGuard {
    /// Fresh guard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accept `seq` for (domain, instance) iff it advances; updates the
    /// watermark on acceptance.
    pub fn check_and_advance(&self, domain: u32, instance: u32, seq: u64) -> bool {
        let mut last = self.last.lock();
        let entry = last.entry((domain, instance)).or_insert(0);
        if seq > *entry {
            *entry = seq;
            true
        } else {
            false
        }
    }

    /// Current watermark for a binding.
    pub fn watermark(&self, domain: u32, instance: u32) -> u64 {
        self.last.lock().get(&(domain, instance)).copied().unwrap_or(0)
    }

    /// Forget a binding (domain destruction / re-provision).
    pub fn reset(&self, domain: u32, instance: u32) {
        self.last.lock().remove(&(domain, instance));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_acceptance() {
        let g = ReplayGuard::new();
        assert!(g.check_and_advance(1, 1, 1));
        assert!(g.check_and_advance(1, 1, 2));
        // Replay of 2 and regression to 1 both refused.
        assert!(!g.check_and_advance(1, 1, 2));
        assert!(!g.check_and_advance(1, 1, 1));
        // Gaps are fine (lost messages).
        assert!(g.check_and_advance(1, 1, 100));
        assert_eq!(g.watermark(1, 1), 100);
    }

    #[test]
    fn zero_never_accepted() {
        let g = ReplayGuard::new();
        assert!(!g.check_and_advance(1, 1, 0), "sequences start at 1");
    }

    #[test]
    fn bindings_independent() {
        let g = ReplayGuard::new();
        assert!(g.check_and_advance(1, 1, 5));
        assert!(g.check_and_advance(1, 2, 5));
        assert!(g.check_and_advance(2, 1, 5));
    }

    #[test]
    fn reset_forgets() {
        let g = ReplayGuard::new();
        g.check_and_advance(1, 1, 50);
        g.reset(1, 1);
        assert!(g.check_and_advance(1, 1, 1));
    }

    #[test]
    fn concurrent_unique_acceptance() {
        use std::sync::Arc;
        // With racing submitters of the same seq, exactly one wins.
        let g = Arc::new(ReplayGuard::new());
        let mut handles = Vec::new();
        let accepted = Arc::new(std::sync::atomic::AtomicU64::new(0));
        for _ in 0..8 {
            let g = Arc::clone(&g);
            let accepted = Arc::clone(&accepted);
            handles.push(std::thread::spawn(move || {
                for seq in 1..=100u64 {
                    if g.check_and_advance(9, 9, seq) {
                        accepted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(accepted.load(std::sync::atomic::Ordering::Relaxed), 100);
    }
}
