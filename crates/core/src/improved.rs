//! The improved access-control hook: AC1 + AC2 + AC4 behind the
//! manager's [`vtpm::AccessHook`] seam.
//!
//! Mechanisms are individually switchable ([`AcConfig`]) so the ablation
//! experiment (R-T4) can measure each one's cost and coverage alone. The
//! full configuration checks, in order:
//!
//! 1. *source consistency* — the envelope's claimed domain must equal the
//!    domain the ring actually belongs to (the backend's ground truth);
//! 2. *credential binding* (AC1) — the (domain, instance) pair must have
//!    a provisioned credential and the envelope tag must verify under it
//!    (constant-time compare);
//! 3. *replay* — the sequence number must advance;
//! 4. *locality* — the claimed locality must not exceed the domain's cap;
//! 5. *command policy* (AC2) — the (domain, ordinal) decision must allow.
//!
//! Every decision is appended to the hash-chained audit log (AC4).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use tpm_crypto::ct_eq;
use xen_sim::Hypervisor;

use vtpm::{AccessDecision, AccessHook, DenyReason, RequestContext};

use crate::audit::{AuditLog, AuditOutcome};
use crate::credentials::CredentialTable;
use crate::policy::PolicyEngine;
use crate::replay::ReplayGuard;

/// Which mechanisms are active (the ablation switchboard).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcConfig {
    /// AC1: credential + tag verification and source consistency.
    pub auth: bool,
    /// AC1b: sequence-number replay protection (requires `auth`).
    pub replay: bool,
    /// AC2: ordinal policy filtering.
    pub policy: bool,
    /// AC4: audit logging.
    pub audit: bool,
    /// Maximum locality a guest may claim.
    pub max_guest_locality: u8,
}

impl Default for AcConfig {
    fn default() -> Self {
        AcConfig { auth: true, replay: true, policy: true, audit: true, max_guest_locality: 1 }
    }
}

impl AcConfig {
    /// Everything off — behaves like the stock hook (the ablation floor).
    pub fn none() -> Self {
        AcConfig { auth: false, replay: false, policy: false, audit: false, max_guest_locality: 4 }
    }
}

/// Modelled virtual-time costs of each mechanism (ns). Values reflect the
/// arithmetic actually performed (HMAC-SHA256 over command bytes, a map
/// probe, an append) on ~2010 server cores.
#[derive(Debug, Clone, Copy)]
pub struct AcCosts {
    /// Fixed HMAC setup cost.
    pub auth_base_ns: u64,
    /// HMAC cost per command byte.
    pub auth_per_byte_ns: u64,
    /// Replay-guard probe.
    pub replay_ns: u64,
    /// Cached policy decision.
    pub policy_ns: u64,
    /// Audit append (hash chain).
    pub audit_ns: u64,
}

impl Default for AcCosts {
    fn default() -> Self {
        AcCosts {
            auth_base_ns: 1_500,
            auth_per_byte_ns: 3,
            replay_ns: 120,
            policy_ns: 250,
            audit_ns: 900,
        }
    }
}

/// The improved hook.
pub struct ImprovedHook {
    cfg: AcConfig,
    costs: AcCosts,
    /// Credential table (AC1).
    pub credentials: Arc<CredentialTable>,
    /// Policy engine (AC2).
    pub policy: Arc<PolicyEngine>,
    /// Replay guard.
    pub replay: Arc<ReplayGuard>,
    /// Audit log (AC4).
    pub audit: Arc<AuditLog>,
    /// Per-domain locality caps overriding the default.
    locality_caps: RwLock<HashMap<u32, u8>>,
    /// Clock for audit timestamps.
    hv: Arc<Hypervisor>,
}

impl ImprovedHook {
    /// Build a hook with the given configuration and the recommended
    /// policy.
    pub fn new(hv: Arc<Hypervisor>, seed: &[u8], cfg: AcConfig) -> Self {
        ImprovedHook {
            cfg,
            costs: AcCosts::default(),
            credentials: Arc::new(CredentialTable::new(seed)),
            policy: Arc::new(PolicyEngine::recommended()),
            replay: Arc::new(ReplayGuard::new()),
            audit: Arc::new(AuditLog::new()),
            locality_caps: RwLock::new(HashMap::new()),
            hv,
        }
    }

    /// Replace the modelled cost table.
    pub fn with_costs(mut self, costs: AcCosts) -> Self {
        self.costs = costs;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> AcConfig {
        self.cfg
    }

    /// Raise/lower a single domain's locality cap.
    pub fn set_locality_cap(&self, domain: u32, cap: u8) {
        self.locality_caps.write().insert(domain, cap);
    }

    fn locality_cap(&self, domain: u32) -> u8 {
        self.locality_caps
            .read()
            .get(&domain)
            .copied()
            .unwrap_or(self.cfg.max_guest_locality)
    }

    fn decide(&self, ctx: &RequestContext<'_>) -> AccessDecision {
        if self.cfg.auth {
            // 1. Source consistency.
            if ctx.claimed_domain != ctx.source_domain.0 {
                return AccessDecision::Deny(DenyReason::SourceMismatch);
            }
            // 2. Credential binding + tag.
            let key = match self.credentials.key_for(ctx.claimed_domain, ctx.instance) {
                Some(k) => k,
                None => {
                    let reason = match self.credentials.binding_of(ctx.claimed_domain) {
                        Some(_) => DenyReason::BindingMismatch,
                        None => DenyReason::NoCredential,
                    };
                    return AccessDecision::Deny(reason);
                }
            };
            let tag = match ctx.tag {
                Some(t) => t,
                None => return AccessDecision::Deny(DenyReason::BadTag),
            };
            // Recompute over the same material the frontend signed.
            let expected = vtpm::Envelope {
                domain: ctx.claimed_domain,
                instance: ctx.instance,
                seq: ctx.seq,
                locality: ctx.locality,
                tag: None,
                command: ctx.command.to_vec(),
            }
            .compute_tag(&key);
            if !ct_eq(&expected, tag) {
                return AccessDecision::Deny(DenyReason::BadTag);
            }
            // 3. Replay.
            if self.cfg.replay
                && !self.replay.check_and_advance(ctx.claimed_domain, ctx.instance, ctx.seq)
            {
                return AccessDecision::Deny(DenyReason::Replay);
            }
        }
        // 4. Locality.
        if ctx.locality > self.locality_cap(ctx.claimed_domain) {
            return AccessDecision::Deny(DenyReason::LocalityDenied);
        }
        // 5. Policy.
        if self.cfg.policy {
            let ord = match ctx.ordinal {
                Some(o) => o,
                None => return AccessDecision::Deny(DenyReason::OrdinalDenied),
            };
            if !self.policy.check(ctx.claimed_domain, ord) {
                return AccessDecision::Deny(DenyReason::OrdinalDenied);
            }
        }
        AccessDecision::Allow
    }
}

impl AccessHook for ImprovedHook {
    fn authorize(&self, ctx: &RequestContext<'_>) -> AccessDecision {
        let decision = self.decide(ctx);
        if self.cfg.audit {
            let outcome = match decision {
                AccessDecision::Allow => AuditOutcome::Allowed,
                AccessDecision::Deny(r) => AuditOutcome::Denied(r),
            };
            self.audit.record(
                self.hv.clock.now_ns(),
                ctx.request_id,
                ctx.claimed_domain,
                ctx.instance,
                ctx.ordinal.unwrap_or(0),
                outcome,
            );
        }
        decision
    }

    fn overhead_ns(&self, ctx: &RequestContext<'_>) -> u64 {
        let mut ns = 0;
        if self.cfg.auth {
            ns += self.costs.auth_base_ns
                + self.costs.auth_per_byte_ns * ctx.command.len() as u64;
            if self.cfg.replay {
                ns += self.costs.replay_ns;
            }
        }
        if self.cfg.policy {
            ns += self.costs.policy_ns;
        }
        if self.cfg.audit {
            ns += self.costs.audit_ns;
        }
        ns
    }

    fn name(&self) -> &str {
        "improved-ac"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtpm::Envelope;
    use xen_sim::DomainId;

    fn hook(cfg: AcConfig) -> ImprovedHook {
        let hv = Arc::new(Hypervisor::boot(64, 4).unwrap());
        ImprovedHook::new(hv, b"hook-test", cfg)
    }

    fn seal_cmd() -> Vec<u8> {
        // header only; just enough to carry the SEAL ordinal
        let mut cmd = vec![0u8; 14];
        cmd[..2].copy_from_slice(&0x00C2u16.to_be_bytes());
        cmd[2..6].copy_from_slice(&14u32.to_be_bytes());
        cmd[6..10].copy_from_slice(&tpm::ordinal::SEAL.to_be_bytes());
        cmd
    }

    /// Build a well-formed signed envelope and its context pieces.
    fn signed_envelope(h: &ImprovedHook, domain: u32, instance: u32, seq: u64) -> Envelope {
        let key = h
            .credentials
            .key_for(domain, instance)
            .expect("provisioned");
        Envelope {
            domain,
            instance,
            seq,
            locality: 0,
            tag: None,
            command: seal_cmd(),
        }
        .sign(&key)
    }

    fn ctx<'a>(e: &'a Envelope, source: u32) -> RequestContext<'a> {
        RequestContext {
            request_id: e.seq, // tests reuse the seq as a stand-in id
            source_domain: DomainId(source),
            claimed_domain: e.domain,
            instance: e.instance,
            seq: e.seq,
            locality: e.locality,
            ordinal: tpm::ordinal_of(&e.command),
            tag: e.tag.as_ref(),
            command: &e.command,
        }
    }

    #[test]
    fn valid_request_allowed_and_audited() {
        let h = hook(AcConfig::default());
        h.credentials.provision(3, 7);
        let e = signed_envelope(&h, 3, 7, 1);
        assert_eq!(h.authorize(&ctx(&e, 3)), AccessDecision::Allow);
        assert_eq!(h.audit.len(), 1);
        assert_eq!(h.audit.denials(), 0);
    }

    #[test]
    fn spoofed_source_denied() {
        let h = hook(AcConfig::default());
        h.credentials.provision(3, 7);
        let e = signed_envelope(&h, 3, 7, 1);
        // Arrives from domain 5's ring while claiming domain 3.
        assert_eq!(
            h.authorize(&ctx(&e, 5)),
            AccessDecision::Deny(DenyReason::SourceMismatch)
        );
    }

    #[test]
    fn missing_credential_denied() {
        let h = hook(AcConfig::default());
        let e = Envelope {
            domain: 3,
            instance: 7,
            seq: 1,
            locality: 0,
            tag: Some([0; 32]),
            command: seal_cmd(),
        };
        assert_eq!(
            h.authorize(&ctx(&e, 3)),
            AccessDecision::Deny(DenyReason::NoCredential)
        );
    }

    #[test]
    fn cross_instance_binding_mismatch() {
        let h = hook(AcConfig::default());
        h.credentials.provision(3, 7);
        // Domain 3 tries instance 8 (e.g. after a XenStore rebinding).
        let key = h.credentials.key_for(3, 7).unwrap();
        let e = Envelope {
            domain: 3,
            instance: 8,
            seq: 1,
            locality: 0,
            tag: None,
            command: seal_cmd(),
        }
        .sign(&key);
        assert_eq!(
            h.authorize(&ctx(&e, 3)),
            AccessDecision::Deny(DenyReason::BindingMismatch)
        );
    }

    #[test]
    fn bad_or_missing_tag_denied() {
        let h = hook(AcConfig::default());
        h.credentials.provision(3, 7);
        // Missing tag.
        let mut e = signed_envelope(&h, 3, 7, 1);
        e.tag = None;
        assert_eq!(h.authorize(&ctx(&e, 3)), AccessDecision::Deny(DenyReason::BadTag));
        // Corrupted tag.
        let mut e2 = signed_envelope(&h, 3, 7, 2);
        e2.tag.as_mut().unwrap()[0] ^= 1;
        assert_eq!(h.authorize(&ctx(&e2, 3)), AccessDecision::Deny(DenyReason::BadTag));
        // Tag under the wrong key.
        let e3 = Envelope {
            domain: 3,
            instance: 7,
            seq: 3,
            locality: 0,
            tag: None,
            command: seal_cmd(),
        }
        .sign(b"not-the-credential");
        assert_eq!(h.authorize(&ctx(&e3, 3)), AccessDecision::Deny(DenyReason::BadTag));
    }

    #[test]
    fn replay_denied() {
        let h = hook(AcConfig::default());
        h.credentials.provision(3, 7);
        let e = signed_envelope(&h, 3, 7, 5);
        assert_eq!(h.authorize(&ctx(&e, 3)), AccessDecision::Allow);
        // Identical envelope again.
        assert_eq!(h.authorize(&ctx(&e, 3)), AccessDecision::Deny(DenyReason::Replay));
        // And an older sequence.
        let e_old = signed_envelope(&h, 3, 7, 4);
        assert_eq!(h.authorize(&ctx(&e_old, 3)), AccessDecision::Deny(DenyReason::Replay));
        assert_eq!(h.audit.denials(), 2);
    }

    #[test]
    fn policy_denies_admin_ordinals() {
        let h = hook(AcConfig::default());
        h.credentials.provision(3, 7);
        let key = h.credentials.key_for(3, 7).unwrap();
        let mut cmd = seal_cmd();
        cmd[6..10].copy_from_slice(&tpm::ordinal::NV_DEFINE_SPACE.to_be_bytes());
        let e = Envelope { domain: 3, instance: 7, seq: 1, locality: 0, tag: None, command: cmd }
            .sign(&key);
        assert_eq!(
            h.authorize(&ctx(&e, 3)),
            AccessDecision::Deny(DenyReason::OrdinalDenied)
        );
    }

    #[test]
    fn locality_cap_enforced_and_overridable() {
        let h = hook(AcConfig::default());
        h.credentials.provision(3, 7);
        let key = h.credentials.key_for(3, 7).unwrap();
        let make = |seq, locality| {
            Envelope {
                domain: 3,
                instance: 7,
                seq,
                locality,
                tag: None,
                command: seal_cmd(),
            }
            .sign(&key)
        };
        let e = make(1, 3);
        assert_eq!(
            h.authorize(&ctx(&e, 3)),
            AccessDecision::Deny(DenyReason::LocalityDenied)
        );
        h.set_locality_cap(3, 4);
        let e2 = make(2, 3);
        assert_eq!(h.authorize(&ctx(&e2, 3)), AccessDecision::Allow);
    }

    #[test]
    fn ablation_disables_mechanisms() {
        // Auth off: untagged spoofed envelopes pass (policy still on).
        let h = hook(AcConfig { auth: false, replay: false, ..Default::default() });
        let e = Envelope {
            domain: 3,
            instance: 7,
            seq: 0,
            locality: 0,
            tag: None,
            command: seal_cmd(),
        };
        assert_eq!(h.authorize(&ctx(&e, 5)), AccessDecision::Allow);

        // Everything off behaves like stock.
        let h2 = hook(AcConfig::none());
        let mut cmd = seal_cmd();
        cmd[6..10].copy_from_slice(&tpm::ordinal::OWNER_CLEAR.to_be_bytes());
        let e2 =
            Envelope { domain: 1, instance: 1, seq: 0, locality: 4, tag: None, command: cmd };
        assert_eq!(h2.authorize(&ctx(&e2, 9)), AccessDecision::Allow);
        assert_eq!(h2.audit.len(), 0, "audit off records nothing");
    }

    #[test]
    fn overhead_scales_with_mechanisms() {
        let hv = Arc::new(Hypervisor::boot(64, 4).unwrap());
        let full = ImprovedHook::new(Arc::clone(&hv), b"s", AcConfig::default());
        let none = ImprovedHook::new(Arc::clone(&hv), b"s", AcConfig::none());
        let auth_only = ImprovedHook::new(
            hv,
            b"s",
            AcConfig { policy: false, audit: false, ..Default::default() },
        );
        let e = Envelope {
            domain: 1,
            instance: 1,
            seq: 1,
            locality: 0,
            tag: None,
            command: seal_cmd(),
        };
        let c = ctx(&e, 1);
        assert_eq!(none.overhead_ns(&c), 0);
        assert!(auth_only.overhead_ns(&c) > 0);
        assert!(full.overhead_ns(&c) > auth_only.overhead_ns(&c));
    }

    #[test]
    fn audit_chain_stays_valid_under_mixed_traffic() {
        let h = hook(AcConfig::default());
        h.credentials.provision(3, 7);
        for seq in 1..=10u64 {
            let e = signed_envelope(&h, 3, 7, seq);
            h.authorize(&ctx(&e, 3));
            // And one junk request per round.
            let junk = Envelope {
                domain: 9,
                instance: 9,
                seq,
                locality: 0,
                tag: Some([0; 32]),
                command: seal_cmd(),
            };
            h.authorize(&ctx(&junk, 9));
        }
        assert_eq!(h.audit.len(), 20);
        assert_eq!(h.audit.denials(), 10);
        assert!(crate::audit::AuditLog::verify(&h.audit.entries()));
    }
}
