//! Phi-accrual failure detection over fabric heartbeats.
//!
//! Classic threshold detectors answer "is the host dead?" with a
//! boolean that flips the instant a timeout expires; phi-accrual
//! detectors (Hayashibara et al., the design Cassandra ships) instead
//! output a *continuous suspicion score* that grows with the time since
//! the last heartbeat, scaled by the host's own observed inter-arrival
//! history. A host whose heartbeats always landed 1 ms apart becomes
//! suspicious after a few milliseconds of silence; a host that was
//! always jittery earns more patience. Callers pick the threshold
//! (`suspect_phi`) that matches how expensive a false positive is.
//!
//! Everything here runs on the cluster's virtual clock, so suspicion
//! scores are a pure function of the heartbeat arrival times — chaos
//! replays of the fleet are byte-identical.
//!
//! Two properties the proptests pin down, because the rebalancer's
//! safety argument leans on them:
//!
//! * between heartbeats, `phi` is monotonically non-decreasing in
//!   elapsed time — suspicion never decays on its own;
//! * a fresh heartbeat never raises `phi` — arrival is always
//!   (weakly) good news.

use std::collections::{BTreeMap, VecDeque};

/// Tuning for [`PhiAccrualDetector`].
#[derive(Debug, Clone, Copy)]
pub struct FailureDetectorConfig {
    /// Inter-arrival samples kept per host.
    pub window: usize,
    /// Samples required before the host's own history replaces the
    /// bootstrap interval.
    pub min_samples: usize,
    /// Assumed mean inter-arrival until `min_samples` real ones exist.
    pub bootstrap_interval_ns: u64,
    /// Floor on the mean inter-arrival, so a burst of back-to-back
    /// heartbeats cannot collapse the scale to zero and make every
    /// subsequent silence look infinitely suspicious.
    pub min_mean_ns: u64,
    /// Suspicion threshold: `phi >= suspect_phi` marks the host
    /// suspected. phi ≈ 1 after one decade of silence past the mean
    /// (base-10, like the original paper's formulation).
    pub suspect_phi: f64,
}

impl Default for FailureDetectorConfig {
    fn default() -> Self {
        FailureDetectorConfig {
            window: 16,
            min_samples: 3,
            bootstrap_interval_ns: 1_000_000,
            min_mean_ns: 1_000,
            suspect_phi: 3.0,
        }
    }
}

struct HostHistory {
    last_ns: u64,
    intervals: VecDeque<u64>,
}

/// Per-host suspicion scores accrued from heartbeat arrivals.
pub struct PhiAccrualDetector {
    cfg: FailureDetectorConfig,
    hosts: BTreeMap<usize, HostHistory>,
}

impl PhiAccrualDetector {
    /// An empty detector.
    pub fn new(cfg: FailureDetectorConfig) -> Self {
        PhiAccrualDetector { cfg, hosts: BTreeMap::new() }
    }

    /// Start (or restart) tracking `host`, treating `now_ns` as a
    /// synthetic first arrival. Re-registering wipes the history — a
    /// revived host gets a fresh bootstrap rather than inheriting the
    /// silence that got it suspected.
    pub fn register(&mut self, host: usize, now_ns: u64) {
        self.hosts.insert(host, HostHistory { last_ns: now_ns, intervals: VecDeque::new() });
    }

    /// Stop tracking `host`.
    pub fn deregister(&mut self, host: usize) {
        self.hosts.remove(&host);
    }

    /// Hosts currently tracked, ascending.
    pub fn tracked(&self) -> Vec<usize> {
        self.hosts.keys().copied().collect()
    }

    /// Record a heartbeat from `host` stamped `at_ns`. Unknown hosts
    /// are auto-registered (a joining host's first heartbeat may beat
    /// the controller's bookkeeping through the fabric). Heartbeats
    /// arriving out of order (fabric reordering) never move `last_ns`
    /// backwards.
    pub fn heartbeat(&mut self, host: usize, at_ns: u64) {
        let Some(h) = self.hosts.get_mut(&host) else {
            self.register(host, at_ns);
            return;
        };
        if at_ns <= h.last_ns {
            return;
        }
        h.intervals.push_back(at_ns - h.last_ns);
        while h.intervals.len() > self.cfg.window {
            h.intervals.pop_front();
        }
        h.last_ns = at_ns;
    }

    /// Mean inter-arrival the score is scaled by: the host's own
    /// history once it has enough samples, the bootstrap interval
    /// before that, floored either way.
    fn mean_ns(&self, h: &HostHistory) -> u64 {
        let mean = if h.intervals.len() >= self.cfg.min_samples {
            h.intervals.iter().sum::<u64>() / h.intervals.len() as u64
        } else {
            self.cfg.bootstrap_interval_ns
        };
        mean.max(self.cfg.min_mean_ns.max(1))
    }

    /// Suspicion score for `host` at `now_ns`; `None` if untracked.
    ///
    /// `phi = elapsed / (mean · ln 10)` — the exponential-arrival
    /// closed form of the accrual estimator: phi 1 after one decade of
    /// silence beyond the mean, 2 after two, and so on. Monotone in
    /// `elapsed` for a fixed history, and exactly 0 at the instant a
    /// heartbeat lands.
    pub fn phi(&self, host: usize, now_ns: u64) -> Option<f64> {
        let h = self.hosts.get(&host)?;
        let elapsed = now_ns.saturating_sub(h.last_ns);
        Some(elapsed as f64 / (self.mean_ns(h) as f64 * std::f64::consts::LN_10))
    }

    /// Whether `host`'s suspicion has crossed the configured threshold.
    /// Untracked hosts are not suspected (they are simply unknown).
    pub fn is_suspect(&self, host: usize, now_ns: u64) -> bool {
        self.phi(host, now_ns).is_some_and(|p| p >= self.cfg.suspect_phi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silence_accrues_suspicion_and_a_heartbeat_resets_it() {
        let mut d = PhiAccrualDetector::new(FailureDetectorConfig::default());
        d.register(0, 0);
        // Steady 1 ms heartbeats build history.
        for k in 1..=8u64 {
            d.heartbeat(0, k * 1_000_000);
        }
        assert_eq!(d.phi(0, 8_000_000), Some(0.0));
        // Suspicion grows with silence, crossing the threshold.
        let p1 = d.phi(0, 12_000_000).unwrap();
        let p2 = d.phi(0, 20_000_000).unwrap();
        assert!(p1 > 0.0 && p2 > p1);
        assert!(d.is_suspect(0, 40_000_000));
        // One fresh heartbeat clears it.
        d.heartbeat(0, 40_000_000);
        assert!(!d.is_suspect(0, 40_000_000));
        assert_eq!(d.phi(0, 40_000_000), Some(0.0));
    }

    #[test]
    fn jittery_hosts_earn_patience() {
        let mut slow = PhiAccrualDetector::new(FailureDetectorConfig::default());
        let mut fast = PhiAccrualDetector::new(FailureDetectorConfig::default());
        slow.register(0, 0);
        fast.register(0, 0);
        for k in 1..=8u64 {
            slow.heartbeat(0, k * 4_000_000);
            fast.heartbeat(0, k * 1_000_000);
        }
        // Same absolute silence after the last arrival; the host with
        // the slower cadence is scored less suspicious.
        let silence = 10_000_000;
        let p_slow = slow.phi(0, 8 * 4_000_000 + silence).unwrap();
        let p_fast = fast.phi(0, 8 * 1_000_000 + silence).unwrap();
        assert!(p_slow < p_fast, "slow {p_slow} vs fast {p_fast}");
    }

    #[test]
    fn reregistration_wipes_the_suspicion() {
        let mut d = PhiAccrualDetector::new(FailureDetectorConfig::default());
        d.register(3, 0);
        for k in 1..=4u64 {
            d.heartbeat(3, k * 1_000_000);
        }
        assert!(d.is_suspect(3, 50_000_000));
        d.register(3, 50_000_000);
        assert!(!d.is_suspect(3, 50_000_000));
        d.deregister(3);
        assert_eq!(d.phi(3, 60_000_000), None);
        assert!(!d.is_suspect(3, 60_000_000));
    }

    #[test]
    fn reordered_heartbeats_never_rewind_the_clock() {
        let mut d = PhiAccrualDetector::new(FailureDetectorConfig::default());
        d.register(0, 0);
        d.heartbeat(0, 5_000_000);
        let before = d.phi(0, 6_000_000).unwrap();
        // A stale (reordered) heartbeat must not make the host look
        // older than its freshest arrival.
        d.heartbeat(0, 2_000_000);
        assert_eq!(d.phi(0, 6_000_000), Some(before));
    }
}
