//! A bounded pool of concurrent migration drivers.
//!
//! The cluster's [`Cluster::migrate`] drives one attempt start to
//! finish; a fleet controller needs many attempts *interleaved* — each
//! `tick` advances every in-flight run by one protocol step, so two
//! migrations with a common host genuinely race through the shared
//! fabric inboxes. Epoch arbitration keeps the race safe:
//!
//! * every submission passes an **epoch floor** of one past the highest
//!   epoch already in flight for that VM, so a double-drive never mints
//!   the same epoch twice;
//! * the source journal's quiesce step admits exactly one of them — the
//!   later epoch wins `open_quiesce`, the other is refused down the
//!   existing `RejectedStale` path.
//!
//! The one subtlety is *settlement order*. [`Cluster::finish_run`]
//! calls `resolve(vm)`, which aborts any open quiesce that has not
//! committed — correct for a lone attempt, disastrous if a losing
//! attempt settles while the winning attempt of the same VM is still
//! mid-flight (it would thaw the VM under the winner's transfer: the
//! two-runnable-copies bug). So a run that finishes stepping is
//! **parked** until no other run of its VM remains active, and only
//! then settled.

use std::collections::BTreeMap;

use vtpm_cluster::{Cluster, MigrateOutcome, MigrationRun};

/// Why the controller drove a migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriveReason {
    /// Load-skew rebalancing (most- to least-loaded host).
    Rebalance,
    /// Draining a suspected host before it dies for real.
    Evacuate,
    /// Submitted directly by the operator / chaos harness.
    Manual,
}

impl DriveReason {
    /// Stable lowercase label (used in chaos JSON).
    pub fn label(self) -> &'static str {
        match self {
            DriveReason::Rebalance => "rebalance",
            DriveReason::Evacuate => "evacuate",
            DriveReason::Manual => "manual",
        }
    }
}

/// Where a driven attempt stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriveOutcome {
    /// Still being stepped (or parked awaiting settlement).
    InFlight,
    /// Committed; the VM runs on the destination.
    Committed,
    /// Aborted; the source kept the VM.
    Aborted,
    /// Lost an epoch race to a concurrent drive of the same VM.
    RejectedStale,
    /// A host it touched crashed mid-flight; the journals settle it
    /// during recovery instead of the driver.
    Abandoned,
    /// Never admitted (pool full, or the VM had no live home).
    Refused,
}

impl DriveOutcome {
    /// Stable lowercase label (used in chaos JSON).
    pub fn label(self) -> &'static str {
        match self {
            DriveOutcome::InFlight => "in-flight",
            DriveOutcome::Committed => "committed",
            DriveOutcome::Aborted => "aborted",
            DriveOutcome::RejectedStale => "rejected-stale",
            DriveOutcome::Abandoned => "abandoned",
            DriveOutcome::Refused => "refused",
        }
    }
}

/// The durable record of one drive decision — admitted or refused —
/// kept for the life of the pool so chaos reports can account for
/// every attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriveDecision {
    /// VM being moved.
    pub vm: u32,
    /// Source host at submit time (the VM's home; `dst` echoed when the
    /// VM had no home to read).
    pub src: usize,
    /// Requested destination host.
    pub dst: usize,
    /// The attempt's migration epoch (0 when refused before minting).
    pub epoch: u64,
    /// Causal trace id carried in the attempt's wire frames (0 when
    /// refused before minting).
    pub trace: u64,
    /// Why the controller drove it.
    pub reason: DriveReason,
    /// Whether this decision raced another in-flight drive of the same
    /// VM (set on *both* sides of the race).
    pub conflict: bool,
    /// How it ended (or [`DriveOutcome::InFlight`]).
    pub outcome: DriveOutcome,
    /// Quiesce→commit downtime, committed drives only.
    pub downtime_ns: u64,
    /// Refusal detail (`"pool-full"`, `"no-home"`) or `""`.
    pub why: &'static str,
}

/// Result of a [`DriverPool::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submitted {
    /// Admitted; the decision is at `idx` in [`DriverPool::decisions`].
    Admitted {
        /// Index into the decision log.
        idx: usize,
        /// Trace id of the in-flight attempt.
        trace: u64,
        /// Whether it races another in-flight drive of the same VM.
        conflict: bool,
    },
    /// Refused; the decision is at `idx` with the reason in `why`.
    Refused {
        /// Index into the decision log.
        idx: usize,
        /// Refusal detail.
        why: &'static str,
    },
}

struct Drive {
    run: MigrationRun,
    idx: usize,
}

/// Bounded pool of in-flight migration runs, stepped round-robin.
pub struct DriverPool {
    max_in_flight: usize,
    active: Vec<Drive>,
    parked: Vec<Drive>,
    decisions: Vec<DriveDecision>,
}

impl DriverPool {
    /// A pool allowing at most `max_in_flight` concurrent runs.
    pub fn new(max_in_flight: usize) -> Self {
        DriverPool { max_in_flight: max_in_flight.max(1), active: Vec::new(), parked: Vec::new(), decisions: Vec::new() }
    }

    /// Runs currently held (stepping or parked).
    pub fn in_flight(&self) -> usize {
        self.active.len() + self.parked.len()
    }

    /// Whether any held run moves `vm`.
    pub fn has_vm(&self, vm: u32) -> bool {
        self.active.iter().chain(&self.parked).any(|d| d.run.vm == vm)
    }

    /// Every decision ever taken, in submission order. In-flight ones
    /// read [`DriveOutcome::InFlight`] until settled.
    pub fn decisions(&self) -> &[DriveDecision] {
        &self.decisions
    }

    /// Submit a drive of `vm` to `dst`. Refusals are recorded in the
    /// decision log too — a fleet that silently dropped plans could
    /// never prove it accounted for every VM.
    pub fn submit(
        &mut self,
        cluster: &mut Cluster,
        vm: u32,
        dst: usize,
        reason: DriveReason,
    ) -> Submitted {
        let src = cluster.home_of(vm).unwrap_or(dst);
        let refuse = |pool: &mut Self, why: &'static str| {
            pool.decisions.push(DriveDecision {
                vm,
                src,
                dst,
                epoch: 0,
                trace: 0,
                reason,
                conflict: false,
                outcome: DriveOutcome::Refused,
                downtime_ns: 0,
                why,
            });
            Submitted::Refused { idx: pool.decisions.len() - 1, why }
        };
        if self.in_flight() >= self.max_in_flight {
            return refuse(self, "pool-full");
        }
        // One past the highest epoch already in flight for this VM:
        // the journals cannot keep two *simultaneous* proposals apart
        // (they learn an epoch only once it prepares or quiesces), so
        // the pool does.
        let floor = self
            .active
            .iter()
            .chain(&self.parked)
            .filter(|d| d.run.vm == vm)
            .map(|d| d.run.epoch + 1)
            .max()
            .unwrap_or(0);
        let conflict = floor > 0;
        let Some(run) = cluster.begin_migration_from(vm, dst, floor) else {
            return refuse(self, "no-home");
        };
        if conflict {
            // Mark both sides of the race.
            for d in self.active.iter().chain(&self.parked) {
                if d.run.vm == vm {
                    self.decisions[d.idx].conflict = true;
                }
            }
        }
        self.decisions.push(DriveDecision {
            vm,
            src: run.src,
            dst,
            epoch: run.epoch,
            trace: run.trace,
            reason,
            conflict,
            outcome: DriveOutcome::InFlight,
            downtime_ns: 0,
            why: "",
        });
        let idx = self.decisions.len() - 1;
        self.active.push(Drive { run, idx });
        Submitted::Admitted { idx, trace: self.decisions[idx].trace, conflict }
    }

    /// Advance every active run by one protocol step, then settle
    /// whatever can settle. Returns the decision indices settled this
    /// tick.
    pub fn tick(&mut self, cluster: &mut Cluster) -> Vec<usize> {
        let mut still = Vec::with_capacity(self.active.len());
        for mut d in std::mem::take(&mut self.active) {
            if cluster.step(&mut d.run) {
                still.push(d);
            } else {
                self.parked.push(d);
            }
        }
        self.active = still;
        self.settle(cluster)
    }

    /// Settle parked runs whose VM has no other active run. Settling
    /// earlier would let a loser's `resolve` thaw the VM under a
    /// still-flying winner.
    fn settle(&mut self, cluster: &mut Cluster) -> Vec<usize> {
        let mut settled = Vec::new();
        let mut keep = Vec::with_capacity(self.parked.len());
        for d in std::mem::take(&mut self.parked) {
            if self.active.iter().any(|a| a.run.vm == d.run.vm) {
                keep.push(d);
                continue;
            }
            let (vm, epoch) = (d.run.vm, d.run.epoch);
            let quiesced = d.run.quiesced_at_ns();
            let outcome = cluster.finish_run(d.run);
            let dec = &mut self.decisions[d.idx];
            dec.outcome = match outcome {
                MigrateOutcome::Committed => DriveOutcome::Committed,
                MigrateOutcome::Aborted => DriveOutcome::Aborted,
                MigrateOutcome::RejectedStale => DriveOutcome::RejectedStale,
            };
            if outcome == MigrateOutcome::Committed {
                if let (Some(commit), Some(q)) = (cluster.commit_time(vm, epoch), quiesced) {
                    dec.downtime_ns = commit.saturating_sub(q);
                }
            }
            settled.push(d.idx);
        }
        self.parked = keep;
        settled
    }

    /// Drop every run touching `host` (it crashed): the run's volatile
    /// protocol state is exactly what a real toolstack daemon loses.
    /// The decisions read [`DriveOutcome::Abandoned`]; the journals
    /// settle the in-doubt handoffs during recovery, not the driver.
    /// Returns the abandoned decision indices.
    pub fn abandon_host(&mut self, host: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for list in [&mut self.active, &mut self.parked] {
            list.retain(|d| {
                if d.run.src == host || d.run.dst == host {
                    out.push(d.idx);
                    false
                } else {
                    true
                }
            });
        }
        for &idx in &out {
            self.decisions[idx].outcome = DriveOutcome::Abandoned;
        }
        out.sort_unstable();
        out
    }

    /// VMs of runs abandoned runs would have left quiesced on a
    /// still-alive source: the set of VMs held by runs touching `host`
    /// whose *source* is not `host`. Callers resolve these after a
    /// crash so no VM stays frozen behind a dead destination.
    pub fn vms_needing_resolve(&self, host: usize) -> Vec<u32> {
        let mut vms: Vec<u32> = self
            .active
            .iter()
            .chain(&self.parked)
            .filter(|d| d.run.dst == host && d.run.src != host)
            .map(|d| d.run.vm)
            .collect();
        vms.sort_unstable();
        vms.dedup();
        vms
    }

    /// Step every held run to completion and settle all of it. Bounded:
    /// each run has at most [`MigrationRun::STEPS`] steps left.
    pub fn drain(&mut self, cluster: &mut Cluster) -> Vec<usize> {
        let mut settled = Vec::new();
        let mut guard = 0;
        while self.in_flight() > 0 {
            settled.extend(self.tick(cluster));
            guard += 1;
            assert!(guard <= MigrationRun::STEPS + 1, "drain failed to converge");
        }
        settled
    }

    /// Per-VM count of held runs — the denominator of conflict
    /// accounting.
    pub fn vm_loads(&self) -> BTreeMap<u32, usize> {
        let mut m = BTreeMap::new();
        for d in self.active.iter().chain(&self.parked) {
            *m.entry(d.run.vm).or_insert(0) += 1;
        }
        m
    }
}
