//! # vtpm-fleet — fleet control plane over the migration cluster
//!
//! The cluster layer moves one vTPM at a time and assumes somebody
//! competent is deciding *what* to move. This crate is that somebody:
//! a deterministic control loop that watches host health through
//! fabric heartbeats, scores suspicion with a phi-accrual
//! [`detector`], and drives a bounded pool of concurrent migrations
//! through [`driver`] with per-VM epoch arbitration so racing drives
//! resolve to exactly one winner.
//!
//! Each [`Fleet::tick`] runs four phases on the cluster's virtual
//! clock, every phase's cost folded into the fleet telemetry's stage
//! histograms:
//!
//! 1. **observe** — every live host heartbeats over the fabric's
//!    control plane (same wire costs and fault injection as data
//!    frames); arrivals feed the detector;
//! 2. **suspect** — suspicion scores are re-read; hosts crossing the
//!    threshold join the suspect set (and leave it on recovery);
//! 3. **plan** — unless paused, drain suspected hosts and shave load
//!    skew, bounded per tick; the pause latch is wired to the
//!    sentinel's churn-storm detector, because rebalancing *into* a
//!    crash storm multiplies in-doubt handoffs;
//! 4. **drive** — every in-flight run advances one protocol step, and
//!    finished runs settle under the pool's parking rule.
//!
//! ```
//! use vtpm_cluster::{Cluster, ClusterConfig};
//! use vtpm_fleet::{Fleet, FleetConfig};
//!
//! let mut cluster = Cluster::new(b"doc", ClusterConfig::default()).unwrap();
//! let vm = cluster.create_vm().unwrap();
//! let mut fleet = Fleet::new(FleetConfig::default(), &cluster);
//! fleet.drive(&mut cluster, vm, 2);
//! for _ in 0..12 {
//!     fleet.tick(&mut cluster);
//! }
//! assert_eq!(cluster.runnable_hosts(vm), vec![2]);
//! ```

pub mod detector;
pub mod driver;

use std::collections::{BTreeMap, BTreeSet};

use vtpm_cluster::{Cluster, ControlFrame, MetricsFrame, FABRIC_MSG_NS};
use vtpm_observatory::Observatory;
use vtpm_telemetry::{FleetSnapshot, FleetTelemetry};

pub use detector::{FailureDetectorConfig, PhiAccrualDetector};
pub use driver::{DriveDecision, DriveOutcome, DriveReason, DriverPool, Submitted};

/// Tuning for a [`Fleet`].
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Failure-detector tuning.
    pub detector: FailureDetectorConfig,
    /// Concurrent migration runs the pool holds.
    pub max_in_flight: usize,
    /// Plans submitted per tick (evacuation + rebalance combined).
    pub max_plan_per_tick: usize,
    /// Rebalance when the VM-count spread between the most- and
    /// least-loaded eligible hosts exceeds this.
    pub skew_threshold: usize,
    /// Minimum virtual-time gap between heartbeat rounds emitted by
    /// [`Fleet::pump_heartbeats`]. The embedding calls `pump` from its
    /// traffic loops; this floor keeps a 100-host fleet from spamming
    /// the control plane (each round costs `hosts × FABRIC_MSG_NS` of
    /// shared virtual time) while still bounding heartbeat silence —
    /// the phased-gap silence that used to manufacture false suspects.
    pub heartbeat_interval_ns: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            detector: FailureDetectorConfig::default(),
            max_in_flight: 8,
            max_plan_per_tick: 4,
            skew_threshold: 1,
            heartbeat_interval_ns: 25_000_000,
        }
    }
}

/// Synthetic host id under which the controller's own registries
/// (cluster-wide migration telemetry, the fleet stage histograms) are
/// ingested into the observatory — far above any real host index.
pub const CONTROLLER_HOST: u32 = u32::MAX;

/// Index of a tick phase in the fleet stage histograms
/// ([`vtpm_telemetry::FLEET_STAGE_LABELS`]).
const STAGE_OBSERVE: usize = 0;
const STAGE_SUSPECT: usize = 1;
const STAGE_PLAN: usize = 2;
const STAGE_DRIVE: usize = 3;

/// The fleet controller: detector + driver pool + plan loop.
pub struct Fleet {
    cfg: FleetConfig,
    detector: PhiAccrualDetector,
    pool: DriverPool,
    telemetry: FleetTelemetry,
    /// Next heartbeat sequence number per host.
    seqs: Vec<u64>,
    /// Ground-truth down set, asserted by the embedding (the harness
    /// crashes hosts by fiat). The controller itself acts only on
    /// *suspicion*; the truth is kept so telemetry can score false
    /// suspects and so no heartbeats are faked for dead hosts.
    down: BTreeSet<usize>,
    /// Hosts whose suspicion currently exceeds the threshold.
    suspected: BTreeSet<usize>,
    /// Rebalance-pause latch (sentinel churn-storm closed loop).
    paused: bool,
    /// Virtual time of the last heartbeat round (tick or pump).
    last_pump_ns: u64,
    /// Metrics frames drained off the control inbox, awaiting the next
    /// [`Fleet::scrape`] hand-off to the observatory. (The control
    /// inbox is shared: a tick's observe phase may drain scrapes that
    /// were still in flight — they are stashed here, never eaten.)
    pending_metrics: Vec<MetricsFrame>,
}

impl Fleet {
    /// A controller over `cluster`'s current hosts, all presumed live.
    ///
    /// The detector's bootstrap interval is floored at
    /// `4 × hosts × FABRIC_MSG_NS`: one fleet-wide heartbeat round
    /// serializes on the shared virtual clock, so by the time the
    /// controller evaluates suspicion the *first* host's beacon is
    /// already `hosts × FABRIC_MSG_NS` old — a cold 1 ms bootstrap at
    /// 100 hosts would indict live hosts on pure send-order skew
    /// (the R-M2 false-suspect finding).
    pub fn new(cfg: FleetConfig, cluster: &Cluster) -> Self {
        let mut det_cfg = cfg.detector;
        det_cfg.bootstrap_interval_ns = det_cfg
            .bootstrap_interval_ns
            .max(4 * cluster.hosts.len() as u64 * FABRIC_MSG_NS);
        let mut detector = PhiAccrualDetector::new(det_cfg);
        let now = cluster.clock.now_ns();
        for h in 0..cluster.hosts.len() {
            detector.register(h, now);
        }
        Fleet {
            cfg,
            detector,
            pool: DriverPool::new(cfg.max_in_flight),
            telemetry: FleetTelemetry::new(),
            seqs: vec![0; cluster.hosts.len()],
            down: BTreeSet::new(),
            suspected: BTreeSet::new(),
            paused: false,
            last_pump_ns: now,
            pending_metrics: Vec::new(),
        }
    }

    /// Latch the planner off (churn storm raging).
    pub fn pause_rebalance(&mut self) {
        self.paused = true;
    }

    /// Release the planner latch (storm cleared).
    pub fn resume_rebalance(&mut self) {
        self.paused = false;
    }

    /// Whether the planner is latched off.
    pub fn paused(&self) -> bool {
        self.paused
    }

    /// Hosts currently suspected, ascending.
    pub fn suspects(&self) -> Vec<usize> {
        self.suspected.iter().copied().collect()
    }

    /// The driver pool (decision log, in-flight count).
    pub fn pool(&self) -> &DriverPool {
        &self.pool
    }

    /// Snapshot of the fleet telemetry.
    pub fn snapshot(&self) -> FleetSnapshot {
        self.telemetry.snapshot()
    }

    /// The embedding crashed `host`. Every run touching it is
    /// abandoned (the driver's volatile state is lost exactly like a
    /// real toolstack daemon's); VMs a dead *destination* would leave
    /// frozen on a live source are resolved immediately — unless a
    /// concurrent run still holds the VM, in which case its own
    /// settlement resolves.
    pub fn host_down(&mut self, cluster: &mut Cluster, host: usize) {
        let stranded = self.pool.vms_needing_resolve(host);
        for _ in self.pool.abandon_host(host) {
            self.telemetry.note_abandoned();
        }
        for vm in stranded {
            if !self.pool.has_vm(vm) {
                cluster.resolve(vm);
            }
        }
        self.down.insert(host);
    }

    /// The embedding recovered `host` (journal replayed, manager
    /// rebuilt). The detector restarts with a fresh bootstrap — the
    /// silence that got the host suspected is history, not evidence —
    /// and every in-doubt handoff recorded on its journal settles.
    pub fn host_up(&mut self, cluster: &mut Cluster, host: usize) {
        self.down.remove(&host);
        self.suspected.remove(&host);
        self.detector.register(host, cluster.clock.now_ns());
        let vms: Vec<u32> =
            cluster.hosts[host].journal.mapped_vms().iter().map(|&(vm, _)| vm).collect();
        for vm in vms {
            if !self.pool.has_vm(vm) {
                cluster.resolve(vm);
            }
        }
    }

    /// A new host joined the cluster at index `host`.
    pub fn host_joined(&mut self, cluster: &Cluster, host: usize) {
        if self.seqs.len() <= host {
            self.seqs.resize(host + 1, 0);
        }
        self.detector.register(host, cluster.clock.now_ns());
    }

    /// Submit a manual drive of `vm` to `dst` (the chaos harness's
    /// double-drive injection rides this).
    pub fn drive(&mut self, cluster: &mut Cluster, vm: u32, dst: usize) -> Submitted {
        self.submit(cluster, vm, dst, DriveReason::Manual)
    }

    fn submit(&mut self, cluster: &mut Cluster, vm: u32, dst: usize, reason: DriveReason) -> Submitted {
        let sub = self.pool.submit(cluster, vm, dst, reason);
        match sub {
            Submitted::Admitted { conflict, .. } => self.telemetry.note_submitted(conflict),
            Submitted::Refused { .. } => self.telemetry.note_refused(),
        }
        sub
    }

    /// One control-loop round: observe → suspect → plan → drive.
    /// Returns the decision indices settled this tick.
    pub fn tick(&mut self, cluster: &mut Cluster) -> Vec<usize> {
        self.telemetry.note_tick();

        // Observe: live hosts heartbeat over the control plane, then
        // the controller drains arrivals into the detector.
        let t0 = cluster.clock.now_ns();
        self.observe(cluster);
        let t1 = cluster.clock.now_ns();
        self.telemetry.record_stage(STAGE_OBSERVE, t1 - t0);

        // Suspect: re-read every score against the threshold.
        let now = cluster.clock.now_ns();
        for h in self.detector.tracked() {
            if self.detector.is_suspect(h, now) {
                if self.suspected.insert(h) {
                    self.telemetry.note_suspect(!self.down.contains(&h));
                }
            } else {
                self.suspected.remove(&h);
            }
        }
        let t2 = cluster.clock.now_ns();
        self.telemetry.record_stage(STAGE_SUSPECT, t2 - t1);

        // Plan: evacuation first (a suspected host's VMs are one crash
        // away from being stranded), then load skew.
        if !self.paused {
            self.plan(cluster);
        }
        let t3 = cluster.clock.now_ns();
        self.telemetry.record_stage(STAGE_PLAN, t3 - t2);

        // Drive: every in-flight run advances one protocol step.
        let settled = self.pool.tick(cluster);
        for &idx in &settled {
            let d = self.pool.decisions()[idx];
            match d.outcome {
                DriveOutcome::Committed => self.telemetry.note_committed(d.downtime_ns),
                DriveOutcome::RejectedStale => self.telemetry.note_rejected_stale(),
                DriveOutcome::Aborted => self.telemetry.note_aborted(),
                _ => {}
            }
        }
        let t4 = cluster.clock.now_ns();
        self.telemetry.record_stage(STAGE_DRIVE, t4 - t3);
        settled
    }

    /// One heartbeat round: every live host beacons over the control
    /// plane, then the controller drains arrivals. Returns the number
    /// of heartbeats observed.
    fn observe(&mut self, cluster: &mut Cluster) -> u64 {
        for h in 0..cluster.hosts.len() {
            if !self.down.contains(&h) {
                self.seqs[h] += 1;
                let seq = self.seqs[h];
                cluster.send_heartbeat(h, seq);
            }
        }
        self.drain_control(cluster)
    }

    /// Drain the fabric's control inbox: heartbeats feed the failure
    /// detector; metrics frames (observatory scrapes sharing the same
    /// inbox) are stashed for the next [`Fleet::scrape`].
    fn drain_control(&mut self, cluster: &mut Cluster) -> u64 {
        let mut beats = 0u64;
        for frame in cluster.recv_control_frames() {
            match frame {
                ControlFrame::Heartbeat(hb) => {
                    self.detector.heartbeat(hb.host as usize, hb.at_ns);
                    beats += 1;
                }
                ControlFrame::Metrics(mf) => self.pending_metrics.push(mf),
            }
        }
        self.telemetry.note_heartbeats(beats);
        self.last_pump_ns = cluster.clock.now_ns();
        beats
    }

    /// Emit a heartbeat round *between* ticks if at least
    /// [`FleetConfig::heartbeat_interval_ns`] of virtual time has
    /// passed since the last round. Embeddings call this from their
    /// traffic loops so long drive/traffic stages no longer starve the
    /// detector into false suspicion (the R-M2 finding); the interval
    /// floor keeps the control plane from being spammed. Returns the
    /// heartbeats observed (0 when the round was skipped).
    pub fn pump_heartbeats(&mut self, cluster: &mut Cluster) -> u64 {
        let now = cluster.clock.now_ns();
        if now.saturating_sub(self.last_pump_ns) < self.cfg.heartbeat_interval_ns {
            return 0;
        }
        self.observe(cluster)
    }

    /// One observatory scrape pass: every live host ships its
    /// telemetry registry over the fabric as a [`MetricsFrame`]
    /// (charged the same wire costs and fault odds as data frames),
    /// the frames are drained and ingested, and the controller's own
    /// registries — cluster-wide migration telemetry and the fleet
    /// stage histograms, which include `fleet_downtime`, the blackout
    /// SLO series — are folded in under [`CONTROLLER_HOST`]. The
    /// current suspect set is handed over for burn-event correlation.
    pub fn scrape(&mut self, cluster: &mut Cluster, obs: &mut Observatory) {
        for h in 0..cluster.hosts.len() {
            if !self.down.contains(&h) {
                cluster.send_metrics(h);
            }
        }
        self.drain_control(cluster);
        let suspects: Vec<u32> = self.suspected.iter().map(|&h| h as u32).collect();
        obs.note_suspects(&suspects);
        for mf in std::mem::take(&mut self.pending_metrics) {
            obs.ingest_scrape(mf.host, mf.at_ns, &mf.series, &mf.counters);
        }
        let now = cluster.clock.now_ns();
        cluster
            .telemetry()
            .visit_histograms(|name, h| obs.ingest_local(CONTROLLER_HOST, now, name, h));
        cluster
            .telemetry()
            .visit_counters(|name, v| obs.ingest_counter(CONTROLLER_HOST, now, name, v));
        self.telemetry
            .visit_histograms(|name, h| obs.ingest_local(CONTROLLER_HOST, now, name, h));
        self.telemetry
            .visit_counters(|name, v| obs.ingest_counter(CONTROLLER_HOST, now, name, v));
    }

    /// Hosts the planner may *target*: alive by the controller's own
    /// evidence (not suspected) and not known down. Suspicion — not
    /// ground truth — gates eligibility; a false suspect merely loses
    /// traffic until its next heartbeat clears it.
    fn eligible(&self, cluster: &Cluster) -> Vec<usize> {
        (0..cluster.hosts.len())
            .filter(|h| !self.down.contains(h) && !self.suspected.contains(h))
            .collect()
    }

    fn plan(&mut self, cluster: &mut Cluster) {
        let eligible = self.eligible(cluster);
        if eligible.len() < 2 {
            return;
        }
        // Effective load per eligible host: journal placement plus the
        // prospective effect of every in-flight drive. Planning off
        // raw journal counts would pile one tick's plans onto the same
        // least-loaded destination — the moves only land ticks later.
        let mut load: BTreeMap<usize, isize> = eligible
            .iter()
            .map(|&h| (h, cluster.hosts[h].journal.mapped_vms().len() as isize))
            .collect();
        for d in self.pool.decisions() {
            if d.outcome == DriveOutcome::InFlight {
                if let Some(c) = load.get_mut(&d.src) {
                    *c -= 1;
                }
                if let Some(c) = load.get_mut(&d.dst) {
                    *c += 1;
                }
            }
        }
        let mut budget = self.cfg.max_plan_per_tick;

        // Evacuate suspected-but-not-down hosts. (A truly dead source
        // cannot push state — those VMs wait for recovery; that is the
        // protocol's one-copy rule, not a planner choice.)
        let suspects: Vec<usize> =
            self.suspected.iter().copied().filter(|h| !self.down.contains(h)).collect();
        'evac: for s in suspects {
            for (vm, _) in cluster.hosts[s].journal.mapped_vms() {
                if budget == 0 {
                    break 'evac;
                }
                if self.pool.has_vm(vm) {
                    continue;
                }
                let Some((&dst, _)) = load.iter().min_by_key(|&(&h, &c)| (c, h)) else {
                    break 'evac;
                };
                if matches!(
                    self.submit(cluster, vm, dst, DriveReason::Evacuate),
                    Submitted::Refused { .. }
                ) {
                    break 'evac;
                }
                *load.get_mut(&dst).unwrap() += 1;
                budget -= 1;
            }
        }

        // Shave load skew among eligible hosts, one VM at a time so a
        // plan never outruns what the pool can actually drive.
        while budget > 0 {
            let Some((&max_h, &max)) =
                load.iter().max_by_key(|&(&h, &c)| (c, usize::MAX - h))
            else {
                break;
            };
            let Some((&min_h, &min)) = load.iter().min_by_key(|&(&h, &c)| (c, h)) else { break };
            if max - min <= self.cfg.skew_threshold as isize {
                break;
            }
            let Some(vm) = cluster.hosts[max_h]
                .journal
                .mapped_vms()
                .iter()
                .map(|&(vm, _)| vm)
                .find(|&vm| !self.pool.has_vm(vm))
            else {
                break;
            };
            if matches!(
                self.submit(cluster, vm, min_h, DriveReason::Rebalance),
                Submitted::Refused { .. }
            ) {
                break;
            }
            *load.get_mut(&max_h).unwrap() -= 1;
            *load.get_mut(&min_h).unwrap() += 1;
            budget -= 1;
        }
    }

    /// Step every in-flight run to completion and settle everything —
    /// the end-of-run sweep the chaos harness uses before auditing.
    pub fn drain(&mut self, cluster: &mut Cluster) -> Vec<usize> {
        let settled = self.pool.drain(cluster);
        for &idx in &settled {
            let d = self.pool.decisions()[idx];
            match d.outcome {
                DriveOutcome::Committed => self.telemetry.note_committed(d.downtime_ns),
                DriveOutcome::RejectedStale => self.telemetry.note_rejected_stale(),
                DriveOutcome::Aborted => self.telemetry.note_aborted(),
                _ => {}
            }
        }
        settled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtpm_cluster::ClusterConfig;
    use workload::generate_trace;

    fn small() -> ClusterConfig {
        ClusterConfig { frames_per_host: 1024, ..Default::default() }
    }

    fn seeded(seed: &[u8], vms: usize) -> (Cluster, Vec<u32>) {
        let mut cluster = Cluster::new(seed, small()).unwrap();
        let ids: Vec<u32> = (0..vms).map(|_| cluster.create_vm().unwrap()).collect();
        for &vm in &ids {
            for ev in generate_trace(&[seed, b"/", &[vm as u8][..]].concat(), 6) {
                cluster.apply_event(vm, &ev);
            }
        }
        (cluster, ids)
    }

    #[test]
    fn double_drive_resolves_to_exactly_one_winner() {
        let (mut cluster, vms) = seeded(b"fleet-t1", 1);
        let vm = vms[0];
        let mut fleet = Fleet::new(FleetConfig::default(), &cluster);
        let a = fleet.drive(&mut cluster, vm, 1);
        let b = fleet.drive(&mut cluster, vm, 2);
        assert!(matches!(a, Submitted::Admitted { conflict: false, .. }));
        assert!(matches!(b, Submitted::Admitted { conflict: true, .. }));
        for _ in 0..16 {
            fleet.tick(&mut cluster);
        }
        let dec: Vec<_> = fleet
            .pool()
            .decisions()
            .iter()
            .filter(|d| d.vm == vm && d.outcome != DriveOutcome::Refused)
            .collect();
        assert_eq!(dec.len(), 2);
        assert!(dec.iter().all(|d| d.conflict), "both sides of the race marked");
        let winners = dec.iter().filter(|d| d.outcome == DriveOutcome::Committed).count();
        let losers = dec.iter().filter(|d| d.outcome == DriveOutcome::RejectedStale).count();
        assert_eq!((winners, losers), (1, 1), "decisions: {dec:?}");
        assert_eq!(cluster.runnable_hosts(vm).len(), 1, "exactly one live copy");
        let snap = fleet.snapshot();
        assert_eq!(snap.conflicts, 1);
        assert_eq!(snap.drives_committed, 1);
        assert_eq!(snap.drives_rejected_stale, 1);
        assert!(snap.downtime.count == 1 && snap.downtime.max > 0);
    }

    #[test]
    fn silent_host_gets_suspected_and_drained_then_cleared_on_revival() {
        let (mut cluster, vms) = seeded(b"fleet-t2", 3);
        // Pile everything onto host 0 so the evacuation is visible.
        for &vm in &vms {
            if cluster.home_of(vm) != Some(0) {
                cluster.migrate(vm, 0);
            }
        }
        let mut fleet = Fleet::new(
            FleetConfig {
                detector: FailureDetectorConfig {
                    bootstrap_interval_ns: 200_000,
                    ..Default::default()
                },
                ..Default::default()
            },
            &cluster,
        );
        fleet.pause_rebalance();
        cluster.fabric.crash_host(0);
        fleet.host_down(&mut cluster, 0);
        // Heartbeat silence accrues until host 0 crosses the threshold.
        let mut rounds = 0;
        while !fleet.suspects().contains(&0) {
            fleet.tick(&mut cluster);
            cluster.clock.advance_ns(500_000);
            rounds += 1;
            assert!(rounds < 64, "host 0 never suspected");
        }
        let snap = fleet.snapshot();
        assert_eq!(snap.suspects_raised, 1);
        assert_eq!(snap.false_suspects, 0, "a truly dead host is not a false positive");
        // Revival clears the suspicion (fresh detector bootstrap).
        cluster.recover_host(0).unwrap();
        fleet.host_up(&mut cluster, 0);
        assert!(fleet.suspects().is_empty());
        fleet.tick(&mut cluster);
        assert!(fleet.suspects().is_empty());
        // The VMs survived the outage exactly once each.
        for &vm in &vms {
            assert_eq!(cluster.runnable_hosts(vm).len(), 1);
        }
    }

    #[test]
    fn planner_shaves_skew_but_not_while_paused() {
        let (mut cluster, vms) = seeded(b"fleet-t3", 4);
        for &vm in &vms {
            if cluster.home_of(vm) != Some(0) {
                cluster.migrate(vm, 0);
            }
        }
        let mut fleet = Fleet::new(FleetConfig::default(), &cluster);
        fleet.pause_rebalance();
        fleet.tick(&mut cluster);
        assert_eq!(fleet.snapshot().drives_submitted, 0, "paused planner must not plan");
        fleet.resume_rebalance();
        for _ in 0..24 {
            fleet.tick(&mut cluster);
        }
        fleet.drain(&mut cluster);
        let counts: Vec<usize> =
            (0..3).map(|h| cluster.hosts[h].journal.mapped_vms().len()).collect();
        let (max, min) = (counts.iter().max().unwrap(), counts.iter().min().unwrap());
        assert!(max - min <= 1, "still skewed: {counts:?}");
        for &vm in &vms {
            assert_eq!(cluster.runnable_hosts(vm).len(), 1);
        }
        assert!(fleet.snapshot().drives_committed >= 2);
    }

    #[test]
    fn pump_respects_the_interval_floor_and_feeds_the_detector() {
        let (mut cluster, _) = seeded(b"fleet-t5", 1);
        let mut fleet = Fleet::new(FleetConfig::default(), &cluster);
        // A fresh controller just stamped last_pump_ns: pumping
        // immediately is a no-op, no matter how often it is called.
        assert_eq!(fleet.pump_heartbeats(&mut cluster), 0);
        assert_eq!(fleet.pump_heartbeats(&mut cluster), 0);
        // Past the interval, one round fires (all 4 hosts beacon)...
        cluster.clock.advance_ns(fleet.cfg.heartbeat_interval_ns);
        assert_eq!(fleet.pump_heartbeats(&mut cluster), cluster.hosts.len() as u64);
        // ...and re-arms the floor.
        assert_eq!(fleet.pump_heartbeats(&mut cluster), 0);
        // Pumped rounds keep a long traffic stage from manufacturing
        // suspicion: interleave advance+pump well past where silence
        // alone would have indicted everyone.
        for _ in 0..40 {
            cluster.clock.advance_ns(fleet.cfg.heartbeat_interval_ns);
            fleet.pump_heartbeats(&mut cluster);
        }
        let now = cluster.clock.now_ns();
        for h in fleet.detector.tracked() {
            assert!(!fleet.detector.is_suspect(h, now), "host {h} falsely suspected");
        }
        assert_eq!(fleet.snapshot().false_suspects, 0);
    }

    #[test]
    fn scrape_populates_an_observatory_with_host_and_controller_series() {
        let (mut cluster, vms) = seeded(b"fleet-t6", 2);
        let mut fleet = Fleet::new(FleetConfig::default(), &cluster);
        fleet.drive(&mut cluster, vms[0], 1);
        for _ in 0..12 {
            fleet.tick(&mut cluster);
        }
        let mut obs = Observatory::new(Default::default());
        fleet.scrape(&mut cluster, &mut obs);
        // Every live host shipped a frame; the controller's own
        // registries landed under the synthetic id.
        let (scrapes, rejects, resets) = obs.stats();
        assert_eq!(scrapes, cluster.hosts.len() as u64);
        assert_eq!((rejects, resets), (0, 0));
        assert!(obs.host_count() >= cluster.hosts.len() + 1);
        // The guest traffic seeded per-host `total` latencies; the
        // committed drive seeded the blackout SLO series fleet-wide.
        assert!(obs.fleet_total("total").map_or(0, |h| h.count()) > 0, "host request series missing");
        assert!(
            obs.host_total(CONTROLLER_HOST, "fleet_downtime").map_or(0, |h| h.count()) > 0,
            "controller blackout series missing"
        );
        // A second scrape diffs into deltas instead of double-counting.
        let before = obs.fleet_total("total").map_or(0, |h| h.count());
        fleet.scrape(&mut cluster, &mut obs);
        assert_eq!(obs.fleet_total("total").map_or(0, |h| h.count()), before);
    }

    #[test]
    fn pool_refusals_are_recorded_not_dropped() {
        let (mut cluster, vms) = seeded(b"fleet-t4", 2);
        let mut fleet =
            Fleet::new(FleetConfig { max_in_flight: 1, ..Default::default() }, &cluster);
        let ghost = fleet.drive(&mut cluster, 9999, 1);
        assert!(matches!(ghost, Submitted::Refused { why: "no-home", .. }));
        let first = fleet.drive(&mut cluster, vms[0], 1);
        assert!(matches!(first, Submitted::Admitted { .. }));
        let second = fleet.drive(&mut cluster, vms[1], 1);
        assert!(matches!(second, Submitted::Refused { why: "pool-full", .. }));
        assert_eq!(fleet.snapshot().drives_refused, 2);
        assert_eq!(fleet.pool().decisions().len(), 3);
    }
}
