//! Property tests for the phi-accrual failure detector — the two
//! monotonicity laws the rebalancer's safety argument leans on, under
//! arbitrary heartbeat histories.

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::proptest;
use vtpm_fleet::{FailureDetectorConfig, PhiAccrualDetector};

fn detector_with(history: &[u64]) -> (PhiAccrualDetector, u64) {
    let mut d = PhiAccrualDetector::new(FailureDetectorConfig::default());
    d.register(0, 0);
    let mut t = 0u64;
    for &gap in history {
        t += gap;
        d.heartbeat(0, t);
    }
    (d, t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Between heartbeats, suspicion never decreases as time passes:
    /// phi(t1) <= phi(t2) for t1 <= t2, whatever the arrival history.
    #[test]
    fn suspicion_is_monotone_in_silence(
        history in vec(1u64..5_000_000, 0..24),
        d1 in 0u64..50_000_000,
        d2 in 0u64..50_000_000,
    ) {
        let (d, last) = detector_with(&history);
        let (t1, t2) = (last + d1.min(d2), last + d1.max(d2));
        let p1 = d.phi(0, t1).unwrap();
        let p2 = d.phi(0, t2).unwrap();
        prop_assert!(p1 <= p2, "phi decayed on its own: {p1} at {t1} > {p2} at {t2}");
    }

    /// A fresh heartbeat is always (weakly) good news: suspicion right
    /// after an arrival is never higher than right before it, and is
    /// exactly zero at the arrival instant.
    #[test]
    fn a_fresh_heartbeat_never_raises_suspicion(
        history in vec(1u64..5_000_000, 0..24),
        silence in 1u64..50_000_000,
    ) {
        let (mut d, last) = detector_with(&history);
        let now = last + silence;
        let before = d.phi(0, now).unwrap();
        d.heartbeat(0, now);
        let after = d.phi(0, now).unwrap();
        prop_assert!(after <= before, "arrival raised suspicion: {before} -> {after}");
        prop_assert_eq!(after, 0.0);
    }

    /// Suspicion is a pure function of the heartbeat history — two
    /// detectors fed the same arrivals agree bit for bit (the property
    /// chaos replay determinism rests on).
    #[test]
    fn phi_is_deterministic(
        history in vec(1u64..5_000_000, 0..24),
        silence in 0u64..50_000_000,
    ) {
        let (a, last) = detector_with(&history);
        let (b, _) = detector_with(&history);
        let now = last + silence;
        prop_assert_eq!(a.phi(0, now), b.phi(0, now));
        prop_assert_eq!(a.is_suspect(0, now), b.is_suspect(0, now));
    }
}
