//! Deep attestation: binding vTPM quotes to the physical platform.
//!
//! A vTPM quote alone proves nothing about *where* the vTPM runs — a
//! verifier must also learn that the instance is hosted by a trustworthy
//! physical platform (the open problem Berger et al. flag for the Xen
//! vTPM, and a natural extension of this paper's hardened manager). The
//! protocol here:
//!
//! 1. At registration the manager extends `SHA1("VTPM-EK" || instance EK
//!    modulus)` into a hardware-TPM PCR (the *binding PCR*), appending
//!    the digest to a registration log.
//! 2. A deep quote takes the guest's ordinary vTPM quote, then has the
//!    **hardware** TPM quote the binding PCR with external data
//!    `SHA1(nonce || vTPM quote signature)` — chaining freshness, the
//!    guest quote, and the platform into one signature.
//! 3. The verifier checks the vTPM quote, replays the registration log
//!    to reconstruct the binding PCR, confirms the guest's vTPM EK is in
//!    the log, and checks the hardware quote over it all.
//!
//! A vTPM spoofed by an attacker (not registered with the manager) fails
//! step 3: its EK digest is not in the log that the hardware PCR attests.

use tpm_crypto::rsa::RsaPublicKey;
use tpm_crypto::{sha1, BigUint};

use tpm::{pcr_composite_digest, quote_info_digest, PcrSelection, DIGEST_LEN};

/// The hardware PCR dedicated to vTPM registrations.
pub const BINDING_PCR: usize = 14;

/// A deep-attestation evidence bundle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeepQuote {
    /// The guest's vTPM quote: selected PCR values.
    pub vtpm_pcr_values: Vec<[u8; DIGEST_LEN]>,
    /// PCR selection the vTPM quote covers.
    pub vtpm_selection: Vec<usize>,
    /// The vTPM quote signature.
    pub vtpm_signature: Vec<u8>,
    /// The vTPM attestation key's public modulus.
    pub vtpm_aik_modulus: Vec<u8>,
    /// The registered vTPM EK modulus (identity of the instance).
    pub vtpm_ek_modulus: Vec<u8>,
    /// The hardware TPM's binding-PCR value at quote time.
    pub hw_binding_pcr: [u8; DIGEST_LEN],
    /// The hardware quote signature.
    pub hw_signature: Vec<u8>,
    /// The hardware attestation key's public modulus.
    pub hw_aik_modulus: Vec<u8>,
    /// Registration log: EK digests in extension order.
    pub registration_log: Vec<[u8; DIGEST_LEN]>,
}

/// Why verification failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeepQuoteError {
    /// vTPM quote signature invalid.
    BadVtpmSignature,
    /// Hardware quote signature invalid.
    BadHwSignature,
    /// Replaying the registration log does not reproduce the attested
    /// binding PCR (log tampered or truncated).
    LogMismatch,
    /// The claimed vTPM EK is not in the registration log (unregistered
    /// or spoofed instance).
    UnregisteredInstance,
}

impl std::fmt::Display for DeepQuoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DeepQuoteError::BadVtpmSignature => "vTPM quote signature invalid",
            DeepQuoteError::BadHwSignature => "hardware quote signature invalid",
            DeepQuoteError::LogMismatch => "registration log does not match binding PCR",
            DeepQuoteError::UnregisteredInstance => "vTPM EK not in registration log",
        };
        f.write_str(s)
    }
}

impl std::error::Error for DeepQuoteError {}

/// Digest extended into the binding PCR for one instance EK.
pub fn registration_digest(ek_modulus: &[u8]) -> [u8; DIGEST_LEN] {
    let mut buf = Vec::with_capacity(8 + ek_modulus.len());
    buf.extend_from_slice(b"VTPM-EK");
    buf.extend_from_slice(ek_modulus);
    sha1(&buf)
}

/// The external data the hardware quote signs: chains the verifier nonce
/// and the vTPM quote signature.
pub fn chain_digest(nonce: &[u8; DIGEST_LEN], vtpm_signature: &[u8]) -> [u8; DIGEST_LEN] {
    let mut buf = Vec::with_capacity(DIGEST_LEN + vtpm_signature.len());
    buf.extend_from_slice(nonce);
    buf.extend_from_slice(vtpm_signature);
    sha1(&buf)
}

/// Replay a registration log into a PCR value (starting from zero).
pub fn replay_log(log: &[[u8; DIGEST_LEN]]) -> [u8; DIGEST_LEN] {
    let mut pcr = [0u8; DIGEST_LEN];
    for entry in log {
        let mut buf = [0u8; 2 * DIGEST_LEN];
        buf[..DIGEST_LEN].copy_from_slice(&pcr);
        buf[DIGEST_LEN..].copy_from_slice(entry);
        pcr = sha1(&buf);
    }
    pcr
}

/// Verifier-side check of a complete bundle against a fresh `nonce`.
pub fn verify(bundle: &DeepQuote, nonce: &[u8; DIGEST_LEN]) -> Result<(), DeepQuoteError> {
    // 1. The vTPM quote.
    let sel = PcrSelection::of(&bundle.vtpm_selection);
    let vtpm_composite = pcr_composite_digest(&sel, &bundle.vtpm_pcr_values);
    let vtpm_digest = quote_info_digest(&vtpm_composite, nonce);
    let vtpm_aik = RsaPublicKey {
        n: BigUint::from_bytes_be(&bundle.vtpm_aik_modulus),
        e: BigUint::from_u64(tpm_crypto::rsa::E),
    };
    vtpm_aik
        .verify_pkcs1_sha1(&vtpm_digest, &bundle.vtpm_signature)
        .map_err(|_| DeepQuoteError::BadVtpmSignature)?;

    // 2. The registration log reproduces the attested binding PCR, and
    //    contains this instance's EK.
    if replay_log(&bundle.registration_log) != bundle.hw_binding_pcr {
        return Err(DeepQuoteError::LogMismatch);
    }
    let expected_entry = registration_digest(&bundle.vtpm_ek_modulus);
    if !bundle.registration_log.contains(&expected_entry) {
        return Err(DeepQuoteError::UnregisteredInstance);
    }

    // 3. The hardware quote over the binding PCR, chained to the vTPM
    //    quote via its external data.
    let hw_sel = PcrSelection::of(&[BINDING_PCR]);
    let hw_composite = pcr_composite_digest(&hw_sel, &[bundle.hw_binding_pcr]);
    let hw_external = chain_digest(nonce, &bundle.vtpm_signature);
    let hw_digest = quote_info_digest(&hw_composite, &hw_external);
    let hw_aik = RsaPublicKey {
        n: BigUint::from_bytes_be(&bundle.hw_aik_modulus),
        e: BigUint::from_u64(tpm_crypto::rsa::E),
    };
    hw_aik
        .verify_pkcs1_sha1(&hw_digest, &bundle.hw_signature)
        .map_err(|_| DeepQuoteError::BadHwSignature)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_digest_depends_on_modulus() {
        assert_ne!(registration_digest(b"modulus-a"), registration_digest(b"modulus-b"));
    }

    #[test]
    fn replay_log_matches_pcr_semantics() {
        // Against a real PCR bank.
        let mut bank = tpm::PcrBank::new();
        let entries = [[1u8; 20], [2u8; 20], [3u8; 20]];
        for e in &entries {
            bank.extend(BINDING_PCR, e);
        }
        assert_eq!(replay_log(&entries), bank.read(BINDING_PCR).unwrap());
        assert_eq!(replay_log(&[]), [0u8; 20]);
    }

    #[test]
    fn chain_digest_binds_both_inputs() {
        let n1 = [1u8; 20];
        let n2 = [2u8; 20];
        assert_ne!(chain_digest(&n1, b"sig"), chain_digest(&n2, b"sig"));
        assert_ne!(chain_digest(&n1, b"sig"), chain_digest(&n1, b"gis"));
    }
}
