//! The manager's resident state image — the memory-dump target.
//!
//! A real vTPM manager keeps every instance's working state in its own
//! address space, which on the baseline system is ordinary Dom0 memory:
//! anything with Dom0 privileges (or a Dom0 memory-dump tool, per the
//! paper's abstract) reads the instances' EKs, SRKs, owner secrets in the
//! clear. This module makes that explicit: each instance's serialized
//! state is *mirrored* into simulated Dom0 frames after every mutation.
//!
//! * [`MirrorMode::Cleartext`] — baseline: the snapshot bytes go into the
//!   frames as-is.
//! * [`MirrorMode::Encrypted`] — the paper's AC3: the snapshot is
//!   AES-128-CTR-encrypted with a per-manager master key that lives only
//!   in a hypervisor-protected frame, so a dump yields ciphertext and no
//!   key.
//!
//! # Region layout
//!
//! Each instance's region is one metadata frame followed by data frames:
//!
//! ```text
//! frame 0 (metadata):  [0..8)  payload length, u64 BE
//!                      [8..16) region update counter, u64 BE
//!                      [16..)  per-data-page u32 BE write counters
//! frame 1..:           payload, PAGE_SIZE bytes per frame, zero-padded
//! ```
//!
//! Updates are incremental: the mirror keeps a plaintext cache of the
//! last image and rewrites only the data pages whose contents changed
//! (plus the metadata frame). In `Encrypted` mode every page write uses a
//! fresh nonce — `id || page counter` — and a per-page CTR block offset,
//! so no two writes of *different* plaintext ever share a keystream (the
//! classic CTR two-time-pad the old whole-image scheme was open to).
//! Shrinking is scrubbing: stale trailing frames are zeroed and the last
//! partial page is re-written zero-padded, so no byte of a previous,
//! larger image survives in a dump.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use tpm_crypto::aes::AesCtr;
use xen_sim::{DomainId, Hypervisor, Result as XenResult, XenError, PAGE_SIZE};

/// Metadata frame header: length (u64) + region update counter (u64).
const META_HEADER: usize = 16;
/// AES blocks per data page (disjoint CTR ranges across pages).
const BLOCKS_PER_PAGE: u64 = (PAGE_SIZE / 16) as u64;
/// Data pages addressable by one metadata frame (~16 MiB of state).
const MAX_DATA_PAGES: usize = (PAGE_SIZE - META_HEADER) / 4;

/// How instance state is held in Dom0 memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MirrorMode {
    /// Baseline: cleartext resident image.
    Cleartext,
    /// Improved (AC3): encrypted resident image, key in protected memory.
    Encrypted,
}

struct Region {
    /// `mfns[0]` is the metadata frame; `mfns[1..]` back the payload.
    mfns: Vec<usize>,
    len: usize,
    /// Monotonic per-region counter; bumped on every dirty update and
    /// mixed into the nonce of each page written during that update.
    update_counter: u64,
    /// Counter value each data page was last written with (nonce part).
    page_counters: Vec<u32>,
    /// Plaintext of the last mirrored image — the diff baseline.
    cache: Vec<u8>,
}

/// Mirror write-path counters (all monotonic; snapshot with
///// [`StateMirror::io_stats`]). The benches report bytes-per-command from
/// these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MirrorIoStats {
    /// `update` calls.
    pub updates: u64,
    /// `update` calls that found nothing dirty and wrote no page at all.
    pub clean_updates: u64,
    /// Data pages rewritten because their contents changed.
    pub data_pages_written: u64,
    /// Stale trailing pages zeroed by scrub-on-shrink.
    pub pages_scrubbed: u64,
    /// Metadata pages written.
    pub meta_pages_written: u64,
    /// Total bytes pushed through `page_write`.
    pub bytes_written: u64,
}

#[derive(Default)]
struct IoCounters {
    updates: AtomicU64,
    clean_updates: AtomicU64,
    data_pages_written: AtomicU64,
    pages_scrubbed: AtomicU64,
    meta_pages_written: AtomicU64,
    bytes_written: AtomicU64,
}

/// The mirror. One per manager.
///
/// Concurrency shape: the region table is read-mostly (`RwLock`); each
/// instance's region sits behind its own `Mutex`, so concurrent requests
/// to *different* instances mirror their state in parallel — the manager
/// hot path never funnels through a global lock.
pub struct StateMirror {
    hv: Arc<Hypervisor>,
    mode: MirrorMode,
    regions: RwLock<HashMap<u32, Arc<Mutex<Region>>>>,
    /// AES key (Encrypted mode). Also written to `key_frame` so the
    /// "protected memory" story is literal: the only in-simulation copy
    /// of the key sits in a frame the dump facility refuses to read.
    master_key: Option<[u8; 16]>,
    key_frame: Option<usize>,
    io: IoCounters,
}

/// Zero-padded page `i` of `buf` equals zero-padded page `i` of `other`.
fn page_eq(a: &[u8], b: &[u8], i: usize) -> bool {
    let pa = page_slice(a, i);
    let pb = page_slice(b, i);
    let common = pa.len().min(pb.len());
    pa[..common] == pb[..common]
        && pa[common..].iter().all(|&x| x == 0)
        && pb[common..].iter().all(|&x| x == 0)
}

fn page_slice(buf: &[u8], i: usize) -> &[u8] {
    let start = i * PAGE_SIZE;
    if start >= buf.len() {
        &[]
    } else {
        &buf[start..buf.len().min(start + PAGE_SIZE)]
    }
}

impl StateMirror {
    /// Create a mirror; in `Encrypted` mode, `master_key` is stored in a
    /// freshly allocated hypervisor-protected Dom0 frame.
    pub fn new(hv: Arc<Hypervisor>, mode: MirrorMode, master_key: [u8; 16]) -> XenResult<Self> {
        let (key, key_frame) = match mode {
            MirrorMode::Cleartext => (None, None),
            MirrorMode::Encrypted => {
                let mfn = hv.alloc_pages(DomainId::DOM0, 1)?[0];
                hv.page_write(DomainId::DOM0, mfn, 0, &master_key)?;
                hv.protect_frame(DomainId::DOM0, mfn)?;
                (Some(master_key), Some(mfn))
            }
        };
        Ok(StateMirror {
            hv,
            mode,
            regions: RwLock::new(HashMap::new()),
            master_key: key,
            key_frame,
            io: IoCounters::default(),
        })
    }

    /// The mode this mirror runs in.
    pub fn mode(&self) -> MirrorMode {
        self.mode
    }

    /// The protected key frame, if any (diagnostics/tests).
    pub fn key_frame(&self) -> Option<usize> {
        self.key_frame
    }

    /// The master key (crate-internal: the persistence layer seals it to
    /// the hardware TPM; it must never cross the crate boundary).
    pub(crate) fn master_key(&self) -> Option<[u8; 16]> {
        self.master_key
    }

    /// Snapshot the write-path counters.
    pub fn io_stats(&self) -> MirrorIoStats {
        MirrorIoStats {
            updates: self.io.updates.load(Ordering::Relaxed),
            clean_updates: self.io.clean_updates.load(Ordering::Relaxed),
            data_pages_written: self.io.data_pages_written.load(Ordering::Relaxed),
            pages_scrubbed: self.io.pages_scrubbed.load(Ordering::Relaxed),
            meta_pages_written: self.io.meta_pages_written.load(Ordering::Relaxed),
            bytes_written: self.io.bytes_written.load(Ordering::Relaxed),
        }
    }

    /// Fetch or create the per-instance region handle.
    fn region_handle(&self, id: u32) -> Arc<Mutex<Region>> {
        if let Some(r) = self.regions.read().get(&id) {
            return Arc::clone(r);
        }
        let mut table = self.regions.write();
        Arc::clone(table.entry(id).or_insert_with(|| {
            Arc::new(Mutex::new(Region {
                mfns: Vec::new(),
                len: 0,
                update_counter: 0,
                page_counters: Vec::new(),
                cache: Vec::new(),
            }))
        }))
    }

    /// Per-page CTR nonce: instance id then the page's write counter.
    fn page_nonce(id: u32, counter: u32) -> [u8; 8] {
        let mut nonce = [0u8; 8];
        nonce[..4].copy_from_slice(&id.to_be_bytes());
        nonce[4..8].copy_from_slice(&counter.to_be_bytes());
        nonce
    }

    /// Write `state` as instance `id`'s resident image, growing the
    /// backing region as needed. Takes only the instance's own lock.
    ///
    /// Incremental: only pages whose plaintext differs from the cached
    /// previous image are rewritten. A shrink zeroes the now-unused tail
    /// frames so the old image cannot be recovered from a dump.
    pub fn update(&self, id: u32, state: &[u8]) -> XenResult<()> {
        let data_pages = state.len().div_ceil(PAGE_SIZE);
        if data_pages > MAX_DATA_PAGES {
            return Err(XenError::OutOfMemory);
        }
        let handle = self.region_handle(id);
        let mut region = handle.lock();
        self.io.updates.fetch_add(1, Ordering::Relaxed);

        let old_data_pages = region.len.div_ceil(PAGE_SIZE);
        let dirty: Vec<usize> = (0..data_pages)
            .filter(|&i| i >= old_data_pages || !page_eq(state, &region.cache, i))
            .collect();
        let shrunk = data_pages < old_data_pages;
        if dirty.is_empty() && !shrunk && state.len() == region.len {
            self.io.clean_updates.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }

        let needed = 1 + data_pages;
        if region.mfns.len() < needed {
            let extra = self.hv.alloc_pages(DomainId::DOM0, needed - region.mfns.len())?;
            region.mfns.extend(extra);
        }

        region.update_counter += 1;
        let counter = region.update_counter as u32;
        region.page_counters.resize(data_pages, 0);

        let mut page = vec![0u8; PAGE_SIZE];
        for &i in &dirty {
            let chunk = page_slice(state, i);
            page[..chunk.len()].copy_from_slice(chunk);
            page[chunk.len()..].fill(0);
            region.page_counters[i] = counter;
            if let MirrorMode::Encrypted = self.mode {
                let key = self.master_key.as_ref().expect("encrypted mode has key");
                AesCtr::new(key, Self::page_nonce(id, counter))
                    .apply_keystream_at(&mut page, i as u64 * BLOCKS_PER_PAGE);
            }
            self.hv.page_write(DomainId::DOM0, region.mfns[1 + i], 0, &page)?;
            self.io.data_pages_written.fetch_add(1, Ordering::Relaxed);
            self.io.bytes_written.fetch_add(PAGE_SIZE as u64, Ordering::Relaxed);
        }

        // Scrub-on-shrink: stale tail frames of the previous, larger
        // image are zeroed (the partial last page was already re-written
        // zero-padded above because its contents changed).
        if shrunk {
            let zeros = vec![0u8; PAGE_SIZE];
            for i in data_pages..old_data_pages {
                self.hv.page_write(DomainId::DOM0, region.mfns[1 + i], 0, &zeros)?;
                self.io.pages_scrubbed.fetch_add(1, Ordering::Relaxed);
                self.io.bytes_written.fetch_add(PAGE_SIZE as u64, Ordering::Relaxed);
            }
            region.page_counters.truncate(data_pages);
        }

        region.len = state.len();
        region.cache.clear();
        region.cache.extend_from_slice(state);

        let mut meta = vec![0u8; PAGE_SIZE];
        meta[..8].copy_from_slice(&(state.len() as u64).to_be_bytes());
        meta[8..16].copy_from_slice(&region.update_counter.to_be_bytes());
        for (i, c) in region.page_counters.iter().enumerate() {
            let at = META_HEADER + 4 * i;
            meta[at..at + 4].copy_from_slice(&c.to_be_bytes());
        }
        self.hv.page_write(DomainId::DOM0, region.mfns[0], 0, &meta)?;
        self.io.meta_pages_written.fetch_add(1, Ordering::Relaxed);
        self.io.bytes_written.fetch_add(PAGE_SIZE as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Read back instance `id`'s resident image (decrypting in Encrypted
    /// mode). This is the manager's own access path; the attacker reads
    /// the frames through the dump facility instead.
    pub fn read(&self, id: u32) -> XenResult<Vec<u8>> {
        let handle = self.regions.read().get(&id).cloned().ok_or(XenError::BadFrame)?;
        let region = handle.lock();
        if region.mfns.is_empty() {
            return Err(XenError::BadFrame);
        }
        let data_pages = region.len.div_ceil(PAGE_SIZE);
        let mut meta = vec![0u8; META_HEADER + 4 * data_pages];
        self.hv.page_read(DomainId::DOM0, region.mfns[0], 0, &mut meta)?;
        let len = u64::from_be_bytes(meta[..8].try_into().expect("8 bytes")) as usize;
        let counter = u64::from_be_bytes(meta[8..16].try_into().expect("8 bytes"));
        if len != region.len || counter != region.update_counter {
            return Err(XenError::BadFrame);
        }
        let mut image = vec![0u8; len];
        for i in 0..data_pages {
            let done = i * PAGE_SIZE;
            let take = PAGE_SIZE.min(len - done);
            self.hv.page_read(DomainId::DOM0, region.mfns[1 + i], 0, &mut image[done..done + take])?;
            if let MirrorMode::Encrypted = self.mode {
                let key = self.master_key.as_ref().expect("encrypted mode has key");
                let at = META_HEADER + 4 * i;
                let page_counter = u32::from_be_bytes(meta[at..at + 4].try_into().expect("4 bytes"));
                AesCtr::new(key, Self::page_nonce(id, page_counter))
                    .apply_keystream_at(&mut image[done..done + take], i as u64 * BLOCKS_PER_PAGE);
            }
        }
        Ok(image)
    }

    /// Drop instance `id`'s region, scrubbing its frames.
    pub fn remove(&self, id: u32) -> XenResult<()> {
        let handle = self.regions.write().remove(&id);
        if let Some(handle) = handle {
            let region = handle.lock();
            let zeros = [0u8; PAGE_SIZE];
            for &mfn in &region.mfns {
                self.hv.page_write(DomainId::DOM0, mfn, 0, &zeros)?;
            }
        }
        Ok(())
    }

    /// Frames backing instance `id` (tests/attack ground truth). The
    /// first entry is the metadata frame.
    pub fn region_frames(&self, id: u32) -> Option<Vec<usize>> {
        self.regions.read().get(&id).map(|r| r.lock().mfns.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hv() -> Arc<Hypervisor> {
        Arc::new(Hypervisor::boot(512, 8).unwrap())
    }

    fn contains(haystack: &[u8], needle: &[u8]) -> bool {
        !needle.is_empty() && haystack.windows(needle.len()).any(|w| w == needle)
    }

    fn dump_all(hv: &Hypervisor) -> Vec<u8> {
        let mut blob = Vec::new();
        for (_, _, page) in hv.dump_memory(DomainId::DOM0).unwrap() {
            blob.extend_from_slice(&page[..]);
        }
        blob
    }

    /// Raw bytes of instance `id`'s data frames, in order.
    fn raw_data_frames(hv: &Hypervisor, m: &StateMirror, id: u32) -> Vec<Vec<u8>> {
        m.region_frames(id)
            .unwrap()
            .iter()
            .skip(1)
            .map(|&mfn| {
                let mut page = vec![0u8; PAGE_SIZE];
                hv.page_read(DomainId::DOM0, mfn, 0, &mut page).unwrap();
                page
            })
            .collect()
    }

    #[test]
    fn cleartext_mirror_roundtrip_and_dumpable() {
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Cleartext, [0; 16]).unwrap();
        let state = b"SRK-PRIME-MATERIAL-0123456789";
        m.update(7, state).unwrap();
        assert_eq!(m.read(7).unwrap(), state);
        // The baseline resident image leaks into the Dom0 dump.
        assert!(contains(&dump_all(&hv), state));
    }

    #[test]
    fn encrypted_mirror_roundtrip_and_not_dumpable() {
        let hv = hv();
        let key = [0xA5; 16];
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, key).unwrap();
        let state = b"SRK-PRIME-MATERIAL-0123456789";
        m.update(7, state).unwrap();
        // Manager path still reads cleartext.
        assert_eq!(m.read(7).unwrap(), state);
        let dump = dump_all(&hv);
        assert!(!contains(&dump, state), "ciphertext only in the dump");
        assert!(!contains(&dump, &key), "master key must not appear in the dump");
    }

    #[test]
    fn key_frame_is_protected() {
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, [1; 16]).unwrap();
        let kf = m.key_frame().unwrap();
        // The dump refuses the protected frame.
        let dump = hv.dump_memory(DomainId::DOM0).unwrap();
        assert!(dump.iter().all(|(mfn, _, _)| *mfn != kf));
    }

    #[test]
    fn multi_page_state() {
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Cleartext, [0; 16]).unwrap();
        let state: Vec<u8> = (0..3u32 * PAGE_SIZE as u32).map(|i| i as u8).collect();
        m.update(1, &state).unwrap();
        assert_eq!(m.read(1).unwrap(), state);
        // Shrink back down.
        m.update(1, b"tiny").unwrap();
        assert_eq!(m.read(1).unwrap(), b"tiny");
    }

    #[test]
    fn growth_after_initial_allocation() {
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Cleartext, [0; 16]).unwrap();
        m.update(1, b"small").unwrap();
        let before = m.region_frames(1).unwrap().len();
        let big = vec![7u8; 2 * PAGE_SIZE];
        m.update(1, &big).unwrap();
        assert!(m.region_frames(1).unwrap().len() > before);
        assert_eq!(m.read(1).unwrap(), big);
    }

    #[test]
    fn remove_scrubs_frames() {
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Cleartext, [0; 16]).unwrap();
        m.update(3, b"WIPE-ME-PLEASE").unwrap();
        m.remove(3).unwrap();
        assert!(!contains(&dump_all(&hv), b"WIPE-ME-PLEASE"));
        assert!(m.read(3).is_err());
    }

    #[test]
    fn distinct_instances_isolated() {
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, [9; 16]).unwrap();
        m.update(1, b"instance-one").unwrap();
        m.update(2, b"instance-two").unwrap();
        assert_eq!(m.read(1).unwrap(), b"instance-one");
        assert_eq!(m.read(2).unwrap(), b"instance-two");
    }

    #[test]
    fn identical_update_writes_nothing() {
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, [4; 16]).unwrap();
        let state = vec![0x5Au8; PAGE_SIZE + 100];
        m.update(1, &state).unwrap();
        let before = m.io_stats();
        m.update(1, &state).unwrap();
        let after = m.io_stats();
        assert_eq!(after.updates, before.updates + 1);
        assert_eq!(after.clean_updates, before.clean_updates + 1);
        assert_eq!(after.bytes_written, before.bytes_written, "clean update writes zero bytes");
    }

    #[test]
    fn only_dirty_pages_rewritten() {
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, [4; 16]).unwrap();
        let mut state = vec![1u8; 4 * PAGE_SIZE];
        m.update(1, &state).unwrap();
        let before = m.io_stats();
        // Touch one byte in the third page.
        state[2 * PAGE_SIZE + 17] ^= 0xFF;
        m.update(1, &state).unwrap();
        let after = m.io_stats();
        assert_eq!(after.data_pages_written, before.data_pages_written + 1);
        assert_eq!(after.meta_pages_written, before.meta_pages_written + 1);
        assert_eq!(m.read(1).unwrap(), state);
    }

    #[test]
    fn scrub_on_shrink_leaves_no_stale_bytes() {
        for mode in [MirrorMode::Cleartext, MirrorMode::Encrypted] {
            let hv = hv();
            let m = StateMirror::new(Arc::clone(&hv), mode, [0x3C; 16]).unwrap();
            // A large image whose tail carries a recognizable secret.
            let mut big = vec![0u8; 3 * PAGE_SIZE + 777];
            for (i, b) in big.iter_mut().enumerate() {
                *b = (i % 251) as u8;
            }
            let secret = b"TAIL-SECRET-MUST-NOT-SURVIVE-SHRINK";
            let at = big.len() - secret.len();
            big[at..].copy_from_slice(secret);
            m.update(9, &big).unwrap();

            // Shrink to a state sharing only the first few bytes.
            let small = &big[..300];
            m.update(9, small).unwrap();
            assert_eq!(m.read(9).unwrap(), small);

            // No byte of the previous larger image survives anywhere in a
            // full Dom0 dump — neither cleartext nor its old ciphertext
            // tail (dropped frames are zeroed, partial page zero-padded).
            let dump = dump_all(&hv);
            assert!(!contains(&dump, secret), "{mode:?}: secret survived shrink");
            for frame in raw_data_frames(&hv, &m, 9).iter().skip(1) {
                assert!(frame.iter().all(|&b| b == 0), "{mode:?}: stale tail frame not scrubbed");
            }
        }
    }

    #[test]
    fn rewrite_of_same_plaintext_gets_fresh_keystream() {
        // A -> B -> A: the third image re-encrypts A's bytes under a new
        // counter, so its ciphertext differs from the first even though
        // the plaintext is identical (no deterministic encryption).
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, [0x77; 16]).unwrap();
        let a = vec![0xAAu8; 600];
        let b = vec![0xBBu8; 600];
        m.update(5, &a).unwrap();
        let ct1 = raw_data_frames(&hv, &m, 5)[0].clone();
        m.update(5, &b).unwrap();
        m.update(5, &a).unwrap();
        let ct2 = raw_data_frames(&hv, &m, 5)[0].clone();
        assert_eq!(m.read(5).unwrap(), a);
        assert_ne!(ct1, ct2, "same plaintext must not produce the same ciphertext twice");
    }

    #[test]
    fn ctr_two_time_pad_defeated() {
        // The classic attack on the old fixed-nonce scheme: with C1 and
        // C2 encrypted under the same keystream, C1 xor C2 = P1 xor P2.
        // With per-write counters the keystreams differ, so the XOR of
        // the two ciphertext dumps must NOT equal the plaintext XOR.
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, [0x19; 16]).unwrap();
        let p1 = vec![0x11u8; 512];
        let p2 = vec![0x22u8; 512];
        m.update(8, &p1).unwrap();
        let c1 = raw_data_frames(&hv, &m, 8)[0][..512].to_vec();
        m.update(8, &p2).unwrap();
        let c2 = raw_data_frames(&hv, &m, 8)[0][..512].to_vec();
        let ct_xor: Vec<u8> = c1.iter().zip(&c2).map(|(a, b)| a ^ b).collect();
        let pt_xor: Vec<u8> = p1.iter().zip(&p2).map(|(a, b)| a ^ b).collect();
        assert_ne!(ct_xor, pt_xor, "two-dump XOR must not cancel the keystream");
    }

    #[test]
    fn pages_use_disjoint_keystream_ranges() {
        // Two pages written in the same update share a nonce; their CTR
        // block ranges must not overlap, or equal plaintext pages would
        // leak equality. Encrypt two identical pages and compare.
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, [0x42; 16]).unwrap();
        let state = vec![0xCDu8; 2 * PAGE_SIZE];
        m.update(2, &state).unwrap();
        let frames = raw_data_frames(&hv, &m, 2);
        assert_ne!(frames[0], frames[1], "identical plaintext pages must encrypt differently");
        assert_eq!(m.read(2).unwrap(), state);
    }

    #[test]
    fn grow_after_shrink_roundtrips() {
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, [6; 16]).unwrap();
        let big: Vec<u8> = (0..2 * PAGE_SIZE + 50).map(|i| (i % 255) as u8).collect();
        m.update(4, &big).unwrap();
        m.update(4, b"short").unwrap();
        let bigger: Vec<u8> = (0..3 * PAGE_SIZE).map(|i| (i % 253) as u8).collect();
        m.update(4, &bigger).unwrap();
        assert_eq!(m.read(4).unwrap(), bigger);
    }
}
