//! The manager's resident state image — the memory-dump target.
//!
//! A real vTPM manager keeps every instance's working state in its own
//! address space, which on the baseline system is ordinary Dom0 memory:
//! anything with Dom0 privileges (or a Dom0 memory-dump tool, per the
//! paper's abstract) reads the instances' EKs, SRKs, owner secrets in the
//! clear. This module makes that explicit: each instance's serialized
//! state is *mirrored* into simulated Dom0 frames after every mutation.
//!
//! * [`MirrorMode::Cleartext`] — baseline: the snapshot bytes go into the
//!   frames as-is.
//! * [`MirrorMode::Encrypted`] — the paper's AC3: the snapshot is
//!   AES-128-CTR-encrypted with a per-manager master key that lives only
//!   in a hypervisor-protected frame, so a dump yields ciphertext and no
//!   key.
//!
//! # Region layout: A/B shadow slots with an atomic metadata commit
//!
//! Each instance's region is one self-describing metadata frame plus
//! *two* frame slots per data page. The committed image lives in each
//! page's *active* slot; updates write dirty pages into the *inactive*
//! (shadow) slot and then commit the whole generation with a single
//! metadata-frame write — the frame store writes pages atomically, so a
//! crash between any two writes leaves either the old or the new
//! generation fully intact, never a torn mix.
//!
//! ```text
//! metadata frame: [0..4)   magic "VTMR"
//!                 [4..8)   instance id, u32 BE
//!                 [8..16)  generation, u64 BE
//!                 [16..24) payload length, u64 BE
//!                 [24..28) data page count, u32 BE
//!                 [28..36) key-check tag (Encrypted mode; zeros otherwise)
//!                 [36..)   20-byte page entries:
//!                            active mfn u32 | shadow mfn u32 |
//!                            write counter u32 | stored-page digest 8 B
//!                 [end-32..) SHA-256 of everything above
//! data frames:    payload pages (slot A / slot B), zero-padded
//! ```
//!
//! Updates are incremental: the mirror keeps a plaintext cache of the
//! last image and rewrites only the data pages whose contents changed
//! (plus the metadata frame). In `Encrypted` mode every page write uses a
//! fresh nonce — `id || generation` — and a per-page CTR block offset,
//! so no two writes of *different* plaintext ever share a keystream (the
//! classic CTR two-time-pad the old whole-image scheme was open to).
//!
//! **Failed updates burn their generation.** A dirty update may die after
//! encrypting shadow pages under `generation + 1` but before the commit;
//! those nonces are *consumed* even though nothing committed. The region
//! tracks the highest possibly-consumed generation (`attempted`), and a
//! retry first re-commits the *old* image's metadata at `attempted` —
//! durably burning the consumed counters — before encrypting anything
//! under `attempted + 1`. The durable invariant this maintains is
//! `attempted <= committed generation + 1` at every instant, which is
//! exactly what lets [`StateMirror::recover`] cover all consumed nonces
//! by burning a single generation. Generations that would truncate in
//! the 32-bit nonce counter field are refused ([`XenError::BadImage`])
//! instead of silently wrapping the nonce space.
//!
//! **Group commit.** Under a batched [`FlushPolicy`] an update *stages*
//! its generation — dirty pages land durably in shadow slots, but the
//! metadata write that publishes them is deferred — and a later
//! [`StateMirror::flush`] commits every staged region in one pass,
//! ascending id order. Staging is invisible to readers and to recovery
//! (the committed metadata still describes the previous generation), so
//! a crash anywhere in the window leaves each instance exactly pre- or
//! post-batch, and the ascending-id commit order makes the post set a
//! deterministic prefix of the batch. At most one staged generation may
//! exist per region — a second mutation first commits the staged one —
//! which is what keeps `attempted <= committed + 1` intact; the
//! amortization therefore comes from coalescing *across instances*
//! (one flush pass, one lock round per region), never from stacking
//! generations of one instance. The default policy
//! ([`FlushPolicy::per_command`]) commits inline inside `update` with a
//! write sequence byte-identical to the unbatched pipeline.
//!
//! **Hygiene.** After the commit, replaced slots and the slots of dropped
//! pages are zeroed, so no byte of a previous, committed generation
//! survives in a Dom0 dump. A crash inside that post-commit scrub (or
//! mid-update, leaving uncommitted bytes in shadow slots) is healed by
//! [`StateMirror::recover`], which re-scrubs every shadow slot. The one
//! accepted gap: frames allocated for an uncommitted *growth* are not
//! reachable from the committed metadata and stay unscrubbed until
//! reused — in `Encrypted` mode they only ever hold ciphertext.
//!
//! **Recovery.** [`StateMirror::recover`] rebuilds the whole region table
//! from a Dom0 memory scan alone: it finds checksummed "VTMR" metadata
//! frames, verifies the key-check tag and per-page digests, and restores
//! each instance's committed image. It then *burns a generation* — the
//! crashed manager may have consumed `generation + 1` nonces on
//! uncommitted shadow writes, so recovery re-commits the metadata at
//! `generation + 1`, guaranteeing future writes never reuse a (page,
//! counter) pair even across crash/restart cycles.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use tpm_crypto::aes::Aes128;
use xen_sim::{DomainId, Hypervisor, Result as XenResult, XenError, PAGE_SIZE};

/// Metadata magic: identifies a mirror metadata frame in a memory scan.
const META_MAGIC: [u8; 4] = *b"VTMR";
/// Fixed metadata header size (magic, id, generation, length, page
/// count, key-check tag).
const META_FIXED: usize = 36;
/// Per-page metadata entry: active mfn, shadow mfn, counter, digest.
const META_ENTRY: usize = 20;
/// Trailing SHA-256 over the rest of the metadata frame.
const META_CHECKSUM: usize = 32;
/// AES blocks per data page (disjoint CTR ranges across pages).
const BLOCKS_PER_PAGE: u64 = (PAGE_SIZE / 16) as u64;
/// Data pages addressable by one metadata frame (~800 KiB of state).
const MAX_DATA_PAGES: usize = (PAGE_SIZE - META_FIXED - META_CHECKSUM) / META_ENTRY;

/// How instance state is held in Dom0 memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MirrorMode {
    /// Baseline: cleartext resident image.
    Cleartext,
    /// Improved (AC3): encrypted resident image, key in protected memory.
    Encrypted,
}

/// When the group-commit pipeline publishes staged generations.
///
/// The default ([`FlushPolicy::per_command`]) disables batching: every
/// `update` commits its metadata inline, with a write sequence
/// byte-identical to the unbatched pipeline. A batched policy defers
/// the metadata write until any threshold trips (a zero byte/age
/// threshold means "no such threshold").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushPolicy {
    /// Flush once the batch has durably staged this many bytes
    /// (0 = no byte threshold).
    pub max_batch_bytes: u64,
    /// Flush once this many instances hold a staged generation.
    /// 0 disables batching entirely (per-command inline commits).
    pub max_batch_instances: usize,
    /// Flush once the oldest staged generation is this many virtual
    /// nanoseconds old (0 = no age threshold).
    pub max_age_ns: u64,
}

impl Default for FlushPolicy {
    fn default() -> Self {
        Self::per_command()
    }
}

impl FlushPolicy {
    /// No batching: every update commits inline (the default).
    pub const fn per_command() -> Self {
        FlushPolicy { max_batch_bytes: 0, max_batch_instances: 0, max_age_ns: 0 }
    }

    /// A batched policy. `max_batch_instances` is clamped to at least 1
    /// (0 is the per-command sentinel).
    pub const fn batched(max_batch_bytes: u64, max_batch_instances: usize, max_age_ns: u64) -> Self {
        FlushPolicy {
            max_batch_bytes,
            max_batch_instances: if max_batch_instances == 0 { 1 } else { max_batch_instances },
            max_age_ns,
        }
    }

    /// Whether updates commit inline instead of staging for a flush.
    pub fn is_per_command(&self) -> bool {
        self.max_batch_instances == 0
    }
}

struct Region {
    /// The metadata frame, allocated on the first non-empty update.
    meta_mfn: Option<usize>,
    /// Two backing frames per data page (A/B slots).
    slots: Vec<[usize; 2]>,
    /// Which slot of each page holds the committed image.
    active: Vec<u8>,
    /// Committed payload length.
    len: usize,
    /// Committed generation; bumped on every dirty update and mixed into
    /// the nonce of each page written during that update.
    generation: u64,
    /// Highest generation whose nonces may have been consumed by shadow
    /// writes, committed or not. Equal to `generation` except after a
    /// failed dirty update; a retry must durably burn it (re-commit the
    /// old metadata at `attempted`) before consuming `attempted + 1`, so
    /// `attempted <= on-frame generation + 1` always holds and recovery's
    /// single-generation burn covers every consumed nonce.
    attempted: u64,
    /// Counter value each data page was last written with (nonce part).
    page_counters: Vec<u32>,
    /// Truncated SHA-256 of each page's stored (post-cipher) bytes.
    page_digests: Vec<[u8; 8]>,
    /// Plaintext of the last mirrored image — the diff baseline.
    cache: Vec<u8>,
    /// Scrubbed frames freed by shrinks, kept for regrow reuse.
    spare: Vec<usize>,
    /// A staged — written but uncommitted — generation awaiting its
    /// flush (batched policies only; `None` under per-command commits).
    staged: Option<Staged>,
}

/// A fully staged generation: every dirty page already landed durably
/// in its shadow slot, but the metadata frame still describes the
/// previous generation. `commit_locked` publishes it with one atomic
/// metadata write. At most one exists per region at any instant — that
/// is what keeps `attempted <= committed + 1`.
struct Staged {
    /// The generation the staged pages were encrypted under.
    gen: u64,
    /// Payload length of the staged image.
    len: usize,
    /// Per-page write counters once this generation commits.
    counters: Vec<u32>,
    /// Per-page stored-bytes digests once this generation commits.
    digests: Vec<[u8; 8]>,
    /// (page index, slot) of every page this generation rewrote.
    targets: Vec<(usize, u8)>,
    /// Plaintext of the staged image (the diff cache after commit).
    state: Vec<u8>,
    /// Bytes durably written while staging (shadow pages plus any
    /// generation burn) — the caller's return value.
    staged_bytes: u64,
}

/// Shards in the striped region table (a power of two: ids map to
/// shards with a mask).
const REGION_SHARDS: usize = 64;

/// N-way striped id → region map. Create/destroy of one instance takes
/// only its shard's lock, so mass churn stops serializing on a single
/// global table lock.
struct RegionTable {
    shards: Vec<RwLock<HashMap<u32, Arc<Mutex<Region>>>>>,
}

impl RegionTable {
    fn new() -> Self {
        RegionTable {
            shards: (0..REGION_SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, id: u32) -> &RwLock<HashMap<u32, Arc<Mutex<Region>>>> {
        &self.shards[id as usize & (REGION_SHARDS - 1)]
    }

    fn get(&self, id: u32) -> Option<Arc<Mutex<Region>>> {
        self.shard(id).read().get(&id).cloned()
    }

    fn contains(&self, id: u32) -> bool {
        self.shard(id).read().contains_key(&id)
    }

    fn insert(&self, id: u32, region: Arc<Mutex<Region>>) {
        self.shard(id).write().insert(id, region);
    }

    /// Every tracked id, ascending.
    fn ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .shards
            .iter()
            .flat_map(|s| s.read().keys().copied().collect::<Vec<_>>())
            .collect();
        ids.sort_unstable();
        ids
    }
}

/// Instances holding a staged generation, awaiting the next flush.
#[derive(Default)]
struct PendingBatch {
    /// Staged instance ids, ascending — the flush's commit order.
    ids: BTreeSet<u32>,
    /// Bytes durably staged across the batch (coarse: reset when the
    /// batch drains empty).
    bytes: u64,
    /// Virtual time the batch's first staging happened.
    opened_ns: u64,
}

/// A parsed per-page metadata entry.
#[derive(Debug, Clone, Copy)]
struct MetaEntry {
    active_mfn: u32,
    shadow_mfn: u32,
    counter: u32,
    digest: [u8; 8],
}

/// Truncated digest of a stored page (corruption detection).
fn page_digest(page: &[u8]) -> [u8; 8] {
    tpm_crypto::sha256(page)[..8].try_into().expect("8 bytes")
}

/// Serialize a full metadata frame, checksummed.
fn build_meta(id: u32, generation: u64, len: u64, key_check: [u8; 8], entries: &[MetaEntry]) -> Vec<u8> {
    let mut meta = vec![0u8; PAGE_SIZE];
    meta[..4].copy_from_slice(&META_MAGIC);
    meta[4..8].copy_from_slice(&id.to_be_bytes());
    meta[8..16].copy_from_slice(&generation.to_be_bytes());
    meta[16..24].copy_from_slice(&len.to_be_bytes());
    meta[24..28].copy_from_slice(&(entries.len() as u32).to_be_bytes());
    meta[28..36].copy_from_slice(&key_check);
    for (i, e) in entries.iter().enumerate() {
        let at = META_FIXED + META_ENTRY * i;
        meta[at..at + 4].copy_from_slice(&e.active_mfn.to_be_bytes());
        meta[at + 4..at + 8].copy_from_slice(&e.shadow_mfn.to_be_bytes());
        meta[at + 8..at + 12].copy_from_slice(&e.counter.to_be_bytes());
        meta[at + 12..at + 20].copy_from_slice(&e.digest);
    }
    let sum = tpm_crypto::sha256(&meta[..PAGE_SIZE - META_CHECKSUM]);
    meta[PAGE_SIZE - META_CHECKSUM..].copy_from_slice(&sum);
    meta
}

/// Parse and validate a metadata frame. `None` for anything that is not
/// a well-formed, checksum-intact mirror metadata page.
fn parse_meta(meta: &[u8]) -> Option<(u32, u64, usize, [u8; 8], Vec<MetaEntry>)> {
    if meta.len() != PAGE_SIZE || meta[..4] != META_MAGIC {
        return None;
    }
    let sum = tpm_crypto::sha256(&meta[..PAGE_SIZE - META_CHECKSUM]);
    if meta[PAGE_SIZE - META_CHECKSUM..] != sum {
        return None;
    }
    let id = u32::from_be_bytes(meta[4..8].try_into().ok()?);
    let generation = u64::from_be_bytes(meta[8..16].try_into().ok()?);
    let len = u64::from_be_bytes(meta[16..24].try_into().ok()?) as usize;
    let count = u32::from_be_bytes(meta[24..28].try_into().ok()?) as usize;
    let key_check: [u8; 8] = meta[28..36].try_into().ok()?;
    if count > MAX_DATA_PAGES || len.div_ceil(PAGE_SIZE) != count {
        return None;
    }
    let mut entries = Vec::with_capacity(count);
    for i in 0..count {
        let at = META_FIXED + META_ENTRY * i;
        entries.push(MetaEntry {
            active_mfn: u32::from_be_bytes(meta[at..at + 4].try_into().ok()?),
            shadow_mfn: u32::from_be_bytes(meta[at + 4..at + 8].try_into().ok()?),
            counter: u32::from_be_bytes(meta[at + 8..at + 12].try_into().ok()?),
            digest: meta[at + 12..at + 20].try_into().ok()?,
        });
    }
    Some((id, generation, len, key_check, entries))
}

/// Mirror write-path counters (all monotonic; snapshot with
///// [`StateMirror::io_stats`]). The benches report bytes-per-command from
/// these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MirrorIoStats {
    /// `update` calls.
    pub updates: u64,
    /// `update` calls that found nothing dirty and wrote no page at all.
    pub clean_updates: u64,
    /// Data pages rewritten because their contents changed.
    pub data_pages_written: u64,
    /// Stale trailing pages zeroed by scrub-on-shrink.
    pub pages_scrubbed: u64,
    /// Metadata pages written.
    pub meta_pages_written: u64,
    /// Total bytes pushed through `page_write`.
    pub bytes_written: u64,
    /// Post-commit scrubs that failed. The commit itself stood; the stale
    /// slot bytes linger until the frame is reused or `recover` re-scrubs.
    pub scrub_failures: u64,
    /// Updates that first had to durably burn generations a failed
    /// earlier attempt consumed (`attempted > generation` on entry) —
    /// each one is a retry after a mirror failure, re-committing the old
    /// image's metadata before consuming fresh CTR nonces.
    pub retried_generation_burns: u64,
    /// Updates that staged under a batched policy (commit deferred to a
    /// flush) instead of committing inline.
    pub staged_updates: u64,
    /// Staged generations published by a flush pass.
    pub batched_commits: u64,
    /// Group-commit flush passes over the pending batch.
    pub flushes: u64,
}

#[derive(Default)]
struct IoCounters {
    updates: AtomicU64,
    clean_updates: AtomicU64,
    data_pages_written: AtomicU64,
    pages_scrubbed: AtomicU64,
    meta_pages_written: AtomicU64,
    bytes_written: AtomicU64,
    scrub_failures: AtomicU64,
    retried_generation_burns: AtomicU64,
    staged_updates: AtomicU64,
    batched_commits: AtomicU64,
    flushes: AtomicU64,
}

/// The mirror. One per manager.
///
/// Concurrency shape: the region table is read-mostly (`RwLock`); each
/// instance's region sits behind its own `Mutex`, so concurrent requests
/// to *different* instances mirror their state in parallel — the manager
/// hot path never funnels through a global lock.
pub struct StateMirror {
    hv: Arc<Hypervisor>,
    mode: MirrorMode,
    regions: RegionTable,
    /// Active flush policy (default: per-command inline commits).
    policy: RwLock<FlushPolicy>,
    /// Instances with staged, unflushed generations.
    pending: Mutex<PendingBatch>,
    /// AES key (Encrypted mode). Also written to `key_frame` so the
    /// "protected memory" story is literal: the only in-simulation copy
    /// of the key sits in a frame the dump facility refuses to read.
    master_key: Option<[u8; 16]>,
    /// Expanded AES schedule for `master_key`, computed once at
    /// construction: every page of every snapshot streams through this
    /// cached schedule instead of re-expanding the key per page.
    master_cipher: Option<Aes128>,
    key_frame: Option<usize>,
    io: IoCounters,
    /// Opt-in (page, counter) nonce-pair audit (tests/harness).
    audit_on: std::sync::atomic::AtomicBool,
    audit: Mutex<NonceAudit>,
}

/// Records every (id, page, counter) CTR nonce tuple ever used, counting
/// collisions. Enabled by [`StateMirror::enable_nonce_audit`].
#[derive(Default)]
struct NonceAudit {
    seen: std::collections::HashSet<(u32, u32, u32)>,
    reuses: u64,
}

/// What [`StateMirror::recover`] found in the Dom0 memory scan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MirrorRecovery {
    /// Instances rebuilt from committed metadata, ascending id order.
    pub recovered: Vec<u32>,
    /// Instances whose metadata was found but whose pages (or key-check
    /// tag) failed verification; their state is NOT loaded.
    pub corrupt: Vec<u32>,
    /// Shadow slots zeroed while healing possible crash leftovers.
    pub shadow_pages_scrubbed: u64,
}

/// Zero-padded page `i` of `buf` equals zero-padded page `i` of `other`.
fn page_eq(a: &[u8], b: &[u8], i: usize) -> bool {
    let pa = page_slice(a, i);
    let pb = page_slice(b, i);
    let common = pa.len().min(pb.len());
    pa[..common] == pb[..common]
        && pa[common..].iter().all(|&x| x == 0)
        && pb[common..].iter().all(|&x| x == 0)
}

fn page_slice(buf: &[u8], i: usize) -> &[u8] {
    let start = i * PAGE_SIZE;
    if start >= buf.len() {
        &[]
    } else {
        &buf[start..buf.len().min(start + PAGE_SIZE)]
    }
}

impl StateMirror {
    /// Create a mirror; in `Encrypted` mode, `master_key` is stored in a
    /// freshly allocated hypervisor-protected Dom0 frame.
    pub fn new(hv: Arc<Hypervisor>, mode: MirrorMode, master_key: [u8; 16]) -> XenResult<Self> {
        let (key, key_frame) = match mode {
            MirrorMode::Cleartext => (None, None),
            MirrorMode::Encrypted => {
                let mfn = hv.alloc_pages(DomainId::DOM0, 1)?[0];
                hv.page_write(DomainId::DOM0, mfn, 0, &master_key)?;
                hv.protect_frame(DomainId::DOM0, mfn)?;
                (Some(master_key), Some(mfn))
            }
        };
        Ok(StateMirror {
            hv,
            mode,
            regions: RegionTable::new(),
            policy: RwLock::new(FlushPolicy::per_command()),
            pending: Mutex::new(PendingBatch::default()),
            master_cipher: key.as_ref().map(Aes128::new),
            master_key: key,
            key_frame,
            io: IoCounters::default(),
            audit_on: std::sync::atomic::AtomicBool::new(false),
            audit: Mutex::new(NonceAudit::default()),
        })
    }

    /// Start recording every (page, counter) nonce pair this mirror uses
    /// so tests can assert none is ever reused.
    pub fn enable_nonce_audit(&self) {
        self.audit_on.store(true, Ordering::Relaxed);
    }

    /// Number of nonce-pair collisions observed since the audit was
    /// enabled (0 when the audit is off — or when the scheme is sound).
    pub fn nonce_reuses(&self) -> u64 {
        self.audit.lock().reuses
    }

    fn audit_nonce(&self, id: u32, page: u32, counter: u32) {
        if self.audit_on.load(Ordering::Relaxed) {
            let mut audit = self.audit.lock();
            if !audit.seen.insert((id, page, counter)) {
                audit.reuses += 1;
            }
        }
    }

    /// Per-instance tag binding the metadata frame to the master key, so
    /// recovery under a wrong key fails loudly instead of decrypting
    /// garbage. Zeros in `Cleartext` mode.
    fn key_check_tag(&self, id: u32) -> [u8; 8] {
        match &self.master_key {
            None => [0; 8],
            Some(key) => {
                let mut buf = Vec::with_capacity(16 + 4 + 17);
                buf.extend_from_slice(key);
                buf.extend_from_slice(&id.to_be_bytes());
                buf.extend_from_slice(b"/mirror-key-check");
                tpm_crypto::sha256(&buf)[..8].try_into().expect("8 bytes")
            }
        }
    }

    /// The mode this mirror runs in.
    pub fn mode(&self) -> MirrorMode {
        self.mode
    }

    /// The protected key frame, if any (diagnostics/tests).
    pub fn key_frame(&self) -> Option<usize> {
        self.key_frame
    }

    /// The master key (crate-internal: the persistence layer seals it to
    /// the hardware TPM; it must never cross the crate boundary).
    pub(crate) fn master_key(&self) -> Option<[u8; 16]> {
        self.master_key
    }

    /// Snapshot the write-path counters.
    pub fn io_stats(&self) -> MirrorIoStats {
        MirrorIoStats {
            updates: self.io.updates.load(Ordering::Relaxed),
            clean_updates: self.io.clean_updates.load(Ordering::Relaxed),
            data_pages_written: self.io.data_pages_written.load(Ordering::Relaxed),
            pages_scrubbed: self.io.pages_scrubbed.load(Ordering::Relaxed),
            meta_pages_written: self.io.meta_pages_written.load(Ordering::Relaxed),
            bytes_written: self.io.bytes_written.load(Ordering::Relaxed),
            scrub_failures: self.io.scrub_failures.load(Ordering::Relaxed),
            retried_generation_burns: self.io.retried_generation_burns.load(Ordering::Relaxed),
            staged_updates: self.io.staged_updates.load(Ordering::Relaxed),
            batched_commits: self.io.batched_commits.load(Ordering::Relaxed),
            flushes: self.io.flushes.load(Ordering::Relaxed),
        }
    }

    /// Replace the flush policy. Takes effect for subsequent updates;
    /// anything already staged commits under the new thresholds (or via
    /// an explicit [`StateMirror::flush`]).
    pub fn set_flush_policy(&self, policy: FlushPolicy) {
        *self.policy.write() = policy;
    }

    /// The active flush policy.
    pub fn flush_policy(&self) -> FlushPolicy {
        *self.policy.read()
    }

    /// Instance ids with a staged, unflushed generation (ascending).
    pub fn pending_instances(&self) -> Vec<u32> {
        self.pending.lock().ids.iter().copied().collect()
    }

    /// Fetch or create the per-instance region handle. Only the id's
    /// shard is locked.
    fn region_handle(&self, id: u32) -> Arc<Mutex<Region>> {
        let shard = self.regions.shard(id);
        if let Some(r) = shard.read().get(&id) {
            return Arc::clone(r);
        }
        let mut table = shard.write();
        Arc::clone(table.entry(id).or_insert_with(|| {
            Arc::new(Mutex::new(Region {
                meta_mfn: None,
                slots: Vec::new(),
                active: Vec::new(),
                len: 0,
                generation: 0,
                attempted: 0,
                page_counters: Vec::new(),
                page_digests: Vec::new(),
                cache: Vec::new(),
                spare: Vec::new(),
                staged: None,
            }))
        }))
    }

    /// Pull a zeroed frame from the region's spare pool, or allocate.
    fn take_frame(&self, region: &mut Region) -> XenResult<usize> {
        match region.spare.pop() {
            Some(mfn) => Ok(mfn),
            None => Ok(self.hv.alloc_pages(DomainId::DOM0, 1)?[0]),
        }
    }

    /// Zero a frame, counting the scrub in the I/O stats.
    fn scrub_frame(&self, mfn: usize) -> XenResult<()> {
        let zeros = [0u8; PAGE_SIZE];
        self.hv.page_write(DomainId::DOM0, mfn, 0, &zeros)?;
        self.io.pages_scrubbed.fetch_add(1, Ordering::Relaxed);
        self.io.bytes_written.fetch_add(PAGE_SIZE as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Best-effort scrub for post-commit hygiene: the generation already
    /// committed, so a failure must not fail the update — count it and
    /// move on (the bytes linger until the frame is reused or `recover`
    /// re-scrubs the shadow slots).
    fn scrub_frame_best_effort(&self, mfn: usize) {
        if self.scrub_frame(mfn).is_err() {
            self.io.scrub_failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Durably burn the nonces a failed earlier update may have consumed:
    /// re-commit the *currently committed* image's metadata at
    /// `region.attempted`, so the on-frame generation catches up with the
    /// highest consumed counter before the caller consumes `attempted + 1`.
    /// On failure nothing new was consumed and the burn stays pending.
    fn burn_attempted(&self, id: u32, region: &mut Region) -> XenResult<()> {
        let pages = region.len.div_ceil(PAGE_SIZE);
        let entries: Vec<MetaEntry> = (0..pages)
            .map(|i| {
                let act = region.active[i];
                MetaEntry {
                    active_mfn: region.slots[i][act as usize] as u32,
                    shadow_mfn: region.slots[i][1 - act as usize] as u32,
                    counter: region.page_counters[i],
                    digest: region.page_digests[i],
                }
            })
            .collect();
        let meta = build_meta(id, region.attempted, region.len as u64, self.key_check_tag(id), &entries);
        let mfn = region.meta_mfn.expect("attempted > generation implies an allocated meta frame");
        self.hv.page_write(DomainId::DOM0, mfn, 0, &meta)?;
        self.io.meta_pages_written.fetch_add(1, Ordering::Relaxed);
        self.io.bytes_written.fetch_add(PAGE_SIZE as u64, Ordering::Relaxed);
        region.generation = region.attempted;
        Ok(())
    }

    /// Per-page CTR nonce: instance id then the page's write counter.
    fn page_nonce(id: u32, counter: u32) -> [u8; 8] {
        let mut nonce = [0u8; 8];
        nonce[..4].copy_from_slice(&id.to_be_bytes());
        nonce[4..8].copy_from_slice(&counter.to_be_bytes());
        nonce
    }

    /// Write `state` as instance `id`'s resident image, growing the
    /// backing region as needed. Takes only the instance's own lock.
    ///
    /// Incremental and crash-consistent: only pages whose plaintext
    /// differs from the cached previous image are rewritten, each into
    /// its page's inactive (shadow) slot; the single metadata-frame
    /// write at the end is the atomic commit point. The in-memory region
    /// only flips to the new generation after that commit succeeds, so a
    /// failure anywhere leaves the committed image untouched.
    ///
    /// Returns the bytes durably written to publish this update — dirty
    /// data pages plus metadata commits (including a retry's generation
    /// burn), excluding post-commit hygiene scrubs — which telemetry
    /// records as mirror-bytes-per-command. A clean update returns 0.
    /// Under a batched policy the metadata commit is deferred to a
    /// flush, so the returned count covers the staged pages only.
    pub fn update(&self, id: u32, state: &[u8]) -> XenResult<u64> {
        let data_pages = state.len().div_ceil(PAGE_SIZE);
        if data_pages > MAX_DATA_PAGES {
            return Err(XenError::OutOfMemory);
        }
        let per_command = self.policy.read().is_per_command();
        let handle = self.region_handle(id);
        let mut region = handle.lock();
        self.io.updates.fetch_add(1, Ordering::Relaxed);

        // At most one staged generation may exist per region (that is
        // the `attempted <= committed + 1` invariant): publish any
        // previous staged generation before staging anew.
        if region.staged.is_some() {
            self.commit_locked(id, &mut region)?;
            self.dequeue(id);
        }

        let Some(staged) = self.stage_locked(id, &mut region, state)? else {
            self.io.clean_updates.fetch_add(1, Ordering::Relaxed);
            return Ok(0);
        };
        let staged_bytes = staged.staged_bytes;
        region.staged = Some(staged);

        if per_command {
            let commit_bytes = self.commit_locked(id, &mut region)?;
            return Ok(staged_bytes + commit_bytes);
        }

        self.io.staged_updates.fetch_add(1, Ordering::Relaxed);
        let due = self.enqueue(id, staged_bytes);
        drop(region);
        if due {
            self.flush()?;
        }
        Ok(staged_bytes)
    }

    /// Stage `state` as the region's next generation: grow the backing
    /// frames, durably burn a failed earlier attempt if one is pending,
    /// and write every dirty page into its shadow slot. Returns `None`
    /// when nothing is dirty (no page written at all). On `Some`, the
    /// record is ready for `commit_locked`; `region.attempted` already
    /// names the staged generation, so a failure from here on follows
    /// the ordinary burn-on-retry path.
    fn stage_locked(&self, id: u32, region: &mut Region, state: &[u8]) -> XenResult<Option<Staged>> {
        let data_pages = state.len().div_ceil(PAGE_SIZE);
        let old_pages = region.len.div_ceil(PAGE_SIZE);
        let dirty: Vec<usize> = (0..data_pages)
            .filter(|&i| i >= old_pages || !page_eq(state, &region.cache, i))
            .collect();
        let shrunk = data_pages < old_pages;
        if dirty.is_empty() && !shrunk && state.len() == region.len {
            return Ok(None);
        }
        let mut bytes_this_update = 0u64;

        if region.meta_mfn.is_none() {
            let mfn = self.take_frame(region)?;
            region.meta_mfn = Some(mfn);
        }
        while region.slots.len() < data_pages {
            let a = self.take_frame(region)?;
            let b = self.take_frame(region)?;
            region.slots.push([a, b]);
            // New pages are written below; slot 0 becomes active at
            // commit (the placeholder 1 makes the target math uniform).
            region.active.push(1);
        }

        // A failed earlier update may have consumed `attempted` nonces
        // without committing; burn them durably before consuming more, or
        // an in-process retry would re-encrypt different plaintext under
        // the same (id, page, counter) CTR nonce — keystream reuse for an
        // attacker holding dumps from before and after the retry.
        if region.attempted > region.generation {
            self.burn_attempted(id, region)?;
            self.io.retried_generation_burns.fetch_add(1, Ordering::Relaxed);
            bytes_this_update += PAGE_SIZE as u64;
        }
        let next_gen = region.generation + 1;
        // The nonce carries the generation as a u32; refuse to wrap the
        // counter space rather than silently truncate into reuse.
        if next_gen > u64::from(u32::MAX) {
            return Err(XenError::BadImage("mirror nonce space exhausted; re-key required"));
        }
        let counter = next_gen as u32;

        // Stage every dirty page into its shadow slot. Nothing here is
        // visible to readers until the metadata commit. The first shadow
        // write consumes `next_gen` nonces, so mark them attempted first.
        if !dirty.is_empty() {
            region.attempted = next_gen;
        }
        let mut new_counters = region.page_counters.clone();
        new_counters.resize(data_pages, 0);
        new_counters.truncate(data_pages);
        let mut new_digests = region.page_digests.clone();
        new_digests.resize(data_pages, [0; 8]);
        new_digests.truncate(data_pages);
        let mut targets: Vec<(usize, u8)> = Vec::with_capacity(dirty.len());
        let mut page = vec![0u8; PAGE_SIZE];
        for &i in &dirty {
            let chunk = page_slice(state, i);
            page[..chunk.len()].copy_from_slice(chunk);
            page[chunk.len()..].fill(0);
            if let MirrorMode::Encrypted = self.mode {
                let cipher = self.master_cipher.as_ref().expect("encrypted mode has key");
                cipher.ctr_xor_at(
                    &Self::page_nonce(id, counter),
                    &mut page,
                    i as u64 * BLOCKS_PER_PAGE,
                );
                self.audit_nonce(id, i as u32, counter);
            }
            let target = 1 - region.active[i];
            self.hv.page_write(DomainId::DOM0, region.slots[i][target as usize], 0, &page)?;
            self.io.data_pages_written.fetch_add(1, Ordering::Relaxed);
            self.io.bytes_written.fetch_add(PAGE_SIZE as u64, Ordering::Relaxed);
            bytes_this_update += PAGE_SIZE as u64;
            new_counters[i] = counter;
            new_digests[i] = page_digest(&page);
            targets.push((i, target));
        }

        Ok(Some(Staged {
            gen: next_gen,
            len: state.len(),
            counters: new_counters,
            digests: new_digests,
            targets,
            state: state.to_vec(),
            staged_bytes: bytes_this_update,
        }))
    }

    /// Publish the region's staged generation: build the new metadata
    /// and commit it with one atomic page write, fold the generation
    /// into the in-memory region, then do the post-commit hygiene
    /// scrubs. On failure the staged record is restored untouched —
    /// every staged page already landed durably, so a retry rewrites
    /// the *identical* metadata bytes and consumes no new nonce.
    /// Returns the commit's durable bytes (the metadata page).
    fn commit_locked(&self, id: u32, region: &mut Region) -> XenResult<u64> {
        let staged = region.staged.take().expect("commit_locked requires a staged generation");
        let data_pages = staged.len.div_ceil(PAGE_SIZE);
        let mut target_of = vec![None; data_pages];
        for &(i, t) in &staged.targets {
            target_of[i] = Some(t);
        }
        let entries: Vec<MetaEntry> = (0..data_pages)
            .map(|i| {
                let act = target_of[i].unwrap_or(region.active[i]);
                MetaEntry {
                    active_mfn: region.slots[i][act as usize] as u32,
                    shadow_mfn: region.slots[i][1 - act as usize] as u32,
                    counter: staged.counters[i],
                    digest: staged.digests[i],
                }
            })
            .collect();
        let meta = build_meta(id, staged.gen, staged.len as u64, self.key_check_tag(id), &entries);
        let meta_mfn = region.meta_mfn.expect("staged generation implies a meta frame");
        if let Err(e) = self.hv.page_write(DomainId::DOM0, meta_mfn, 0, &meta) {
            region.staged = Some(staged);
            return Err(e);
        }
        self.io.meta_pages_written.fetch_add(1, Ordering::Relaxed);
        self.io.bytes_written.fetch_add(PAGE_SIZE as u64, Ordering::Relaxed);

        // Committed — fold the new generation into the in-memory region.
        // `old_pages` must come from the pre-fold length: the hygiene
        // scrubs below only cover replaced slots of pages that existed
        // in the previous committed image.
        let old_pages = region.len.div_ceil(PAGE_SIZE);
        region.generation = staged.gen;
        region.attempted = staged.gen;
        for &(i, t) in &staged.targets {
            region.active[i] = t;
        }
        region.page_counters = staged.counters;
        region.page_digests = staged.digests;
        region.len = staged.len;
        region.cache = staged.state;

        // Post-commit hygiene: zero the replaced slots of rewritten
        // pages and both slots of dropped pages (which join the spare
        // pool). The commit already stood, so scrub failures are counted
        // but never fail the update — returning Err here would leave the
        // manager's mirrored-generation marker stale and trigger a
        // spurious full re-mirror (burning another generation) for a
        // mutation that in fact committed. A crash or failure in here
        // strands stale bytes only until the frame is reused or
        // `recover` re-scrubs every shadow slot.
        for &(i, t) in &staged.targets {
            if i < old_pages {
                self.scrub_frame_best_effort(region.slots[i][1 - t as usize]);
            }
        }
        while region.slots.len() > data_pages {
            let [a, b] = region.slots.pop().expect("len checked");
            region.active.pop();
            self.scrub_frame_best_effort(a);
            self.scrub_frame_best_effort(b);
            region.spare.push(a);
            region.spare.push(b);
        }
        Ok(PAGE_SIZE as u64)
    }

    /// Record a freshly staged instance in the pending batch and report
    /// whether the policy says the batch is due. Called with the region
    /// lock held — region before pending is the lock order everywhere.
    fn enqueue(&self, id: u32, staged_bytes: u64) -> bool {
        let policy = *self.policy.read();
        let now = self.hv.clock.now_ns();
        let mut pending = self.pending.lock();
        if pending.ids.is_empty() {
            pending.opened_ns = now;
        }
        pending.ids.insert(id);
        pending.bytes += staged_bytes;
        let instances_due = pending.ids.len() >= policy.max_batch_instances.max(1);
        let bytes_due = policy.max_batch_bytes > 0 && pending.bytes >= policy.max_batch_bytes;
        let age_due =
            policy.max_age_ns > 0 && now.saturating_sub(pending.opened_ns) >= policy.max_age_ns;
        instances_due || bytes_due || age_due
    }

    /// Drop a committed (or discarded) instance from the pending batch.
    fn dequeue(&self, id: u32) {
        let mut pending = self.pending.lock();
        if pending.ids.remove(&id) && pending.ids.is_empty() {
            pending.bytes = 0;
        }
    }

    /// The group-commit point: publish every staged generation,
    /// ascending instance id. Stops at the first commit failure, leaving
    /// that instance and everything after it staged for an idempotent
    /// retry; instances already committed stay committed — which is what
    /// makes the crash matrix's post-batch set a deterministic
    /// ascending-id prefix of the batch.
    pub fn flush(&self) -> XenResult<()> {
        let ids: Vec<u32> = self.pending.lock().ids.iter().copied().collect();
        if ids.is_empty() {
            return Ok(());
        }
        self.io.flushes.fetch_add(1, Ordering::Relaxed);
        for id in ids {
            let Some(handle) = self.regions.get(id) else {
                self.dequeue(id);
                continue;
            };
            let mut region = handle.lock();
            if region.staged.is_none() {
                self.dequeue(id);
                continue;
            }
            self.commit_locked(id, &mut region)?;
            self.io.batched_commits.fetch_add(1, Ordering::Relaxed);
            self.dequeue(id);
        }
        Ok(())
    }

    /// Tear down a region whose first update never committed
    /// (`generation == 0`) — the create/adopt/restore error path, where
    /// a failed initial `update` left allocated, possibly part-written
    /// frames tracked but no metadata ever published. Scrubs are
    /// best-effort (the fault that failed the update may still hold;
    /// the frames carry no committed metadata and, in `Encrypted` mode,
    /// only ciphertext, so nothing can be resurrected from them) and
    /// the region is untracked unconditionally. Regions with a
    /// committed generation are left untouched: a failed re-update of a
    /// live region (e.g. a restore onto a recovered id) keeps its
    /// committed image and the ordinary burn-on-retry semantics.
    pub fn discard_uncommitted(&self, id: u32) -> XenResult<()> {
        let committed = match self.regions.get(id) {
            None => return Ok(()),
            Some(handle) => handle.lock().generation > 0,
        };
        if committed {
            return Ok(());
        }
        let mut table = self.regions.shard(id).write();
        let Some(handle) = table.get(&id).cloned() else {
            return Ok(());
        };
        let region = handle.lock();
        for mfn in region
            .meta_mfn
            .into_iter()
            .chain(region.slots.iter().flatten().copied())
            .chain(region.spare.iter().copied())
        {
            self.scrub_frame_best_effort(mfn);
        }
        drop(region);
        table.remove(&id);
        drop(table);
        self.dequeue(id);
        Ok(())
    }

    /// Read back instance `id`'s resident image (decrypting in Encrypted
    /// mode). This is the manager's own access path; the attacker reads
    /// the frames through the dump facility instead.
    ///
    /// Verifies the metadata checksum and every page digest, so any
    /// corruption of the resident frames surfaces as
    /// [`XenError::BadImage`] instead of silently decoding garbage.
    pub fn read(&self, id: u32) -> XenResult<Vec<u8>> {
        let handle = self.regions.get(id).ok_or(XenError::BadFrame)?;
        let region = handle.lock();
        let meta_mfn = region.meta_mfn.ok_or(XenError::BadFrame)?;
        let mut meta = vec![0u8; PAGE_SIZE];
        self.hv.page_read(DomainId::DOM0, meta_mfn, 0, &mut meta)?;
        let (mid, generation, len, key_check, entries) =
            parse_meta(&meta).ok_or(XenError::BadImage("mirror metadata corrupt"))?;
        if mid != id || generation != region.generation || len != region.len {
            return Err(XenError::BadImage("mirror metadata stale"));
        }
        if key_check != self.key_check_tag(id) {
            return Err(XenError::BadImage("mirror key mismatch"));
        }
        self.decode_image(id, len, &entries)
    }

    /// Read, verify, and decrypt the committed image a metadata frame
    /// describes.
    fn decode_image(&self, id: u32, len: usize, entries: &[MetaEntry]) -> XenResult<Vec<u8>> {
        let mut image = vec![0u8; len];
        let mut page = vec![0u8; PAGE_SIZE];
        for (i, e) in entries.iter().enumerate() {
            self.hv.page_read(DomainId::DOM0, e.active_mfn as usize, 0, &mut page)?;
            if page_digest(&page) != e.digest {
                return Err(XenError::BadImage("mirror page corrupt"));
            }
            if let MirrorMode::Encrypted = self.mode {
                let cipher = self.master_cipher.as_ref().expect("encrypted mode has key");
                cipher.ctr_xor_at(
                    &Self::page_nonce(id, e.counter),
                    &mut page,
                    i as u64 * BLOCKS_PER_PAGE,
                );
            }
            let done = i * PAGE_SIZE;
            let take = PAGE_SIZE.min(len - done);
            image[done..done + take].copy_from_slice(&page[..take]);
        }
        Ok(image)
    }

    /// Drop instance `id`'s region, scrubbing its frames.
    ///
    /// The region stays in the table until every frame scrub succeeds: a
    /// partial failure must leave the region re-scrubbable by a retry,
    /// not orphan half-scrubbed frames (with a still-valid metadata page
    /// a later `recover` would resurrect) outside any bookkeeping. The
    /// metadata frame is scrubbed first for the same reason — once it is
    /// gone, no crash or partial failure can resurrect the image.
    pub fn remove(&self, id: u32) -> XenResult<()> {
        // Shard lock before region lock, like every other table
        // accessor; holding the shard's write lock across the scrub also
        // keeps a concurrent `update` from re-creating the region
        // mid-removal.
        let mut table = self.regions.shard(id).write();
        let Some(handle) = table.get(&id).cloned() else {
            return Ok(());
        };
        let region = handle.lock();
        let zeros = [0u8; PAGE_SIZE];
        let slot_frames = region.slots.iter().flatten().copied();
        for mfn in region.meta_mfn.into_iter().chain(slot_frames).chain(region.spare.iter().copied()) {
            self.hv.page_write(DomainId::DOM0, mfn, 0, &zeros)?;
        }
        drop(region);
        table.remove(&id);
        drop(table);
        self.dequeue(id);
        Ok(())
    }

    /// Frames backing instance `id`'s *committed* image (tests/attack
    /// ground truth). The first entry is the metadata frame; the rest
    /// are the active data slots in page order.
    pub fn region_frames(&self, id: u32) -> Option<Vec<usize>> {
        self.regions.get(id).map(|r| {
            let region = r.lock();
            let mut mfns: Vec<usize> = region.meta_mfn.into_iter().collect();
            mfns.extend(
                region.slots.iter().zip(&region.active).map(|(pair, &a)| pair[a as usize]),
            );
            mfns
        })
    }

    /// Committed generation of instance `id`, if it has a region.
    pub fn generation(&self, id: u32) -> Option<u64> {
        self.regions.get(id).map(|r| r.lock().generation)
    }

    /// Ids with a live region, ascending.
    pub fn instance_ids(&self) -> Vec<u32> {
        self.regions.ids()
    }

    /// Rebuild a mirror from the Dom0 frames alone — the manager
    /// crash/restart path. Scans Dom0 memory for checksummed metadata
    /// frames, verifies each instance's key-check tag and page digests,
    /// restores the committed images, scrubs every shadow slot (healing
    /// leftovers of a crash mid-update or mid-scrub), and re-commits
    /// each region at `generation + 1` so nonces consumed by uncommitted
    /// pre-crash writes are never reused.
    ///
    /// Instances failing verification are listed in
    /// [`MirrorRecovery::corrupt`] and left untouched on the frames.
    pub fn recover(
        hv: Arc<Hypervisor>,
        mode: MirrorMode,
        master_key: [u8; 16],
    ) -> XenResult<(Self, MirrorRecovery)> {
        let mirror = Self::new(hv, mode, master_key)?;
        let mut report = MirrorRecovery::default();
        let dump = mirror.hv.dump_memory(DomainId::DOM0)?;
        for (mfn, owner, page) in &dump {
            // Only Dom0-owned frames are trusted: a guest could forge a
            // well-formed metadata page in its own memory.
            if !owner.is_dom0() {
                continue;
            }
            let Some((id, generation, len, key_check, entries)) = parse_meta(&page[..]) else {
                continue;
            };
            if mirror.regions.contains(id) {
                continue;
            }
            if key_check != mirror.key_check_tag(id) {
                report.corrupt.push(id);
                continue;
            }
            let Ok(image) = mirror.decode_image(id, len, &entries) else {
                report.corrupt.push(id);
                continue;
            };
            let region = Region {
                meta_mfn: Some(*mfn),
                slots: entries.iter().map(|e| [e.active_mfn as usize, e.shadow_mfn as usize]).collect(),
                active: vec![0; entries.len()],
                len,
                // Burn the generation the crashed manager may have used
                // for uncommitted shadow writes (see module docs).
                generation: generation + 1,
                attempted: generation + 1,
                page_counters: entries.iter().map(|e| e.counter).collect(),
                page_digests: entries.iter().map(|e| e.digest).collect(),
                cache: image,
                spare: Vec::new(),
                staged: None,
            };
            for e in &entries {
                mirror.scrub_frame(e.shadow_mfn as usize)?;
                report.shadow_pages_scrubbed += 1;
            }
            let meta = build_meta(id, generation + 1, len as u64, mirror.key_check_tag(id), &entries);
            mirror.hv.page_write(DomainId::DOM0, *mfn, 0, &meta)?;
            mirror.io.meta_pages_written.fetch_add(1, Ordering::Relaxed);
            mirror.io.bytes_written.fetch_add(PAGE_SIZE as u64, Ordering::Relaxed);
            mirror.regions.insert(id, Arc::new(Mutex::new(region)));
            report.recovered.push(id);
        }
        report.recovered.sort_unstable();
        report.corrupt.sort_unstable();
        report.corrupt.dedup();
        Ok((mirror, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hv() -> Arc<Hypervisor> {
        Arc::new(Hypervisor::boot(512, 8).unwrap())
    }

    fn contains(haystack: &[u8], needle: &[u8]) -> bool {
        !needle.is_empty() && haystack.windows(needle.len()).any(|w| w == needle)
    }

    fn dump_all(hv: &Hypervisor) -> Vec<u8> {
        let mut blob = Vec::new();
        for (_, _, page) in hv.dump_memory(DomainId::DOM0).unwrap() {
            blob.extend_from_slice(&page[..]);
        }
        blob
    }

    /// Raw bytes of instance `id`'s data frames, in order.
    fn raw_data_frames(hv: &Hypervisor, m: &StateMirror, id: u32) -> Vec<Vec<u8>> {
        m.region_frames(id)
            .unwrap()
            .iter()
            .skip(1)
            .map(|&mfn| {
                let mut page = vec![0u8; PAGE_SIZE];
                hv.page_read(DomainId::DOM0, mfn, 0, &mut page).unwrap();
                page
            })
            .collect()
    }

    #[test]
    fn cleartext_mirror_roundtrip_and_dumpable() {
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Cleartext, [0; 16]).unwrap();
        let state = b"SRK-PRIME-MATERIAL-0123456789";
        m.update(7, state).unwrap();
        assert_eq!(m.read(7).unwrap(), state);
        // The baseline resident image leaks into the Dom0 dump.
        assert!(contains(&dump_all(&hv), state));
    }

    #[test]
    fn encrypted_mirror_roundtrip_and_not_dumpable() {
        let hv = hv();
        let key = [0xA5; 16];
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, key).unwrap();
        let state = b"SRK-PRIME-MATERIAL-0123456789";
        m.update(7, state).unwrap();
        // Manager path still reads cleartext.
        assert_eq!(m.read(7).unwrap(), state);
        let dump = dump_all(&hv);
        assert!(!contains(&dump, state), "ciphertext only in the dump");
        assert!(!contains(&dump, &key), "master key must not appear in the dump");
    }

    #[test]
    fn key_frame_is_protected() {
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, [1; 16]).unwrap();
        let kf = m.key_frame().unwrap();
        // The dump refuses the protected frame.
        let dump = hv.dump_memory(DomainId::DOM0).unwrap();
        assert!(dump.iter().all(|(mfn, _, _)| *mfn != kf));
    }

    #[test]
    fn multi_page_state() {
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Cleartext, [0; 16]).unwrap();
        let state: Vec<u8> = (0..3u32 * PAGE_SIZE as u32).map(|i| i as u8).collect();
        m.update(1, &state).unwrap();
        assert_eq!(m.read(1).unwrap(), state);
        // Shrink back down.
        m.update(1, b"tiny").unwrap();
        assert_eq!(m.read(1).unwrap(), b"tiny");
    }

    #[test]
    fn growth_after_initial_allocation() {
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Cleartext, [0; 16]).unwrap();
        m.update(1, b"small").unwrap();
        let before = m.region_frames(1).unwrap().len();
        let big = vec![7u8; 2 * PAGE_SIZE];
        m.update(1, &big).unwrap();
        assert!(m.region_frames(1).unwrap().len() > before);
        assert_eq!(m.read(1).unwrap(), big);
    }

    #[test]
    fn remove_scrubs_frames() {
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Cleartext, [0; 16]).unwrap();
        m.update(3, b"WIPE-ME-PLEASE").unwrap();
        m.remove(3).unwrap();
        assert!(!contains(&dump_all(&hv), b"WIPE-ME-PLEASE"));
        assert!(m.read(3).is_err());
    }

    #[test]
    fn distinct_instances_isolated() {
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, [9; 16]).unwrap();
        m.update(1, b"instance-one").unwrap();
        m.update(2, b"instance-two").unwrap();
        assert_eq!(m.read(1).unwrap(), b"instance-one");
        assert_eq!(m.read(2).unwrap(), b"instance-two");
    }

    #[test]
    fn identical_update_writes_nothing() {
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, [4; 16]).unwrap();
        let state = vec![0x5Au8; PAGE_SIZE + 100];
        m.update(1, &state).unwrap();
        let before = m.io_stats();
        m.update(1, &state).unwrap();
        let after = m.io_stats();
        assert_eq!(after.updates, before.updates + 1);
        assert_eq!(after.clean_updates, before.clean_updates + 1);
        assert_eq!(after.bytes_written, before.bytes_written, "clean update writes zero bytes");
    }

    #[test]
    fn only_dirty_pages_rewritten() {
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, [4; 16]).unwrap();
        let mut state = vec![1u8; 4 * PAGE_SIZE];
        m.update(1, &state).unwrap();
        let before = m.io_stats();
        // Touch one byte in the third page.
        state[2 * PAGE_SIZE + 17] ^= 0xFF;
        m.update(1, &state).unwrap();
        let after = m.io_stats();
        assert_eq!(after.data_pages_written, before.data_pages_written + 1);
        assert_eq!(after.meta_pages_written, before.meta_pages_written + 1);
        assert_eq!(m.read(1).unwrap(), state);
    }

    #[test]
    fn scrub_on_shrink_leaves_no_stale_bytes() {
        for mode in [MirrorMode::Cleartext, MirrorMode::Encrypted] {
            let hv = hv();
            let m = StateMirror::new(Arc::clone(&hv), mode, [0x3C; 16]).unwrap();
            // A large image whose tail carries a recognizable secret.
            let mut big = vec![0u8; 3 * PAGE_SIZE + 777];
            for (i, b) in big.iter_mut().enumerate() {
                *b = (i % 251) as u8;
            }
            let secret = b"TAIL-SECRET-MUST-NOT-SURVIVE-SHRINK";
            let at = big.len() - secret.len();
            big[at..].copy_from_slice(secret);
            m.update(9, &big).unwrap();

            // Shrink to a state sharing only the first few bytes.
            let small = &big[..300];
            m.update(9, small).unwrap();
            assert_eq!(m.read(9).unwrap(), small);

            // No byte of the previous larger image survives anywhere in a
            // full Dom0 dump — neither cleartext nor its old ciphertext
            // tail (dropped frames are zeroed, partial page zero-padded).
            let dump = dump_all(&hv);
            assert!(!contains(&dump, secret), "{mode:?}: secret survived shrink");
            for frame in raw_data_frames(&hv, &m, 9).iter().skip(1) {
                assert!(frame.iter().all(|&b| b == 0), "{mode:?}: stale tail frame not scrubbed");
            }
        }
    }

    #[test]
    fn rewrite_of_same_plaintext_gets_fresh_keystream() {
        // A -> B -> A: the third image re-encrypts A's bytes under a new
        // counter, so its ciphertext differs from the first even though
        // the plaintext is identical (no deterministic encryption).
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, [0x77; 16]).unwrap();
        let a = vec![0xAAu8; 600];
        let b = vec![0xBBu8; 600];
        m.update(5, &a).unwrap();
        let ct1 = raw_data_frames(&hv, &m, 5)[0].clone();
        m.update(5, &b).unwrap();
        m.update(5, &a).unwrap();
        let ct2 = raw_data_frames(&hv, &m, 5)[0].clone();
        assert_eq!(m.read(5).unwrap(), a);
        assert_ne!(ct1, ct2, "same plaintext must not produce the same ciphertext twice");
    }

    #[test]
    fn ctr_two_time_pad_defeated() {
        // The classic attack on the old fixed-nonce scheme: with C1 and
        // C2 encrypted under the same keystream, C1 xor C2 = P1 xor P2.
        // With per-write counters the keystreams differ, so the XOR of
        // the two ciphertext dumps must NOT equal the plaintext XOR.
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, [0x19; 16]).unwrap();
        let p1 = vec![0x11u8; 512];
        let p2 = vec![0x22u8; 512];
        m.update(8, &p1).unwrap();
        let c1 = raw_data_frames(&hv, &m, 8)[0][..512].to_vec();
        m.update(8, &p2).unwrap();
        let c2 = raw_data_frames(&hv, &m, 8)[0][..512].to_vec();
        let ct_xor: Vec<u8> = c1.iter().zip(&c2).map(|(a, b)| a ^ b).collect();
        let pt_xor: Vec<u8> = p1.iter().zip(&p2).map(|(a, b)| a ^ b).collect();
        assert_ne!(ct_xor, pt_xor, "two-dump XOR must not cancel the keystream");
    }

    #[test]
    fn pages_use_disjoint_keystream_ranges() {
        // Two pages written in the same update share a nonce; their CTR
        // block ranges must not overlap, or equal plaintext pages would
        // leak equality. Encrypt two identical pages and compare.
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, [0x42; 16]).unwrap();
        let state = vec![0xCDu8; 2 * PAGE_SIZE];
        m.update(2, &state).unwrap();
        let frames = raw_data_frames(&hv, &m, 2);
        assert_ne!(frames[0], frames[1], "identical plaintext pages must encrypt differently");
        assert_eq!(m.read(2).unwrap(), state);
    }

    #[test]
    fn grow_after_shrink_roundtrips() {
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, [6; 16]).unwrap();
        let big: Vec<u8> = (0..2 * PAGE_SIZE + 50).map(|i| (i % 255) as u8).collect();
        m.update(4, &big).unwrap();
        m.update(4, b"short").unwrap();
        let bigger: Vec<u8> = (0..3 * PAGE_SIZE).map(|i| (i % 253) as u8).collect();
        m.update(4, &bigger).unwrap();
        assert_eq!(m.read(4).unwrap(), bigger);
    }

    #[test]
    fn crash_at_every_write_leaves_a_committed_image() {
        // Crash Dom0 after k page writes of the second update, for every
        // k until the update survives. Recovery from the frames alone
        // must always yield exactly the old or the new image.
        let old_img: Vec<u8> = (0..2 * PAGE_SIZE + 333).map(|i| (i % 191) as u8).collect();
        let new_img: Vec<u8> = (0..3 * PAGE_SIZE + 11).map(|i| (i % 187) as u8 ^ 0x5A).collect();
        let key = [0x21; 16];
        let mut k = 0;
        loop {
            let hv = hv();
            let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, key).unwrap();
            m.update(4, &old_img).unwrap();
            hv.inject_write_crash(DomainId::DOM0, k);
            let res = m.update(4, &new_img);
            hv.clear_faults();
            drop(m);
            let (rec, report) = StateMirror::recover(Arc::clone(&hv), MirrorMode::Encrypted, key).unwrap();
            assert_eq!(report.corrupt, Vec::<u32>::new(), "k={k}");
            assert_eq!(report.recovered, vec![4], "k={k}");
            let got = rec.read(4).unwrap();
            assert!(got == old_img || got == new_img, "k={k}: torn image recovered");
            if res.is_ok() {
                assert_eq!(got, new_img, "k={k}: committed update must survive recovery");
                break;
            }
            k += 1;
            assert!(k < 64, "crash sweep did not terminate");
        }
    }

    #[test]
    fn crash_during_shrink_preserves_old_or_new() {
        let big: Vec<u8> = (0..3 * PAGE_SIZE + 777).map(|i| (i % 193) as u8).collect();
        let small = b"post-shrink tiny image".to_vec();
        let key = [0x2C; 16];
        let mut k = 0;
        loop {
            let hv = hv();
            let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, key).unwrap();
            m.update(9, &big).unwrap();
            hv.inject_write_crash(DomainId::DOM0, k);
            let res = m.update(9, &small);
            hv.clear_faults();
            drop(m);
            let (rec, report) = StateMirror::recover(Arc::clone(&hv), MirrorMode::Encrypted, key).unwrap();
            assert_eq!(report.recovered, vec![9], "k={k}");
            let got = rec.read(9).unwrap();
            assert!(got == big || got == small, "k={k}: torn image after shrink crash");
            if res.is_ok() {
                assert_eq!(got, small, "k={k}");
                break;
            }
            k += 1;
            assert!(k < 64, "shrink crash sweep did not terminate");
        }
    }

    #[test]
    fn recovery_rebuilds_all_instances_and_scrubs_uncommitted_bytes() {
        // Cleartext so uncommitted shadow bytes are directly greppable:
        // crash mid-update, recover, and the aborted generation's bytes
        // must be gone from the dump while the committed image survives.
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Cleartext, [0; 16]).unwrap();
        m.update(1, b"COMMITTED-IMAGE-ONE").unwrap();
        m.update(2, b"COMMITTED-IMAGE-TWO").unwrap();
        hv.inject_write_crash(DomainId::DOM0, 0);
        assert!(m.update(1, b"UNCOMMITTED-SECRET-BYTES").is_err());
        hv.clear_faults();
        drop(m);
        let (rec, report) = StateMirror::recover(Arc::clone(&hv), MirrorMode::Cleartext, [0; 16]).unwrap();
        assert_eq!(report.recovered, vec![1, 2]);
        assert!(report.shadow_pages_scrubbed >= 2);
        assert_eq!(rec.read(1).unwrap(), b"COMMITTED-IMAGE-ONE");
        assert_eq!(rec.read(2).unwrap(), b"COMMITTED-IMAGE-TWO");
        let dump = dump_all(&hv);
        assert!(!contains(&dump, b"UNCOMMITTED-SECRET-BYTES"), "aborted write must be scrubbed");
        assert!(contains(&dump, b"COMMITTED-IMAGE-ONE"));
    }

    #[test]
    fn recovery_burns_the_possibly_used_generation() {
        let hv = hv();
        let key = [9; 16];
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, key).unwrap();
        m.update(1, &vec![1u8; 600]).unwrap();
        assert_eq!(m.generation(1), Some(1));
        // Crash before any write: generation 2's nonces may have hit the
        // frames, so recovery must not hand generation 2 out again.
        hv.inject_write_crash(DomainId::DOM0, 0);
        assert!(m.update(1, &vec![2u8; 600]).is_err());
        hv.clear_faults();
        drop(m);
        let (rec, _) = StateMirror::recover(Arc::clone(&hv), MirrorMode::Encrypted, key).unwrap();
        rec.enable_nonce_audit();
        assert_eq!(rec.generation(1), Some(2), "recovery re-commits at generation + 1");
        rec.update(1, &vec![2u8; 600]).unwrap();
        assert_eq!(rec.generation(1), Some(3));
        assert_eq!(rec.read(1).unwrap(), vec![2u8; 600]);
        assert_eq!(rec.nonce_reuses(), 0);
    }

    #[test]
    fn failed_update_burns_generation_for_in_process_retry() {
        // The in-process analogue of recovery's burn-a-generation rule: a
        // crashed update consumed (id, page, gen+1) nonces on the frames,
        // so the manager's retry-on-next-mutation must not hand the same
        // counter out again for different plaintext (keystream reuse for
        // an attacker dumping Dom0 before and after the retry).
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, [0x5D; 16]).unwrap();
        m.enable_nonce_audit();
        let a = vec![0xA1u8; PAGE_SIZE + 700];
        let b = vec![0xB2u8; PAGE_SIZE + 700];
        let c = vec![0xC3u8; PAGE_SIZE + 700];
        m.update(1, &a).unwrap();
        // Die after one of the two dirty shadow writes.
        hv.inject_write_crash(DomainId::DOM0, 1);
        assert!(m.update(1, &b).is_err());
        hv.clear_faults();
        m.update(1, &c).unwrap();
        assert_eq!(m.nonce_reuses(), 0, "retry reused a consumed (page, counter) nonce");
        assert_eq!(m.read(1).unwrap(), c);
        // The burn re-committed the old image at the consumed generation
        // before the retry consumed the next one: 1 (initial) -> 2
        // (burned by the failed attempt) -> 3 (the retry's commit).
        assert_eq!(m.generation(1), Some(3));
    }

    #[test]
    fn repeated_failed_updates_keep_burns_durable_across_crash_recovery() {
        // Two failed attempts in a row consume two generations; the burn
        // must land on the frames (not just in memory) so a crash before
        // any successful commit still lets recovery's single-generation
        // burn cover every consumed nonce.
        let hv = hv();
        let key = [0x6E; 16];
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, key).unwrap();
        let a = vec![0xA1u8; 600];
        m.update(1, &a).unwrap(); // committed generation 1
        // Attempt 2: dies before any write lands; counter 2 is consumed.
        hv.inject_write_crash(DomainId::DOM0, 0);
        assert!(m.update(1, &vec![0xB2u8; 600]).is_err());
        hv.clear_faults();
        // Attempt 3: the durable burn (metadata at generation 2) lands,
        // then the shadow write for counter 3 dies.
        hv.inject_write_crash(DomainId::DOM0, 1);
        assert!(m.update(1, &vec![0xC3u8; 600]).is_err());
        hv.clear_faults();
        assert_eq!(m.generation(1), Some(2), "burn must commit before new nonces are consumed");
        drop(m);
        // Crash now: the frames say generation 2, and counter 3 was the
        // highest consumed. Recovery burns to 3; the next write uses 4.
        let (rec, report) = StateMirror::recover(Arc::clone(&hv), MirrorMode::Encrypted, key).unwrap();
        assert_eq!(report.recovered, vec![1]);
        assert_eq!(rec.read(1).unwrap(), a, "only generation 1 ever committed an image");
        assert_eq!(rec.generation(1), Some(3), "recovery must burn past every consumed counter");
        rec.enable_nonce_audit();
        let d = vec![0xD4u8; 600];
        rec.update(1, &d).unwrap();
        assert_eq!(rec.generation(1), Some(4));
        assert_eq!(rec.read(1).unwrap(), d);
        assert_eq!(rec.nonce_reuses(), 0);
    }

    #[test]
    fn post_commit_scrub_failure_does_not_fail_the_update() {
        // Once the metadata commit landed, a failing hygiene scrub must
        // not turn the update into an error: the caller would treat the
        // mutation as unmirrored and re-mirror (burning a generation) for
        // an image that in fact committed.
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, [0x31; 16]).unwrap();
        m.enable_nonce_audit();
        let a = vec![0xA7u8; 600];
        let b = vec![0xB8u8; 600];
        let c = vec![0xC9u8; 600];
        m.update(1, &a).unwrap();
        // One dirty shadow write + the metadata commit succeed; the
        // post-commit scrub of the replaced slot fails.
        hv.inject_write_crash(DomainId::DOM0, 2);
        m.update(1, &b).expect("commit stood; scrub failure must be non-fatal");
        hv.clear_faults();
        assert_eq!(m.io_stats().scrub_failures, 1);
        assert_eq!(m.read(1).unwrap(), b);
        assert_eq!(m.generation(1), Some(2));
        // And the next update neither re-mirrors spuriously nor reuses a
        // nonce.
        m.update(1, &c).unwrap();
        assert_eq!(m.generation(1), Some(3));
        assert_eq!(m.read(1).unwrap(), c);
        assert_eq!(m.nonce_reuses(), 0);
    }

    #[test]
    fn nonce_counter_exhaustion_refused_not_truncated() {
        // The metadata generation is u64 but the nonce carries it as u32;
        // past u32::MAX the mirror must refuse to write rather than wrap
        // the (id, page, counter) space. Plant a committed region near
        // the limit and walk over it.
        let hv = hv();
        let key = [0x4B; 16];
        let probe = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, key).unwrap();
        let tag = probe.key_check_tag(33);
        let meta = build_meta(33, u64::from(u32::MAX) - 2, 0, tag, &[]);
        let mfn = hv.alloc_pages(DomainId::DOM0, 1).unwrap()[0];
        hv.page_write(DomainId::DOM0, mfn, 0, &meta).unwrap();
        drop(probe);
        let (rec, report) = StateMirror::recover(Arc::clone(&hv), MirrorMode::Encrypted, key).unwrap();
        assert_eq!(report.recovered, vec![33]);
        // One generation of headroom left (u32::MAX itself)...
        rec.update(33, b"last nonce that fits").unwrap();
        assert_eq!(rec.generation(33), Some(u64::from(u32::MAX)));
        // ...then hard refusal, leaving the committed image untouched.
        assert!(matches!(
            rec.update(33, b"would wrap the counter"),
            Err(XenError::BadImage(_))
        ));
        assert_eq!(rec.read(33).unwrap(), b"last nonce that fits");
    }

    #[test]
    fn failed_remove_keeps_region_for_rescrub() {
        // A partial scrub failure must leave the region tracked so a
        // retry scrubs the same frames — dropping it would orphan frames
        // still holding the image (and a valid metadata page recovery
        // would resurrect).
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Cleartext, [0; 16]).unwrap();
        m.update(3, b"WIPE-ME-EVENTUALLY").unwrap();
        hv.inject_write_crash(DomainId::DOM0, 0);
        assert!(m.remove(3).is_err());
        hv.clear_faults();
        assert!(m.region_frames(3).is_some(), "region must stay tracked after a failed scrub");
        m.remove(3).unwrap();
        assert!(m.region_frames(3).is_none());
        assert!(!contains(&dump_all(&hv), b"WIPE-ME-EVENTUALLY"));
    }

    #[test]
    fn nonce_audit_sees_no_reuse_across_grow_shrink_cycles() {
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, [3; 16]).unwrap();
        m.enable_nonce_audit();
        for round in 0..20u8 {
            let len = if round % 3 == 2 { 100 } else { (round as usize + 1) * 900 };
            let img = vec![round ^ 0xC3; len];
            m.update(6, &img).unwrap();
            assert_eq!(m.read(6).unwrap(), img);
        }
        assert_eq!(m.nonce_reuses(), 0);
    }

    #[test]
    fn corrupted_data_frame_detected_and_repairable() {
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, [7; 16]).unwrap();
        let img: Vec<u8> = (0..PAGE_SIZE + 123).map(|i| (i % 201) as u8).collect();
        m.update(3, &img).unwrap();
        let frames = m.region_frames(3).unwrap();
        hv.corrupt_frame(frames[1], 100, &[0xFF, 0x0F, 0xF0]).unwrap();
        assert!(matches!(m.read(3), Err(XenError::BadImage(_))), "corruption must not decode");
        // XOR is an involution: undoing the corruption restores the page.
        hv.corrupt_frame(frames[1], 100, &[0xFF, 0x0F, 0xF0]).unwrap();
        assert_eq!(m.read(3).unwrap(), img);
    }

    #[test]
    fn corrupted_meta_frame_detected() {
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, [8; 16]).unwrap();
        m.update(5, b"meta integrity matters").unwrap();
        let meta_mfn = m.region_frames(5).unwrap()[0];
        hv.corrupt_frame(meta_mfn, 9, &[0x01]).unwrap();
        assert!(matches!(m.read(5), Err(XenError::BadImage(_))));
        // A mangled metadata frame is invisible to recovery: the region
        // is simply not found (checksums make partial trust impossible).
        drop(m);
        let (_, report) = StateMirror::recover(Arc::clone(&hv), MirrorMode::Encrypted, [8; 16]).unwrap();
        assert!(report.recovered.is_empty());
    }

    #[test]
    fn recovery_with_wrong_key_rejects_instances() {
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, [0xAB; 16]).unwrap();
        m.update(11, b"sealed to one key only").unwrap();
        drop(m);
        let (rec, report) = StateMirror::recover(Arc::clone(&hv), MirrorMode::Encrypted, [0xCD; 16]).unwrap();
        assert_eq!(report.corrupt, vec![11], "wrong key must be detected, not decode garbage");
        assert!(report.recovered.is_empty());
        assert!(rec.read(11).is_err());
    }

    #[test]
    fn batched_updates_commit_on_flush() {
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, [0x21; 16]).unwrap();
        m.update(1, b"instance one, gen one").unwrap();
        m.update(2, b"instance two, gen one").unwrap();
        m.set_flush_policy(FlushPolicy::batched(0, 8, 0));

        // Stage both: data pages land, metadata stays at the old
        // generation, so a read still returns the committed image.
        m.update(1, b"instance one, gen two").unwrap();
        m.update(2, b"instance two, gen two").unwrap();
        assert_eq!(m.pending_instances(), vec![1, 2]);
        assert_eq!(m.read(1).unwrap(), b"instance one, gen one");
        assert_eq!(m.read(2).unwrap(), b"instance two, gen one");
        assert_eq!(m.generation(1), Some(1));

        m.flush().unwrap();
        assert_eq!(m.pending_instances(), Vec::<u32>::new());
        assert_eq!(m.read(1).unwrap(), b"instance one, gen two");
        assert_eq!(m.read(2).unwrap(), b"instance two, gen two");
        assert_eq!(m.generation(1), Some(2));
        let io = m.io_stats();
        assert_eq!(io.staged_updates, 2);
        assert_eq!(io.batched_commits, 2);
        assert_eq!(io.flushes, 1);
        assert_eq!(m.nonce_reuses(), 0);
    }

    #[test]
    fn instance_threshold_reached_flushes_inline() {
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Cleartext, [0; 16]).unwrap();
        m.set_flush_policy(FlushPolicy::batched(0, 2, 0));
        m.update(1, b"a").unwrap();
        assert_eq!(m.pending_instances(), vec![1], "below threshold: staged");
        // The second staged instance trips max_batch_instances = 2.
        m.update(2, b"b").unwrap();
        assert_eq!(m.pending_instances(), Vec::<u32>::new());
        assert_eq!(m.read(1).unwrap(), b"a");
        assert_eq!(m.read(2).unwrap(), b"b");
        assert_eq!(m.io_stats().flushes, 1);
    }

    #[test]
    fn second_update_to_staged_region_commits_the_first() {
        // Only one staged generation may exist per region — the nonce
        // invariant `attempted <= committed + 1` depends on it.
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, [0x22; 16]).unwrap();
        m.enable_nonce_audit();
        m.set_flush_policy(FlushPolicy::batched(0, 8, 0));
        m.update(7, b"first staged generation").unwrap();
        assert_eq!(m.generation(7), Some(0), "still uncommitted");
        m.update(7, b"second staged generation").unwrap();
        assert_eq!(m.generation(7), Some(1), "restage published the first");
        m.flush().unwrap();
        assert_eq!(m.generation(7), Some(2));
        assert_eq!(m.read(7).unwrap(), b"second staged generation");
        assert_eq!(m.nonce_reuses(), 0);
    }

    #[test]
    fn flush_failure_keeps_staged_for_idempotent_retry() {
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, [0x23; 16]).unwrap();
        m.enable_nonce_audit();
        m.update(1, b"one committed").unwrap();
        m.update(2, b"two committed").unwrap();
        m.set_flush_policy(FlushPolicy::batched(0, 8, 0));
        m.update(1, b"one staged").unwrap();
        m.update(2, b"two staged").unwrap();

        // The flush commits id 1's metadata, then dies on id 2's: the
        // ascending-id prefix stands, the rest stays staged.
        hv.inject_write_crash(DomainId::DOM0, 1);
        assert!(m.flush().is_err());
        hv.clear_faults();
        assert_eq!(m.read(1).unwrap(), b"one staged");
        assert_eq!(m.read(2).unwrap(), b"two committed");
        assert_eq!(m.pending_instances(), vec![2]);

        // Retry is idempotent: the staged pages already landed, so the
        // commit rewrites identical metadata and consumes no new nonce.
        let data_before = m.io_stats().data_pages_written;
        m.flush().unwrap();
        assert_eq!(m.io_stats().data_pages_written, data_before);
        assert_eq!(m.read(2).unwrap(), b"two staged");
        assert_eq!(m.pending_instances(), Vec::<u32>::new());
        assert_eq!(m.nonce_reuses(), 0);
    }

    #[test]
    fn crash_with_staged_batch_recovers_committed_images() {
        // A staged-but-unflushed generation must be invisible to
        // recovery: the committed metadata still describes the old
        // image, and recovery's shadow-slot scrub erases the staged
        // bytes.
        let hv = hv();
        let key = [0x24; 16];
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, key).unwrap();
        m.update(3, b"durable image").unwrap();
        m.set_flush_policy(FlushPolicy::batched(0, 8, 0));
        m.update(3, b"STAGED-ONLY-SECRET-BYTES").unwrap();
        drop(m); // crash before any flush

        let (rec, report) = StateMirror::recover(Arc::clone(&hv), MirrorMode::Encrypted, key).unwrap();
        assert_eq!(report.recovered, vec![3]);
        assert_eq!(rec.read(3).unwrap(), b"durable image");
        let blob = dump_all(&hv);
        assert!(
            !contains(&blob, b"STAGED-ONLY-SECRET-BYTES"),
            "recovery must scrub staged shadow slots"
        );
    }

    #[test]
    fn discard_uncommitted_untracks_and_scrubs_a_never_committed_region() {
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Cleartext, [0; 16]).unwrap();
        // First-ever update dies mid-stage: the region is tracked but
        // generation 0 never committed.
        hv.inject_write_crash(DomainId::DOM0, 0);
        assert!(m.update(9, b"NEVER-COMMITTED-BYTES").is_err());
        hv.clear_faults();
        assert!(m.region_frames(9).is_some(), "failed first update leaves the region tracked");
        m.discard_uncommitted(9).unwrap();
        assert!(m.region_frames(9).is_none());
        assert!(!contains(&dump_all(&hv), b"NEVER-COMMITTED-BYTES"));
        // A committed region is left intact: discard only covers regions
        // whose metadata was never published.
        m.update(10, b"committed").unwrap();
        m.discard_uncommitted(10).unwrap();
        assert!(m.region_frames(10).is_some());
        assert_eq!(m.read(10).unwrap(), b"committed");
    }
}
