//! The manager's resident state image — the memory-dump target.
//!
//! A real vTPM manager keeps every instance's working state in its own
//! address space, which on the baseline system is ordinary Dom0 memory:
//! anything with Dom0 privileges (or a Dom0 memory-dump tool, per the
//! paper's abstract) reads the instances' EKs, SRKs, owner secrets in the
//! clear. This module makes that explicit: each instance's serialized
//! state is *mirrored* into simulated Dom0 frames after every mutation.
//!
//! * [`MirrorMode::Cleartext`] — baseline: the snapshot bytes go into the
//!   frames as-is.
//! * [`MirrorMode::Encrypted`] — the paper's AC3: the snapshot is
//!   AES-128-CTR-encrypted with a per-manager master key that lives only
//!   in a hypervisor-protected frame, so a dump yields ciphertext and no
//!   key.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use tpm_crypto::aes::AesCtr;
use xen_sim::{DomainId, Hypervisor, Result as XenResult, XenError, PAGE_SIZE};

/// How instance state is held in Dom0 memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MirrorMode {
    /// Baseline: cleartext resident image.
    Cleartext,
    /// Improved (AC3): encrypted resident image, key in protected memory.
    Encrypted,
}

struct Region {
    mfns: Vec<usize>,
    len: usize,
}

/// The mirror. One per manager.
///
/// Concurrency shape: the region table is read-mostly (`RwLock`); each
/// instance's region sits behind its own `Mutex`, so concurrent requests
/// to *different* instances mirror their state in parallel — the manager
/// hot path never funnels through a global lock.
pub struct StateMirror {
    hv: Arc<Hypervisor>,
    mode: MirrorMode,
    regions: RwLock<HashMap<u32, Arc<Mutex<Region>>>>,
    /// AES key (Encrypted mode). Also written to `key_frame` so the
    /// "protected memory" story is literal: the only in-simulation copy
    /// of the key sits in a frame the dump facility refuses to read.
    master_key: Option<[u8; 16]>,
    key_frame: Option<usize>,
}

impl StateMirror {
    /// Create a mirror; in `Encrypted` mode, `master_key` is stored in a
    /// freshly allocated hypervisor-protected Dom0 frame.
    pub fn new(hv: Arc<Hypervisor>, mode: MirrorMode, master_key: [u8; 16]) -> XenResult<Self> {
        let (key, key_frame) = match mode {
            MirrorMode::Cleartext => (None, None),
            MirrorMode::Encrypted => {
                let mfn = hv.alloc_pages(DomainId::DOM0, 1)?[0];
                hv.page_write(DomainId::DOM0, mfn, 0, &master_key)?;
                hv.protect_frame(DomainId::DOM0, mfn)?;
                (Some(master_key), Some(mfn))
            }
        };
        Ok(StateMirror {
            hv,
            mode,
            regions: RwLock::new(HashMap::new()),
            master_key: key,
            key_frame,
        })
    }

    /// The mode this mirror runs in.
    pub fn mode(&self) -> MirrorMode {
        self.mode
    }

    /// The protected key frame, if any (diagnostics/tests).
    pub fn key_frame(&self) -> Option<usize> {
        self.key_frame
    }

    /// The master key (crate-internal: the persistence layer seals it to
    /// the hardware TPM; it must never cross the crate boundary).
    pub(crate) fn master_key(&self) -> Option<[u8; 16]> {
        self.master_key
    }

    /// Fetch or create the per-instance region handle.
    fn region_handle(&self, id: u32) -> Arc<Mutex<Region>> {
        if let Some(r) = self.regions.read().get(&id) {
            return Arc::clone(r);
        }
        let mut table = self.regions.write();
        Arc::clone(
            table
                .entry(id)
                .or_insert_with(|| Arc::new(Mutex::new(Region { mfns: Vec::new(), len: 0 }))),
        )
    }

    /// Write `state` as instance `id`'s resident image, growing the
    /// backing region as needed. Takes only the instance's own lock.
    pub fn update(&self, id: u32, state: &[u8]) -> XenResult<()> {
        let image = match self.mode {
            MirrorMode::Cleartext => state.to_vec(),
            MirrorMode::Encrypted => {
                let key = self.master_key.as_ref().expect("encrypted mode has key");
                let mut buf = state.to_vec();
                // Per-instance nonce; CTR reuse across updates of the same
                // instance is acceptable for the *dump* threat model (the
                // attacker sees one resident image, not a ciphertext
                // history), and keeps the mirror allocation-stable.
                let mut nonce = [0u8; 8];
                nonce[..4].copy_from_slice(&id.to_be_bytes());
                AesCtr::new(key, nonce).apply_keystream(&mut buf);
                buf
            }
        };
        let handle = self.region_handle(id);
        let mut region = handle.lock();
        let needed_pages = (image.len() + 8).div_ceil(PAGE_SIZE);
        if region.mfns.len() < needed_pages {
            let extra = self.hv.alloc_pages(DomainId::DOM0, needed_pages - region.mfns.len())?;
            region.mfns.extend(extra);
        }
        region.len = image.len();
        // Length header then payload, page by page.
        let mut header = Vec::with_capacity(8 + image.len());
        header.extend_from_slice(&(image.len() as u64).to_be_bytes());
        header.extend_from_slice(&image);
        for (i, chunk) in header.chunks(PAGE_SIZE).enumerate() {
            self.hv.page_write(DomainId::DOM0, region.mfns[i], 0, chunk)?;
        }
        Ok(())
    }

    /// Read back instance `id`'s resident image (decrypting in Encrypted
    /// mode). This is the manager's own access path; the attacker reads
    /// the frames through the dump facility instead.
    pub fn read(&self, id: u32) -> XenResult<Vec<u8>> {
        let handle = self.regions.read().get(&id).cloned().ok_or(XenError::BadFrame)?;
        let region = handle.lock();
        if region.mfns.is_empty() {
            return Err(XenError::BadFrame);
        }
        let mut header = [0u8; 8];
        self.hv.page_read(DomainId::DOM0, region.mfns[0], 0, &mut header)?;
        let len = u64::from_be_bytes(header) as usize;
        if len != region.len {
            return Err(XenError::BadFrame);
        }
        let mut image = vec![0u8; len];
        let mut done = 0;
        for (i, mfn) in region.mfns.iter().enumerate() {
            if done >= len {
                break;
            }
            let offset = if i == 0 { 8 } else { 0 };
            let take = (PAGE_SIZE - offset).min(len - done);
            self.hv.page_read(DomainId::DOM0, *mfn, offset, &mut image[done..done + take])?;
            done += take;
        }
        if let MirrorMode::Encrypted = self.mode {
            let key = self.master_key.as_ref().expect("encrypted mode has key");
            let mut nonce = [0u8; 8];
            nonce[..4].copy_from_slice(&id.to_be_bytes());
            AesCtr::new(key, nonce).apply_keystream(&mut image);
        }
        Ok(image)
    }

    /// Drop instance `id`'s region, scrubbing its frames.
    pub fn remove(&self, id: u32) -> XenResult<()> {
        let handle = self.regions.write().remove(&id);
        if let Some(handle) = handle {
            let region = handle.lock();
            let zeros = [0u8; PAGE_SIZE];
            for &mfn in &region.mfns {
                self.hv.page_write(DomainId::DOM0, mfn, 0, &zeros)?;
            }
        }
        Ok(())
    }

    /// Frames backing instance `id` (tests/attack ground truth).
    pub fn region_frames(&self, id: u32) -> Option<Vec<usize>> {
        self.regions.read().get(&id).map(|r| r.lock().mfns.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hv() -> Arc<Hypervisor> {
        Arc::new(Hypervisor::boot(512, 8).unwrap())
    }

    fn contains(haystack: &[u8], needle: &[u8]) -> bool {
        !needle.is_empty() && haystack.windows(needle.len()).any(|w| w == needle)
    }

    fn dump_all(hv: &Hypervisor) -> Vec<u8> {
        let mut blob = Vec::new();
        for (_, _, page) in hv.dump_memory(DomainId::DOM0).unwrap() {
            blob.extend_from_slice(&page[..]);
        }
        blob
    }

    #[test]
    fn cleartext_mirror_roundtrip_and_dumpable() {
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Cleartext, [0; 16]).unwrap();
        let state = b"SRK-PRIME-MATERIAL-0123456789";
        m.update(7, state).unwrap();
        assert_eq!(m.read(7).unwrap(), state);
        // The baseline resident image leaks into the Dom0 dump.
        assert!(contains(&dump_all(&hv), state));
    }

    #[test]
    fn encrypted_mirror_roundtrip_and_not_dumpable() {
        let hv = hv();
        let key = [0xA5; 16];
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, key).unwrap();
        let state = b"SRK-PRIME-MATERIAL-0123456789";
        m.update(7, state).unwrap();
        // Manager path still reads cleartext.
        assert_eq!(m.read(7).unwrap(), state);
        let dump = dump_all(&hv);
        assert!(!contains(&dump, state), "ciphertext only in the dump");
        assert!(!contains(&dump, &key), "master key must not appear in the dump");
    }

    #[test]
    fn key_frame_is_protected() {
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, [1; 16]).unwrap();
        let kf = m.key_frame().unwrap();
        // The dump refuses the protected frame.
        let dump = hv.dump_memory(DomainId::DOM0).unwrap();
        assert!(dump.iter().all(|(mfn, _, _)| *mfn != kf));
    }

    #[test]
    fn multi_page_state() {
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Cleartext, [0; 16]).unwrap();
        let state: Vec<u8> = (0..3u32 * PAGE_SIZE as u32).map(|i| i as u8).collect();
        m.update(1, &state).unwrap();
        assert_eq!(m.read(1).unwrap(), state);
        // Shrink back down.
        m.update(1, b"tiny").unwrap();
        assert_eq!(m.read(1).unwrap(), b"tiny");
    }

    #[test]
    fn growth_after_initial_allocation() {
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Cleartext, [0; 16]).unwrap();
        m.update(1, b"small").unwrap();
        let before = m.region_frames(1).unwrap().len();
        let big = vec![7u8; 2 * PAGE_SIZE];
        m.update(1, &big).unwrap();
        assert!(m.region_frames(1).unwrap().len() > before);
        assert_eq!(m.read(1).unwrap(), big);
    }

    #[test]
    fn remove_scrubs_frames() {
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Cleartext, [0; 16]).unwrap();
        m.update(3, b"WIPE-ME-PLEASE").unwrap();
        m.remove(3).unwrap();
        assert!(!contains(&dump_all(&hv), b"WIPE-ME-PLEASE"));
        assert!(m.read(3).is_err());
    }

    #[test]
    fn distinct_instances_isolated() {
        let hv = hv();
        let m = StateMirror::new(Arc::clone(&hv), MirrorMode::Encrypted, [9; 16]).unwrap();
        m.update(1, b"instance-one").unwrap();
        m.update(2, b"instance-two").unwrap();
        assert_eq!(m.read(1).unwrap(), b"instance-one");
        assert_eq!(m.read(2).unwrap(), b"instance-two");
    }
}
