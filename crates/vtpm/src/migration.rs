//! vTPM migration between platforms.
//!
//! Moving a VM takes its vTPM with it. The instance state is the crown
//! jewels (EK/SRK privates, owner secrets), so how it crosses the wire
//! matters:
//!
//! * [`MigrationPackage::Clear`] — the baseline: raw state bytes, exactly
//!   as a naive `xm save`-style implementation ships them. Anything on
//!   the path (or a dump of either host during the window) reads them.
//! * [`MigrationPackage::Sealed`] — the improved protocol: state is
//!   AES-128-CTR-encrypted under a fresh session key, which is itself
//!   OAEP-encrypted to the *destination hardware TPM's EK* — so only a
//!   platform holding that physical TPM can open the package — plus a
//!   SHA-256 integrity digest.
//!
//! ## Session key and nonce are single-use
//!
//! The (session key, CTR nonce) pair of a sealed package must never be
//! reused for a second package: CTR mode under a repeated (key, nonce)
//! is a two-time pad — XOR of two ciphertexts is XOR of the two states.
//! [`package_sealed`] therefore draws a *fresh* key and nonce from the
//! caller's DRBG on every call, and callers must never cache or replay
//! a (key, nonce) pair across packages — retrying a failed transfer
//! means building a new package, not re-encrypting under the old pair.
//! `tests::nonces_and_session_keys_are_single_use` pins this down.

use tpm_crypto::aes::AesCtr;
use tpm_crypto::drbg::Drbg;
use tpm_crypto::rsa::{RsaPrivateKey, RsaPublicKey};
use tpm_crypto::sha256;

use tpm::buffer::{BufError, Reader, Writer};

/// A vTPM state package in transit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigrationPackage {
    /// Baseline: cleartext state.
    Clear(Vec<u8>),
    /// Improved: encrypted + destination-bound + integrity-protected.
    Sealed {
        /// Session key, OAEP-encrypted to the destination EK.
        enc_session_key: Vec<u8>,
        /// CTR nonce.
        nonce: [u8; 8],
        /// AES-128-CTR ciphertext of the state.
        ciphertext: Vec<u8>,
        /// SHA-256 of the plaintext state.
        digest: [u8; 32],
    },
}

/// Errors from package handling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationError {
    /// Session key failed to decrypt (wrong destination TPM).
    WrongDestination,
    /// Integrity digest mismatch (tampered in transit).
    Corrupted,
    /// Serialized package malformed.
    Malformed,
}

impl std::fmt::Display for MigrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrationError::WrongDestination => write!(f, "package not bound to this TPM"),
            MigrationError::Corrupted => write!(f, "package integrity check failed"),
            MigrationError::Malformed => write!(f, "malformed migration package"),
        }
    }
}

impl std::error::Error for MigrationError {}

/// Build a cleartext (baseline) package.
pub fn package_clear(state: &[u8]) -> MigrationPackage {
    MigrationPackage::Clear(state.to_vec())
}

/// Build a sealed package bound to `dst_ek`.
pub fn package_sealed(
    state: &[u8],
    dst_ek: &RsaPublicKey,
    rng: &mut Drbg,
) -> MigrationPackage {
    let mut session_key = [0u8; 16];
    rng.fill_bytes(&mut session_key);
    let mut nonce = [0u8; 8];
    rng.fill_bytes(&mut nonce);
    let mut ciphertext = state.to_vec();
    AesCtr::new(&session_key, nonce).apply_keystream(&mut ciphertext);
    let enc_session_key = dst_ek
        .encrypt_oaep(&session_key, b"TCPA", rng)
        .expect("16-byte key fits any supported EK size");
    MigrationPackage::Sealed { enc_session_key, nonce, ciphertext, digest: sha256(state) }
}

/// Open a package on the destination. `dst_ek_private` is the destination
/// hardware TPM's EK (in the full stack this decryption happens *inside*
/// that TPM; the key never leaves it).
pub fn open_package(
    package: &MigrationPackage,
    dst_ek_private: &RsaPrivateKey,
) -> Result<Vec<u8>, MigrationError> {
    match package {
        MigrationPackage::Clear(state) => Ok(state.clone()),
        MigrationPackage::Sealed { enc_session_key, nonce, ciphertext, digest } => {
            let key_bytes = dst_ek_private
                .decrypt_oaep(enc_session_key, b"TCPA")
                .map_err(|_| MigrationError::WrongDestination)?;
            let key: [u8; 16] =
                key_bytes.try_into().map_err(|_| MigrationError::WrongDestination)?;
            let mut state = ciphertext.clone();
            AesCtr::new(&key, *nonce).apply_keystream(&mut state);
            if &sha256(&state) != digest {
                return Err(MigrationError::Corrupted);
            }
            Ok(state)
        }
    }
}

/// Open a package with the destination platform's *hardware TPM*: the
/// session key is decrypted inside the TPM ([`tpm::Tpm::ek_decrypt_oaep`]),
/// so the EK private key never leaves it. This is the path real
/// destinations take; [`open_package`] with a bare [`RsaPrivateKey`] only
/// exists for tests that hold the key directly.
pub fn open_package_with_tpm(
    package: &MigrationPackage,
    hw: &tpm::Tpm,
) -> Result<Vec<u8>, MigrationError> {
    match package {
        MigrationPackage::Clear(s) => Ok(s.clone()),
        MigrationPackage::Sealed { enc_session_key, nonce, ciphertext, digest } => {
            let key_bytes = hw
                .ek_decrypt_oaep(enc_session_key)
                .map_err(|_| MigrationError::WrongDestination)?;
            let key: [u8; 16] =
                key_bytes.try_into().map_err(|_| MigrationError::WrongDestination)?;
            let mut state = ciphertext.clone();
            AesCtr::new(&key, *nonce).apply_keystream(&mut state);
            if &sha256(&state) != digest {
                return Err(MigrationError::Corrupted);
            }
            Ok(state)
        }
    }
}

impl MigrationPackage {
    /// Serialize for the wire.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            MigrationPackage::Clear(state) => {
                w.u8(0);
                w.sized_u32(state);
            }
            MigrationPackage::Sealed { enc_session_key, nonce, ciphertext, digest } => {
                w.u8(1);
                w.sized_u32(enc_session_key);
                w.bytes(nonce);
                w.sized_u32(ciphertext);
                w.bytes(digest);
            }
        }
        w.into_vec()
    }

    /// Parse from the wire. Trailing bytes after a well-formed package
    /// are rejected: a package is a complete wire object, and anything
    /// appended to it (smuggled payload, sloppy framing upstream) makes
    /// the whole blob malformed rather than silently ignored.
    pub fn decode(data: &[u8]) -> Result<Self, MigrationError> {
        let mut r = Reader::new(data);
        let kind = r.u8().map_err(|_: BufError| MigrationError::Malformed)?;
        let package = match kind {
            0 => MigrationPackage::Clear(
                r.sized_u32().map_err(|_| MigrationError::Malformed)?.to_vec(),
            ),
            1 => {
                let enc_session_key =
                    r.sized_u32().map_err(|_| MigrationError::Malformed)?.to_vec();
                let nonce: [u8; 8] = r
                    .bytes(8)
                    .map_err(|_| MigrationError::Malformed)?
                    .try_into()
                    .map_err(|_| MigrationError::Malformed)?;
                let ciphertext = r.sized_u32().map_err(|_| MigrationError::Malformed)?.to_vec();
                let digest: [u8; 32] = r
                    .bytes(32)
                    .map_err(|_| MigrationError::Malformed)?
                    .try_into()
                    .map_err(|_| MigrationError::Malformed)?;
                MigrationPackage::Sealed { enc_session_key, nonce, ciphertext, digest }
            }
            _ => return Err(MigrationError::Malformed),
        };
        if r.remaining() != 0 {
            return Err(MigrationError::Malformed);
        }
        Ok(package)
    }

    /// Whether the state bytes are visible in the serialized package
    /// (attack-surface probe used by experiments).
    pub fn exposes(&self, probe: &[u8]) -> bool {
        let bytes = self.encode();
        !probe.is_empty() && bytes.windows(probe.len()).any(|w| w == probe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ek() -> RsaPrivateKey {
        let mut rng = Drbg::new(b"dst-ek");
        RsaPrivateKey::generate(1024, &mut rng)
    }

    #[test]
    fn clear_package_roundtrip_and_leaks() {
        let state = b"EK-PRIVATE-PRIME-FACTORS";
        let p = package_clear(state);
        assert_eq!(open_package(&p, &ek()).unwrap(), state);
        assert!(p.exposes(state), "baseline package is cleartext");
    }

    #[test]
    fn sealed_package_roundtrip_and_hides() {
        let dst = ek();
        let mut rng = Drbg::new(b"mig");
        let state = b"EK-PRIVATE-PRIME-FACTORS";
        let p = package_sealed(state, &dst.public, &mut rng);
        assert!(!p.exposes(state), "sealed package must hide the state");
        assert_eq!(open_package(&p, &dst).unwrap(), state);
    }

    #[test]
    fn sealed_package_bound_to_destination() {
        let dst = ek();
        let mut rng = Drbg::new(b"mig2");
        let p = package_sealed(b"state", &dst.public, &mut rng);
        let mut other_rng = Drbg::new(b"other-ek");
        let other = RsaPrivateKey::generate(1024, &mut other_rng);
        assert_eq!(open_package(&p, &other), Err(MigrationError::WrongDestination));
    }

    #[test]
    fn tampered_ciphertext_detected() {
        let dst = ek();
        let mut rng = Drbg::new(b"mig3");
        let p = package_sealed(b"some vtpm state bytes", &dst.public, &mut rng);
        if let MigrationPackage::Sealed { enc_session_key, nonce, mut ciphertext, digest } = p {
            ciphertext[0] ^= 1;
            let tampered =
                MigrationPackage::Sealed { enc_session_key, nonce, ciphertext, digest };
            assert_eq!(open_package(&tampered, &dst), Err(MigrationError::Corrupted));
        } else {
            unreachable!();
        }
    }

    #[test]
    fn wire_roundtrip_both_kinds() {
        let dst = ek();
        let mut rng = Drbg::new(b"mig4");
        for p in [package_clear(b"abc"), package_sealed(b"abc", &dst.public, &mut rng)] {
            let bytes = p.encode();
            assert_eq!(MigrationPackage::decode(&bytes).unwrap(), p);
        }
        assert_eq!(MigrationPackage::decode(&[9]), Err(MigrationError::Malformed));
        assert_eq!(MigrationPackage::decode(&[]), Err(MigrationError::Malformed));
    }

    #[test]
    fn session_keys_are_fresh() {
        let dst = ek();
        let mut rng = Drbg::new(b"mig5");
        let p1 = package_sealed(b"s", &dst.public, &mut rng);
        let p2 = package_sealed(b"s", &dst.public, &mut rng);
        assert_ne!(p1, p2, "each migration uses a fresh session key/nonce");
    }

    #[test]
    fn nonces_and_session_keys_are_single_use() {
        // The single-use contract from the module docs: repeated
        // `package_sealed` calls — same state, same destination, same
        // DRBG — must never repeat a CTR nonce or a wrapped session
        // key. A repeat would turn CTR into a two-time pad.
        let dst = ek();
        let mut rng = Drbg::new(b"mig-nonce-freshness");
        let mut nonces = std::collections::HashSet::new();
        let mut keys = std::collections::HashSet::new();
        for _ in 0..16 {
            match package_sealed(b"identical state bytes", &dst.public, &mut rng) {
                MigrationPackage::Sealed { enc_session_key, nonce, .. } => {
                    assert!(nonces.insert(nonce), "CTR nonce reused across packages");
                    assert!(keys.insert(enc_session_key), "wrapped session key repeated");
                }
                MigrationPackage::Clear(_) => unreachable!(),
            }
        }
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let dst = ek();
        let mut rng = Drbg::new(b"mig-trailing");
        for p in [package_clear(b"abc"), package_sealed(b"abc", &dst.public, &mut rng)] {
            let mut bytes = p.encode();
            assert_eq!(MigrationPackage::decode(&bytes).unwrap(), p);
            bytes.push(0x00);
            assert_eq!(MigrationPackage::decode(&bytes), Err(MigrationError::Malformed));
            bytes.pop();
            bytes.extend_from_slice(b"smuggled");
            assert_eq!(MigrationPackage::decode(&bytes), Err(MigrationError::Malformed));
        }
    }

    #[test]
    fn sealed_package_bound_to_destination_hardware_tpm() {
        // The wrong-destination path through real hardware TPMs: a
        // package sealed to host A's EK opens inside A's TPM but is
        // refused by a *second* hardware TPM (host B), whose EK private
        // key simply cannot unwrap the session key.
        let cfg = tpm::TpmConfig::default();
        let tpm_a = tpm::Tpm::manufacture(b"hw-tpm-a", cfg.clone());
        let tpm_b = tpm::Tpm::manufacture(b"hw-tpm-b", cfg);
        let mut rng = Drbg::new(b"mig-two-hw");
        let state = b"EK-PRIVATE-PRIME-FACTORS";
        let p = package_sealed(state, &tpm_a.ek_public(), &mut rng);
        assert_eq!(open_package_with_tpm(&p, &tpm_a).unwrap(), state);
        assert_eq!(
            open_package_with_tpm(&p, &tpm_b),
            Err(MigrationError::WrongDestination)
        );
        // Clear packages open anywhere — the baseline has no binding.
        assert_eq!(open_package_with_tpm(&package_clear(state), &tpm_b).unwrap(), state);
    }
}
