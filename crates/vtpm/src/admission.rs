//! Per-domain admission control at ring ingress.
//!
//! The sentinel's deny-rate detector watches the same signal from the
//! outside: a domain whose requests are overwhelmingly denied is either
//! probing the access-control layer or runaway-broken, and every one of
//! its requests still costs the manager a decode, a hook evaluation, and
//! two transport hops. Admission control moves that cut to the front of
//! the pipeline: the manager feeds each request's outcome into a
//! per-domain deny-rate EWMA (the same α/threshold discipline the
//! sentinel uses), and once a domain trips the threshold its requests
//! are refused right after decode — before the hook runs — with
//! [`ResponseStatus::Throttled`](crate::transport::ResponseStatus).
//!
//! A throttled domain is not banished: every refused request decays the
//! EWMA, and once it falls below `threshold * release_ratio` the domain
//! is re-admitted. A cooperating guest that stops sending garbage
//! therefore recovers after a bounded number of refusals, while a
//! flooding attacker keeps itself throttled by its own traffic.
//!
//! The controller can also be tripped from outside via
//! [`AdmissionController::throttle`] — the harness bridges sentinel
//! deny-rate alerts into it, closing the loop the paper's architecture
//! draws between detection (sentinel) and enforcement (manager).
//!
//! Everything here is deterministic: `f64` EWMA arithmetic and
//! `BTreeMap` iteration give byte-identical replay under the chaos
//! harness.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Admission-control tuning. Disabled by default; the deny-rate
/// parameters mirror the sentinel's `SentinelConfig` defaults so both
/// layers judge a domain by the same standard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Master switch. Off by default: baseline experiments and the
    /// existing test matrix see no behaviour change.
    pub enabled: bool,
    /// EWMA smoothing factor for the per-domain deny rate.
    pub alpha: f64,
    /// Deny-rate level that trips the throttle.
    pub threshold: f64,
    /// Outcomes observed before a domain may trip (cold-start guard).
    pub min_samples: u64,
    /// Multiplier applied to the EWMA per *refused* request while
    /// throttled — refusals are how a throttled domain cools down.
    pub decay: f64,
    /// A throttled domain is released once its EWMA falls below
    /// `threshold * release_ratio` (hysteresis against flapping).
    pub release_ratio: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            enabled: false,
            alpha: 0.2,
            threshold: 0.9,
            min_samples: 8,
            decay: 0.9,
            release_ratio: 0.5,
        }
    }
}

/// A request refused at ring ingress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionError {
    /// The throttled source domain.
    pub domain: u32,
    /// Its deny-rate EWMA at refusal time, in thousandths (integer so
    /// the error stays `Eq` and log lines stay deterministic).
    pub deny_rate_milli: u32,
}

/// Per-domain admission state.
#[derive(Debug, Clone, Copy, Default)]
struct DomainState {
    /// Deny-rate EWMA over this domain's outcomes.
    ewma: f64,
    /// Outcomes observed (cold-start guard).
    samples: u64,
    /// Whether the domain is currently refused at ingress.
    throttled: bool,
    /// Requests refused while throttled (diagnostics).
    refused: u64,
}

/// The per-domain admission controller. One per manager; all methods
/// take `&self` and are safe from any worker thread.
pub struct AdmissionController {
    cfg: AdmissionConfig,
    domains: Mutex<BTreeMap<u32, DomainState>>,
    refused_total: AtomicU64,
    throttle_events: AtomicU64,
}

impl AdmissionController {
    pub fn new(cfg: AdmissionConfig) -> Self {
        AdmissionController {
            cfg,
            domains: Mutex::new(BTreeMap::new()),
            refused_total: AtomicU64::new(0),
            throttle_events: AtomicU64::new(0),
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Gate a request from `domain` at ring ingress. `Ok` admits it;
    /// `Err` refuses it before any hook or TPM work. Each refusal decays
    /// the domain's EWMA, so a throttled domain that keeps (or stops)
    /// sending eventually crosses the release level and is re-admitted.
    pub fn admit(&self, domain: u32) -> Result<(), AdmissionError> {
        if !self.cfg.enabled {
            return Ok(());
        }
        let mut domains = self.domains.lock();
        let state = domains.entry(domain).or_default();
        if !state.throttled {
            return Ok(());
        }
        state.ewma *= self.cfg.decay;
        if state.ewma < self.cfg.threshold * self.cfg.release_ratio {
            state.throttled = false;
            return Ok(());
        }
        state.refused += 1;
        self.refused_total.fetch_add(1, Ordering::Relaxed);
        Err(AdmissionError {
            domain,
            deny_rate_milli: (state.ewma * 1000.0) as u32,
        })
    }

    /// Feed one admitted request's outcome back into `domain`'s EWMA
    /// (`denied` = the access hook denied it). Trips the throttle when
    /// the rate crosses the threshold after the cold-start window.
    pub fn record_outcome(&self, domain: u32, denied: bool) {
        if !self.cfg.enabled {
            return;
        }
        let mut domains = self.domains.lock();
        let state = domains.entry(domain).or_default();
        let x = if denied { 1.0 } else { 0.0 };
        state.ewma = self.cfg.alpha * x + (1.0 - self.cfg.alpha) * state.ewma;
        state.samples += 1;
        if !state.throttled && state.samples >= self.cfg.min_samples && state.ewma > self.cfg.threshold
        {
            state.throttled = true;
            self.throttle_events.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Trip the throttle for `domain` from outside — the sentinel
    /// bridge. The EWMA is latched at 1.0 so release still requires the
    /// full decay run; the cold-start guard is considered satisfied (an
    /// external detector already saw enough evidence). Returns whether
    /// this call newly latched the domain (false when disabled or
    /// already throttled).
    pub fn throttle(&self, domain: u32) -> bool {
        if !self.cfg.enabled {
            return false;
        }
        let mut domains = self.domains.lock();
        let state = domains.entry(domain).or_default();
        let newly = !state.throttled;
        if newly {
            state.throttled = true;
            self.throttle_events.fetch_add(1, Ordering::Relaxed);
        }
        state.ewma = 1.0;
        state.samples = state.samples.max(self.cfg.min_samples);
        newly
    }

    /// Whether `domain` is currently refused at ingress.
    pub fn is_throttled(&self, domain: u32) -> bool {
        self.domains.lock().get(&domain).map(|s| s.throttled).unwrap_or(false)
    }

    /// `domain`'s current deny-rate EWMA (diagnostics).
    pub fn deny_rate(&self, domain: u32) -> f64 {
        self.domains.lock().get(&domain).map(|s| s.ewma).unwrap_or(0.0)
    }

    /// Total requests refused at ingress.
    pub fn refused_total(&self) -> u64 {
        self.refused_total.load(Ordering::Relaxed)
    }

    /// Times any domain transitioned into the throttled state.
    pub fn throttle_events(&self) -> u64 {
        self.throttle_events.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn on() -> AdmissionConfig {
        AdmissionConfig { enabled: true, ..Default::default() }
    }

    #[test]
    fn disabled_controller_admits_everything() {
        let ac = AdmissionController::new(AdmissionConfig::default());
        for _ in 0..100 {
            ac.record_outcome(1, true);
            assert!(ac.admit(1).is_ok());
        }
        assert_eq!(ac.throttle_events(), 0);
    }

    #[test]
    fn sustained_denials_trip_then_refusals_decay_to_release() {
        let ac = AdmissionController::new(on());
        // All-denied traffic trips after the cold-start window.
        let mut tripped_at = None;
        for i in 0..32 {
            assert!(ac.admit(7).is_ok(), "not yet tripped at outcome {i}");
            ac.record_outcome(7, true);
            if ac.is_throttled(7) {
                tripped_at = Some(i);
                break;
            }
        }
        let tripped_at = tripped_at.expect("all-denied domain must trip");
        assert!(tripped_at + 1 >= on().min_samples as usize);
        assert_eq!(ac.throttle_events(), 1);

        // Refusals decay the EWMA until release; then admission resumes.
        let mut refusals = 0;
        while let Err(e) = ac.admit(7) {
            assert_eq!(e.domain, 7);
            refusals += 1;
            assert!(refusals < 100, "decay must release in bounded refusals");
        }
        assert!(refusals > 0);
        assert!(!ac.is_throttled(7));
        assert_eq!(ac.refused_total(), refusals);
    }

    #[test]
    fn clean_traffic_never_trips_and_domains_are_independent() {
        let ac = AdmissionController::new(on());
        for _ in 0..100 {
            ac.record_outcome(1, false);
            ac.record_outcome(2, true);
        }
        assert!(ac.admit(1).is_ok());
        assert!(!ac.is_throttled(1));
        assert!(ac.admit(2).is_err(), "domain 2's denials are its own");
    }

    #[test]
    fn external_throttle_latches_full_decay_run() {
        let ac = AdmissionController::new(on());
        ac.throttle(3);
        assert!(ac.is_throttled(3));
        assert!(ac.admit(3).is_err());
        assert!((ac.deny_rate(3) - 1.0 * on().decay).abs() < 1e-9);
        // Repeated throttle calls don't double-count events.
        ac.throttle(3);
        assert_eq!(ac.throttle_events(), 1);
    }
}
