//! The split driver: `tpmfront` in the guest, `tpmback` in Dom0.
//!
//! Wire-up follows the Xen device handshake: the toolstack provisions
//! XenStore nodes for both ends; the frontend allocates ring pages from
//! its own memory, grants them to Dom0, allocates an unbound event
//! channel and publishes everything in its device directory; the backend
//! reads those nodes, maps the grants, binds the channel, and serves.
//!
//! Because the ring pages are guest memory mapped into Dom0, every
//! command and response transits dumpable RAM — the `scrub` flag (part of
//! the improved configuration) wipes consumed messages behind itself.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tpm::Transport;
use xen_sim::{
    ByteRing, DomainId, Endpoint, GrantAccess, GrantRef, Hypervisor, PageRegion, Perms,
    Result as XenResult, RingDir, RingFault, XenError,
};

use crate::instance::InstanceId;
use crate::manager::VtpmManager;
use crate::transport::{Envelope, ResponseEnvelope, ResponseStatus};

/// Ring pages per device.
const RING_PAGES: usize = 2;

/// Synthesized TPM error body returned when the transport/manager refuses
/// a request (TPM_FAIL).
pub const VTPM_FAIL_RC: u32 = 9;

fn backend_dir(guest: DomainId) -> String {
    format!("/local/domain/0/backend/vtpm/{}/0", guest.0)
}

fn frontend_dir(guest: DomainId) -> String {
    format!("/local/domain/{}/device/vtpm/0", guest.0)
}

/// Toolstack step: create the XenStore scaffolding binding `guest` to
/// `instance`. Dom0-only.
pub fn provision_device(
    hv: &Hypervisor,
    guest: DomainId,
    instance: InstanceId,
) -> XenResult<()> {
    let bdir = backend_dir(guest);
    hv.xs_write(DomainId::DOM0, &format!("{bdir}/frontend-id"), guest.0.to_string().as_bytes())?;
    hv.xs_write(DomainId::DOM0, &format!("{bdir}/instance"), instance.to_string().as_bytes())?;
    hv.xs_write(DomainId::DOM0, &format!("{bdir}/state"), b"2")?;
    // The guest must be able to read its backend dir (to learn the
    // instance number), as in real Xen.
    hv.xs_set_perms(
        DomainId::DOM0,
        &bdir,
        Perms { owner: DomainId::DOM0, readers: vec![guest], writers: vec![] },
    )?;
    for leaf in ["frontend-id", "instance", "state"] {
        hv.xs_set_perms(
            DomainId::DOM0,
            &format!("{bdir}/{leaf}"),
            Perms { owner: DomainId::DOM0, readers: vec![guest], writers: vec![] },
        )?;
    }
    Ok(())
}

/// The guest-side driver. Implements [`tpm::Transport`], so a
/// [`tpm::TpmClient`] inside the guest drives its vTPM exactly as it
/// would a hardware chip.
pub struct TpmFront {
    hv: Arc<Hypervisor>,
    /// The guest this frontend runs in.
    pub domain: DomainId,
    /// The instance the device is bound to (from XenStore at connect).
    pub instance: InstanceId,
    ring: ByteRing,
    port: Endpoint,
    grants: Vec<GrantRef>,
    /// AC1 credential, provisioned by the domain builder outside XenStore.
    credential: Option<Vec<u8>>,
    /// Scrub responses from the ring after reading (improved hygiene).
    pub scrub: bool,
    seq: u64,
    next_msg_id: u32,
    /// How long to wait for the backend before giving up.
    pub timeout: Duration,
}

impl TpmFront {
    /// Connect the frontend: allocate ring pages, grant them, publish the
    /// device nodes. Call after [`provision_device`].
    pub fn connect(hv: Arc<Hypervisor>, domain: DomainId) -> XenResult<Self> {
        let bdir = backend_dir(domain);
        let instance: InstanceId = hv
            .xs_read_string(domain, &format!("{bdir}/instance"))?
            .parse()
            .map_err(|_| XenError::BadImage("instance number"))?;

        let mfns = hv.alloc_pages(domain, RING_PAGES)?;
        let ring = ByteRing::new(PageRegion::new(mfns.clone()))?;
        hv.with_memory_mut(|m| ring.init(m))?;
        let mut grants = Vec::with_capacity(RING_PAGES);
        for &mfn in &mfns {
            grants.push(hv.grant(domain, DomainId::DOM0, mfn, GrantAccess::ReadWrite)?);
        }
        let port = hv.events.alloc_unbound(domain, DomainId::DOM0);

        let fdir = frontend_dir(domain);
        for (i, g) in grants.iter().enumerate() {
            hv.xs_write(domain, &format!("{fdir}/ring-ref{i}"), g.slot.to_string().as_bytes())?;
        }
        hv.xs_write(domain, &format!("{fdir}/event-channel"), port.port.to_string().as_bytes())?;
        hv.xs_write(domain, &format!("{fdir}/state"), b"3")?;

        Ok(TpmFront {
            hv,
            domain,
            instance,
            ring,
            port,
            grants,
            credential: None,
            scrub: false,
            seq: 0,
            next_msg_id: 1,
            timeout: Duration::from_secs(10),
        })
    }

    /// Install the AC1 credential (done by the domain builder in the
    /// improved configuration — never via XenStore).
    pub fn set_credential(&mut self, key: Vec<u8>) {
        self.credential = Some(key);
    }

    /// Whether a credential is installed.
    pub fn has_credential(&self) -> bool {
        self.credential.is_some()
    }

    /// Current sequence number (next request uses seq+1).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Build the envelope for `command` without sending it (attack tooling
    /// reuses this to craft variants).
    pub fn build_envelope(&mut self, command: &[u8]) -> Envelope {
        self.seq += 1;
        let e = Envelope {
            domain: self.domain.0,
            instance: self.instance,
            seq: self.seq,
            locality: 0,
            tag: None,
            command: command.to_vec(),
        };
        match &self.credential {
            Some(key) => e.sign(key),
            None => e,
        }
    }

    /// Send a pre-built envelope and await the enveloped response.
    pub fn transact_envelope(&mut self, envelope: &Envelope) -> XenResult<ResponseEnvelope> {
        let id = self.next_msg_id;
        self.next_msg_id += 1;
        let bytes = envelope.encode();
        self.hv.with_memory_mut(|m| self.ring.write_msg(m, RingDir::FrontToBack, id, &bytes))?;
        self.hv.events.notify(self.port)?;

        let deadline = std::time::Instant::now() + self.timeout;
        loop {
            let msg = self.hv.with_memory_mut(|m| {
                if self.scrub {
                    self.ring.read_msg_scrub(m, RingDir::BackToFront)
                } else {
                    self.ring.read_msg(m, RingDir::BackToFront)
                }
            })?;
            if let Some((rid, payload)) = msg {
                if rid != id {
                    // Stale response from an aborted exchange; drop it.
                    continue;
                }
                return ResponseEnvelope::decode(&payload)
                    .map_err(|_| XenError::BadImage("response envelope"));
            }
            if std::time::Instant::now() >= deadline {
                return Err(XenError::BadPort);
            }
            // Block until the backend signals, then re-check.
            let _ = self.hv.events.wait(self.port, Duration::from_millis(10))?;
        }
    }

    /// Tear down: revoke grants (best effort) and close the channel.
    pub fn disconnect(self) {
        let _ = self.hv.events.close(self.port);
        for g in self.grants {
            let _ = self.hv.grant_revoke(g, self.domain);
        }
    }
}

impl Transport for TpmFront {
    fn transact(&mut self, cmd: &[u8]) -> Vec<u8> {
        let envelope = self.build_envelope(cmd);
        match self.transact_envelope(&envelope) {
            Ok(resp) if resp.status == ResponseStatus::Ok => resp.body,
            _ => {
                // Synthesize a TPM error so TpmClient surfaces a uniform
                // ClientError::Tpm(VTPM_FAIL_RC).
                let mut out = Vec::with_capacity(10);
                out.extend_from_slice(&0x00C4u16.to_be_bytes());
                out.extend_from_slice(&10u32.to_be_bytes());
                out.extend_from_slice(&VTPM_FAIL_RC.to_be_bytes());
                out
            }
        }
    }
}

/// The Dom0-side driver: maps the ring, binds the channel, and forwards
/// requests into the manager.
pub struct TpmBack {
    hv: Arc<Hypervisor>,
    manager: Arc<VtpmManager>,
    /// The frontend's domain (authoritative source identity).
    pub guest: DomainId,
    ring: ByteRing,
    port: Endpoint,
    /// The frontend's ring grants, as mapped at connect (held so a
    /// revocation fault can sever them the way a dying guest would).
    grants: Vec<GrantRef>,
    /// Scrub consumed requests from the ring (improved hygiene).
    pub scrub: bool,
}

impl TpmBack {
    /// Connect to `guest`'s published frontend.
    pub fn connect(
        hv: Arc<Hypervisor>,
        manager: Arc<VtpmManager>,
        guest: DomainId,
    ) -> XenResult<Self> {
        let fdir = frontend_dir(guest);
        let mut mfns = Vec::with_capacity(RING_PAGES);
        let mut grants = Vec::with_capacity(RING_PAGES);
        for i in 0..RING_PAGES {
            let slot: u32 = hv
                .xs_read_string(DomainId::DOM0, &format!("{fdir}/ring-ref{i}"))?
                .parse()
                .map_err(|_| XenError::BadImage("ring-ref"))?;
            let gref = GrantRef { granter: guest, slot };
            mfns.push(hv.grant_map(gref, DomainId::DOM0)?);
            grants.push(gref);
        }
        let ring = ByteRing::new(PageRegion::new(mfns))?;
        let fport: u32 = hv
            .xs_read_string(DomainId::DOM0, &format!("{fdir}/event-channel"))?
            .parse()
            .map_err(|_| XenError::BadImage("event-channel"))?;
        let port =
            hv.events.bind_interdomain(DomainId::DOM0, Endpoint { domain: guest, port: fport })?;
        hv.xs_write(DomainId::DOM0, &format!("{}/state", backend_dir(guest)), b"4")?;
        Ok(TpmBack { hv, manager, guest, ring, port, grants, scrub: false })
    }

    /// Re-point this backend at a different manager — the manager
    /// crash/restart path. The ring mappings and the event channel live
    /// in the (simulated) kernel and survive a manager-process restart;
    /// only the service behind them is replaced, so the guest's frontend
    /// never reconnects. Pair with [`VtpmManager::recover`].
    pub fn rebind(self, manager: Arc<VtpmManager>) -> TpmBack {
        TpmBack { manager, ..self }
    }

    /// Drain and answer every queued request; returns how many were served.
    pub fn serve_pending(&self) -> XenResult<usize> {
        let mut served = 0;
        loop {
            let msg = self.hv.with_memory_mut(|m| {
                if self.scrub {
                    self.ring.read_msg_scrub(m, RingDir::FrontToBack)
                } else {
                    self.ring.read_msg(m, RingDir::FrontToBack)
                }
            })?;
            let (id, payload) = match msg {
                Some(m) => m,
                None => break,
            };
            let fault = self.hv.take_ring_fault();
            if let Some(RingFault::RevokeGrants) = fault {
                // The guest yanked its ring grants mid-exchange (domain
                // teardown, a hostile balloon). Sever our mappings and
                // stop serving; the request is lost with the ring.
                for &gref in &self.grants {
                    let _ = self.hv.grant_unmap(gref, DomainId::DOM0);
                    let _ = self.hv.grant_revoke(gref, self.guest);
                }
                return Err(XenError::Injected("ring grants revoked"));
            }
            // The manager is told the *actual* source domain — ring
            // ownership is the one identity Dom0 can always trust.
            let response = self.manager.handle(self.guest, &payload);
            // Ring-level accounting: one exchange, payload bytes each
            // way. Recorded at the backend (not in `handle`) so direct
            // manager calls don't count phantom ring traffic.
            if let Some(t) = self.manager.telemetry() {
                t.note_ring_exchange(payload.len() as u64, response.len() as u64);
            }
            match fault {
                // Response lost on the ring: the command took effect but
                // the guest never hears back and will see a timeout.
                Some(RingFault::Drop) => {}
                // Response delivered twice (spurious event/requeue). The
                // frontend must drop the stale copy by message id.
                Some(RingFault::Duplicate) => {
                    for _ in 0..2 {
                        self.hv.with_memory_mut(|m| {
                            self.ring.write_msg(m, RingDir::BackToFront, id, &response)
                        })?;
                    }
                    self.hv.events.notify(self.port)?;
                }
                Some(RingFault::RevokeGrants) => unreachable!("handled above"),
                None => {
                    self.hv.with_memory_mut(|m| {
                        self.ring.write_msg(m, RingDir::BackToFront, id, &response)
                    })?;
                    self.hv.events.notify(self.port)?;
                }
            }
            served += 1;
        }
        Ok(served)
    }

    /// Serve until `shutdown` is set. Designed to run on its own thread.
    pub fn run(&self, shutdown: &AtomicBool) {
        while !shutdown.load(Ordering::Relaxed) {
            match self.hv.events.wait(self.port, Duration::from_millis(10)) {
                Ok(_) => {
                    if self.serve_pending().is_err() {
                        break;
                    }
                }
                Err(_) => break, // channel closed: frontend gone
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::ManagerConfig;
    use tpm::TpmClient;
    use xen_sim::DomainConfig;

    fn platform() -> (Arc<Hypervisor>, Arc<VtpmManager>) {
        let hv = Arc::new(Hypervisor::boot(4096, 16).unwrap());
        let mgr = Arc::new(
            VtpmManager::new(Arc::clone(&hv), b"device-test", ManagerConfig::default()).unwrap(),
        );
        (hv, mgr)
    }

    fn launch(
        hv: &Arc<Hypervisor>,
        mgr: &Arc<VtpmManager>,
        name: &str,
    ) -> (DomainId, TpmFront, TpmBack) {
        let guest = hv
            .create_domain(DomainId::DOM0, DomainConfig { memory_pages: 32, ..DomainConfig::small(name) })
            .unwrap();
        let instance = mgr.create_instance().unwrap();
        provision_device(hv, guest, instance).unwrap();
        let front = TpmFront::connect(Arc::clone(hv), guest).unwrap();
        let back = TpmBack::connect(Arc::clone(hv), Arc::clone(mgr), guest).unwrap();
        (guest, front, back)
    }

    #[test]
    fn end_to_end_startup_over_ring() {
        let (hv, mgr) = platform();
        let (_guest, mut front, back) = launch(&hv, &mgr, "g1");

        // Drive the backend on a thread so the frontend's blocking wait is
        // exercised for real.
        let shutdown = Arc::new(AtomicBool::new(false));
        let sd = Arc::clone(&shutdown);
        let t = std::thread::spawn(move || {
            back.run(&sd);
        });

        let mut client = TpmClient::new(&mut front, b"guest-client");
        client.startup_clear().unwrap();
        let random = client.get_random(16).unwrap();
        assert_eq!(random.len(), 16);

        shutdown.store(true, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(mgr.stats.snapshot().0, 2);
    }

    #[test]
    fn frontend_reads_instance_from_xenstore() {
        let (hv, mgr) = platform();
        let (_g, front, _back) = launch(&hv, &mgr, "g1");
        assert_eq!(front.instance, 1);
    }

    #[test]
    fn two_guests_two_instances() {
        let (hv, mgr) = platform();
        let (_g1, mut f1, b1) = launch(&hv, &mgr, "g1");
        let (_g2, mut f2, b2) = launch(&hv, &mgr, "g2");
        assert_ne!(f1.instance, f2.instance);

        let shutdown = Arc::new(AtomicBool::new(false));
        let t1 = {
            let sd = Arc::clone(&shutdown);
            std::thread::spawn(move || b1.run(&sd))
        };
        let t2 = {
            let sd = Arc::clone(&shutdown);
            std::thread::spawn(move || b2.run(&sd))
        };

        let mut c1 = TpmClient::new(&mut f1, b"c1");
        let mut c2 = TpmClient::new(&mut f2, b"c2");
        c1.startup_clear().unwrap();
        c2.startup_clear().unwrap();
        // Each guest extends its own vTPM; values must be independent.
        c1.extend(0, &[1; 20]).unwrap();
        let v1 = c1.pcr_read(0).unwrap();
        let v2 = c2.pcr_read(0).unwrap();
        assert_ne!(v1, v2);
        assert_eq!(v2, [0; 20]);

        shutdown.store(true, Ordering::Relaxed);
        t1.join().unwrap();
        t2.join().unwrap();
    }

    #[test]
    fn ring_traffic_is_dumpable_without_scrub() {
        let (hv, mgr) = platform();
        let (_g, mut front, back) = launch(&hv, &mgr, "g1");
        // Serve synchronously (no thread) for determinism.
        let marker = vec![0xC1u8, 0x5E, 0xC2, 0xE7, 0x5E, 0xC2, 0xE7, 0x99];
        let env = front.build_envelope(&marker);
        let bytes = env.encode();
        hv.with_memory_mut(|m| front.ring.write_msg(m, RingDir::FrontToBack, 42, &bytes))
            .unwrap();
        back.serve_pending().unwrap();
        // The request bytes linger in the (guest-owned, Dom0-mapped) ring.
        let mut dump = Vec::new();
        for (_, _, page) in hv.dump_memory(DomainId::DOM0).unwrap() {
            dump.extend_from_slice(&page[..]);
        }
        assert!(dump.windows(marker.len()).any(|w| w == marker.as_slice()));
    }

    #[test]
    fn scrubbing_backend_wipes_requests() {
        let (hv, mgr) = platform();
        let (_g, mut front, mut back) = launch(&hv, &mgr, "g1");
        back.scrub = true;
        let marker = vec![0xC1u8, 0x5E, 0xC2, 0xE7, 0x5E, 0xC2, 0xE7, 0x98];
        let env = front.build_envelope(&marker);
        let bytes = env.encode();
        hv.with_memory_mut(|m| front.ring.write_msg(m, RingDir::FrontToBack, 42, &bytes))
            .unwrap();
        back.serve_pending().unwrap();
        let mut dump = Vec::new();
        for (_, _, page) in hv.dump_memory(DomainId::DOM0).unwrap() {
            dump.extend_from_slice(&page[..]);
        }
        assert!(!dump.windows(marker.len()).any(|w| w == marker.as_slice()));
    }

    #[test]
    fn tagged_envelopes_flow_through() {
        let (hv, mgr) = platform();
        let (_g, mut front, back) = launch(&hv, &mgr, "g1");
        front.set_credential(b"guest-credential".to_vec());
        assert!(front.has_credential());

        let shutdown = Arc::new(AtomicBool::new(false));
        let sd = Arc::clone(&shutdown);
        let t = std::thread::spawn(move || back.run(&sd));

        // StockHook ignores tags, so tagged traffic still succeeds.
        let mut client = TpmClient::new(&mut front, b"c");
        client.startup_clear().unwrap();
        shutdown.store(true, Ordering::Relaxed);
        t.join().unwrap();
    }

    #[test]
    fn dropped_response_times_out_but_command_took_effect() {
        let (hv, mgr) = platform();
        let (_g, mut front, back) = launch(&hv, &mgr, "g1");
        front.timeout = Duration::from_millis(300);

        let shutdown = Arc::new(AtomicBool::new(false));
        let sd = Arc::clone(&shutdown);
        let t = std::thread::spawn(move || back.run(&sd));

        let mut client = TpmClient::new(&mut front, b"c");
        client.startup_clear().unwrap();

        hv.inject_ring_fault(xen_sim::RingFault::Drop);
        // The response is lost: the guest sees a failure...
        assert!(client.extend(2, &[0x42; 20]).is_err());
        // ...but the command executed before the response was dropped, so
        // the PCR moved — exactly the ambiguity a lost ring message
        // creates on real hardware.
        let v = client.pcr_read(2).unwrap();
        assert_ne!(v, [0u8; 20]);

        shutdown.store(true, Ordering::Relaxed);
        t.join().unwrap();
    }

    #[test]
    fn duplicated_response_is_dropped_as_stale() {
        let (hv, mgr) = platform();
        let (_g, mut front, back) = launch(&hv, &mgr, "g1");

        let shutdown = Arc::new(AtomicBool::new(false));
        let sd = Arc::clone(&shutdown);
        let t = std::thread::spawn(move || back.run(&sd));

        let mut client = TpmClient::new(&mut front, b"c");
        client.startup_clear().unwrap();

        hv.inject_ring_fault(xen_sim::RingFault::Duplicate);
        client.extend(1, &[0x07; 20]).unwrap();
        // The duplicate copy lingers in the ring; the next exchange must
        // skip it by message id and still complete correctly.
        let v = client.pcr_read(1).unwrap();
        assert_ne!(v, [0u8; 20]);
        assert_eq!(v, client.pcr_read(1).unwrap());

        shutdown.store(true, Ordering::Relaxed);
        t.join().unwrap();
    }

    #[test]
    fn revoked_grants_stop_the_backend() {
        let (hv, mgr) = platform();
        let (_g, mut front, back) = launch(&hv, &mgr, "g1");
        let env = front.build_envelope(&[0x00, 0xC1, 0, 0, 0, 12, 0, 0, 0, 0x99, 0, 1]);
        let bytes = env.encode();
        hv.with_memory_mut(|m| front.ring.write_msg(m, RingDir::FrontToBack, 7, &bytes))
            .unwrap();
        hv.inject_ring_fault(xen_sim::RingFault::RevokeGrants);
        match back.serve_pending() {
            Err(XenError::Injected(_)) => {}
            other => panic!("expected injected revocation error, got {other:?}"),
        }
        // The grants really are gone: a fresh backend cannot re-map them.
        assert!(TpmBack::connect(Arc::clone(&hv), Arc::clone(&mgr), front.domain).is_err());
    }

    #[test]
    fn rebind_survives_manager_restart() {
        let (hv, mgr) = platform();
        let (_g, mut front, back) = launch(&hv, &mgr, "g1");

        {
            let shutdown = Arc::new(AtomicBool::new(false));
            let sd = Arc::clone(&shutdown);
            let t = std::thread::spawn(move || {
                back.run(&sd);
                back
            });
            let mut client = TpmClient::new(&mut front, b"c");
            client.startup_clear().unwrap();
            client.extend(4, &[0x33; 20]).unwrap();
            shutdown.store(true, Ordering::Relaxed);
            let back = t.join().unwrap();

            // Manager process dies; recover from Dom0 frames and re-point
            // the surviving backend at the new manager.
            drop(mgr);
            let (rec, report) = VtpmManager::recover(
                Arc::clone(&hv),
                b"device-test",
                ManagerConfig::default(),
            )
            .unwrap();
            assert_eq!(report.resumed.len(), 1);
            let back = back.rebind(Arc::new(rec));

            let shutdown = Arc::new(AtomicBool::new(false));
            let sd = Arc::clone(&shutdown);
            let t = std::thread::spawn(move || back.run(&sd));
            // Same frontend, same ring, same channel: the guest resumes
            // where it left off, state intact.
            let mut client = TpmClient::new(&mut front, b"c");
            let v = client.pcr_read(4).unwrap();
            assert_ne!(v, [0u8; 20]);
            shutdown.store(true, Ordering::Relaxed);
            t.join().unwrap();
        }
    }

    #[test]
    fn sequence_numbers_increase() {
        let (hv, mgr) = platform();
        let (_g, mut front, _back) = launch(&hv, &mgr, "g1");
        let e1 = front.build_envelope(b"a");
        let e2 = front.build_envelope(b"b");
        assert!(e2.seq > e1.seq);
    }
}
