//! Persistence of the instance database, rooted in the hardware TPM.
//!
//! The manager must survive host reboots: every instance's state is
//! written to a database blob ("disk"). In the improved configuration the
//! entries are encrypted under the mirror master key, and that key is
//! **sealed to the hardware TPM's SRK** — the database is useless without
//! this physical platform (and, when PCR-bound, without this software
//! stack). The baseline writes cleartext entries, which is one more place
//! instance secrets leak.

use std::sync::Arc;

use tpm_crypto::aes::Aes128;

use tpm::buffer::{Reader, Writer};
use tpm::{handle, DirectTransport, SealedBlob, Tpm, TpmClient};
use xen_sim::Hypervisor;

use crate::instance::VtpmInstance;
use crate::manager::{ManagerConfig, VtpmManager};
use crate::mirror::MirrorMode;

const MAGIC: &[u8; 4] = b"VDB1";

/// The fixed data-auth secret protecting the sealed master key. In a
/// production deployment this would be operator-supplied; a well-known
/// constant is fine here because the sealing TPM's SRK is what actually
/// gates access.
pub const DB_KEY_AUTH: [u8; 20] = [0x5A; 20];

/// Errors from persistence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// Database bytes malformed.
    Malformed,
    /// The hardware TPM refused to unseal the master key (wrong platform
    /// or changed PCRs).
    Unseal,
    /// An instance snapshot inside the database failed to restore.
    BadInstance(u32),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Malformed => write!(f, "malformed vTPM database"),
            PersistError::Unseal => write!(f, "hardware TPM refused to release the master key"),
            PersistError::BadInstance(id) => write!(f, "instance {id} failed to restore"),
        }
    }
}

impl std::error::Error for PersistError {}

/// Per-entry CTR nonce: instance id, then a domain-separation tag so the
/// persistence stream can never collide with mirror page nonces.
fn entry_nonce(id: u32) -> [u8; 8] {
    let mut nonce = [0u8; 8];
    nonce[..4].copy_from_slice(&id.to_be_bytes());
    nonce[4..].copy_from_slice(b"PERS");
    nonce
}

/// Serialize the manager's instance database.
///
/// `hw_tpm` + `srk_auth` are used (encrypted mode only) to seal the
/// master key; the returned blob is self-contained.
pub fn persist(
    manager: &VtpmManager,
    hw_tpm: &mut Tpm,
    srk_auth: &[u8; 20],
) -> Result<Vec<u8>, PersistError> {
    let mut w = Writer::with_capacity(4096);
    w.bytes(MAGIC);
    let mode = manager.mirror_mode();
    w.u8(matches!(mode, MirrorMode::Encrypted) as u8);

    let master_key = manager.mirror_master_key();
    if let MirrorMode::Encrypted = mode {
        let key = master_key.expect("encrypted mode has key");
        let mut client = TpmClient::new(DirectTransport { tpm: hw_tpm, locality: 0 }, b"persist");
        let sealed = client
            .seal(handle::SRK, srk_auth, &DB_KEY_AUTH, None, &key)
            .map_err(|_| PersistError::Unseal)?;
        w.sized_u32(&sealed.encode());
    }

    // One key-schedule expansion for the whole database walk.
    let db_cipher = master_key.map(|key| Aes128::new(&key));
    let ids = manager.instance_ids();
    w.u32(ids.len() as u32);
    for id in ids {
        let state = manager.export_instance_state(id).ok_or(PersistError::BadInstance(id))?;
        let payload = match &db_cipher {
            None => state,
            Some(cipher) => {
                let mut buf = state;
                cipher.ctr_xor_at(&entry_nonce(id), &mut buf, 0);
                buf
            }
        };
        w.u32(id);
        w.sized_u32(&payload);
    }
    Ok(w.into_vec())
}

/// Rebuild a manager from a database blob on (possibly another boot of)
/// the same platform. The hardware TPM must be the one the key was sealed
/// to.
pub fn restore(
    hv: Arc<Hypervisor>,
    seed: &[u8],
    cfg: ManagerConfig,
    db: &[u8],
    hw_tpm: &mut Tpm,
    srk_auth: &[u8; 20],
) -> Result<VtpmManager, PersistError> {
    let mut r = Reader::new(db);
    if r.bytes(4).map_err(|_| PersistError::Malformed)? != MAGIC {
        return Err(PersistError::Malformed);
    }
    let encrypted = r.u8().map_err(|_| PersistError::Malformed)? != 0;

    let master_key: Option<[u8; 16]> = if encrypted {
        let blob_bytes = r.sized_u32().map_err(|_| PersistError::Malformed)?;
        let (sealed, _) = SealedBlob::decode(blob_bytes).map_err(|_| PersistError::Malformed)?;
        let mut client = TpmClient::new(DirectTransport { tpm: hw_tpm, locality: 0 }, b"restore");
        let key_bytes = client
            .unseal(handle::SRK, srk_auth, &DB_KEY_AUTH, &sealed)
            .map_err(|_| PersistError::Unseal)?;
        Some(key_bytes.try_into().map_err(|_| PersistError::Unseal)?)
    } else {
        None
    };

    let mode = if encrypted { MirrorMode::Encrypted } else { MirrorMode::Cleartext };
    let cfg = ManagerConfig { mirror_mode: mode, ..cfg };
    let manager = match master_key {
        Some(key) => VtpmManager::with_master_key(hv, seed, cfg, key)
            .map_err(|_| PersistError::Malformed)?,
        None => VtpmManager::new(hv, seed, cfg).map_err(|_| PersistError::Malformed)?,
    };

    let db_cipher = master_key.map(|key| Aes128::new(&key));
    let n = r.u32().map_err(|_| PersistError::Malformed)?;
    for _ in 0..n {
        let id = r.u32().map_err(|_| PersistError::Malformed)?;
        let payload = r.sized_u32().map_err(|_| PersistError::Malformed)?;
        let state = match &db_cipher {
            Some(cipher) => {
                let mut buf = payload.to_vec();
                cipher.ctr_xor_at(&entry_nonce(id), &mut buf, 0);
                buf
            }
            None => payload.to_vec(),
        };
        let instance =
            VtpmInstance::from_state(id, &state, seed, manager.config().vtpm_config.clone())
                .map_err(|_| PersistError::BadInstance(id))?;
        manager.restore_instance(id, instance).map_err(|_| PersistError::BadInstance(id))?;
    }
    Ok(manager)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{Envelope, ResponseEnvelope, ResponseStatus};
    use xen_sim::DomainId;

    const OWNER: [u8; 20] = [1; 20];
    const SRK_AUTH: [u8; 20] = [2; 20];

    fn hw_tpm() -> Tpm {
        let mut t = Tpm::new(b"hw-tpm");
        let mut c = TpmClient::new(DirectTransport { tpm: &mut t, locality: 0 }, b"boot");
        c.startup_clear().unwrap();
        c.take_ownership(&OWNER, &SRK_AUTH).unwrap();
        t
    }

    fn manager(mode: MirrorMode) -> (Arc<Hypervisor>, VtpmManager) {
        let hv = Arc::new(Hypervisor::boot(4096, 8).unwrap());
        let mgr = VtpmManager::new(
            Arc::clone(&hv),
            b"persist-test",
            ManagerConfig { mirror_mode: mode, ..Default::default() },
        )
        .unwrap();
        (hv, mgr)
    }

    fn startup_env(instance: u32) -> Vec<u8> {
        Envelope {
            domain: 1,
            instance,
            seq: 1,
            locality: 0,
            tag: None,
            command: vec![0x00, 0xC1, 0, 0, 0, 12, 0, 0, 0, 0x99, 0, 1],
        }
        .encode()
    }

    #[test]
    fn encrypted_db_roundtrip() {
        let (_hv, mgr) = manager(MirrorMode::Encrypted);
        let id1 = mgr.create_instance().unwrap();
        let id2 = mgr.create_instance().unwrap();
        mgr.handle(DomainId(1), &startup_env(id1));
        mgr.with_instance(id1, |i| i.tpm.pcrs_mut().extend(3, &[7; 20]).unwrap()).unwrap();
        let pcr3 = mgr.with_instance(id1, |i| i.tpm.pcrs().read(3).unwrap()).unwrap();
        let state_probe = mgr.export_instance_state(id1).unwrap();

        let mut hw = hw_tpm();
        let db = persist(&mgr, &mut hw, &SRK_AUTH).unwrap();
        // Encrypted DB must not contain raw instance state.
        assert!(
            !db.windows(64).any(|w| w == &state_probe[..64]),
            "encrypted database must not expose instance state"
        );

        // Restore onto a fresh host.
        let hv2 = Arc::new(Hypervisor::boot(4096, 8).unwrap());
        let mgr2 = restore(
            hv2,
            b"persist-test",
            ManagerConfig::default(),
            &db,
            &mut hw,
            &SRK_AUTH,
        )
        .unwrap();
        assert_eq!(mgr2.instance_ids(), vec![id1, id2]);
        assert_eq!(mgr2.with_instance(id1, |i| i.tpm.pcrs().read(3).unwrap()).unwrap(), pcr3);
        // New instances don't collide with restored ids.
        let id3 = mgr2.create_instance().unwrap();
        assert!(id3 > id2);
    }

    #[test]
    fn cleartext_db_exposes_state() {
        let (_hv, mgr) = manager(MirrorMode::Cleartext);
        let id = mgr.create_instance().unwrap();
        let state = mgr.export_instance_state(id).unwrap();
        let mut hw = hw_tpm();
        let db = persist(&mgr, &mut hw, &SRK_AUTH).unwrap();
        assert!(db.windows(64).any(|w| w == &state[..64]), "baseline DB is cleartext");
    }

    #[test]
    fn restore_requires_the_sealing_tpm() {
        let (_hv, mgr) = manager(MirrorMode::Encrypted);
        mgr.create_instance().unwrap();
        let mut hw = hw_tpm();
        let db = persist(&mgr, &mut hw, &SRK_AUTH).unwrap();

        // A different hardware TPM cannot release the key.
        let mut other = Tpm::new(b"other-hw");
        let mut c = TpmClient::new(DirectTransport { tpm: &mut other, locality: 0 }, b"b");
        c.startup_clear().unwrap();
        c.take_ownership(&OWNER, &SRK_AUTH).unwrap();
        let hv2 = Arc::new(Hypervisor::boot(1024, 8).unwrap());
        assert_eq!(
            restore(hv2, b"persist-test", ManagerConfig::default(), &db, &mut other, &SRK_AUTH)
                .err(),
            Some(PersistError::Unseal)
        );
    }

    #[test]
    fn restored_instances_serve_requests() {
        let (_hv, mgr) = manager(MirrorMode::Encrypted);
        let id = mgr.create_instance().unwrap();
        let mut hw = hw_tpm();
        let db = persist(&mgr, &mut hw, &SRK_AUTH).unwrap();
        let hv2 = Arc::new(Hypervisor::boot(1024, 8).unwrap());
        let mgr2 =
            restore(hv2, b"persist-test", ManagerConfig::default(), &db, &mut hw, &SRK_AUTH)
                .unwrap();
        let resp = mgr2.handle(DomainId(1), &startup_env(id));
        assert_eq!(ResponseEnvelope::decode(&resp).unwrap().status, ResponseStatus::Ok);
    }

    #[test]
    fn garbage_db_rejected() {
        let hv = Arc::new(Hypervisor::boot(256, 8).unwrap());
        let mut hw = hw_tpm();
        assert_eq!(
            restore(hv, b"s", ManagerConfig::default(), b"junk", &mut hw, &SRK_AUTH).err(),
            Some(PersistError::Malformed)
        );
    }

    #[test]
    fn empty_manager_roundtrip() {
        let (_hv, mgr) = manager(MirrorMode::Encrypted);
        let mut hw = hw_tpm();
        let db = persist(&mgr, &mut hw, &SRK_AUTH).unwrap();
        let hv2 = Arc::new(Hypervisor::boot(256, 8).unwrap());
        let mgr2 =
            restore(hv2, b"persist-test", ManagerConfig::default(), &db, &mut hw, &SRK_AUTH)
                .unwrap();
        assert!(mgr2.instance_ids().is_empty());
    }
}
