//! The vTPM manager: the Dom0 service that owns every vTPM instance,
//! routes guest commands to them, and holds their state.
//!
//! The manager is deliberately concurrency-first: instances live behind
//! individual `parking_lot::Mutex`es inside an N-way sharded routing
//! table, so requests for *different* instances execute on different
//! cores with no shared lock on the hot path, and create/destroy churn
//! locks only the id's shard instead of one global table lock (per the
//! session's concurrency guides — one lock per resource, never a global
//! lock around work).
//!
//! Two further scale mechanisms ride on that shape: the mirror's
//! group-commit pipeline (see [`crate::mirror`] and
//! [`ManagerConfig::flush_policy`]) coalesces many instances' metadata
//! commits into batched flush passes, and per-domain admission control
//! ([`crate::admission`]) refuses traffic from persistently denied
//! domains at ring ingress, before any hook or TPM work is spent on it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use tpm::{command_cost_ns, ordinal_of, TpmConfig};
use xen_sim::{DomainId, Hypervisor, Result as XenResult};

use vtpm_telemetry::{MetricsSnapshot, Outcome, Span, Telemetry};

use crate::admission::{AdmissionConfig, AdmissionController};
use crate::hook::{AccessDecision, AccessHook, RequestContext, StockHook};
use crate::instance::{InstanceId, VtpmInstance};
use crate::mirror::{FlushPolicy, MirrorMode, StateMirror};
use crate::transport::{Envelope, ResponseEnvelope, ResponseStatus};

/// Manager configuration.
#[derive(Clone)]
pub struct ManagerConfig {
    /// How instance state is held resident (AC3 switch).
    pub mirror_mode: MirrorMode,
    /// Config for the virtual TPMs this manager manufactures.
    pub vtpm_config: TpmConfig,
    /// Virtual nanoseconds charged per request for the transport hop
    /// (ring copy + event channel + context switch), per direction.
    pub transport_cost_ns: u64,
    /// Whether to charge the modelled hardware-TPM command cost to the
    /// virtual clock (true for experiments reporting virtual time).
    pub charge_virtual_time: bool,
    /// Runtime switch for the telemetry registry (spans, histograms,
    /// span ring). Has no effect when the `telemetry` feature is
    /// compiled out; with the feature on but this false, the manager
    /// mints no spans and `telemetry()` returns None.
    pub telemetry_enabled: bool,
    /// Span-ring slots per stripe (16 stripes). Small values let tests
    /// provoke exact, countable overflow.
    pub telemetry_span_capacity: usize,
    /// Group-commit flush policy for the state mirror. The default
    /// (per-command) commits every update inline, byte-identical to the
    /// unbatched pipeline; batched policies defer metadata commits to
    /// coalesced flush passes.
    pub flush_policy: FlushPolicy,
    /// Per-domain admission control at ring ingress (default: disabled).
    pub admission: AdmissionConfig,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            mirror_mode: MirrorMode::Cleartext,
            vtpm_config: TpmConfig::default(),
            transport_cost_ns: 15_000, // ~15µs per hop, typical split-driver cost
            charge_virtual_time: true,
            telemetry_enabled: true,
            telemetry_span_capacity: vtpm_telemetry::DEFAULT_SPAN_CAPACITY,
            flush_policy: FlushPolicy::per_command(),
            admission: AdmissionConfig::default(),
        }
    }
}

/// Aggregate manager statistics (all atomics: updated lock-free from any
/// worker).
#[derive(Default)]
pub struct ManagerStats {
    /// Requests that reached an instance and executed.
    pub handled: AtomicU64,
    /// Requests denied by the access hook.
    pub denied: AtomicU64,
    /// Requests that failed before dispatch (bad envelope / no instance).
    pub errors: AtomicU64,
    /// Handled requests that left the TPM's permanent state untouched, so
    /// the serialize + mirror step was skipped outright.
    pub mirror_skipped: AtomicU64,
    /// Mirror updates that failed after a successful TPM mutation (host
    /// memory exhaustion or an injected fault). The mirror is stale until
    /// the next successful refresh; a crash in that window loses the
    /// unmirrored mutations.
    pub mirror_failures: AtomicU64,
    /// Requests refused at ring ingress by per-domain admission control.
    pub throttled: AtomicU64,
    /// Total finished requests — the snapshot coherence epoch. Every
    /// request bumps exactly one outcome counter (handled / denied /
    /// errors / throttled) and then this, with `Release`, so
    /// [`VtpmManager::stats_snapshot`] can reject torn reads.
    pub finished: AtomicU64,
}

impl ManagerStats {
    /// Snapshot (handled, denied, errors).
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.handled.load(Ordering::Relaxed),
            self.denied.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
        )
    }

    /// Count one finished request: its outcome counter first, then the
    /// `finished` epoch (the order the snapshot's conservation check
    /// relies on).
    fn finish_one(&self, outcome: &AtomicU64) {
        outcome.fetch_add(1, Ordering::Relaxed);
        self.finished.fetch_add(1, Ordering::Release);
    }
}

/// One coherent operator-facing view of the manager's counters,
/// including the mirror hygiene counters that used to be reachable only
/// through [`VtpmManager::mirror_io_stats`]. Produced by
/// [`VtpmManager::stats_snapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManagerStatsSnapshot {
    /// Requests that reached an instance and executed.
    pub handled: u64,
    /// Requests denied by the access hook.
    pub denied: u64,
    /// Requests that failed before dispatch (bad envelope / no instance).
    pub errors: u64,
    /// Handled requests whose serialize + mirror step was skipped.
    pub mirror_skipped: u64,
    /// Mirror updates that failed after a successful TPM mutation.
    pub mirror_failures: u64,
    /// Post-commit hygiene scrubs that failed (stale slot bytes linger).
    pub scrub_failures: u64,
    /// Mirror updates that had to durably burn generations consumed by a
    /// failed earlier attempt before committing (retries after failure).
    pub retried_generation_burns: u64,
    /// Requests refused at ring ingress by admission control.
    pub throttled: u64,
    /// Total finished requests. The snapshot is coherent:
    /// `handled + denied + errors + throttled == finished` holds for
    /// every snapshot, even ones taken mid-load.
    pub finished: u64,
}

/// Shards in the striped instance-routing table (a power of two: ids
/// map to shards with a mask).
const INSTANCE_SHARDS: usize = 64;

/// The N-way sharded routing table. Lookup on the hot path takes one
/// shard's read lock; create/destroy take one shard's write lock — so
/// mass instance churn on a consolidation host stops serializing on a
/// single global table lock.
struct InstanceTable {
    shards: Vec<RwLock<HashMap<InstanceId, Arc<Mutex<VtpmInstance>>>>>,
}

impl InstanceTable {
    fn new() -> Self {
        InstanceTable {
            shards: (0..INSTANCE_SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, id: InstanceId) -> &RwLock<HashMap<InstanceId, Arc<Mutex<VtpmInstance>>>> {
        &self.shards[id as usize & (INSTANCE_SHARDS - 1)]
    }

    fn get(&self, id: InstanceId) -> Option<Arc<Mutex<VtpmInstance>>> {
        self.shard(id).read().get(&id).cloned()
    }

    fn insert(&self, id: InstanceId, instance: Arc<Mutex<VtpmInstance>>) {
        self.shard(id).write().insert(id, instance);
    }

    fn remove(&self, id: InstanceId) -> Option<Arc<Mutex<VtpmInstance>>> {
        self.shard(id).write().remove(&id)
    }

    /// Every routed id, ascending.
    fn ids(&self) -> Vec<InstanceId> {
        let mut v: Vec<InstanceId> = self
            .shards
            .iter()
            .flat_map(|s| s.read().keys().copied().collect::<Vec<_>>())
            .collect();
        v.sort_unstable();
        v
    }
}

/// The manager.
pub struct VtpmManager {
    hv: Arc<Hypervisor>,
    seed: Vec<u8>,
    cfg: ManagerConfig,
    hook: RwLock<Arc<dyn AccessHook>>,
    instances: InstanceTable,
    mirror: StateMirror,
    admission: AdmissionController,
    next_instance: AtomicU32,
    /// Aggregate statistics.
    pub stats: ManagerStats,
    /// Telemetry registry (None when disabled at runtime). Compiled out
    /// entirely without the `telemetry` feature.
    #[cfg(feature = "telemetry")]
    telemetry: Option<Arc<Telemetry>>,
}

/// Build the registry a fresh manager should carry, honouring both the
/// compile-time feature and the runtime config switch.
#[cfg(feature = "telemetry")]
fn make_telemetry(cfg: &ManagerConfig) -> Option<Arc<Telemetry>> {
    cfg.telemetry_enabled
        .then(|| Arc::new(Telemetry::with_span_capacity(cfg.telemetry_span_capacity)))
}

impl VtpmManager {
    /// Stand up a manager on `hv`. The mirror master key is derived from
    /// the seed (in the full platform it is unsealed from the hardware
    /// TPM at boot — see `persist`).
    pub fn new(hv: Arc<Hypervisor>, seed: &[u8], cfg: ManagerConfig) -> XenResult<Self> {
        Self::with_master_key(hv, seed, cfg, Self::derive_master_key(seed))
    }

    /// The mirror master key a manager booted from `seed` uses. Public so
    /// the crash/restart path can re-derive it: recovery rebuilds the
    /// manager from the Dom0 mirror frames alone, and the key is the one
    /// secret that must come from outside those frames.
    pub fn derive_master_key(seed: &[u8]) -> [u8; 16] {
        let key_material = tpm_crypto::sha256(&[seed, b"/mirror-master-key"].concat());
        key_material[..16].try_into().expect("16 bytes")
    }

    /// Stand up a manager with an explicit master key (the restore path,
    /// where the key was just unsealed from the hardware TPM).
    pub fn with_master_key(
        hv: Arc<Hypervisor>,
        seed: &[u8],
        cfg: ManagerConfig,
        master_key: [u8; 16],
    ) -> XenResult<Self> {
        let mirror = StateMirror::new(Arc::clone(&hv), cfg.mirror_mode, master_key)?;
        mirror.set_flush_policy(cfg.flush_policy);
        Ok(VtpmManager {
            hv,
            seed: seed.to_vec(),
            #[cfg(feature = "telemetry")]
            telemetry: make_telemetry(&cfg),
            admission: AdmissionController::new(cfg.admission),
            cfg,
            hook: RwLock::new(Arc::new(StockHook)),
            instances: InstanceTable::new(),
            mirror,
            next_instance: AtomicU32::new(1),
            stats: ManagerStats::default(),
        })
    }

    /// Rebuild a manager from the Dom0 mirror frames alone — the crash/
    /// restart path. The old manager process is gone; all that survives
    /// is simulated machine memory. Recovery re-derives the master key
    /// from the seed (in the full platform: unseals it from the hardware
    /// TPM), scans Dom0 memory for committed mirror regions, restores
    /// each instance's TPM from its decrypted image, and resumes serving
    /// the original instance ids so in-flight guests reconnect.
    ///
    /// The caller re-installs its access hook; hooks hold host policy,
    /// not guest state, and are not part of the mirrored image.
    pub fn recover(
        hv: Arc<Hypervisor>,
        seed: &[u8],
        cfg: ManagerConfig,
    ) -> XenResult<(Self, RecoveryReport)> {
        let master_key = Self::derive_master_key(seed);
        let (mirror, mirror_report) =
            StateMirror::recover(Arc::clone(&hv), cfg.mirror_mode, master_key)?;
        mirror.set_flush_policy(cfg.flush_policy);
        let mgr = VtpmManager {
            hv,
            seed: seed.to_vec(),
            #[cfg(feature = "telemetry")]
            telemetry: make_telemetry(&cfg),
            admission: AdmissionController::new(cfg.admission),
            cfg,
            hook: RwLock::new(Arc::new(StockHook)),
            instances: InstanceTable::new(),
            mirror,
            next_instance: AtomicU32::new(1),
            stats: ManagerStats::default(),
        };
        let mut report = RecoveryReport {
            resumed: Vec::new(),
            failed: Vec::new(),
            mirror: mirror_report,
        };
        for id in mgr.mirror.instance_ids() {
            let Ok(state) = mgr.mirror.read(id) else {
                report.failed.push(id);
                continue;
            };
            match VtpmInstance::from_state(id, &state, &mgr.seed, mgr.cfg.vtpm_config.clone()) {
                Ok(mut instance) => {
                    // The mirror is current by construction — the image
                    // just came from it.
                    instance.mirrored_generation = instance.tpm.state_generation();
                    mgr.instances.insert(id, Arc::new(Mutex::new(instance)));
                    mgr.next_instance.fetch_max(id + 1, Ordering::Relaxed);
                    report.resumed.push(id);
                }
                Err(_) => report.failed.push(id),
            }
        }
        Ok((mgr, report))
    }

    /// Install an access hook (the improved layer); replaces the current
    /// one atomically.
    pub fn set_hook(&self, hook: Arc<dyn AccessHook>) {
        *self.hook.write() = hook;
    }

    /// Name of the active hook.
    pub fn hook_name(&self) -> String {
        self.hook.read().name().to_string()
    }

    /// The manager's configuration.
    pub fn config(&self) -> &ManagerConfig {
        &self.cfg
    }

    /// The hypervisor this manager runs on.
    pub fn hypervisor(&self) -> &Arc<Hypervisor> {
        &self.hv
    }

    /// The telemetry registry, when the `telemetry` feature is compiled
    /// in and [`ManagerConfig::telemetry_enabled`] is set. Statically
    /// `None` otherwise, so instrumentation guarded on it folds away.
    #[inline]
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        #[cfg(feature = "telemetry")]
        {
            self.telemetry.as_ref()
        }
        #[cfg(not(feature = "telemetry"))]
        {
            None
        }
    }

    /// One coherent snapshot of the whole registry, with the mirror
    /// hygiene and nonce-audit counters folded in as auxiliary gauges.
    /// None when telemetry is off (either switch).
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        let t = self.telemetry()?;
        let io = self.mirror.io_stats();
        Some(t.snapshot_with_aux(&[
            ("mirror_updates", io.updates),
            ("mirror_clean_updates", io.clean_updates),
            ("mirror_data_pages_written", io.data_pages_written),
            ("mirror_pages_scrubbed", io.pages_scrubbed),
            ("mirror_bytes_written", io.bytes_written),
            ("mirror_scrub_failures", io.scrub_failures),
            ("mirror_retried_generation_burns", io.retried_generation_burns),
            ("mirror_staged_updates", io.staged_updates),
            ("mirror_batched_commits", io.batched_commits),
            ("mirror_flushes", io.flushes),
            ("mirror_skipped", self.stats.mirror_skipped.load(Ordering::Relaxed)),
            ("mirror_failures", self.stats.mirror_failures.load(Ordering::Relaxed)),
            ("nonce_reuses", self.mirror.nonce_reuses()),
            ("admission_refused", self.admission.refused_total()),
            ("admission_throttle_events", self.admission.throttle_events()),
        ]))
    }

    /// Coherent operator-facing counters: the manager's own atomics plus
    /// the mirror's hygiene counters (scrub failures, retry burns).
    ///
    /// The outcome counters are read seqlock-style against the
    /// `finished` epoch: a snapshot is only returned when `finished`
    /// was stable across the reads *and* the outcomes sum to it, so
    /// `handled + denied + errors + throttled == finished` holds for
    /// every snapshot — independent `Relaxed` loads used to let a
    /// mid-command snapshot violate that conservation.
    pub fn stats_snapshot(&self) -> ManagerStatsSnapshot {
        let io = self.mirror.io_stats();
        loop {
            let f0 = self.stats.finished.load(Ordering::Acquire);
            let handled = self.stats.handled.load(Ordering::Relaxed);
            let denied = self.stats.denied.load(Ordering::Relaxed);
            let errors = self.stats.errors.load(Ordering::Relaxed);
            let throttled = self.stats.throttled.load(Ordering::Relaxed);
            let f1 = self.stats.finished.load(Ordering::Acquire);
            if f0 == f1 && handled + denied + errors + throttled == f0 {
                return ManagerStatsSnapshot {
                    handled,
                    denied,
                    errors,
                    throttled,
                    finished: f0,
                    mirror_skipped: self.stats.mirror_skipped.load(Ordering::Relaxed),
                    mirror_failures: self.stats.mirror_failures.load(Ordering::Relaxed),
                    scrub_failures: io.scrub_failures,
                    retried_generation_burns: io.retried_generation_burns,
                };
            }
            // A writer is between its outcome bump and the epoch bump —
            // a two-instruction window; spin until the world is still.
            std::hint::spin_loop();
        }
    }

    /// The per-domain admission controller (diagnostics and the
    /// sentinel→manager enforcement bridge).
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// Publish every staged mirror generation now — the explicit
    /// group-commit point (no-op under the per-command policy).
    pub fn flush_mirror(&self) -> XenResult<()> {
        self.mirror.flush()
    }

    /// Instance ids with a staged, unflushed mirror generation.
    pub fn pending_mirror_instances(&self) -> Vec<InstanceId> {
        self.mirror.pending_instances()
    }

    /// Swap the mirror's flush policy at runtime (benchmarks compare
    /// per-command vs batched on one world). Updates staged under the
    /// old policy flush on the next mutation or explicit
    /// [`flush_mirror`](Self::flush_mirror).
    pub fn set_flush_policy(&self, policy: FlushPolicy) {
        self.mirror.set_flush_policy(policy);
    }

    /// Mirror a brand-new instance's first image, scrubbing and
    /// untracking the region if the update fails partway. Without the
    /// cleanup a failed first update leaked a tracked region with
    /// part-written frames: never routed, never scrubbed, and in the
    /// way of any later instance reusing the id.
    fn mirror_initial(&self, id: InstanceId, state: &[u8]) -> XenResult<()> {
        self.mirror.update(id, state).map_err(|e| {
            let _ = self.mirror.discard_uncommitted(id);
            e
        })?;
        Ok(())
    }

    /// Create a fresh vTPM instance; returns its id.
    pub fn create_instance(&self) -> XenResult<InstanceId> {
        let id = self.next_instance.fetch_add(1, Ordering::Relaxed);
        let mut instance = VtpmInstance::new(id, &self.seed, self.cfg.vtpm_config.clone());
        let state = instance.tpm.serialize_state();
        self.mirror_initial(id, &state)?;
        instance.mirrored_generation = instance.tpm.state_generation();
        self.instances.insert(id, Arc::new(Mutex::new(instance)));
        Ok(id)
    }

    /// Register an instance built elsewhere (migration arrival).
    pub fn adopt_instance(&self, instance: VtpmInstance) -> XenResult<InstanceId> {
        let id = self.next_instance.fetch_add(1, Ordering::Relaxed);
        let mut instance = instance;
        instance.id = id;
        let state = instance.tpm.serialize_state();
        self.mirror_initial(id, &state)?;
        instance.mirrored_generation = instance.tpm.state_generation();
        self.instances.insert(id, Arc::new(Mutex::new(instance)));
        Ok(id)
    }

    /// Re-insert an instance under its original id (restore path). The id
    /// counter is advanced past it so future ids never collide.
    pub fn restore_instance(&self, id: InstanceId, mut instance: VtpmInstance) -> XenResult<()> {
        instance.id = id;
        let state = instance.tpm.serialize_state();
        self.mirror_initial(id, &state)?;
        instance.mirrored_generation = instance.tpm.state_generation();
        self.instances.insert(id, Arc::new(Mutex::new(instance)));
        self.next_instance.fetch_max(id + 1, Ordering::Relaxed);
        Ok(())
    }

    /// Remove an instance, scrubbing its resident image.
    ///
    /// Ordering matters: the instance is unrouted (removed from the
    /// table) and tombstoned (`destroyed`, set under its lock) *before*
    /// the mirror is scrubbed. Requests that cloned the handle earlier
    /// must wait for the lock and then observe the tombstone, so no
    /// concurrent mutation can re-mirror state after the scrub and leave
    /// an orphaned resident image in Dom0 frames; taking the table write
    /// lock up front also makes concurrent destroys race safely (one
    /// wins, the other sees `false`). If the scrub fails (injected
    /// fault, host trouble) the instance is re-registered and stays
    /// usable — its mirror region is likewise retained for a re-scrub on
    /// retry — instead of losing state or leaking frames.
    ///
    /// Sharding does not weaken the ordering: all three steps touch only
    /// the id's own shard, and the shard's write lock serializes racing
    /// destroys of the same id exactly as the global lock did.
    pub fn destroy_instance(&self, id: InstanceId) -> XenResult<bool> {
        let Some(handle) = self.instances.remove(id) else {
            return Ok(false);
        };
        let mut instance = handle.lock();
        instance.destroyed = true;
        if let Err(e) = self.mirror.remove(id) {
            instance.destroyed = false;
            drop(instance);
            self.instances.insert(id, handle);
            return Err(e);
        }
        Ok(true)
    }

    /// Freeze (or thaw) an instance for live migration. While quiesced,
    /// guest requests through [`handle`](Self::handle) are refused with
    /// `NoInstance`; toolstack access via
    /// [`with_instance`](Self::with_instance) keeps working so the
    /// migration driver can export the frozen state. Returns `false` if
    /// the instance does not exist (or was destroyed).
    ///
    /// The flag lives in volatile manager memory: a crashed-and-recovered
    /// manager comes back with every instance thawed, and the migration
    /// driver must re-quiesce from its durable journal before the guest
    /// can race in a command.
    pub fn set_quiesced(&self, id: InstanceId, quiesced: bool) -> bool {
        let Some(handle) = self.instances.get(id) else {
            return false;
        };
        let mut guard = handle.lock();
        if guard.destroyed {
            return false;
        }
        guard.quiesced = quiesced;
        true
    }

    /// Whether instance `id` is currently quiesced for migration.
    pub fn is_quiesced(&self, id: InstanceId) -> Option<bool> {
        let handle = self.instances.get(id)?;
        let guard = handle.lock();
        if guard.destroyed {
            return None;
        }
        Some(guard.quiesced)
    }

    /// Instance ids currently live.
    pub fn instance_ids(&self) -> Vec<InstanceId> {
        self.instances.ids()
    }

    /// Run `f` with exclusive access to instance `id` (toolstack paths:
    /// migration, diagnostics).
    pub fn with_instance<R>(
        &self,
        id: InstanceId,
        f: impl FnOnce(&mut VtpmInstance) -> R,
    ) -> Option<R> {
        let handle = self.instances.get(id)?;
        let mut guard = handle.lock();
        if guard.destroyed {
            return None;
        }
        let out = f(&mut guard);
        // Toolstack paths can mutate the TPM directly; keep the resident
        // image current before the lock drops so concurrent readers of
        // the mirror never see a stale or torn image.
        self.refresh_mirror(id, &mut guard);
        Some(out)
    }

    /// Re-mirror `instance` if its permanent state moved past what the
    /// mirror holds. Must be called with the instance lock held. Returns
    /// the bytes the mirror durably wrote for this refresh (0 when
    /// skipped, clean, or failed) — the telemetry span records it.
    fn refresh_mirror(&self, id: InstanceId, instance: &mut VtpmInstance) -> u64 {
        let gen = instance.tpm.state_generation();
        if gen == instance.mirrored_generation {
            self.stats.mirror_skipped.fetch_add(1, Ordering::Relaxed);
            return 0;
        }
        let state = instance.tpm.serialize_state();
        match self.mirror.update(id, &state) {
            Ok(bytes) => {
                instance.mirrored_generation = gen;
                bytes
            }
            // Mirror failure (host memory exhaustion, injected fault) is
            // not the guest's problem and the mutation already happened:
            // count it, leave the stale marker, and retry on the next
            // mutation. The mirror's atomic commit guarantees the failed
            // update left the previous committed image intact.
            Err(_) => {
                self.stats.mirror_failures.fetch_add(1, Ordering::Relaxed);
                0
            }
        }
    }

    /// Serialize an instance's TPM state (migration source side).
    pub fn export_instance_state(&self, id: InstanceId) -> Option<Vec<u8>> {
        self.with_instance(id, |i| i.tpm.serialize_state())
    }

    /// Read an instance's resident image back out of the mirror
    /// (decrypting in Encrypted mode). Diagnostics/tests: the manager's
    /// own view of what a coherent resident image should decode to.
    pub fn resident_image(&self, id: InstanceId) -> XenResult<Vec<u8>> {
        self.mirror.read(id)
    }

    /// Count one finished, *admitted* request: feed its outcome into
    /// the source domain's admission EWMA, then bump the stats counter
    /// and the coherence epoch. `denied` means the access hook denied
    /// it — the signal the admission controller throttles on.
    #[inline]
    fn account(&self, outcome: &AtomicU64, source_domain: DomainId, denied: bool) {
        self.admission.record_outcome(source_domain.0, denied);
        self.stats.finish_one(outcome);
    }

    /// Close `span` with `outcome`, stamping the end from the sim clock.
    /// A no-op when telemetry is off (span was never minted).
    #[inline]
    fn close_span(&self, span: Option<Span>, outcome: Outcome) {
        if let Some(mut s) = span {
            if let Some(t) = self.telemetry() {
                s.set_outcome(outcome);
                t.finish(s, self.hv.clock.now_ns());
            }
        }
    }

    /// Handle one enveloped request arriving from `source_domain`.
    /// Returns the encoded response envelope. This is the manager's hot
    /// path; it takes no global lock while the TPM executes.
    ///
    /// Telemetry: a span is minted at entry (ring ingress) and closed on
    /// every exit path. All stamps come from the hypervisor's virtual
    /// clock, so traces and histograms are byte-deterministic under the
    /// chaos harness; the ingress stage covers the up-front transport
    /// charge (both hops), the AC stage the hook's modelled cost, and
    /// the execute stage the TPM command cost.
    pub fn handle(&self, source_domain: DomainId, envelope_bytes: &[u8]) -> Vec<u8> {
        let mut span = self.telemetry().map(|t| {
            let mut s = t.begin(self.hv.clock.now_ns());
            s.set_domain(source_domain.0);
            s
        });
        // Every request pays both transport hops (request in + response
        // out): malformed and denied requests crossed the ring too, and
        // their rejection travels back the same way. Charging this up
        // front keeps the virtual-time model consistent across outcomes.
        if self.cfg.charge_virtual_time {
            self.hv.clock.advance_ns(2 * self.cfg.transport_cost_ns);
        }
        let envelope = match Envelope::decode(envelope_bytes) {
            Ok(e) => e,
            Err(_) => {
                self.account(&self.stats.errors, source_domain, false);
                self.close_span(span, Outcome::Malformed);
                return ResponseEnvelope {
                    seq: 0,
                    status: ResponseStatus::Malformed,
                    body: Vec::new(),
                }
                .encode();
            }
        };
        if let Some(s) = span.as_mut() {
            s.set_ordinal(ordinal_of(&envelope.command).unwrap_or(0));
            s.stamp_decode(self.hv.clock.now_ns());
        }

        // Per-domain admission control at ring ingress: a domain whose
        // traffic the hook keeps denying is refused here, before any
        // hook evaluation or TPM work is spent on it. The refusal is
        // not fed back as an outcome — `admit` already decays the
        // domain's EWMA per refusal, which is how it earns release.
        if self.admission.admit(source_domain.0).is_err() {
            self.stats.finish_one(&self.stats.throttled);
            self.close_span(span, Outcome::Denied(vtpm_telemetry::DENY_ADMISSION));
            return ResponseEnvelope {
                seq: envelope.seq,
                status: ResponseStatus::Throttled,
                body: Vec::new(),
            }
            .encode();
        }

        let ctx = RequestContext {
            request_id: span.as_ref().map(|s| s.request_id()).unwrap_or(0),
            source_domain,
            claimed_domain: envelope.domain,
            instance: envelope.instance,
            seq: envelope.seq,
            locality: envelope.locality,
            ordinal: ordinal_of(&envelope.command),
            tag: envelope.tag.as_ref(),
            command: &envelope.command,
        };

        // Access control: the paper's contribution hangs entirely on this
        // call. StockHook makes it a no-op (baseline).
        let hook = self.hook.read().clone();
        if self.cfg.charge_virtual_time {
            let ac_cost = hook.overhead_ns(&ctx);
            if ac_cost > 0 {
                self.hv.clock.advance_ns(ac_cost);
            }
        }
        let decision = hook.authorize(&ctx);
        if let Some(s) = span.as_mut() {
            s.stamp_ac(self.hv.clock.now_ns());
        }
        if let AccessDecision::Deny(reason) = decision {
            self.account(&self.stats.denied, source_domain, true);
            self.close_span(span, Outcome::Denied(reason.code()));
            return ResponseEnvelope {
                seq: envelope.seq,
                status: ResponseStatus::Denied,
                body: Vec::new(),
            }
            .encode();
        }

        let handle = self.instances.get(envelope.instance);
        let handle = match handle {
            Some(h) => h,
            None => {
                self.account(&self.stats.errors, source_domain, false);
                self.close_span(span, Outcome::NoInstance);
                return ResponseEnvelope {
                    seq: envelope.seq,
                    status: ResponseStatus::NoInstance,
                    body: Vec::new(),
                }
                .encode();
            }
        };

        // Only dispatched commands pay the modelled TPM execution cost.
        if self.cfg.charge_virtual_time {
            let cmd_cost = ctx.ordinal.map(command_cost_ns).unwrap_or(1_000_000);
            self.hv.clock.advance_ns(cmd_cost);
        }

        let body = {
            let mut instance = handle.lock();
            // The handle may have been cloned before a concurrent
            // destroy unrouted the instance; executing now would
            // re-mirror state the destroy just scrubbed.
            if instance.destroyed || instance.quiesced {
                // Quiesced instances (frozen for live migration) refuse
                // guest traffic exactly like missing ones: the frontend
                // backs off and retries, and after a committed migration
                // the retry lands on the destination host instead.
                self.account(&self.stats.errors, source_domain, false);
                self.close_span(span, Outcome::NoInstance);
                return ResponseEnvelope {
                    seq: envelope.seq,
                    status: ResponseStatus::NoInstance,
                    body: Vec::new(),
                }
                .encode();
            }
            let body = instance.execute(envelope.locality, &envelope.command);
            instance.stats.last_seq = instance.stats.last_seq.max(envelope.seq);
            if let Some(s) = span.as_mut() {
                s.stamp_exec(self.hv.clock.now_ns());
            }
            // Serialize + mirror under the instance lock, and only when
            // the command actually moved the permanent state: read-only
            // traffic skips the whole snapshot path, and concurrent
            // commands can never publish mirror images out of order.
            let mirror_bytes = self.refresh_mirror(envelope.instance, &mut instance);
            if let Some(s) = span.as_mut() {
                s.set_mirror_bytes(mirror_bytes);
                s.stamp_mirror(self.hv.clock.now_ns());
            }
            body
        };

        self.account(&self.stats.handled, source_domain, false);
        self.close_span(span, Outcome::Ok);
        ResponseEnvelope { seq: envelope.seq, status: ResponseStatus::Ok, body }.encode()
    }

    /// The mirror master key (crate-internal; see `persist`).
    pub(crate) fn mirror_master_key(&self) -> Option<[u8; 16]> {
        self.mirror.master_key()
    }

    /// Ground truth for the dump experiments: the frames holding instance
    /// `id`'s resident image.
    pub fn mirror_frames(&self, id: InstanceId) -> Option<Vec<usize>> {
        self.mirror.region_frames(id)
    }

    /// The mirror mode in force.
    pub fn mirror_mode(&self) -> MirrorMode {
        self.mirror.mode()
    }

    /// Mirror write-path counters (pages/bytes written, clean updates).
    pub fn mirror_io_stats(&self) -> crate::mirror::MirrorIoStats {
        self.mirror.io_stats()
    }

    /// Committed mirror generation of instance `id` (harness/tests).
    pub fn mirror_generation(&self, id: InstanceId) -> Option<u64> {
        self.mirror.generation(id)
    }

    /// Start auditing mirror CTR nonce pairs (tests/harness; see
    /// [`StateMirror::enable_nonce_audit`]).
    pub fn enable_nonce_audit(&self) {
        self.mirror.enable_nonce_audit();
    }

    /// Nonce-pair collisions observed since the audit was enabled.
    pub fn nonce_reuses(&self) -> u64 {
        self.mirror.nonce_reuses()
    }
}

/// What [`VtpmManager::recover`] managed to bring back.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Instances restored from their committed mirror image and serving
    /// again under their original ids, ascending.
    pub resumed: Vec<InstanceId>,
    /// Instances whose mirror region was found but whose image failed
    /// verification or did not parse as TPM state.
    pub failed: Vec<InstanceId>,
    /// The underlying memory-scan report.
    pub mirror: crate::mirror::MirrorRecovery,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpm::{parse_response, rc};

    fn setup(mode: MirrorMode) -> (Arc<Hypervisor>, VtpmManager) {
        let hv = Arc::new(Hypervisor::boot(2048, 8).unwrap());
        let mgr = VtpmManager::new(
            Arc::clone(&hv),
            b"mgr-test",
            ManagerConfig { mirror_mode: mode, ..Default::default() },
        )
        .unwrap();
        (hv, mgr)
    }

    fn startup_cmd() -> Vec<u8> {
        vec![0x00, 0xC1, 0, 0, 0, 12, 0, 0, 0, 0x99, 0, 1]
    }

    fn envelope(domain: u32, instance: u32, seq: u64, cmd: Vec<u8>) -> Vec<u8> {
        Envelope { domain, instance, seq, locality: 0, tag: None, command: cmd }.encode()
    }

    #[test]
    fn create_and_route_commands() {
        let (_hv, mgr) = setup(MirrorMode::Cleartext);
        let id = mgr.create_instance().unwrap();
        let resp = mgr.handle(DomainId(1), &envelope(1, id, 1, startup_cmd()));
        let renv = ResponseEnvelope::decode(&resp).unwrap();
        assert_eq!(renv.status, ResponseStatus::Ok);
        assert_eq!(renv.seq, 1);
        assert_eq!(parse_response(&renv.body).unwrap().1, rc::SUCCESS);
        assert_eq!(mgr.stats.snapshot(), (1, 0, 0));
    }

    #[test]
    fn unknown_instance_reported() {
        let (_hv, mgr) = setup(MirrorMode::Cleartext);
        let resp = mgr.handle(DomainId(1), &envelope(1, 999, 1, startup_cmd()));
        let renv = ResponseEnvelope::decode(&resp).unwrap();
        assert_eq!(renv.status, ResponseStatus::NoInstance);
        assert_eq!(mgr.stats.snapshot(), (0, 0, 1));
    }

    #[test]
    fn malformed_envelope_reported() {
        let (_hv, mgr) = setup(MirrorMode::Cleartext);
        let resp = mgr.handle(DomainId(1), b"garbage");
        let renv = ResponseEnvelope::decode(&resp).unwrap();
        assert_eq!(renv.status, ResponseStatus::Malformed);
    }

    #[test]
    fn stock_hook_allows_cross_instance_access() {
        // The W1/W2 baseline weakness, demonstrated at the manager level:
        // domain 2 can talk to domain 1's instance unimpeded.
        let (_hv, mgr) = setup(MirrorMode::Cleartext);
        let victim = mgr.create_instance().unwrap();
        let resp = mgr.handle(DomainId(2), &envelope(1 /* spoofed */, victim, 1, startup_cmd()));
        assert_eq!(ResponseEnvelope::decode(&resp).unwrap().status, ResponseStatus::Ok);
    }

    #[test]
    fn destroy_instance_stops_routing() {
        let (_hv, mgr) = setup(MirrorMode::Cleartext);
        let id = mgr.create_instance().unwrap();
        assert!(mgr.destroy_instance(id).unwrap());
        assert!(!mgr.destroy_instance(id).unwrap());
        let resp = mgr.handle(DomainId(1), &envelope(1, id, 1, startup_cmd()));
        assert_eq!(
            ResponseEnvelope::decode(&resp).unwrap().status,
            ResponseStatus::NoInstance
        );
    }

    #[test]
    fn quiesce_refuses_guests_but_not_toolstack() {
        let (_hv, mgr) = setup(MirrorMode::Encrypted);
        let id = mgr.create_instance().unwrap();
        let resp = mgr.handle(DomainId(1), &envelope(1, id, 1, startup_cmd()));
        assert_eq!(ResponseEnvelope::decode(&resp).unwrap().status, ResponseStatus::Ok);

        // Frozen for migration: guest traffic bounces like the instance
        // is gone, but the toolstack export path still reaches it.
        assert!(mgr.set_quiesced(id, true));
        assert_eq!(mgr.is_quiesced(id), Some(true));
        let resp = mgr.handle(DomainId(1), &envelope(1, id, 2, startup_cmd()));
        assert_eq!(
            ResponseEnvelope::decode(&resp).unwrap().status,
            ResponseStatus::NoInstance
        );
        assert!(mgr.with_instance(id, |i| i.tpm.serialize_state()).is_some());

        // Thawed (migration aborted): service resumes.
        assert!(mgr.set_quiesced(id, false));
        let resp = mgr.handle(DomainId(1), &envelope(1, id, 3, startup_cmd()));
        assert_eq!(ResponseEnvelope::decode(&resp).unwrap().status, ResponseStatus::Ok);

        // Unknown / destroyed instances can't be quiesced.
        assert!(!mgr.set_quiesced(999, true));
        assert_eq!(mgr.is_quiesced(999), None);
        assert!(mgr.destroy_instance(id).unwrap());
        assert!(!mgr.set_quiesced(id, true));
    }

    /// Hook that refuses everything, with a modelled check cost.
    struct DenyAllHook;

    impl AccessHook for DenyAllHook {
        fn authorize(&self, _ctx: &RequestContext<'_>) -> AccessDecision {
            AccessDecision::Deny(crate::hook::DenyReason::NoCredential)
        }
        fn overhead_ns(&self, _ctx: &RequestContext<'_>) -> u64 {
            2_500
        }
        fn name(&self) -> &str {
            "deny-all"
        }
    }

    #[test]
    fn virtual_time_charged_per_command() {
        let (hv, mgr) = setup(MirrorMode::Cleartext);
        let id = mgr.create_instance().unwrap();
        let t0 = hv.clock.now_ns();
        mgr.handle(DomainId(1), &envelope(1, id, 1, startup_cmd()));
        let t1 = hv.clock.now_ns();
        // startup cost (1ms) + 2 * transport (15µs each).
        assert_eq!(t1 - t0, 1_000_000 + 30_000);

        // A malformed request still crossed the ring both ways: it pays
        // the transport hops (but no AC or command cost).
        let t2 = hv.clock.now_ns();
        mgr.handle(DomainId(1), b"garbage");
        assert_eq!(hv.clock.now_ns() - t2, 30_000);

        // A denied request pays transport + the hook's modelled cost,
        // but never the TPM command cost.
        mgr.set_hook(Arc::new(DenyAllHook));
        let t3 = hv.clock.now_ns();
        let resp = mgr.handle(DomainId(1), &envelope(1, id, 2, startup_cmd()));
        assert_eq!(ResponseEnvelope::decode(&resp).unwrap().status, ResponseStatus::Denied);
        assert_eq!(hv.clock.now_ns() - t3, 30_000 + 2_500);
    }

    fn pcr_read_cmd() -> Vec<u8> {
        let mut cmd = Vec::new();
        cmd.extend_from_slice(&0x00C1u16.to_be_bytes());
        cmd.extend_from_slice(&14u32.to_be_bytes());
        cmd.extend_from_slice(&tpm::ordinal::PCR_READ.to_be_bytes());
        cmd.extend_from_slice(&0u32.to_be_bytes());
        cmd
    }

    fn extend_cmd(idx: u32, digest: [u8; 20]) -> Vec<u8> {
        let mut cmd = Vec::new();
        cmd.extend_from_slice(&0x00C1u16.to_be_bytes());
        cmd.extend_from_slice(&34u32.to_be_bytes());
        cmd.extend_from_slice(&tpm::ordinal::EXTEND.to_be_bytes());
        cmd.extend_from_slice(&idx.to_be_bytes());
        cmd.extend_from_slice(&digest);
        cmd
    }

    #[test]
    fn read_only_commands_skip_the_mirror() {
        let (_hv, mgr) = setup(MirrorMode::Encrypted);
        let id = mgr.create_instance().unwrap();
        mgr.handle(DomainId(1), &envelope(1, id, 1, startup_cmd()));
        let before = mgr.mirror_io_stats();
        let skipped_before = mgr.stats.mirror_skipped.load(Ordering::Relaxed);
        for s in 0..20u64 {
            let resp = mgr.handle(DomainId(1), &envelope(1, id, 2 + s, pcr_read_cmd()));
            assert_eq!(ResponseEnvelope::decode(&resp).unwrap().status, ResponseStatus::Ok);
        }
        let after = mgr.mirror_io_stats();
        assert_eq!(after.updates, before.updates, "read-only commands must not call the mirror");
        assert_eq!(after.bytes_written, before.bytes_written);
        assert_eq!(mgr.stats.mirror_skipped.load(Ordering::Relaxed), skipped_before + 20);
    }

    #[test]
    fn mutating_commands_write_only_dirty_pages() {
        let hv = Arc::new(Hypervisor::boot(2048, 8).unwrap());
        let mgr = VtpmManager::new(
            Arc::clone(&hv),
            b"dirty-pages",
            ManagerConfig {
                mirror_mode: MirrorMode::Encrypted,
                vtpm_config: TpmConfig { nv_budget: 64 * 1024, ..Default::default() },
                ..Default::default()
            },
        )
        .unwrap();
        let id = mgr.create_instance().unwrap();
        mgr.handle(DomainId(1), &envelope(1, id, 1, startup_cmd()));
        // Grow the state across several pages so a PCR extend dirties
        // only the page(s) holding the PCR bank, not the NV payload.
        mgr.with_instance(id, |i| {
            i.tpm.provision_nv(0x60, &vec![0xE7u8; 3 * 4096]).unwrap();
        })
        .unwrap();
        let total_pages =
            mgr.with_instance(id, |i| i.tpm.serialize_state().len().div_ceil(4096)).unwrap() as u64;
        assert!(total_pages >= 4, "state must span several pages for this test");
        let before = mgr.mirror_io_stats();
        let resp = mgr.handle(DomainId(1), &envelope(1, id, 2, extend_cmd(5, [0xAB; 20])));
        assert_eq!(ResponseEnvelope::decode(&resp).unwrap().status, ResponseStatus::Ok);
        let after = mgr.mirror_io_stats();
        let written = after.data_pages_written - before.data_pages_written;
        assert!(written >= 1, "the extend must dirty at least one page");
        assert!(
            written < total_pages,
            "a one-PCR change must not rewrite the whole {total_pages}-page image (wrote {written})"
        );
    }

    #[test]
    fn concurrent_hammer_with_resize_never_tears_the_image() {
        // One instance is hammered with mutating commands from several
        // threads while another thread grows and shrinks its state via
        // with_instance. The mirror must always decode to a coherent
        // snapshot (no torn image) and, after the final shrink, no stale
        // bytes of the large image may survive in a full Dom0 dump.
        let hv = Arc::new(Hypervisor::boot(8192, 16).unwrap());
        let mgr = Arc::new(
            VtpmManager::new(
                Arc::clone(&hv),
                b"hammer",
                ManagerConfig {
                    mirror_mode: MirrorMode::Cleartext,
                    vtpm_config: TpmConfig { nv_budget: 64 * 1024, ..Default::default() },
                    charge_virtual_time: false,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let id = mgr.create_instance().unwrap();
        mgr.handle(DomainId(1), &envelope(1, id, 1, startup_cmd()));

        let mut workers = Vec::new();
        for t in 0..4u64 {
            let mgr = Arc::clone(&mgr);
            workers.push(std::thread::spawn(move || {
                for s in 0..50u64 {
                    let resp = mgr.handle(
                        DomainId(1),
                        &envelope(1, id, 1000 * (t + 1) + s, extend_cmd((t % 8) as u32, [s as u8; 20])),
                    );
                    assert_eq!(ResponseEnvelope::decode(&resp).unwrap().status, ResponseStatus::Ok);
                }
            }));
        }
        // Resizer: repeatedly grow (define + write a fat NV area) and
        // shrink (release it) the serialized state.
        {
            let mgr = Arc::clone(&mgr);
            workers.push(std::thread::spawn(move || {
                for round in 0..10u32 {
                    mgr.with_instance(id, |i| {
                        i.tpm.provision_nv(0x80 + round, &vec![0xD5u8; 2 * 4096]).unwrap();
                    })
                    .unwrap();
                    mgr.with_instance(id, |i| {
                        i.tpm.release_nv(0x80 + round).unwrap();
                    })
                    .unwrap();
                }
            }));
        }
        // Reader: the mirror must decode to a valid snapshot at any
        // point — a torn image fails restore_state.
        {
            let mgr = Arc::clone(&mgr);
            workers.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let image = mgr.resident_image(id).expect("image readable");
                    tpm::Tpm::restore_state(&image, b"probe", tpm::TpmConfig::default())
                        .expect("mirror image must never be torn");
                }
            }));
        }
        for w in workers {
            w.join().unwrap();
        }

        // After the hammering, the image equals a fresh serialization...
        let state = mgr.export_instance_state(id).unwrap();
        assert_eq!(mgr.resident_image(id).unwrap(), state);
        // ...and no stale fat-NV bytes survive anywhere in the dump.
        let probe = vec![0xD5u8; 64];
        let mut dump = Vec::new();
        for (_, _, page) in hv.dump_memory(DomainId::DOM0).unwrap() {
            dump.extend_from_slice(&page[..]);
        }
        assert!(
            !dump.windows(probe.len()).any(|w| w == &probe[..]),
            "stale bytes of the released NV area survived in the dump"
        );
    }

    #[test]
    fn mirror_tracks_instance_state() {
        let (hv, mgr) = setup(MirrorMode::Cleartext);
        let id = mgr.create_instance().unwrap();
        mgr.handle(DomainId(1), &envelope(1, id, 1, startup_cmd()));
        // The resident image must contain the instance's EK prime — fetch
        // ground truth and scan the Dom0 dump.
        let state = mgr.export_instance_state(id).unwrap();
        let mut dump = Vec::new();
        for (_, _, page) in hv.dump_memory(DomainId::DOM0).unwrap() {
            dump.extend_from_slice(&page[..]);
        }
        assert!(
            dump.windows(state.len().min(64)).any(|w| w == &state[..state.len().min(64)]),
            "baseline resident image must appear in the dump"
        );
    }

    #[test]
    fn encrypted_mirror_hides_state() {
        let (hv, mgr) = setup(MirrorMode::Encrypted);
        let id = mgr.create_instance().unwrap();
        mgr.handle(DomainId(1), &envelope(1, id, 1, startup_cmd()));
        let state = mgr.export_instance_state(id).unwrap();
        let mut dump = Vec::new();
        for (_, _, page) in hv.dump_memory(DomainId::DOM0).unwrap() {
            dump.extend_from_slice(&page[..]);
        }
        let probe = &state[..64.min(state.len())];
        assert!(
            !dump.windows(probe.len()).any(|w| w == probe),
            "encrypted resident image must not leak cleartext state"
        );
    }

    #[test]
    fn concurrent_requests_to_distinct_instances() {
        let (_hv, mgr) = setup(MirrorMode::Cleartext);
        let mgr = Arc::new(mgr);
        let ids: Vec<u32> = (0..4).map(|_| mgr.create_instance().unwrap()).collect();
        let mut handles = Vec::new();
        for (t, id) in ids.into_iter().enumerate() {
            let mgr = Arc::clone(&mgr);
            handles.push(std::thread::spawn(move || {
                for s in 0..10u64 {
                    let resp = mgr.handle(
                        DomainId(t as u32 + 1),
                        &envelope(t as u32 + 1, id, s, startup_cmd()),
                    );
                    assert_eq!(
                        ResponseEnvelope::decode(&resp).unwrap().status,
                        ResponseStatus::Ok
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(mgr.stats.snapshot().0, 40);
    }

    #[test]
    fn adopt_instance_assigns_new_id() {
        let (_hv, mgr) = setup(MirrorMode::Cleartext);
        let inst = VtpmInstance::new(99, b"elsewhere", TpmConfig::default());
        let id = mgr.adopt_instance(inst).unwrap();
        assert!(mgr.instance_ids().contains(&id));
        let resp = mgr.handle(DomainId(1), &envelope(1, id, 1, startup_cmd()));
        assert_eq!(ResponseEnvelope::decode(&resp).unwrap().status, ResponseStatus::Ok);
    }

    #[test]
    fn recover_resumes_instances_from_frames_alone() {
        let (hv, mgr) = setup(MirrorMode::Encrypted);
        let a = mgr.create_instance().unwrap();
        let b = mgr.create_instance().unwrap();
        mgr.handle(DomainId(1), &envelope(1, a, 1, startup_cmd()));
        mgr.handle(DomainId(1), &envelope(1, a, 2, extend_cmd(3, [0x44; 20])));
        mgr.handle(DomainId(2), &envelope(2, b, 1, startup_cmd()));
        let state_a = mgr.export_instance_state(a).unwrap();
        let state_b = mgr.export_instance_state(b).unwrap();
        // Kill the manager: only simulated machine memory survives.
        drop(mgr);
        let (rec, report) = VtpmManager::recover(
            Arc::clone(&hv),
            b"mgr-test",
            ManagerConfig { mirror_mode: MirrorMode::Encrypted, ..Default::default() },
        )
        .unwrap();
        assert_eq!(report.resumed, vec![a, b]);
        assert_eq!(report.failed, Vec::<u32>::new());
        assert_eq!(rec.export_instance_state(a).unwrap(), state_a);
        assert_eq!(rec.export_instance_state(b).unwrap(), state_b);
        // The recovered instances keep serving commands under their ids.
        let resp = rec.handle(DomainId(1), &envelope(1, a, 3, extend_cmd(3, [0x55; 20])));
        assert_eq!(ResponseEnvelope::decode(&resp).unwrap().status, ResponseStatus::Ok);
        // And new instances never collide with resumed ids.
        let c = rec.create_instance().unwrap();
        assert!(c > b);
    }

    #[test]
    fn recover_after_crash_mid_command_yields_pre_or_post_state() {
        let (hv, mgr) = setup(MirrorMode::Encrypted);
        let id = mgr.create_instance().unwrap();
        mgr.handle(DomainId(1), &envelope(1, id, 1, startup_cmd()));
        let pre = mgr.export_instance_state(id).unwrap();
        // Crash between the TPM mutation's first and second mirror write.
        hv.inject_write_crash(DomainId::DOM0, 1);
        let resp = mgr.handle(DomainId(1), &envelope(1, id, 2, extend_cmd(7, [0x66; 20])));
        assert_eq!(ResponseEnvelope::decode(&resp).unwrap().status, ResponseStatus::Ok);
        assert_eq!(mgr.stats.mirror_failures.load(Ordering::Relaxed), 1);
        let post = mgr.export_instance_state(id).unwrap();
        hv.clear_faults();
        drop(mgr);
        let (rec, report) = VtpmManager::recover(
            Arc::clone(&hv),
            b"mgr-test",
            ManagerConfig { mirror_mode: MirrorMode::Encrypted, ..Default::default() },
        )
        .unwrap();
        assert_eq!(report.resumed, vec![id]);
        let got = rec.export_instance_state(id).unwrap();
        assert!(got == pre || got == post, "recovered state must be pre- or post-command");
    }

    #[test]
    fn failed_destroy_then_retry_leaves_no_orphaned_frames() {
        // A failed destroy must keep the instance wired to its ORIGINAL
        // mirror region: if the region were dropped on the failed scrub,
        // the next mutation would re-mirror into fresh frames and orphan
        // the old ones — still holding the image and a valid metadata
        // page a later recovery would resurrect.
        let (hv, mgr) = setup(MirrorMode::Cleartext);
        let id = mgr.create_instance().unwrap();
        mgr.handle(DomainId(1), &envelope(1, id, 1, startup_cmd()));
        hv.inject_write_crash(DomainId::DOM0, 0);
        assert!(mgr.destroy_instance(id).is_err());
        hv.clear_faults();
        // Instance still usable; the mutation re-mirrors in place.
        let resp = mgr.handle(DomainId(1), &envelope(1, id, 2, extend_cmd(2, [0x33; 20])));
        assert_eq!(ResponseEnvelope::decode(&resp).unwrap().status, ResponseStatus::Ok);
        let state = mgr.export_instance_state(id).unwrap();
        assert_eq!(mgr.destroy_instance(id), Ok(true));
        assert!(mgr.mirror_frames(id).is_none());
        // No byte of the instance survives anywhere in the Dom0 dump...
        let probe = &state[..64.min(state.len())];
        let mut dump = Vec::new();
        for (_, _, page) in hv.dump_memory(DomainId::DOM0).unwrap() {
            dump.extend_from_slice(&page[..]);
        }
        assert!(
            !dump.windows(probe.len()).any(|w| w == probe),
            "destroyed instance state survived in the dump"
        );
        // ...and no stale metadata page lets recovery resurrect it.
        drop(mgr);
        let (_, report) = VtpmManager::recover(
            Arc::clone(&hv),
            b"mgr-test",
            ManagerConfig { mirror_mode: MirrorMode::Cleartext, ..Default::default() },
        )
        .unwrap();
        assert_eq!(report.resumed, Vec::<u32>::new());
        assert_eq!(report.failed, Vec::<u32>::new());
    }

    #[test]
    fn destroy_racing_with_requests_never_leaves_orphaned_mirror_state() {
        // Requests that grabbed the instance handle before destroy
        // unrouted it must observe the tombstone after the scrub instead
        // of re-mirroring state into Dom0 frames nobody tracks anymore.
        let hv = Arc::new(Hypervisor::boot(8192, 16).unwrap());
        let mgr = Arc::new(
            VtpmManager::new(
                Arc::clone(&hv),
                b"destroy-race",
                ManagerConfig {
                    mirror_mode: MirrorMode::Cleartext,
                    charge_virtual_time: false,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        for round in 0..8u32 {
            let id = mgr.create_instance().unwrap();
            mgr.handle(DomainId(1), &envelope(1, id, 1, startup_cmd()));
            let hammer = {
                let mgr = Arc::clone(&mgr);
                std::thread::spawn(move || {
                    for s in 0..30u64 {
                        // Ok before the destroy lands, NoInstance after;
                        // never anything else.
                        let resp = mgr.handle(
                            DomainId(1),
                            &envelope(1, id, 2 + s, extend_cmd((round % 8) as u32, [s as u8; 20])),
                        );
                        let status = ResponseEnvelope::decode(&resp).unwrap().status;
                        assert!(
                            status == ResponseStatus::Ok || status == ResponseStatus::NoInstance,
                            "unexpected status during destroy race: {status:?}"
                        );
                    }
                })
            };
            assert_eq!(mgr.destroy_instance(id), Ok(true));
            hammer.join().unwrap();
            assert!(
                mgr.mirror_frames(id).is_none(),
                "round {round}: a racing request re-mirrored a destroyed instance"
            );
        }
        drop(mgr);
        let (_, report) = VtpmManager::recover(
            Arc::clone(&hv),
            b"destroy-race",
            ManagerConfig { mirror_mode: MirrorMode::Cleartext, ..Default::default() },
        )
        .unwrap();
        assert_eq!(report.resumed, Vec::<u32>::new(), "orphaned mirror state resurrected");
        assert_eq!(report.failed, Vec::<u32>::new());
    }

    #[test]
    fn destroy_instance_survives_scrub_failure() {
        let (hv, mgr) = setup(MirrorMode::Cleartext);
        let id = mgr.create_instance().unwrap();
        mgr.handle(DomainId(1), &envelope(1, id, 1, startup_cmd()));
        hv.inject_write_crash(DomainId::DOM0, 0);
        assert!(mgr.destroy_instance(id).is_err(), "scrub failure must surface");
        hv.clear_faults();
        // The instance is still routed and usable after the failed scrub.
        let resp = mgr.handle(DomainId(1), &envelope(1, id, 2, extend_cmd(1, [0x11; 20])));
        assert_eq!(ResponseEnvelope::decode(&resp).unwrap().status, ResponseStatus::Ok);
        assert_eq!(mgr.destroy_instance(id), Ok(true));
        assert_eq!(mgr.destroy_instance(id), Ok(false));
    }

    /// Hook that denies every request from one source domain.
    struct DenyDomainHook(u32);

    impl AccessHook for DenyDomainHook {
        fn authorize(&self, ctx: &RequestContext<'_>) -> AccessDecision {
            if ctx.source_domain.0 == self.0 {
                AccessDecision::Deny(crate::hook::DenyReason::NoCredential)
            } else {
                AccessDecision::Allow
            }
        }
        fn name(&self) -> &str {
            "deny-domain"
        }
    }

    #[test]
    fn admission_throttles_abusive_domain_then_releases() {
        // A domain whose traffic the hook keeps denying gets refused at
        // ring ingress (Throttled) once its deny-rate EWMA trips; the
        // refusals themselves decay the EWMA until the domain is
        // re-admitted. A clean domain sharing the manager is never
        // throttled.
        let hv = Arc::new(Hypervisor::boot(2048, 8).unwrap());
        let mgr = VtpmManager::new(
            Arc::clone(&hv),
            b"admission",
            ManagerConfig {
                mirror_mode: MirrorMode::Cleartext,
                charge_virtual_time: false,
                admission: AdmissionConfig { enabled: true, ..Default::default() },
                ..Default::default()
            },
        )
        .unwrap();
        let id = mgr.create_instance().unwrap();
        mgr.handle(DomainId(1), &envelope(1, id, 1, startup_cmd()));
        mgr.set_hook(Arc::new(DenyDomainHook(2)));

        // Hammer from the abusive domain until the gate trips.
        let mut saw_throttled_at = None;
        for s in 0..40u64 {
            let resp = mgr.handle(DomainId(2), &envelope(2, id, s, pcr_read_cmd()));
            let status = ResponseEnvelope::decode(&resp).unwrap().status;
            match status {
                ResponseStatus::Denied => {
                    assert!(saw_throttled_at.is_none(), "denied again after throttle tripped");
                }
                ResponseStatus::Throttled => {
                    saw_throttled_at = Some(s);
                    break;
                }
                other => panic!("unexpected status {other:?}"),
            }
        }
        let tripped = saw_throttled_at.expect("sustained denials must trip the throttle");
        assert!(
            tripped >= mgr.admission().config().min_samples as u64,
            "throttle tripped before min_samples denials"
        );
        assert!(mgr.admission().is_throttled(2));
        assert_eq!(mgr.admission().throttle_events(), 1);

        // The clean domain is untouched while domain 2 is throttled.
        let resp = mgr.handle(DomainId(1), &envelope(1, id, 100, pcr_read_cmd()));
        assert_eq!(ResponseEnvelope::decode(&resp).unwrap().status, ResponseStatus::Ok);

        // Each refusal decays the EWMA; the domain earns release in a
        // bounded number of attempts and reaches the hook again.
        let mut released_at = None;
        for s in 0..40u64 {
            let resp = mgr.handle(DomainId(2), &envelope(2, id, 200 + s, pcr_read_cmd()));
            let status = ResponseEnvelope::decode(&resp).unwrap().status;
            if status == ResponseStatus::Denied {
                released_at = Some(s);
                break;
            }
            assert_eq!(status, ResponseStatus::Throttled);
        }
        assert!(released_at.is_some(), "throttled domain never earned release");
        assert!(!mgr.admission().is_throttled(2));
        assert!(mgr.admission().refused_total() > 0);

        // Conservation holds across the mixed outcomes.
        let snap = mgr.stats_snapshot();
        assert!(snap.throttled > 0);
        assert_eq!(snap.handled + snap.denied + snap.errors + snap.throttled, snap.finished);
    }

    #[test]
    fn admission_disabled_by_default_never_throttles() {
        let (_hv, mgr) = setup(MirrorMode::Cleartext);
        let id = mgr.create_instance().unwrap();
        mgr.set_hook(Arc::new(DenyAllHook));
        for s in 0..50u64 {
            let resp = mgr.handle(DomainId(3), &envelope(3, id, s, startup_cmd()));
            assert_eq!(
                ResponseEnvelope::decode(&resp).unwrap().status,
                ResponseStatus::Denied,
                "disabled admission must never interpose"
            );
        }
        assert_eq!(mgr.stats_snapshot().throttled, 0);
        assert_eq!(mgr.admission().throttle_events(), 0);
    }

    #[test]
    fn cross_shard_destroys_race_handles_without_orphaning_mirror_state() {
        // Instances spread across distinct shards of the routing table
        // are destroyed while worker threads hammer all of them. The
        // PR-2 destroy ordering (unroute → tombstone → scrub) must hold
        // per shard: destroyed ids leave no mirror frames behind and
        // recovery resurrects exactly the survivors.
        let hv = Arc::new(Hypervisor::boot(16384, 16).unwrap());
        let mgr = Arc::new(
            VtpmManager::new(
                Arc::clone(&hv),
                b"shard-race",
                ManagerConfig {
                    mirror_mode: MirrorMode::Cleartext,
                    charge_virtual_time: false,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let ids: Vec<u32> = (0..12).map(|_| mgr.create_instance().unwrap()).collect();
        for &id in &ids {
            mgr.handle(DomainId(1), &envelope(1, id, 1, startup_cmd()));
        }
        // Destroy every other instance (ids span many shards: sequential
        // ids land in sequential shards with the 64-way split).
        let doomed: Vec<u32> = ids.iter().copied().step_by(2).collect();
        let survivors: Vec<u32> = ids.iter().copied().skip(1).step_by(2).collect();

        let mut workers = Vec::new();
        for (t, &id) in ids.iter().enumerate() {
            let mgr = Arc::clone(&mgr);
            workers.push(std::thread::spawn(move || {
                for s in 0..25u64 {
                    let resp = mgr.handle(
                        DomainId(1),
                        &envelope(1, id, 2 + s, extend_cmd((t % 8) as u32, [s as u8; 20])),
                    );
                    let status = ResponseEnvelope::decode(&resp).unwrap().status;
                    assert!(
                        status == ResponseStatus::Ok || status == ResponseStatus::NoInstance,
                        "unexpected status during cross-shard race: {status:?}"
                    );
                }
            }));
        }
        {
            let mgr = Arc::clone(&mgr);
            let doomed = doomed.clone();
            workers.push(std::thread::spawn(move || {
                for id in doomed {
                    assert_eq!(mgr.destroy_instance(id), Ok(true));
                }
            }));
        }
        for w in workers {
            w.join().unwrap();
        }
        for &id in &doomed {
            assert!(mgr.mirror_frames(id).is_none(), "destroyed id {id} kept mirror frames");
        }
        for &id in &survivors {
            assert!(mgr.mirror_frames(id).is_some(), "survivor {id} lost its mirror region");
        }
        drop(mgr);
        let (_, report) = VtpmManager::recover(
            Arc::clone(&hv),
            b"shard-race",
            ManagerConfig { mirror_mode: MirrorMode::Cleartext, ..Default::default() },
        )
        .unwrap();
        assert_eq!(report.resumed, survivors, "recovery must resurrect exactly the survivors");
        assert_eq!(report.failed, Vec::<u32>::new());
    }

    #[test]
    fn stats_snapshot_conserves_under_concurrent_traffic() {
        // The seqlock snapshot must satisfy
        // handled + denied + errors + throttled == finished at any
        // sampling instant, even while workers are mid-account.
        let (_hv, mgr) = setup(MirrorMode::Cleartext);
        let mgr = Arc::new(mgr);
        let id = mgr.create_instance().unwrap();
        mgr.handle(DomainId(1), &envelope(1, id, 1, startup_cmd()));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut workers = Vec::new();
        for t in 0..3u64 {
            let mgr = Arc::clone(&mgr);
            workers.push(std::thread::spawn(move || {
                for s in 0..200u64 {
                    // Mix of ok (valid id) and error (missing id) exits.
                    let target = if s % 3 == 0 { 999 } else { id };
                    mgr.handle(DomainId(1), &envelope(1, target, 1000 * t + s, pcr_read_cmd()));
                }
            }));
        }
        let sampler = {
            let mgr = Arc::clone(&mgr);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut samples = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let s = mgr.stats_snapshot();
                    assert_eq!(
                        s.handled + s.denied + s.errors + s.throttled,
                        s.finished,
                        "snapshot violated outcome conservation"
                    );
                    samples += 1;
                }
                samples
            })
        };
        for w in workers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let samples = sampler.join().unwrap();
        assert!(samples > 0);
        let s = mgr.stats_snapshot();
        assert_eq!(s.finished, 601); // startup + 600 worker requests
    }
}
