//! The assembled platform: hypervisor + hardware TPM + vTPM manager +
//! per-guest devices, with backend threads running.
//!
//! This is the top-level object examples, experiments, and attacks work
//! against. [`Platform::baseline`] is the stock Xen vTPM system;
//! [`Platform::improved`] flips on the paper's mechanisms that live at
//! the mechanism layer (encrypted mirror, ring scrubbing) and is where
//! the `vtpm-ac` crate installs its hook and credentials.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use tpm::{DirectTransport, Tpm, TpmClient};
use tpm_crypto::drbg::Drbg;
use tpm_crypto::rsa::RsaPublicKey;
use xen_sim::{DomainConfig, DomainId, Hypervisor, Result as XenResult, XenError};

use crate::device::{provision_device, TpmBack, TpmFront};
use crate::instance::{InstanceId, VtpmInstance};
use crate::manager::{ManagerConfig, VtpmManager};
use crate::migration::{self, MigrationPackage};
use crate::mirror::MirrorMode;

/// Well-known hardware-TPM owner auth for simulated platforms.
pub const HW_OWNER_AUTH: [u8; 20] = [0x11; 20];
/// Well-known hardware-TPM SRK auth for simulated platforms.
pub const HW_SRK_AUTH: [u8; 20] = [0x22; 20];

struct BackendThread {
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// The hardware attestation identity key, created lazily.
struct HwAik {
    handle: u32,
    auth: [u8; 20],
    modulus: Vec<u8>,
}

/// A guest with a connected vTPM device.
pub struct Guest {
    /// The guest's domain.
    pub domain: DomainId,
    /// Its vTPM instance.
    pub instance: InstanceId,
    /// The frontend driver (implements [`tpm::Transport`]).
    pub front: TpmFront,
}

impl Guest {
    /// A session-managing TPM client over this guest's frontend.
    pub fn client(&mut self, seed: &[u8]) -> TpmClient<&mut TpmFront> {
        TpmClient::new(&mut self.front, seed)
    }
}

/// One simulated physical host.
pub struct Platform {
    /// The hypervisor.
    pub hv: Arc<Hypervisor>,
    /// The physical TPM soldered to this host.
    pub hw_tpm: Arc<Mutex<Tpm>>,
    /// The vTPM manager in Dom0.
    pub manager: Arc<VtpmManager>,
    /// Whether devices are provisioned with ring scrubbing.
    pub scrub_rings: bool,
    backends: Mutex<Vec<BackendThread>>,
    seed: Vec<u8>,
    hw_aik: Mutex<Option<HwAik>>,
    registration_log: Mutex<Vec<[u8; 20]>>,
}

impl Platform {
    /// Build a platform with an explicit manager configuration.
    pub fn with_config(
        seed: &[u8],
        total_frames: usize,
        cfg: ManagerConfig,
        scrub_rings: bool,
    ) -> XenResult<Self> {
        let hv = Arc::new(Hypervisor::boot(total_frames, 32)?);
        // Manufacture and initialize the hardware TPM.
        let mut hw = Tpm::manufacture(&[seed, b"/hw-tpm"].concat(), cfg.vtpm_config.clone());
        {
            let mut client =
                TpmClient::new(DirectTransport { tpm: &mut hw, locality: 0 }, b"platform-boot");
            client.startup_clear().map_err(|_| XenError::BadImage("hw tpm startup"))?;
            client
                .take_ownership(&HW_OWNER_AUTH, &HW_SRK_AUTH)
                .map_err(|_| XenError::BadImage("hw tpm ownership"))?;
        }
        let manager = Arc::new(VtpmManager::new(Arc::clone(&hv), seed, cfg)?);
        Ok(Platform {
            hv,
            hw_tpm: Arc::new(Mutex::new(hw)),
            manager,
            scrub_rings,
            backends: Mutex::new(Vec::new()),
            seed: seed.to_vec(),
            hw_aik: Mutex::new(None),
            registration_log: Mutex::new(Vec::new()),
        })
    }

    /// The stock Xen vTPM system: cleartext resident state, no scrubbing,
    /// no access control (StockHook).
    pub fn baseline(seed: &[u8]) -> XenResult<Self> {
        Self::with_config(
            seed,
            8192,
            ManagerConfig { mirror_mode: MirrorMode::Cleartext, ..Default::default() },
            false,
        )
    }

    /// The improved mechanism layer: encrypted resident state + ring
    /// scrubbing. The `vtpm-ac` crate completes it by installing its hook
    /// and provisioning credentials.
    pub fn improved(seed: &[u8]) -> XenResult<Self> {
        Self::with_config(
            seed,
            8192,
            ManagerConfig { mirror_mode: MirrorMode::Encrypted, ..Default::default() },
            true,
        )
    }

    /// Launch a guest VM with a provisioned, connected vTPM device and a
    /// serving backend thread.
    pub fn launch_guest(&self, name: &str) -> XenResult<Guest> {
        let domain = self.hv.create_domain(
            DomainId::DOM0,
            DomainConfig { memory_pages: 32, ..DomainConfig::small(name) },
        )?;
        let instance = self.manager.create_instance()?;
        provision_device(&self.hv, domain, instance)?;
        let mut front = TpmFront::connect(Arc::clone(&self.hv), domain)?;
        front.scrub = self.scrub_rings;
        let mut back = TpmBack::connect(Arc::clone(&self.hv), Arc::clone(&self.manager), domain)?;
        back.scrub = self.scrub_rings;

        let shutdown = Arc::new(AtomicBool::new(false));
        let sd = Arc::clone(&shutdown);
        let handle = std::thread::spawn(move || back.run(&sd));
        self.backends.lock().push(BackendThread { shutdown, handle: Some(handle) });

        // Register the instance's identity with the hardware TPM for deep
        // attestation: extend its EK digest into the binding PCR and log it.
        self.register_attestation_identity(instance)?;

        Ok(Guest { domain, instance, front })
    }

    // ---- deep attestation ---------------------------------------------------

    /// EK modulus of a live instance (its attestation identity).
    pub fn instance_ek_modulus(&self, instance: InstanceId) -> Option<Vec<u8>> {
        self.manager
            .with_instance(instance, |i| i.tpm.ek_public().n.to_bytes_be())
    }

    /// Extend the instance's EK digest into the hardware binding PCR and
    /// append it to the registration log.
    pub fn register_attestation_identity(&self, instance: InstanceId) -> XenResult<()> {
        let ek = self
            .instance_ek_modulus(instance)
            .ok_or(XenError::BadImage("no such instance"))?;
        let digest = crate::deep_quote::registration_digest(&ek);
        let mut hw = self.hw_tpm.lock();
        let mut client =
            TpmClient::new(DirectTransport { tpm: &mut hw, locality: 0 }, b"register-aik");
        client
            .extend(crate::deep_quote::BINDING_PCR as u32, &digest)
            .map_err(|_| XenError::BadImage("binding pcr extend"))?;
        self.registration_log.lock().push(digest);
        Ok(())
    }

    /// Snapshot of the registration log (ships with deep quotes).
    pub fn registration_log(&self) -> Vec<[u8; 20]> {
        self.registration_log.lock().clone()
    }

    /// Hardware-TPM countersignature for a deep quote: quotes the binding
    /// PCR with external data chaining `nonce` and the guest's vTPM quote
    /// signature. Returns (binding PCR value, hw signature, hw AIK
    /// modulus). The hardware AIK is created lazily on first use.
    pub fn hw_countersign(
        &self,
        nonce: &[u8; 20],
        vtpm_signature: &[u8],
    ) -> XenResult<([u8; 20], Vec<u8>, Vec<u8>)> {
        let mut hw = self.hw_tpm.lock();
        // Lazily create the hardware AIK.
        let mut aik_slot = self.hw_aik.lock();
        if aik_slot.is_none() {
            let auth = {
                let digest = tpm_crypto::sha256(&[self.seed.as_slice(), b"/hw-aik"].concat());
                let mut a = [0u8; 20];
                a.copy_from_slice(&digest[..20]);
                a
            };
            let mut client =
                TpmClient::new(DirectTransport { tpm: &mut hw, locality: 0 }, b"hw-aik");
            let blob = client
                .create_wrap_key(
                    tpm::handle::SRK,
                    &HW_SRK_AUTH,
                    tpm::KeyUsage::Signing,
                    512,
                    &auth,
                    None,
                )
                .map_err(|_| XenError::BadImage("hw aik create"))?;
            let handle = client
                .load_key2(tpm::handle::SRK, &HW_SRK_AUTH, &blob)
                .map_err(|_| XenError::BadImage("hw aik load"))?;
            *aik_slot = Some(HwAik { handle, auth, modulus: blob.n });
        }
        let aik = aik_slot.as_ref().expect("just created");

        let external = crate::deep_quote::chain_digest(nonce, vtpm_signature);
        let sel = tpm::PcrSelection::of(&[crate::deep_quote::BINDING_PCR]);
        let mut client =
            TpmClient::new(DirectTransport { tpm: &mut hw, locality: 0 }, b"hw-quote");
        let (values, sig) = client
            .quote(aik.handle, &aik.auth, &external, &sel)
            .map_err(|_| XenError::BadImage("hw quote"))?;
        Ok((values[0], sig, aik.modulus.clone()))
    }

    /// This platform's hardware EK public key (what a migration source
    /// binds packages to).
    pub fn hw_ek_public(&self) -> RsaPublicKey {
        self.hw_tpm.lock().ek_public()
    }

    /// Export instance `id` for migration. `secure` selects the sealed
    /// protocol; `dst_ek` must be the destination's [`Platform::hw_ek_public`].
    pub fn export_instance(
        &self,
        id: InstanceId,
        secure: bool,
        dst_ek: Option<&RsaPublicKey>,
    ) -> Option<MigrationPackage> {
        let state = self.manager.export_instance_state(id)?;
        let package = if secure {
            let mut rng = Drbg::new(&[self.seed.as_slice(), b"/migration", &id.to_be_bytes()].concat());
            migration::package_sealed(&state, dst_ek?, &mut rng)
        } else {
            migration::package_clear(&state)
        };
        self.manager.destroy_instance(id).ok()?;
        Some(package)
    }

    /// Import a migrated instance; returns its new local id.
    pub fn import_instance(
        &self,
        package: &MigrationPackage,
    ) -> Result<InstanceId, migration::MigrationError> {
        let state = match package {
            MigrationPackage::Clear(s) => s.clone(),
            MigrationPackage::Sealed { .. } => {
                // EK decryption happens inside the hardware TPM.
                let hw = self.hw_tpm.lock();
                migration::open_package_with_tpm(package, &hw)?
            }
        };
        let instance =
            VtpmInstance::from_state(0, &state, &self.seed, self.manager.config().vtpm_config.clone())
                .map_err(|_| migration::MigrationError::Malformed)?;
        self.manager
            .adopt_instance(instance)
            .map_err(|_| migration::MigrationError::Malformed)
    }

    /// Open a migration package with this host's hardware TPM without
    /// adopting it — the cluster migration driver verifies the payload
    /// (destination binding, integrity, epoch header) *before* deciding
    /// to commit, and only then builds an instance from the plaintext.
    pub fn open_migration_package(
        &self,
        package: &MigrationPackage,
    ) -> Result<Vec<u8>, migration::MigrationError> {
        let hw = self.hw_tpm.lock();
        migration::open_package_with_tpm(package, &hw)
    }

    /// The seed this platform was built from (deterministic derivations —
    /// the cluster migration driver keys its per-host DRBGs off it).
    pub fn seed(&self) -> &[u8] {
        &self.seed
    }

    /// Simulate a Dom0 vTPM-manager crash + restart: stop the backends,
    /// drop the in-memory manager, and rebuild one from the mirror frames
    /// alone ([`VtpmManager::recover`]). Volatile per-instance flags (the
    /// migration quiesce bit) do not survive — callers holding durable
    /// migration state must re-assert them.
    pub fn recover_manager(&mut self) -> XenResult<crate::manager::RecoveryReport> {
        self.shutdown();
        let (mgr, report) = VtpmManager::recover(
            Arc::clone(&self.hv),
            &self.seed,
            self.manager.config().clone(),
        )?;
        // Publish the recovered manager. Existing Arc clones of the old
        // manager keep their dead view, exactly like stale handles into
        // a crashed daemon.
        self.manager = Arc::new(mgr);
        Ok(report)
    }

    /// Migrate a whole VM — domain memory image *and* its vTPM — to
    /// `destination`, using the sealed vTPM protocol. Returns the new
    /// (domain, instance) pair; the destination must still provision and
    /// connect a device for the restored domain (as real toolstacks do on
    /// the resume path) — [`Platform::attach_migrated_guest`] does both.
    pub fn migrate_vm(
        &self,
        guest: Guest,
        destination: &Platform,
    ) -> XenResult<(DomainId, InstanceId)> {
        let Guest { domain, instance, front } = guest;
        // Quiesce the device before harvesting memory.
        front.disconnect();
        // Ship the domain image.
        let image = self.hv.save_domain(DomainId::DOM0, domain)?;
        self.hv.complete_save(DomainId::DOM0, domain)?;
        let new_domain = destination.hv.restore_domain(DomainId::DOM0, &image)?;
        // Ship the vTPM, destination-bound.
        let package = self
            .export_instance(instance, true, Some(&destination.hw_ek_public()))
            .ok_or(XenError::BadImage("instance export"))?;
        let new_instance = destination
            .import_instance(&package)
            .map_err(|_| XenError::BadImage("instance import"))?;
        destination.register_attestation_identity(new_instance)?;
        Ok((new_domain, new_instance))
    }

    /// Resume path after [`Platform::migrate_vm`]: provision and connect
    /// the vTPM device for a restored domain, with a serving backend.
    pub fn attach_migrated_guest(
        &self,
        domain: DomainId,
        instance: InstanceId,
    ) -> XenResult<Guest> {
        provision_device(&self.hv, domain, instance)?;
        let mut front = TpmFront::connect(Arc::clone(&self.hv), domain)?;
        front.scrub = self.scrub_rings;
        let mut back = TpmBack::connect(Arc::clone(&self.hv), Arc::clone(&self.manager), domain)?;
        back.scrub = self.scrub_rings;
        let shutdown = Arc::new(AtomicBool::new(false));
        let sd = Arc::clone(&shutdown);
        let handle = std::thread::spawn(move || back.run(&sd));
        self.backends.lock().push(BackendThread { shutdown, handle: Some(handle) });
        Ok(Guest { domain, instance, front })
    }

    /// Stop every backend thread (also done on drop).
    pub fn shutdown(&self) {
        let mut backends = self.backends.lock();
        for b in backends.iter() {
            b.shutdown.store(true, Ordering::Relaxed);
        }
        for b in backends.iter_mut() {
            if let Some(h) = b.handle.take() {
                let _ = h.join();
            }
        }
        backends.clear();
    }
}

impl Drop for Platform {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpm::PcrSelection;

    #[test]
    fn baseline_platform_boots_and_serves() {
        let p = Platform::baseline(b"plat-1").unwrap();
        let mut g = p.launch_guest("web1").unwrap();
        let mut c = g.client(b"c");
        c.startup_clear().unwrap();
        assert_eq!(c.get_random(8).unwrap().len(), 8);
        assert!(p.hw_tpm.lock().is_owned());
    }

    #[test]
    fn improved_platform_scrubs_and_encrypts() {
        let p = Platform::improved(b"plat-2").unwrap();
        assert!(p.scrub_rings);
        assert_eq!(p.manager.mirror_mode(), MirrorMode::Encrypted);
        let mut g = p.launch_guest("web1").unwrap();
        assert!(g.front.scrub);
        let mut c = g.client(b"c");
        c.startup_clear().unwrap();
    }

    #[test]
    fn guests_get_distinct_instances_and_domains() {
        let p = Platform::baseline(b"plat-3").unwrap();
        let g1 = p.launch_guest("a").unwrap();
        let g2 = p.launch_guest("b").unwrap();
        assert_ne!(g1.domain, g2.domain);
        assert_ne!(g1.instance, g2.instance);
    }

    #[test]
    fn full_guest_workflow_seal_quote() {
        let p = Platform::baseline(b"plat-4").unwrap();
        let mut g = p.launch_guest("app").unwrap();
        let mut c = g.client(b"c");
        c.startup_clear().unwrap();
        let owner = [7u8; 20];
        let srk = [8u8; 20];
        c.take_ownership(&owner, &srk).unwrap();
        // Seal under the vTPM's SRK, bound to PCR 12.
        c.extend(12, &[1; 20]).unwrap();
        let blob = c
            .seal(tpm::handle::SRK, &srk, &[9; 20], Some(&PcrSelection::of(&[12])), b"db-key")
            .unwrap();
        assert_eq!(c.unseal(tpm::handle::SRK, &srk, &[9; 20], &blob).unwrap(), b"db-key");
        // Change the measurement -> unseal refused.
        c.extend(12, &[2; 20]).unwrap();
        assert!(c.unseal(tpm::handle::SRK, &srk, &[9; 20], &blob).is_err());
    }

    #[test]
    fn secure_migration_between_platforms() {
        let src = Platform::improved(b"src-host").unwrap();
        let dst = Platform::improved(b"dst-host").unwrap();

        // Give the source instance recognizable state.
        let mut g = src.launch_guest("mig").unwrap();
        let instance = g.instance;
        {
            let mut c = g.client(b"c");
            c.startup_clear().unwrap();
            c.extend(9, &[3; 20]).unwrap();
        }
        let pcr9 = src
            .manager
            .with_instance(instance, |i| i.tpm.pcrs().read(9).unwrap())
            .unwrap();
        let state_probe = src.manager.export_instance_state(instance).unwrap();

        let dst_ek = dst.hw_ek_public();
        let package = src.export_instance(instance, true, Some(&dst_ek)).unwrap();
        // Sealed package hides the state...
        assert!(!package.exposes(&state_probe[..64]));
        // ...and the source no longer has the instance.
        assert!(!src.manager.instance_ids().contains(&instance));

        let new_id = dst.import_instance(&package).unwrap();
        let pcr9_dst = dst
            .manager
            .with_instance(new_id, |i| i.tpm.pcrs().read(9).unwrap())
            .unwrap();
        assert_eq!(pcr9, pcr9_dst);
    }

    #[test]
    fn clear_migration_exposes_state() {
        let src = Platform::baseline(b"src-clear").unwrap();
        let g = src.launch_guest("mig").unwrap();
        let state = src.manager.export_instance_state(g.instance).unwrap();
        let package = src.export_instance(g.instance, false, None).unwrap();
        assert!(package.exposes(&state[..64]), "baseline migration ships cleartext");
    }

    #[test]
    fn sealed_package_rejected_by_wrong_platform() {
        let src = Platform::improved(b"src-x").unwrap();
        let dst = Platform::improved(b"dst-x").unwrap();
        let mallory = Platform::improved(b"mallory").unwrap();
        let g = src.launch_guest("mig").unwrap();
        let package = src.export_instance(g.instance, true, Some(&dst.hw_ek_public())).unwrap();
        assert_eq!(
            mallory.import_instance(&package).err(),
            Some(migration::MigrationError::WrongDestination)
        );
        // The rightful destination still succeeds.
        assert!(dst.import_instance(&package).is_ok());
    }

    #[test]
    fn whole_vm_migration_with_vtpm() {
        let src = Platform::improved(b"plat-vm-src").unwrap();
        let dst = Platform::improved(b"plat-vm-dst").unwrap();

        let mut g = src.launch_guest("moving").unwrap();
        // Give both the domain memory and the vTPM distinguishable state.
        let gf = src.hv.domain_info(g.domain).unwrap().frames[0];
        src.hv.page_write(g.domain, gf, 0, b"APP-MEMORY-STATE").unwrap();
        {
            let mut c = g.client(b"c");
            c.startup_clear().unwrap();
            c.extend(6, &[0x66; 20]).unwrap();
        }
        let pcr6 = src
            .manager
            .with_instance(g.instance, |i| i.tpm.pcrs().read(6).unwrap())
            .unwrap();
        let old_domain = g.domain;

        let (new_domain, new_instance) = src.migrate_vm(g, &dst).unwrap();
        // Source no longer has the domain.
        assert!(src.hv.domain_info(old_domain).is_err());

        // Destination: domain memory arrived...
        let df = dst.hv.domain_info(new_domain).unwrap().frames[0];
        let mut buf = [0u8; 16];
        dst.hv.page_read(new_domain, df, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"APP-MEMORY-STATE");
        // ...and the vTPM resumed with its PCRs intact, usable over a
        // freshly attached device.
        let mut g2 = dst.attach_migrated_guest(new_domain, new_instance).unwrap();
        let mut c2 = g2.client(b"c2");
        c2.startup_state().unwrap();
        assert_eq!(c2.pcr_read(6).unwrap(), pcr6);
        // The migrated instance is registered for deep attestation at the
        // destination.
        let ek = dst.instance_ek_modulus(new_instance).unwrap();
        assert!(dst
            .registration_log()
            .contains(&crate::deep_quote::registration_digest(&ek)));
    }

    #[test]
    fn deep_attestation_end_to_end() {
        use crate::deep_quote::{self, DeepQuote, DeepQuoteError};

        let p = Platform::improved(b"plat-deep").unwrap();
        let mut g = p.launch_guest("attested").unwrap();
        let ek_modulus = p.instance_ek_modulus(g.instance).unwrap();

        // The guest: boot, measure, make an AIK, quote with the nonce.
        let mut c = g.client(b"c");
        c.startup_clear().unwrap();
        let owner = [1u8; 20];
        let srk = [2u8; 20];
        let key_auth = [3u8; 20];
        c.take_ownership(&owner, &srk).unwrap();
        c.extend(0, &[0x42; 20]).unwrap();
        let blob = c
            .create_wrap_key(tpm::handle::SRK, &srk, tpm::KeyUsage::Signing, 512, &key_auth, None)
            .unwrap();
        let aik = c.load_key2(tpm::handle::SRK, &srk, &blob).unwrap();
        let nonce = [0x77u8; 20];
        let sel = tpm::PcrSelection::of(&[0]);
        let (values, vtpm_sig) = c.quote(aik, &key_auth, &nonce, &sel).unwrap();

        // The platform countersigns.
        let (hw_pcr, hw_sig, hw_aik_modulus) = p.hw_countersign(&nonce, &vtpm_sig).unwrap();

        let bundle = DeepQuote {
            vtpm_pcr_values: values,
            vtpm_selection: vec![0],
            vtpm_signature: vtpm_sig,
            vtpm_aik_modulus: blob.n.clone(),
            vtpm_ek_modulus: ek_modulus,
            hw_binding_pcr: hw_pcr,
            hw_signature: hw_sig,
            hw_aik_modulus,
            registration_log: p.registration_log(),
        };
        deep_quote::verify(&bundle, &nonce).unwrap();

        // Negatives.
        // Wrong nonce: the vTPM signature check fails first.
        assert_eq!(
            deep_quote::verify(&bundle, &[0x78; 20]),
            Err(DeepQuoteError::BadVtpmSignature)
        );
        // Unregistered instance: claim a different EK.
        let mut spoofed = bundle.clone();
        spoofed.vtpm_ek_modulus = vec![0xFF; 128];
        assert_eq!(
            deep_quote::verify(&spoofed, &nonce),
            Err(DeepQuoteError::UnregisteredInstance)
        );
        // Tampered log: replay no longer matches the attested PCR.
        let mut cut = bundle.clone();
        cut.registration_log.push([9; 20]);
        assert_eq!(deep_quote::verify(&cut, &nonce), Err(DeepQuoteError::LogMismatch));
        // Tampered hardware signature.
        let mut badhw = bundle.clone();
        badhw.hw_signature[0] ^= 1;
        assert_eq!(
            deep_quote::verify(&badhw, &nonce),
            Err(DeepQuoteError::BadHwSignature)
        );
    }

    #[test]
    fn deep_attestation_covers_multiple_guests() {
        use crate::deep_quote;

        let p = Platform::improved(b"plat-deep-multi").unwrap();
        let g1 = p.launch_guest("a").unwrap();
        let g2 = p.launch_guest("b").unwrap();
        let log = p.registration_log();
        assert_eq!(log.len(), 2);
        // Both instances' EK digests are present and ordered.
        let d1 = deep_quote::registration_digest(&p.instance_ek_modulus(g1.instance).unwrap());
        let d2 = deep_quote::registration_digest(&p.instance_ek_modulus(g2.instance).unwrap());
        assert_eq!(log, vec![d1, d2]);
        // The hardware PCR matches the replayed log.
        let hw_pcr = p.hw_tpm.lock().pcrs().read(deep_quote::BINDING_PCR).unwrap();
        assert_eq!(deep_quote::replay_log(&log), hw_pcr);
    }

    #[test]
    fn shutdown_idempotent() {
        let p = Platform::baseline(b"plat-sd").unwrap();
        let _g = p.launch_guest("a").unwrap();
        p.shutdown();
        p.shutdown();
    }
}
