//! A vTPM instance: one virtual TPM bound to one guest.

use tpm::{Tpm, TpmConfig};

/// Instance identifier within one manager.
pub type InstanceId = u32;

/// Per-instance statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstanceStats {
    /// Commands dispatched to the TPM.
    pub commands: u64,
    /// Highest sequence number seen (improved mode bookkeeping).
    pub last_seq: u64,
}

/// One virtual TPM plus its bookkeeping.
pub struct VtpmInstance {
    /// The instance id.
    pub id: InstanceId,
    /// The virtual TPM itself.
    pub tpm: Tpm,
    /// Statistics.
    pub stats: InstanceStats,
    /// TPM state generation last pushed to the manager's resident-image
    /// mirror. `tpm.state_generation() == mirrored_generation` means the
    /// mirror is current and a re-serialize + re-mirror can be skipped.
    pub mirrored_generation: u64,
    /// Set (under the instance lock) by `destroy_instance` before the
    /// mirror is scrubbed. Requests that cloned the instance handle
    /// before it was unrouted check this after locking and bail instead
    /// of mutating the TPM — a post-scrub mutation would re-mirror the
    /// state and leave an orphaned resident image in Dom0 frames.
    pub destroyed: bool,
    /// Set while the instance is frozen for live migration: guest
    /// requests are refused (the frontend sees `NoInstance` and holds
    /// off) but toolstack access via `with_instance` still works so the
    /// state can be exported. Cleared on abort; a recovered manager
    /// starts with the flag down — the migration driver re-asserts it
    /// from its durable journal.
    pub quiesced: bool,
}

impl VtpmInstance {
    /// Create a fresh instance; its TPM is manufactured from a seed mixed
    /// with the id so two instances never share key material.
    pub fn new(id: InstanceId, manager_seed: &[u8], cfg: TpmConfig) -> Self {
        let mut seed = manager_seed.to_vec();
        seed.extend_from_slice(b"/instance/");
        seed.extend_from_slice(&id.to_be_bytes());
        VtpmInstance {
            id,
            tpm: Tpm::manufacture(&seed, cfg),
            stats: InstanceStats::default(),
            mirrored_generation: u64::MAX,
            destroyed: false,
            quiesced: false,
        }
    }

    /// Rebuild an instance from a TPM state snapshot (restore/migration).
    pub fn from_state(
        id: InstanceId,
        state: &[u8],
        reseed: &[u8],
        cfg: TpmConfig,
    ) -> Result<Self, tpm::StateError> {
        let tpm = Tpm::restore_state(state, reseed, cfg)?;
        Ok(VtpmInstance {
            id,
            tpm,
            stats: InstanceStats::default(),
            mirrored_generation: u64::MAX,
            destroyed: false,
            quiesced: false,
        })
    }

    /// Execute a command and update counters.
    pub fn execute(&mut self, locality: u8, command: &[u8]) -> Vec<u8> {
        self.stats.commands += 1;
        self.tpm.execute(locality, command)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_have_distinct_tpms() {
        let a = VtpmInstance::new(1, b"mgr", TpmConfig::default());
        let b = VtpmInstance::new(2, b"mgr", TpmConfig::default());
        assert_ne!(a.tpm.serialize_state(), b.tpm.serialize_state());
        // Same id + seed => identical TPM (determinism).
        let a2 = VtpmInstance::new(1, b"mgr", TpmConfig::default());
        assert_eq!(a.tpm.serialize_state(), a2.tpm.serialize_state());
    }

    #[test]
    fn execute_counts_commands() {
        let mut i = VtpmInstance::new(1, b"mgr", TpmConfig::default());
        // Startup via raw bytes.
        let mut cmd = vec![0x00, 0xC1, 0, 0, 0, 12, 0, 0, 0, 0x99, 0, 1];
        let resp = i.execute(0, &cmd);
        assert_eq!(tpm::parse_response(&resp).unwrap().1, 0);
        cmd[11] = 1;
        assert_eq!(i.stats.commands, 1);
    }

    #[test]
    fn from_state_roundtrip() {
        let mut orig = VtpmInstance::new(9, b"mgr", TpmConfig::default());
        // Start it and extend a PCR so the state is distinctive.
        let startup = vec![0x00, 0xC1, 0, 0, 0, 12, 0, 0, 0, 0x99, 0, 1];
        orig.execute(0, &startup);
        orig.tpm.pcrs_mut().extend(5, &[7; 20]);
        let snap = orig.tpm.serialize_state();
        let restored = VtpmInstance::from_state(9, &snap, b"reseed", TpmConfig::default()).unwrap();
        assert_eq!(restored.tpm.pcrs().read(5), orig.tpm.pcrs().read(5));
        assert_eq!(restored.id, 9);
    }
}
