//! # vtpm
//!
//! The Xen vTPM subsystem, rebuilt on the `xen-sim` substrate with the
//! `tpm` emulator — the system that *Improvement for vTPM Access Control
//! on Xen* (ICPPW 2010) modifies.
//!
//! Architecture (mirroring Berger et al., USENIX Security 2006, as
//! shipped in Xen):
//!
//! ```text
//!  guest                     Dom0
//!  ┌───────────────┐         ┌──────────────────────────────┐
//!  │ TpmClient     │         │ TpmBack ──► VtpmManager      │
//!  │   │           │  ring   │               │  ┌─────────┐ │
//!  │ TpmFront ─────┼────────►│               ├─►│instance1│ │
//!  └───────────────┘ +event  │               │  └─────────┘ │
//!                    channel │               │  ┌─────────┐ │
//!                            │  StateMirror ◄┴─►│instance2│ │
//!                            │  (Dom0 frames)   └─────────┘ │
//!                            └─────────────────┬────────────┘
//!                                     hardware TPM (seals master key)
//! ```
//!
//! The crate exposes the [`hook::AccessHook`] seam: the manager consults
//! it before dispatching every request. [`hook::StockHook`] (allow
//! everything) is the baseline; the `vtpm-ac` crate implements the
//! paper's improved access control behind the same trait.
//!
//! Mechanisms that belong to the *improved* configuration but live here
//! (they are transport/memory mechanics, not policy): the encrypted
//! state mirror ([`mirror::MirrorMode::Encrypted`]), ring scrubbing
//! (`scrub` flags on the drivers), sealed persistence ([`persist`]) and
//! destination-bound migration ([`migration`]).

pub mod admission;
pub mod deep_quote;
pub mod device;
pub mod hook;
pub mod instance;
pub mod manager;
pub mod migration;
pub mod mirror;
pub mod persist;
pub mod platform;
pub mod server;
pub mod transport;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionError};
pub use deep_quote::{DeepQuote, DeepQuoteError, BINDING_PCR};
pub use device::{provision_device, TpmBack, TpmFront, VTPM_FAIL_RC};
pub use hook::{AccessDecision, AccessHook, DenyReason, RequestContext, StockHook};
pub use instance::{InstanceId, InstanceStats, VtpmInstance};
pub use manager::{ManagerConfig, ManagerStats, ManagerStatsSnapshot, RecoveryReport, VtpmManager};
pub use migration::{MigrationError, MigrationPackage};
pub use mirror::{FlushPolicy, MirrorIoStats, MirrorMode, MirrorRecovery, StateMirror};
pub use persist::{persist, restore, PersistError};
pub use platform::{Guest, Platform, HW_OWNER_AUTH, HW_SRK_AUTH};
pub use server::ManagerServer;
pub use transport::{Envelope, ResponseEnvelope, ResponseStatus, TAG_LEN};
