//! The vTPM transport envelope.
//!
//! Every TPM command crossing the split driver is wrapped in a small
//! envelope identifying the claimed sender, the target instance, and a
//! sequence number. In the **baseline** (stock Xen vTPM) configuration
//! the envelope is unauthenticated — the manager believes whatever it
//! says, which is weakness W1/W2. The **improved** configuration adds an
//! HMAC-SHA256 tag over all envelope fields plus the command bytes, keyed
//! by a per-domain credential provisioned outside XenStore (mechanism AC1).

use tpm::buffer::{BufError, Reader, Writer};
use tpm_crypto::hmac_sha256;

/// Magic bytes opening every envelope ("VP" for vTPM Packet).
const MAGIC: u16 = 0x5650;
/// Envelope format version.
const VERSION: u8 = 1;

/// Length of the AC1 authentication tag.
pub const TAG_LEN: usize = 32;

/// A request envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sender's claimed domain id.
    pub domain: u32,
    /// Target vTPM instance.
    pub instance: u32,
    /// Monotonic per-(domain,instance) sequence number.
    pub seq: u64,
    /// Locality the command claims to arrive at.
    pub locality: u8,
    /// Optional AC1 tag.
    pub tag: Option<[u8; TAG_LEN]>,
    /// The raw TPM command.
    pub command: Vec<u8>,
}

impl Envelope {
    /// Serialize to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(32 + TAG_LEN + self.command.len());
        w.u16(MAGIC).u8(VERSION);
        w.u8(self.tag.is_some() as u8);
        w.u32(self.domain).u32(self.instance);
        w.u32((self.seq >> 32) as u32).u32(self.seq as u32);
        w.u8(self.locality);
        if let Some(tag) = &self.tag {
            w.bytes(tag);
        }
        w.sized_u32(&self.command);
        w.into_vec()
    }

    /// Parse from wire bytes.
    pub fn decode(data: &[u8]) -> Result<Envelope, BufError> {
        let mut r = Reader::new(data);
        if r.u16()? != MAGIC || r.u8()? != VERSION {
            return Err(BufError::BadLength);
        }
        let has_tag = r.u8()? != 0;
        let domain = r.u32()?;
        let instance = r.u32()?;
        let seq = ((r.u32()? as u64) << 32) | r.u32()? as u64;
        let locality = r.u8()?;
        let tag = if has_tag {
            let mut t = [0u8; TAG_LEN];
            t.copy_from_slice(r.bytes(TAG_LEN)?);
            Some(t)
        } else {
            None
        };
        let command = r.sized_u32()?.to_vec();
        Ok(Envelope { domain, instance, seq, locality, tag, command })
    }

    /// Compute the AC1 tag for this envelope's fields under `key`.
    pub fn compute_tag(&self, key: &[u8]) -> [u8; TAG_LEN] {
        hmac_sha256(key, &self.tag_material())
    }

    /// The bytes the tag covers: every field except the tag itself.
    fn tag_material(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(24 + self.command.len());
        w.u32(self.domain).u32(self.instance);
        w.u32((self.seq >> 32) as u32).u32(self.seq as u32);
        w.u8(self.locality);
        w.bytes(&self.command);
        w.into_vec()
    }

    /// Attach a tag computed under `key`.
    pub fn sign(mut self, key: &[u8]) -> Envelope {
        self.tag = Some(self.compute_tag(key));
        self
    }
}

/// Response status carried back to the frontend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseStatus {
    /// Command executed; body is the TPM response.
    Ok,
    /// Access control denied the request.
    Denied,
    /// The named instance does not exist.
    NoInstance,
    /// Envelope was malformed.
    Malformed,
    /// Refused at ring ingress by per-domain admission control; the
    /// frontend should back off before retrying.
    Throttled,
}

impl ResponseStatus {
    fn to_u8(self) -> u8 {
        match self {
            ResponseStatus::Ok => 0,
            ResponseStatus::Denied => 1,
            ResponseStatus::NoInstance => 2,
            ResponseStatus::Malformed => 3,
            ResponseStatus::Throttled => 4,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(ResponseStatus::Ok),
            1 => Some(ResponseStatus::Denied),
            2 => Some(ResponseStatus::NoInstance),
            3 => Some(ResponseStatus::Malformed),
            4 => Some(ResponseStatus::Throttled),
            _ => None,
        }
    }

    /// Stable lowercase label, matching the telemetry outcome labels.
    pub fn name(self) -> &'static str {
        match self {
            ResponseStatus::Ok => "ok",
            ResponseStatus::Denied => "denied",
            ResponseStatus::NoInstance => "no-instance",
            ResponseStatus::Malformed => "malformed",
            ResponseStatus::Throttled => "throttled",
        }
    }
}

/// A response envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseEnvelope {
    /// Echo of the request sequence number.
    pub seq: u64,
    /// Outcome.
    pub status: ResponseStatus,
    /// TPM response bytes (empty unless `status == Ok`).
    pub body: Vec<u8>,
}

impl ResponseEnvelope {
    /// Serialize to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(16 + self.body.len());
        w.u16(MAGIC).u8(VERSION).u8(self.status.to_u8());
        w.u32((self.seq >> 32) as u32).u32(self.seq as u32);
        w.sized_u32(&self.body);
        w.into_vec()
    }

    /// Parse from wire bytes.
    pub fn decode(data: &[u8]) -> Result<ResponseEnvelope, BufError> {
        let mut r = Reader::new(data);
        if r.u16()? != MAGIC || r.u8()? != VERSION {
            return Err(BufError::BadLength);
        }
        let status = ResponseStatus::from_u8(r.u8()?).ok_or(BufError::BadLength)?;
        let seq = ((r.u32()? as u64) << 32) | r.u32()? as u64;
        let body = r.sized_u32()?.to_vec();
        Ok(ResponseEnvelope { seq, status, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Envelope {
        Envelope {
            domain: 3,
            instance: 7,
            seq: 0x1_0000_0002,
            locality: 0,
            tag: None,
            command: vec![0xC1, 0x00, 0x01, 0x02],
        }
    }

    #[test]
    fn envelope_roundtrip_untagged() {
        let e = sample();
        let bytes = e.encode();
        assert_eq!(Envelope::decode(&bytes).unwrap(), e);
    }

    #[test]
    fn envelope_roundtrip_tagged() {
        let e = sample().sign(b"credential-key");
        assert!(e.tag.is_some());
        let bytes = e.encode();
        let d = Envelope::decode(&bytes).unwrap();
        assert_eq!(d, e);
        // Tag verifies.
        assert_eq!(d.compute_tag(b"credential-key"), d.tag.unwrap());
        // And fails under the wrong key.
        assert_ne!(d.compute_tag(b"other-key"), d.tag.unwrap());
    }

    #[test]
    fn tag_covers_every_field() {
        let base = sample().sign(b"k");
        let tag = base.tag.unwrap();
        for mutate in [
            |e: &mut Envelope| e.domain += 1,
            |e: &mut Envelope| e.instance += 1,
            |e: &mut Envelope| e.seq += 1,
            |e: &mut Envelope| e.locality = 2,
            |e: &mut Envelope| e.command[0] ^= 1,
        ] {
            let mut m = base.clone();
            mutate(&mut m);
            assert_ne!(m.compute_tag(b"k"), tag, "mutation must invalidate tag");
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Envelope::decode(&[]).is_err());
        assert!(Envelope::decode(&[0xFF; 8]).is_err());
        let mut bytes = sample().encode();
        bytes[0] ^= 0xFF; // magic
        assert!(Envelope::decode(&bytes).is_err());
    }

    #[test]
    fn decode_rejects_truncated_tagged() {
        let mut bytes = sample().sign(b"k").encode();
        bytes.truncate(20);
        assert!(Envelope::decode(&bytes).is_err());
    }

    #[test]
    fn response_roundtrip_all_statuses() {
        for status in [
            ResponseStatus::Ok,
            ResponseStatus::Denied,
            ResponseStatus::NoInstance,
            ResponseStatus::Malformed,
            ResponseStatus::Throttled,
        ] {
            let r = ResponseEnvelope { seq: 42, status, body: vec![1, 2, 3] };
            let d = ResponseEnvelope::decode(&r.encode()).unwrap();
            assert_eq!(d, r);
        }
    }

    #[test]
    fn response_decode_rejects_bad_status() {
        let mut bytes = ResponseEnvelope { seq: 1, status: ResponseStatus::Ok, body: vec![] }
            .encode();
        bytes[3] = 99;
        assert!(ResponseEnvelope::decode(&bytes).is_err());
    }

    #[test]
    fn seq_survives_full_64_bits() {
        let mut e = sample();
        e.seq = u64::MAX - 5;
        let d = Envelope::decode(&e.encode()).unwrap();
        assert_eq!(d.seq, u64::MAX - 5);
    }
}
