//! Worker-pool front for the manager.
//!
//! The scalability experiment (R-F4) measures how aggregate vTPM
//! throughput grows with manager worker threads. This server owns N
//! workers pulling jobs from one crossbeam MPMC channel; each job is a
//! (source, envelope) pair answered over a per-job reply channel.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use xen_sim::DomainId;

use crate::manager::VtpmManager;

struct Job {
    source: DomainId,
    envelope: Vec<u8>,
    reply: Sender<Vec<u8>>,
}

/// A running worker pool over one manager.
pub struct ManagerServer {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ManagerServer {
    /// Spawn `n_workers` threads serving `manager`.
    pub fn new(manager: Arc<VtpmManager>, n_workers: usize) -> Self {
        assert!(n_workers > 0);
        let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
        let workers = (0..n_workers)
            .map(|_| {
                let rx = rx.clone();
                let manager = Arc::clone(&manager);
                std::thread::spawn(move || {
                    // Channel disconnect (sender dropped) ends the worker.
                    while let Ok(job) = rx.recv() {
                        let resp = manager.handle(job.source, &job.envelope);
                        // Receiver may have given up; that's fine.
                        let _ = job.reply.send(resp);
                    }
                })
            })
            .collect();
        ManagerServer { tx: Some(tx), workers }
    }

    /// Submit a request; the response arrives on the returned channel.
    pub fn submit(&self, source: DomainId, envelope: Vec<u8>) -> Receiver<Vec<u8>> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .as_ref()
            .expect("server running")
            .send(Job { source, envelope, reply: reply_tx })
            .expect("workers alive");
        reply_rx
    }

    /// Submit and block for the response.
    pub fn call(&self, source: DomainId, envelope: Vec<u8>) -> Vec<u8> {
        self.submit(source, envelope).recv().expect("worker replies")
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Stop the pool, joining every worker.
    pub fn shutdown(mut self) {
        self.tx.take(); // disconnect: workers drain and exit
        for w in self.workers.drain(..) {
            w.join().expect("worker exits cleanly");
        }
    }
}

impl Drop for ManagerServer {
    fn drop(&mut self) {
        self.tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::ManagerConfig;
    use crate::transport::{Envelope, ResponseEnvelope, ResponseStatus};
    use xen_sim::Hypervisor;

    fn setup() -> (Arc<VtpmManager>, u32) {
        let hv = Arc::new(Hypervisor::boot(4096, 8).unwrap());
        let mgr = Arc::new(
            VtpmManager::new(hv, b"server-test", ManagerConfig::default()).unwrap(),
        );
        let id = mgr.create_instance().unwrap();
        (mgr, id)
    }

    fn startup_env(instance: u32, seq: u64) -> Vec<u8> {
        Envelope {
            domain: 1,
            instance,
            seq,
            locality: 0,
            tag: None,
            command: vec![0x00, 0xC1, 0, 0, 0, 12, 0, 0, 0, 0x99, 0, 1],
        }
        .encode()
    }

    #[test]
    fn serves_requests_through_pool() {
        let (mgr, id) = setup();
        let server = ManagerServer::new(Arc::clone(&mgr), 4);
        assert_eq!(server.workers(), 4);
        for s in 1..=20u64 {
            let resp = server.call(DomainId(1), startup_env(id, s));
            assert_eq!(
                ResponseEnvelope::decode(&resp).unwrap().status,
                ResponseStatus::Ok
            );
        }
        server.shutdown();
        assert_eq!(mgr.stats.snapshot().0, 20);
    }

    #[test]
    fn concurrent_submissions_all_answered() {
        let (mgr, id) = setup();
        let server = Arc::new(ManagerServer::new(Arc::clone(&mgr), 4));
        let mut handles = Vec::new();
        for t in 0..8 {
            let server = Arc::clone(&server);
            handles.push(std::thread::spawn(move || {
                for s in 0..25u64 {
                    let resp = server.call(DomainId(1), startup_env(id, t * 100 + s));
                    assert_eq!(
                        ResponseEnvelope::decode(&resp).unwrap().status,
                        ResponseStatus::Ok
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(mgr.stats.snapshot().0, 200);
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let (mgr, id) = setup();
        {
            let server = ManagerServer::new(Arc::clone(&mgr), 2);
            server.call(DomainId(1), startup_env(id, 1));
        } // dropped here
        assert_eq!(mgr.stats.snapshot().0, 1);
    }
}
