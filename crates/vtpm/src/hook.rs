//! The access-control seam.
//!
//! The vTPM manager consults an [`AccessHook`] before dispatching any
//! request to an instance. The stock Xen vTPM has no such check — that is
//! [`StockHook`], which allows everything and models the baseline the
//! paper improves on. The improved hook (crate `vtpm-ac`) implements
//! credential verification, command filtering, replay protection and
//! audit logging behind this same trait, so the manager code path is
//! byte-identical between configurations except for the hook call.

use xen_sim::DomainId;

/// Everything the hook may consider about one request.
#[derive(Debug, Clone, Copy)]
pub struct RequestContext<'a> {
    /// End-to-end telemetry request id, minted by the manager at
    /// ingress. Hooks thread it into their audit records so the AC4
    /// hash-chained log is joinable against telemetry spans; it carries
    /// no authority and plays no part in the access decision (0 for
    /// contexts built outside the request path, e.g. tests).
    pub request_id: u64,
    /// The domain the request *actually* arrived from (ring ownership —
    /// the backend knows this reliably).
    pub source_domain: DomainId,
    /// The domain the envelope claims.
    pub claimed_domain: u32,
    /// The instance the envelope targets.
    pub instance: u32,
    /// Envelope sequence number.
    pub seq: u64,
    /// Claimed locality.
    pub locality: u8,
    /// TPM ordinal, if the command parses far enough to have one.
    pub ordinal: Option<u32>,
    /// The AC1 tag, if the envelope carried one.
    pub tag: Option<&'a [u8; crate::transport::TAG_LEN]>,
    /// The raw TPM command bytes (covered by the tag).
    pub command: &'a [u8],
}

/// Why a request was denied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DenyReason {
    /// The claimed domain has no provisioned credential.
    NoCredential,
    /// The tag was missing or failed verification.
    BadTag,
    /// The sequence number did not advance (replay).
    Replay,
    /// The (domain, instance) binding does not match the manager's table.
    BindingMismatch,
    /// The policy forbids this ordinal for this domain.
    OrdinalDenied,
    /// The claimed source domain disagrees with the ring owner.
    SourceMismatch,
    /// The claimed locality exceeds what the domain is allowed.
    LocalityDenied,
    /// A presented deep quote fell outside the verifier plane's
    /// freshness window (issued in a nonce-window too far in the past).
    StaleQuote,
    /// A deep quote was re-presented by the same verifier after already
    /// being consumed (replay-ledger hit in the verifier plane).
    QuoteReplay,
}

impl DenyReason {
    /// Stable numeric code for telemetry/export. Matches the order of
    /// `vtpm_telemetry::DENY_LABELS`; codes the table does not know
    /// collapse into its final "other" slot.
    pub fn code(self) -> u8 {
        match self {
            DenyReason::NoCredential => 0,
            DenyReason::BadTag => 1,
            DenyReason::Replay => 2,
            DenyReason::BindingMismatch => 3,
            DenyReason::OrdinalDenied => 4,
            DenyReason::SourceMismatch => 5,
            DenyReason::LocalityDenied => 6,
            // 7 and 8 are taken by the migration-protocol and admission
            // refusals recorded directly against the telemetry table.
            DenyReason::StaleQuote => 9,
            DenyReason::QuoteReplay => 10,
        }
    }
}

impl std::fmt::Display for DenyReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DenyReason::NoCredential => "no credential",
            DenyReason::BadTag => "bad or missing tag",
            DenyReason::Replay => "sequence replay",
            DenyReason::BindingMismatch => "binding mismatch",
            DenyReason::OrdinalDenied => "ordinal denied by policy",
            DenyReason::SourceMismatch => "source domain mismatch",
            DenyReason::LocalityDenied => "locality denied",
            DenyReason::StaleQuote => "stale quote (freshness window)",
            DenyReason::QuoteReplay => "quote replay",
        };
        f.write_str(s)
    }
}

/// The hook's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessDecision {
    /// Dispatch the command.
    Allow,
    /// Refuse it.
    Deny(DenyReason),
}

/// The access-control interface the manager calls.
pub trait AccessHook: Send + Sync {
    /// Decide whether to dispatch. Called with the manager's locks *not*
    /// held; must be internally synchronized.
    fn authorize(&self, ctx: &RequestContext<'_>) -> AccessDecision;

    /// Virtual-time cost of the check (ns), charged to the host clock so
    /// latency experiments include the mechanism's modelled hardware cost.
    fn overhead_ns(&self, _ctx: &RequestContext<'_>) -> u64 {
        0
    }

    /// Human-readable name for reports.
    fn name(&self) -> &str;
}

/// The stock Xen vTPM behaviour: no access control whatsoever.
pub struct StockHook;

impl AccessHook for StockHook {
    fn authorize(&self, _ctx: &RequestContext<'_>) -> AccessDecision {
        AccessDecision::Allow
    }

    fn name(&self) -> &str {
        "stock"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_hook_allows_anything() {
        let hook = StockHook;
        let ctx = RequestContext {
            request_id: 0,
            source_domain: DomainId(5),
            claimed_domain: 1, // spoofed!
            instance: 99,
            seq: 0,
            locality: 4,
            ordinal: Some(tpm::ordinal::TAKE_OWNERSHIP),
            tag: None,
            command: &[],
        };
        assert_eq!(hook.authorize(&ctx), AccessDecision::Allow);
        assert_eq!(hook.overhead_ns(&ctx), 0);
        assert_eq!(hook.name(), "stock");
    }

    #[test]
    fn deny_reasons_display() {
        assert_eq!(DenyReason::Replay.to_string(), "sequence replay");
        assert_eq!(DenyReason::BadTag.to_string(), "bad or missing tag");
    }

    #[test]
    fn deny_codes_are_distinct_and_stable() {
        let all = [
            DenyReason::NoCredential,
            DenyReason::BadTag,
            DenyReason::Replay,
            DenyReason::BindingMismatch,
            DenyReason::OrdinalDenied,
            DenyReason::SourceMismatch,
            DenyReason::LocalityDenied,
        ];
        for (i, r) in all.iter().enumerate() {
            assert_eq!(r.code() as usize, i);
        }
    }
}
