//! `fleet_bench` — the fleet control plane's numbers, as machine-
//! readable JSON (`BENCH_fleet.json`, one object, stable field order).
//! Three measurements:
//!
//! * **Churn sweep** — the R-M2 scenario (phi-accrual detection,
//!   concurrent drivers, rebalancer under host churn): per-seed
//!   committed/conflict/suspect counts, the cluster-wide p99
//!   quiesce→commit blackout in virtual time, exactly-once accounting,
//!   and byte-identical replay of every seed.
//! * **Detector ingest** — wall ns per heartbeat through the
//!   phi-accrual estimator at fleet width, plus ns per phi query. This
//!   is the budget the control plane pays per heartbeat received.
//! * **Controller tick** — wall ns per `Fleet::tick` over a live
//!   cluster at bench scale with the driver pool saturated; the
//!   steady-state cost of running the control loop.
//!
//! ```text
//! fleet_bench [--quick] [--out PATH]
//! ```
//!
//! Exits nonzero if the R-M2 gate fails (lost/duplicated/orphaned
//! vTPM, a double-winner conflict, a replay mismatch, or a blown
//! blackout budget) — `scripts/bench.sh` relies on that.

use std::time::Instant;

use vtpm_bench::exp::m2;
use vtpm_cluster::{Cluster, ClusterConfig};
use vtpm_fleet::{FailureDetectorConfig, Fleet, FleetConfig, PhiAccrualDetector};

/// Wall ns per heartbeat ingested and per phi query, median of `reps`
/// passes over `hosts` hosts x `beats` heartbeats each.
fn detector_ns(hosts: usize, beats: usize, reps: usize) -> (f64, f64) {
    let mut ingest: Vec<f64> = Vec::with_capacity(reps);
    let mut query: Vec<f64> = Vec::with_capacity(reps);
    for _ in 0..reps {
        let mut d = PhiAccrualDetector::new(FailureDetectorConfig::default());
        for h in 0..hosts {
            d.register(h, 0);
        }
        let period = 1_000_000u64; // 1ms heartbeat period, slight per-host skew
        let t0 = Instant::now();
        for b in 0..beats {
            for h in 0..hosts {
                d.heartbeat(h, b as u64 * period + h as u64 * 37);
            }
        }
        ingest.push(t0.elapsed().as_nanos() as f64 / (beats * hosts) as f64);
        let now = beats as u64 * period;
        let t0 = Instant::now();
        for h in 0..hosts {
            std::hint::black_box(d.phi(h, now));
        }
        query.push(t0.elapsed().as_nanos() as f64 / hosts as f64);
    }
    ingest.sort_by(|a, b| a.total_cmp(b));
    query.sort_by(|a, b| a.total_cmp(b));
    (ingest[reps / 2], query[reps / 2])
}

/// Wall ns per controller tick at (`hosts`, `vms`) scale, median of
/// `reps` passes of `ticks` ticks. The skewed initial placement keeps
/// the rebalancer and the driver pool busy for the whole measurement.
fn tick_ns(hosts: usize, vms: usize, ticks: usize, reps: usize) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|rep| {
            let seed = format!("fleet-bench-tick-{rep}");
            let mut c = Cluster::new(
                seed.as_bytes(),
                ClusterConfig { hosts, frames_per_host: 4096, ..Default::default() },
            )
            .expect("cluster");
            for _ in 0..vms {
                c.create_vm().expect("vm");
            }
            let mut fleet = Fleet::new(FleetConfig::default(), &c);
            let t0 = Instant::now();
            for _ in 0..ticks {
                fleet.tick(&mut c);
            }
            t0.elapsed().as_nanos() as f64 / ticks as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_fleet.json")
        .to_string();

    // Churn sweep: the gated R-M2 numbers (full scale is `repro m2`'s
    // 100x1000; the bench keeps the artifact minutes-free).
    let (hosts, vms, rounds, seeds) = if quick { (8, 24, 6, 2) } else { (24, 120, 8, 3) };
    let report = m2::run(hosts, vms, rounds, seeds);
    let gate_failed = m2::gate_failed(&report);

    let (dhosts, beats, dreps) = if quick { (100, 2_000, 3) } else { (100, 20_000, 5) };
    let (ingest_ns, phi_ns) = detector_ns(dhosts, beats, dreps);

    let (thosts, tvms, ticks, treps) = if quick { (16, 64, 50, 3) } else { (32, 256, 200, 5) };
    let tick = tick_ns(thosts, tvms, ticks, treps);

    let rows = report
        .rows
        .iter()
        .map(|x| {
            format!(
                "{{\"seed\":{},\"committed\":{},\"failed\":{},\"conflicts\":{},\
                 \"conflict_pairs\":{},\"multi_winner\":{},\"crashes\":{},\"suspects\":{},\
                 \"false_suspects\":{},\"downtime_p99_ns\":{},\"downtime_max_ns\":{},\
                 \"accounting_violations\":{},\"replay_ok\":{}}}",
                json_str(&x.seed),
                x.committed,
                x.failed,
                x.conflicts,
                x.conflict_pairs,
                x.multi_winner,
                x.crashes,
                x.suspects,
                x.false_suspects,
                x.downtime_p99_ns,
                x.downtime_max_ns,
                x.accounting_violations,
                x.replay_ok,
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let json = format!(
        "{{\"bench\":\"fleet\",\"quick\":{},\"hosts\":{},\"vms\":{},\"rounds\":{},\
         \"sweep\":[{}],\"worst_p99_downtime_ns\":{},\"budget_p99_ns\":{},\
         \"detector_hosts\":{},\"heartbeat_ingest_ns\":{:.1},\"phi_query_ns\":{:.1},\
         \"tick_hosts\":{},\"tick_vms\":{},\"tick_ns\":{:.0},\"gate\":{}}}\n",
        quick,
        report.hosts,
        report.vms,
        report.rounds,
        rows,
        m2::worst_p99_ns(&report),
        m2::BUDGET_P99_NS,
        dhosts,
        ingest_ns,
        phi_ns,
        thosts,
        tvms,
        tick,
        json_str(if gate_failed { "FAIL" } else { "PASS" }),
    );

    std::fs::write(&out_path, &json).expect("write bench artifact");
    print!("{json}");
    eprintln!("wrote {out_path}");
    if gate_failed {
        std::process::exit(1);
    }
}
