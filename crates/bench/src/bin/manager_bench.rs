//! `manager_bench` — the Dom0 manager's scaling numbers, as machine-
//! readable JSON (`BENCH_manager.json`, one object, stable field
//! order). Runs the R-P1 sweep: wall ns per command on the routing hot
//! path (PcrRead round-robin) and the mirror write path (Extend +
//! flush) at each resident-instance count, under both the per-command
//! and group-commit flush policies, plus the staging/commit/flush
//! amortization counters.
//!
//! The gate is the scaling ratio: read-path ns/cmd at the largest count
//! divided by the smallest count, worst case over both policies. The
//! sharded routing table should keep this near 1.0; anything above
//! [`p1::BUDGET_RATIO`] fails the run.
//!
//! ```text
//! manager_bench [--quick] [--out PATH]
//! ```
//!
//! Exits nonzero if the gate fails — `scripts/bench.sh` relies on that.

use vtpm_bench::exp::p1;

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_manager.json")
        .to_string();

    // Quick keeps the 100-vs-10k endpoints (the gate is the ratio of
    // the extremes); full adds the midpoint for curve shape.
    let counts: &[usize] = if quick { &[100, 10_000] } else { &[100, 1_000, 10_000] };
    let (read_cmds, mutate_cmds) = if quick { (40_000, 2_000) } else { (50_000, 5_000) };

    let points = p1::run(counts, read_cmds, mutate_cmds);
    let ratio = p1::overhead_ratio(&points);
    let gate_failed = ratio > p1::BUDGET_RATIO;

    eprint!("{}", p1::render(&points));

    let rows = points
        .iter()
        .map(|p| {
            format!(
                "{{\"instances\":{},\"policy\":{},\"read_ns_per_cmd\":{:.1},\
                 \"mutate_ns_per_cmd\":{:.1},\"staged_updates\":{},\
                 \"batched_commits\":{},\"flushes\":{},\"data_pages_written\":{}}}",
                p.instances,
                json_str(if p.batched { "batched" } else { "per-command" }),
                p.read_ns_per_cmd,
                p.mutate_ns_per_cmd,
                p.staged_updates,
                p.batched_commits,
                p.flushes,
                p.data_pages_written
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let json = format!(
        "{{\"bench\":\"manager\",\"quick\":{},\"read_cmds\":{},\"mutate_cmds\":{},\
         \"points\":[{}],\"overhead_ratio\":{:.3},\"budget_ratio\":{:.1},\"gate\":{}}}\n",
        quick,
        read_cmds,
        mutate_cmds,
        rows,
        ratio,
        p1::BUDGET_RATIO,
        json_str(if gate_failed { "FAIL" } else { "PASS" }),
    );

    std::fs::write(&out_path, &json).expect("write bench artifact");
    print!("{json}");
    eprintln!("wrote {out_path}");
    if gate_failed {
        std::process::exit(1);
    }
}
