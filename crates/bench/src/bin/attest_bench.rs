//! `attest_bench` — the attestation plane's perf numbers, as machine-
//! readable JSON (`BENCH_attest.json`, one object, stable field
//! order). Three measurements, all from the R-A1 harness:
//!
//! * **Issuance** — qps of the per-request issuer (every quote pays
//!   two RSA private ops) vs the batched+cached plane at unchanged PCR
//!   state, and the resulting speedup (gated at
//!   [`a1::MIN_CACHE_SPEEDUP`]x).
//! * **Verification** — farm-scale submission throughput plus the
//!   p50/p99 per-submission latency from the shared attestation
//!   telemetry histogram.
//! * **Defense** — the seeded attest-chaos scenarios: replay/stale
//!   refusal counts, the storm-throttle closed loop, critical-alert
//!   counts, and any divergence the family recorded.
//!
//! ```text
//! attest_bench [--quick] [--out PATH]
//! ```
//!
//! Exits nonzero if the R-A1 gate fails (speedup floor missed, honest
//! submission refused, or any defense divergence) — `scripts/bench.sh`
//! relies on that.

use vtpm_bench::exp::a1;

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_attest.json")
        .to_string();

    let (instances, verifiers, quotes, uncached, attacks, cleans) =
        if quick { (4, 64, 512, 64, 1, 1) } else { (16, 1_024, 10_000, 512, 3, 3) };
    let report = a1::run(instances, verifiers, quotes, uncached, attacks, cleans);
    let gate_failed = a1::gate_failed(&report);

    let issue = report
        .issue
        .iter()
        .map(|r| {
            format!(
                "{{\"mode\":{},\"quotes\":{},\"signing_passes\":{},\"absorbed\":{},\
                 \"wall_ns\":{},\"qps\":{:.1}}}",
                json_str(r.mode),
                r.quotes,
                r.signing_passes,
                r.absorbed,
                r.wall_ns,
                r.qps
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let defense = report
        .defense
        .iter()
        .map(|d| {
            format!(
                "{{\"seed\":{},\"attack\":{},\"replays_refused\":{},\"injected_replays\":{},\
                 \"stale_refused\":{},\"injected_stale\":{},\"storm_throttled\":{},\
                 \"critical\":{},\"divergences\":{}}}",
                json_str(&d.seed),
                d.attack,
                d.replays_refused,
                d.injected_replays,
                d.stale_refused,
                d.injected_stale,
                d.storm_throttled,
                d.critical,
                d.divergences.len()
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let v = &report.verify;
    let json = format!(
        "{{\"bench\":\"attest\",\"quick\":{},\"issue\":[{}],\"cache_speedup\":{:.2},\
         \"verify\":{{\"verifiers\":{},\"submissions\":{},\"accepted\":{},\
         \"p50_ns\":{},\"p99_ns\":{},\"vps\":{:.1}}},\"defense\":[{}],\"gate\":{}}}\n",
        quick,
        issue,
        report.speedup,
        v.verifiers,
        v.submissions,
        v.accepted,
        v.p50_ns,
        v.p99_ns,
        v.vps,
        defense,
        json_str(if gate_failed { "FAIL" } else { "PASS" }),
    );

    std::fs::write(&out_path, &json).expect("write bench artifact");
    print!("{json}");
    eprintln!("wrote {out_path}");
    if gate_failed {
        std::process::exit(1);
    }
}
