//! `crypto_bench` — the crypto floor's numbers, as machine-readable
//! JSON (`BENCH_crypto.json`, one object, stable field order). Runs the
//! R-C1 measurement set: optimized RSA-1024 private op (CRT +
//! Montgomery + fixed-window) vs the retained schoolbook reference,
//! pipelined AES-128-CTR keystream vs scalar rounds, and SHA-256 bulk
//! and small-message costs.
//!
//! The gates are the ones `repro c1` enforces: optimized-vs-schoolbook
//! RSA speedup ≥ [`c1::MIN_RSA_SPEEDUP`]x, the optimized private op
//! under [`c1::MAX_RSA_PRIV_US`] µs, and pipelined CTR at or above
//! [`c1::MIN_AES_CTR_MBPS`] MB/s.
//!
//! ```text
//! crypto_bench [--quick] [--out PATH]
//! ```
//!
//! Exits nonzero if a gate fails — `scripts/bench.sh` relies on that.

use vtpm_bench::exp::c1;

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_crypto.json")
        .to_string();

    // Same sizes as `repro c1` full/--quick: the gate compares medians
    // measured in one process, so the quick run stays trustworthy.
    let (passes, rsa_reps, schoolbook_reps, aes_mib) =
        if quick { (3, 10, 3, 1) } else { (5, 30, 6, 4) };

    let report = c1::run(passes, rsa_reps, schoolbook_reps, aes_mib);
    let gate_failed = c1::gate_failed(&report);

    eprint!("{}", c1::render(&report));

    let json = format!(
        "{{\"bench\":\"crypto\",\"quick\":{},\"rsa_priv_us\":{:.2},\
         \"rsa_schoolbook_us\":{:.2},\"rsa_speedup\":{:.2},\"rsa_pub_us\":{:.2},\
         \"aes_ctr_mbps\":{:.1},\"aes_ctr_scalar_mbps\":{:.1},\
         \"sha256_mbps\":{:.1},\"sha256_small_ns\":{:.0},\
         \"min_rsa_speedup\":{:.1},\"max_rsa_priv_us\":{:.0},\
         \"min_aes_ctr_mbps\":{:.0},\"gate\":{}}}\n",
        quick,
        report.rsa_priv_us,
        report.rsa_schoolbook_us,
        report.rsa_speedup,
        report.rsa_pub_us,
        report.aes_ctr_mbps,
        report.aes_ctr_scalar_mbps,
        report.sha256_mbps,
        report.sha256_small_ns,
        c1::MIN_RSA_SPEEDUP,
        c1::MAX_RSA_PRIV_US,
        c1::MIN_AES_CTR_MBPS,
        json_str(if gate_failed { "FAIL" } else { "PASS" }),
    );

    std::fs::write(&out_path, &json).expect("write bench artifact");
    print!("{json}");
    eprintln!("wrote {out_path}");
    if gate_failed {
        std::process::exit(1);
    }
}
