//! `observatory_bench` — the fleet observatory's numbers, as machine-
//! readable JSON (`BENCH_observatory.json`, one object, stable field
//! order). Everything is the R-O2 experiment re-emitted for the
//! artifact directory:
//!
//! * **Clean sweep** — attack-free fleet chaos seeds with the
//!   observatory in the loop: scrape counts, SLO burns (must be zero),
//!   false suspicions, byte-identical replays.
//! * **Aggregation fidelity** — merged cross-host p99 vs the exact
//!   order statistic over every span served, with the 1/16 bound.
//! * **Closed loop** — the injected blackout regression walking
//!   burn → sentinel relay → rebalancer pause → age-out clear →
//!   resume.
//! * **Self-overhead** — wall ns per scrape+evaluate pass as a share
//!   of the controller's heartbeat period (duty cycle), against the
//!   3% budget, with the modelled fabric time alongside.
//!
//! ```text
//! observatory_bench [--quick] [--out PATH]
//! ```
//!
//! Exits nonzero if the R-O2 gate fails — `scripts/bench.sh` and the
//! CI observatory stage rely on that.

use vtpm_bench::exp::o2;

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_observatory.json")
        .to_string();

    let (hosts, vms, rounds, seeds) = if quick { (8, 24, 5, 1) } else { (24, 120, 8, 2) };
    let report = o2::run(hosts, vms, rounds, seeds);
    let gate_failed = o2::gate_failed(&report);

    let rows = report
        .clean
        .iter()
        .map(|x| {
            format!(
                "{{\"seed\":{},\"scrapes\":{},\"slo_burns\":{},\"slo_clears\":{},\
                 \"suspects\":{},\"false_suspects\":{},\"replay_ok\":{}}}",
                json_str(&x.seed),
                x.scrapes,
                x.slo_burns,
                x.slo_clears,
                x.suspects,
                x.false_suspects,
                x.replay_ok,
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let f = &report.fidelity;
    let l = &report.slo_loop;
    let json = format!(
        "{{\"bench\":\"observatory\",\"quick\":{},\"hosts\":{},\"vms\":{},\"rounds\":{},\
         \"sweep\":[{}],\
         \"fidelity\":{{\"samples\":{},\"exact_p99_ns\":{},\"fleet_p99_ns\":{},\
         \"rel_err\":{:.6},\"bound\":{:.6},\"count_match\":{}}},\
         \"closed_loop\":{{\"pre_clean\":{},\"raised\":{},\"alerted\":{},\"paused\":{},\
         \"cleared\":{},\"resumed\":{}}},\
         \"overhead_hosts\":{},\"scrape_wall_ns\":{:.0},\"scrape_virtual_ns\":{:.0},\
         \"period_ns\":{},\"overhead_pct\":{:.3},\"budget_pct\":{:.1},\"gate\":{}}}\n",
        quick,
        report.hosts,
        report.vms,
        report.rounds,
        rows,
        f.samples,
        f.exact_p99_ns,
        f.fleet_p99_ns,
        f.rel_err,
        o2::REL_ERR_BOUND,
        f.count_match,
        l.pre_clean,
        l.raised,
        l.alerted,
        l.paused,
        l.cleared,
        l.resumed,
        report.overhead_hosts,
        report.scrape_wall_ns,
        report.scrape_virtual_ns,
        report.period_ns,
        report.overhead_pct(),
        o2::BUDGET_PCT,
        json_str(if gate_failed { "FAIL" } else { "PASS" }),
    );

    std::fs::write(&out_path, &json).expect("write bench artifact");
    print!("{json}");
    eprintln!("wrote {out_path}");
    if gate_failed {
        std::process::exit(1);
    }
}
