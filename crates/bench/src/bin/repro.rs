//! `repro` — regenerate every table and figure of the evaluation.
//!
//! ```text
//! repro t1|f1|t2|f2|t3|f3|f4|t4|f5|f6|r1|o1|m1|m2|o2|d1|p1|c1|a1  # one experiment
//! repro all                          # everything
//! repro all --quick                  # reduced repetitions (CI-sized)
//! ```
//!
//! Exits nonzero if R-O1 measures telemetry overhead above its budget,
//! if R-M1 measures sealed-transfer downtime above its multiple of the
//! clear baseline, if R-D1 sees a sentinel false positive on a clean
//! seed or a missed attack injection, if R-P1 measures the manager's
//! per-command read path degrading by more than its scaling budget
//! between the smallest and largest instance counts, if R-C1
//! measures the crypto floor regressing (RSA private-op speedup below
//! 4x schoolbook, absolute RSA/AES floors violated), or if R-A1
//! measures the cached attestation plane below its speedup floor,
//! refuses an honest submission, or lets any defense scenario diverge
//! (unrefused replay/stale evidence, undetected storm, clean-sweep
//! false positive), or if R-M2's fleet churn sweep loses, duplicates,
//! or orphans a vTPM, lets an injected conflict commit two winners,
//! fails to replay a seed byte-identically, blows its p99 blackout
//! budget, or exceeds its false-suspicion budget, or if R-O2's fleet
//! observatory burns an SLO on an attack-free seed, misses an injected
//! blackout regression anywhere along the burn→pause→clear→resume
//! loop, drifts past the merged-p99 fidelity bound, or blows its
//! scrape self-overhead budget — the CI gate in `scripts/ci.sh`
//! relies on all of them.

use vtpm_bench::exp;

struct Sizes {
    t1_reps: usize,
    f1_vms: Vec<usize>,
    f1_ops: usize,
    f2_reps: usize,
    t3_rules: Vec<usize>,
    t3_iters: usize,
    f3_kib: Vec<usize>,
    f3_reps: usize,
    f4_workers: Vec<usize>,
    f4_instances: usize,
    f4_per_instance: usize,
    t4_reps: usize,
    f5_vms: Vec<usize>,
    f6_utils: Vec<f64>,
    f6_arrivals: usize,
    r1_seeds: usize,
    r1_events: usize,
    r1_faults: usize,
    o1_batches: usize,
    o1_per_batch: usize,
    m1_kib: Vec<usize>,
    m1_reps: usize,
    m2_hosts: usize,
    m2_vms: usize,
    m2_rounds: usize,
    m2_seeds: usize,
    o2_hosts: usize,
    o2_vms: usize,
    o2_rounds: usize,
    o2_seeds: usize,
    d1_mirror_seeds: usize,
    d1_migration_seeds: usize,
    d1_events: usize,
    d1_faults: usize,
    p1_counts: Vec<usize>,
    p1_read_cmds: usize,
    p1_mutate_cmds: usize,
    c1_passes: usize,
    c1_rsa_reps: usize,
    c1_schoolbook_reps: usize,
    c1_aes_mib: usize,
    a1_instances: usize,
    a1_verifiers: usize,
    a1_quotes: usize,
    a1_uncached_quotes: usize,
    a1_attack_seeds: usize,
    a1_clean_seeds: usize,
}

impl Sizes {
    fn full() -> Self {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Sizes {
            t1_reps: 200,
            f1_vms: vec![1, 2, 4, 8, 16, 32],
            f1_ops: 60,
            f2_reps: 200,
            t3_rules: vec![10, 100, 1_000, 10_000],
            t3_iters: 200_000,
            f3_kib: vec![0, 4, 16, 64, 256],
            f3_reps: 5,
            f4_workers: (0..).map(|i| 1usize << i).take_while(|&w| w <= cores.max(2)).collect(),
            f4_instances: 16,
            f4_per_instance: 2_000,
            t4_reps: 100,
            f5_vms: vec![1, 2, 4, 8, 16, 32],
            f6_utils: vec![0.1, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 0.99],
            f6_arrivals: 200_000,
            r1_seeds: 16,
            r1_events: 80,
            r1_faults: 6,
            o1_batches: 40,
            o1_per_batch: 500,
            m1_kib: vec![0, 16, 64, 256, 512],
            m1_reps: 2,
            // The fleet-scale claim: 100 hosts / 1000 VMs under
            // continuous churn, every seed replayed twice.
            m2_hosts: 100,
            m2_vms: 1_000,
            m2_rounds: 8,
            m2_seeds: 2,
            // The observatory rides the same chaos family; its gates
            // (no attack-free burn, fidelity, loop, overhead) are
            // scale-free, so the sweep stays lighter than R-M2's.
            o2_hosts: 32,
            o2_vms: 160,
            o2_rounds: 8,
            o2_seeds: 2,
            // 32 + 32 + the matrix = the 65-scenario sweep the chaos CI
            // stage replays byte-for-byte.
            d1_mirror_seeds: 32,
            d1_migration_seeds: 32,
            d1_events: 60,
            d1_faults: 5,
            p1_counts: vec![100, 1_000, 10_000],
            p1_read_cmds: 50_000,
            p1_mutate_cmds: 5_000,
            c1_passes: 5,
            c1_rsa_reps: 30,
            c1_schoolbook_reps: 6,
            c1_aes_mib: 4,
            // The farm-scale claim: 1k+ verifiers, 10k+ quote requests
            // against the cached plane, per-request baseline sampled at
            // a count that keeps the run minutes-free (qps is a rate).
            a1_instances: 16,
            a1_verifiers: 1_024,
            a1_quotes: 10_000,
            a1_uncached_quotes: 512,
            a1_attack_seeds: 3,
            a1_clean_seeds: 3,
        }
    }

    fn quick() -> Self {
        Sizes {
            t1_reps: 10,
            f1_vms: vec![1, 2, 4],
            f1_ops: 10,
            f2_reps: 10,
            t3_rules: vec![10, 100, 1_000],
            t3_iters: 20_000,
            f3_kib: vec![0, 8, 32],
            f3_reps: 2,
            f4_workers: vec![1, 2, 4],
            f4_instances: 8,
            f4_per_instance: 300,
            t4_reps: 10,
            f5_vms: vec![1, 4, 8],
            f6_utils: vec![0.2, 0.8],
            f6_arrivals: 10_000,
            r1_seeds: 4,
            r1_events: 48,
            r1_faults: 4,
            o1_batches: 15,
            o1_per_batch: 200,
            // The budget gate reads the worst premium (largest size),
            // so --quick keeps it and drops the middle of the sweep.
            m1_kib: vec![0, 512],
            m1_reps: 1,
            // The gates (accounting, single-winner, replay) are
            // scale-free; --quick keeps the churn and drops the scale.
            m2_hosts: 8,
            m2_vms: 24,
            m2_rounds: 6,
            m2_seeds: 2,
            o2_hosts: 8,
            o2_vms: 24,
            o2_rounds: 5,
            o2_seeds: 1,
            d1_mirror_seeds: 4,
            d1_migration_seeds: 4,
            d1_events: 30,
            d1_faults: 3,
            // The gate is the ratio of the extremes, so --quick keeps
            // the 100- and 10k-instance endpoints and drops the middle.
            p1_counts: vec![100, 10_000],
            p1_read_cmds: 40_000,
            p1_mutate_cmds: 2_000,
            // Medians over 3 passes: the gate compares in-process
            // ratios, which survive CI noise at these sizes.
            c1_passes: 3,
            c1_rsa_reps: 10,
            c1_schoolbook_reps: 3,
            c1_aes_mib: 1,
            // The speedup gate is a ratio, so --quick shrinks both
            // sides of it together.
            a1_instances: 4,
            a1_verifiers: 64,
            a1_quotes: 512,
            a1_uncached_quotes: 64,
            a1_attack_seeds: 1,
            a1_clean_seeds: 1,
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let sizes = if quick { Sizes::quick() } else { Sizes::full() };
    let which: Vec<&str> = args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();
    let mut over_budget = false;
    let which: Vec<&str> = if which.is_empty() || which.contains(&"all") {
        vec![
            "t1", "f1", "t2", "f2", "t3", "f3", "f4", "t4", "f5", "f6", "r1", "o1", "m1", "m2",
            "o2", "d1", "p1", "c1", "a1",
        ]
    } else {
        which
    };

    for exp_name in which {
        let t0 = std::time::Instant::now();
        let output = match exp_name {
            "t1" => exp::t1::render(&exp::t1::run(sizes.t1_reps)),
            "f1" => exp::f1::render(&exp::f1::run(&sizes.f1_vms, sizes.f1_ops)),
            "t2" => exp::t2::render(&exp::t2::run()),
            "f2" => exp::f2::render(&exp::f2::run(sizes.f2_reps)),
            "t3" => exp::t3::render(&exp::t3::run(&sizes.t3_rules, sizes.t3_iters)),
            "f3" => exp::f3::render(&exp::f3::run(&sizes.f3_kib, sizes.f3_reps)),
            "f4" => exp::f4::render(&exp::f4::run(
                &sizes.f4_workers,
                sizes.f4_instances,
                sizes.f4_per_instance,
            )),
            "t4" => exp::t4::render(&exp::t4::run(sizes.t4_reps)),
            "f5" => exp::f5::render(&exp::f5::run(&sizes.f5_vms)),
            "f6" => exp::f6::render(&exp::f6::run(&sizes.f6_utils, sizes.f6_arrivals)),
            "r1" => exp::r1::render(&exp::r1::run(sizes.r1_seeds, sizes.r1_events, sizes.r1_faults)),
            "o1" => {
                let rows = exp::o1::run(sizes.o1_batches, sizes.o1_per_batch);
                if exp::o1::max_overhead_pct(&rows) > exp::o1::BUDGET_PCT {
                    over_budget = true;
                }
                exp::o1::render(&rows)
            }
            "m1" => {
                let points = exp::m1::run(&sizes.m1_kib, sizes.m1_reps);
                if exp::m1::max_premium_us(&points) > exp::m1::BUDGET_PREMIUM_US {
                    over_budget = true;
                }
                exp::m1::render(&points)
            }
            "m2" => {
                let report =
                    exp::m2::run(sizes.m2_hosts, sizes.m2_vms, sizes.m2_rounds, sizes.m2_seeds);
                if exp::m2::gate_failed(&report) {
                    over_budget = true;
                }
                exp::m2::render(&report)
            }
            "o2" => {
                let report =
                    exp::o2::run(sizes.o2_hosts, sizes.o2_vms, sizes.o2_rounds, sizes.o2_seeds);
                if exp::o2::gate_failed(&report) {
                    over_budget = true;
                }
                exp::o2::render(&report)
            }
            "d1" => {
                let report = exp::d1::run(
                    sizes.d1_mirror_seeds,
                    sizes.d1_migration_seeds,
                    sizes.d1_events,
                    sizes.d1_faults,
                );
                if exp::d1::gate_failed(&report) {
                    over_budget = true;
                }
                exp::d1::render(&report)
            }
            "p1" => {
                let points =
                    exp::p1::run(&sizes.p1_counts, sizes.p1_read_cmds, sizes.p1_mutate_cmds);
                if exp::p1::overhead_ratio(&points) > exp::p1::BUDGET_RATIO {
                    over_budget = true;
                }
                exp::p1::render(&points)
            }
            "c1" => {
                let report = exp::c1::run(
                    sizes.c1_passes,
                    sizes.c1_rsa_reps,
                    sizes.c1_schoolbook_reps,
                    sizes.c1_aes_mib,
                );
                if exp::c1::gate_failed(&report) {
                    over_budget = true;
                }
                exp::c1::render(&report)
            }
            "a1" => {
                let report = exp::a1::run(
                    sizes.a1_instances,
                    sizes.a1_verifiers,
                    sizes.a1_quotes,
                    sizes.a1_uncached_quotes,
                    sizes.a1_attack_seeds,
                    sizes.a1_clean_seeds,
                );
                if exp::a1::gate_failed(&report) {
                    over_budget = true;
                }
                exp::a1::render(&report)
            }
            other => {
                eprintln!("unknown experiment `{other}` (expected t1|f1|t2|f2|t3|f3|f4|t4|f5|f6|r1|o1|m1|m2|o2|d1|p1|c1|a1|all)");
                std::process::exit(2);
            }
        };
        println!("{output}");
        println!("[{} completed in {:.1}s]\n", exp_name, t0.elapsed().as_secs_f64());
    }
    if over_budget {
        eprintln!(
            "a budget gate failed (R-O1 <= {}% overhead, R-M1 <= {:.0}ms sealing premium, \
             R-D1 zero false positives + full injection detection, \
             R-P1 <= {:.1}x read-path scaling ratio, \
             R-C1 >= {:.0}x RSA speedup / >= {:.0} MB/s AES-CTR, \
             R-A1 >= {:.0}x cached-attestation speedup + clean defense sweep, \
             R-M2 exactly-once fleet accounting + single-winner conflicts + \
             byte-identical replays + p99 blackout <= {:.0}ms + \
             <= {} false suspicions per seed, \
             R-O2 zero attack-free SLO burns + merged-p99 fidelity <= 1/16 + \
             full burn closed loop + <= {}% scrape overhead)",
            exp::o1::BUDGET_PCT,
            exp::m1::BUDGET_PREMIUM_US / 1e3,
            exp::p1::BUDGET_RATIO,
            exp::c1::MIN_RSA_SPEEDUP,
            exp::c1::MIN_AES_CTR_MBPS,
            exp::a1::MIN_CACHE_SPEEDUP,
            exp::m2::BUDGET_P99_NS as f64 / 1e6,
            exp::m2::BUDGET_FALSE_SUSPECTS,
            exp::o2::BUDGET_PCT,
        );
        std::process::exit(1);
    }
}
