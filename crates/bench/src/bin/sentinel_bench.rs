//! `sentinel_bench` — the sentinel plane's perf numbers, as machine-
//! readable JSON (`BENCH_sentinel.json`, one object, stable field
//! order). Three measurements:
//!
//! * **Detection** — the R-D1 scripted injections (A1, A7, replay
//!   storm): detected yes/no, virtual-time latency, and events fed
//!   until the firing, plus the false-positive count over a small
//!   attack-free sweep.
//! * **Sentinel throughput** — wall ns per stream event through the
//!   full engine (flight recorder + all five detectors) on a synthetic
//!   but realistic event mix. This is the budget a deployment pays per
//!   span/audit record shipped to the detection plane.
//! * **Telemetry self-overhead** — R-O1's gated number (max deployment-
//!   basis percentage), re-measured here so the trajectory of the whole
//!   observability stack lives in one artifact.
//!
//! ```text
//! sentinel_bench [--quick] [--out PATH]
//! ```
//!
//! Exits nonzero if the R-D1 gate fails (a missed injection or a clean-
//! sweep false positive) — `scripts/bench.sh` relies on that.

use std::time::Instant;

use vtpm_bench::exp::{d1, o1};
use vtpm_sentinel::{Sentinel, SentinelConfig, StreamEvent};
use vtpm_telemetry::{Outcome, SpanRecord};

/// Synthesize a realistic event mix: mostly allowed spans, a sprinkle
/// of denials spread across domains (below the EWMA threshold), and
/// periodic gauges — the exhaust shape of a healthy host.
fn synthetic_stream(n: usize) -> Vec<StreamEvent> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let i64 = i as u64;
        if i % 50 == 49 {
            out.push(StreamEvent::Gauge {
                host: 0,
                at_ns: i64 * 1_000,
                name: "mirror_scrub_failures",
                value: 0,
            });
            continue;
        }
        let denied = i % 10 == 3;
        out.push(StreamEvent::Span {
            host: 0,
            record: SpanRecord {
                request_id: i64 + 1,
                domain: 1 + (i as u32 % 7),
                ordinal: 0x14,
                ingress_ns: i64 * 1_000,
                end_ns: i64 * 1_000 + 800,
                outcome: if denied { Outcome::Denied(2) } else { Outcome::Ok },
                ..SpanRecord::default()
            },
        });
    }
    out
}

/// Wall ns/event through the full engine, median of `reps` passes.
fn throughput_ns_per_event(events: usize, reps: usize) -> f64 {
    let stream = synthetic_stream(events);
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let mut s = Sentinel::new(SentinelConfig::default());
            let t0 = Instant::now();
            for ev in &stream {
                std::hint::black_box(s.observe(ev.clone()));
            }
            t0.elapsed().as_nanos() as f64 / events as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_sentinel.json")
        .to_string();

    // Detection quality: the scripted injections plus a small clean
    // sweep (the full 65-scenario FP sweep is `repro d1`'s job).
    let (mirror, migration, events, faults) = if quick { (2, 2, 30, 3) } else { (8, 8, 60, 5) };
    let report = d1::run(mirror, migration, events, faults);

    let (ev_count, reps) = if quick { (20_000, 3) } else { (200_000, 5) };
    let ns_per_event = throughput_ns_per_event(ev_count, reps);

    let (batches, per_batch) = if quick { (10, 200) } else { (40, 500) };
    let o1_rows = o1::run(batches, per_batch);
    let telemetry_pct = o1::max_overhead_pct(&o1_rows);

    let gate_failed = d1::gate_failed(&report);
    let detections = report
        .attacks
        .iter()
        .map(|a| {
            format!(
                "{{\"name\":{},\"blocked\":{},\"detected\":{},\"detector\":{},\
                 \"latency_ns\":{},\"events_to_detect\":{}}}",
                json_str(a.name),
                a.blocked,
                a.detected,
                json_str(a.detector),
                a.latency_ns,
                a.events_to_detect
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let json = format!(
        "{{\"bench\":\"sentinel\",\"quick\":{},\"detection\":[{}],\
         \"clean_scenarios\":{},\"false_positives\":{},\
         \"sentinel_ns_per_event\":{:.1},\"throughput_events\":{},\
         \"telemetry_max_deploy_overhead_pct\":{:.3},\"gate\":{}}}\n",
        quick,
        detections,
        report.clean.len(),
        d1::false_positives(&report),
        ns_per_event,
        ev_count,
        telemetry_pct,
        json_str(if gate_failed { "FAIL" } else { "PASS" }),
    );

    std::fs::write(&out_path, &json).expect("write bench artifact");
    print!("{json}");
    eprintln!("wrote {out_path}");
    if gate_failed {
        std::process::exit(1);
    }
}
