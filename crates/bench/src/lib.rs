//! # vtpm-bench
//!
//! The experiment harness: one module per table/figure of the
//! reconstructed evaluation (see DESIGN.md for the index and EXPERIMENTS.md
//! for recorded results). Each module exposes `run(...)` returning typed
//! rows and `render(...)` producing the text table the `repro` binary
//! prints; the Criterion benches in `benches/` time the same code paths.
//!
//! | module | experiment |
//! |---|---|
//! | [`exp::t1`] | R-T1: per-command latency, baseline vs improved |
//! | [`exp::f1`] | R-F1: throughput vs concurrent VMs |
//! | [`exp::t2`] | R-T2: attack matrix |
//! | [`exp::f2`] | R-F2: overhead breakdown of the improved path |
//! | [`exp::t3`] | R-T3: policy-engine latency vs rule count |
//! | [`exp::f3`] | R-F3: migration time vs state size |
//! | [`exp::f4`] | R-F4: manager throughput vs worker threads |
//! | [`exp::t4`] | R-T4: per-mechanism ablation |
//! | [`exp::f5`] | R-F5: dump-scan at scale |
//! | [`exp::r1`] | R-R1: chaos + crash/recovery of the mirror pipeline |
//! | [`exp::o1`] | R-O1: telemetry self-overhead on the request path |
//! | [`exp::o2`] | R-O2: fleet observatory — aggregation fidelity, SLO burn loop, self-overhead |
//! | [`exp::m1`] | R-M1: live-migration downtime vs state size (cluster) |
//! | [`exp::m2`] | R-M2: fleet churn sweep — p99 downtime + exactly-once accounting |
//! | [`exp::d1`] | R-D1: sentinel detection quality (FP sweep + injections) |
//! | [`exp::p1`] | R-P1: manager hot path vs resident instance count |
//! | [`exp::c1`] | R-C1: crypto floor (RSA/AES/SHA) with regression gates |
//! | [`exp::a1`] | R-A1: attestation plane at farm scale |

/// Experiment modules, one per table/figure.
pub mod exp {
    pub mod a1;
    pub mod c1;
    pub mod d1;
    pub mod f1;
    pub mod f2;
    pub mod f3;
    pub mod f4;
    pub mod f5;
    pub mod f6;
    pub mod m1;
    pub mod m2;
    pub mod o1;
    pub mod o2;
    pub mod p1;
    pub mod r1;
    pub mod t1;
    pub mod t2;
    pub mod t3;
    pub mod t4;
}
