//! R-O2: fleet observatory — cross-host aggregation fidelity, the SLO
//! burn-rate closed loop, burn cleanliness under chaos, and the
//! plane's own overhead.
//!
//! Not a figure from the paper — like R-O1 it validates this repo's
//! observability subsystem, here the fleet-wide layer on top of the
//! per-host registries. Four claims, each gated:
//!
//! 1. **Cleanliness.** The fleet chaos family runs with the
//!    observatory enabled by default; on attack-free seeds (host churn
//!    is normal operation, not an attack) no SLO rule may burn —
//!    organic blackout p99 sits far under the 300 ms objective — and
//!    every seed must still replay byte-identically with the
//!    observatory's transcript contribution included.
//! 2. **Fidelity.** A fleet-wide p99 computed from merged cross-host
//!    scrapes must match the exact order statistic over every span the
//!    hosts actually served within the log-linear histogram's
//!    [`REL_ERR_BOUND`] (1/16) relative-error guarantee, with sample
//!    counts agreeing exactly (scrape deltas lose nothing).
//! 3. **Closed loop.** An injected migration-blackout regression
//!    (downtime samples at 500 ms ≫ the 300 ms objective) must raise a
//!    burn, reach the sentinel's `slo-burn` relay as a gauge, pause
//!    the rebalancer through [`vtpm_harness::apply_slo_alerts`], then
//!    clear and resume once the bad windows age out of the rollups.
//! 4. **Self-overhead.** The controller-side wall cost of one full
//!    scrape + evaluate pass (decode, delta-diff, rollup, rule
//!    evaluation for every host) must stay within [`BUDGET_PCT`] of
//!    the control loop's own cadence — the default heartbeat interval
//!    — so the plane consumes at most 3% of the controller's duty
//!    cycle and ≥ 97% remains for actual control. (An
//!    enabled-vs-disabled A/B over whole chaos runs cannot measure
//!    this: the metrics frames shift the fabric fault schedule, so
//!    the two runs execute *different scenarios* and the wall diff is
//!    scenario drift, not plane cost.) The virtual fabric time the
//!    pass occupies is reported alongside for the wall/deployment
//!    split R-O1 established.

use std::time::Instant;

use vtpm_cluster::{Cluster, ClusterConfig};
use vtpm_fleet::{Fleet, FleetConfig, CONTROLLER_HOST};
use vtpm_harness::{apply_slo_alerts, run_fleet_chaos, FleetChaosConfig};
use vtpm_observatory::{BurnEvent, Observatory, ObservatoryConfig};
use vtpm_sentinel::{Alert, Sentinel, SentinelConfig, StreamEvent};
use vtpm_telemetry::Histogram;
use workload::generate_trace;

/// Merged-p99 vs exact order statistic bound — the histogram's
/// relative-error guarantee, which the merge must not widen.
pub const REL_ERR_BOUND: f64 = 1.0 / 16.0;

/// Hard self-overhead budget: wall ns per scrape+evaluate pass as a
/// percentage of the controller's heartbeat interval (its duty
/// cycle).
pub const BUDGET_PCT: f64 = 3.0;

/// One attack-free chaos seed with the observatory in the loop.
#[derive(Debug, Clone, PartialEq)]
pub struct O2CleanRow {
    /// Seed label.
    pub seed: String,
    /// Scrape passes the controller ran.
    pub scrapes: u64,
    /// SLO burn raises (must be 0 attack-free).
    pub slo_burns: u64,
    /// SLO burn clears.
    pub slo_clears: u64,
    /// Suspicions raised by the failure detector.
    pub suspects: u64,
    /// Suspicions against live hosts.
    pub false_suspects: u64,
    /// Replayed byte-identically (observatory transcript included).
    pub replay_ok: bool,
}

/// Merged-scrape p99 vs the exact per-span ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct O2Fidelity {
    /// Spans served (the exact sample set).
    pub samples: usize,
    /// Span-ring drops (must be 0 for the comparison to be exact).
    pub dropped: u64,
    /// Exact order-statistic p99 over every span (virtual ns).
    pub exact_p99_ns: u64,
    /// p99 of the observatory's merged fleet-wide `total` series.
    pub fleet_p99_ns: u64,
    /// |fleet − exact| / exact.
    pub rel_err: f64,
    /// Merged count equals the span count (delta scrapes lose nothing).
    pub count_match: bool,
}

/// The injected-regression closed loop, stage by stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct O2Loop {
    /// Healthy baseline produced no events.
    pub pre_clean: bool,
    /// The regression raised a migration-blackout burn.
    pub raised: bool,
    /// The burn gauge tripped the sentinel's slo-burn relay.
    pub alerted: bool,
    /// The bridge paused the rebalancer.
    pub paused: bool,
    /// The burn cleared once the bad windows aged out.
    pub cleared: bool,
    /// The clear resumed the rebalancer.
    pub resumed: bool,
}

impl O2Loop {
    /// Every stage of the loop held.
    pub fn complete(&self) -> bool {
        self.pre_clean && self.raised && self.alerted && self.paused && self.cleared && self.resumed
    }
}

/// The experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct O2Report {
    /// Chaos sweep scale.
    pub hosts: usize,
    /// VMs under management in the sweep.
    pub vms: usize,
    /// Rounds per seed.
    pub rounds: usize,
    /// One row per attack-free seed.
    pub clean: Vec<O2CleanRow>,
    /// Aggregation fidelity vs sorted ground truth.
    pub fidelity: O2Fidelity,
    /// The injected-regression loop.
    pub slo_loop: O2Loop,
    /// Hosts in the overhead rig.
    pub overhead_hosts: usize,
    /// Median wall ns per scrape+evaluate pass.
    pub scrape_wall_ns: f64,
    /// Median virtual ns the same pass charges on the fabric
    /// (reported for the wall/deployment split, not gated).
    pub scrape_virtual_ns: f64,
    /// The control loop's cadence the pass must fit into — the
    /// default heartbeat interval.
    pub period_ns: u64,
}

impl O2Report {
    /// Wall cost of one pass as a percentage of the control loop's
    /// cadence — the number the budget gates.
    pub fn overhead_pct(&self) -> f64 {
        self.scrape_wall_ns / self.period_ns as f64 * 100.0
    }
}

/// The CI gate: no attack-free burn, byte-identical replays, fidelity
/// within the histogram bound with exact counts, the full closed loop,
/// and the self-overhead budget.
pub fn gate_failed(r: &O2Report) -> bool {
    r.clean.iter().any(|x| x.slo_burns > 0 || !x.replay_ok)
        || !r.fidelity.count_match
        || r.fidelity.rel_err > REL_ERR_BOUND
        || !r.slo_loop.complete()
        || r.overhead_pct() > BUDGET_PCT
}

fn clean_config(hosts: usize, vms: usize, rounds: usize) -> FleetChaosConfig {
    FleetChaosConfig {
        hosts,
        max_hosts: hosts + hosts / 10,
        vms,
        rounds,
        oracle_checks: vms <= 64,
        events_per_round: 2,
        frames_per_host: 4096,
        ..FleetChaosConfig::default()
    }
}

fn clean_sweep(hosts: usize, vms: usize, rounds: usize, seeds: usize) -> Vec<O2CleanRow> {
    let cfg = clean_config(hosts, vms, rounds);
    (0..seeds)
        .map(|s| {
            let label = format!("o2-{hosts}x{vms}-{s}");
            let a = run_fleet_chaos(label.as_bytes(), &cfg).expect("fleet chaos run");
            let b = run_fleet_chaos(label.as_bytes(), &cfg).expect("fleet chaos replay");
            let replay_ok = a == b;
            O2CleanRow {
                seed: label,
                scrapes: a.scrapes,
                slo_burns: a.slo_burns,
                slo_clears: a.slo_clears,
                suspects: a.suspects_raised,
                false_suspects: a.false_suspects,
                replay_ok,
            }
        })
        .collect()
}

/// Drive real guest traffic over a live cluster, scrape it through the
/// fleet controller each round, and compare the merged p99 to the exact
/// order statistic over every span the hosts served.
fn fidelity(hosts: usize, vms_per_host: usize, rounds: usize, events: usize) -> O2Fidelity {
    let mut cluster = Cluster::new(
        b"o2-fidelity",
        ClusterConfig { hosts, frames_per_host: 4096, ..Default::default() },
    )
    .expect("cluster");
    let vms = (hosts * vms_per_host) as u32;
    for _ in 0..vms {
        cluster.create_vm().expect("vm");
    }
    let mut fleet = Fleet::new(FleetConfig::default(), &cluster);
    let mut obs = Observatory::new(ObservatoryConfig::default());
    for round in 0..rounds as u32 {
        for vm in 0..vms {
            let seed =
                [b"o2/fidelity/" as &[u8], &round.to_be_bytes(), &vm.to_be_bytes()].concat();
            for ev in generate_trace(&seed, events) {
                cluster.apply_event(vm, &ev);
            }
        }
        fleet.scrape(&mut cluster, &mut obs);
    }

    // Exact ground truth: the span rings hold every request end-to-end.
    let mut exact: Vec<u64> = Vec::new();
    let mut dropped = 0u64;
    for h in 0..cluster.hosts.len() {
        if let Some(t) = cluster.hosts[h].platform.manager.telemetry() {
            dropped += t.dropped_events();
            exact.extend(t.drain_spans().iter().map(|r| r.total_ns()));
        }
    }
    exact.sort_unstable();
    let exact_p99 = exact[(exact.len() - 1) * 99 / 100];
    let fleet_hist = obs.fleet_total("total").expect("scraped total series");
    let fleet_p99 = fleet_hist.snapshot().p99;
    O2Fidelity {
        samples: exact.len(),
        dropped,
        exact_p99_ns: exact_p99,
        fleet_p99_ns: fleet_p99,
        rel_err: (fleet_p99 as f64 - exact_p99 as f64).abs() / exact_p99 as f64,
        count_match: dropped == 0 && fleet_hist.count() == exact.len() as u64,
    }
}

fn relay(sentinel: &mut Sentinel, events: &[BurnEvent]) {
    for ev in events {
        sentinel.observe(StreamEvent::Gauge {
            host: CONTROLLER_HOST,
            at_ns: ev.at_ns,
            name: ev.gauge,
            value: (ev.burn_ratio * 100.0) as u64,
        });
    }
}

/// Inject a blackout regression and walk the full loop: observatory
/// burn → sentinel gauge relay → rebalancer pause → age-out clear →
/// resume.
fn closed_loop() -> O2Loop {
    let cluster = Cluster::new(b"o2-loop", ClusterConfig::default()).expect("cluster");
    let mut fleet = Fleet::new(FleetConfig::default(), &cluster);
    let mut sentinel = Sentinel::new(SentinelConfig::default());
    let mut obs = Observatory::new(ObservatoryConfig::default());

    // Healthy baseline: 200 blackouts at 5 ms — nothing burns.
    let h = Histogram::new();
    for _ in 0..200 {
        h.record(5_000_000);
    }
    obs.ingest_local(CONTROLLER_HOST, 1_000_000_000, "fleet_downtime", &h);
    let pre_clean = obs.evaluate(1_000_000_000).is_empty();

    // The regression: 50 blackouts at 500 ms ≫ the 300 ms objective.
    for _ in 0..50 {
        h.record(500_000_000);
    }
    obs.ingest_local(CONTROLLER_HOST, 2_000_000_000, "fleet_downtime", &h);
    let events = obs.evaluate(2_000_000_000);
    let raised = events.iter().any(|e| e.rule == "migration-blackout" && e.burning);
    relay(&mut sentinel, &events);
    let alerts: Vec<Alert> = sentinel.alerts().to_vec();
    let alerted = alerts.iter().any(|a| a.detector == "slo-burn");
    let (p, _) = apply_slo_alerts(&mut fleet, &alerts);
    let paused = p == 1 && fleet.paused();

    // Far enough into the virtual future the bad samples age out of
    // every live rollup ring; the burn clears and the bridge resumes.
    let mut fed = alerts.len();
    let (mut cleared, mut resumed) = (false, false);
    for i in 1..=40u64 {
        let now = 2_000_000_000 + i * 60_000_000_000;
        let events = obs.evaluate(now);
        cleared |= events.iter().any(|e| e.rule == "migration-blackout" && !e.burning);
        relay(&mut sentinel, &events);
        let fresh: Vec<Alert> = sentinel.alerts()[fed..].to_vec();
        fed = sentinel.alerts().len();
        resumed |= apply_slo_alerts(&mut fleet, &fresh).1 > 0;
    }
    O2Loop { pre_clean, raised, alerted, paused, cleared, resumed: resumed && !fleet.paused() }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}


/// Wall vs virtual cost of one scrape+evaluate pass at `hosts` scale,
/// medians over `reps` passes with fresh traffic between passes so
/// every scrape carries non-empty deltas.
fn overhead(hosts: usize, reps: usize) -> (f64, f64) {
    let mut cluster = Cluster::new(
        b"o2-overhead",
        ClusterConfig { hosts, frames_per_host: 4096, ..Default::default() },
    )
    .expect("cluster");
    let vms = (hosts * 2) as u32;
    for _ in 0..vms {
        cluster.create_vm().expect("vm");
    }
    let mut fleet = Fleet::new(FleetConfig::default(), &cluster);
    let mut obs = Observatory::new(ObservatoryConfig::default());
    fn traffic(cluster: &mut Cluster, vms: u32, rep: u32) {
        for vm in 0..vms.min(8) {
            let seed = [b"o2/overhead/" as &[u8], &rep.to_be_bytes(), &vm.to_be_bytes()].concat();
            for ev in generate_trace(&seed, 4) {
                cluster.apply_event(vm, &ev);
            }
        }
    }
    // Warm pass: first scrape builds every per-host map and rollup.
    traffic(&mut cluster, vms, u32::MAX);
    fleet.scrape(&mut cluster, &mut obs);
    std::hint::black_box(obs.evaluate(cluster.clock.now_ns()));

    let mut wall: Vec<f64> = Vec::with_capacity(reps);
    let mut virt: Vec<f64> = Vec::with_capacity(reps);
    for rep in 0..reps {
        traffic(&mut cluster, vms, rep as u32);
        let v0 = cluster.clock.now_ns();
        let t0 = Instant::now();
        fleet.scrape(&mut cluster, &mut obs);
        std::hint::black_box(obs.evaluate(cluster.clock.now_ns()));
        wall.push(t0.elapsed().as_nanos() as f64);
        virt.push((cluster.clock.now_ns() - v0) as f64);
    }
    (median(&mut wall), median(&mut virt))
}

/// Run the experiment: `seeds` attack-free chaos scenarios at
/// (`hosts`, `vms`) scale plus the fixed fidelity, closed-loop, and
/// overhead rigs (scaled off `hosts`).
pub fn run(hosts: usize, vms: usize, rounds: usize, seeds: usize) -> O2Report {
    let clean = clean_sweep(hosts, vms, rounds, seeds);
    let fidelity = fidelity(hosts.clamp(4, 8), 2, 4, 8);
    let slo_loop = closed_loop();
    let overhead_hosts = hosts.clamp(8, 16);
    let (scrape_wall_ns, scrape_virtual_ns) = overhead(overhead_hosts, 9);
    O2Report {
        hosts,
        vms,
        rounds,
        clean,
        fidelity,
        slo_loop,
        overhead_hosts,
        scrape_wall_ns,
        scrape_virtual_ns,
        period_ns: FleetConfig::default().heartbeat_interval_ns,
    }
}

/// Render the table, ending with the PASS/FAIL verdict line the CI
/// gate greps for.
pub fn render(r: &O2Report) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "R-O2  Fleet observatory: {} hosts / {} VMs, {} rounds per attack-free seed\n\
         seed             scrapes  burns  clears  suspects(false)  replay\n",
        r.hosts, r.vms, r.rounds,
    ));
    for x in &r.clean {
        out.push_str(&format!(
            "{:<16} {:>8} {:>6} {:>7} {:>12}({:<4}) {:>7}\n",
            x.seed,
            x.scrapes,
            x.slo_burns,
            x.slo_clears,
            x.suspects,
            x.false_suspects,
            if x.replay_ok { "ok" } else { "MISMATCH" },
        ));
    }
    let f = &r.fidelity;
    out.push_str(&format!(
        "fidelity: merged fleet p99 {:.1}us vs exact {:.1}us over {} spans — rel err {:.4} \
         (bound {:.4}), counts {}\n",
        f.fleet_p99_ns as f64 / 1e3,
        f.exact_p99_ns as f64 / 1e3,
        f.samples,
        f.rel_err,
        REL_ERR_BOUND,
        if f.count_match { "exact" } else { "MISMATCH" },
    ));
    let l = &r.slo_loop;
    out.push_str(&format!(
        "closed loop: baseline-clean={} raise={} alert={} pause={} clear={} resume={}\n",
        l.pre_clean, l.raised, l.alerted, l.paused, l.cleared, l.resumed,
    ));
    out.push_str(&format!(
        "self-overhead: {:.0}ns wall per scrape+evaluate pass ({} hosts) in a {:.1}ms control \
         period — {:.3}% duty cycle ({:.0}ns modelled fabric time)\n",
        r.scrape_wall_ns,
        r.overhead_hosts,
        r.period_ns as f64 / 1e6,
        r.overhead_pct(),
        r.scrape_virtual_ns,
    ));
    let pass = !gate_failed(r);
    out.push_str(&format!(
        "gate: zero attack-free burns, byte-identical replays, rel err <= 1/16 with exact \
         counts, full burn->pause->clear->resume loop, overhead <= {:.1}% — {}\n",
        BUDGET_PCT,
        if pass { "PASS" } else { "FAIL" },
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_seeds_replay_without_burning() {
        let rows = clean_sweep(6, 12, 4, 1);
        assert_eq!(rows.len(), 1);
        for x in &rows {
            assert!(x.replay_ok, "{}: replay diverged", x.seed);
            assert_eq!(x.slo_burns, 0, "{}: attack-free seed burned an SLO", x.seed);
            assert!(x.scrapes > 0, "{}: observatory never scraped", x.seed);
        }
    }

    #[test]
    fn merged_p99_tracks_ground_truth_and_loop_closes() {
        let f = fidelity(4, 2, 3, 6);
        assert!(f.count_match, "scrape deltas lost samples: {f:?}");
        assert!(f.rel_err <= REL_ERR_BOUND, "fidelity out of bound: {f:?}");

        let l = closed_loop();
        assert!(l.complete(), "closed loop incomplete: {l:?}");
    }

    #[test]
    fn overhead_rig_measures_both_bases() {
        let (wall, virt) = overhead(8, 3);
        // Debug builds blow the 3% release gate; the shape must hold
        // regardless: both bases positive, virtual dominated by the
        // per-frame fabric charge.
        assert!(wall > 0.0);
        assert!(virt >= 8.0 * 150_000.0, "fabric charge missing: {virt}");
    }
}
