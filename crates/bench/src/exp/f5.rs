//! R-F5 (Figure 5): the attacker's side of the dump attack at scale —
//! scan time and leak count versus number of co-resident VMs.
//!
//! Each guest runs some vTPM traffic; the attacker then dumps all of
//! Dom0-visible RAM and scans (rayon-parallel) for every instance's key
//! material. Expected shape: scan time grows with VM count (more RAM,
//! more needles); leak count equals the VM count on the baseline and is
//! zero on the improved platform.

use attacks::MemoryDump;
use vtpm::{Guest, Platform};
use vtpm_ac::SecurePlatform;
use xen_sim::DomainId;

/// One point of the figure.
#[derive(Debug, Clone)]
pub struct F5Point {
    /// Guests on the host.
    pub vms: usize,
    /// Pages in the dump (baseline host).
    pub pages: usize,
    /// Scan wall time, ms (baseline host).
    pub scan_ms: f64,
    /// Instances whose state leaked on the baseline host.
    pub base_leaks: usize,
    /// Instances whose state leaked on the improved host.
    pub imp_leaks: usize,
}

fn warm(guest: &mut Guest) {
    let mut c = guest.client(b"warm");
    c.startup_clear().expect("startup");
    c.extend(1, &[7; 20]).expect("extend");
}

/// High-entropy 64-byte probe of an instance's state.
fn probe(state: &[u8]) -> Vec<u8> {
    match attacks::dump::high_entropy_fragments(state, 1).first() {
        Some(&(a, b)) => state[a..b].to_vec(),
        None => state[..64.min(state.len())].to_vec(),
    }
}

fn leaks_on(platform: &Platform, guests: &[Guest]) -> (usize, usize, f64) {
    let probes: Vec<Vec<u8>> = guests
        .iter()
        .map(|g| probe(&platform.manager.export_instance_state(g.instance).expect("state")))
        .collect();
    let needles: Vec<&[u8]> = probes.iter().map(|p| p.as_slice()).collect();
    let dump = MemoryDump::capture(platform.manager.hypervisor(), DomainId::DOM0)
        .expect("dom0 dumps");
    let t0 = std::time::Instant::now();
    let hits = dump.scan(&needles);
    let scan_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut leaked: Vec<usize> = hits.iter().map(|h| h.needle).collect();
    leaked.sort_unstable();
    leaked.dedup();
    (leaked.len(), dump.pages.len(), scan_ms)
}

/// Run the sweep.
pub fn run(vm_counts: &[usize]) -> Vec<F5Point> {
    vm_counts
        .iter()
        .map(|&vms| {
            let base = Platform::baseline(format!("f5-base-{vms}").as_bytes()).expect("platform");
            let mut base_guests: Vec<Guest> =
                (0..vms).map(|i| base.launch_guest(&format!("g{i}")).expect("guest")).collect();
            for g in &mut base_guests {
                warm(g);
            }
            let (base_leaks, pages, scan_ms) = leaks_on(&base, &base_guests);

            let sp = SecurePlatform::full(format!("f5-imp-{vms}").as_bytes()).expect("platform");
            let mut imp_guests: Vec<Guest> =
                (0..vms).map(|i| sp.launch_guest(&format!("g{i}")).expect("guest")).collect();
            for g in &mut imp_guests {
                warm(g);
            }
            let (imp_leaks, _, _) = leaks_on(&sp.platform, &imp_guests);

            F5Point { vms, pages, scan_ms, base_leaks, imp_leaks }
        })
        .collect()
}

/// Render the series.
pub fn render(points: &[F5Point]) -> String {
    let mut out = String::new();
    out.push_str(
        "R-F5  Dump-scan at scale: time and leaked instances vs VM count\n\
         vms   dump(pages)   scan(ms)   leaked(baseline)   leaked(improved)\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:<5} {:>11} {:>10.2} {:>14}/{:<4} {:>12}/{:<4}\n",
            p.vms, p.pages, p.scan_ms, p.base_leaks, p.vms, p.imp_leaks, p.vms
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds_small() {
        let points = run(&[1, 3]);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert_eq!(p.base_leaks, p.vms, "baseline leaks every instance");
            assert_eq!(p.imp_leaks, 0, "improved leaks nothing");
        }
        assert!(points[1].pages >= points[0].pages);
        assert!(render(&points).contains("R-F5"));
    }
}
