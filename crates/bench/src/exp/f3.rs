//! R-F3 (Figure 3): vTPM migration time versus instance state size,
//! cleartext (baseline) vs sealed (improved) protocol.
//!
//! State size is grown by defining NV areas in the instance before
//! migration. Expected shape: both curves grow linearly with state size;
//! the sealed protocol pays a near-constant premium (one RSA-OAEP of the
//! session key + AES pass + hash), so the *relative* overhead shrinks as
//! state grows.

use vtpm::Platform;

/// One point of the figure.
#[derive(Debug, Clone)]
pub struct F3Point {
    /// Instance state size in bytes at export time.
    pub state_bytes: usize,
    /// Clear-protocol migration time (wall us, export+import).
    pub clear_us: f64,
    /// Sealed-protocol migration time (wall us, export+import).
    pub sealed_us: f64,
    /// Whether the sealed package hid the state (sanity column).
    pub sealed_hides: bool,
}

fn setup_instance(platform: &Platform, extra_nv_kib: usize, seed: &[u8]) -> (u32, usize) {
    let guest = platform.launch_guest(&format!("mig-{extra_nv_kib}")).expect("guest");
    let instance = guest.instance;
    // Inflate the state via NV areas written with pseudo-random data.
    platform
        .manager
        .with_instance(instance, |i| {
            let mut rng = tpm_crypto::Drbg::new(seed);
            for k in 0..extra_nv_kib {
                let idx = 0x100 + k as u32;
                i.tpm.provision_nv(idx, &rng.bytes(1024)).expect("nv budget fits");
            }
        })
        .expect("instance exists");
    let size = platform.manager.export_instance_state(instance).expect("state").len();
    (instance, size)
}

/// Run the sweep over NV payload sizes (KiB).
pub fn run(nv_kib: &[usize], reps: usize) -> Vec<F3Point> {
    nv_kib
        .iter()
        .map(|&kib| {
            // Fresh source/destination pairs per point; TPM budget must
            // accommodate the NV payload.
            let mk = |seed: &[u8]| {
                let cfg = vtpm::ManagerConfig {
                    vtpm_config: tpm::TpmConfig {
                        nv_budget: (kib + 4) * 1024,
                        ..Default::default()
                    },
                    ..Default::default()
                };
                Platform::with_config(seed, 16384, cfg, false).expect("platform")
            };

            let mut clear_total = 0f64;
            let mut sealed_total = 0f64;
            let mut state_bytes = 0usize;
            let mut sealed_hides = true;
            for rep in 0..reps {
                // Clear protocol.
                let src = mk(format!("f3-src-c-{kib}-{rep}").as_bytes());
                let dst = mk(format!("f3-dst-c-{kib}-{rep}").as_bytes());
                let (inst, size) = setup_instance(&src, kib, b"f3-nv");
                state_bytes = size;
                let t0 = std::time::Instant::now();
                let pkg = src.export_instance(inst, false, None).expect("export");
                dst.import_instance(&pkg).expect("import");
                clear_total += t0.elapsed().as_nanos() as f64 / 1e3;

                // Sealed protocol.
                let src = mk(format!("f3-src-s-{kib}-{rep}").as_bytes());
                let dst = mk(format!("f3-dst-s-{kib}-{rep}").as_bytes());
                let (inst, _) = setup_instance(&src, kib, b"f3-nv");
                let state = src.manager.export_instance_state(inst).expect("state");
                let dst_ek = dst.hw_ek_public();
                let t0 = std::time::Instant::now();
                let pkg = src.export_instance(inst, true, Some(&dst_ek)).expect("export");
                dst.import_instance(&pkg).expect("import");
                sealed_total += t0.elapsed().as_nanos() as f64 / 1e3;
                sealed_hides &= !pkg.exposes(&state[..64.min(state.len())]);
            }
            F3Point {
                state_bytes,
                clear_us: clear_total / reps as f64,
                sealed_us: sealed_total / reps as f64,
                sealed_hides,
            }
        })
        .collect()
}

/// Render the series.
pub fn render(points: &[F3Point]) -> String {
    let mut out = String::new();
    out.push_str(
        "R-F3  vTPM migration time vs instance state size\n\
         state(KiB)   clear(us)   sealed(us)   premium     sealed-hides-state\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:<12.1} {:>9.1} {:>12.1} {:>8.1}us   {}\n",
            p.state_bytes as f64 / 1024.0,
            p.clear_us,
            p.sealed_us,
            p.sealed_us - p.clear_us,
            p.sealed_hides,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds_small() {
        let points = run(&[0, 8], 1);
        assert_eq!(points.len(), 2);
        // State grows with NV payload.
        assert!(points[1].state_bytes > points[0].state_bytes + 4096);
        // Sealed always hides state; both complete.
        for p in &points {
            assert!(p.sealed_hides);
            assert!(p.clear_us > 0.0 && p.sealed_us > 0.0);
        }
        assert!(render(&points).contains("R-F3"));
    }
}
