//! R-F2 (Figure 2): where the improved path's overhead goes.
//!
//! Two complementary views of the same Seal-command workload:
//!
//! * the *modelled* virtual-time cost of each mechanism (from
//!   [`vtpm_ac::AcCosts`], what a hardware deployment pays), and
//! * the *measured* wall-clock delta obtained by switching each
//!   mechanism on alone versus the all-off floor.

use vtpm::Guest;
use vtpm_ac::{AcConfig, AcCosts, SecurePlatform};
use workload::{GuestSession, Op, Samples};

/// One bar of the figure.
#[derive(Debug, Clone)]
pub struct F2Component {
    /// Mechanism label.
    pub name: &'static str,
    /// Modelled virtual cost per Seal request (ns).
    pub modelled_ns: u64,
    /// Measured wall-clock delta vs the all-off floor (ns/op; can be
    /// noisy — the modelled column carries the paper-shaped claim).
    pub measured_delta_ns: f64,
}

fn mean_seal_latency(cfg: AcConfig, seed: &[u8], reps: usize) -> f64 {
    let sp = SecurePlatform::new(seed, cfg).expect("platform");
    let guest: Guest = sp.launch_guest("f2").expect("guest");
    let mut session = GuestSession::prepare(guest.front, seed).expect("prepare");
    session.run(Op::Seal).expect("warmup");
    let mut samples = Samples::new();
    for _ in 0..reps {
        samples.push(session.run_timed(Op::Seal).expect("seal"));
    }
    samples.summary().expect("samples").mean_ns
}

/// Run the breakdown with `reps` Seal repetitions per configuration.
pub fn run(reps: usize) -> Vec<F2Component> {
    let costs = AcCosts::default();
    // A Seal *operation* is three commands (OSAP, Seal; plus the OIAP of
    // the response path is part of Seal's auth) — approximate the tag
    // cost with the Seal command size (~100 bytes) times commands (2).
    let approx_cmd_bytes = 100u64;
    let per_request_auth =
        costs.auth_base_ns + costs.auth_per_byte_ns * approx_cmd_bytes;
    let commands_per_op = 2u64;

    let floor = mean_seal_latency(AcConfig::none(), b"f2-floor", reps);
    let auth = mean_seal_latency(
        AcConfig { auth: true, replay: false, policy: false, audit: false, max_guest_locality: 4 },
        b"f2-auth",
        reps,
    );
    let replay = mean_seal_latency(
        AcConfig { auth: true, replay: true, policy: false, audit: false, max_guest_locality: 4 },
        b"f2-replay",
        reps,
    );
    let policy = mean_seal_latency(
        AcConfig { auth: false, replay: false, policy: true, audit: false, max_guest_locality: 4 },
        b"f2-policy",
        reps,
    );
    let audit = mean_seal_latency(
        AcConfig { auth: false, replay: false, policy: false, audit: true, max_guest_locality: 4 },
        b"f2-audit",
        reps,
    );

    vec![
        F2Component {
            name: "auth (AC1 tag verify)",
            modelled_ns: per_request_auth * commands_per_op,
            measured_delta_ns: auth - floor,
        },
        F2Component {
            name: "replay guard",
            modelled_ns: costs.replay_ns * commands_per_op,
            measured_delta_ns: replay - auth,
        },
        F2Component {
            name: "policy (AC2)",
            modelled_ns: costs.policy_ns * commands_per_op,
            measured_delta_ns: policy - floor,
        },
        F2Component {
            name: "audit (AC4)",
            modelled_ns: costs.audit_ns * commands_per_op,
            measured_delta_ns: audit - floor,
        },
    ]
}

/// Render the breakdown.
pub fn render(components: &[F2Component]) -> String {
    let mut out = String::new();
    out.push_str(
        "R-F2  Overhead breakdown of the improved path (per Seal operation)\n\
         component                modelled(us)   measured-delta(us)\n",
    );
    let total: u64 = components.iter().map(|c| c.modelled_ns).sum();
    for c in components {
        out.push_str(&format!(
            "{:<24} {:>12.2} {:>20.2}\n",
            c.name,
            c.modelled_ns as f64 / 1e3,
            c.measured_delta_ns / 1e3,
        ));
    }
    out.push_str(&format!("modelled total: {:.2} us\n", total as f64 / 1e3));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds_small() {
        let comps = run(3);
        assert_eq!(comps.len(), 4);
        // The HMAC verify dominates the modelled budget, as the paper's
        // breakdown should show.
        let auth = comps.iter().find(|c| c.name.starts_with("auth")).unwrap();
        for other in comps.iter().filter(|c| !c.name.starts_with("auth")) {
            assert!(auth.modelled_ns > other.modelled_ns, "{}", other.name);
        }
        assert!(render(&comps).contains("modelled total"));
    }
}
