//! R-D1: streaming detection quality of the sentinel plane.
//!
//! Not a figure from the paper — the paper hardens the access path but
//! offers nothing for *detection*: a Dom0 "memory dump software" run
//! (its own abstract's attack) leaves no trace an operator could act
//! on. R-D1 evaluates the sentinel on the two axes a detection plane
//! lives or dies by:
//!
//! * **False positives** — the full chaos sweep (mirror-family seeds,
//!   migration-family seeds, and the 18-cell crash matrix) replayed
//!   with the sentinel consuming every span, audit record, gauge, and
//!   dump-trail entry. These runs inject crashes, fabric faults, frame
//!   corruption, and grant revocations — every *benign* anomaly the
//!   stack knows — and contain no attack, so any critical alert is a
//!   false positive. The CI gate requires exactly zero.
//! * **Detection** — scripted injections of the dump-based attacks (A1
//!   single-host state theft, A7 migration-window dump) plus a
//!   migration replay storm, each against the *improved* platform (the
//!   attack is blocked; the sentinel must still see the attempt).
//!   Detection latency is `alert.at_ns - attack_start_ns` in the same
//!   virtual time the rest of the evaluation reports; the gate requires
//!   every injection detected.
//!
//! The sweep sizes (32 + 32 + 1 = 65 scenarios at full size) match the
//! chaos CI sweep, so "zero false positives" is claimed over the same
//! corpus the determinism gate replays byte-for-byte.

use attacks::{dump_instance_state, migration_window_dump};
use vtpm::MirrorMode;
use vtpm_ac::SecurePlatform;
use vtpm_cluster::{Cluster, ClusterConfig, MigrateOutcome, MigMessage};
use vtpm_harness::{
    audit_event, dump_event, run_chaos, run_crash_matrix, run_migration_chaos, ChaosConfig,
    MigrationChaosConfig,
};
use vtpm_sentinel::{Sentinel, SentinelConfig, StreamEvent};
use workload::generate_trace;

/// One attack-free scenario of the sweep.
#[derive(Debug, Clone)]
pub struct CleanRow {
    /// Scenario family (`mirror`, `migration`, `matrix`).
    pub family: &'static str,
    /// Seed label.
    pub seed: String,
    /// Critical sentinel alerts — every one is a false positive.
    pub critical: u64,
    /// The alert lines, verbatim (for the failure report).
    pub alerts: Vec<String>,
}

/// One scripted attack injection.
#[derive(Debug, Clone)]
pub struct AttackRow {
    /// Injection name.
    pub name: &'static str,
    /// Whether the platform blocked the attack (it always should — the
    /// sentinel's job is noticing the *attempt*).
    pub blocked: bool,
    /// Whether a critical alert fired.
    pub detected: bool,
    /// Which detector fired first (`-` if none).
    pub detector: &'static str,
    /// `alert.at_ns - attack_start_ns`, virtual ns.
    pub latency_ns: u64,
    /// Stream events fed between attack start and the firing.
    pub events_to_detect: usize,
}

/// The full R-D1 result.
#[derive(Debug, Clone)]
pub struct D1Report {
    /// Attack-free sweep, one row per scenario.
    pub clean: Vec<CleanRow>,
    /// Scripted injections.
    pub attacks: Vec<AttackRow>,
}

/// Total critical alerts across the attack-free sweep (the FP count).
pub fn false_positives(r: &D1Report) -> u64 {
    r.clean.iter().map(|c| c.critical).sum()
}

/// Injections that no detector caught.
pub fn undetected(r: &D1Report) -> usize {
    r.attacks.iter().filter(|a| !a.detected).count()
}

/// The CI gate: zero false positives on clean seeds AND every
/// injection detected.
pub fn gate_failed(r: &D1Report) -> bool {
    false_positives(r) > 0 || undetected(r) > 0
}

/// Run the sweep: `mirror_seeds` + `migration_seeds` attack-free chaos
/// scenarios plus the crash matrix, then the scripted injections.
pub fn run(mirror_seeds: usize, migration_seeds: usize, events: usize, faults: usize) -> D1Report {
    let mut clean = Vec::new();
    for s in 0..mirror_seeds {
        let label = format!("d1-{s}");
        let cfg = ChaosConfig {
            events,
            faults,
            mirror_mode: MirrorMode::Encrypted,
            ..ChaosConfig::default()
        };
        let rep = run_chaos(label.as_bytes(), &cfg).expect("chaos run");
        clean.push(CleanRow {
            family: "mirror",
            seed: label,
            critical: rep.sentinel_critical,
            alerts: rep.sentinel_alerts,
        });
    }
    for s in 0..migration_seeds {
        let label = format!("d1-mig-{s}");
        let rep = run_migration_chaos(label.as_bytes(), &MigrationChaosConfig::default())
            .expect("migration chaos run");
        clean.push(CleanRow {
            family: "migration",
            seed: label,
            critical: rep.sentinel_critical,
            alerts: rep.sentinel_alerts,
        });
    }
    {
        let rep = run_crash_matrix(b"d1-matrix", true).expect("crash matrix");
        clean.push(CleanRow {
            family: "matrix",
            seed: "d1-matrix".into(),
            critical: rep.sentinel_critical,
            alerts: rep.failures,
        });
    }

    D1Report { clean, attacks: vec![inject_a1(), inject_a7(), inject_replay_storm()] }
}

/// Feed `events` one by one; stop at the first critical alert. Returns
/// (events fed until detection, firing detector, firing timestamp).
fn feed_until_critical(
    sentinel: &mut Sentinel,
    events: impl IntoIterator<Item = StreamEvent>,
) -> (usize, Option<(&'static str, u64)>) {
    let mut fed = 0usize;
    for ev in events {
        fed += 1;
        if sentinel.observe(ev) > 0 {
            if let Some(a) = sentinel.alerts().last() {
                return (fed, Some((a.detector, a.at_ns)));
            }
        }
    }
    (fed, None)
}

/// **A1 injection** — Dom0 memory-dump state theft against the improved
/// single-host platform, sentinel watching the audit log and dump trail.
fn inject_a1() -> AttackRow {
    let sp = SecurePlatform::full(b"d1/a1").expect("platform boots");
    let mut victim = sp.launch_guest("victim").expect("guest launches");
    {
        let mut c = victim.client(b"d1/a1/warm");
        c.startup_clear().unwrap();
        c.extend(0, &[7; 20]).unwrap();
        c.get_random(16).unwrap();
    }
    // Pre-attack exhaust is context, not evidence: feed it first.
    let mut sentinel = Sentinel::new(SentinelConfig::default());
    let context = sp.hook.audit.entries();
    for e in &context {
        sentinel.observe(audit_event(0, e));
    }
    let hv = sp.platform.manager.hypervisor();
    let start_ns = hv.clock.now_ns();

    let outcome = dump_instance_state(&sp.platform, &victim);

    let post_audit = sp.hook.audit.entries();
    let stream = post_audit[context.len()..]
        .iter()
        .map(|e| audit_event(0, e))
        .chain(hv.dump_events().iter().map(|d| dump_event(0, d)))
        .collect::<Vec<_>>();
    let (fed, hit) = feed_until_critical(&mut sentinel, stream);
    AttackRow {
        name: "A1 dump-state",
        blocked: !outcome.succeeded,
        detected: hit.is_some(),
        detector: hit.map(|(d, _)| d).unwrap_or("-"),
        latency_ns: hit.map(|(_, at)| at.saturating_sub(start_ns)).unwrap_or(0),
        events_to_detect: fed,
    }
}

/// **A7 injection** — migration-window dump on a sealed three-host
/// cluster, sentinel watching every host's exhaust.
fn inject_a7() -> AttackRow {
    let mut cluster = Cluster::new(
        b"d1/a7",
        ClusterConfig {
            hosts: 3,
            sealed: true,
            mirror_mode: MirrorMode::Encrypted,
            frames_per_host: 1024,
            ..Default::default()
        },
    )
    .expect("cluster boots");
    let vm = cluster.create_vm().expect("vm");
    for ev in generate_trace(b"d1/a7/warm", 12) {
        cluster.apply_event(vm, &ev);
    }
    let mut sentinel = Sentinel::new(SentinelConfig::default());
    for h in 0..3u32 {
        for e in cluster.hosts[h as usize].audit.entries() {
            sentinel.observe(audit_event(h, &e));
        }
    }
    let src = cluster.home_of(vm).expect("vm placed");
    let dst = (src + 1) % 3;
    let start_ns = cluster.hosts[src].platform.hv.clock.now_ns();

    let outcome = migration_window_dump(&mut cluster, vm, dst);

    let stream = (0..3u32)
        .flat_map(|h| {
            cluster.hosts[h as usize]
                .platform
                .hv
                .dump_events()
                .into_iter()
                .map(move |d| dump_event(h, &d))
                .collect::<Vec<_>>()
        })
        .collect::<Vec<_>>();
    let (fed, hit) = feed_until_critical(&mut sentinel, stream);
    AttackRow {
        name: "A7 migration-window",
        blocked: !outcome.succeeded,
        detected: hit.is_some(),
        detector: hit.map(|(d, _)| d).unwrap_or("-"),
        latency_ns: hit.map(|(_, at)| at.saturating_sub(start_ns)).unwrap_or(0),
        events_to_detect: fed,
    }
}

/// **Replay-storm injection** — a captured `Transfer` frame hammered at
/// the new home six times after a committed migration; each replay is
/// refused at the burned epoch and audited `RejectedStale`, and the
/// burst trips the replay watch.
fn inject_replay_storm() -> AttackRow {
    let mut cluster = Cluster::new(
        b"d1/replay",
        ClusterConfig {
            hosts: 2,
            sealed: true,
            mirror_mode: MirrorMode::Encrypted,
            frames_per_host: 1024,
            ..Default::default()
        },
    )
    .expect("cluster boots");
    let vm = cluster.create_vm().expect("vm");
    for ev in generate_trace(b"d1/replay/warm", 12) {
        cluster.apply_event(vm, &ev);
    }
    let committed = cluster.migrate(vm, 1) == MigrateOutcome::Committed;

    let mut sentinel = Sentinel::new(SentinelConfig::default());
    let mut context = [0usize; 2];
    for h in 0..2u32 {
        let entries = cluster.hosts[h as usize].audit.entries();
        context[h as usize] = entries.len();
        for e in &entries {
            sentinel.observe(audit_event(h, e));
        }
    }
    let frame = cluster
        .fabric
        .wiretap()
        .iter()
        .find(|f| {
            f.len() > 1 && matches!(MigMessage::decode(&f[1..]), Some(MigMessage::Transfer { .. }))
        })
        .cloned()
        .expect("committed migration left a Transfer on the wiretap");
    let start_ns = cluster.clock.now_ns();
    for _ in 0..6 {
        cluster.fabric.requeue(1, frame.clone());
        cluster.pump_host(1);
    }

    let stream = (0..2u32)
        .flat_map(|h| {
            cluster.hosts[h as usize].audit.entries()[context[h as usize]..]
                .iter()
                .map(|e| audit_event(h, e))
                .collect::<Vec<_>>()
        })
        .collect::<Vec<_>>();
    let (fed, hit) = feed_until_critical(&mut sentinel, stream);
    AttackRow {
        name: "replay-storm",
        // "Blocked" here = the storm never disturbed placement.
        blocked: committed && cluster.runnable_hosts(vm) == vec![1],
        detected: hit.is_some(),
        detector: hit.map(|(d, _)| d).unwrap_or("-"),
        latency_ns: hit.map(|(_, at)| at.saturating_sub(start_ns)).unwrap_or(0),
        events_to_detect: fed,
    }
}

/// Render the tables.
pub fn render(r: &D1Report) -> String {
    let mut out = String::new();
    out.push_str("R-D1  Sentinel detection quality: FP sweep + scripted injections\n");
    let per_family = |fam: &str| {
        let rows: Vec<&CleanRow> = r.clean.iter().filter(|c| c.family == fam).collect();
        let fps: u64 = rows.iter().map(|c| c.critical).sum();
        (rows.len(), fps)
    };
    for fam in ["mirror", "migration", "matrix"] {
        let (n, fps) = per_family(fam);
        out.push_str(&format!(
            "  clean {fam:<10} {n:>3} scenarios   {fps} critical alerts (false positives)\n"
        ));
    }
    for c in r.clean.iter().filter(|c| c.critical > 0) {
        out.push_str(&format!("    FP {} [{}]:\n", c.seed, c.family));
        for a in &c.alerts {
            out.push_str(&format!("      {a}\n"));
        }
    }
    out.push_str(&format!(
        "\n  {:<22} {:>8} {:>9} {:>16} {:>12} {:>7}\n",
        "injection", "blocked", "detected", "detector", "latency", "events"
    ));
    for a in &r.attacks {
        out.push_str(&format!(
            "  {:<22} {:>8} {:>9} {:>16} {:>9.1} us {:>7}\n",
            a.name,
            if a.blocked { "yes" } else { "NO" },
            if a.detected { "yes" } else { "MISSED" },
            a.detector,
            a.latency_ns as f64 / 1e3,
            a.events_to_detect,
        ));
    }
    out.push_str(&format!(
        "totals: {} clean scenarios, {} false positives, {}/{} injections detected\n",
        r.clean.len(),
        false_positives(r),
        r.attacks.len() - undetected(r),
        r.attacks.len(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_holds_at_test_size() {
        let r = run(2, 2, 30, 3);
        assert_eq!(r.clean.len(), 5);
        assert_eq!(false_positives(&r), 0, "false positive: {:#?}", r.clean);
        assert_eq!(undetected(&r), 0, "missed injection: {:#?}", r.attacks);
        for a in &r.attacks {
            assert!(a.blocked, "{} was not blocked", a.name);
        }
        // The right detector catches each injection.
        let by_name = |n: &str| r.attacks.iter().find(|a| a.name == n).unwrap();
        assert_eq!(by_name("A1 dump-state").detector, "dump-signature");
        assert_eq!(by_name("A7 migration-window").detector, "dump-signature");
        assert_eq!(by_name("replay-storm").detector, "replay-watch");
        assert!(!gate_failed(&r));
        let table = render(&r);
        assert!(table.contains("3/3 injections detected"));
    }
}
