//! R-F4 (Figure 4): manager scalability — aggregate throughput versus
//! worker threads.
//!
//! The worker-pool server drains a pre-built queue of cheap requests
//! spread over many instances (per-instance locks, no global lock), so
//! throughput should climb with workers until core count or the
//! memory-mirror lock saturates.

use std::sync::Arc;

use vtpm::{Envelope, ManagerConfig, ManagerServer, VtpmManager};
use xen_sim::{DomainId, Hypervisor};

/// One point of the figure.
#[derive(Debug, Clone)]
pub struct F4Point {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Requests served per wall second.
    pub ops_s: f64,
}

fn build_requests(instances: &[u32], per_instance: usize) -> Vec<(DomainId, Vec<u8>)> {
    let mut out = Vec::with_capacity(instances.len() * per_instance);
    for (gi, &inst) in instances.iter().enumerate() {
        for s in 0..per_instance {
            // TPM_PcrRead(0): cheap and stateless-ish.
            let mut cmd = Vec::with_capacity(14);
            cmd.extend_from_slice(&0x00C1u16.to_be_bytes());
            cmd.extend_from_slice(&14u32.to_be_bytes());
            cmd.extend_from_slice(&tpm::ordinal::PCR_READ.to_be_bytes());
            cmd.extend_from_slice(&0u32.to_be_bytes());
            let env = Envelope {
                domain: gi as u32 + 1,
                instance: inst,
                seq: s as u64 + 2,
                locality: 0,
                tag: None,
                command: cmd,
            };
            out.push((DomainId(gi as u32 + 1), env.encode()));
        }
    }
    out
}

/// Run the sweep: `instances` vTPMs, `per_instance` requests each, for
/// every worker count.
pub fn run(worker_counts: &[usize], instances: usize, per_instance: usize) -> Vec<F4Point> {
    worker_counts
        .iter()
        .map(|&workers| {
            let hv = Arc::new(Hypervisor::boot(16384, 32).expect("boot"));
            let mgr = Arc::new(
                VtpmManager::new(
                    Arc::clone(&hv),
                    format!("f4-{workers}").as_bytes(),
                    ManagerConfig { charge_virtual_time: false, ..Default::default() },
                )
                .expect("manager"),
            );
            let ids: Vec<u32> =
                (0..instances).map(|_| mgr.create_instance().expect("instance")).collect();
            // Start every instance once so commands succeed.
            for (gi, &inst) in ids.iter().enumerate() {
                let startup = Envelope {
                    domain: gi as u32 + 1,
                    instance: inst,
                    seq: 1,
                    locality: 0,
                    tag: None,
                    command: vec![0x00, 0xC1, 0, 0, 0, 12, 0, 0, 0, 0x99, 0, 1],
                };
                mgr.handle(DomainId(gi as u32 + 1), &startup.encode());
            }
            let requests = build_requests(&ids, per_instance);
            let total = requests.len();

            let server = ManagerServer::new(Arc::clone(&mgr), workers);
            let t0 = std::time::Instant::now();
            // Submit everything, then drain the replies.
            let receivers: Vec<_> = requests
                .into_iter()
                .map(|(src, env)| server.submit(src, env))
                .collect();
            for rx in receivers {
                rx.recv().expect("response");
            }
            let elapsed = t0.elapsed().as_secs_f64();
            server.shutdown();
            F4Point { workers, ops_s: total as f64 / elapsed }
        })
        .collect()
}

/// Render the series.
pub fn render(points: &[F4Point]) -> String {
    let mut out = String::new();
    out.push_str("R-F4  Manager throughput vs worker threads (PcrRead flood)\n");
    out.push_str("workers   ops/s      scaling-vs-1\n");
    let base = points.first().map(|p| p.ops_s).unwrap_or(1.0);
    for p in points {
        out.push_str(&format!(
            "{:<9} {:>9.0} {:>12.2}x\n",
            p.workers,
            p.ops_s,
            p.ops_s / base
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds_small() {
        let points = run(&[1, 2], 4, 50);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.ops_s > 0.0);
        }
        assert!(render(&points).contains("R-F4"));
    }
}
