//! R-F1 (Figure 1): aggregate throughput versus number of guest VMs,
//! baseline vs improved.
//!
//! Closed-loop mixed workload per guest; the series shows both curves
//! climbing with VM count until the manager saturates, with the improved
//! curve tracking the baseline within the per-command overhead band.

use vtpm::{Guest, Platform};
use vtpm_ac::SecurePlatform;
use workload::{run_concurrent, CommandMix};

/// One point on the figure.
#[derive(Debug, Clone)]
pub struct F1Point {
    /// Guests running concurrently.
    pub vms: usize,
    /// Baseline throughput (ops per wall second).
    pub base_ops_s: f64,
    /// Improved throughput (ops per wall second).
    pub imp_ops_s: f64,
    /// Baseline virtual-time throughput.
    pub base_ops_vs: f64,
    /// Improved virtual-time throughput.
    pub imp_ops_vs: f64,
}

/// Run the sweep.
pub fn run(vm_counts: &[usize], ops_per_guest: usize) -> Vec<F1Point> {
    vm_counts
        .iter()
        .map(|&vms| {
            let base = Platform::baseline(format!("f1-base-{vms}").as_bytes()).expect("platform");
            let guests: Vec<Guest> =
                (0..vms).map(|i| base.launch_guest(&format!("g{i}")).expect("guest")).collect();
            let b = run_concurrent(&base.hv, guests, &CommandMix::light(), ops_per_guest, b"f1");

            let sp =
                SecurePlatform::full(format!("f1-imp-{vms}").as_bytes()).expect("platform");
            let guests: Vec<Guest> =
                (0..vms).map(|i| sp.launch_guest(&format!("g{i}")).expect("guest")).collect();
            let i = run_concurrent(
                &sp.platform.hv,
                guests,
                &CommandMix::light(),
                ops_per_guest,
                b"f1",
            );
            assert_eq!(b.errors + i.errors, 0, "workload must run clean");

            F1Point {
                vms,
                base_ops_s: b.throughput_wall(),
                imp_ops_s: i.throughput_wall(),
                base_ops_vs: b.throughput_virtual(),
                imp_ops_vs: i.throughput_virtual(),
            }
        })
        .collect()
}

/// Render the series.
pub fn render(points: &[F1Point]) -> String {
    let mut out = String::new();
    out.push_str(
        "R-F1  Aggregate throughput vs concurrent VMs (light mix)\n\
         vms   base(ops/s wall)  impr(ops/s wall)   base(ops/s virt)  impr(ops/s virt)\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:<5} {:>17.0} {:>17.0} {:>18.1} {:>17.1}\n",
            p.vms, p.base_ops_s, p.imp_ops_s, p.base_ops_vs, p.imp_ops_vs
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds_small() {
        let points = run(&[1, 2], 6);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.base_ops_s > 0.0 && p.imp_ops_s > 0.0);
            // The paper-shaped claim lives in virtual time: improved
            // within a few percent of baseline.
            assert!(p.imp_ops_vs > p.base_ops_vs * 0.9, "{p:?}");
            // Wall-clock carries software AC cost; just sanity-bound it.
            assert!(p.imp_ops_s > p.base_ops_s / 5.0, "{p:?}");
        }
        assert!(render(&points).contains("R-F1"));
    }
}
