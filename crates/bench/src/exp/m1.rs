//! R-M1: live-migration latency and guest-visible downtime versus state
//! size, clear vs sealed transfer, measured on the multi-host cluster.
//!
//! Unlike R-F3 (which wall-clocks `export`+`import` in isolation), R-M1
//! drives the full staged protocol — prepare → quiesce → sealed transfer
//! → verify → commit → release — across the simulated fabric and reads
//! the numbers back from the cluster's migration telemetry, in the same
//! deterministic virtual time the chaos harness replays. *Downtime* is
//! the headline: the source-quiesce → destination-commit window during
//! which the instance answers on no host.
//!
//! Expected shape: both curves grow linearly with state size (the wire
//! charges per byte); sealing pays a near-constant premium (one RSA-OAEP
//! unwrap inside the destination's hardware TPM plus two symmetric
//! passes), so *relative* overhead shrinks as state grows. The CI gate
//! ([`BUDGET_PREMIUM_US`]) holds that premium — dominated by the
//! modelled hardware-TPM RSA private operation — to a bounded absolute
//! blackout cost at every measured size.
//!
//! State sizes stay under the resident mirror's single-metadata-frame
//! cap (~800 KiB serialized): the destination must be able to adopt —
//! and durably mirror — the incoming instance before it commits.

use vtpm::MirrorMode;
use vtpm_cluster::{Cluster, ClusterConfig, MigrateOutcome};
use vtpm_telemetry::MigrationOutcome;

/// Sealing may add at most this much guest-visible blackout over the
/// clear baseline, at every state size (`repro m1` exits nonzero past
/// it). Covers the RSA-OAEP unwrap (2.5 ms modelled after the R-C1
/// crypto-floor recalibration), the session-key seal, and the two
/// symmetric passes over the largest state.
pub const BUDGET_PREMIUM_US: f64 = 7_000.0;

/// One point of the figure: one state size, both transfer modes.
#[derive(Debug, Clone, PartialEq)]
pub struct M1Point {
    /// Serialized instance state at transfer time (plaintext bytes).
    pub state_bytes: u64,
    /// Encoded clear package as shipped on the fabric.
    pub clear_pkg_bytes: u64,
    /// Encoded sealed package as shipped on the fabric.
    pub sealed_pkg_bytes: u64,
    /// Mean guest-visible blackout, clear transfer (virtual us).
    pub clear_downtime_us: f64,
    /// Mean guest-visible blackout, sealed transfer (virtual us).
    pub sealed_downtime_us: f64,
    /// Mean whole-attempt latency, clear transfer (virtual us).
    pub clear_total_us: f64,
    /// Mean whole-attempt latency, sealed transfer (virtual us).
    pub sealed_total_us: f64,
}

impl M1Point {
    /// Sealed blackout as a multiple of clear blackout.
    pub fn downtime_ratio(&self) -> f64 {
        self.sealed_downtime_us / self.clear_downtime_us
    }

    /// Absolute blackout the sealing adds (us).
    pub fn premium_us(&self) -> f64 {
        self.sealed_downtime_us - self.clear_downtime_us
    }
}

/// Migrate one VM `reps` times between two hosts and average the
/// committed spans. Returns (state, package bytes, downtime us, total us).
fn measure(nv_kib: usize, sealed: bool, reps: usize) -> (u64, u64, f64, f64) {
    let seed = format!("m1-{nv_kib}-{}", if sealed { "sealed" } else { "clear" });
    let mut c = Cluster::new(
        seed.as_bytes(),
        ClusterConfig {
            hosts: 2,
            sealed,
            mirror_mode: MirrorMode::Encrypted,
            frames_per_host: 16384,
            nv_budget: (nv_kib + 8) * 1024,
        },
    )
    .expect("cluster");
    let vm = c.create_vm().expect("vm");
    // Inflate the state with NV areas of pseudo-random data, as in R-F3.
    c.with_vm(vm, |i| {
        let mut rng = tpm_crypto::Drbg::new(b"m1-nv");
        for k in 0..nv_kib {
            i.tpm.provision_nv(0x100 + k as u32, &rng.bytes(1024)).expect("nv budget fits");
        }
    })
    .expect("vm is live");
    for rep in 0..reps {
        assert_eq!(c.migrate(vm, (rep + 1) % 2), MigrateOutcome::Committed, "{seed} rep {rep}");
    }
    let spans = c.telemetry().spans();
    assert_eq!(spans.len(), reps, "{seed}: every attempt commits first try");
    assert!(spans.iter().all(|s| s.outcome == MigrationOutcome::Committed));
    let n = reps as f64;
    (
        spans[0].state_bytes,
        spans[0].package_bytes,
        spans.iter().map(|s| s.downtime_ns as f64 / 1e3).sum::<f64>() / n,
        spans.iter().map(|s| s.total_ns as f64 / 1e3).sum::<f64>() / n,
    )
}

/// Run the sweep over NV payload sizes (KiB), `reps` hand-offs per mode.
pub fn run(nv_kib: &[usize], reps: usize) -> Vec<M1Point> {
    nv_kib
        .iter()
        .map(|&kib| {
            let (state, clear_pkg, clear_down, clear_total) = measure(kib, false, reps);
            let (_, sealed_pkg, sealed_down, sealed_total) = measure(kib, true, reps);
            M1Point {
                state_bytes: state,
                clear_pkg_bytes: clear_pkg,
                sealed_pkg_bytes: sealed_pkg,
                clear_downtime_us: clear_down,
                sealed_downtime_us: sealed_down,
                clear_total_us: clear_total,
                sealed_total_us: sealed_total,
            }
        })
        .collect()
}

/// Worst absolute sealing premium across the sweep — the number the CI
/// gate compares against [`BUDGET_PREMIUM_US`].
pub fn max_premium_us(points: &[M1Point]) -> f64 {
    points.iter().map(M1Point::premium_us).fold(0.0, f64::max)
}

/// Render the table.
pub fn render(points: &[M1Point]) -> String {
    let mut out = String::new();
    out.push_str(
        "R-M1  Live-migration downtime vs state size (2-host cluster, virtual time)\n\
         state(KiB)  pkg-sealed(KiB)  clear-down(ms)  sealed-down(ms)  premium(ms)  ratio  \
         clear-total(ms)  sealed-total(ms)\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:<11.1} {:>15.1} {:>15.3} {:>16.3} {:>12.3} {:>6.2} {:>16.3} {:>17.3}\n",
            p.state_bytes as f64 / 1024.0,
            p.sealed_pkg_bytes as f64 / 1024.0,
            p.clear_downtime_us / 1e3,
            p.sealed_downtime_us / 1e3,
            p.premium_us() / 1e3,
            p.downtime_ratio(),
            p.clear_total_us / 1e3,
            p.sealed_total_us / 1e3,
        ));
    }
    out.push_str(&format!(
        "budget: sealing adds <= {:.0}ms blackout at every size; worst measured {:.3}ms\n",
        BUDGET_PREMIUM_US / 1e3,
        max_premium_us(points) / 1e3,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn premium_is_near_constant_and_relative_overhead_shrinks() {
        let points = run(&[0, 64], 1);
        assert_eq!(points.len(), 2);
        // State (and the fabric package) grow with the NV payload.
        assert!(points[1].state_bytes > points[0].state_bytes + 60 * 1024);
        assert!(points[1].sealed_pkg_bytes > points[1].state_bytes);
        for p in &points {
            // Sealing always costs something; every attempt commits.
            assert!(p.sealed_downtime_us > p.clear_downtime_us);
            assert!(p.sealed_total_us > p.clear_total_us);
            assert!(p.clear_downtime_us > 0.0 && p.clear_downtime_us < p.clear_total_us);
        }
        // The relative premium shrinks as state grows (the paper's
        // shape) while the absolute premium stays near-constant and
        // budgeted; the virtual-time measurement replays exactly.
        assert!(points[1].downtime_ratio() < points[0].downtime_ratio());
        assert!(max_premium_us(&points) <= BUDGET_PREMIUM_US);
        assert!(points[1].premium_us() < points[0].premium_us() * 2.0);
        assert_eq!(run(&[0, 64], 1), points);
        let table = render(&points);
        assert!(table.contains("R-M1") && table.contains("budget:"));
    }
}
