//! R-T4 (ablation table): cost and coverage of each mechanism alone.
//!
//! For every AC configuration: the mean latency of a Seal/Extend mix
//! (cost) and how many of the six attacks the configuration blocks
//! (coverage). The full configuration should block everything for a
//! total cost close to the sum of its parts.

use attacks::AttackMatrix;
use vtpm::Guest;
use vtpm_ac::{AcConfig, SecurePlatform};
use workload::{GuestSession, Op, Samples};

/// One ablation row.
#[derive(Debug, Clone)]
pub struct T4Row {
    /// Configuration label.
    pub label: &'static str,
    /// Mean latency of the mixed workload (wall us/op).
    pub mean_us: f64,
    /// Mean virtual-time latency (us/op).
    pub mean_virt_us: f64,
    /// Attacks blocked (out of 6).
    pub blocked: usize,
}

/// The configurations swept, with labels.
pub fn configurations() -> Vec<(&'static str, AcConfig)> {
    vec![
        ("none (baseline-equivalent)", AcConfig::none()),
        (
            "auth only (AC1)",
            AcConfig { auth: true, replay: true, policy: false, audit: false, max_guest_locality: 4 },
        ),
        (
            "policy only (AC2)",
            AcConfig { auth: false, replay: false, policy: true, audit: false, max_guest_locality: 4 },
        ),
        (
            "audit only (AC4)",
            AcConfig { auth: false, replay: false, policy: false, audit: true, max_guest_locality: 4 },
        ),
        ("full (AC1+AC2+AC4)", AcConfig::default()),
    ]
}

fn warm(guest: &mut Guest) {
    let mut c = guest.client(b"warm");
    c.startup_clear().expect("startup");
    c.extend(0, &[1; 20]).expect("extend");
}

/// Run the ablation with `reps` ops per configuration.
pub fn run(reps: usize) -> Vec<T4Row> {
    configurations()
        .into_iter()
        .map(|(label, cfg)| {
            let sp =
                SecurePlatform::new(format!("t4-{label}").as_bytes(), cfg).expect("platform");

            // Cost: Seal/Extend alternation on a prepared guest.
            let guest = sp.launch_guest("bench").expect("guest");
            let clock = &sp.platform.hv.clock;
            let mut session = GuestSession::prepare(guest.front, b"t4").expect("prepare");
            let mut wall = Samples::new();
            let mut virt = Samples::new();
            for i in 0..reps {
                let op = if i % 2 == 0 { Op::Seal } else { Op::Extend };
                let v0 = clock.now_ns();
                wall.push(session.run_timed(op).expect("op"));
                virt.push(clock.now_ns() - v0);
            }

            // Coverage: the attack matrix. Note: the *mechanism layer*
            // (encrypted mirror + scrubbed rings = AC3) is part of the
            // improved platform in every row, so dump/sniff attacks are
            // blocked everywhere; the rows differentiate the hook-level
            // mechanisms.
            let mut victim = sp.launch_guest("victim").expect("guest");
            let mut attacker = sp.launch_guest("attacker").expect("guest");
            warm(&mut victim);
            warm(&mut attacker);
            let matrix = AttackMatrix::run(label, &sp.platform, &victim, &mut attacker);

            T4Row {
                label,
                mean_us: wall.summary().expect("samples").mean_ns / 1e3,
                mean_virt_us: virt.summary().expect("samples").mean_ns / 1e3,
                blocked: matrix.outcomes.len() - matrix.successes(),
            }
        })
        .collect()
}

/// Render the table.
pub fn render(rows: &[T4Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "R-T4  Ablation: per-mechanism cost and attack coverage\n\
         configuration                  mean(virt us)  mean(wall us)  attacks-blocked/6\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<30} {:>13.1} {:>14.1} {:>12}\n",
            r.label, r.mean_virt_us, r.mean_us, r.blocked
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds_small() {
        let rows = run(4);
        assert_eq!(rows.len(), 5);
        let full = rows.last().unwrap();
        assert_eq!(full.blocked, 6, "full config blocks everything");
        let none = &rows[0];
        // Even 'none' blocks the AC3-layer attacks (dump, sniff).
        assert!(none.blocked >= 2, "mechanism layer alone blocks dump/sniff");
        assert!(none.blocked < 6, "hook mechanisms add coverage");
        // Full config costs at least as much virtual time as none.
        assert!(full.mean_virt_us >= none.mean_virt_us);
        assert!(render(&rows).contains("R-T4"));
    }
}
