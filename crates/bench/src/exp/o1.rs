//! R-O1: telemetry self-overhead on the manager's request path.
//!
//! Not a figure from the paper — it validates this repo's own
//! observability subsystem. The claim under test: with the `telemetry`
//! feature compiled in (the default), the per-command cost of span
//! minting, stage stamping, histogram updates, and the span-ring push
//! is at most [`BUDGET_PCT`] of the median command latency, per command
//! class. Compiled *out*, the cost is zero by construction
//! (`VtpmManager::telemetry()` is statically `None` and every
//! instrumentation block folds away), so the runtime comparison here is
//! enabled vs runtime-disabled registries inside one binary — the
//! disabled manager takes the identical code path minus the registry
//! work, which is exactly the increment the budget bounds.
//!
//! Two bases are reported, following the repo's wall/virtual split
//! (see R-T1): the **wall** percentage compares the registry increment
//! to the raw software cost of `handle()` in this simulator, and the
//! **deployment** percentage compares the same increment to the
//! modelled command latency on real hardware (virtual time: ring
//! transport plus the command's TPM cost). The budget gates the
//! deployment number — that is the latency a guest actually observes;
//! the wall number is reported for transparency and is large for
//! read-only commands precisely because their simulated software path
//! is a few hundred nanoseconds, thousands of times cheaper than the
//! hardware they model.
//!
//! Methodology: two managers (telemetry on / off), identical
//! configuration, virtual-time charging off so wall time is the
//! measurement. Batches of pre-encoded commands alternate A/B/A/B
//! between the managers to cancel clock drift and frequency ramps; the
//! per-command number is the median over batches. The deployment
//! latency comes from a third manager with charging on — the virtual
//! clock is deterministic, so its per-command cost is exact.

use std::sync::Arc;
use std::time::Instant;

use vtpm::{Envelope, ManagerConfig, MirrorMode, VtpmManager};
use xen_sim::{DomainId, Hypervisor};

/// Hard overhead budget, percent of the modelled deployment latency.
pub const BUDGET_PCT: f64 = 3.0;

/// One command class, enabled vs disabled.
#[derive(Debug, Clone)]
pub struct O1Row {
    /// Command class measured.
    pub command: &'static str,
    /// Median wall ns/command with the registry disabled.
    pub disabled_ns: f64,
    /// Median wall ns/command with the registry enabled.
    pub enabled_ns: f64,
    /// Modelled deployment latency (virtual ns/command, deterministic).
    pub deploy_ns: f64,
    /// Batches timed per configuration.
    pub batches: usize,
    /// Commands per batch.
    pub per_batch: usize,
}

impl O1Row {
    /// Absolute registry increment, ns/command.
    pub fn overhead_ns(&self) -> f64 {
        self.enabled_ns - self.disabled_ns
    }

    /// Increment relative to the simulator's software path, percent.
    pub fn wall_overhead_pct(&self) -> f64 {
        self.overhead_ns() / self.disabled_ns * 100.0
    }

    /// Increment relative to the modelled deployment latency, percent —
    /// the number the budget gates.
    pub fn deploy_overhead_pct(&self) -> f64 {
        self.overhead_ns() / self.deploy_ns * 100.0
    }
}

/// Largest per-class deployment-basis overhead in the sweep — what the
/// CI gate compares against [`BUDGET_PCT`].
pub fn max_overhead_pct(rows: &[O1Row]) -> f64 {
    rows.iter().map(|r| r.deploy_overhead_pct()).fold(f64::NEG_INFINITY, f64::max)
}

fn command(ordinal: u32, body: &[u8]) -> Vec<u8> {
    let mut cmd = Vec::new();
    cmd.extend_from_slice(&0x00C1u16.to_be_bytes());
    cmd.extend_from_slice(&((10 + body.len()) as u32).to_be_bytes());
    cmd.extend_from_slice(&ordinal.to_be_bytes());
    cmd.extend_from_slice(body);
    cmd
}

/// A started manager plus one pre-encoded request per command class.
/// The stock hook has no replay guard, so the same encoded bytes can be
/// replayed every iteration — per-command work is constant and the
/// enabled/disabled diff isolates the registry cost.
struct Rig {
    hv: Arc<Hypervisor>,
    mgr: VtpmManager,
    wire: Vec<Vec<u8>>,
}

impl Rig {
    fn build(telemetry_enabled: bool, charge: bool, classes: &[(&'static str, Vec<u8>)]) -> Rig {
        let hv = Arc::new(Hypervisor::boot(4096, 16).unwrap());
        let mgr = VtpmManager::new(
            Arc::clone(&hv),
            b"bench-o1",
            ManagerConfig {
                mirror_mode: MirrorMode::Encrypted,
                charge_virtual_time: charge,
                telemetry_enabled,
                ..Default::default()
            },
        )
        .unwrap();
        let inst = mgr.create_instance().unwrap();
        let env = |command: Vec<u8>| Envelope {
            domain: 1,
            instance: inst,
            seq: 1,
            locality: 0,
            tag: None,
            command,
        };
        mgr.handle(DomainId(1), &env(command(0x99, &1u16.to_be_bytes()[..])).encode());
        let wire = classes.iter().map(|(_, cmd)| env(cmd.clone()).encode()).collect();
        Rig { hv, mgr, wire }
    }

    /// Time one batch of `n` replays of class `class`; returns wall ns/cmd.
    fn batch(&self, class: usize, n: usize) -> f64 {
        let wire = &self.wire[class];
        let t0 = Instant::now();
        for _ in 0..n {
            std::hint::black_box(self.mgr.handle(DomainId(1), wire));
        }
        t0.elapsed().as_nanos() as f64 / n as f64
    }

    /// Virtual clock cost of one batch of `n` replays, ns/cmd.
    fn virt_batch(&self, class: usize, n: usize) -> f64 {
        let wire = &self.wire[class];
        let v0 = self.hv.clock.now_ns();
        for _ in 0..n {
            std::hint::black_box(self.mgr.handle(DomainId(1), wire));
        }
        (self.hv.clock.now_ns() - v0) as f64 / n as f64
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Run the experiment: `batches` timed batches of `per_batch` commands
/// per class per configuration, interleaved A/B.
pub fn run(batches: usize, per_batch: usize) -> Vec<O1Row> {
    let classes: Vec<(&'static str, Vec<u8>)> = vec![
        ("pcr_read", command(tpm::ordinal::PCR_READ, &0u32.to_be_bytes())),
        ("extend", {
            let mut body = Vec::new();
            body.extend_from_slice(&3u32.to_be_bytes());
            body.extend_from_slice(&[0xA5u8; 20]);
            command(tpm::ordinal::EXTEND, &body)
        }),
    ];
    let on = Rig::build(true, false, &classes);
    let off = Rig::build(false, false, &classes);
    let deploy = Rig::build(true, true, &classes);

    classes
        .iter()
        .enumerate()
        .map(|(ci, (name, _))| {
            // Warm both managers on this class (first mutation mirrors
            // the whole state; page cache and branch predictors settle).
            on.batch(ci, per_batch);
            off.batch(ci, per_batch);
            let mut on_ns = Vec::with_capacity(batches);
            let mut off_ns = Vec::with_capacity(batches);
            for _ in 0..batches {
                on_ns.push(on.batch(ci, per_batch));
                off_ns.push(off.batch(ci, per_batch));
            }
            O1Row {
                command: name,
                disabled_ns: median(&mut off_ns),
                enabled_ns: median(&mut on_ns),
                deploy_ns: deploy.virt_batch(ci, per_batch.max(16)),
                batches,
                per_batch,
            }
        })
        .collect()
}

/// Render the table, ending with the PASS/FAIL budget verdict line the
/// CI gate greps for.
pub fn render(rows: &[O1Row]) -> String {
    let mut out = String::new();
    out.push_str("R-O1  Telemetry self-overhead (enabled vs runtime-disabled registry)\n");
    out.push_str(&format!(
        "{:<10} {:>13} {:>13} {:>9} {:>9} {:>14} {:>9}   ({} batches x {} cmds)\n",
        "command",
        "off(ns/cmd)",
        "on(ns/cmd)",
        "delta",
        "wall",
        "deploy(ns)",
        "deploy",
        rows.first().map_or(0, |r| r.batches),
        rows.first().map_or(0, |r| r.per_batch),
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>13.1} {:>13.1} {:>9.1} {:>8.2}% {:>14.0} {:>8.3}%\n",
            r.command,
            r.disabled_ns,
            r.enabled_ns,
            r.overhead_ns(),
            r.wall_overhead_pct(),
            r.deploy_ns,
            r.deploy_overhead_pct(),
        ));
    }
    let max = max_overhead_pct(rows);
    out.push_str(&format!(
        "budget: max overhead {:.3}% of deployment latency vs {:.1}% allowed — {}\n",
        max,
        BUDGET_PCT,
        if max <= BUDGET_PCT { "PASS" } else { "FAIL" },
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds_small() {
        let rows = run(5, 50);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.disabled_ns > 0.0 && r.enabled_ns > 0.0);
            assert!(
                r.deploy_ns >= 60_000.0,
                "{}: deployment latency below the modelled transport floor",
                r.command
            );
            assert!(
                r.deploy_overhead_pct() < 25.0,
                "{}: deployment overhead {:.2}% out of band even for a debug build",
                r.command,
                r.deploy_overhead_pct()
            );
        }
        let table = render(&rows);
        assert!(table.contains("pcr_read"));
        assert!(table.contains("budget: max overhead"));
    }
}
