//! R-T2 (Table 2): the attack matrix — each attack against the baseline
//! (expected: succeeds) and the improved system (expected: blocked).

use attacks::AttackMatrix;
use vtpm::{Guest, Platform};
use vtpm_ac::SecurePlatform;

/// Both matrices.
#[derive(Debug, Clone)]
pub struct T2Result {
    /// Against the stock system.
    pub baseline: AttackMatrix,
    /// Against the improved system.
    pub improved: AttackMatrix,
}

fn warm(guest: &mut Guest) {
    let mut c = guest.client(b"warm");
    c.startup_clear().expect("startup");
    c.extend(0, &[1; 20]).expect("extend");
    c.get_random(16).expect("random");
}

/// Run the full suite against both configurations.
pub fn run() -> T2Result {
    let base = Platform::baseline(b"t2-baseline").expect("platform");
    let mut victim = base.launch_guest("victim").expect("guest");
    let mut attacker = base.launch_guest("attacker").expect("guest");
    warm(&mut victim);
    warm(&mut attacker);
    let baseline = AttackMatrix::run("baseline", &base, &victim, &mut attacker);

    let sp = SecurePlatform::full(b"t2-improved").expect("platform");
    let mut victim = sp.launch_guest("victim").expect("guest");
    let mut attacker = sp.launch_guest("attacker").expect("guest");
    warm(&mut victim);
    warm(&mut attacker);
    let improved = AttackMatrix::run("improved", &sp.platform, &victim, &mut attacker);

    T2Result { baseline, improved }
}

/// Render the table.
pub fn render(result: &T2Result) -> String {
    let mut out = String::new();
    out.push_str("R-T2  Attack matrix: baseline vs improved access control\n");
    out.push_str(&format!(
        "{:<22} {:<12} {:<12}\n",
        "attack", "baseline", "improved"
    ));
    for (b, i) in result.baseline.outcomes.iter().zip(&result.improved.outcomes) {
        assert_eq!(b.name, i.name);
        out.push_str(&format!(
            "{:<22} {:<12} {:<12}  ({} | {})\n",
            b.name,
            if b.succeeded { "SUCCESS" } else { "blocked" },
            if i.succeeded { "SUCCESS" } else { "blocked" },
            b.detail,
            i.detail,
        ));
    }
    out.push_str(&format!(
        "totals: baseline {}/{} succeeded, improved {}/{} succeeded\n",
        result.baseline.successes(),
        result.baseline.outcomes.len(),
        result.improved.successes(),
        result.improved.outcomes.len(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_claim_reproduced() {
        let r = run();
        assert_eq!(r.baseline.successes(), r.baseline.outcomes.len(), "{:#?}", r.baseline);
        assert_eq!(r.improved.successes(), 0, "{:#?}", r.improved);
        let table = render(&r);
        assert!(table.contains("dump-state"));
        assert!(table.contains("SUCCESS"));
        assert!(table.contains("blocked"));
    }
}
