//! R-M2: fleet-scale churn sweep — cluster-wide migration downtime and
//! exactly-once accounting under continuous host failure.
//!
//! Where R-M1 measures one hand-off in isolation, R-M2 puts the whole
//! fleet control plane in the loop: the phi-accrual failure detector
//! fed by fabric heartbeats, the bounded pool of concurrent migration
//! drivers with per-VM epoch arbitration, and the suspicion-driven
//! rebalancer — then crashes, revives, and joins hosts underneath it
//! for the whole run. The workload is the fleet chaos family
//! ([`vtpm_harness::run_fleet_chaos`]) at survey scale, not the
//! smoke-test scale the CI chaos stage replays.
//!
//! Three things are the result:
//!
//! 1. **Accounting.** After the final sweep (revive everything, drain
//!    the pool, resolve every journal) every vTPM must exist exactly
//!    once: zero lost, zero duplicated, zero orphaned instances, zero
//!    journals in doubt — and every injected double-drive must resolve
//!    to at most one committed winner. Any violation fails the gate.
//! 2. **Downtime.** The p99 of the quiesce→commit blackout across
//!    every committed drive of the sweep, in virtual time, gated by
//!    [`BUDGET_P99_NS`].
//! 3. **Replay.** Every seed is run twice and the two reports must be
//!    byte-identical (transcript hash included) — the property that
//!    makes every number in this table reproducible from its seed.
//!
//! One full-scale finding this table used to report without gating:
//! the harness's phased rounds opened long heartbeat-free gaps (a
//! 1000-VM traffic burst between controller ticks), and the
//! phi-accrual estimator correctly read that fleet-wide silence as
//! suspicious — at survey scale most suspicions were *false* and the
//! rebalancer rode out waves of spurious evacuation. Two fixes closed
//! the gap: `Fleet::new` floors the detector's bootstrap interval at
//! the heartbeat round's own serialization skew (hosts × per-message
//! fabric charge, so a cold fleet-wide round never looks like
//! silence), and the harness pumps interval-gated heartbeats
//! ([`vtpm_fleet::Fleet::pump_heartbeats`]) through the traffic stage
//! instead of falling silent between ticks. The `suspects(false)`
//! column now *gates* ([`BUDGET_FALSE_SUSPECTS`] per seed):
//! regressing either fix reopens the gap and fails the sweep.

use vtpm_fleet::FleetConfig;
use vtpm_harness::{run_fleet_chaos, FleetChaosConfig, FleetChaosReport};
use vtpm_sentinel::SentinelConfig;

/// Cluster-wide p99 quiesce→commit blackout budget (virtual ns). At
/// CI scale (8 hosts) the blackout is one sealed transfer, ~14ms. At
/// survey scale (100 hosts / 1000 VMs) it measures ~147ms: the driver
/// pool steps up to 32 concurrent runs one stage per tick, so a run's
/// quiesce→commit window spans several ticks, each carrying the other
/// runs' sealed-transfer crypto — blackout grows with drive
/// *concurrency*, not fleet size per se. Budget is ~2x the worst seed
/// measured at full scale.
pub const BUDGET_P99_NS: u64 = 300_000_000;

/// Per-seed false-suspicion budget. With the bootstrap floor and
/// mid-round heartbeat pumping in place the detector should suspect
/// only hosts that are actually down; a small allowance covers
/// revival races (a just-revived host's first beats trailing the
/// detector's re-registered expectation).
pub const BUDGET_FALSE_SUSPECTS: u64 = 2;

/// One seed of the sweep (the two replays compared equal).
#[derive(Debug, Clone, PartialEq)]
pub struct M2Row {
    /// Seed label.
    pub seed: String,
    /// Drives that committed.
    pub committed: u64,
    /// Aborted + abandoned + stale-rejected drives.
    pub failed: u64,
    /// Submissions that raced another in-flight drive of the same VM.
    pub conflicts: u64,
    /// Deliberate double-drives injected.
    pub conflict_pairs: u64,
    /// Injected conflicts with more than one committed winner (must be 0).
    pub multi_winner: u64,
    /// Host crashes / revivals / joins injected.
    pub crashes: u64,
    /// Suspicions raised by the detector.
    pub suspects: u64,
    /// Suspicions against live hosts.
    pub false_suspects: u64,
    /// Churn-storm pause latches applied.
    pub storm_pauses: u64,
    /// p99 quiesce→commit blackout (virtual ns).
    pub downtime_p99_ns: u64,
    /// Max of the same histogram.
    pub downtime_max_ns: u64,
    /// lost + duplicated + orphaned + unsettled (must be 0).
    pub accounting_violations: u64,
    /// Oracle/invariant divergences (must be empty).
    pub divergences: Vec<String>,
    /// Replayed byte-identically.
    pub replay_ok: bool,
}

/// The sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct M2Report {
    /// Hosts at boot / cap after joins.
    pub hosts: usize,
    /// VMs under management.
    pub vms: usize,
    /// Rounds per seed.
    pub rounds: usize,
    /// One row per seed.
    pub rows: Vec<M2Row>,
}

/// Worst per-seed p99 blackout across the sweep.
pub fn worst_p99_ns(r: &M2Report) -> u64 {
    r.rows.iter().map(|x| x.downtime_p99_ns).max().unwrap_or(0)
}

/// The CI gate: exactly-once accounting, single-winner conflicts, no
/// divergences, byte-identical replays, the blackout budget, and the
/// false-suspicion budget.
pub fn gate_failed(r: &M2Report) -> bool {
    r.rows.iter().any(|x| {
        x.accounting_violations > 0
            || x.multi_winner > 0
            || !x.divergences.is_empty()
            || !x.replay_ok
            || x.false_suspects > BUDGET_FALSE_SUSPECTS
    }) || worst_p99_ns(r) > BUDGET_P99_NS
}

/// The scenario config for one sweep seed at (`hosts`, `vms`) scale.
fn scale_config(hosts: usize, vms: usize, rounds: usize) -> FleetChaosConfig {
    let fleet = FleetConfig {
        // More churn needs more concurrent repair: scale the pool and
        // the planner's per-tick submissions with the fleet.
        max_in_flight: (hosts / 4).clamp(8, 32),
        max_plan_per_tick: (hosts / 8).clamp(4, 16),
        ..FleetConfig::default()
    };
    FleetChaosConfig {
        hosts,
        max_hosts: hosts + hosts / 10,
        vms,
        rounds,
        // Per-round oracle diffs are O(vms * rounds); at survey scale
        // the final sweep's full diff is the correctness check and the
        // per-round diff stays for the CI-sized smoke family.
        oracle_checks: vms <= 64,
        events_per_round: 2,
        frames_per_host: 4096,
        sentinel: SentinelConfig {
            replay_burst: 2 * fleet.max_in_flight,
            ..SentinelConfig::default()
        },
        fleet,
        ..FleetChaosConfig::default()
    }
}

fn row(seed: String, a: &FleetChaosReport, replay_ok: bool) -> M2Row {
    M2Row {
        seed,
        committed: a.committed,
        failed: a.aborted + a.abandoned + a.rejected_stale,
        conflicts: a.conflicts,
        conflict_pairs: a.conflict_pairs,
        multi_winner: a.multi_winner_conflicts,
        crashes: a.crashes,
        suspects: a.suspects_raised,
        false_suspects: a.false_suspects,
        storm_pauses: a.storm_pauses,
        downtime_p99_ns: a.downtime_p99_ns,
        downtime_max_ns: a.downtime_max_ns,
        accounting_violations: a.lost + a.duplicated + a.orphaned + a.unsettled,
        divergences: a.divergences.clone(),
        replay_ok,
    }
}

/// Run the sweep: `seeds` independent churn scenarios at (`hosts`,
/// `vms`) scale, `rounds` rounds each, every seed replayed twice.
pub fn run(hosts: usize, vms: usize, rounds: usize, seeds: usize) -> M2Report {
    let cfg = scale_config(hosts, vms, rounds);
    let rows = (0..seeds)
        .map(|s| {
            let label = format!("m2-{hosts}x{vms}-{s}");
            let a = run_fleet_chaos(label.as_bytes(), &cfg).expect("fleet chaos run");
            let b = run_fleet_chaos(label.as_bytes(), &cfg).expect("fleet chaos replay");
            let replay_ok = a == b;
            row(label, &a, replay_ok)
        })
        .collect();
    M2Report { hosts, vms, rounds, rows }
}

/// Render the table.
pub fn render(r: &M2Report) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "R-M2  Fleet churn sweep: {} hosts / {} VMs, {} rounds per seed (virtual time)\n\
         seed             committed  failed  conflicts(pairs)  multi-win  crashes  suspects(false)  \
         pauses  p99-down(ms)  max-down(ms)  acct-viol  replay\n",
        r.hosts, r.vms, r.rounds,
    ));
    for x in &r.rows {
        out.push_str(&format!(
            "{:<16} {:>9} {:>7} {:>10}({:<4}) {:>9} {:>8} {:>12}({:<4}) {:>6} {:>13.3} {:>13.3} \
             {:>10} {:>7}\n",
            x.seed,
            x.committed,
            x.failed,
            x.conflicts,
            x.conflict_pairs,
            x.multi_winner,
            x.crashes,
            x.suspects,
            x.false_suspects,
            x.storm_pauses,
            x.downtime_p99_ns as f64 / 1e6,
            x.downtime_max_ns as f64 / 1e6,
            x.accounting_violations,
            if x.replay_ok { "ok" } else { "MISMATCH" },
        ));
        for d in &x.divergences {
            out.push_str(&format!("    divergence: {d}\n"));
        }
    }
    out.push_str(&format!(
        "gate: every vTPM exactly once, every conflict <= 1 winner, byte-identical replays, \
         <= {} false suspicions per seed, p99 blackout <= {:.0}ms; worst measured {:.3}ms\n",
        BUDGET_FALSE_SUSPECTS,
        BUDGET_P99_NS as f64 / 1e6,
        worst_p99_ns(r) as f64 / 1e6,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_accounts_exactly_once_and_replays() {
        let r = run(6, 12, 6, 2);
        assert_eq!(r.rows.len(), 2);
        for x in &r.rows {
            assert!(x.replay_ok, "{}: replay diverged", x.seed);
            assert_eq!(x.accounting_violations, 0, "{}: {:?}", x.seed, x.divergences);
            assert_eq!(x.multi_winner, 0);
            assert!(x.divergences.is_empty(), "{}: {:?}", x.seed, x.divergences);
            // Churn must actually have happened for the row to mean
            // anything.
            assert!(x.committed > 0);
        }
        assert!(!gate_failed(&r));
        let table = render(&r);
        assert!(table.contains("R-M2") && table.contains("gate:"));
        // The sweep itself replays.
        assert_eq!(run(6, 12, 6, 2), r);
    }
}
