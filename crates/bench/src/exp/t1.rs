//! R-T1 (Table 1): per-command latency, baseline vs improved, with the
//! access-control overhead percentage.
//!
//! One guest per configuration, closed loop, `reps` repetitions of each
//! operation. Both wall-clock (our software stack) and virtual time (the
//! modelled hardware-TPM deployment) are reported; the paper-shaped
//! claim is the *overhead percentage*, which the virtual column carries.

use vtpm::Platform;
use vtpm_ac::SecurePlatform;
use workload::{GuestSession, Op, Samples, Summary};

/// One table row.
#[derive(Debug, Clone)]
pub struct T1Row {
    /// Operation measured.
    pub op: Op,
    /// Baseline wall-clock summary.
    pub base_wall: Summary,
    /// Improved wall-clock summary.
    pub imp_wall: Summary,
    /// Baseline virtual-time summary.
    pub base_virt: Summary,
    /// Improved virtual-time summary.
    pub imp_virt: Summary,
}

impl T1Row {
    /// Wall-clock overhead of the improved path, percent.
    pub fn overhead_wall_pct(&self) -> f64 {
        self.imp_wall.overhead_pct(&self.base_wall)
    }

    /// Virtual-time overhead, percent (the hardware-deployment number).
    pub fn overhead_virt_pct(&self) -> f64 {
        self.imp_virt.overhead_pct(&self.base_virt)
    }
}

fn measure<T: tpm::Transport>(
    session: &mut GuestSession<T>,
    clock: &xen_sim::VirtualClock,
    ops: &[Op],
    reps: usize,
) -> Vec<(Op, Samples, Samples)> {
    ops.iter()
        .map(|&op| {
            let mut wall = Samples::new();
            let mut virt = Samples::new();
            // One warmup rep outside the samples.
            session.run(op).expect("warmup");
            for _ in 0..reps {
                let v0 = clock.now_ns();
                let ns = session.run_timed(op).expect("op runs");
                wall.push(ns);
                virt.push(clock.now_ns() - v0);
            }
            (op, wall, virt)
        })
        .collect()
}

/// Run the experiment: `reps` samples per op per configuration.
pub fn run(reps: usize) -> Vec<T1Row> {
    let ops = [Op::GetRandom, Op::PcrRead, Op::Extend, Op::Seal, Op::Unseal, Op::Quote];

    let base = Platform::baseline(b"t1-baseline").expect("platform");
    let bg = base.launch_guest("t1").expect("guest");
    let mut bs = GuestSession::prepare(bg.front, b"t1-base").expect("prepare");
    let base_samples = measure(&mut bs, &base.hv.clock, &ops, reps);

    let sp = SecurePlatform::full(b"t1-improved").expect("platform");
    let ig = sp.launch_guest("t1").expect("guest");
    let mut is = GuestSession::prepare(ig.front, b"t1-imp").expect("prepare");
    let imp_samples = measure(&mut is, &sp.platform.hv.clock, &ops, reps);

    base_samples
        .into_iter()
        .zip(imp_samples)
        .map(|((op, bw, bv), (op2, iw, iv))| {
            assert_eq!(op, op2);
            T1Row {
                op,
                base_wall: bw.summary().expect("samples"),
                imp_wall: iw.summary().expect("samples"),
                base_virt: bv.summary().expect("samples"),
                imp_virt: iv.summary().expect("samples"),
            }
        })
        .collect()
}

/// Render the table.
pub fn render(rows: &[T1Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "R-T1  Per-command latency: baseline vs improved access control\n\
         op          base(virt ms)  impr(virt ms)  ovh(virt)   base(wall us)  impr(wall us)  ovh(wall)\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<11} {:>13.3} {:>14.3} {:>9.2}% {:>14.1} {:>14.1} {:>9.2}%\n",
            r.op.name(),
            r.base_virt.mean_ns / 1e6,
            r.imp_virt.mean_ns / 1e6,
            r.overhead_virt_pct(),
            r.base_wall.mean_ns / 1e3,
            r.imp_wall.mean_ns / 1e3,
            r.overhead_wall_pct(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds_small() {
        let rows = run(3);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            // Improved adds overhead but stays within the same order of
            // magnitude (paper shape: single-digit-to-low-tens percent
            // in virtual time, where hardware-TPM cost dominates).
            assert!(
                r.imp_virt.mean_ns >= r.base_virt.mean_ns,
                "{}: improved must not be faster in virtual time",
                r.op.name()
            );
            assert!(
                r.overhead_virt_pct() < 100.0,
                "{}: overhead {}% out of band",
                r.op.name(),
                r.overhead_virt_pct()
            );
        }
        // RSA ops dwarf hash ops in virtual time.
        let get_random = rows.iter().find(|r| r.op == Op::GetRandom).unwrap();
        let quote = rows.iter().find(|r| r.op == Op::Quote).unwrap();
        assert!(quote.base_virt.mean_ns > 10.0 * get_random.base_virt.mean_ns);
        let table = render(&rows);
        assert!(table.contains("GetRandom"));
        assert!(table.contains("Quote"));
    }
}
