//! R-A1: the attestation plane at farm scale.
//!
//! Not a figure from the paper — the paper's deep-quote protocol binds
//! a vTPM quote to the hardware TPM, but issues and checks one quote at
//! a time. R-A1 evaluates the plane `crates/attest` builds on top of it
//! on the three axes a fleet-facing attestation service is judged by:
//!
//! * **Issuance throughput** — the same quote-request stream (round-
//!   robin over the instances, PCR state unchanged) against a
//!   per-request issuer (cache disabled: every request pays the two
//!   RSA private operations of a deep quote) and against the
//!   batched+cached issuer (nonce-window coalescing plus the
//!   generation-keyed cache). The gate requires the cached plane to
//!   clear [`MIN_CACHE_SPEEDUP`]x the per-request qps.
//! * **Verification at farm scale** — a pool of verifiers (1k+ at full
//!   size) batch-submitting evidence; every honest submission must be
//!   accepted, and the per-submission latency distribution is reported
//!   from the shared attestation-telemetry histogram.
//! * **Defense** — seeded attest-chaos scenarios
//!   ([`vtpm_harness::run_attest_chaos`]): every replay and stale
//!   injection must be refused *and* raised by the sentinel, the
//!   scripted quote storm must end with the sentinel-driven admission
//!   loop throttling the storming verifier, and attack-free seeds must
//!   produce zero critical alerts. The scenario family folds every
//!   violated expectation into its divergence list, so the gate here is
//!   "all defense rows divergence-free".

use std::sync::Arc;
use std::time::Instant;

use vtpm::Platform;
use vtpm_attest::{IssuerConfig, QuoteIssuer, Submission, VerifierConfig, VerifierPool};
use vtpm_harness::{run_attest_chaos, AttestChaosConfig};

/// The cached plane must clear this multiple of the per-request qps at
/// unchanged PCR state.
pub const MIN_CACHE_SPEEDUP: f64 = 3.0;

/// One issuance mode's throughput measurement.
#[derive(Debug, Clone)]
pub struct IssueRow {
    /// `per-request` or `batched+cached`.
    pub mode: &'static str,
    /// Quote requests served.
    pub quotes: usize,
    /// Requests that paid a full signing pass (two RSA private ops).
    pub signing_passes: u64,
    /// Requests absorbed by the cache or coalesced behind a flight.
    pub absorbed: u64,
    /// Wall time for the whole stream.
    pub wall_ns: u64,
    /// Quotes per second.
    pub qps: f64,
}

/// The farm-scale verification measurement.
#[derive(Debug, Clone)]
pub struct VerifyStats {
    /// Verifier identities submitting.
    pub verifiers: usize,
    /// Submissions processed.
    pub submissions: u64,
    /// Submissions accepted (must equal `submissions`).
    pub accepted: u64,
    /// Median per-submission verification latency, wall ns.
    pub p50_ns: u64,
    /// 99th-percentile per-submission verification latency, wall ns.
    pub p99_ns: u64,
    /// Verifications per second over the whole farm pass.
    pub vps: f64,
}

/// One seeded defense scenario (attack or attack-free sweep).
#[derive(Debug, Clone)]
pub struct DefenseRow {
    /// Seed label.
    pub seed: String,
    /// Whether this row injected attacks (false = FP sweep).
    pub attack: bool,
    /// Replay injections presented / refused.
    pub injected_replays: u64,
    /// Replay injections refused as `Replayed`.
    pub replays_refused: u64,
    /// Stale injections presented / refused.
    pub injected_stale: u64,
    /// Stale injections refused as `Stale`.
    pub stale_refused: u64,
    /// Whether the storm verifier ended the run throttled.
    pub storm_throttled: bool,
    /// Critical sentinel alerts (attack rows expect ≥ 2; clean rows
    /// must see 0 — a violation shows up in `divergences`).
    pub critical: u64,
    /// Violated expectations, verbatim from the scenario family.
    pub divergences: Vec<String>,
}

/// The full R-A1 result.
#[derive(Debug, Clone)]
pub struct A1Report {
    /// Per-request then batched+cached issuance.
    pub issue: Vec<IssueRow>,
    /// `batched+cached qps / per-request qps`.
    pub speedup: f64,
    /// Farm-scale verification.
    pub verify: VerifyStats,
    /// Defense scenarios, attack rows first.
    pub defense: Vec<DefenseRow>,
}

/// The CI gate: cached issuance clears the speedup floor, every honest
/// submission is accepted, and no defense scenario diverged.
pub fn gate_failed(r: &A1Report) -> bool {
    r.speedup < MIN_CACHE_SPEEDUP
        || r.verify.accepted != r.verify.submissions
        || r.defense.iter().any(|d| !d.divergences.is_empty())
}

/// Drive one issuance mode over `quotes` requests at fixed PCR state.
fn issue_pass(cache: bool, instances: usize, quotes: usize) -> IssueRow {
    let mode = if cache { "batched+cached" } else { "per-request" };
    let platform = Platform::improved(mode.as_bytes()).expect("platform boots");
    let mut ids = Vec::with_capacity(instances);
    for i in 0..instances {
        ids.push(platform.launch_guest(&format!("a1-{mode}-{i}")).expect("guest").instance);
    }
    let issuer = QuoteIssuer::new(IssuerConfig { cache, ..Default::default() });
    for &id in &ids {
        issuer.provision(&platform, id).expect("enroll instance");
    }
    let now = platform.hv.clock.now_ns();
    let t0 = Instant::now();
    for q in 0..quotes {
        issuer.issue(&platform, ids[q % instances], now).expect("issue");
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let snap = issuer.telemetry().snapshot();
    IssueRow {
        mode,
        quotes,
        signing_passes: snap.signing_passes,
        absorbed: snap.cache_hits + snap.coalesced,
        wall_ns,
        qps: quotes as f64 / (wall_ns.max(1) as f64 / 1e9),
    }
}

/// Farm-scale verification: `verifiers` identities, batches of 64.
fn verify_pass(instances: usize, verifiers: usize) -> VerifyStats {
    let platform = Platform::improved(b"a1/verify-farm").expect("platform boots");
    let mut ids = Vec::with_capacity(instances);
    for i in 0..instances {
        ids.push(platform.launch_guest(&format!("a1-farm-{i}")).expect("guest").instance);
    }
    let issuer = QuoteIssuer::new(IssuerConfig::default());
    for &id in &ids {
        issuer.provision(&platform, id).expect("enroll instance");
    }
    let now = platform.hv.clock.now_ns();
    let evidence: Vec<_> =
        ids.iter().map(|&id| issuer.issue(&platform, id, now).expect("issue")).collect();

    let pool = VerifierPool::with_telemetry(
        VerifierConfig::default(),
        Arc::clone(issuer.telemetry()),
    );
    let t0 = Instant::now();
    let mut accepted = 0u64;
    let all: Vec<u32> = (0..verifiers as u32).collect();
    for chunk in all.chunks(64) {
        let batch: Vec<Submission> = chunk
            .iter()
            .map(|&v| Submission::from_evidence(v, &evidence[v as usize % instances]))
            .collect();
        accepted +=
            pool.verify_batch(&batch, now).iter().filter(|verdict| verdict.accepted()).count()
                as u64;
    }
    let wall_ns = t0.elapsed().as_nanos().max(1) as u64;
    let snap = issuer.telemetry().snapshot();
    VerifyStats {
        verifiers,
        submissions: snap.verified,
        accepted,
        p50_ns: snap.verify_latency.p50,
        p99_ns: snap.verify_latency.p99,
        vps: verifiers as f64 / (wall_ns as f64 / 1e9),
    }
}

/// Run R-A1: both issuance modes, the verification farm, then
/// `attack_seeds` injected scenarios and `clean_seeds` FP-sweep runs.
pub fn run(
    instances: usize,
    verifiers: usize,
    quotes: usize,
    uncached_quotes: usize,
    attack_seeds: usize,
    clean_seeds: usize,
) -> A1Report {
    let per_request = issue_pass(false, instances, uncached_quotes);
    let cached = issue_pass(true, instances, quotes);
    let speedup = cached.qps / per_request.qps.max(f64::MIN_POSITIVE);
    let verify = verify_pass(instances, verifiers);

    let mut defense = Vec::new();
    let cfg = AttestChaosConfig::default();
    for (n, attack) in
        (0..attack_seeds).map(|s| (s, true)).chain((0..clean_seeds).map(|s| (s, false)))
    {
        let label = if attack { format!("a1-att-{n}") } else { format!("a1-clean-{n}") };
        let scenario = if attack { cfg.clone() } else { cfg.attack_free() };
        let rep = run_attest_chaos(label.as_bytes(), &scenario).expect("attest chaos");
        defense.push(DefenseRow {
            seed: label,
            attack,
            injected_replays: rep.injected_replays,
            replays_refused: rep.replays_refused,
            injected_stale: rep.injected_stale,
            stale_refused: rep.stale_refused,
            storm_throttled: rep.storm_throttled,
            critical: rep.sentinel_critical,
            divergences: rep.divergences,
        });
    }

    A1Report { issue: vec![per_request, cached], speedup, verify, defense }
}

/// Render the tables.
pub fn render(r: &A1Report) -> String {
    let mut out = String::new();
    out.push_str("R-A1  Attestation plane at farm scale\n");
    out.push_str(&format!(
        "  {:<16} {:>8} {:>9} {:>9} {:>11} {:>12}\n",
        "issuance", "quotes", "signing", "absorbed", "wall", "qps"
    ));
    for row in &r.issue {
        out.push_str(&format!(
            "  {:<16} {:>8} {:>9} {:>9} {:>8.1} ms {:>12.0}\n",
            row.mode,
            row.quotes,
            row.signing_passes,
            row.absorbed,
            row.wall_ns as f64 / 1e6,
            row.qps,
        ));
    }
    out.push_str(&format!(
        "  cached/per-request speedup: {:.1}x (gate >= {:.0}x)\n\n",
        r.speedup, MIN_CACHE_SPEEDUP
    ));
    let v = &r.verify;
    out.push_str(&format!(
        "  verify farm: {} verifiers, {}/{} accepted, p50 {:.1} us, p99 {:.1} us, {:.0} verifications/s\n\n",
        v.verifiers,
        v.accepted,
        v.submissions,
        v.p50_ns as f64 / 1e3,
        v.p99_ns as f64 / 1e3,
        v.vps,
    ));
    out.push_str(&format!(
        "  {:<14} {:>7} {:>9} {:>9} {:>9} {:>9} {:>11}\n",
        "defense seed", "attack", "replays", "stale", "throttle", "critical", "divergences"
    ));
    for d in &r.defense {
        out.push_str(&format!(
            "  {:<14} {:>7} {:>5}/{:<3} {:>5}/{:<3} {:>9} {:>9} {:>11}\n",
            d.seed,
            if d.attack { "yes" } else { "no" },
            d.replays_refused,
            d.injected_replays,
            d.stale_refused,
            d.injected_stale,
            if !d.attack {
                "-"
            } else if d.storm_throttled {
                "yes"
            } else {
                "NO"
            },
            d.critical,
            d.divergences.len(),
        ));
        for line in &d.divergences {
            out.push_str(&format!("      {line}\n"));
        }
    }
    out.push_str(&format!(
        "gate: {}\n",
        if gate_failed(r) { "FAIL" } else { "PASS" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_holds_at_test_size() {
        let r = run(2, 48, 96, 12, 1, 1);
        assert!(
            r.speedup >= MIN_CACHE_SPEEDUP,
            "cached issuance only {:.1}x over per-request",
            r.speedup
        );
        let cached = &r.issue[1];
        assert!(cached.signing_passes <= 2 + 2, "unchanged PCR state keeps paying RSA");
        assert_eq!(r.verify.accepted, r.verify.submissions, "honest farm submission refused");
        assert_eq!(r.defense.len(), 2);
        for d in &r.defense {
            assert!(d.divergences.is_empty(), "{}: {:?}", d.seed, d.divergences);
        }
        let attack = &r.defense[0];
        assert!(attack.attack && attack.storm_throttled);
        assert_eq!(attack.replays_refused, attack.injected_replays);
        assert_eq!(attack.stale_refused, attack.injected_stale);
        let clean = &r.defense[1];
        assert!(!clean.attack);
        assert_eq!(clean.critical, 0, "false positive on the attack-free sweep");
        assert!(!gate_failed(&r));
        assert!(render(&r).contains("gate: PASS"));
    }
}
