//! R-R1: crash/recovery robustness of the encrypted mirror pipeline.
//!
//! Not a figure from the paper — the paper asserts (§4) that keeping the
//! vTPM state resident in Dom0-controlled memory lets the manager be
//! restarted without guest-visible loss, but reports no experiment for
//! it. R-R1 supplies one: seeded chaos runs (frame corruption, ring
//! faults, grant revocation, forced manager crashes between mirror page
//! writes) are replayed through the full stack and diffed against a
//! reference TPM oracle. The claim under test: every committed
//! generation survives — a recovered manager always lands on exactly
//! the pre- or post-command state, never on a torn or stale one — and
//! the whole scenario is deterministic under replay.

use vtpm::MirrorMode;
use vtpm_harness::{run_chaos, ChaosConfig};

/// One chaos scenario (seed × mirror mode), replayed twice.
#[derive(Debug, Clone)]
pub struct R1Row {
    /// Human-readable seed label.
    pub seed: String,
    /// Mirror mode the manager ran in.
    pub mode: &'static str,
    /// Faults the plan actually scheduled.
    pub faults: usize,
    /// Manager crashes injected and recovered from.
    pub crash_recoveries: u64,
    /// Recoveries that landed on the post-command state (update committed).
    pub recovered_post: u64,
    /// Recoveries that landed on the pre-command state (update torn off).
    pub recovered_pre: u64,
    /// Frontend reconnects after grant revocation.
    pub ring_reconnects: u64,
    /// Oracle divergences (the headline number: must be 0).
    pub divergences: usize,
    /// CTR nonce pairs reused across the run (must be 0).
    pub nonce_reuses: u64,
    /// Requests the manager completed end to end, summed over epochs
    /// (from the telemetry registry).
    pub completed: u64,
    /// Telemetry span-ring overflow drops (must be 0 at harness sizes).
    pub dropped_events: u64,
    /// Post-commit hygiene scrubs that failed (expected only under
    /// injected crash faults; recovery re-scrubs).
    pub scrub_failures: u64,
    /// Mirror generations burned by the retry escrow — the mechanism
    /// that keeps `nonce_reuses` at 0 after failed commits.
    pub retried_generation_burns: u64,
    /// Whether the replay produced a byte-identical report.
    pub deterministic: bool,
}

/// Run `seeds` scenarios per mirror mode, each `events` long with up to
/// `faults` injected faults, replaying every one to check determinism.
pub fn run(seeds: usize, events: usize, faults: usize) -> Vec<R1Row> {
    let mut rows = Vec::new();
    for (mode, mode_name) in
        [(MirrorMode::Encrypted, "encrypted"), (MirrorMode::Cleartext, "cleartext")]
    {
        for s in 0..seeds {
            let label = format!("r1-{s}");
            let cfg = ChaosConfig { events, faults, mirror_mode: mode, ..ChaosConfig::default() };
            let a = run_chaos(label.as_bytes(), &cfg).expect("chaos run");
            let b = run_chaos(label.as_bytes(), &cfg).expect("chaos replay");
            rows.push(R1Row {
                seed: label,
                mode: mode_name,
                faults: a.faults.len(),
                crash_recoveries: a.crash_recoveries,
                recovered_post: a.recovered_post,
                recovered_pre: a.recovered_pre,
                ring_reconnects: a.ring_reconnects,
                divergences: a.divergences.len(),
                nonce_reuses: a.nonce_reuses,
                completed: a.completed,
                dropped_events: a.dropped_events,
                scrub_failures: a.scrub_failures,
                retried_generation_burns: a.retried_generation_burns,
                deterministic: a == b,
            });
        }
    }
    rows
}

/// Render the table.
pub fn render(rows: &[R1Row]) -> String {
    let mut out = String::new();
    out.push_str("R-R1  Chaos + crash/recovery of the mirror pipeline (replayed twice per seed)\n");
    out.push_str(&format!(
        "{:<8} {:<10} {:>6} {:>8} {:>5} {:>5} {:>10} {:>9} {:>5} {:>9} {:>8} {:>9} {:>7} {:>6}\n",
        "seed", "mode", "faults", "crashes", "post", "pre", "reconnect", "completed", "drops",
        "scrubfail", "retburns", "diverge", "nonce", "det"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:<10} {:>6} {:>8} {:>5} {:>5} {:>10} {:>9} {:>5} {:>9} {:>8} {:>9} {:>7} {:>6}\n",
            r.seed,
            r.mode,
            r.faults,
            r.crash_recoveries,
            r.recovered_post,
            r.recovered_pre,
            r.ring_reconnects,
            r.completed,
            r.dropped_events,
            r.scrub_failures,
            r.retried_generation_burns,
            r.divergences,
            r.nonce_reuses,
            if r.deterministic { "yes" } else { "NO" },
        ));
    }
    let crashes: u64 = rows.iter().map(|r| r.crash_recoveries).sum();
    let diverged: usize = rows.iter().map(|r| r.divergences).sum();
    let nondet = rows.iter().filter(|r| !r.deterministic).count();
    out.push_str(&format!(
        "totals: {} scenarios, {} crash recoveries, {} commands completed, {} span drops, \
         {} scrub failures, {} divergences, {} nondeterministic replays\n",
        rows.len(),
        crashes,
        rows.iter().map(|r| r.completed).sum::<u64>(),
        rows.iter().map(|r| r.dropped_events).sum::<u64>(),
        rows.iter().map(|r| r.scrub_failures).sum::<u64>(),
        diverged,
        nondet,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_generations_always_survive() {
        let rows = run(4, 48, 4);
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert_eq!(r.divergences, 0, "seed {} ({}) diverged", r.seed, r.mode);
            assert_eq!(r.nonce_reuses, 0, "seed {} ({}) reused a nonce", r.seed, r.mode);
            assert!(r.deterministic, "seed {} ({}) replayed differently", r.seed, r.mode);
            assert_eq!(
                r.recovered_post + r.recovered_pre,
                r.crash_recoveries,
                "seed {} ({}): a recovery matched neither legal state",
                r.seed,
                r.mode
            );
        }
        // The sweep must actually exercise the crash path, and the
        // telemetry registry must have seen the traffic without losing
        // span records.
        assert!(
            rows.iter().map(|r| r.crash_recoveries).sum::<u64>() > 0,
            "no scenario drew a crash fault; widen the sweep"
        );
        for r in &rows {
            assert!(r.completed > 0, "seed {} ({}) completed no requests", r.seed, r.mode);
            assert_eq!(r.dropped_events, 0, "seed {} ({}) dropped spans", r.seed, r.mode);
        }
        let table = render(&rows);
        assert!(table.contains("0 divergences"));
        assert!(table.contains("0 nondeterministic"));
    }
}
