//! R-P1: the Dom0 manager's hot path at scale — wall-clock per-command
//! overhead versus resident instance count, per-command vs group-commit
//! flush policy.
//!
//! The routing table is sharded (64-way striped instance/region maps),
//! so the read-path cost of `handle` should stay flat from 100 to
//! 10 000 resident instances: the gate ([`overhead_ratio`] vs
//! [`BUDGET_RATIO`]) fails the build if the largest count's ns/cmd
//! exceeds 1.5x the smallest's. The read phase round-robins over a
//! fixed-size active set (64 instances, spread across the id range so
//! every shard is exercised) while the *resident* count scales — that
//! isolates the routing/lookup cost from the unavoidable cache
//! footprint of touching 10k distinct multi-KiB TPM states, which is a
//! property of DRAM, not of the manager. The mutate phase drives dirty-page
//! traffic through both flush policies and reports the group-commit
//! amortization counters (staged updates, batched commits, flush
//! passes). The meta-write *count* is identical across policies by
//! design — one commit per staged generation — so the honest win is
//! fewer flush passes and lock acquisitions, not fewer page writes.
//!
//! Worlds are fanned out from one template instance: a single
//! `create_instance` pays the RSA keygen, then `restore_instance`
//! clones its serialized state under fresh ids, which is what makes a
//! 10k-instance point affordable.

use std::sync::Arc;

use vtpm::{Envelope, FlushPolicy, ManagerConfig, MirrorMode, VtpmInstance, VtpmManager};
use xen_sim::{DomainId, Hypervisor};

/// Hard ceiling on `ns/cmd(largest count) / ns/cmd(smallest count)`.
pub const BUDGET_RATIO: f64 = 1.5;

/// One measured point of the scaling curve.
#[derive(Debug, Clone)]
pub struct P1Point {
    /// Resident instances in the world.
    pub instances: usize,
    /// true = group-commit policy, false = per-command.
    pub batched: bool,
    /// Wall ns per PcrRead command over the fixed active set (routing
    /// hot path).
    pub read_ns_per_cmd: f64,
    /// Wall ns per Extend round-robin command (mirror write path),
    /// including the flush passes the policy triggers.
    pub mutate_ns_per_cmd: f64,
    /// Mirror updates staged (deferred meta commit) in the phase.
    pub staged_updates: u64,
    /// Staged generations committed by flush passes.
    pub batched_commits: u64,
    /// Flush passes over the pending set.
    pub flushes: u64,
    /// Data pages written during the mutate phase.
    pub data_pages_written: u64,
}

fn pcr_read_cmd() -> Vec<u8> {
    let mut cmd = Vec::with_capacity(14);
    cmd.extend_from_slice(&0x00C1u16.to_be_bytes());
    cmd.extend_from_slice(&14u32.to_be_bytes());
    cmd.extend_from_slice(&tpm::ordinal::PCR_READ.to_be_bytes());
    cmd.extend_from_slice(&0u32.to_be_bytes());
    cmd
}

fn extend_cmd(idx: u32) -> Vec<u8> {
    let mut cmd = Vec::with_capacity(34);
    cmd.extend_from_slice(&0x00C1u16.to_be_bytes());
    cmd.extend_from_slice(&34u32.to_be_bytes());
    cmd.extend_from_slice(&tpm::ordinal::EXTEND.to_be_bytes());
    cmd.extend_from_slice(&idx.to_be_bytes());
    cmd.extend_from_slice(&[0x5A; 20]);
    cmd
}

fn envelope(instance: u32, seq: u64, command: Vec<u8>) -> Vec<u8> {
    Envelope { domain: 1, instance, seq, locality: 0, tag: None, command }.encode()
}

/// Build a `count`-instance world by cloning one template instance's
/// state under fresh ids (one keygen total).
fn build_world(count: usize) -> (Arc<Hypervisor>, VtpmManager, Vec<u32>) {
    // ~4 frames per single-page encrypted region (meta + A/B slots +
    // slack) plus headroom for growth during the mutate phase.
    let frames = count * 8 + 2048;
    let hv = Arc::new(Hypervisor::boot(frames, 16).expect("boot"));
    let mgr = VtpmManager::new(
        Arc::clone(&hv),
        b"p1-scale",
        ManagerConfig {
            mirror_mode: MirrorMode::Encrypted,
            charge_virtual_time: false,
            telemetry_enabled: false,
            ..Default::default()
        },
    )
    .expect("manager");
    let first = mgr.create_instance().expect("template");
    // Start the template once; every clone inherits the started state.
    let startup = vec![0x00, 0xC1, 0, 0, 0, 12, 0, 0, 0, 0x99, 0, 1];
    mgr.handle(DomainId(1), &envelope(first, 1, startup));
    let state = mgr.export_instance_state(first).expect("template state");
    let cfg = mgr.config().vtpm_config.clone();
    let mut ids = Vec::with_capacity(count);
    ids.push(first);
    for i in 1..count {
        let id = first + i as u32;
        let inst = VtpmInstance::from_state(id, &state, &id.to_be_bytes(), cfg.clone())
            .expect("clone template");
        mgr.restore_instance(id, inst).expect("fan out");
        ids.push(id);
    }
    (hv, mgr, ids)
}

/// Run the sweep: for each instance count, measure both policies on the
/// same world (`read_cmds` PcrReads, then `mutate_cmds` Extends).
pub fn run(counts: &[usize], read_cmds: usize, mutate_cmds: usize) -> Vec<P1Point> {
    let mut out = Vec::new();
    for &count in counts {
        let (_hv, mgr, ids) = build_world(count);
        // Fixed-size active set, evenly spaced so all 64 shards see
        // traffic regardless of the resident count.
        let active: Vec<u32> =
            (0..64.min(ids.len())).map(|i| ids[i * ids.len() / 64.min(ids.len())]).collect();
        let mut seq = 2u64;
        for batched in [false, true] {
            let policy = if batched {
                // Commit metadata in coalesced passes of up to 64
                // staged instances (the explicit flush drains the rest).
                FlushPolicy::batched(0, 64, 0)
            } else {
                FlushPolicy::per_command()
            };
            mgr.set_flush_policy(policy);

            // Best of three timed passes (after a warmup) — the gate
            // compares ratios, so per-run scheduler noise matters more
            // than absolute accuracy.
            let read = pcr_read_cmd();
            let mut read_ns_per_cmd = f64::INFINITY;
            for pass in 0..4 {
                let t0 = std::time::Instant::now();
                for j in 0..read_cmds {
                    seq += 1;
                    mgr.handle(
                        DomainId(1),
                        &envelope(active[j % active.len()], seq, read.clone()),
                    );
                }
                let ns = t0.elapsed().as_nanos() as f64 / read_cmds.max(1) as f64;
                if pass > 0 {
                    read_ns_per_cmd = read_ns_per_cmd.min(ns);
                }
            }

            let io_before = mgr.mirror_io_stats();
            let ext = extend_cmd(3);
            let t1 = std::time::Instant::now();
            for j in 0..mutate_cmds {
                seq += 1;
                mgr.handle(DomainId(1), &envelope(ids[j % ids.len()], seq, ext.clone()));
            }
            mgr.flush_mirror().expect("drain pending batch");
            let mutate_ns_per_cmd = t1.elapsed().as_nanos() as f64 / mutate_cmds.max(1) as f64;
            let io = mgr.mirror_io_stats();

            out.push(P1Point {
                instances: count,
                batched,
                read_ns_per_cmd,
                mutate_ns_per_cmd,
                staged_updates: io.staged_updates - io_before.staged_updates,
                batched_commits: io.batched_commits - io_before.batched_commits,
                flushes: io.flushes - io_before.flushes,
                data_pages_written: io.data_pages_written - io_before.data_pages_written,
            });
        }
    }
    out
}

/// The gate: `read ns/cmd` ratio of largest-count to smallest-count.
/// The read path is policy-independent, so each count's value is the
/// best (minimum) across its policy rows — twice the samples against
/// scheduler noise. 1.0 = perfectly flat.
pub fn overhead_ratio(points: &[P1Point]) -> f64 {
    let best = |instances: usize| {
        points
            .iter()
            .filter(|p| p.instances == instances)
            .map(|p| p.read_ns_per_cmd)
            .fold(f64::INFINITY, f64::min)
    };
    let (Some(first), Some(last)) = (points.first(), points.last()) else { return 0.0 };
    let base = best(first.instances);
    if base > 0.0 && base.is_finite() { best(last.instances) / base } else { 0.0 }
}

/// Render the table.
pub fn render(points: &[P1Point]) -> String {
    let mut out = String::new();
    out.push_str("R-P1  Manager hot path vs resident instances (wall ns/cmd)\n");
    out.push_str(
        "instances  policy       read-ns/cmd  mut-ns/cmd   staged  commits  flushes  pages\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:<10} {:<12} {:>11.0} {:>11.0} {:>8} {:>8} {:>8} {:>6}\n",
            p.instances,
            if p.batched { "batched" } else { "per-command" },
            p.read_ns_per_cmd,
            p.mutate_ns_per_cmd,
            p.staged_updates,
            p.batched_commits,
            p.flushes,
            p.data_pages_written,
        ));
    }
    out.push_str(&format!(
        "scaling ratio (best read-ns, largest/smallest count): {:.2}x (budget {:.1}x)\n",
        overhead_ratio(points),
        BUDGET_RATIO
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds_small() {
        let points = run(&[4, 16], 60, 32);
        assert_eq!(points.len(), 4, "two counts x two policies");
        for p in &points {
            assert!(p.read_ns_per_cmd > 0.0);
            assert!(p.mutate_ns_per_cmd > 0.0);
            if p.batched {
                // Every mutate staged; flush passes publish the staged
                // generations (restages commit inline and don't count).
                assert!(p.staged_updates > 0);
                assert!(p.batched_commits >= 1);
                assert!(p.batched_commits <= p.staged_updates);
                assert!(p.flushes >= 1);
            } else {
                assert_eq!(p.staged_updates, 0, "per-command commits inline");
                assert_eq!(p.flushes, 0);
            }
        }
        let r = render(&points);
        assert!(r.contains("R-P1"));
        assert!(overhead_ratio(&points) > 0.0);
    }
}
