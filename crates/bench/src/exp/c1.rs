//! R-C1: the crypto floor — wall-clock cost of the primitives everything
//! else pays, with regression gates on the optimized paths.
//!
//! Three numbers carry the story:
//!
//! * **RSA private-op speedup**: the optimized path (CRT + Montgomery
//!   with a dedicated squaring kernel + fixed 4-bit-window
//!   exponentiation) against the retained schoolbook reference
//!   (`raw_schoolbook`: non-CRT square-and-multiply over mul-then-divide
//!   arithmetic). The two are proven byte-identical by the differential
//!   test battery (`crates/tpm-crypto/tests/`), which is what makes
//!   gating on the fast path safe. The gate requires ≥
//!   [`MIN_RSA_SPEEDUP`]x.
//! * **AES-CTR throughput**: the 4-block-pipelined T-table keystream
//!   against an absolute MB/s floor ([`MIN_AES_CTR_MBPS`]) and against
//!   the single-block scalar reference rounds.
//! * **Absolute RSA floor**: the optimized private op must stay under
//!   [`MAX_RSA_PRIV_US`] µs even on a loaded CI machine.
//!
//! All timed sections take the **median of several passes** — the gate
//! ratios compare medians measured in the same process, which is robust
//! against the multi-tenant noise a CI box sees; the generous absolute
//! floors catch only order-of-magnitude regressions (e.g. losing CRT or
//! the key-schedule cache), not scheduler jitter.

use tpm_crypto::{AesCtr, BigUint, Drbg, RsaPrivateKey};

/// Required optimized-vs-schoolbook RSA private-op speedup. The
/// measured value sits far above this (CRT alone is ~4x; Montgomery +
/// window over mul-then-divide is another order of magnitude); the gate
/// fails only if an edit effectively disables one of the optimizations.
pub const MIN_RSA_SPEEDUP: f64 = 4.0;

/// Absolute ceiling on the optimized RSA-1024 private op, µs.
pub const MAX_RSA_PRIV_US: f64 = 2_000.0;

/// Absolute floor on pipelined AES-CTR keystream throughput, MB/s.
pub const MIN_AES_CTR_MBPS: f64 = 40.0;

/// One R-C1 measurement set (all medians over the run's passes).
#[derive(Debug, Clone)]
pub struct C1Report {
    /// Optimized RSA-1024 private op (CRT + Montgomery + window), µs.
    pub rsa_priv_us: f64,
    /// Schoolbook reference private op (non-CRT, mul-then-divide), µs.
    pub rsa_schoolbook_us: f64,
    /// `rsa_schoolbook_us / rsa_priv_us`.
    pub rsa_speedup: f64,
    /// RSA-1024 public op (e = 65537), µs.
    pub rsa_pub_us: f64,
    /// Pipelined AES-128-CTR keystream, MB/s.
    pub aes_ctr_mbps: f64,
    /// Single-block scalar-rounds CTR reference, MB/s.
    pub aes_ctr_scalar_mbps: f64,
    /// SHA-256 bulk throughput, MB/s.
    pub sha256_mbps: f64,
    /// SHA-256 of a 40-byte message (the DRBG block shape), ns.
    pub sha256_small_ns: f64,
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Time `f` (which performs `ops` operations) over `passes` passes and
/// return the median µs per operation.
fn med_us_per_op(passes: usize, ops: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..passes.max(1))
        .map(|_| {
            let t0 = std::time::Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e6 / ops.max(1) as f64
        })
        .collect();
    median(&mut samples)
}

/// Run the floor measurements. `passes` controls noise robustness,
/// `rsa_reps`/`schoolbook_reps` the per-pass op counts, `aes_mib` the
/// keystream size per pass.
pub fn run(passes: usize, rsa_reps: usize, schoolbook_reps: usize, aes_mib: usize) -> C1Report {
    let mut rng = Drbg::new(b"r-c1 crypto floor");
    let key = RsaPrivateKey::generate(1024, &mut rng);
    let m = BigUint::from_bytes_be(&rng.bytes(100)).rem(&key.public.n);
    let c = key.public.raw(&m);

    let rsa_priv_us = med_us_per_op(passes, rsa_reps, || {
        for _ in 0..rsa_reps {
            std::hint::black_box(key.raw(std::hint::black_box(&c)));
        }
    });
    let rsa_schoolbook_us = med_us_per_op(passes, schoolbook_reps, || {
        for _ in 0..schoolbook_reps {
            std::hint::black_box(key.raw_schoolbook(std::hint::black_box(&c)));
        }
    });
    let rsa_pub_us = med_us_per_op(passes, rsa_reps * 8, || {
        for _ in 0..rsa_reps * 8 {
            std::hint::black_box(key.public.raw(std::hint::black_box(&m)));
        }
    });

    let mut buf = vec![0u8; aes_mib.max(1) << 20];
    let ctr = AesCtr::new(&[7u8; 16], *b"r-c1ctr!");
    let aes_us_per_mib = med_us_per_op(passes, aes_mib.max(1), || {
        ctr.apply_keystream(std::hint::black_box(&mut buf));
    });
    let aes_ctr_mbps = 1e6 / aes_us_per_mib;

    // Scalar reference throughput: single blocks through the byte-wise
    // reference rounds (same work the pre-optimization code did). Uses a
    // smaller buffer — it is ~5-10x slower and only context, not a gate.
    let cipher = tpm_crypto::Aes128::new(&[7u8; 16]);
    let scalar_len = (aes_mib.max(1) << 20) / 4;
    let scalar_us = med_us_per_op(passes, 1, || {
        let mut block = [0u8; 16];
        for i in 0..scalar_len / 16 {
            block[8..].copy_from_slice(&(i as u64).to_be_bytes());
            cipher.encrypt_block_scalar(std::hint::black_box(&mut block));
        }
        std::hint::black_box(&block);
    });
    let aes_ctr_scalar_mbps = scalar_len as f64 / (1 << 20) as f64 * 1e6 / scalar_us;

    let sha_us_per_mib = med_us_per_op(passes, aes_mib.max(1), || {
        std::hint::black_box(tpm_crypto::sha256(std::hint::black_box(&buf)));
    });
    let sha256_mbps = 1e6 / sha_us_per_mib;

    let small = [0x5au8; 40];
    let small_reps = 200_000;
    let sha256_small_ns = med_us_per_op(passes, small_reps, || {
        for _ in 0..small_reps {
            std::hint::black_box(tpm_crypto::sha256(std::hint::black_box(&small)));
        }
    }) * 1e3;

    C1Report {
        rsa_priv_us,
        rsa_schoolbook_us,
        rsa_speedup: rsa_schoolbook_us / rsa_priv_us,
        rsa_pub_us,
        aes_ctr_mbps,
        aes_ctr_scalar_mbps,
        sha256_mbps,
        sha256_small_ns,
    }
}

/// True if any floor is violated.
pub fn gate_failed(r: &C1Report) -> bool {
    r.rsa_speedup < MIN_RSA_SPEEDUP
        || r.rsa_priv_us > MAX_RSA_PRIV_US
        || r.aes_ctr_mbps < MIN_AES_CTR_MBPS
}

/// Render the table.
pub fn render(r: &C1Report) -> String {
    let mut out = String::new();
    out.push_str("R-C1  Crypto floor (medians; RSA-1024, AES-128-CTR, SHA-256)\n");
    out.push_str(&format!(
        "rsa private op (CRT+Montgomery+window): {:>9.1} us   (ceiling {:.0} us)\n",
        r.rsa_priv_us, MAX_RSA_PRIV_US
    ));
    out.push_str(&format!(
        "rsa private op (schoolbook reference):  {:>9.1} us\n",
        r.rsa_schoolbook_us
    ));
    out.push_str(&format!(
        "rsa private-op speedup:                 {:>9.1} x    (floor {:.0}x)\n",
        r.rsa_speedup, MIN_RSA_SPEEDUP
    ));
    out.push_str(&format!("rsa public op:                          {:>9.1} us\n", r.rsa_pub_us));
    out.push_str(&format!(
        "aes-ctr keystream (pipelined):          {:>9.1} MB/s (floor {:.0} MB/s)\n",
        r.aes_ctr_mbps, MIN_AES_CTR_MBPS
    ));
    out.push_str(&format!(
        "aes-ctr keystream (scalar reference):   {:>9.1} MB/s\n",
        r.aes_ctr_scalar_mbps
    ));
    out.push_str(&format!("sha256 bulk:                            {:>9.1} MB/s\n", r.sha256_mbps));
    out.push_str(&format!(
        "sha256 40-byte message:                 {:>9.0} ns\n",
        r.sha256_small_ns
    ));
    out.push_str(&format!(
        "gate: {}\n",
        if gate_failed(r) { "FAIL" } else { "PASS" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_holds_small() {
        let r = run(2, 4, 2, 1);
        assert!(r.rsa_priv_us > 0.0);
        assert!(r.rsa_schoolbook_us > r.rsa_priv_us, "schoolbook must be slower");
        // The real gate demands 4x; even a tiny noisy sample clears 2x
        // comfortably when CRT+Montgomery are in place.
        assert!(r.rsa_speedup > 2.0, "speedup {:.1}", r.rsa_speedup);
        assert!(r.aes_ctr_mbps > r.aes_ctr_scalar_mbps, "pipeline must beat scalar");
        let table = render(&r);
        assert!(table.contains("R-C1"));
        assert!(table.contains("speedup"));
    }
}
