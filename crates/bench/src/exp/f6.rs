//! R-F6 (extension figure): response time versus offered load.
//!
//! Closed-loop runs (R-F1) measure capacity; real guests offer load
//! stochastically. This experiment measures each configuration's
//! *virtual-time service cost* for a representative operation, then runs
//! a Poisson-arrival M/D/1 queue at increasing offered load to produce
//! the latency curve a hardware-TPM deployment would see. Expected shape:
//! both curves are flat until utilization approaches 1, then blow up; the
//! improved curve's knee sits marginally earlier (its service time is a
//! fraction of a percent longer).

use vtpm_ac::{AcConfig, SecurePlatform};
use workload::{offered_load_model, GuestSession, Op};

/// One point of the figure.
#[derive(Debug, Clone)]
pub struct F6Point {
    /// Offered load as a fraction of baseline capacity.
    pub utilization: f64,
    /// Mean response time, baseline (virtual ms).
    pub base_ms: f64,
    /// Mean response time, improved (virtual ms).
    pub imp_ms: f64,
}

/// Measure one configuration's virtual service time for `op` (ns).
fn service_ns(cfg: AcConfig, seed: &[u8], op: Op, reps: usize) -> u64 {
    let sp = SecurePlatform::new(seed, cfg).expect("platform");
    let guest = sp.launch_guest("svc").expect("guest");
    let clock = &sp.platform.hv.clock;
    let mut session = GuestSession::prepare(guest.front, seed).expect("prepare");
    session.run(op).expect("warmup");
    let v0 = clock.now_ns();
    for _ in 0..reps {
        session.run(op).expect("op");
    }
    (clock.now_ns() - v0) / reps as u64
}

/// Run the sweep at the given utilization points.
pub fn run(utilizations: &[f64], arrivals: usize) -> Vec<F6Point> {
    let base_service = service_ns(AcConfig::none(), b"f6-base", Op::Extend, 20);
    let imp_service = service_ns(AcConfig::default(), b"f6-imp", Op::Extend, 20);
    let capacity = 1e9 / base_service as f64; // baseline ops/sec

    utilizations
        .iter()
        .map(|&u| {
            let rate = capacity * u;
            let base = offered_load_model(rate, base_service, arrivals, 42);
            let imp = offered_load_model(rate, imp_service, arrivals, 42);
            F6Point {
                utilization: u,
                base_ms: base.mean_response_ns / 1e6,
                imp_ms: imp.mean_response_ns / 1e6,
            }
        })
        .collect()
}

/// Render the series.
pub fn render(points: &[F6Point]) -> String {
    let mut out = String::new();
    out.push_str(
        "R-F6  Response time vs offered load (M/D/1 over measured virtual service times, Extend op)\n\
         utilization   base(ms)   improved(ms)\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:<13.2} {:>8.3} {:>13.3}\n",
            p.utilization, p.base_ms, p.imp_ms
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds_small() {
        let points = run(&[0.2, 0.9], 2_000);
        assert_eq!(points.len(), 2);
        // Latency explodes near saturation in both configurations.
        assert!(points[1].base_ms > 1.5 * points[0].base_ms);
        assert!(points[1].imp_ms > 1.5 * points[0].imp_ms);
        // Improved is never faster than baseline.
        for p in &points {
            assert!(p.imp_ms >= p.base_ms * 0.99, "{p:?}");
        }
        assert!(render(&points).contains("R-F6"));
    }
}
