//! R-T3 (Table 3): policy-engine decision latency versus rule count,
//! with and without the decision cache.
//!
//! Expected shape: uncached decisions grow linearly with the rule list;
//! cached decisions stay flat (one map probe) regardless of rule count.

use tpm::ordinal;
use vtpm_ac::PolicyEngine;

/// One table row.
#[derive(Debug, Clone)]
pub struct T3Row {
    /// Rules loaded.
    pub rules: usize,
    /// Mean ns per cached decision.
    pub cached_ns: f64,
    /// Mean ns per uncached decision.
    pub uncached_ns: f64,
}

/// Build an engine with `n` non-matching specific rules followed by the
/// recommended tail, so every decision walks the whole list uncached.
pub fn synthetic_engine(n: usize) -> PolicyEngine {
    let mut text = String::new();
    for i in 0..n {
        // Specific rules for domains that never appear in queries.
        text.push_str(&format!("deny dom {} group owner\n", 100_000 + i as u32));
    }
    text.push_str("deny group nv-admin\ndefault allow\n");
    PolicyEngine::parse(&text).expect("synthetic policy parses")
}

fn mean_ns(mut f: impl FnMut(), iters: usize) -> f64 {
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

/// Run the sweep.
pub fn run(rule_counts: &[usize], iters: usize) -> Vec<T3Row> {
    rule_counts
        .iter()
        .map(|&rules| {
            let engine = synthetic_engine(rules);
            // Decisions rotate domains/ordinals so the cache holds a
            // realistic handful of entries.
            let domains = [1u32, 2, 3, 4];
            let ords = [ordinal::SEAL, ordinal::QUOTE, ordinal::EXTEND, ordinal::GET_RANDOM];
            // Prime the cache.
            for &d in &domains {
                for &o in &ords {
                    engine.check(d, o);
                }
            }
            let mut i = 0usize;
            let cached_ns = mean_ns(
                || {
                    let d = domains[i % 4];
                    let o = ords[(i / 4) % 4];
                    std::hint::black_box(engine.check(d, o));
                    i += 1;
                },
                iters,
            );
            let mut j = 0usize;
            let uncached_ns = mean_ns(
                || {
                    let d = domains[j % 4];
                    let o = ords[(j / 4) % 4];
                    std::hint::black_box(engine.check_uncached(d, o));
                    j += 1;
                },
                iters,
            );
            T3Row { rules, cached_ns, uncached_ns }
        })
        .collect()
}

/// Render the table.
pub fn render(rows: &[T3Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "R-T3  Policy decision latency vs rule count\n\
         rules    cached(ns)   uncached(ns)   speedup\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:>10.1} {:>14.1} {:>8.1}x\n",
            r.rules,
            r.cached_ns,
            r.uncached_ns,
            r.uncached_ns / r.cached_ns.max(0.1),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds_small() {
        let rows = run(&[10, 1000], 2000);
        assert_eq!(rows.len(), 2);
        // Uncached scales with rules: 1000 rules must cost clearly more
        // than 10 rules.
        assert!(
            rows[1].uncached_ns > 5.0 * rows[0].uncached_ns,
            "uncached {} vs {}",
            rows[1].uncached_ns,
            rows[0].uncached_ns
        );
        // Cached stays roughly flat (allow generous noise).
        assert!(
            rows[1].cached_ns < 20.0 * rows[0].cached_ns.max(1.0),
            "cached {} vs {}",
            rows[1].cached_ns,
            rows[0].cached_ns
        );
        // At 1000 rules the cache wins big.
        assert!(rows[1].uncached_ns > 3.0 * rows[1].cached_ns);
        assert!(render(&rows).contains("R-T3"));
    }

    #[test]
    fn synthetic_engine_semantics() {
        let e = synthetic_engine(50);
        assert_eq!(e.rule_count(), 51);
        assert!(!e.check(1, ordinal::NV_DEFINE_SPACE));
        assert!(e.check(1, ordinal::SEAL));
    }
}
