//! Criterion bench for R-T4: a Seal operation end-to-end under each AC
//! configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vtpm_ac::SecurePlatform;
use vtpm_bench::exp::t4::configurations;
use workload::{GuestSession, Op};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    for (label, cfg) in configurations() {
        let sp = SecurePlatform::new(format!("bench-t4-{label}").as_bytes(), cfg).unwrap();
        let guest = sp.launch_guest("bench").unwrap();
        let mut session = GuestSession::prepare(guest.front, b"bench").unwrap();
        group.bench_with_input(BenchmarkId::new("seal", label), &(), |b, _| {
            b.iter(|| session.run(Op::Seal).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
