//! Criterion bench for R-F2: the hook's authorize() call alone, per AC
//! configuration — the measured microcost behind the breakdown — plus
//! the full `handle()` path per command class, with mirror bytes written
//! per command reported alongside the wall time.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vtpm::{AccessHook, Envelope, ManagerConfig, MirrorMode, RequestContext, VtpmManager};
use vtpm_ac::{AcConfig, ImprovedHook};
use xen_sim::{DomainId, Hypervisor};

fn bench_hook(c: &mut Criterion) {
    let mut group = c.benchmark_group("overhead_breakdown");
    let hv = Arc::new(Hypervisor::boot(64, 4).unwrap());
    let configs: Vec<(&str, AcConfig)> = vec![
        ("none", AcConfig::none()),
        ("auth", AcConfig { auth: true, replay: false, policy: false, audit: false, max_guest_locality: 4 }),
        ("policy", AcConfig { auth: false, replay: false, policy: true, audit: false, max_guest_locality: 4 }),
        ("full", AcConfig { replay: false, ..AcConfig::default() }),
    ];
    for (name, cfg) in configs {
        let hook = ImprovedHook::new(Arc::clone(&hv), b"bench-f2", cfg);
        let key = hook.credentials.provision(1, 1);
        let mut cmd = vec![0u8; 64];
        cmd[..2].copy_from_slice(&0x00C1u16.to_be_bytes());
        cmd[2..6].copy_from_slice(&64u32.to_be_bytes());
        cmd[6..10].copy_from_slice(&tpm::ordinal::SEAL.to_be_bytes());
        let env = Envelope { domain: 1, instance: 1, seq: 1, locality: 0, tag: None, command: cmd }
            .sign(&key);
        group.bench_with_input(BenchmarkId::new("authorize", name), &env, |b, env| {
            b.iter(|| {
                let ctx = RequestContext {
                    request_id: 0,
                    source_domain: DomainId(1),
                    claimed_domain: env.domain,
                    instance: env.instance,
                    seq: env.seq,
                    locality: env.locality,
                    ordinal: tpm::ordinal_of(&env.command),
                    tag: env.tag.as_ref(),
                    command: &env.command,
                };
                std::hint::black_box(hook.authorize(&ctx))
            })
        });
    }
    group.finish();
}

/// The end-to-end `handle()` path per command class and mirror mode.
/// Each benchmark also reports the mirror bytes written per command over
/// its timed run: read-only commands skip serialization and mirroring
/// entirely (0 B/cmd), mutating ones pay only for dirty pages.
fn bench_handle_with_mirror(c: &mut Criterion) {
    let mut group = c.benchmark_group("overhead_breakdown");
    group.sample_size(10);

    let pcr_read: Vec<u8> = {
        let mut cmd = Vec::new();
        cmd.extend_from_slice(&0x00C1u16.to_be_bytes());
        cmd.extend_from_slice(&14u32.to_be_bytes());
        cmd.extend_from_slice(&tpm::ordinal::PCR_READ.to_be_bytes());
        cmd.extend_from_slice(&0u32.to_be_bytes());
        cmd
    };
    let extend: Vec<u8> = {
        let mut cmd = Vec::new();
        cmd.extend_from_slice(&0x00C1u16.to_be_bytes());
        cmd.extend_from_slice(&34u32.to_be_bytes());
        cmd.extend_from_slice(&tpm::ordinal::EXTEND.to_be_bytes());
        cmd.extend_from_slice(&3u32.to_be_bytes());
        cmd.extend_from_slice(&[0xA5u8; 20]);
        cmd
    };

    for (cmd_name, cmd) in [("pcr_read", &pcr_read), ("extend", &extend)] {
        for (mode_name, mode) in
            [("cleartext", MirrorMode::Cleartext), ("encrypted", MirrorMode::Encrypted)]
        {
            let hv = Arc::new(Hypervisor::boot(4096, 16).unwrap());
            let mgr = VtpmManager::new(
                Arc::clone(&hv),
                b"bench-handle",
                ManagerConfig {
                    mirror_mode: mode,
                    charge_virtual_time: false,
                    ..Default::default()
                },
            )
            .unwrap();
            let inst = mgr.create_instance().unwrap();
            let startup = Envelope {
                domain: 1,
                instance: inst,
                seq: 1,
                locality: 0,
                tag: None,
                command: vec![0x00, 0xC1, 0, 0, 0, 12, 0, 0, 0, 0x99, 0, 1],
            };
            mgr.handle(DomainId(1), &startup.encode());

            let mut seq = 1u64;
            group.bench_with_input(
                BenchmarkId::new(format!("handle_{mode_name}"), cmd_name),
                cmd,
                |b, cmd| {
                    b.iter(|| {
                        seq += 1;
                        let env = Envelope {
                            domain: 1,
                            instance: inst,
                            seq,
                            locality: 0,
                            tag: None,
                            command: cmd.clone(),
                        };
                        mgr.handle(DomainId(1), &env.encode())
                    })
                },
            );
            // Mirror cost now comes from the telemetry registry: the
            // per-command byte histogram is measured at the commit site,
            // not reconstructed from global counter deltas.
            let snap = mgr.metrics_snapshot().expect("telemetry enabled by default");
            let mb = &snap.mirror_bytes;
            eprintln!(
                "overhead_breakdown/mirror_bytes/{mode_name}/{cmd_name}: \
                 mean {:.1} B/cmd (p50 {} p99 {} max {}) over {} cmds",
                mb.mean, mb.p50, mb.p99, mb.max, mb.count,
            );
        }
    }
    group.finish();
}

/// Per-stage virtual-time breakdown of the full improved-AC request
/// path, measured (not reconstructed by subtraction): the manager's
/// telemetry spans stamp every stage boundary off the sim clock, and
/// the registry's log-linear histograms summarize them.
fn report_stage_breakdown(_c: &mut Criterion) {
    let hv = Arc::new(Hypervisor::boot(4096, 16).unwrap());
    let mgr = VtpmManager::new(
        Arc::clone(&hv),
        b"bench-stages",
        ManagerConfig { mirror_mode: MirrorMode::Encrypted, ..Default::default() },
    )
    .unwrap();
    let hook = Arc::new(ImprovedHook::new(Arc::clone(&hv), b"bench-stages", AcConfig::default()));
    let inst = mgr.create_instance().unwrap();
    let key = hook.credentials.provision(1, inst);
    mgr.set_hook(hook);
    let startup = vec![0x00, 0xC1, 0, 0, 0, 12, 0, 0, 0, 0x99, 0, 1];
    let extend: Vec<u8> = {
        let mut cmd = Vec::new();
        cmd.extend_from_slice(&0x00C1u16.to_be_bytes());
        cmd.extend_from_slice(&34u32.to_be_bytes());
        cmd.extend_from_slice(&tpm::ordinal::EXTEND.to_be_bytes());
        cmd.extend_from_slice(&3u32.to_be_bytes());
        cmd.extend_from_slice(&[0xA5u8; 20]);
        cmd
    };
    let mut seq = 0u64;
    let mut send = |cmd: &[u8]| {
        seq += 1;
        let env = Envelope {
            domain: 1,
            instance: inst,
            seq,
            locality: 0,
            tag: None,
            command: cmd.to_vec(),
        }
        .sign(&key);
        mgr.handle(DomainId(1), &env.encode());
    };
    send(&startup);
    for _ in 0..200 {
        send(&extend);
    }
    let snap = mgr.metrics_snapshot().expect("telemetry enabled by default");
    for (stage, h) in [
        ("ingress", &snap.stage_ingress),
        ("ac_hook", &snap.stage_ac),
        ("execute", &snap.stage_exec),
        ("mirror", &snap.stage_mirror),
        ("total", &snap.total),
    ] {
        eprintln!(
            "overhead_breakdown/stage_virtual_ns/{stage}: \
             p50 {} p90 {} p99 {} max {} (n={})",
            h.p50, h.p90, h.p99, h.max, h.count,
        );
    }
}

criterion_group!(benches, bench_hook, bench_handle_with_mirror, report_stage_breakdown);
criterion_main!(benches);
