//! Criterion bench for R-F2: the hook's authorize() call alone, per AC
//! configuration — the measured microcost behind the breakdown — plus
//! the full `handle()` path per command class, with mirror bytes written
//! per command reported alongside the wall time.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vtpm::{AccessHook, Envelope, ManagerConfig, MirrorMode, RequestContext, VtpmManager};
use vtpm_ac::{AcConfig, ImprovedHook};
use xen_sim::{DomainId, Hypervisor};

fn bench_hook(c: &mut Criterion) {
    let mut group = c.benchmark_group("overhead_breakdown");
    let hv = Arc::new(Hypervisor::boot(64, 4).unwrap());
    let configs: Vec<(&str, AcConfig)> = vec![
        ("none", AcConfig::none()),
        ("auth", AcConfig { auth: true, replay: false, policy: false, audit: false, max_guest_locality: 4 }),
        ("policy", AcConfig { auth: false, replay: false, policy: true, audit: false, max_guest_locality: 4 }),
        ("full", AcConfig { replay: false, ..AcConfig::default() }),
    ];
    for (name, cfg) in configs {
        let hook = ImprovedHook::new(Arc::clone(&hv), b"bench-f2", cfg);
        let key = hook.credentials.provision(1, 1);
        let mut cmd = vec![0u8; 64];
        cmd[..2].copy_from_slice(&0x00C1u16.to_be_bytes());
        cmd[2..6].copy_from_slice(&64u32.to_be_bytes());
        cmd[6..10].copy_from_slice(&tpm::ordinal::SEAL.to_be_bytes());
        let env = Envelope { domain: 1, instance: 1, seq: 1, locality: 0, tag: None, command: cmd }
            .sign(&key);
        group.bench_with_input(BenchmarkId::new("authorize", name), &env, |b, env| {
            b.iter(|| {
                let ctx = RequestContext {
                    source_domain: DomainId(1),
                    claimed_domain: env.domain,
                    instance: env.instance,
                    seq: env.seq,
                    locality: env.locality,
                    ordinal: tpm::ordinal_of(&env.command),
                    tag: env.tag.as_ref(),
                    command: &env.command,
                };
                std::hint::black_box(hook.authorize(&ctx))
            })
        });
    }
    group.finish();
}

/// The end-to-end `handle()` path per command class and mirror mode.
/// Each benchmark also reports the mirror bytes written per command over
/// its timed run: read-only commands skip serialization and mirroring
/// entirely (0 B/cmd), mutating ones pay only for dirty pages.
fn bench_handle_with_mirror(c: &mut Criterion) {
    let mut group = c.benchmark_group("overhead_breakdown");
    group.sample_size(10);

    let pcr_read: Vec<u8> = {
        let mut cmd = Vec::new();
        cmd.extend_from_slice(&0x00C1u16.to_be_bytes());
        cmd.extend_from_slice(&14u32.to_be_bytes());
        cmd.extend_from_slice(&tpm::ordinal::PCR_READ.to_be_bytes());
        cmd.extend_from_slice(&0u32.to_be_bytes());
        cmd
    };
    let extend: Vec<u8> = {
        let mut cmd = Vec::new();
        cmd.extend_from_slice(&0x00C1u16.to_be_bytes());
        cmd.extend_from_slice(&34u32.to_be_bytes());
        cmd.extend_from_slice(&tpm::ordinal::EXTEND.to_be_bytes());
        cmd.extend_from_slice(&3u32.to_be_bytes());
        cmd.extend_from_slice(&[0xA5u8; 20]);
        cmd
    };

    for (cmd_name, cmd) in [("pcr_read", &pcr_read), ("extend", &extend)] {
        for (mode_name, mode) in
            [("cleartext", MirrorMode::Cleartext), ("encrypted", MirrorMode::Encrypted)]
        {
            let hv = Arc::new(Hypervisor::boot(4096, 16).unwrap());
            let mgr = VtpmManager::new(
                Arc::clone(&hv),
                b"bench-handle",
                ManagerConfig {
                    mirror_mode: mode,
                    charge_virtual_time: false,
                    ..Default::default()
                },
            )
            .unwrap();
            let inst = mgr.create_instance().unwrap();
            let startup = Envelope {
                domain: 1,
                instance: inst,
                seq: 1,
                locality: 0,
                tag: None,
                command: vec![0x00, 0xC1, 0, 0, 0, 12, 0, 0, 0, 0x99, 0, 1],
            };
            mgr.handle(DomainId(1), &startup.encode());

            let mut seq = 1u64;
            let mut count = 0u64;
            let before = mgr.mirror_io_stats();
            group.bench_with_input(
                BenchmarkId::new(format!("handle_{mode_name}"), cmd_name),
                cmd,
                |b, cmd| {
                    b.iter(|| {
                        seq += 1;
                        count += 1;
                        let env = Envelope {
                            domain: 1,
                            instance: inst,
                            seq,
                            locality: 0,
                            tag: None,
                            command: cmd.clone(),
                        };
                        mgr.handle(DomainId(1), &env.encode())
                    })
                },
            );
            let after = mgr.mirror_io_stats();
            let bytes = after.bytes_written - before.bytes_written;
            let pages = after.data_pages_written - before.data_pages_written;
            eprintln!(
                "overhead_breakdown/mirror_bytes/{mode_name}/{cmd_name}: \
                 {:.1} B/cmd ({:.2} data pages/cmd) over {count} cmds",
                bytes as f64 / count.max(1) as f64,
                pages as f64 / count.max(1) as f64,
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_hook, bench_handle_with_mirror);
criterion_main!(benches);
