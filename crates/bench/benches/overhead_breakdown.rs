//! Criterion bench for R-F2: the hook's authorize() call alone, per AC
//! configuration — the measured microcost behind the breakdown.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vtpm::{AccessHook, Envelope, RequestContext};
use vtpm_ac::{AcConfig, ImprovedHook};
use xen_sim::{DomainId, Hypervisor};

fn bench_hook(c: &mut Criterion) {
    let mut group = c.benchmark_group("overhead_breakdown");
    let hv = Arc::new(Hypervisor::boot(64, 4).unwrap());
    let configs: Vec<(&str, AcConfig)> = vec![
        ("none", AcConfig::none()),
        ("auth", AcConfig { auth: true, replay: false, policy: false, audit: false, max_guest_locality: 4 }),
        ("policy", AcConfig { auth: false, replay: false, policy: true, audit: false, max_guest_locality: 4 }),
        ("full", AcConfig { replay: false, ..AcConfig::default() }),
    ];
    for (name, cfg) in configs {
        let hook = ImprovedHook::new(Arc::clone(&hv), b"bench-f2", cfg);
        let key = hook.credentials.provision(1, 1);
        let mut cmd = vec![0u8; 64];
        cmd[..2].copy_from_slice(&0x00C1u16.to_be_bytes());
        cmd[2..6].copy_from_slice(&64u32.to_be_bytes());
        cmd[6..10].copy_from_slice(&tpm::ordinal::SEAL.to_be_bytes());
        let env = Envelope { domain: 1, instance: 1, seq: 1, locality: 0, tag: None, command: cmd }
            .sign(&key);
        group.bench_with_input(BenchmarkId::new("authorize", name), &env, |b, env| {
            b.iter(|| {
                let ctx = RequestContext {
                    source_domain: DomainId(1),
                    claimed_domain: env.domain,
                    instance: env.instance,
                    seq: env.seq,
                    locality: env.locality,
                    ordinal: tpm::ordinal_of(&env.command),
                    tag: env.tag.as_ref(),
                    command: &env.command,
                };
                std::hint::black_box(hook.authorize(&ctx))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hook);
criterion_main!(benches);
