//! Criterion bench of the from-scratch crypto substrate — the cost floor
//! under every TPM command and every AC1 tag verification.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tpm_crypto::{hmac_sha256, sha1, sha256, AesCtr, BigUint, Drbg, RsaPrivateKey};

fn bench_crypto(c: &mut Criterion) {
    let mut rng = Drbg::new(b"bench-crypto");
    let data_4k = rng.bytes(4096);

    let mut group = c.benchmark_group("hashes");
    group.throughput(Throughput::Bytes(4096));
    group.bench_function("sha1_4k", |b| b.iter(|| sha1(std::hint::black_box(&data_4k))));
    group.bench_function("sha256_4k", |b| b.iter(|| sha256(std::hint::black_box(&data_4k))));
    group.bench_function("hmac_sha256_4k", |b| {
        b.iter(|| hmac_sha256(b"key", std::hint::black_box(&data_4k)))
    });
    group.finish();

    let mut group = c.benchmark_group("aes");
    group.throughput(Throughput::Bytes(4096));
    let ctr = AesCtr::new(&[7; 16], [1; 8]);
    group.bench_function("aes128_ctr_4k", |b| {
        b.iter(|| {
            let mut buf = data_4k.clone();
            ctr.apply_keystream(&mut buf);
            buf
        })
    });
    group.finish();

    let mut group = c.benchmark_group("rsa");
    group.sample_size(10);
    let key = RsaPrivateKey::generate(1024, &mut rng);
    let m = BigUint::from_bytes_be(&rng.bytes(64));
    group.bench_function("rsa1024_public", |b| {
        b.iter(|| key.public.raw(std::hint::black_box(&m)))
    });
    let ct = key.public.raw(&m);
    group.bench_function("rsa1024_private_crt", |b| {
        b.iter(|| key.raw(std::hint::black_box(&ct)))
    });
    group.bench_function("rsa512_keygen", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut r = Drbg::new(&seed.to_be_bytes());
            RsaPrivateKey::generate(512, &mut r)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_crypto);
criterion_main!(benches);
