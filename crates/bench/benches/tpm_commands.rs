//! Criterion bench of raw TPM 1.2 command execution (no transport, no
//! manager): the emulator's own cost per command class.

use criterion::{criterion_group, criterion_main, Criterion};
use tpm::{handle, DirectTransport, KeyUsage, Tpm, TpmClient};

fn bench_tpm(c: &mut Criterion) {
    let mut group = c.benchmark_group("tpm_commands");
    group.sample_size(20);

    let mut tpm = Tpm::new(b"bench-tpm");
    let owner = [1u8; 20];
    let srk = [2u8; 20];
    let key_auth = [3u8; 20];
    let mut client = TpmClient::new(DirectTransport { tpm: &mut tpm, locality: 0 }, b"b");
    client.startup_clear().unwrap();
    client.take_ownership(&owner, &srk).unwrap();
    let blob = client
        .create_wrap_key(handle::SRK, &srk, KeyUsage::Signing, 512, &key_auth, None)
        .unwrap();
    let sign_key = client.load_key2(handle::SRK, &srk, &blob).unwrap();
    let sealed = client.seal(handle::SRK, &srk, &[4; 20], None, b"secret").unwrap();

    group.bench_function("extend", |b| b.iter(|| client.extend(0, &[9; 20]).unwrap()));
    group.bench_function("get_random_16", |b| b.iter(|| client.get_random(16).unwrap()));
    group.bench_function("seal", |b| {
        b.iter(|| client.seal(handle::SRK, &srk, &[4; 20], None, b"secret").unwrap())
    });
    group.bench_function("unseal", |b| {
        b.iter(|| client.unseal(handle::SRK, &srk, &[4; 20], &sealed).unwrap())
    });
    group.bench_function("sign", |b| {
        b.iter(|| client.sign(sign_key, &key_auth, b"message").unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_tpm);
criterion_main!(benches);
