//! Criterion bench for R-F4: worker-pool request handling throughput,
//! plus a mirror-I/O report: bytes pushed into the Dom0 resident-image
//! mirror per command, split by command class and mirror mode.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vtpm::{Envelope, ManagerConfig, ManagerServer, MirrorMode, VtpmManager};
use xen_sim::{DomainId, Hypervisor};

fn pcr_read_cmd() -> Vec<u8> {
    let mut cmd = Vec::new();
    cmd.extend_from_slice(&0x00C1u16.to_be_bytes());
    cmd.extend_from_slice(&14u32.to_be_bytes());
    cmd.extend_from_slice(&tpm::ordinal::PCR_READ.to_be_bytes());
    cmd.extend_from_slice(&0u32.to_be_bytes());
    cmd
}

fn extend_cmd() -> Vec<u8> {
    let mut cmd = Vec::new();
    cmd.extend_from_slice(&0x00C1u16.to_be_bytes());
    cmd.extend_from_slice(&34u32.to_be_bytes());
    cmd.extend_from_slice(&tpm::ordinal::EXTEND.to_be_bytes());
    cmd.extend_from_slice(&3u32.to_be_bytes());
    cmd.extend_from_slice(&[0xA5u8; 20]);
    cmd
}

fn bench_manager(c: &mut Criterion) {
    let mut group = c.benchmark_group("manager_scaling");
    group.sample_size(10);
    let n_requests = 200usize;
    group.throughput(Throughput::Elements(n_requests as u64));

    for workers in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &workers| {
            let hv = Arc::new(Hypervisor::boot(4096, 16).unwrap());
            let mgr = Arc::new(
                VtpmManager::new(
                    Arc::clone(&hv),
                    b"bench-f4",
                    ManagerConfig { charge_virtual_time: false, ..Default::default() },
                )
                .unwrap(),
            );
            let inst = mgr.create_instance().unwrap();
            let startup = Envelope {
                domain: 1,
                instance: inst,
                seq: 1,
                locality: 0,
                tag: None,
                command: vec![0x00, 0xC1, 0, 0, 0, 12, 0, 0, 0, 0x99, 0, 1],
            };
            mgr.handle(DomainId(1), &startup.encode());
            let cmd = pcr_read_cmd();
            let server = ManagerServer::new(Arc::clone(&mgr), workers);
            let mut seq = 2u64;
            b.iter(|| {
                let receivers: Vec<_> = (0..n_requests)
                    .map(|_| {
                        seq += 1;
                        let env = Envelope {
                            domain: 1,
                            instance: inst,
                            seq,
                            locality: 0,
                            tag: None,
                            command: cmd.clone(),
                        };
                        server.submit(DomainId(1), env.encode())
                    })
                    .collect();
                for rx in receivers {
                    rx.recv().unwrap();
                }
            });
        });
    }
    group.finish();
}

/// Not a timing bench: drives the manager with read-only and mutating
/// workloads and reports mirror traffic per command, so the throughput
/// numbers above can be read against the I/O they imply. Read-only
/// commands must show 0 B/cmd (generation-skip), mutating commands only
/// the dirty pages plus the metadata page.
fn report_mirror_io(_c: &mut Criterion) {
    let n = 200u64;
    for (mode_name, mode) in
        [("cleartext", MirrorMode::Cleartext), ("encrypted", MirrorMode::Encrypted)]
    {
        let hv = Arc::new(Hypervisor::boot(4096, 16).unwrap());
        let mgr = VtpmManager::new(
            Arc::clone(&hv),
            b"bench-mirror-io",
            ManagerConfig { mirror_mode: mode, charge_virtual_time: false, ..Default::default() },
        )
        .unwrap();
        let inst = mgr.create_instance().unwrap();
        let mut seq = 0u64;
        let mut send = |cmd: &[u8]| {
            seq += 1;
            let env = Envelope {
                domain: 1,
                instance: inst,
                seq,
                locality: 0,
                tag: None,
                command: cmd.to_vec(),
            };
            mgr.handle(DomainId(1), &env.encode());
        };
        send(&[0x00, 0xC1, 0, 0, 0, 12, 0, 0, 0, 0x99, 0, 1]);

        let read_cmd = pcr_read_cmd();
        let before_reads = mgr.mirror_io_stats();
        for _ in 0..n {
            send(&read_cmd);
        }
        let before_writes = mgr.mirror_io_stats();
        let ext_cmd = extend_cmd();
        for _ in 0..n {
            send(&ext_cmd);
        }
        let after = mgr.mirror_io_stats();

        let read_bytes = before_writes.bytes_written - before_reads.bytes_written;
        let write_bytes = after.bytes_written - before_writes.bytes_written;
        let write_pages = after.data_pages_written - before_writes.data_pages_written;
        eprintln!(
            "manager_scaling/mirror_io/{mode_name}: read-only {:.1} B/cmd, \
             mutating {:.1} B/cmd ({:.2} data pages/cmd) over {n} cmds each",
            read_bytes as f64 / n as f64,
            write_bytes as f64 / n as f64,
            write_pages as f64 / n as f64,
        );
    }
    eprintln!();
}

criterion_group!(benches, bench_manager, report_mirror_io);
criterion_main!(benches);
