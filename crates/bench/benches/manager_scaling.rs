//! Criterion bench for R-F4: worker-pool request handling throughput.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vtpm::{Envelope, ManagerConfig, ManagerServer, VtpmManager};
use xen_sim::{DomainId, Hypervisor};

fn bench_manager(c: &mut Criterion) {
    let mut group = c.benchmark_group("manager_scaling");
    group.sample_size(10);
    let n_requests = 200usize;
    group.throughput(Throughput::Elements(n_requests as u64));

    for workers in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &workers| {
            let hv = Arc::new(Hypervisor::boot(4096, 16).unwrap());
            let mgr = Arc::new(
                VtpmManager::new(
                    Arc::clone(&hv),
                    b"bench-f4",
                    ManagerConfig { charge_virtual_time: false, ..Default::default() },
                )
                .unwrap(),
            );
            let inst = mgr.create_instance().unwrap();
            let startup = Envelope {
                domain: 1,
                instance: inst,
                seq: 1,
                locality: 0,
                tag: None,
                command: vec![0x00, 0xC1, 0, 0, 0, 12, 0, 0, 0, 0x99, 0, 1],
            };
            mgr.handle(DomainId(1), &startup.encode());
            let mut cmd = Vec::new();
            cmd.extend_from_slice(&0x00C1u16.to_be_bytes());
            cmd.extend_from_slice(&14u32.to_be_bytes());
            cmd.extend_from_slice(&tpm::ordinal::PCR_READ.to_be_bytes());
            cmd.extend_from_slice(&0u32.to_be_bytes());
            let server = ManagerServer::new(Arc::clone(&mgr), workers);
            let mut seq = 2u64;
            b.iter(|| {
                let receivers: Vec<_> = (0..n_requests)
                    .map(|_| {
                        seq += 1;
                        let env = Envelope {
                            domain: 1,
                            instance: inst,
                            seq,
                            locality: 0,
                            tag: None,
                            command: cmd.clone(),
                        };
                        server.submit(DomainId(1), env.encode())
                    })
                    .collect();
                for rx in receivers {
                    rx.recv().unwrap();
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_manager);
criterion_main!(benches);
