//! Criterion bench for R-F4: worker-pool request handling throughput,
//! plus a mirror-I/O report: bytes pushed into the Dom0 resident-image
//! mirror per command, split by command class and mirror mode, plus the
//! R-P1 resident-instance sweep: per-command hot-path cost with 100 to
//! 10 000 instances routed through the sharded table.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vtpm::{Envelope, ManagerConfig, ManagerServer, MirrorMode, VtpmManager};
use xen_sim::{DomainId, Hypervisor};

fn pcr_read_cmd() -> Vec<u8> {
    let mut cmd = Vec::new();
    cmd.extend_from_slice(&0x00C1u16.to_be_bytes());
    cmd.extend_from_slice(&14u32.to_be_bytes());
    cmd.extend_from_slice(&tpm::ordinal::PCR_READ.to_be_bytes());
    cmd.extend_from_slice(&0u32.to_be_bytes());
    cmd
}

fn extend_cmd() -> Vec<u8> {
    let mut cmd = Vec::new();
    cmd.extend_from_slice(&0x00C1u16.to_be_bytes());
    cmd.extend_from_slice(&34u32.to_be_bytes());
    cmd.extend_from_slice(&tpm::ordinal::EXTEND.to_be_bytes());
    cmd.extend_from_slice(&3u32.to_be_bytes());
    cmd.extend_from_slice(&[0xA5u8; 20]);
    cmd
}

fn bench_manager(c: &mut Criterion) {
    let mut group = c.benchmark_group("manager_scaling");
    group.sample_size(10);
    let n_requests = 200usize;
    group.throughput(Throughput::Elements(n_requests as u64));

    for workers in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &workers| {
            let hv = Arc::new(Hypervisor::boot(4096, 16).unwrap());
            let mgr = Arc::new(
                VtpmManager::new(
                    Arc::clone(&hv),
                    b"bench-f4",
                    ManagerConfig { charge_virtual_time: false, ..Default::default() },
                )
                .unwrap(),
            );
            let inst = mgr.create_instance().unwrap();
            let startup = Envelope {
                domain: 1,
                instance: inst,
                seq: 1,
                locality: 0,
                tag: None,
                command: vec![0x00, 0xC1, 0, 0, 0, 12, 0, 0, 0, 0x99, 0, 1],
            };
            mgr.handle(DomainId(1), &startup.encode());
            let cmd = pcr_read_cmd();
            let server = ManagerServer::new(Arc::clone(&mgr), workers);
            let mut seq = 2u64;
            b.iter(|| {
                let receivers: Vec<_> = (0..n_requests)
                    .map(|_| {
                        seq += 1;
                        let env = Envelope {
                            domain: 1,
                            instance: inst,
                            seq,
                            locality: 0,
                            tag: None,
                            command: cmd.clone(),
                        };
                        server.submit(DomainId(1), env.encode())
                    })
                    .collect();
                for rx in receivers {
                    rx.recv().unwrap();
                }
            });
        });
    }
    group.finish();
}

/// Not a timing bench: drives the manager with read-only and mutating
/// workloads and reports mirror traffic per command, so the throughput
/// numbers above can be read against the I/O they imply. Read-only
/// commands must show 0 B/cmd (generation-skip), mutating commands only
/// the dirty pages plus the metadata page.
fn report_mirror_io(_c: &mut Criterion) {
    let n = 200u64;
    for (mode_name, mode) in
        [("cleartext", MirrorMode::Cleartext), ("encrypted", MirrorMode::Encrypted)]
    {
        let hv = Arc::new(Hypervisor::boot(4096, 16).unwrap());
        let mgr = VtpmManager::new(
            Arc::clone(&hv),
            b"bench-mirror-io",
            ManagerConfig { mirror_mode: mode, charge_virtual_time: false, ..Default::default() },
        )
        .unwrap();
        let inst = mgr.create_instance().unwrap();
        let mut seq = 0u64;
        let mut send = |cmd: &[u8]| {
            seq += 1;
            let env = Envelope {
                domain: 1,
                instance: inst,
                seq,
                locality: 0,
                tag: None,
                command: cmd.to_vec(),
            };
            mgr.handle(DomainId(1), &env.encode());
        };
        send(&[0x00, 0xC1, 0, 0, 0, 12, 0, 0, 0, 0x99, 0, 1]);

        let read_cmd = pcr_read_cmd();
        let before_reads = mgr.mirror_io_stats();
        for _ in 0..n {
            send(&read_cmd);
        }
        let before_writes = mgr.mirror_io_stats();
        let ext_cmd = extend_cmd();
        for _ in 0..n {
            send(&ext_cmd);
        }
        let after = mgr.mirror_io_stats();

        let read_bytes = before_writes.bytes_written - before_reads.bytes_written;
        let write_bytes = after.bytes_written - before_writes.bytes_written;
        let write_pages = after.data_pages_written - before_writes.data_pages_written;
        eprintln!(
            "manager_scaling/mirror_io/{mode_name}: read-only {:.1} B/cmd, \
             mutating {:.1} B/cmd ({:.2} data pages/cmd) over {n} cmds each",
            read_bytes as f64 / n as f64,
            write_bytes as f64 / n as f64,
            write_pages as f64 / n as f64,
        );
    }
    eprintln!();
}

/// R-P1 shape under Criterion: time `handle` on a fixed active set
/// while the resident-instance count scales. Flat timings across the
/// sweep are the sharded routing table doing its job; see
/// `vtpm_bench::exp::p1` for the gated version with full counters.
fn bench_resident_instances(c: &mut Criterion) {
    let mut group = c.benchmark_group("manager_scaling/resident_instances");
    group.sample_size(10);

    for count in [100usize, 1_000, 10_000] {
        group.bench_with_input(BenchmarkId::new("instances", count), &count, |b, &count| {
            let hv = Arc::new(Hypervisor::boot(count * 8 + 2048, 16).unwrap());
            let mgr = VtpmManager::new(
                Arc::clone(&hv),
                b"bench-p1",
                ManagerConfig {
                    mirror_mode: MirrorMode::Encrypted,
                    charge_virtual_time: false,
                    telemetry_enabled: false,
                    ..Default::default()
                },
            )
            .unwrap();
            let first = mgr.create_instance().unwrap();
            let startup = Envelope {
                domain: 1,
                instance: first,
                seq: 1,
                locality: 0,
                tag: None,
                command: vec![0x00, 0xC1, 0, 0, 0, 12, 0, 0, 0, 0x99, 0, 1],
            };
            mgr.handle(DomainId(1), &startup.encode());
            let state = mgr.export_instance_state(first).unwrap();
            let cfg = mgr.config().vtpm_config.clone();
            for i in 1..count {
                let id = first + i as u32;
                let inst =
                    vtpm::VtpmInstance::from_state(id, &state, &id.to_be_bytes(), cfg.clone())
                        .unwrap();
                mgr.restore_instance(id, inst).unwrap();
            }
            // Fixed active set spread across the id range: the sweep
            // varies residents, not the cache working set.
            let active: Vec<u32> =
                (0..64).map(|i| first + (i * count / 64) as u32).collect();
            let cmd = pcr_read_cmd();
            let mut seq = 1u64;
            let mut j = 0usize;
            b.iter(|| {
                seq += 1;
                j += 1;
                let env = Envelope {
                    domain: 1,
                    instance: active[j % active.len()],
                    seq,
                    locality: 0,
                    tag: None,
                    command: cmd.clone(),
                };
                mgr.handle(DomainId(1), &env.encode())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_manager, report_mirror_io, bench_resident_instances);
criterion_main!(benches);
