//! Criterion bench for R-F5: parallel memory-dump scanning throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use attacks::MemoryDump;
use vtpm::Platform;
use xen_sim::DomainId;

fn bench_dump_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("dump_scan");
    group.sample_size(10);
    for vms in [1usize, 4, 8] {
        let p = Platform::baseline(format!("bench-f5-{vms}").as_bytes()).unwrap();
        for i in 0..vms {
            let mut g = p.launch_guest(&format!("g{i}")).unwrap();
            let mut c = g.client(b"w");
            c.startup_clear().unwrap();
        }
        let dump = MemoryDump::capture(p.manager.hypervisor(), DomainId::DOM0).unwrap();
        group.throughput(Throughput::Bytes(dump.len() as u64));
        let needles: Vec<&[u8]> = vec![b"no-such-needle-a", b"no-such-needle-b"];
        group.bench_with_input(BenchmarkId::new("scan", vms), &vms, |b, _| {
            b.iter(|| std::hint::black_box(dump.scan(&needles)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dump_scan);
criterion_main!(benches);
