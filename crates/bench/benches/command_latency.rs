//! Criterion bench for R-T1: wall-clock latency of each TPM operation on
//! the baseline and improved platforms (one guest, closed loop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vtpm::Platform;
use vtpm_ac::SecurePlatform;
use workload::{GuestSession, Op};

fn bench_command_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("command_latency");
    group.sample_size(10);

    let base = Platform::baseline(b"bench-t1-base").unwrap();
    let guest = base.launch_guest("bench").unwrap();
    let mut base_session = GuestSession::prepare(guest.front, b"bench").unwrap();

    let sp = SecurePlatform::full(b"bench-t1-imp").unwrap();
    let guest = sp.launch_guest("bench").unwrap();
    let mut imp_session = GuestSession::prepare(guest.front, b"bench").unwrap();

    for op in [Op::GetRandom, Op::Extend, Op::Seal, Op::Unseal, Op::Quote] {
        group.bench_with_input(BenchmarkId::new("baseline", op.name()), &op, |b, &op| {
            b.iter(|| base_session.run(op).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("improved", op.name()), &op, |b, &op| {
            b.iter(|| imp_session.run(op).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_command_latency);
criterion_main!(benches);
