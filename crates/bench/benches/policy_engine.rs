//! Criterion bench for R-T3: policy decisions, cached vs uncached, as the
//! rule list grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vtpm_bench::exp::t3::synthetic_engine;

fn bench_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_engine");
    for rules in [10usize, 100, 1000] {
        let engine = synthetic_engine(rules);
        engine.check(1, tpm::ordinal::SEAL); // prime the cache
        group.bench_with_input(BenchmarkId::new("cached", rules), &rules, |b, _| {
            b.iter(|| std::hint::black_box(engine.check(1, tpm::ordinal::SEAL)))
        });
        group.bench_with_input(BenchmarkId::new("uncached", rules), &rules, |b, _| {
            b.iter(|| std::hint::black_box(engine.check_uncached(1, tpm::ordinal::SEAL)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policy);
criterion_main!(benches);
