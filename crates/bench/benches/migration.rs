//! Criterion bench for R-F3: clear vs sealed migration package
//! construction + opening at a fixed state size.

use criterion::{criterion_group, criterion_main, Criterion};
use tpm_crypto::{Drbg, RsaPrivateKey};
use vtpm::migration::{open_package, package_clear, package_sealed};

fn bench_migration(c: &mut Criterion) {
    let mut group = c.benchmark_group("migration");
    let mut rng = Drbg::new(b"bench-f3");
    let dst_ek = RsaPrivateKey::generate(1024, &mut rng);
    let state = rng.bytes(16 * 1024);

    group.bench_function("package_clear", |b| {
        b.iter(|| std::hint::black_box(package_clear(&state)))
    });
    group.bench_function("package_sealed", |b| {
        b.iter(|| std::hint::black_box(package_sealed(&state, &dst_ek.public, &mut rng)))
    });
    let sealed = package_sealed(&state, &dst_ek.public, &mut rng);
    group.bench_function("open_sealed", |b| {
        b.iter(|| std::hint::black_box(open_package(&sealed, &dst_ek).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_migration);
criterion_main!(benches);
