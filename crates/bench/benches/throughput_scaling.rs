//! Criterion bench for R-F1: a fixed light workload across N concurrent
//! guests; throughput = ops / measured time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vtpm::{Guest, Platform};
use workload::{run_concurrent, CommandMix};

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput_scaling");
    group.sample_size(10);
    for vms in [1usize, 2, 4] {
        let ops = 10usize;
        group.throughput(Throughput::Elements((vms * ops) as u64));
        group.bench_with_input(BenchmarkId::new("baseline", vms), &vms, |b, &vms| {
            b.iter_with_setup(
                || {
                    let p = Platform::baseline(format!("bench-f1-{vms}").as_bytes()).unwrap();
                    let guests: Vec<Guest> =
                        (0..vms).map(|i| p.launch_guest(&format!("g{i}")).unwrap()).collect();
                    (p, guests)
                },
                |(p, guests)| {
                    let r = run_concurrent(&p.hv, guests, &CommandMix::light(), ops, b"bench");
                    assert_eq!(r.errors, 0);
                },
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
