//! RSA for the TPM 1.2 emulator: key generation (Miller–Rabin), CRT
//! private operations, OAEP encryption padding (the TPM_ES_RSAESOAEP_SHA1_MGF1
//! scheme) and PKCS#1 v1.5 signature padding (TPM_SS_RSASSAPKCS1v15_SHA1).
//!
//! This is a reproduction-grade implementation: correct and test-vectored,
//! but not hardened against local side channels beyond constant-time MAC
//! comparison (the simulated attacker model here is memory disclosure, not
//! power analysis).

use crate::bignum::BigUint;
use crate::drbg::Drbg;
use crate::hash::sha1;

/// Public exponent used throughout (F4).
pub const E: u64 = 65537;

/// An RSA public key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RsaPublicKey {
    /// Modulus n = p*q.
    pub n: BigUint,
    /// Public exponent.
    pub e: BigUint,
}

/// An RSA private key with CRT components.
#[derive(Clone, Debug)]
pub struct RsaPrivateKey {
    /// The matching public key.
    pub public: RsaPublicKey,
    /// Private exponent d = e^{-1} mod lcm(p-1, q-1).
    pub d: BigUint,
    /// First prime.
    pub p: BigUint,
    /// Second prime.
    pub q: BigUint,
    /// d mod (p-1).
    pub dp: BigUint,
    /// d mod (q-1).
    pub dq: BigUint,
    /// q^{-1} mod p.
    pub qinv: BigUint,
}

/// Errors from RSA padding/size validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsaError {
    /// Message too long for the key/padding combination.
    MessageTooLong,
    /// Ciphertext or signature length does not match the modulus.
    BadLength,
    /// Padding check failed on decryption or verification.
    BadPadding,
}

impl std::fmt::Display for RsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsaError::MessageTooLong => write!(f, "message too long for RSA key"),
            RsaError::BadLength => write!(f, "input length does not match modulus"),
            RsaError::BadPadding => write!(f, "RSA padding check failed"),
        }
    }
}

impl std::error::Error for RsaError {}

impl RsaPublicKey {
    /// Modulus size in bytes.
    pub fn size(&self) -> usize {
        self.n.to_bytes_be().len()
    }

    /// Raw public operation m^e mod n.
    pub fn raw(&self, m: &BigUint) -> BigUint {
        m.mod_pow(&self.e, &self.n)
    }

    /// OAEP-SHA1 encrypt (TPM_ES_RSAESOAEP_SHA1_MGF1). `label` is the OAEP
    /// encoding parameter — the TPM uses the ASCII bytes "TCPA".
    pub fn encrypt_oaep(
        &self,
        msg: &[u8],
        label: &[u8],
        rng: &mut Drbg,
    ) -> Result<Vec<u8>, RsaError> {
        let k = self.size();
        let h_len = 20;
        if msg.len() + 2 * h_len + 2 > k {
            return Err(RsaError::MessageTooLong);
        }
        // EM = 0x00 || maskedSeed || maskedDB
        let l_hash = sha1(label);
        let mut db = vec![0u8; k - h_len - 1];
        db[..h_len].copy_from_slice(&l_hash);
        let msg_start = db.len() - msg.len();
        db[msg_start - 1] = 0x01;
        db[msg_start..].copy_from_slice(msg);

        let seed = rng.bytes(h_len);
        let db_mask = mgf1(&seed, db.len());
        for (b, m) in db.iter_mut().zip(&db_mask) {
            *b ^= m;
        }
        let seed_mask = mgf1(&db, h_len);
        let masked_seed: Vec<u8> = seed.iter().zip(&seed_mask).map(|(s, m)| s ^ m).collect();

        let mut em = Vec::with_capacity(k);
        em.push(0);
        em.extend_from_slice(&masked_seed);
        em.extend_from_slice(&db);
        let c = self.raw(&BigUint::from_bytes_be(&em));
        Ok(c.to_bytes_be_padded(k).expect("ciphertext fits modulus"))
    }

    /// Verify a PKCS#1 v1.5 SHA-1 signature over `msg`.
    pub fn verify_pkcs1_sha1(&self, msg: &[u8], sig: &[u8]) -> Result<(), RsaError> {
        let k = self.size();
        if sig.len() != k {
            return Err(RsaError::BadLength);
        }
        let em = self
            .raw(&BigUint::from_bytes_be(sig))
            .to_bytes_be_padded(k)
            .ok_or(RsaError::BadPadding)?;
        let expected = pkcs1_sha1_encode(msg, k)?;
        if crate::hmac::ct_eq(&em, &expected) {
            Ok(())
        } else {
            Err(RsaError::BadPadding)
        }
    }
}

impl RsaPrivateKey {
    /// Generate a key with a modulus of `bits` bits (must be even, >= 512).
    pub fn generate(bits: usize, rng: &mut Drbg) -> Self {
        assert!(bits >= 512 && bits.is_multiple_of(2), "unsupported RSA size {bits}");
        let e = BigUint::from_u64(E);
        loop {
            let p = gen_prime(bits / 2, rng);
            let q = gen_prime(bits / 2, rng);
            if p == q {
                continue;
            }
            let one = BigUint::one();
            let p1 = p.sub(&one);
            let q1 = q.sub(&one);
            let phi = p1.mul(&q1);
            if !phi.gcd(&e).is_one() {
                continue;
            }
            let n = p.mul(&q);
            if n.bits() != bits {
                continue;
            }
            let d = e.mod_inverse(&phi).expect("e invertible mod phi");
            let dp = d.rem(&p1);
            let dq = d.rem(&q1);
            let qinv = q.mod_inverse(&p).expect("q invertible mod p");
            return RsaPrivateKey {
                public: RsaPublicKey { n, e },
                d,
                p,
                q,
                dp,
                dq,
                qinv,
            };
        }
    }

    /// Raw private operation c^d mod n via CRT.
    ///
    /// Computes the two half-size exponentiations `m1 = c^dp mod p` and
    /// `m2 = c^dq mod q`, then recombines with Garner's formula
    /// `m = m2 + q * (qinv * (m1 - m2) mod p)`, which is exact (no final
    /// reduction mod n needed) because `m < q*p = n`. Each half-size
    /// exponentiation costs ~1/4 of a full one, so CRT is ~4x faster
    /// than [`raw_schoolbook`](Self::raw_schoolbook) before the
    /// Montgomery/window wins even start.
    pub fn raw(&self, c: &BigUint) -> BigUint {
        let m1 = c.rem(&self.p).mod_pow(&self.dp, &self.p);
        let m2 = c.rem(&self.q).mod_pow(&self.dq, &self.q);
        // h = qinv * (m1 - m2) mod p
        let h = self.qinv.mul_mod(&m1.sub_mod(&m2.rem(&self.p), &self.p), &self.p);
        m2.add(&self.q.mul(&h))
    }

    /// Raw private operation `c^d mod n` without CRT or Montgomery —
    /// plain square-and-multiply over mul-then-divide arithmetic.
    ///
    /// This is the differential reference for the fast path: slow but
    /// obviously correct, sharing no code with the Montgomery engine or
    /// the CRT recombination. Tests assert [`raw`](Self::raw) matches it
    /// byte for byte; `repro c1` uses it as the speedup baseline.
    pub fn raw_schoolbook(&self, c: &BigUint) -> BigUint {
        c.mod_pow_schoolbook(&self.d, &self.public.n)
    }

    /// OAEP-SHA1 decrypt.
    pub fn decrypt_oaep(&self, cipher: &[u8], label: &[u8]) -> Result<Vec<u8>, RsaError> {
        let k = self.public.size();
        if cipher.len() != k {
            return Err(RsaError::BadLength);
        }
        let h_len = 20;
        if k < 2 * h_len + 2 {
            return Err(RsaError::BadLength);
        }
        let em = self
            .raw(&BigUint::from_bytes_be(cipher))
            .to_bytes_be_padded(k)
            .ok_or(RsaError::BadPadding)?;
        if em[0] != 0 {
            return Err(RsaError::BadPadding);
        }
        let masked_seed = &em[1..1 + h_len];
        let masked_db = &em[1 + h_len..];
        let seed_mask = mgf1(masked_db, h_len);
        let seed: Vec<u8> = masked_seed.iter().zip(&seed_mask).map(|(s, m)| s ^ m).collect();
        let db_mask = mgf1(&seed, masked_db.len());
        let db: Vec<u8> = masked_db.iter().zip(&db_mask).map(|(b, m)| b ^ m).collect();

        let l_hash = sha1(label);
        if !crate::hmac::ct_eq(&db[..h_len], &l_hash) {
            return Err(RsaError::BadPadding);
        }
        // Find the 0x01 separator after the zero run.
        let mut idx = h_len;
        while idx < db.len() && db[idx] == 0 {
            idx += 1;
        }
        if idx >= db.len() || db[idx] != 0x01 {
            return Err(RsaError::BadPadding);
        }
        Ok(db[idx + 1..].to_vec())
    }

    /// PKCS#1 v1.5 SHA-1 signature over `msg`.
    pub fn sign_pkcs1_sha1(&self, msg: &[u8]) -> Result<Vec<u8>, RsaError> {
        let k = self.public.size();
        let em = pkcs1_sha1_encode(msg, k)?;
        let s = self.raw(&BigUint::from_bytes_be(&em));
        Ok(s.to_bytes_be_padded(k).expect("signature fits modulus"))
    }
}

/// PKCS#1 v1.5 EMSA encoding with the SHA-1 DigestInfo prefix.
fn pkcs1_sha1_encode(msg: &[u8], k: usize) -> Result<Vec<u8>, RsaError> {
    // DigestInfo ::= SEQUENCE { AlgorithmIdentifier sha1, OCTET STRING hash }
    const PREFIX: [u8; 15] = [
        0x30, 0x21, 0x30, 0x09, 0x06, 0x05, 0x2b, 0x0e, 0x03, 0x02, 0x1a, 0x05, 0x00, 0x04,
        0x14,
    ];
    let t_len = PREFIX.len() + 20;
    if k < t_len + 11 {
        return Err(RsaError::MessageTooLong);
    }
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    em.resize(k - t_len - 1, 0xff);
    em.push(0x00);
    em.extend_from_slice(&PREFIX);
    em.extend_from_slice(&sha1(msg));
    Ok(em)
}

/// MGF1 with SHA-1 (PKCS#1 §B.2.1).
fn mgf1(seed: &[u8], len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len + 20);
    let mut counter = 0u32;
    while out.len() < len {
        let mut input = Vec::with_capacity(seed.len() + 4);
        input.extend_from_slice(seed);
        input.extend_from_slice(&counter.to_be_bytes());
        out.extend_from_slice(&sha1(&input));
        counter += 1;
    }
    out.truncate(len);
    out
}

/// Generate a probable prime of exactly `bits` bits.
fn gen_prime(bits: usize, rng: &mut Drbg) -> BigUint {
    loop {
        let mut candidate = random_bits(bits, rng);
        // Force top bit (exact size) and low bit (odd).
        candidate.set_bit(bits - 1);
        candidate.set_bit(0);
        // Quick trial division before Miller–Rabin.
        if SMALL_PRIMES.iter().any(|&sp| {
            candidate.rem(&BigUint::from_u64(sp)).is_zero()
                && candidate != BigUint::from_u64(sp)
        }) {
            continue;
        }
        if miller_rabin(&candidate, 20, rng) {
            return candidate;
        }
    }
}

const SMALL_PRIMES: [u64; 30] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83,
    89, 97, 101, 103, 107, 109, 113,
];

/// Uniform value with at most `bits` bits.
fn random_bits(bits: usize, rng: &mut Drbg) -> BigUint {
    if bits == 0 {
        return BigUint::zero();
    }
    let nbytes = bits.div_ceil(8);
    let mut bytes = rng.bytes(nbytes);
    let excess = nbytes * 8 - bits;
    bytes[0] &= 0xffu8 >> excess;
    BigUint::from_bytes_be(&bytes)
}

/// Uniform value in `[low, high)` (both > 0, low < high).
fn random_range(low: &BigUint, high: &BigUint, rng: &mut Drbg) -> BigUint {
    let span = high.sub(low);
    let bits = span.bits();
    loop {
        let r = random_bits(bits, rng);
        if r < span {
            return low.add(&r);
        }
    }
}

/// Miller–Rabin probabilistic primality test with `rounds` random bases.
pub fn miller_rabin(n: &BigUint, rounds: usize, rng: &mut Drbg) -> bool {
    let one = BigUint::one();
    let two = BigUint::from_u64(2);
    if n < &two {
        return false;
    }
    if n == &two || n == &BigUint::from_u64(3) {
        return true;
    }
    if n.is_even() {
        return false;
    }
    // n - 1 = d * 2^s with d odd.
    let n1 = n.sub(&one);
    let mut d = n1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr(1);
        s += 1;
    }
    'witness: for _ in 0..rounds {
        let a = random_range(&two, &n1, rng);
        let mut x = a.mod_pow(&d, n);
        if x == one || x == n1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = x.mul_mod(&x, n);
            if x == n1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_key() -> RsaPrivateKey {
        // 512-bit keys keep the test suite fast; correctness is size-independent.
        let mut rng = Drbg::new(b"rsa-test-key");
        RsaPrivateKey::generate(512, &mut rng)
    }

    #[test]
    fn miller_rabin_knowns() {
        let mut rng = Drbg::new(b"mr");
        for p in [2u64, 3, 5, 7, 97, 65537, 2147483647] {
            assert!(miller_rabin(&BigUint::from_u64(p), 16, &mut rng), "{p} is prime");
        }
        for c in [0u64, 1, 4, 9, 15, 561, 41041, 65536, 2147483649] {
            assert!(!miller_rabin(&BigUint::from_u64(c), 16, &mut rng), "{c} is composite");
        }
    }

    #[test]
    fn miller_rabin_large_prime() {
        let mut rng = Drbg::new(b"mr2");
        // 2^127 - 1 (Mersenne prime)
        let p = BigUint::one().shl(127).sub(&BigUint::one());
        assert!(miller_rabin(&p, 16, &mut rng));
        // 2^128 - 1 is composite.
        let c = BigUint::one().shl(128).sub(&BigUint::one());
        assert!(!miller_rabin(&c, 16, &mut rng));
    }

    #[test]
    fn keygen_produces_consistent_crt() {
        let key = test_key();
        assert_eq!(key.p.mul(&key.q), key.public.n);
        assert_eq!(key.public.n.bits(), 512);
        // d*e = 1 mod (p-1)(q-1)
        let phi = key.p.sub(&BigUint::one()).mul(&key.q.sub(&BigUint::one()));
        assert!(key.d.mul_mod(&key.public.e, &phi).is_one());
    }

    #[test]
    fn raw_roundtrip() {
        let key = test_key();
        let m = BigUint::from_u64(0x1234_5678_9abc_def0);
        let c = key.public.raw(&m);
        assert_eq!(key.raw(&c), m);
    }

    #[test]
    fn oaep_roundtrip() {
        let key = test_key();
        let mut rng = Drbg::new(b"oaep");
        // 512-bit OAEP fits at most k - 2*20 - 2 = 22 bytes; an AES key fits.
        let msg = b"vtpm-master-key!";
        let c = key.public.encrypt_oaep(msg, b"TCPA", &mut rng).unwrap();
        assert_eq!(c.len(), key.public.size());
        let p = key.decrypt_oaep(&c, b"TCPA").unwrap();
        assert_eq!(p, msg);
    }

    #[test]
    fn oaep_randomized() {
        let key = test_key();
        let mut rng = Drbg::new(b"oaep-rand");
        let c1 = key.public.encrypt_oaep(b"m", b"TCPA", &mut rng).unwrap();
        let c2 = key.public.encrypt_oaep(b"m", b"TCPA", &mut rng).unwrap();
        assert_ne!(c1, c2, "OAEP must be randomized");
    }

    #[test]
    fn oaep_wrong_label_rejected() {
        let key = test_key();
        let mut rng = Drbg::new(b"oaep-label");
        let c = key.public.encrypt_oaep(b"secret", b"TCPA", &mut rng).unwrap();
        assert_eq!(key.decrypt_oaep(&c, b"WRONG"), Err(RsaError::BadPadding));
    }

    #[test]
    fn oaep_tampered_ciphertext_rejected() {
        let key = test_key();
        let mut rng = Drbg::new(b"oaep-tamper");
        let mut c = key.public.encrypt_oaep(b"secret", b"TCPA", &mut rng).unwrap();
        c[10] ^= 0xff;
        assert!(key.decrypt_oaep(&c, b"TCPA").is_err());
    }

    #[test]
    fn oaep_message_too_long() {
        let key = test_key();
        let mut rng = Drbg::new(b"oaep-long");
        let too_long = vec![0u8; key.public.size() - 2 * 20 - 1];
        assert_eq!(
            key.public.encrypt_oaep(&too_long, b"TCPA", &mut rng),
            Err(RsaError::MessageTooLong)
        );
        // Exactly the limit works.
        let max = vec![7u8; key.public.size() - 2 * 20 - 2];
        let c = key.public.encrypt_oaep(&max, b"TCPA", &mut rng).unwrap();
        assert_eq!(key.decrypt_oaep(&c, b"TCPA").unwrap(), max);
    }

    #[test]
    fn sign_verify_roundtrip() {
        let key = test_key();
        let sig = key.sign_pkcs1_sha1(b"quote data").unwrap();
        assert!(key.public.verify_pkcs1_sha1(b"quote data", &sig).is_ok());
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let key = test_key();
        let sig = key.sign_pkcs1_sha1(b"quote data").unwrap();
        assert_eq!(
            key.public.verify_pkcs1_sha1(b"other data", &sig),
            Err(RsaError::BadPadding)
        );
    }

    #[test]
    fn verify_rejects_tampered_signature() {
        let key = test_key();
        let mut sig = key.sign_pkcs1_sha1(b"quote data").unwrap();
        sig[0] ^= 1;
        assert!(key.public.verify_pkcs1_sha1(b"quote data", &sig).is_err());
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let key = test_key();
        let mut rng = Drbg::new(b"other-key");
        let other = RsaPrivateKey::generate(512, &mut rng);
        let sig = key.sign_pkcs1_sha1(b"msg").unwrap();
        assert!(other.public.verify_pkcs1_sha1(b"msg", &sig).is_err());
    }

    #[test]
    fn keygen_deterministic_from_seed() {
        let mut r1 = Drbg::new(b"det");
        let mut r2 = Drbg::new(b"det");
        let k1 = RsaPrivateKey::generate(512, &mut r1);
        let k2 = RsaPrivateKey::generate(512, &mut r2);
        assert_eq!(k1.public, k2.public);
    }

    #[test]
    fn mgf1_known_properties() {
        let m = mgf1(b"seed", 45);
        assert_eq!(m.len(), 45);
        // Prefix property: longer output extends shorter output.
        let m2 = mgf1(b"seed", 20);
        assert_eq!(&m[..20], &m2[..]);
    }
}
