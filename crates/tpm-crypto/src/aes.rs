//! AES-128 block cipher (FIPS 197) and CTR-mode keystream.
//!
//! Used by the paper's AC3 mechanism to keep vTPM instance state encrypted
//! in memory, and by the vTPM manager to persist instance state. Only the
//! forward (encrypt) direction is needed because CTR decryption is
//! encryption of the counter stream.

/// AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab,
    0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4,
    0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71,
    0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6,
    0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb,
    0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45,
    0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44,
    0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a,
    0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
    0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25,
    0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e,
    0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1,
    0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb,
    0x16,
];

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Multiply by x in GF(2^8) modulo the AES polynomial.
#[inline]
fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

/// AES-128 with a precomputed key schedule.
#[derive(Clone)]
pub struct Aes128 {
    /// 11 round keys of 16 bytes each.
    round_keys: [[u8; 16]; 11],
}

impl Aes128 {
    /// Expand a 16-byte key.
    pub fn new(key: &[u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i].copy_from_slice(&key[i * 4..i * 4 + 4]);
        }
        for i in 4..44 {
            let mut t = w[i - 1];
            if i % 4 == 0 {
                t.rotate_left(1);
                for b in &mut t {
                    *b = SBOX[*b as usize];
                }
                t[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ t[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
            }
        }
        Aes128 { round_keys }
    }

    /// Encrypt one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[10]);
    }
}

#[inline]
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

/// State layout is column-major: byte (row r, col c) is `state[c*4 + r]`.
#[inline]
fn shift_rows(state: &mut [u8; 16]) {
    // Row 1: shift left by 1.
    let t = state[1];
    state[1] = state[5];
    state[5] = state[9];
    state[9] = state[13];
    state[13] = t;
    // Row 2: shift left by 2.
    state.swap(2, 10);
    state.swap(6, 14);
    // Row 3: shift left by 3 (= right by 1).
    let t = state[15];
    state[15] = state[11];
    state[11] = state[7];
    state[7] = state[3];
    state[3] = t;
}

#[inline]
fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = &mut state[c * 4..c * 4 + 4];
        let (a0, a1, a2, a3) = (col[0], col[1], col[2], col[3]);
        let all = a0 ^ a1 ^ a2 ^ a3;
        col[0] = a0 ^ all ^ xtime(a0 ^ a1);
        col[1] = a1 ^ all ^ xtime(a1 ^ a2);
        col[2] = a2 ^ all ^ xtime(a2 ^ a3);
        col[3] = a3 ^ all ^ xtime(a3 ^ a0);
    }
}

/// CTR mode over AES-128. Encryption and decryption are the same operation.
pub struct AesCtr {
    cipher: Aes128,
    nonce: [u8; 8],
}

impl AesCtr {
    /// Create a CTR context with an 8-byte nonce; the remaining 8 bytes of
    /// the counter block hold the big-endian block index.
    pub fn new(key: &[u8; 16], nonce: [u8; 8]) -> Self {
        AesCtr { cipher: Aes128::new(key), nonce }
    }

    /// XOR the keystream (starting at block `start_block`) into `data`.
    pub fn apply_keystream_at(&self, data: &mut [u8], start_block: u64) {
        let mut counter_block = [0u8; 16];
        counter_block[..8].copy_from_slice(&self.nonce);
        for (i, chunk) in data.chunks_mut(16).enumerate() {
            let ctr = start_block.wrapping_add(i as u64);
            counter_block[8..].copy_from_slice(&ctr.to_be_bytes());
            let mut ks = counter_block;
            self.cipher.encrypt_block(&mut ks);
            for (d, k) in chunk.iter_mut().zip(ks.iter()) {
                *d ^= k;
            }
        }
    }

    /// XOR the keystream into `data` starting at block 0.
    pub fn apply_keystream(&self, data: &mut [u8]) {
        self.apply_keystream_at(data, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn fips197_appendix_b() {
        let key: [u8; 16] = unhex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let mut block: [u8; 16] =
            unhex("3243f6a8885a308d313198a2e0370734").try_into().unwrap();
        Aes128::new(&key).encrypt_block(&mut block);
        assert_eq!(hex(&block), "3925841d02dc09fbdc118597196a0b32");
    }

    #[test]
    fn fips197_appendix_c1() {
        let key: [u8; 16] = unhex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let mut block: [u8; 16] =
            unhex("00112233445566778899aabbccddeeff").try_into().unwrap();
        Aes128::new(&key).encrypt_block(&mut block);
        assert_eq!(hex(&block), "69c4e0d86a7b0430d8cdb78070b4c55a");
    }

    #[test]
    fn ctr_roundtrip() {
        let key = [7u8; 16];
        let ctr = AesCtr::new(&key, *b"noncenon");
        let plain: Vec<u8> = (0..100u8).collect();
        let mut data = plain.clone();
        ctr.apply_keystream(&mut data);
        assert_ne!(data, plain);
        ctr.apply_keystream(&mut data);
        assert_eq!(data, plain);
    }

    #[test]
    fn ctr_seek_matches_stream() {
        // Applying the keystream from block 2 must equal the tail of a
        // from-zero application.
        let key = [9u8; 16];
        let ctr = AesCtr::new(&key, [1, 2, 3, 4, 5, 6, 7, 8]);
        let mut full = vec![0u8; 64];
        ctr.apply_keystream(&mut full);
        let mut tail = vec![0u8; 32];
        ctr.apply_keystream_at(&mut tail, 2);
        assert_eq!(&full[32..], &tail[..]);
    }

    #[test]
    fn ctr_distinct_nonces_distinct_streams() {
        let key = [3u8; 16];
        let mut a = vec![0u8; 16];
        let mut b = vec![0u8; 16];
        AesCtr::new(&key, [0; 8]).apply_keystream(&mut a);
        AesCtr::new(&key, [1, 0, 0, 0, 0, 0, 0, 0]).apply_keystream(&mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn ctr_partial_block() {
        let key = [5u8; 16];
        let ctr = AesCtr::new(&key, [0; 8]);
        let mut data = vec![0xAAu8; 7];
        ctr.apply_keystream(&mut data);
        ctr.apply_keystream(&mut data);
        assert_eq!(data, vec![0xAAu8; 7]);
    }
}
