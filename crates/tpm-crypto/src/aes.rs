//! AES-128/256 block cipher (FIPS 197) and CTR-mode keystream.
//!
//! Used by the paper's AC3 mechanism to keep vTPM instance state encrypted
//! in memory, and by the vTPM manager to persist instance state. Only the
//! forward (encrypt) direction is needed because CTR decryption is
//! encryption of the counter stream.
//!
//! Two implementations of the round function coexist:
//!
//! * the **T-table path** (the default): SubBytes+ShiftRows+MixColumns
//!   fused into four 256-entry u32 tables generated at compile time, one
//!   XOR-chain per state column per round. CTR mode drives it four
//!   blocks at a time ([`Aes128::ctr_xor_at`]) so the four independent
//!   lookup chains overlap in the pipeline;
//! * the **scalar path** ([`Aes128::encrypt_block_scalar`]): the
//!   original byte-at-a-time SubBytes/ShiftRows/MixColumns rounds,
//!   retained verbatim as the differential reference the KAT and
//!   property tests compare against.
//!
//! Both paths share one key schedule, expanded once per key ([`Aes128`] /
//! [`Aes256`] are cheap to clone and cache — see `vtpm::mirror`, which
//! reuses the master-key schedule across every page of a snapshot).
//! T-table lookups are data-dependent loads; see the crate docs for the
//! cache-timing model this codebase accepts.

/// AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab,
    0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4,
    0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71,
    0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6,
    0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb,
    0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45,
    0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44,
    0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a,
    0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
    0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25,
    0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e,
    0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1,
    0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb,
    0x16,
];

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Multiply by x in GF(2^8) modulo the AES polynomial.
#[inline]
const fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

/// T-table 0: `TE0[x]` packs the MixColumns column `(2·S(x), S(x), S(x),
/// 3·S(x))` as a big-endian word, so one lookup performs SubBytes and the
/// x-contribution of MixColumns for a whole column. TE1..TE3 are byte
/// rotations of TE0 matching the other three MixColumns rows.
const fn make_te0() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let s = SBOX[i];
        let s2 = xtime(s);
        let s3 = s2 ^ s;
        t[i] = ((s2 as u32) << 24) | ((s as u32) << 16) | ((s as u32) << 8) | (s3 as u32);
        i += 1;
    }
    t
}

const fn rotate_table(src: &[u32; 256], bits: u32) -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        t[i] = src[i].rotate_right(bits);
        i += 1;
    }
    t
}

const TE0: [u32; 256] = make_te0();
const TE1: [u32; 256] = rotate_table(&TE0, 8);
const TE2: [u32; 256] = rotate_table(&TE0, 16);
const TE3: [u32; 256] = rotate_table(&TE0, 24);

/// One full T-table round for a single column. The column's row-r byte
/// comes from input column `c + r` (ShiftRows), MSB is row 0.
macro_rules! te_col {
    ($a:expr, $b:expr, $c:expr, $d:expr) => {
        TE0[($a >> 24) as usize]
            ^ TE1[(($b >> 16) & 0xff) as usize]
            ^ TE2[(($c >> 8) & 0xff) as usize]
            ^ TE3[($d & 0xff) as usize]
    };
}

/// Final round (no MixColumns) for a single column: plain S-box bytes.
macro_rules! sbox_col {
    ($a:expr, $b:expr, $c:expr, $d:expr) => {
        ((SBOX[($a >> 24) as usize] as u32) << 24)
            ^ ((SBOX[(($b >> 16) & 0xff) as usize] as u32) << 16)
            ^ ((SBOX[(($c >> 8) & 0xff) as usize] as u32) << 8)
            ^ (SBOX[($d & 0xff) as usize] as u32)
    };
}

/// T-table encryption of one block. `rk` is the word-form key schedule:
/// `4 * (rounds + 1)` big-endian words.
#[inline]
fn encrypt_one(rk: &[u32], block: &mut [u8; 16]) {
    let nr = rk.len() / 4 - 1;
    let mut c0 = u32::from_be_bytes(block[0..4].try_into().unwrap()) ^ rk[0];
    let mut c1 = u32::from_be_bytes(block[4..8].try_into().unwrap()) ^ rk[1];
    let mut c2 = u32::from_be_bytes(block[8..12].try_into().unwrap()) ^ rk[2];
    let mut c3 = u32::from_be_bytes(block[12..16].try_into().unwrap()) ^ rk[3];
    for r in 1..nr {
        let t0 = te_col!(c0, c1, c2, c3) ^ rk[4 * r];
        let t1 = te_col!(c1, c2, c3, c0) ^ rk[4 * r + 1];
        let t2 = te_col!(c2, c3, c0, c1) ^ rk[4 * r + 2];
        let t3 = te_col!(c3, c0, c1, c2) ^ rk[4 * r + 3];
        c0 = t0;
        c1 = t1;
        c2 = t2;
        c3 = t3;
    }
    let t0 = sbox_col!(c0, c1, c2, c3) ^ rk[4 * nr];
    let t1 = sbox_col!(c1, c2, c3, c0) ^ rk[4 * nr + 1];
    let t2 = sbox_col!(c2, c3, c0, c1) ^ rk[4 * nr + 2];
    let t3 = sbox_col!(c3, c0, c1, c2) ^ rk[4 * nr + 3];
    block[0..4].copy_from_slice(&t0.to_be_bytes());
    block[4..8].copy_from_slice(&t1.to_be_bytes());
    block[8..12].copy_from_slice(&t2.to_be_bytes());
    block[12..16].copy_from_slice(&t3.to_be_bytes());
}

/// T-table encryption of four independent blocks, rounds interleaved so
/// the four dependent lookup chains overlap in the pipeline. This is the
/// CTR fast path: counter blocks are independent by construction.
#[inline]
fn encrypt_four(rk: &[u32], blocks: &mut [[u8; 16]; 4]) {
    let nr = rk.len() / 4 - 1;
    let mut s = [[0u32; 4]; 4];
    for (b, block) in blocks.iter().enumerate() {
        for c in 0..4 {
            s[b][c] =
                u32::from_be_bytes(block[c * 4..c * 4 + 4].try_into().unwrap()) ^ rk[c];
        }
    }
    for r in 1..nr {
        for state in s.iter_mut() {
            let [c0, c1, c2, c3] = *state;
            state[0] = te_col!(c0, c1, c2, c3) ^ rk[4 * r];
            state[1] = te_col!(c1, c2, c3, c0) ^ rk[4 * r + 1];
            state[2] = te_col!(c2, c3, c0, c1) ^ rk[4 * r + 2];
            state[3] = te_col!(c3, c0, c1, c2) ^ rk[4 * r + 3];
        }
    }
    for (b, block) in blocks.iter_mut().enumerate() {
        let [c0, c1, c2, c3] = s[b];
        let t0 = sbox_col!(c0, c1, c2, c3) ^ rk[4 * nr];
        let t1 = sbox_col!(c1, c2, c3, c0) ^ rk[4 * nr + 1];
        let t2 = sbox_col!(c2, c3, c0, c1) ^ rk[4 * nr + 2];
        let t3 = sbox_col!(c3, c0, c1, c2) ^ rk[4 * nr + 3];
        block[0..4].copy_from_slice(&t0.to_be_bytes());
        block[4..8].copy_from_slice(&t1.to_be_bytes());
        block[8..12].copy_from_slice(&t2.to_be_bytes());
        block[12..16].copy_from_slice(&t3.to_be_bytes());
    }
}

/// CTR keystream XOR over a word-form key schedule: 8-byte nonce, 64-bit
/// big-endian block counter, four blocks per batch through
/// [`encrypt_four`], scalar tail for the remainder.
fn ctr_xor(rk: &[u32], nonce: &[u8; 8], data: &mut [u8], start_block: u64) {
    let mut chunks = data.chunks_exact_mut(64);
    let mut block_idx = start_block;
    for chunk in &mut chunks {
        let mut ks = [[0u8; 16]; 4];
        for (i, blk) in ks.iter_mut().enumerate() {
            blk[..8].copy_from_slice(nonce);
            blk[8..].copy_from_slice(&block_idx.wrapping_add(i as u64).to_be_bytes());
        }
        encrypt_four(rk, &mut ks);
        for (i, blk) in ks.iter().enumerate() {
            for (d, k) in chunk[i * 16..(i + 1) * 16].iter_mut().zip(blk.iter()) {
                *d ^= k;
            }
        }
        block_idx = block_idx.wrapping_add(4);
    }
    for chunk in chunks.into_remainder().chunks_mut(16) {
        let mut ks = [0u8; 16];
        ks[..8].copy_from_slice(nonce);
        ks[8..].copy_from_slice(&block_idx.to_be_bytes());
        encrypt_one(rk, &mut ks);
        for (d, k) in chunk.iter_mut().zip(ks.iter()) {
            *d ^= k;
        }
        block_idx = block_idx.wrapping_add(1);
    }
}

/// AES-128 with a precomputed key schedule.
#[derive(Clone)]
pub struct Aes128 {
    /// 11 round keys of 16 bytes each (scalar reference path).
    round_keys: [[u8; 16]; 11],
    /// The same schedule as 44 big-endian words (T-table path).
    rk: [u32; 44],
}

impl Aes128 {
    /// Expand a 16-byte key.
    pub fn new(key: &[u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i].copy_from_slice(&key[i * 4..i * 4 + 4]);
        }
        for i in 4..44 {
            let mut t = w[i - 1];
            if i % 4 == 0 {
                t.rotate_left(1);
                for b in &mut t {
                    *b = SBOX[*b as usize];
                }
                t[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ t[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rkb) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rkb[c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
            }
        }
        let mut rk = [0u32; 44];
        for (i, word) in w.iter().enumerate() {
            rk[i] = u32::from_be_bytes(*word);
        }
        Aes128 { round_keys, rk }
    }

    /// Encrypt one 16-byte block in place (T-table path).
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        encrypt_one(&self.rk, block);
    }

    /// Encrypt one block with the original byte-wise rounds. Retained as
    /// the differential reference; tests assert it matches
    /// [`encrypt_block`](Self::encrypt_block) on every input they try.
    pub fn encrypt_block_scalar(&self, block: &mut [u8; 16]) {
        encrypt_scalar(&self.round_keys, block);
    }

    /// Encrypt four independent blocks with interleaved rounds.
    pub fn encrypt4(&self, blocks: &mut [[u8; 16]; 4]) {
        encrypt_four(&self.rk, blocks);
    }

    /// XOR the CTR keystream (8-byte `nonce`, block counter starting at
    /// `start_block`) into `data`, four blocks per batch. This is the
    /// schedule-cached fast path: one `Aes128` can stream any number of
    /// nonces without re-expanding the key.
    pub fn ctr_xor_at(&self, nonce: &[u8; 8], data: &mut [u8], start_block: u64) {
        ctr_xor(&self.rk, nonce, data, start_block);
    }
}

/// AES-256 with a precomputed key schedule.
#[derive(Clone)]
pub struct Aes256 {
    /// 15 round keys of 16 bytes each (scalar reference path).
    round_keys: [[u8; 16]; 15],
    /// The same schedule as 60 big-endian words (T-table path).
    rk: [u32; 60],
}

impl Aes256 {
    /// Expand a 32-byte key.
    pub fn new(key: &[u8; 32]) -> Self {
        let mut w = [[0u8; 4]; 60];
        for i in 0..8 {
            w[i].copy_from_slice(&key[i * 4..i * 4 + 4]);
        }
        for i in 8..60 {
            let mut t = w[i - 1];
            if i % 8 == 0 {
                t.rotate_left(1);
                for b in &mut t {
                    *b = SBOX[*b as usize];
                }
                t[0] ^= RCON[i / 8 - 1];
            } else if i % 8 == 4 {
                for b in &mut t {
                    *b = SBOX[*b as usize];
                }
            }
            for j in 0..4 {
                w[i][j] = w[i - 8][j] ^ t[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 15];
        for (r, rkb) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rkb[c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
            }
        }
        let mut rk = [0u32; 60];
        for (i, word) in w.iter().enumerate() {
            rk[i] = u32::from_be_bytes(*word);
        }
        Aes256 { round_keys, rk }
    }

    /// Encrypt one 16-byte block in place (T-table path).
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        encrypt_one(&self.rk, block);
    }

    /// Encrypt one block with the byte-wise reference rounds.
    pub fn encrypt_block_scalar(&self, block: &mut [u8; 16]) {
        encrypt_scalar(&self.round_keys, block);
    }

    /// Encrypt four independent blocks with interleaved rounds.
    pub fn encrypt4(&self, blocks: &mut [[u8; 16]; 4]) {
        encrypt_four(&self.rk, blocks);
    }

    /// XOR the CTR keystream into `data`; see [`Aes128::ctr_xor_at`].
    pub fn ctr_xor_at(&self, nonce: &[u8; 8], data: &mut [u8], start_block: u64) {
        ctr_xor(&self.rk, nonce, data, start_block);
    }
}

/// Byte-wise reference encryption shared by both key sizes.
fn encrypt_scalar(round_keys: &[[u8; 16]], block: &mut [u8; 16]) {
    let nr = round_keys.len() - 1;
    add_round_key(block, &round_keys[0]);
    for rk in &round_keys[1..nr] {
        sub_bytes(block);
        shift_rows(block);
        mix_columns(block);
        add_round_key(block, rk);
    }
    sub_bytes(block);
    shift_rows(block);
    add_round_key(block, &round_keys[nr]);
}

#[inline]
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

/// State layout is column-major: byte (row r, col c) is `state[c*4 + r]`.
#[inline]
fn shift_rows(state: &mut [u8; 16]) {
    // Row 1: shift left by 1.
    let t = state[1];
    state[1] = state[5];
    state[5] = state[9];
    state[9] = state[13];
    state[13] = t;
    // Row 2: shift left by 2.
    state.swap(2, 10);
    state.swap(6, 14);
    // Row 3: shift left by 3 (= right by 1).
    let t = state[15];
    state[15] = state[11];
    state[11] = state[7];
    state[7] = state[3];
    state[3] = t;
}

#[inline]
fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = &mut state[c * 4..c * 4 + 4];
        let (a0, a1, a2, a3) = (col[0], col[1], col[2], col[3]);
        let all = a0 ^ a1 ^ a2 ^ a3;
        col[0] = a0 ^ all ^ xtime(a0 ^ a1);
        col[1] = a1 ^ all ^ xtime(a1 ^ a2);
        col[2] = a2 ^ all ^ xtime(a2 ^ a3);
        col[3] = a3 ^ all ^ xtime(a3 ^ a0);
    }
}

/// CTR mode over AES-128. Encryption and decryption are the same operation.
pub struct AesCtr {
    cipher: Aes128,
    nonce: [u8; 8],
}

impl AesCtr {
    /// Create a CTR context with an 8-byte nonce; the remaining 8 bytes of
    /// the counter block hold the big-endian block index.
    pub fn new(key: &[u8; 16], nonce: [u8; 8]) -> Self {
        AesCtr { cipher: Aes128::new(key), nonce }
    }

    /// Create a CTR context from an already-expanded cipher, skipping the
    /// key schedule. This is how per-object nonce streams share one
    /// cached schedule.
    pub fn from_cipher(cipher: Aes128, nonce: [u8; 8]) -> Self {
        AesCtr { cipher, nonce }
    }

    /// XOR the keystream (starting at block `start_block`) into `data`.
    pub fn apply_keystream_at(&self, data: &mut [u8], start_block: u64) {
        self.cipher.ctr_xor_at(&self.nonce, data, start_block);
    }

    /// XOR the keystream into `data` starting at block 0.
    pub fn apply_keystream(&self, data: &mut [u8]) {
        self.apply_keystream_at(data, 0);
    }
}

/// CTR mode over AES-256; same counter-block layout as [`AesCtr`].
pub struct AesCtr256 {
    cipher: Aes256,
    nonce: [u8; 8],
}

impl AesCtr256 {
    /// Create a CTR context with an 8-byte nonce.
    pub fn new(key: &[u8; 32], nonce: [u8; 8]) -> Self {
        AesCtr256 { cipher: Aes256::new(key), nonce }
    }

    /// Create a CTR context from an already-expanded cipher.
    pub fn from_cipher(cipher: Aes256, nonce: [u8; 8]) -> Self {
        AesCtr256 { cipher, nonce }
    }

    /// XOR the keystream (starting at block `start_block`) into `data`.
    pub fn apply_keystream_at(&self, data: &mut [u8], start_block: u64) {
        self.cipher.ctr_xor_at(&self.nonce, data, start_block);
    }

    /// XOR the keystream into `data` starting at block 0.
    pub fn apply_keystream(&self, data: &mut [u8]) {
        self.apply_keystream_at(data, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn fips197_appendix_b() {
        let key: [u8; 16] = unhex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let mut block: [u8; 16] =
            unhex("3243f6a8885a308d313198a2e0370734").try_into().unwrap();
        Aes128::new(&key).encrypt_block(&mut block);
        assert_eq!(hex(&block), "3925841d02dc09fbdc118597196a0b32");
    }

    #[test]
    fn fips197_appendix_c1() {
        let key: [u8; 16] = unhex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let mut block: [u8; 16] =
            unhex("00112233445566778899aabbccddeeff").try_into().unwrap();
        Aes128::new(&key).encrypt_block(&mut block);
        assert_eq!(hex(&block), "69c4e0d86a7b0430d8cdb78070b4c55a");
    }

    #[test]
    fn fips197_appendix_c3_aes256() {
        let key: [u8; 32] =
            unhex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
                .try_into()
                .unwrap();
        let mut block: [u8; 16] =
            unhex("00112233445566778899aabbccddeeff").try_into().unwrap();
        Aes256::new(&key).encrypt_block(&mut block);
        assert_eq!(hex(&block), "8ea2b7ca516745bfeafc49904b496089");
    }

    #[test]
    fn ttable_matches_scalar_reference() {
        let c128 = Aes128::new(&[0x5a; 16]);
        let c256 = Aes256::new(&[0xa5; 32]);
        for seed in 0u8..32 {
            let mut a = [0u8; 16];
            for (i, b) in a.iter_mut().enumerate() {
                *b = seed.wrapping_mul(31).wrapping_add(i as u8 * 17);
            }
            let mut t = a;
            let mut s = a;
            c128.encrypt_block(&mut t);
            c128.encrypt_block_scalar(&mut s);
            assert_eq!(t, s, "aes128 seed {seed}");
            let mut t = a;
            let mut s = a;
            c256.encrypt_block(&mut t);
            c256.encrypt_block_scalar(&mut s);
            assert_eq!(t, s, "aes256 seed {seed}");
        }
    }

    #[test]
    fn encrypt4_matches_single() {
        let cipher = Aes128::new(&[0x3c; 16]);
        let mut quad = [[0u8; 16]; 4];
        for (i, b) in quad.iter_mut().enumerate() {
            b.fill(i as u8 * 63);
        }
        let singles: Vec<[u8; 16]> = quad
            .iter()
            .map(|b| {
                let mut s = *b;
                cipher.encrypt_block(&mut s);
                s
            })
            .collect();
        cipher.encrypt4(&mut quad);
        assert_eq!(quad.to_vec(), singles);
    }

    #[test]
    fn ctr_roundtrip() {
        let key = [7u8; 16];
        let ctr = AesCtr::new(&key, *b"noncenon");
        let plain: Vec<u8> = (0..100u8).collect();
        let mut data = plain.clone();
        ctr.apply_keystream(&mut data);
        assert_ne!(data, plain);
        ctr.apply_keystream(&mut data);
        assert_eq!(data, plain);
    }

    #[test]
    fn ctr_seek_matches_stream() {
        // Applying the keystream from block 2 must equal the tail of a
        // from-zero application.
        let key = [9u8; 16];
        let ctr = AesCtr::new(&key, [1, 2, 3, 4, 5, 6, 7, 8]);
        let mut full = vec![0u8; 64];
        ctr.apply_keystream(&mut full);
        let mut tail = vec![0u8; 32];
        ctr.apply_keystream_at(&mut tail, 2);
        assert_eq!(&full[32..], &tail[..]);
    }

    #[test]
    fn ctr_distinct_nonces_distinct_streams() {
        let key = [3u8; 16];
        let mut a = vec![0u8; 16];
        let mut b = vec![0u8; 16];
        AesCtr::new(&key, [0; 8]).apply_keystream(&mut a);
        AesCtr::new(&key, [1, 0, 0, 0, 0, 0, 0, 0]).apply_keystream(&mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn ctr_partial_block() {
        let key = [5u8; 16];
        let ctr = AesCtr::new(&key, [0; 8]);
        let mut data = vec![0xAAu8; 7];
        ctr.apply_keystream(&mut data);
        ctr.apply_keystream(&mut data);
        assert_eq!(data, vec![0xAAu8; 7]);
    }

    #[test]
    fn ctr_from_cipher_matches_keyed() {
        let key = [0x42u8; 16];
        let nonce = [9u8; 8];
        let mut a = vec![0u8; 80];
        let mut b = vec![0u8; 80];
        AesCtr::new(&key, nonce).apply_keystream(&mut a);
        AesCtr::from_cipher(Aes128::new(&key), nonce).apply_keystream(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn ctr256_roundtrip_and_seek() {
        let key = [0x11u8; 32];
        let ctr = AesCtr256::new(&key, [2; 8]);
        let plain: Vec<u8> = (0..130).map(|i| i as u8).collect();
        let mut data = plain.clone();
        ctr.apply_keystream(&mut data);
        assert_ne!(data, plain);
        let mut tail = data[64..].to_vec();
        ctr.apply_keystream_at(&mut tail, 4);
        assert_eq!(&tail[..], &plain[64..]);
    }
}
