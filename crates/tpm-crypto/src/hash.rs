//! Digest trait shared by SHA-1 and SHA-256, plus convenience one-shots.

/// A streaming cryptographic hash.
///
/// Implementations are allocation-free per block; `finalize` consumes the
/// state so a digest cannot be reused accidentally.
pub trait Digest: Clone {
    /// Output size in bytes.
    const OUTPUT_LEN: usize;
    /// Internal block size in bytes (used by HMAC).
    const BLOCK_LEN: usize;

    /// Fresh initial state.
    fn new() -> Self;
    /// Absorb `data`.
    fn update(&mut self, data: &[u8]);
    /// Produce the digest into `out` (exactly `OUTPUT_LEN` bytes),
    /// consuming the state. This is the allocation-free primitive the
    /// hot paths (HMAC, DRBG, audit chain, one-shots) build on.
    fn finalize_into(self, out: &mut [u8]);

    /// Produce the digest as a fresh `Vec`, consuming the state.
    fn finalize(self) -> Vec<u8>
    where
        Self: Sized,
    {
        let mut out = vec![0u8; Self::OUTPUT_LEN];
        self.finalize_into(&mut out);
        out
    }

    /// One-shot convenience.
    fn digest(data: &[u8]) -> Vec<u8> {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }
}

/// One-shot SHA-1 (the TPM 1.2 hash). Allocation-free.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h = crate::sha1::Sha1::new();
    h.update(data);
    let mut out = [0u8; 20];
    h.finalize_into(&mut out);
    out
}

/// One-shot SHA-256. Allocation-free.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = crate::sha256::Sha256::new();
    h.update(data);
    let mut out = [0u8; 32];
    h.finalize_into(&mut out);
    out
}
