//! Digest trait shared by SHA-1 and SHA-256, plus convenience one-shots.

/// A streaming cryptographic hash.
///
/// Implementations are allocation-free per block; `finalize` consumes the
/// state so a digest cannot be reused accidentally.
pub trait Digest: Clone {
    /// Output size in bytes.
    const OUTPUT_LEN: usize;
    /// Internal block size in bytes (used by HMAC).
    const BLOCK_LEN: usize;

    /// Fresh initial state.
    fn new() -> Self;
    /// Absorb `data`.
    fn update(&mut self, data: &[u8]);
    /// Produce the digest, consuming the state.
    fn finalize(self) -> Vec<u8>;

    /// One-shot convenience.
    fn digest(data: &[u8]) -> Vec<u8> {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }
}

/// One-shot SHA-1 (the TPM 1.2 hash).
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let v = crate::sha1::Sha1::digest(data);
    let mut out = [0u8; 20];
    out.copy_from_slice(&v);
    out
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let v = crate::sha256::Sha256::digest(data);
    let mut out = [0u8; 32];
    out.copy_from_slice(&v);
    out
}
