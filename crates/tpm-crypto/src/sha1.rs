//! SHA-1 (FIPS 180-4). TPM 1.2 is specified over SHA-1, so despite its
//! collision weakness it is the digest this emulator must provide; the
//! access-control layer itself authenticates with HMAC where collisions do
//! not apply.

use crate::hash::Digest;

const H0: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];

/// Streaming SHA-1 state.
#[derive(Clone)]
pub struct Sha1 {
    h: [u32; 5],
    /// Partial block buffer.
    buf: [u8; 64],
    buf_len: usize,
    /// Total message length in bytes.
    total_len: u64,
}

impl Sha1 {
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().unwrap());
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.h;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | (!b & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let t = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = t;
        }
        self.h[0] = self.h[0].wrapping_add(a);
        self.h[1] = self.h[1].wrapping_add(b);
        self.h[2] = self.h[2].wrapping_add(c);
        self.h[3] = self.h[3].wrapping_add(d);
        self.h[4] = self.h[4].wrapping_add(e);
    }
}

impl Digest for Sha1 {
    const OUTPUT_LEN: usize = 20;
    const BLOCK_LEN: usize = 64;

    fn new() -> Self {
        Sha1 { h: H0, buf: [0; 64], buf_len: 0, total_len: 0 }
    }

    fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
            if data.is_empty() {
                return;
            }
        }
        let mut chunks = data.chunks_exact(64);
        for chunk in chunks.by_ref() {
            self.compress(chunk.try_into().unwrap());
        }
        let rest = chunks.remainder();
        self.buf[..rest.len()].copy_from_slice(rest);
        self.buf_len = rest.len();
    }

    fn finalize_into(mut self, out: &mut [u8]) {
        assert_eq!(out.len(), Self::OUTPUT_LEN);
        // Pad in place: 0x80, zeros to byte 56 of the final block, then
        // the bit length — one or two compressions, no per-byte updates.
        let bit_len = self.total_len.wrapping_mul(8);
        let len = self.buf_len;
        self.buf[len] = 0x80;
        if len < 56 {
            self.buf[len + 1..56].fill(0);
        } else {
            self.buf[len + 1..].fill(0);
            let block = self.buf;
            self.compress(&block);
            self.buf[..56].fill(0);
        }
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.h) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_vector() {
        assert_eq!(hex(&Sha1::digest(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn abc_vector() {
        assert_eq!(hex(&Sha1::digest(b"abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
    }

    #[test]
    fn two_block_vector() {
        assert_eq!(
            hex(&Sha1::digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a_vector() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(hex(&Sha1::digest(&data)), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let oneshot = Sha1::digest(&data);
        for split in [0usize, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), oneshot, "split at {split}");
        }
    }

    #[test]
    fn block_boundary_lengths() {
        // Exercise padding around the 56-byte boundary where the length
        // field forces an extra block.
        for len in 54..=66usize {
            let data = vec![0x42u8; len];
            let mut h = Sha1::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), Sha1::digest(&data), "len {len}");
        }
    }
}
