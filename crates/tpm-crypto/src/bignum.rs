//! Arbitrary-precision unsigned integers sized for RSA-grade arithmetic.
//!
//! Limbs are little-endian `u64`; every value is kept *normalized* (no
//! trailing zero limbs), so equality and comparison are limb-wise.
//!
//! Modular exponentiation for odd moduli — the only case TPM 1.2 RSA
//! needs — runs through [`MontgomeryCtx`]: allocation-free Montgomery
//! multiplication with a dedicated squaring kernel (the cross-product
//! half of a square is computed once and doubled) and fixed-window
//! (2^4) exponentiation, so a w-bit exponent costs w squarings plus
//! w/4 multiplies plus a 15-entry table instead of w + w/2 multiplies.
//! A square-and-multiply fallback covers even moduli so the API stays
//! total, and [`BigUint::mod_pow_schoolbook`] retains the slow
//! full-product-then-Knuth-divide path as an independent differential
//! reference — the test battery asserts the optimized path is
//! byte-identical to it (`tests/proptests.rs`).
//!
//! None of this is hardened against local side channels (the window
//! scan skips zero windows, the final Montgomery subtraction is
//! conditional); the simulated attacker model is memory disclosure,
//! not power or timing analysis — see `rsa.rs`.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs, normalized: `limbs.last() != Some(&0)`.
    limbs: Vec<u64>,
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Build from a single machine word.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Parse big-endian bytes (the TPM wire format for RSA material).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(8));
        let mut chunk_iter = bytes.rchunks(8);
        for chunk in chunk_iter.by_ref() {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Serialize to big-endian bytes with no leading zeros (empty for 0).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zeros of the most significant limb.
                let skip = (limb.leading_zeros() / 8) as usize;
                out.extend_from_slice(&bytes[skip..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serialize to exactly `len` big-endian bytes, left-padded with zeros.
    ///
    /// Returns `None` if the value does not fit.
    pub fn to_bytes_be_padded(&self, len: usize) -> Option<Vec<u8>> {
        let raw = self.to_bytes_be();
        if raw.len() > len {
            return None;
        }
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        Some(out)
    }

    /// Hex string (lowercase, no leading zeros, `"0"` for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::new();
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:016x}"));
            }
        }
        s
    }

    /// Parse a hex string (no prefix). Panics on non-hex characters.
    pub fn from_hex(s: &str) -> Self {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        let mut limbs = Vec::with_capacity(s.len().div_ceil(16));
        let bytes = s.as_bytes();
        let mut end = bytes.len();
        while end > 0 {
            let start = end.saturating_sub(16);
            let limb = u64::from_str_radix(
                std::str::from_utf8(&bytes[start..end]).unwrap(),
                16,
            )
            .expect("invalid hex digit");
            limbs.push(limb);
            end = start;
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// True iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is 1.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True iff the low bit is 0 (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// True iff the low bit is 1.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of significant bits (0 for the value 0).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Value of bit `i` (LSB is bit 0).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Set bit `i` to 1, growing the limb vector as needed.
    pub fn set_bit(&mut self, i: usize) {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1u64 << (i % 64);
    }

    /// Low 64 bits of the value.
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// `self + other`.
    #[allow(clippy::needless_range_loop)]
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (longer, shorter) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(longer.len() + 1);
        let mut carry = 0u64;
        for i in 0..longer.len() {
            let b = shorter.get(i).copied().unwrap_or(0);
            let (s1, c1) = longer[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self - other`; returns `None` on underflow.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self.cmp_abs(other) == Ordering::Less {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = BigUint { limbs: out };
        n.normalize();
        Some(n)
    }

    /// `self - other`; panics on underflow.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        self.checked_sub(other).expect("BigUint subtraction underflow")
    }

    /// Schoolbook product. RSA operand sizes (16–32 limbs) do not repay
    /// Karatsuba's bookkeeping, and the hot path (modexp) uses Montgomery
    /// multiplication anyway.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Left shift by `n` bits.
    pub fn shl(&self, n: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &limb in &self.limbs {
                out.push((limb << bit_shift) | carry);
                carry = limb >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Right shift by `n` bits.
    pub fn shr(&self, n: usize) -> BigUint {
        let limb_shift = n / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = n % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    fn cmp_abs(&self, other: &BigUint) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {}
            o => return o,
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => {}
                o => return o,
            }
        }
        Ordering::Equal
    }

    /// Quotient and remainder; panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "BigUint division by zero");
        if self.cmp_abs(divisor) == Ordering::Less {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.limbs[0]);
            return (q, BigUint::from_u64(r));
        }
        self.div_rem_knuth(divisor)
    }

    /// Division by a single limb.
    fn div_rem_u64(&self, d: u64) -> (BigUint, u64) {
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        let mut qn = BigUint { limbs: q };
        qn.normalize();
        (qn, rem as u64)
    }

    /// Knuth Algorithm D (TAOCP Vol. 2, 4.3.1) over u64 limbs.
    fn div_rem_knuth(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        // D1: normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let v = divisor.shl(shift);
        let u = self.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;

        // Working dividend with one extra high limb.
        let mut un = u.limbs.clone();
        un.push(0);
        let vn = &v.limbs;
        let mut q = vec![0u64; m + 1];

        let b = 1u128 << 64;
        for j in (0..=m).rev() {
            // D3: estimate qhat from the top two dividend limbs.
            let top = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut qhat = top / vn[n - 1] as u128;
            let mut rhat = top % vn[n - 1] as u128;
            while qhat >= b
                || qhat * vn[n - 2] as u128 > ((rhat << 64) | un[j + n - 2] as u128)
            {
                qhat -= 1;
                rhat += vn[n - 1] as u128;
                if rhat >= b {
                    break;
                }
            }

            // D4: multiply and subtract.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * vn[i] as u128 + carry;
                carry = p >> 64;
                let t = un[j + i] as i128 - (p as u64) as i128 + borrow;
                un[j + i] = t as u64;
                borrow = t >> 64; // arithmetic shift: 0 or -1
            }
            let t = un[j + n] as i128 - carry as i128 + borrow;
            un[j + n] = t as u64;

            q[j] = qhat as u64;

            // D6: add back if we over-subtracted.
            if t < 0 {
                q[j] -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let s = un[j + i] as u128 + vn[i] as u128 + carry;
                    un[j + i] = s as u64;
                    carry = s >> 64;
                }
                un[j + n] = un[j + n].wrapping_add(carry as u64);
            }
        }

        let mut quotient = BigUint { limbs: q };
        quotient.normalize();
        let mut rem = BigUint { limbs: un[..n].to_vec() };
        rem.normalize();
        (quotient, rem.shr(shift))
    }

    /// `self mod m`.
    pub fn rem(&self, m: &BigUint) -> BigUint {
        self.div_rem(m).1
    }

    /// `self * other mod m` via full product + reduction (cold path).
    pub fn mul_mod(&self, other: &BigUint, m: &BigUint) -> BigUint {
        self.mul(other).rem(m)
    }

    /// `self + other mod m` (operands must already be `< m`).
    pub fn add_mod(&self, other: &BigUint, m: &BigUint) -> BigUint {
        let s = self.add(other);
        if s.cmp_abs(m) == Ordering::Less {
            s
        } else {
            s.sub(m)
        }
    }

    /// `self - other mod m` (operands must already be `< m`).
    pub fn sub_mod(&self, other: &BigUint, m: &BigUint) -> BigUint {
        if self.cmp_abs(other) != Ordering::Less {
            self.sub(other)
        } else {
            self.add(m).sub(other)
        }
    }

    /// `self^exp mod m`. Montgomery ladder for odd `m`, plain
    /// square-and-multiply otherwise. Panics if `m` is zero.
    pub fn mod_pow(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "mod_pow with zero modulus");
        if m.is_one() {
            return BigUint::zero();
        }
        if exp.is_zero() {
            return BigUint::one();
        }
        if m.is_odd() {
            let ctx = MontgomeryCtx::new(m);
            return ctx.pow(&self.rem(m), exp);
        }
        // Fallback for even moduli (not used by RSA, kept for totality).
        let mut base = self.rem(m);
        let mut result = BigUint::one();
        for i in 0..exp.bits() {
            if exp.bit(i) {
                result = result.mul_mod(&base, m);
            }
            base = base.mul_mod(&base, m);
        }
        result
    }

    /// `self^exp mod m` by plain square-and-multiply over full products
    /// and Knuth division — the retained schoolbook path.
    ///
    /// This is deliberately *not* routed through [`MontgomeryCtx`]: it
    /// shares no code with the optimized fast path, which makes it an
    /// independent differential reference. The KAT/proptest battery and
    /// the R-C1 experiment both assert the Montgomery fixed-window
    /// (and, in `rsa.rs`, the CRT) results are byte-identical to this
    /// function's output. Panics if `m` is zero.
    pub fn mod_pow_schoolbook(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "mod_pow with zero modulus");
        if m.is_one() {
            return BigUint::zero();
        }
        if exp.is_zero() {
            return BigUint::one();
        }
        let mut base = self.rem(m);
        let mut result = BigUint::one();
        for i in 0..exp.bits() {
            if exp.bit(i) {
                result = result.mul_mod(&base, m);
            }
            base = base.mul_mod(&base, m);
        }
        result
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let mut shift = 0usize;
        while a.is_even() && b.is_even() {
            a = a.shr(1);
            b = b.shr(1);
            shift += 1;
        }
        while a.is_even() {
            a = a.shr(1);
        }
        loop {
            while b.is_even() {
                b = b.shr(1);
            }
            if a.cmp_abs(&b) == Ordering::Greater {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.sub(&a);
            if b.is_zero() {
                break;
            }
        }
        a.shl(shift)
    }

    /// Modular inverse of `self` mod `m`, or `None` if `gcd(self, m) != 1`.
    ///
    /// Extended Euclid over signed cofactors tracked as (sign, magnitude).
    pub fn mod_inverse(&self, m: &BigUint) -> Option<BigUint> {
        if m.is_zero() || m.is_one() {
            return None;
        }
        // Iterative extended Euclid: r0 = m, r1 = self mod m.
        let mut r0 = m.clone();
        let mut r1 = self.rem(m);
        // t0 = 0, t1 = 1 with explicit signs.
        let mut t0 = (false, BigUint::zero()); // (negative?, magnitude)
        let mut t1 = (false, BigUint::one());
        while !r1.is_zero() {
            let (q, r2) = r0.div_rem(&r1);
            // t2 = t0 - q * t1
            let qt1 = q.mul(&t1.1);
            let t2 = sub_signed(&t0, &(t1.0, qt1));
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if !r0.is_one() {
            return None;
        }
        // t0 is the inverse, possibly negative.
        let inv = if t0.0 {
            m.sub(&t0.1.rem(m))
        } else {
            t0.1.rem(m)
        };
        let inv = if inv.cmp_abs(m) == Ordering::Equal { BigUint::zero() } else { inv };
        Some(inv)
    }
}

/// Signed subtraction over (negative?, magnitude) pairs.
fn sub_signed(a: &(bool, BigUint), b: &(bool, BigUint)) -> (bool, BigUint) {
    match (a.0, b.0) {
        // a - b with same sign: compare magnitudes.
        (false, false) | (true, true) => {
            if a.1.cmp_abs(&b.1) != Ordering::Less {
                (a.0 && !a.1.sub(&b.1).is_zero(), a.1.sub(&b.1))
            } else {
                (!a.0, b.1.sub(&a.1))
            }
        }
        // (+a) - (-b) = a + b
        (false, true) => (false, a.1.add(&b.1)),
        // (-a) - (+b) = -(a + b)
        (true, false) => (true, a.1.add(&b.1)),
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_abs(other)
    }
}

/// Montgomery multiplication context for a fixed odd modulus.
///
/// All operands inside the context live in Montgomery form padded to
/// `k = n.limbs.len()` limbs. The kernels are allocation-free: callers
/// provide a `2k + 1`-limb wide scratch buffer that holds the full
/// product, which [`MontgomeryCtx::reduce`] then folds limb by limb.
/// Squaring computes each cross product `a[i]*a[j]` (i < j) once and
/// doubles the accumulator — roughly half the 64x64 multiplies of a
/// general product — and exponentiation scans the exponent in fixed
/// 4-bit windows over a 15-entry odd-power table.
pub struct MontgomeryCtx {
    /// Modulus limbs (little-endian, length k).
    n: Vec<u64>,
    /// `-n^{-1} mod 2^64`.
    n0_inv: u64,
    /// `R^2 mod n`, for conversion into Montgomery form.
    r2: Vec<u64>,
    /// The modulus as a BigUint (for conversions).
    modulus: BigUint,
}

/// Window width for fixed-window exponentiation. 4 divides the limb
/// width, so a window never straddles limbs; the table costs 14 extra
/// products and removes three of every four multiply steps.
const WINDOW_BITS: usize = 4;

impl MontgomeryCtx {
    /// Build a context; panics if `m` is even or zero.
    pub fn new(m: &BigUint) -> Self {
        assert!(m.is_odd(), "Montgomery modulus must be odd");
        let n = m.limbs.clone();
        let k = n.len();
        // Newton iteration for the inverse of n[0] mod 2^64.
        let mut inv = 1u64;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n[0].wrapping_mul(inv)));
        }
        let n0_inv = inv.wrapping_neg();
        // R^2 mod n where R = 2^(64k).
        let r2_big = BigUint::one().shl(128 * k).rem(m);
        let mut r2 = r2_big.limbs.clone();
        r2.resize(k, 0);
        MontgomeryCtx { n, n0_inv, r2, modulus: m.clone() }
    }

    /// Montgomery-reduce the `2k`-limb value in `wide` (plus carry limb
    /// `wide[2k]`) into `out`: `out = wide * R^{-1} mod n`.
    ///
    /// Requires `wide < n * R`, which holds for any product or square of
    /// operands `< n`. Consumes `wide` as scratch.
    fn reduce(&self, wide: &mut [u64], out: &mut [u64]) {
        let k = self.n.len();
        debug_assert_eq!(wide.len(), 2 * k + 1);
        for i in 0..k {
            let m = wide[i].wrapping_mul(self.n0_inv);
            let mut carry = 0u128;
            for (j, &nj) in self.n.iter().enumerate() {
                let s = wide[i + j] as u128 + m as u128 * nj as u128 + carry;
                wide[i + j] = s as u64;
                carry = s >> 64;
            }
            let mut idx = i + k;
            while carry != 0 {
                let s = wide[idx] as u128 + carry;
                wide[idx] = s as u64;
                carry = s >> 64;
                idx += 1;
            }
        }
        let ge = wide[2 * k] != 0 || cmp_limbs(&wide[k..2 * k], &self.n) != Ordering::Less;
        if ge {
            let mut borrow = 0u64;
            for j in 0..k {
                let (d1, b1) = wide[k + j].overflowing_sub(self.n[j]);
                let (d2, b2) = d1.overflowing_sub(borrow);
                out[j] = d2;
                borrow = (b1 as u64) + (b2 as u64);
            }
        } else {
            out.copy_from_slice(&wide[k..2 * k]);
        }
    }

    /// Montgomery product into `out`: `out = a * b * R^{-1} mod n`.
    /// `wide` is the shared `2k + 1`-limb scratch.
    fn mont_mul_into(&self, a: &[u64], b: &[u64], wide: &mut [u64], out: &mut [u64]) {
        let k = self.n.len();
        wide.fill(0);
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &bj) in b.iter().enumerate() {
                let s = wide[i + j] as u128 + ai as u128 * bj as u128 + carry;
                wide[i + j] = s as u64;
                carry = s >> 64;
            }
            // Limbs above i+k are still zero, so the carry lands whole.
            wide[i + k] = carry as u64;
        }
        self.reduce(wide, out);
    }

    /// Montgomery square into `out`: `out = a^2 * R^{-1} mod n`.
    ///
    /// The cross products (i < j) are accumulated once and doubled, then
    /// the diagonal squares are added — `k*(k-1)/2 + k` multiplies
    /// against `k^2` for the general kernel.
    fn mont_sqr_into(&self, a: &[u64], wide: &mut [u64], out: &mut [u64]) {
        let k = self.n.len();
        wide.fill(0);
        // Cross products a[i]*a[j] for i < j.
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &aj) in a.iter().enumerate().skip(i + 1) {
                let s = wide[i + j] as u128 + ai as u128 * aj as u128 + carry;
                wide[i + j] = s as u64;
                carry = s >> 64;
            }
            let mut idx = i + k;
            while carry != 0 {
                let s = wide[idx] as u128 + carry;
                wide[idx] = s as u64;
                carry = s >> 64;
                idx += 1;
            }
        }
        // Double the cross half.
        let mut top = 0u64;
        for w in wide.iter_mut() {
            let new_top = *w >> 63;
            *w = (*w << 1) | top;
            top = new_top;
        }
        // Add the diagonal squares.
        let mut carry = 0u64;
        for (i, &ai) in a.iter().enumerate() {
            let sq = ai as u128 * ai as u128;
            let (s1, c1) = wide[2 * i].overflowing_add(sq as u64);
            let (s1, c2) = s1.overflowing_add(carry);
            wide[2 * i] = s1;
            let (s2, c3) = wide[2 * i + 1].overflowing_add((sq >> 64) as u64);
            let (s2, c4) = s2.overflowing_add(c1 as u64 + c2 as u64);
            wide[2 * i + 1] = s2;
            carry = c3 as u64 + c4 as u64;
        }
        if carry != 0 {
            wide[2 * k] = wide[2 * k].wrapping_add(carry);
        }
        self.reduce(wide, out);
    }

    /// Modular exponentiation: `base^exp mod n` (base must be `< n`).
    ///
    /// Fixed-window: the exponent is scanned most-significant-first in
    /// aligned 4-bit windows; each window costs four squarings plus at
    /// most one table multiply (zero windows skip the multiply, which
    /// leaks window Hamming information — acceptable here, see the
    /// module docs on the side-channel model).
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        let k = self.n.len();
        let mut wide = vec![0u64; 2 * k + 1];
        // 1 in Montgomery form: montmul(1, R^2).
        let mut one = vec![0u64; k];
        one[0] = 1;
        let mut one_m = vec![0u64; k];
        self.mont_mul_into(&one, &self.r2, &mut wide, &mut one_m);

        let nbits = exp.bits();
        if nbits == 0 {
            // base^0 = 1 (mod_pow catches m == 1 before building a ctx).
            let mut out = vec![0u64; k];
            self.mont_mul_into(&one_m, &one, &mut wide, &mut out);
            let mut r = BigUint { limbs: out };
            r.normalize();
            return r;
        }

        let mut base_limbs = base.limbs.clone();
        base_limbs.resize(k, 0);

        // Short exponents (e.g. the public exponent 65537) cannot
        // amortize the 14-product window table; plain left-to-right
        // square-and-multiply wins there.
        if nbits <= 64 {
            let mut base_m = vec![0u64; k];
            self.mont_mul_into(&base_limbs, &self.r2, &mut wide, &mut base_m);
            let mut acc = base_m.clone();
            let mut tmp = vec![0u64; k];
            for i in (0..nbits - 1).rev() {
                self.mont_sqr_into(&acc, &mut wide, &mut tmp);
                std::mem::swap(&mut acc, &mut tmp);
                if exp.bit(i) {
                    self.mont_mul_into(&acc, &base_m, &mut wide, &mut tmp);
                    std::mem::swap(&mut acc, &mut tmp);
                }
            }
            let mut out = vec![0u64; k];
            self.mont_mul_into(&acc, &one, &mut wide, &mut out);
            let mut r = BigUint { limbs: out };
            r.normalize();
            return r;
        }

        // Table of base^w in Montgomery form for w = 1..15 (index 0
        // holds 1_M so `table[w]` is uniform; it is never multiplied).
        let mut table = vec![vec![0u64; k]; 1 << WINDOW_BITS];
        table[0].copy_from_slice(&one_m);
        let mut base_m = vec![0u64; k];
        self.mont_mul_into(&base_limbs, &self.r2, &mut wide, &mut base_m);
        table[1].copy_from_slice(&base_m);
        for w in 2..1 << WINDOW_BITS {
            let (lo, hi) = table.split_at_mut(w);
            self.mont_mul_into(&lo[w - 1], &base_m, &mut wide, &mut hi[0]);
        }

        let nwin = nbits.div_ceil(WINDOW_BITS);
        let mut acc = vec![0u64; k];
        let mut tmp = vec![0u64; k];
        // Top window (always nonzero: it contains the exponent's MSB).
        acc.copy_from_slice(&table[window4(&exp.limbs, nwin - 1)]);
        for win in (0..nwin - 1).rev() {
            for _ in 0..WINDOW_BITS {
                self.mont_sqr_into(&acc, &mut wide, &mut tmp);
                std::mem::swap(&mut acc, &mut tmp);
            }
            let w = window4(&exp.limbs, win);
            if w != 0 {
                self.mont_mul_into(&acc, &table[w], &mut wide, &mut tmp);
                std::mem::swap(&mut acc, &mut tmp);
            }
        }
        // Out of Montgomery form: montmul(acc, 1).
        let mut out = vec![0u64; k];
        self.mont_mul_into(&acc, &one, &mut wide, &mut out);
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }
}

/// Aligned 4-bit window `win` of a little-endian limb slice (window 0 is
/// the least significant nibble). Windows never straddle limbs because
/// 4 divides 64.
#[inline]
fn window4(limbs: &[u64], win: usize) -> usize {
    let bit = win * WINDOW_BITS;
    let limb = bit / 64;
    if limb >= limbs.len() {
        return 0;
    }
    ((limbs[limb] >> (bit % 64)) & 0xf) as usize
}

fn cmp_limbs(a: &[u64], b: &[u64]) -> Ordering {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Equal => {}
            o => return o,
        }
    }
    Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> BigUint {
        BigUint::from_hex(s)
    }

    #[test]
    fn zero_and_one_identities() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::zero().add(&BigUint::one()), BigUint::one());
        assert_eq!(BigUint::one().mul(&BigUint::zero()), BigUint::zero());
        assert_eq!(BigUint::from_u64(0), BigUint::zero());
    }

    #[test]
    fn bytes_roundtrip_strips_leading_zeros() {
        let v = BigUint::from_bytes_be(&[0, 0, 1, 2, 3]);
        assert_eq!(v.to_bytes_be(), vec![1, 2, 3]);
        assert_eq!(v, BigUint::from_u64(0x010203));
    }

    #[test]
    fn padded_bytes() {
        let v = BigUint::from_u64(0xAB);
        assert_eq!(v.to_bytes_be_padded(4).unwrap(), vec![0, 0, 0, 0xAB]);
        assert!(BigUint::from_hex("ffffffffff").to_bytes_be_padded(2).is_none());
    }

    #[test]
    fn hex_roundtrip() {
        let v = n("deadbeef00112233445566778899aabbccddeeff");
        assert_eq!(v.to_hex(), "deadbeef00112233445566778899aabbccddeeff");
        assert_eq!(n("0"), BigUint::zero());
    }

    #[test]
    fn add_with_carry_chain() {
        let a = n("ffffffffffffffffffffffffffffffff");
        assert_eq!(a.add(&BigUint::one()), n("100000000000000000000000000000000"));
    }

    #[test]
    fn sub_with_borrow_chain() {
        let a = n("100000000000000000000000000000000");
        assert_eq!(a.sub(&BigUint::one()), n("ffffffffffffffffffffffffffffffff"));
        assert!(BigUint::one().checked_sub(&a).is_none());
    }

    #[test]
    fn mul_known_values() {
        let a = n("ffffffffffffffff");
        let b = n("ffffffffffffffff");
        assert_eq!(a.mul(&b), n("fffffffffffffffe0000000000000001"));
        // 2^128 * 2^128 = 2^256
        let c = BigUint::one().shl(128);
        assert_eq!(c.mul(&c), BigUint::one().shl(256));
    }

    #[test]
    fn shifts() {
        let a = n("1234_5678_9abc_def0".replace('_', "").as_str());
        assert_eq!(a.shl(4).shr(4), a);
        assert_eq!(a.shr(200), BigUint::zero());
        assert_eq!(BigUint::one().shl(64), n("10000000000000000"));
        assert_eq!(a.shl(64).shr(64), a);
    }

    #[test]
    fn bits_and_bit_access() {
        let a = BigUint::one().shl(127);
        assert_eq!(a.bits(), 128);
        assert!(a.bit(127));
        assert!(!a.bit(126));
        assert!(!a.bit(500));
        assert_eq!(BigUint::zero().bits(), 0);
        let mut b = BigUint::zero();
        b.set_bit(70);
        assert_eq!(b, BigUint::one().shl(70));
    }

    #[test]
    fn div_rem_small() {
        let (q, r) = BigUint::from_u64(100).div_rem(&BigUint::from_u64(7));
        assert_eq!(q, BigUint::from_u64(14));
        assert_eq!(r, BigUint::from_u64(2));
    }

    #[test]
    fn div_rem_multi_limb() {
        // (2^192 + 5) / (2^64 + 3)
        let a = BigUint::one().shl(192).add(&BigUint::from_u64(5));
        let b = BigUint::one().shl(64).add(&BigUint::from_u64(3));
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r < b);
    }

    #[test]
    fn div_rem_knuth_addback_path() {
        // A case constructed to exercise qhat correction: top limbs nearly equal.
        let a = n("8000000000000000000000000000000000000000000000000000000000000003");
        let b = n("8000000000000000000000000000000000000000000000000001");
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r < b);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = BigUint::one().div_rem(&BigUint::zero());
    }

    #[test]
    fn mod_pow_known() {
        // 4^13 mod 497 = 445
        let r = BigUint::from_u64(4).mod_pow(&BigUint::from_u64(13), &BigUint::from_u64(497));
        assert_eq!(r, BigUint::from_u64(445));
    }

    #[test]
    fn mod_pow_fermat_little() {
        // a^(p-1) = 1 mod p for prime p not dividing a.
        let p = n("ffffffffffffffffffffffffffffff61"); // a 128-bit prime
        let a = n("123456789abcdef0123456789abcdef");
        let r = a.mod_pow(&p.sub(&BigUint::one()), &p);
        assert_eq!(r, BigUint::one());
    }

    #[test]
    fn mod_pow_even_modulus_fallback() {
        // 3^5 mod 16 = 243 mod 16 = 3
        let r = BigUint::from_u64(3).mod_pow(&BigUint::from_u64(5), &BigUint::from_u64(16));
        assert_eq!(r, BigUint::from_u64(3));
    }

    #[test]
    fn mod_pow_zero_exponent() {
        let m = BigUint::from_u64(97);
        assert_eq!(BigUint::from_u64(5).mod_pow(&BigUint::zero(), &m), BigUint::one());
    }

    #[test]
    fn mod_pow_modulus_one() {
        assert_eq!(
            BigUint::from_u64(5).mod_pow(&BigUint::from_u64(3), &BigUint::one()),
            BigUint::zero()
        );
    }

    #[test]
    fn gcd_known() {
        assert_eq!(
            BigUint::from_u64(48).gcd(&BigUint::from_u64(36)),
            BigUint::from_u64(12)
        );
        assert_eq!(BigUint::zero().gcd(&BigUint::from_u64(7)), BigUint::from_u64(7));
        assert_eq!(BigUint::from_u64(7).gcd(&BigUint::zero()), BigUint::from_u64(7));
    }

    #[test]
    fn mod_inverse_known() {
        // 3 * 5 = 15 = 1 mod 7 -> inverse of 3 mod 7 is 5
        let inv = BigUint::from_u64(3).mod_inverse(&BigUint::from_u64(7)).unwrap();
        assert_eq!(inv, BigUint::from_u64(5));
        // Not invertible when gcd != 1.
        assert!(BigUint::from_u64(6).mod_inverse(&BigUint::from_u64(9)).is_none());
    }

    #[test]
    fn mod_inverse_large() {
        let m = n("ffffffffffffffffffffffffffffff61");
        let a = n("deadbeefdeadbeefdeadbeef");
        let inv = a.mod_inverse(&m).unwrap();
        assert_eq!(a.mul_mod(&inv, &m), BigUint::one());
    }

    #[test]
    fn montgomery_matches_plain() {
        let m = n("c7f1bb1d3956411ab7b9a9b25a9a9b25a9a9b25a9a9b25a9a9b25a9a9b25a9b");
        let base = n("1234567890abcdef1234567890abcdef");
        let exp = n("10001");
        let ctx = MontgomeryCtx::new(&m);
        let mont = ctx.pow(&base, &exp);
        // Plain square-and-multiply reference.
        let mut acc = BigUint::one();
        let mut b = base.rem(&m);
        for i in 0..exp.bits() {
            if exp.bit(i) {
                acc = acc.mul_mod(&b, &m);
            }
            b = b.mul_mod(&b, &m);
        }
        assert_eq!(mont, acc);
    }

    #[test]
    fn ordering() {
        assert!(n("ff") < n("100"));
        assert!(n("10000000000000000") > n("ffffffffffffffff"));
        assert_eq!(n("42").cmp(&n("42")), Ordering::Equal);
    }
}
