//! A deterministic random bit generator in the style of Hash_DRBG
//! (NIST SP 800-90A, simplified): SHA-256 over (key, reseed counter, block
//! counter). The TPM emulator uses one DRBG instance per TPM so that a
//! given seed reproduces an identical TPM lifetime — essential for
//! deterministic tests and for replaying experiments.

use crate::hash::sha256;

/// Deterministic generator; never blocks, never fails.
///
/// Output is a *stream*: requesting 10 bytes then 22 bytes yields exactly
/// the same bytes as one 32-byte request (partial blocks are buffered,
/// not discarded), so consumers can draw in any chunking.
pub struct Drbg {
    /// Working state, replaced on reseed.
    v: [u8; 32],
    /// Blocks generated since the last reseed.
    counter: u64,
    /// Unconsumed tail of the last generated block.
    pending: [u8; 32],
    pending_len: usize,
}

impl Drbg {
    /// Instantiate from seed material of any length.
    pub fn new(seed: &[u8]) -> Self {
        Drbg { v: sha256(seed), counter: 0, pending: [0; 32], pending_len: 0 }
    }

    /// Mix fresh entropy into the state. Discards any buffered output.
    pub fn reseed(&mut self, entropy: &[u8]) {
        let mut buf = Vec::with_capacity(32 + entropy.len());
        buf.extend_from_slice(&self.v);
        buf.extend_from_slice(entropy);
        self.v = sha256(&buf);
        self.counter = 0;
        self.pending_len = 0;
    }

    /// Fill `out` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        let mut done = 0;
        // Drain buffered output first.
        if self.pending_len > 0 {
            let take = self.pending_len.min(out.len());
            out[..take].copy_from_slice(&self.pending[32 - self.pending_len..32 - self.pending_len + take]);
            self.pending_len -= take;
            done = take;
        }
        let mut block_in = [0u8; 40];
        block_in[..32].copy_from_slice(&self.v);
        while done < out.len() {
            block_in[32..].copy_from_slice(&self.counter.to_be_bytes());
            self.counter = self.counter.wrapping_add(1);
            let block = sha256(&block_in);
            let take = (out.len() - done).min(32);
            out[done..done + take].copy_from_slice(&block[..take]);
            if take < 32 {
                // Buffer the tail for the next call.
                self.pending = block;
                self.pending_len = 32 - take;
            }
            done += take;
        }
        // Ratchet the state forward so earlier output cannot be recomputed
        // from a captured state (backtracking resistance).
        if self.counter >= 1 << 20 {
            let v = self.v;
            self.reseed(&v);
        }
    }

    /// Convenience: `n` pseudo-random bytes.
    pub fn bytes(&mut self, n: usize) -> Vec<u8> {
        let mut out = vec![0u8; n];
        self.fill_bytes(&mut out);
        out
    }

    /// A pseudo-random u64.
    pub fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_be_bytes(b)
    }

    /// A pseudo-random u32.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`; panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Drbg::new(b"seed");
        let mut b = Drbg::new(b"seed");
        assert_eq!(a.bytes(100), b.bytes(100));
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = Drbg::new(b"seed-a");
        let mut b = Drbg::new(b"seed-b");
        assert_ne!(a.bytes(32), b.bytes(32));
    }

    #[test]
    fn sequential_output_differs() {
        let mut d = Drbg::new(b"x");
        let first = d.bytes(32);
        let second = d.bytes(32);
        assert_ne!(first, second);
    }

    #[test]
    fn chunked_matches_bulk() {
        let mut a = Drbg::new(b"s");
        let mut b = Drbg::new(b"s");
        let bulk = a.bytes(64);
        let mut chunked = b.bytes(32);
        chunked.extend(b.bytes(32));
        assert_eq!(bulk, chunked);
    }

    #[test]
    fn misaligned_chunks_match_bulk() {
        let mut a = Drbg::new(b"s");
        let mut b = Drbg::new(b"s");
        let bulk = a.bytes(100);
        let mut pieced = b.bytes(7);
        pieced.extend(b.bytes(1));
        pieced.extend(b.bytes(40));
        pieced.extend(b.bytes(52));
        assert_eq!(bulk, pieced, "stream semantics: chunking must not matter");
    }

    #[test]
    fn reseed_changes_stream() {
        let mut a = Drbg::new(b"s");
        let mut b = Drbg::new(b"s");
        b.reseed(b"extra");
        assert_ne!(a.bytes(32), b.bytes(32));
    }

    #[test]
    fn below_in_range_and_covers() {
        let mut d = Drbg::new(b"range");
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = d.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear in 500 draws");
    }

    #[test]
    fn rough_uniformity() {
        // Byte-value mean over a large sample should be near 127.5.
        let mut d = Drbg::new(b"uniform");
        let sample = d.bytes(65536);
        let mean: f64 = sample.iter().map(|&b| b as f64).sum::<f64>() / sample.len() as f64;
        assert!((mean - 127.5).abs() < 2.0, "mean {mean}");
    }
}
