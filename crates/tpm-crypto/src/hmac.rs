//! HMAC (RFC 2104) generic over the [`Digest`] trait.
//!
//! TPM 1.2 authorization sessions (OIAP/OSAP) use HMAC-SHA1; the paper's
//! AC1 request authentication uses HMAC-SHA256.

use crate::hash::Digest;

/// Streaming HMAC state.
#[derive(Clone)]
pub struct Hmac<D: Digest> {
    inner: D,
    /// Key XOR opad, retained for the outer pass.
    opad_key: Vec<u8>,
}

impl<D: Digest> Hmac<D> {
    /// Initialize with `key` (any length; hashed down if longer than a block).
    pub fn new(key: &[u8]) -> Self {
        let mut block_key = vec![0u8; D::BLOCK_LEN];
        if key.len() > D::BLOCK_LEN {
            let hashed = D::digest(key);
            block_key[..hashed.len()].copy_from_slice(&hashed);
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }
        let ipad: Vec<u8> = block_key.iter().map(|b| b ^ 0x36).collect();
        let opad: Vec<u8> = block_key.iter().map(|b| b ^ 0x5c).collect();
        let mut inner = D::new();
        inner.update(&ipad);
        Hmac { inner, opad_key: opad }
    }

    /// Absorb message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produce the MAC, consuming the state. The inner digest lands in a
    /// stack buffer (digests here are at most 64 bytes), so the only
    /// allocation is the returned Vec.
    pub fn finalize(self) -> Vec<u8> {
        let mut inner_hash = [0u8; 64];
        debug_assert!(D::OUTPUT_LEN <= 64);
        self.inner.finalize_into(&mut inner_hash[..D::OUTPUT_LEN]);
        let mut outer = D::new();
        outer.update(&self.opad_key);
        outer.update(&inner_hash[..D::OUTPUT_LEN]);
        outer.finalize()
    }

    /// One-shot convenience.
    pub fn mac(key: &[u8], data: &[u8]) -> Vec<u8> {
        let mut h = Self::new(key);
        h.update(data);
        h.finalize()
    }
}

/// Constant-time byte-slice equality: the comparison time depends only on
/// the lengths, never on where the first mismatch occurs. MAC verification
/// must use this rather than `==` to avoid a timing oracle.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

/// HMAC-SHA1 one-shot (TPM 1.2 auth sessions).
pub fn hmac_sha1(key: &[u8], data: &[u8]) -> [u8; 20] {
    let v = Hmac::<crate::sha1::Sha1>::mac(key, data);
    let mut out = [0u8; 20];
    out.copy_from_slice(&v);
    out
}

/// HMAC-SHA256 one-shot (AC1 request authentication).
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    let v = Hmac::<crate::sha256::Sha256>::mac(key, data);
    let mut out = [0u8; 32];
    out.copy_from_slice(&v);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha1::Sha1;
    use crate::sha256::Sha256;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 2202 test vectors for HMAC-SHA1.
    #[test]
    fn rfc2202_case1() {
        let key = [0x0b; 20];
        assert_eq!(
            hex(&Hmac::<Sha1>::mac(&key, b"Hi There")),
            "b617318655057264e28bc0b6fb378c8ef146be00"
        );
    }

    #[test]
    fn rfc2202_case2() {
        assert_eq!(
            hex(&Hmac::<Sha1>::mac(b"Jefe", b"what do ya want for nothing?")),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        );
    }

    #[test]
    fn rfc2202_case3() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        assert_eq!(
            hex(&Hmac::<Sha1>::mac(&key, &data)),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3"
        );
    }

    #[test]
    fn rfc2202_long_key() {
        // Case 6: 80-byte key forces the hash-the-key path.
        let key = [0xaa; 80];
        assert_eq!(
            hex(&Hmac::<Sha1>::mac(&key, b"Test Using Larger Than Block-Size Key - Hash Key First")),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112"
        );
    }

    // RFC 4231 test vectors for HMAC-SHA256.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0b; 20];
        assert_eq!(
            hex(&Hmac::<Sha256>::mac(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            hex(&Hmac::<Sha256>::mac(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let key = b"secret key";
        let data: Vec<u8> = (0..150u8).collect();
        let oneshot = Hmac::<Sha256>::mac(key, &data);
        let mut h = Hmac::<Sha256>::new(key);
        h.update(&data[..77]);
        h.update(&data[77..]);
        assert_eq!(h.finalize(), oneshot);
    }

    #[test]
    fn ct_eq_semantics() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"abcd"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn distinct_keys_distinct_macs() {
        let m1 = hmac_sha256(b"key1", b"msg");
        let m2 = hmac_sha256(b"key2", b"msg");
        assert_ne!(m1, m2);
    }
}
