//! # tpm-crypto
//!
//! From-scratch cryptographic substrate for the vtpm-xen reproduction of
//! *Improvement for vTPM Access Control on Xen* (ICPPW 2010).
//!
//! The offline dependency set contains no cryptography, and the paper's
//! system sits on a TPM 1.2 — so this crate implements exactly what that
//! stack needs, validated against published test vectors:
//!
//! * [`sha1`]/[`sha256`] — FIPS 180-4 digests behind the [`hash::Digest`] trait.
//! * [`hmac`] — RFC 2104 HMAC, generic over the digest, plus constant-time
//!   comparison ([`hmac::ct_eq`]).
//! * [`bignum`] — u64-limb big integers with Knuth division and an
//!   allocation-free Montgomery engine (dedicated squaring, fixed 4-bit
//!   window exponentiation) plus a retained schoolbook reference path.
//! * [`rsa`] — key generation (Miller–Rabin), CRT private ops with Garner
//!   recombination (and [`rsa::RsaPrivateKey::raw_schoolbook`] as the
//!   differential baseline), OAEP-SHA1 and PKCS#1 v1.5-SHA1 padding
//!   (the TPM 1.2 schemes).
//! * [`aes`] — AES-128/256 via compile-time T-tables with a 4-block
//!   interleaved CTR pipeline for vTPM state protection (AC3); the
//!   original byte-wise rounds survive as the scalar reference path.
//! * [`drbg`] — a deterministic hash DRBG so a seeded TPM replays
//!   identically across runs.
//!
//! Everything here is deterministic given a seed; nothing reads OS entropy
//! directly, which keeps simulation runs reproducible.

pub mod aes;
pub mod bignum;
pub mod drbg;
pub mod hash;
pub mod hmac;
pub mod rsa;
pub mod sha1;
pub mod sha256;

pub use aes::{Aes128, Aes256, AesCtr, AesCtr256};
pub use bignum::BigUint;
pub use drbg::Drbg;
pub use hash::{sha1, sha256, Digest};
pub use hmac::{ct_eq, hmac_sha1, hmac_sha256, Hmac};
pub use rsa::{RsaError, RsaPrivateKey, RsaPublicKey};
