//! Known-answer tests (NIST CAVP / FIPS / RFC vectors) for every
//! primitive in `tpm-crypto`, run against **both** implementations
//! wherever two exist: the optimized default path and the retained
//! scalar reference. The optimization PR's contract is "no output byte
//! changes"; this file is where that contract is pinned to published
//! answers rather than to the code's own history.

use tpm_crypto::aes::{Aes128, Aes256, AesCtr, AesCtr256};
use tpm_crypto::hash::{sha1, sha256, Digest};
use tpm_crypto::hmac::Hmac;
use tpm_crypto::sha1::Sha1;
use tpm_crypto::sha256::Sha256;

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn unhex(s: &str) -> Vec<u8> {
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
        .collect()
}

// ---------------------------------------------------------------- SHA-1

/// FIPS 180-4 / CAVP SHA-1 short- and long-message vectors.
#[test]
fn sha1_cavp_vectors() {
    let cases: &[(&[u8], &str)] = &[
        (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
        (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
        ),
        (
            b"The quick brown fox jumps over the lazy dog",
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12",
        ),
    ];
    for (msg, want) in cases {
        assert_eq!(hex(&sha1(msg)), *want);
    }
}

#[test]
fn sha1_million_a() {
    let data = vec![b'a'; 1_000_000];
    assert_eq!(hex(&sha1(&data)), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

// -------------------------------------------------------------- SHA-256

/// FIPS 180-4 / CAVP SHA-256 vectors.
#[test]
fn sha256_cavp_vectors() {
    let cases: &[(&[u8], &str)] = &[
        (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
        (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
        (
            b"The quick brown fox jumps over the lazy dog",
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592",
        ),
    ];
    for (msg, want) in cases {
        assert_eq!(hex(&sha256(msg)), *want);
    }
}

#[test]
fn sha256_million_a() {
    let data = vec![b'a'; 1_000_000];
    assert_eq!(
        hex(&sha256(&data)),
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    );
}

/// The same message fed in every possible two-part split, plus some
/// byte-at-a-time and odd-chunk schedules, must match the one-shot: the
/// direct-padding `finalize_into` may never observe the chunking.
#[test]
fn sha256_streaming_splits_match_oneshot() {
    let msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
    let want = "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1";
    for split in 0..=msg.len() {
        let mut h = Sha256::new();
        h.update(&msg[..split]);
        h.update(&msg[split..]);
        assert_eq!(hex(&h.finalize()), want, "split at {split}");
    }
    // Byte-at-a-time.
    let mut h = Sha256::new();
    for b in msg {
        h.update(std::slice::from_ref(b));
    }
    assert_eq!(hex(&h.finalize()), want);
    // Three-way ragged splits crossing the 64-byte block boundary.
    let long: Vec<u8> = (0..200u16).map(|i| i as u8).collect();
    let oneshot = sha256(&long);
    for (a, b) in [(1, 63), (63, 1), (64, 64), (5, 120), (63, 2)] {
        let mut h = Sha256::new();
        h.update(&long[..a]);
        h.update(&long[a..a + b]);
        h.update(&long[a + b..]);
        let mut out = [0u8; 32];
        h.finalize_into(&mut out);
        assert_eq!(out, oneshot, "splits {a}/{b}");
    }
}

#[test]
fn sha1_streaming_splits_match_oneshot() {
    let msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
    let want = "84983e441c3bd26ebaae4aa1f95129e5e54670f1";
    for split in 0..=msg.len() {
        let mut h = Sha1::new();
        h.update(&msg[..split]);
        h.update(&msg[split..]);
        assert_eq!(hex(&h.finalize()), want, "split at {split}");
    }
}

/// Padding-boundary regression (the old `finalize` padded with per-byte
/// `update` calls; the rewrite pads in place): message lengths sitting
/// exactly at the 0 / 55 / 56 / 63 / 64 / 65-byte edges, where the
/// padding either just fits (≤55), forces an extra block (56..=63), or
/// starts a fresh block (64). Expected digests computed with a third
/// party implementation (Python `hashlib`).
#[test]
fn sha_block_boundary_lengths() {
    // (len, sha256, sha1) over the pattern byte[i] = (7 i + 3) mod 256.
    let cases: &[(usize, &str, &str)] = &[
        (0, "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
        (1, "084fed08b978af4d7d196a7446a86b58009e636b611db16211b65a9aadff29c5",
            "9842926af7ca0a8cca12604f945414f07b01e13d"),
        (55, "e7313d333c272e639f790978283f9eb392e843d0f29b7016828bb1daa4aac70b",
            "ddf57317ef34bfee3b6df83d359098930eb278bc"),
        (56, "4324d65f3c103567f5589c710bc08f8523f929a9272e3af36fc968e52abc6c27",
            "a0d492bb0fc889d0eca3bc137066ab6f4f74f369"),
        (63, "81c80242132f230c3bd41b3e63bbcff16107339549214a99614ff26664625055",
            "c55856749bef509bdfe6bfebfc7bf4e793e82132"),
        (64, "39e3d7b6b5d075d37d053ad89b24b41bef4f3c29760c84447cab3f3be1882241",
            "bede92be29c3874e1b54ddc77988d606fc857a8e"),
        (65, "aacca6ff74fdbb296d165a45cecfa04e5127bc008770fbbdd48006f2d2fae95e",
            "b05a80522b053d6dc7e0a517d0e70212c7dad11f"),
        (119, "9ce7368e4daf32341631b492e80359dc9f594b48453cd0dd5bf0b19279cc177e",
            "504e27376a6e0f0dba8295b85cb25dc4dfa17d23"),
        (120, "7836b787757e95e58b3ca5aec90b1b004e8deba1e50e9675af9cabf1a13a04b5",
            "82134b02fb3f702491be9bed581eeab59334acb2"),
        (127, "a8d23e75d936f303d248888d9b165ee543f4cbafcad3c9dd2a79bd84faa11d07",
            "34d5e582029e9b9b85b2febe31da3db7cdabaaea"),
        (128, "d2742f1f4ac6bb7ca2b239ee18402ba8b3f9f8e652d2a72973c2b9ba11c08cf6",
            "a09133e6730ffe899efb70204cb5646cd5dc24ee"),
    ];
    for &(len, want256, want1) in cases {
        let msg: Vec<u8> = (0..len).map(|i| ((i * 7 + 3) % 256) as u8).collect();
        assert_eq!(hex(&sha256(&msg)), want256, "sha256 len {len}");
        assert_eq!(hex(&sha1(&msg)), want1, "sha1 len {len}");
        // The streaming path must agree with the one-shot at the same edges.
        let mut h = Sha256::new();
        h.update(&msg);
        assert_eq!(hex(&h.finalize()), want256, "streaming sha256 len {len}");
    }
}

// ---------------------------------------------------------- HMAC-SHA256

/// RFC 4231 HMAC-SHA256 test cases 1–4, 6, 7 (5 is a truncated-output
/// case this API does not expose).
#[test]
fn hmac_sha256_rfc4231() {
    let tc: &[(Vec<u8>, Vec<u8>, &str)] = &[
        (
            vec![0x0b; 20],
            b"Hi There".to_vec(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
        ),
        (
            b"Jefe".to_vec(),
            b"what do ya want for nothing?".to_vec(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
        ),
        (
            vec![0xaa; 20],
            vec![0xdd; 50],
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe",
        ),
        (
            (1..=25u8).collect(),
            vec![0xcd; 50],
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b",
        ),
        (
            vec![0xaa; 131],
            b"Test Using Larger Than Block-Size Key - Hash Key First".to_vec(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54",
        ),
        (
            vec![0xaa; 131],
            b"This is a test using a larger than block-size key and a larger than \
              block-size data. The key needs to be hashed before being used by the \
              HMAC algorithm."
                .to_vec(),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2",
        ),
    ];
    for (i, (key, data, want)) in tc.iter().enumerate() {
        assert_eq!(hex(&Hmac::<Sha256>::mac(key, data)), *want, "RFC 4231 case {}", i + 1);
        // Streamed in two halves through the same state machine.
        let mut h = Hmac::<Sha256>::new(key);
        let mid = data.len() / 2;
        h.update(&data[..mid]);
        h.update(&data[mid..]);
        assert_eq!(hex(&h.finalize()), *want, "streamed RFC 4231 case {}", i + 1);
    }
}

// ----------------------------------------------------------- AES (ECB)

/// SP 800-38A F.1.1: AES-128 ECB encryption, all four blocks, on both
/// the T-table and scalar paths.
#[test]
fn aes128_ecb_sp800_38a() {
    let key: [u8; 16] = unhex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
    let cipher = Aes128::new(&key);
    let cases = [
        ("6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97"),
        ("ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf"),
        ("30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688"),
        ("f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4"),
    ];
    for (plain, want) in cases {
        let mut t: [u8; 16] = unhex(plain).try_into().unwrap();
        let mut s = t;
        cipher.encrypt_block(&mut t);
        cipher.encrypt_block_scalar(&mut s);
        assert_eq!(hex(&t), want, "t-table {plain}");
        assert_eq!(hex(&s), want, "scalar {plain}");
    }
}

/// SP 800-38A F.1.5: AES-256 ECB encryption, both paths.
#[test]
fn aes256_ecb_sp800_38a() {
    let key: [u8; 32] =
        unhex("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4")
            .try_into()
            .unwrap();
    let cipher = Aes256::new(&key);
    let cases = [
        ("6bc1bee22e409f96e93d7e117393172a", "f3eed1bdb5d2a03c064b5a7e3db181f8"),
        ("ae2d8a571e03ac9c9eb76fac45af8e51", "591ccb10d410ed26dc5ba74a31362870"),
        ("30c81c46a35ce411e5fbc1191a0a52ef", "b6ed21b99ca6f4f9f153e7b1beafed1d"),
        ("f69f2445df4f9b17ad2b417be66c3710", "23304b7a39f9f3ff067d8d8f9e24ecc7"),
    ];
    for (plain, want) in cases {
        let mut t: [u8; 16] = unhex(plain).try_into().unwrap();
        let mut s = t;
        cipher.encrypt_block(&mut t);
        cipher.encrypt_block_scalar(&mut s);
        assert_eq!(hex(&t), want, "t-table {plain}");
        assert_eq!(hex(&s), want, "scalar {plain}");
    }
}

// ----------------------------------------------------------- AES (CTR)

/// The SP 800-38A CTR vectors use the 128-bit initial counter block
/// `f0f1f2f3f4f5f6f7 f8f9fafbfcfdfeff`. In this crate's split layout
/// that is nonce `f0..f7` with the block counter starting at
/// `0xf8f9fafbfcfdfeff`; no carry crosses the 64-bit boundary within
/// four blocks, so the mapping is exact.
const CTR_NONCE: [u8; 8] = [0xf0, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7];
const CTR_START: u64 = 0xf8f9_fafb_fcfd_feff;

const CTR_PLAIN: &str = "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51\
                         30c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710";

/// SP 800-38A F.5.1: CTR-AES128 encryption (all 64 bytes), through the
/// pipelined path, the seekable per-block path, and a scalar
/// single-block reference built on `encrypt_block_scalar`.
#[test]
fn aes128_ctr_sp800_38a() {
    let key: [u8; 16] = unhex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
    let want = "874d6191b620e3261bef6864990db6ce9806f66b7970fdff8617187bb9fffdff\
                5ae4df3edbd5d35e5b4f09020db03eab1e031dda2fbe03d1792170a0f3009cee";
    // Pipelined (4-blocks-at-a-time) path.
    let mut data = unhex(CTR_PLAIN);
    AesCtr::new(&key, CTR_NONCE).apply_keystream_at(&mut data, CTR_START);
    assert_eq!(hex(&data), want);
    // One block at a time through the seek API (exercises the scalar tail).
    let mut data = unhex(CTR_PLAIN);
    let ctr = AesCtr::new(&key, CTR_NONCE);
    for (i, chunk) in data.chunks_mut(16).enumerate() {
        ctr.apply_keystream_at(chunk, CTR_START.wrapping_add(i as u64));
    }
    assert_eq!(hex(&data), want);
    // Scalar reference: counter blocks through encrypt_block_scalar.
    let cipher = Aes128::new(&key);
    let mut data = unhex(CTR_PLAIN);
    for (i, chunk) in data.chunks_mut(16).enumerate() {
        let mut block = [0u8; 16];
        block[..8].copy_from_slice(&CTR_NONCE);
        block[8..].copy_from_slice(&CTR_START.wrapping_add(i as u64).to_be_bytes());
        cipher.encrypt_block_scalar(&mut block);
        for (d, k) in chunk.iter_mut().zip(block.iter()) {
            *d ^= k;
        }
    }
    assert_eq!(hex(&data), want);
}

/// SP 800-38A F.5.5: CTR-AES256 encryption.
#[test]
fn aes256_ctr_sp800_38a() {
    let key: [u8; 32] =
        unhex("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4")
            .try_into()
            .unwrap();
    let want = "601ec313775789a5b7a7f504bbf3d228f443e3ca4d62b59aca84e990cacaf5c5\
                2b0930daa23de94ce87017ba2d84988ddfc9c58db67aada613c2dd08457941a6";
    let mut data = unhex(CTR_PLAIN);
    AesCtr256::new(&key, CTR_NONCE).apply_keystream_at(&mut data, CTR_START);
    assert_eq!(hex(&data), want);
    // Scalar reference path.
    let cipher = Aes256::new(&key);
    let mut data = unhex(CTR_PLAIN);
    for (i, chunk) in data.chunks_mut(16).enumerate() {
        let mut block = [0u8; 16];
        block[..8].copy_from_slice(&CTR_NONCE);
        block[8..].copy_from_slice(&CTR_START.wrapping_add(i as u64).to_be_bytes());
        cipher.encrypt_block_scalar(&mut block);
        for (d, k) in chunk.iter_mut().zip(block.iter()) {
            *d ^= k;
        }
    }
    assert_eq!(hex(&data), want);
}
