//! Differential property tests: the optimized paths (Montgomery +
//! fixed-window exponentiation, CRT + Garner recombination, 4-block
//! pipelined AES-CTR) must be **byte-identical** to the slow reference
//! paths they replaced (`mod_pow_schoolbook`, `raw_schoolbook`, and
//! single-block scalar CTR) on arbitrary inputs — including the
//! boundary shapes where windowed/pipelined code classically breaks:
//! operands hugging the modulus, all-ones carry chains, p≈q CRT keys,
//! zero/one exponents, ragged lengths, and counter wrap-around.

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::proptest;
use tpm_crypto::aes::{Aes128, Aes256, AesCtr};
use tpm_crypto::bignum::MontgomeryCtx;
use tpm_crypto::rsa::RsaPrivateKey;
use tpm_crypto::{BigUint, Drbg};

// ------------------------------------------------------ helper plumbing

/// Scalar single-block CTR reference: one counter block at a time
/// through the byte-wise reference rounds, no batching, no seek logic.
fn ctr_reference_128(key: &[u8; 16], nonce: &[u8; 8], data: &mut [u8], start_block: u64) {
    let cipher = Aes128::new(key);
    for (i, chunk) in data.chunks_mut(16).enumerate() {
        let mut block = [0u8; 16];
        block[..8].copy_from_slice(nonce);
        block[8..].copy_from_slice(&start_block.wrapping_add(i as u64).to_be_bytes());
        cipher.encrypt_block_scalar(&mut block);
        for (d, k) in chunk.iter_mut().zip(block.iter()) {
            *d ^= k;
        }
    }
}

fn ctr_reference_256(key: &[u8; 32], nonce: &[u8; 8], data: &mut [u8], start_block: u64) {
    let cipher = Aes256::new(key);
    for (i, chunk) in data.chunks_mut(16).enumerate() {
        let mut block = [0u8; 16];
        block[..8].copy_from_slice(nonce);
        block[8..].copy_from_slice(&start_block.wrapping_add(i as u64).to_be_bytes());
        cipher.encrypt_block_scalar(&mut block);
        for (d, k) in chunk.iter_mut().zip(block.iter()) {
            *d ^= k;
        }
    }
}

/// Deterministically generated RSA keys, shared across cases (keygen is
/// the expensive part; the differential property varies the message).
fn test_keys() -> &'static [RsaPrivateKey] {
    use std::sync::OnceLock;
    static KEYS: OnceLock<Vec<RsaPrivateKey>> = OnceLock::new();
    KEYS.get_or_init(|| {
        [b"proptest-key-a".as_slice(), b"proptest-key-b".as_slice()]
            .iter()
            .map(|seed| {
                let mut rng = Drbg::new(seed);
                RsaPrivateKey::generate(1024, &mut rng)
            })
            .collect()
    })
}

// --------------------------------------------- RSA / bignum differential

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// CRT + Montgomery + window private op == plain schoolbook c^d mod n.
    #[test]
    fn rsa_crt_matches_schoolbook(msg in vec(any::<u8>(), 1..100), key_idx in 0usize..2) {
        let key = &test_keys()[key_idx];
        let m = BigUint::from_bytes_be(&msg).rem(&key.public.n);
        let c = key.public.raw(&m);
        prop_assert_eq!(key.raw(&c).to_bytes_be(), key.raw_schoolbook(&c).to_bytes_be());
        // And the roundtrip actually decrypts.
        prop_assert_eq!(key.raw(&c).to_bytes_be(), m.to_bytes_be());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Montgomery fixed-window mod_pow == schoolbook on random odd moduli
    /// of 1..5 limbs (the even-modulus fallback shares the schoolbook
    /// structure already).
    #[test]
    fn mod_pow_matches_schoolbook(
        base in vec(any::<u8>(), 0..40),
        exp in vec(any::<u8>(), 0..24),
        modulus in vec(any::<u8>(), 1..40),
    ) {
        // Force the modulus odd and nonzero.
        let mut modulus = modulus;
        *modulus.last_mut().unwrap() |= 1;
        let m = BigUint::from_bytes_be(&modulus);
        let b = BigUint::from_bytes_be(&base);
        let e = BigUint::from_bytes_be(&exp);
        prop_assert_eq!(
            b.mod_pow(&e, &m).to_bytes_be(),
            b.mod_pow_schoolbook(&e, &m).to_bytes_be()
        );
    }

    /// Pipelined CTR == scalar single-block CTR for arbitrary lengths,
    /// offsets into the stream, and keys.
    #[test]
    fn ctr_pipelined_matches_scalar(
        key in proptest::array::uniform16(any::<u8>()),
        nonce in proptest::array::uniform8(any::<u8>()),
        data in vec(any::<u8>(), 0..300),
        start in any::<u64>(),
    ) {
        let mut fast = data.clone();
        AesCtr::new(&key, nonce).apply_keystream_at(&mut fast, start);
        let mut slow = data.clone();
        ctr_reference_128(&key, &nonce, &mut slow, start);
        prop_assert_eq!(fast, slow);
    }

    /// Same for AES-256, plus the cached-schedule entry point.
    #[test]
    fn ctr256_pipelined_matches_scalar(
        key in proptest::array::uniform32(any::<u8>()),
        nonce in proptest::array::uniform8(any::<u8>()),
        data in vec(any::<u8>(), 0..200),
        start in any::<u64>(),
    ) {
        let mut fast = data.clone();
        Aes256::new(&key).ctr_xor_at(&nonce, &mut fast, start);
        let mut slow = data.clone();
        ctr_reference_256(&key, &nonce, &mut slow, start);
        prop_assert_eq!(fast, slow);
    }

    /// Splitting a stream at any point must not change the bytes: the
    /// pipelined path's 4-block batching may never leak into output
    /// position. Also covers ragged (non-multiple-of-16) splits.
    #[test]
    fn ctr_split_invariance(
        key in proptest::array::uniform16(any::<u8>()),
        nonce in proptest::array::uniform8(any::<u8>()),
        blocks in 0usize..12,
        extra in 0usize..16,
        split_block in 0usize..12,
    ) {
        let len = blocks * 16 + extra;
        let data: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
        let ctr = AesCtr::new(&key, nonce);
        let mut whole = data.clone();
        ctr.apply_keystream(&mut whole);
        let cut = (split_block * 16).min(len);
        let mut parts = data.clone();
        ctr.apply_keystream_at(&mut parts[..cut], 0);
        ctr.apply_keystream_at(&mut parts[cut..], (cut / 16) as u64);
        prop_assert_eq!(whole, parts);
    }
}

/// Counter wrap-around: the 64-bit block counter wraps modulo 2^64 and
/// the pipelined batcher must wrap exactly like the scalar path across
/// the boundary (including mid-batch).
#[test]
fn ctr_counter_wrap_boundary() {
    let key = [0x42u8; 16];
    let nonce = [7u8; 8];
    for offset in 0..5u64 {
        let start = u64::MAX - offset;
        let data: Vec<u8> = (0..160).map(|i| i as u8).collect();
        let mut fast = data.clone();
        AesCtr::new(&key, nonce).apply_keystream_at(&mut fast, start);
        let mut slow = data.clone();
        ctr_reference_128(&key, &nonce, &mut slow, start);
        assert_eq!(fast, slow, "wrap at MAX - {offset}");
    }
}

// ----------------------------------------------------- bignum edge cases

/// Operands hugging the modulus: base in {m-2, m-1, m, m+1} (mod_pow
/// reduces first; the Montgomery engine must agree with schoolbook on
/// every one, including the conditional-final-subtraction edge).
#[test]
fn mont_base_near_modulus() {
    let moduli = [
        BigUint::from_hex("f123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"),
        BigUint::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff"),
        BigUint::from_u64(0xffff_ffff_ffff_fff1),
        BigUint::from_u64(3),
    ];
    let exp = BigUint::from_hex("10001");
    for m in &moduli {
        assert!(m.is_odd());
        for delta in 0..4u64 {
            let base = if delta < 2 {
                m.sub(&BigUint::from_u64(2 - delta)) // m-2, m-1
            } else {
                m.add(&BigUint::from_u64(delta - 2)) // m, m+1
            };
            assert_eq!(
                base.mod_pow(&exp, m).to_bytes_be(),
                base.mod_pow_schoolbook(&exp, m).to_bytes_be(),
                "modulus {} base m{:+}",
                m.to_hex(),
                delta as i64 - 2
            );
        }
    }
}

/// All-ones limbs force the longest possible carry-propagation chains
/// through the Montgomery reduction and the squaring kernel's doubling
/// pass.
#[test]
fn mont_all_ones_carry_chains() {
    // 2^256 - 1 = product of known factors, but as a modulus it is just
    // an odd value with every bit set.
    let m = BigUint::from_hex(&"f".repeat(64));
    let base = BigUint::from_hex(&"f".repeat(63)); // 2^252 - 1 < m
    let exps = [
        BigUint::from_u64(2),
        BigUint::from_u64(3),
        BigUint::from_hex(&"f".repeat(32)),
        BigUint::from_hex("8000000000000001"),
    ];
    for e in &exps {
        assert_eq!(
            base.mod_pow(e, &m).to_bytes_be(),
            base.mod_pow_schoolbook(e, &m).to_bytes_be(),
            "exp {}",
            e.to_hex()
        );
    }
}

/// Zero and one exponents, and exponents that are exact multiples of
/// the 4-bit window, on both engines.
#[test]
fn mont_trivial_and_window_aligned_exponents() {
    let m = BigUint::from_hex("c000000000000000000000000000000000000000000000000000000000000df1");
    let base = BigUint::from_u64(0xdead_beef_cafe_f00d);
    let cases = [
        BigUint::zero(),
        BigUint::one(),
        BigUint::from_u64(16),          // one full window, low bits zero
        BigUint::from_u64(0x10000),     // window-aligned power of two
        BigUint::from_u64(0xffff),      // every window all-ones
        BigUint::from_hex("100000000000000000000000000000000"), // > modulus bits
    ];
    for e in &cases {
        assert_eq!(
            base.mod_pow(e, &m).to_bytes_be(),
            base.mod_pow_schoolbook(e, &m).to_bytes_be(),
            "exp {}",
            e.to_hex()
        );
    }
    // exp = 0 must yield exactly 1 regardless of engine.
    assert!(base.mod_pow(&BigUint::zero(), &m).is_one());
    // modulus 1: everything is 0.
    assert!(base.mod_pow(&BigUint::from_u64(5), &BigUint::one()).is_zero());
}

/// Direct MontgomeryCtx::pow probes with base < n at the extremes
/// (0, 1, n-1), bypassing mod_pow's pre-reduction.
#[test]
fn mont_ctx_direct_extremes() {
    let m = BigUint::from_hex("fedcba9876543210fedcba9876543210fedcba9876543210fedcba9876543211");
    let ctx = MontgomeryCtx::new(&m);
    let e = BigUint::from_u64(65537);
    for base in [BigUint::zero(), BigUint::one(), m.sub(&BigUint::one())] {
        assert_eq!(
            ctx.pow(&base, &e).to_bytes_be(),
            base.mod_pow_schoolbook(&e, &m).to_bytes_be(),
            "base {}",
            base.to_hex()
        );
    }
    // (n-1)^2 mod n == 1: the classic conditional-subtraction probe.
    let nm1 = m.sub(&BigUint::one());
    assert!(ctx.pow(&nm1, &BigUint::from_u64(2)).is_one());
}

/// CRT with p ≈ q (twin-ish primes): m1 - m2 is tiny, h is tiny, and
/// Garner's recombination must still be exact. Built from a hand-rolled
/// key over p = 10007, q = 10009 rather than generated primes so the
/// near-equal shape is guaranteed.
#[test]
fn crt_close_primes() {
    let p = BigUint::from_u64(10007);
    let q = BigUint::from_u64(10009);
    let n = p.mul(&q);
    let e = BigUint::from_u64(65537);
    let phi = p.sub(&BigUint::one()).mul(&q.sub(&BigUint::one()));
    let d = e.mod_inverse(&phi).expect("e coprime to phi");
    let dp = d.rem(&p.sub(&BigUint::one()));
    let dq = d.rem(&q.sub(&BigUint::one()));
    let qinv = q.mod_inverse(&p).expect("q invertible mod p");
    let key = RsaPrivateKey {
        public: tpm_crypto::rsa::RsaPublicKey { n: n.clone(), e },
        d,
        p,
        q,
        dp,
        dq,
        qinv,
    };
    // Every residue class shape: 0, 1, multiples of p and q, n-1.
    let mut probes = vec![
        BigUint::zero(),
        BigUint::one(),
        BigUint::from_u64(10007), // ≡ 0 mod p
        BigUint::from_u64(10009), // ≡ 0 mod q
        n.sub(&BigUint::one()),
    ];
    for x in 2..40u64 {
        probes.push(BigUint::from_u64(x * 2_500_001 % 100_160_063));
    }
    for c in &probes {
        let c = c.rem(&key.public.n);
        assert_eq!(
            key.raw(&c).to_bytes_be(),
            key.raw_schoolbook(&c).to_bytes_be(),
            "cipher {}",
            c.to_hex()
        );
    }
}

/// The generated 1024-bit keys as well: raw == raw_schoolbook on edge
/// ciphertexts (0, 1, n-1) where CRT's m1/m2 degenerate.
#[test]
fn crt_edge_ciphertexts() {
    for key in test_keys() {
        let n = &key.public.n;
        for c in [BigUint::zero(), BigUint::one(), n.sub(&BigUint::one())] {
            assert_eq!(
                key.raw(&c).to_bytes_be(),
                key.raw_schoolbook(&c).to_bytes_be(),
                "cipher {}",
                c.to_hex()
            );
        }
    }
}
