//! The black box: a bounded ring of recent stream events, snapshotted
//! when something goes wrong.
//!
//! Aircraft flight recorders keep the last N minutes, not the whole
//! flight; same idea here. The sentinel pushes every event through the
//! recorder, and when a detector fires (or a host comes back from crash
//! recovery) the current ring contents are frozen into a [`FlightDump`]
//! — the context an operator needs to understand the alert, at O(N)
//! memory no matter how long the run.

use std::collections::VecDeque;

use crate::StreamEvent;

/// Bounded ring of the most recent [`StreamEvent`]s.
pub struct FlightRecorder {
    cap: usize,
    buf: VecDeque<StreamEvent>,
}

impl FlightRecorder {
    /// A recorder retaining at most `cap` events (`cap == 0` keeps one).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        FlightRecorder { cap, buf: VecDeque::with_capacity(cap) }
    }

    /// Append an event, evicting the oldest once full.
    pub fn push(&mut self, ev: StreamEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(ev);
    }

    /// Events currently retained, oldest first.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Freeze the current contents into a dump.
    pub fn dump(&self, reason: String, at_ns: u64) -> FlightDump {
        FlightDump { reason, at_ns, events: self.buf.iter().cloned().collect() }
    }
}

/// One frozen black-box snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightDump {
    /// Why the snapshot was taken (alert line or crash-recovery marker).
    pub reason: String,
    /// Virtual timestamp of the trigger (ns).
    pub at_ns: u64,
    /// The retained events, oldest first.
    pub events: Vec<StreamEvent>,
}

impl FlightDump {
    /// Deterministic transcript line.
    pub fn summary(&self) -> String {
        format!("flight-dump at={}ns events={} ({})", self.at_ns, self.events.len(), self.reason)
    }

    /// Full deterministic rendering, one described event per line.
    pub fn render(&self) -> String {
        let mut out = self.summary();
        for ev in &self.events {
            out.push_str("\n  ");
            out.push_str(&ev.describe());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gauge(at_ns: u64) -> StreamEvent {
        StreamEvent::Gauge { host: 0, at_ns, name: "mirror_updates", value: at_ns }
    }

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let mut r = FlightRecorder::new(4);
        for i in 0..10 {
            r.push(gauge(i));
        }
        assert_eq!(r.len(), 4);
        let d = r.dump("test".into(), 10);
        let kept: Vec<u64> = d.events.iter().map(StreamEvent::at_ns).collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
        assert!(d.render().contains("mirror_updates=9"));
    }

    #[test]
    fn dump_is_a_frozen_copy() {
        let mut r = FlightRecorder::new(8);
        r.push(gauge(1));
        let d = r.dump("freeze".into(), 1);
        r.push(gauge(2));
        assert_eq!(d.events.len(), 1, "later pushes must not leak into the dump");
        assert_eq!(d.summary(), "flight-dump at=1ns events=1 (freeze)");
    }
}
