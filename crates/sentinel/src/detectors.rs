//! The built-in detector set.
//!
//! Detectors are small online state machines: one `observe` per stream
//! event, no background threads, no clocks of their own — time is
//! whatever the event stream says. Each security detector *latches* per
//! scope (host, domain, …): the first firing raises the alert and dumps
//! the black box; repeats of the same condition stay quiet so a noisy
//! attack cannot flood the alert log it is trying to hide in.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use vtpm_telemetry::{
    MigrationOutcome, Outcome, DENY_QUOTE_REPLAY, DENY_REJECTED_STALE, DENY_STALE_QUOTE,
};

use crate::{Alert, AuditKind, SentinelConfig, Severity, StreamEvent};

/// `MigrationStage::RejectedStale as u8` — the audit stage code of an
/// anti-rollback refusal (kept as a constant to avoid a dependency on
/// the access-control crate).
pub const STAGE_REJECTED_STALE: u8 = 7;

/// An online detector over the sentinel stream.
pub trait Detector {
    /// Stable detector name (alert field, transcript key).
    fn name(&self) -> &'static str;
    /// Consume one event; return an alert if the detector fires on it.
    fn observe(&mut self, ev: &StreamEvent) -> Option<Alert>;
}

/// The default set, configured from a [`SentinelConfig`].
pub fn default_detectors(cfg: &SentinelConfig) -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(DenyRateEwma::new(
            cfg.deny_rate_alpha,
            cfg.deny_rate_threshold,
            cfg.deny_rate_min_samples,
        )),
        Box::new(DumpSignature::new(cfg.recovery_dump_grace_ns)),
        Box::new(ReplayWatch::new(cfg.replay_window_ns, cfg.replay_burst)),
        Box::new(NonceHygiene::new()),
        Box::new(ScrubEscalation::new(cfg.scrub_budget)),
        Box::new(QuoteStorm::new(cfg.quote_storm_window_ns, cfg.quote_storm_burst)),
        Box::new(StaleQuoteWatch::new(cfg.stale_quote_window_ns, cfg.stale_quote_burst)),
        Box::new(ChurnStorm::new(
            cfg.churn_window_ns,
            cfg.churn_storm_crashes,
            cfg.churn_clear_crashes,
            cfg.host_flap_crashes,
        )),
        Box::new(SloBurn::new()),
    ]
}

/// Per-(host, domain) EWMA of the denied fraction of request spans.
///
/// A guest probing ordinals it has no credential for shows up as a
/// sustained majority-denied stream; normal workloads (even chaos ones
/// that mix some denied traffic in) stay well below the threshold.
pub struct DenyRateEwma {
    alpha: f64,
    threshold: f64,
    min_samples: u64,
    /// (ewma, samples) per (host, domain). BTreeMap for deterministic
    /// iteration/debug output.
    state: BTreeMap<(u32, u32), (f64, u64)>,
    fired: BTreeSet<(u32, u32)>,
}

impl DenyRateEwma {
    /// New detector with the given smoothing/threshold parameters.
    pub fn new(alpha: f64, threshold: f64, min_samples: u64) -> Self {
        DenyRateEwma { alpha, threshold, min_samples, state: BTreeMap::new(), fired: BTreeSet::new() }
    }
}

impl Detector for DenyRateEwma {
    fn name(&self) -> &'static str {
        "deny-rate"
    }

    fn observe(&mut self, ev: &StreamEvent) -> Option<Alert> {
        let StreamEvent::Span { host, record } = ev else { return None };
        let key = (*host, record.domain);
        let x = if matches!(record.outcome, Outcome::Denied(_)) { 1.0 } else { 0.0 };
        let entry = self.state.entry(key).or_insert((0.0, 0));
        entry.0 = self.alpha * x + (1.0 - self.alpha) * entry.0;
        entry.1 += 1;
        let (ewma, samples) = *entry;
        if samples >= self.min_samples && ewma > self.threshold && self.fired.insert(key) {
            return Some(Alert {
                detector: "deny-rate",
                host: *host,
                at_ns: record.end_ns,
                severity: Severity::Critical,
                trace_id: Some(record.request_id),
                domain: Some(record.domain),
                detail: format!(
                    "domain {} deny-rate EWMA {:.3} > {:.3} after {} spans",
                    record.domain, ewma, self.threshold, samples
                ),
            });
        }
        None
    }
}

/// Fires on any unexplained use of the memory-dump facility.
///
/// Nothing in ordinary operation — request handling, mirroring, live
/// migration — ever reads frames through the dump path; "memory dump
/// software" *is* the A1/A7 attack, and the victim's state lives in
/// Dom0-owned mirror frames, so the mere use of the facility is the
/// fingerprint, foreign frames or not. The one legitimate user is the
/// manager's crash-recovery scan, which sweeps Dom0 memory for mirror
/// metadata: Dom0 dumps landing within `grace_ns` of an observed
/// crash-recovery on the same host are excused. A guest dumping only
/// its *own* frames is ignored — the hypervisor shows it nothing
/// cross-domain. Everything else fires. The check is structural, not
/// statistical, so it has zero false positives by construction on
/// attack-free streams.
pub struct DumpSignature {
    grace_ns: u64,
    /// Crash-recovery timestamps per host, as observed on the stream.
    recoveries: BTreeMap<u32, Vec<u64>>,
    fired: BTreeSet<(u32, u32)>,
}

impl DumpSignature {
    /// New detector excusing recovery scans within `grace_ns`.
    pub fn new(grace_ns: u64) -> Self {
        DumpSignature { grace_ns, recoveries: BTreeMap::new(), fired: BTreeSet::new() }
    }

    /// Is this a Dom0 dump explained by a recovery on the same host?
    /// Timestamps compare on the host's own clock: the scan and the
    /// recovery marker are stamped back to back during `recover`.
    fn recovery_scan(&self, host: u32, caller_domain: u32, at_ns: u64) -> bool {
        caller_domain == 0
            && self
                .recoveries
                .get(&host)
                .is_some_and(|rs| rs.iter().any(|&r| at_ns.abs_diff(r) <= self.grace_ns))
    }
}

impl Detector for DumpSignature {
    fn name(&self) -> &'static str {
        "dump-signature"
    }

    fn observe(&mut self, ev: &StreamEvent) -> Option<Alert> {
        if let StreamEvent::CrashRecovery { host, at_ns } = ev {
            self.recoveries.entry(*host).or_default().push(*at_ns);
            return None;
        }
        let StreamEvent::Dump(d) = ev else { return None };
        let guest_self_dump = d.caller_domain != 0 && d.foreign_frames == 0;
        if guest_self_dump
            || self.recovery_scan(d.host, d.caller_domain, d.at_ns)
            || !self.fired.insert((d.host, d.caller_domain))
        {
            return None;
        }
        Some(Alert {
            detector: self.name(),
            host: d.host,
            at_ns: d.at_ns,
            severity: Severity::Critical,
            trace_id: None,
            domain: None,
            detail: format!(
                "dom{} dumped {} frames ({} foreign) outside any recovery window — \
                 memory-dump attack pattern",
                d.caller_domain, d.frames, d.foreign_frames
            ),
        })
    }
}

/// Watches for bursts of `RejectedStale` — a replayer hammering burned
/// epochs at a destination.
///
/// Sources: audit records chaining the `RejectedStale` migration stage,
/// protocol-deny audit codes, and migration spans that ended
/// `RejectedStale`. A healthy `migrate()` retry loop produces at most a
/// couple per attempt; `burst` within `window_ns` of virtual time means
/// someone is actively replaying.
pub struct ReplayWatch {
    window_ns: u64,
    burst: usize,
    /// Recent refusal timestamps per host.
    hits: BTreeMap<u32, VecDeque<u64>>,
    fired: BTreeSet<u32>,
}

impl ReplayWatch {
    /// New watch over `window_ns` of virtual time.
    pub fn new(window_ns: u64, burst: usize) -> Self {
        ReplayWatch { window_ns, burst, hits: BTreeMap::new(), fired: BTreeSet::new() }
    }

    fn note(&mut self, host: u32, at_ns: u64, trace: Option<u64>) -> Option<Alert> {
        let q = self.hits.entry(host).or_default();
        q.push_back(at_ns);
        while q.front().is_some_and(|&t| t + self.window_ns < at_ns) {
            q.pop_front();
        }
        if q.len() >= self.burst && self.fired.insert(host) {
            return Some(Alert {
                detector: "replay-watch",
                host,
                at_ns,
                severity: Severity::Critical,
                trace_id: trace,
                domain: None,
                detail: format!(
                    "{} stale-epoch rejections within {}ms — migration replay storm",
                    q.len(),
                    self.window_ns / 1_000_000
                ),
            });
        }
        None
    }
}

impl Detector for ReplayWatch {
    fn name(&self) -> &'static str {
        "replay-watch"
    }

    fn observe(&mut self, ev: &StreamEvent) -> Option<Alert> {
        match ev {
            StreamEvent::Audit(a)
                if matches!(
                    a.kind,
                    AuditKind::MigrationStage(STAGE_REJECTED_STALE)
                        | AuditKind::Denied(DENY_REJECTED_STALE)
                ) =>
            {
                self.note(a.host, a.at_ns, Some(a.request_id))
            }
            StreamEvent::MigrationSpan(m) if m.outcome == MigrationOutcome::RejectedStale => {
                self.note(m.dst_host, ev.at_ns(), Some(m.trace_id))
            }
            _ => None,
        }
    }
}

/// Nonce reuse is never acceptable: the mirror's encryption depends on
/// nonce uniqueness, so a nonzero `nonce_reuses` gauge is an invariant
/// break, full stop.
pub struct NonceHygiene {
    fired: BTreeSet<u32>,
}

impl NonceHygiene {
    /// New detector.
    pub fn new() -> Self {
        NonceHygiene { fired: BTreeSet::new() }
    }
}

impl Default for NonceHygiene {
    fn default() -> Self {
        Self::new()
    }
}

impl Detector for NonceHygiene {
    fn name(&self) -> &'static str {
        "nonce-hygiene"
    }

    fn observe(&mut self, ev: &StreamEvent) -> Option<Alert> {
        let StreamEvent::Gauge { host, at_ns, name, value } = ev else { return None };
        if *name != "nonce_reuses" || *value == 0 || !self.fired.insert(*host) {
            return None;
        }
        Some(Alert {
            detector: self.name(),
            host: *host,
            at_ns: *at_ns,
            severity: Severity::Critical,
            trace_id: None,
            domain: None,
            detail: format!("nonce_reuses = {value} — encryption nonce uniqueness violated"),
        })
    }
}

/// Escalates when cumulative mirror scrub failures cross a budget.
///
/// Individual scrub failures are expected under injected faults (the
/// manager retries and burns the generation), so this is a *warning*
/// threshold on the cumulative gauge, not a per-event alarm.
pub struct ScrubEscalation {
    budget: u64,
    fired: BTreeSet<u32>,
}

impl ScrubEscalation {
    /// New detector tolerating up to `budget` failures per host.
    pub fn new(budget: u64) -> Self {
        ScrubEscalation { budget, fired: BTreeSet::new() }
    }
}

impl Detector for ScrubEscalation {
    fn name(&self) -> &'static str {
        "scrub-escalation"
    }

    fn observe(&mut self, ev: &StreamEvent) -> Option<Alert> {
        let StreamEvent::Gauge { host, at_ns, name, value } = ev else { return None };
        if *name != "mirror_scrub_failures" || *value < self.budget || !self.fired.insert(*host) {
            return None;
        }
        Some(Alert {
            detector: self.name(),
            host: *host,
            at_ns: *at_ns,
            severity: Severity::Warning,
            trace_id: None,
            domain: None,
            detail: format!(
                "mirror_scrub_failures = {value} reached budget {} — mirror hygiene degrading",
                self.budget
            ),
        })
    }
}

/// `vtpm_attest::Verdict::Stale.code()` — kept as a constant to avoid a
/// dependency on the attestation crate.
pub const VERDICT_STALE: u8 = 1;
/// `vtpm_attest::Verdict::Replayed.code()`.
pub const VERDICT_REPLAYED: u8 = 2;

/// Per-(host, verifier) burst detector over attestation submissions.
///
/// An honest verifier polls the plane at the nonce-window cadence —
/// seconds of virtual time between submissions. A scripted quote storm
/// shows up as a dense run of submissions (whatever their verdicts)
/// from one verifier identity inside a window no honest cadence can
/// reach. The alert carries the verifier in `domain`, so the harness
/// bridge can feed it straight into the verifier pool's admission
/// throttle — the same closed loop the deny-rate detector drives for
/// ring ingress.
pub struct QuoteStorm {
    window_ns: u64,
    burst: usize,
    /// Recent submission timestamps per (host, verifier).
    hits: BTreeMap<(u32, u32), VecDeque<u64>>,
    fired: BTreeSet<(u32, u32)>,
}

impl QuoteStorm {
    /// New detector firing at `burst` submissions within `window_ns`.
    pub fn new(window_ns: u64, burst: usize) -> Self {
        QuoteStorm { window_ns, burst, hits: BTreeMap::new(), fired: BTreeSet::new() }
    }
}

impl Detector for QuoteStorm {
    fn name(&self) -> &'static str {
        "quote-storm"
    }

    fn observe(&mut self, ev: &StreamEvent) -> Option<Alert> {
        let StreamEvent::Attest(a) = ev else { return None };
        let key = (a.host, a.verifier);
        let q = self.hits.entry(key).or_default();
        q.push_back(a.at_ns);
        while q.front().is_some_and(|&t| t + self.window_ns < a.at_ns) {
            q.pop_front();
        }
        if q.len() >= self.burst && self.fired.insert(key) {
            return Some(Alert {
                detector: "quote-storm",
                host: a.host,
                at_ns: a.at_ns,
                severity: Severity::Critical,
                trace_id: None,
                domain: Some(a.verifier),
                detail: format!(
                    "verifier {} sent {} attestation requests within {}us — quote storm",
                    a.verifier,
                    q.len(),
                    self.window_ns / 1_000
                ),
            });
        }
        None
    }
}

/// Watches for bursts of stale or replayed deep-quote presentations.
///
/// Sources: verifier-plane verdicts (stale / replayed) on the attest
/// stream, and audit records carrying the matching per-reason deny
/// codes — so the watch works whether the pool's audit chain or its
/// event stream (or both) is wired in. One refusal is routine — an
/// honest verifier can age out of the freshness window across a roll —
/// but a burst means someone is hoarding evidence and re-presenting it.
pub struct StaleQuoteWatch {
    window_ns: u64,
    burst: usize,
    /// Recent refusal timestamps per host.
    hits: BTreeMap<u32, VecDeque<u64>>,
    fired: BTreeSet<u32>,
}

impl StaleQuoteWatch {
    /// New watch over `window_ns` of virtual time.
    pub fn new(window_ns: u64, burst: usize) -> Self {
        StaleQuoteWatch { window_ns, burst, hits: BTreeMap::new(), fired: BTreeSet::new() }
    }

    fn note(&mut self, host: u32, at_ns: u64, trace: Option<u64>) -> Option<Alert> {
        let q = self.hits.entry(host).or_default();
        q.push_back(at_ns);
        while q.front().is_some_and(|&t| t + self.window_ns < at_ns) {
            q.pop_front();
        }
        if q.len() >= self.burst && self.fired.insert(host) {
            return Some(Alert {
                detector: "stale-quote",
                host,
                at_ns,
                severity: Severity::Critical,
                trace_id: trace,
                domain: None,
                detail: format!(
                    "{} stale/replayed quote presentations within {}ms — quote replay attack",
                    q.len(),
                    self.window_ns / 1_000_000
                ),
            });
        }
        None
    }
}

impl Detector for StaleQuoteWatch {
    fn name(&self) -> &'static str {
        "stale-quote"
    }

    fn observe(&mut self, ev: &StreamEvent) -> Option<Alert> {
        match ev {
            StreamEvent::Attest(a)
                if matches!(a.verdict, VERDICT_STALE | VERDICT_REPLAYED) =>
            {
                self.note(a.host, a.at_ns, None)
            }
            StreamEvent::Audit(a)
                if matches!(
                    a.kind,
                    AuditKind::Denied(DENY_STALE_QUOTE) | AuditKind::Denied(DENY_QUOTE_REPLAY)
                ) =>
            {
                self.note(a.host, a.at_ns, Some(a.request_id))
            }
            _ => None,
        }
    }
}

/// Watches host crash-recovery markers for fleet churn: a **storm**
/// (too many recoveries across the fleet inside the window) and
/// per-host **flapping** (one host recovering repeatedly).
///
/// Storm alerts are *stateful*, not latched: the raise carries a plain
/// detail, and when the sliding window drains back to `clear` or fewer
/// recoveries the detector emits a second alert whose detail starts
/// with `"cleared"` — the fleet's rebalance-pause bridge keys on that
/// prefix, so the closed loop both opens and closes. Every stream event
/// slides the window (all events carry virtual time), so a quiet fleet
/// clears on the next heartbeat-driven span or audit record rather than
/// waiting for another crash. Flap alerts latch per host, like the
/// other security detectors.
///
/// Severity is `Warning` throughout: churn is an operational condition
/// (the rebalancer must *pause*, not page), and clean chaos seeds
/// legitimately produce it — a `Critical` here would turn every
/// churn-heavy seed into a false positive.
pub struct ChurnStorm {
    window_ns: u64,
    storm: usize,
    clear: usize,
    flap: usize,
    /// Recent recovery timestamps, fleet-wide.
    recent: VecDeque<u64>,
    /// Recent recovery timestamps per host.
    per_host: BTreeMap<u32, VecDeque<u64>>,
    storm_active: bool,
    flapped: BTreeSet<u32>,
}

impl ChurnStorm {
    /// New watch over `window_ns` of virtual time.
    pub fn new(window_ns: u64, storm: usize, clear: usize, flap: usize) -> Self {
        ChurnStorm {
            window_ns,
            storm,
            clear,
            flap,
            recent: VecDeque::new(),
            per_host: BTreeMap::new(),
            storm_active: false,
            flapped: BTreeSet::new(),
        }
    }

    fn slide(&mut self, at_ns: u64) {
        while self.recent.front().is_some_and(|&t| t + self.window_ns < at_ns) {
            self.recent.pop_front();
        }
    }

    fn alert(&self, host: u32, at_ns: u64, detail: String) -> Alert {
        Alert {
            detector: "churn-storm",
            host,
            at_ns,
            severity: Severity::Warning,
            trace_id: None,
            domain: Some(host),
            detail,
        }
    }
}

impl Detector for ChurnStorm {
    fn name(&self) -> &'static str {
        "churn-storm"
    }

    fn observe(&mut self, ev: &StreamEvent) -> Option<Alert> {
        let at_ns = ev.at_ns();
        self.slide(at_ns);
        if let StreamEvent::CrashRecovery { host, at_ns } = *ev {
            self.recent.push_back(at_ns);
            let q = self.per_host.entry(host).or_default();
            q.push_back(at_ns);
            while q.front().is_some_and(|&t| t + self.window_ns < at_ns) {
                q.pop_front();
            }
            let flapping = q.len();
            if !self.storm_active && self.recent.len() >= self.storm {
                self.storm_active = true;
                return Some(self.alert(
                    host,
                    at_ns,
                    format!(
                        "churn storm: {} host recoveries within {}ms — rebalancing should pause",
                        self.recent.len(),
                        self.window_ns / 1_000_000
                    ),
                ));
            }
            if flapping >= self.flap && self.flapped.insert(host) {
                return Some(self.alert(
                    host,
                    at_ns,
                    format!(
                        "host {host} flapping: {flapping} recoveries within {}ms",
                        self.window_ns / 1_000_000
                    ),
                ));
            }
        } else if self.storm_active && self.recent.len() <= self.clear {
            self.storm_active = false;
            return Some(self.alert(
                ev.host(),
                at_ns,
                format!(
                    "cleared: churn subsided to {} recoveries within {}ms",
                    self.recent.len(),
                    self.window_ns / 1_000_000
                ),
            ));
        }
        None
    }
}

/// Relays observatory SLO burn transitions into the alert plane.
///
/// The observatory publishes its burn-rate verdicts as gauges named
/// `slo_burn:<rule>`: a nonzero value is the worst-window burn ratio in
/// percent at raise time, zero is a clear. This detector is the bridge
/// that turns those samples into sentinel alerts — stateful per rule
/// like [`ChurnStorm`], not latched-forever: the raise carries the rule
/// name and ratio, the clear's detail starts with `"cleared"`, and the
/// harness's SLO bridge keys its fleet pause/resume loop on exactly
/// those shapes. Repeats of the same state stay quiet, so a long burn
/// produces two alerts total, not one per evaluation pass.
///
/// Severity is `Warning`: an error budget burning is an operational
/// page, not a security verdict — the attack-detection gates of R-D1
/// count only criticals and must not see these.
pub struct SloBurn {
    /// Burning state per rule name (the gauge suffix).
    raised: BTreeMap<&'static str, bool>,
}

impl SloBurn {
    /// New relay with no rules raised.
    pub fn new() -> Self {
        SloBurn { raised: BTreeMap::new() }
    }
}

impl Default for SloBurn {
    fn default() -> Self {
        Self::new()
    }
}

impl Detector for SloBurn {
    fn name(&self) -> &'static str {
        "slo-burn"
    }

    fn observe(&mut self, ev: &StreamEvent) -> Option<Alert> {
        let StreamEvent::Gauge { host, at_ns, name, value } = ev else { return None };
        let rule = name.strip_prefix("slo_burn:")?;
        let burning = *value > 0;
        let was = self.raised.insert(rule, burning).unwrap_or(false);
        if burning == was {
            return None;
        }
        let detail = if burning {
            format!("slo burn: {rule} at {value}% of error budget — multi-window burn rate")
        } else {
            format!("cleared: {rule} burn subsided")
        };
        Some(Alert {
            detector: "slo-burn",
            host: *host,
            at_ns: *at_ns,
            severity: Severity::Warning,
            trace_id: None,
            domain: None,
            detail,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DumpView;

    #[test]
    fn churn_storm_raises_then_clears_then_rearms() {
        let mut d = ChurnStorm::new(1_000, 3, 1, 10);
        let crash = |h, t| StreamEvent::CrashRecovery { host: h, at_ns: t };
        assert!(d.observe(&crash(0, 100)).is_none());
        assert!(d.observe(&crash(1, 200)).is_none());
        let storm = d.observe(&crash(2, 300)).expect("third recovery in window is a storm");
        assert_eq!(storm.detector, "churn-storm");
        assert_eq!(storm.severity, Severity::Warning);
        assert!(!storm.detail.starts_with("cleared"));
        // More churn while active stays quiet (stateful, not spammy).
        assert!(d.observe(&crash(3, 400)).is_none());
        // Any later event slides the window; once it drains, the clear
        // fires exactly once.
        let quiet = StreamEvent::Gauge { host: 0, at_ns: 5_000, name: "x", value: 0 };
        let cleared = d.observe(&quiet).expect("drained window clears the storm");
        assert!(cleared.detail.starts_with("cleared"), "{}", cleared.detail);
        assert!(d.observe(&quiet).is_none());
        // A fresh burst re-raises.
        assert!(d.observe(&crash(0, 6_000)).is_none());
        assert!(d.observe(&crash(1, 6_100)).is_none());
        assert!(d.observe(&crash(2, 6_200)).is_some());
    }

    #[test]
    fn host_flap_latches_per_host() {
        let mut d = ChurnStorm::new(1_000, 100, 1, 2);
        let crash = |h, t| StreamEvent::CrashRecovery { host: h, at_ns: t };
        assert!(d.observe(&crash(7, 100)).is_none());
        let flap = d.observe(&crash(7, 200)).expect("second recovery of host 7 flaps");
        assert!(flap.detail.contains("flapping"), "{}", flap.detail);
        assert_eq!(flap.domain, Some(7));
        // Latched: a third recovery stays quiet; another host is fresh.
        assert!(d.observe(&crash(7, 300)).is_none());
        assert!(d.observe(&crash(8, 300)).is_none());
        assert!(d.observe(&crash(8, 400)).is_some());
    }

    #[test]
    fn dump_signature_excuses_recovery_scans() {
        let mut d = DumpSignature::new(1_000);
        // Recovery observed at t=5_000; the Dom0 scan just before it is
        // the manager rebuilding its mirror, not an attack.
        assert!(d
            .observe(&StreamEvent::CrashRecovery { host: 0, at_ns: 5_000 })
            .is_none());
        let scan = StreamEvent::Dump(DumpView {
            host: 0,
            at_ns: 4_500,
            caller_domain: 0,
            frames: 64,
            foreign_frames: 40,
        });
        assert!(d.observe(&scan).is_none(), "recovery scan must not fire");
        // The same dump far outside the grace window is an attack, and
        // a recovery on another host does not excuse it.
        assert!(d
            .observe(&StreamEvent::CrashRecovery { host: 1, at_ns: 90_000 })
            .is_none());
        let late = StreamEvent::Dump(DumpView {
            host: 0,
            at_ns: 90_000,
            caller_domain: 0,
            frames: 64,
            foreign_frames: 40,
        });
        assert!(d.observe(&late).is_some());
    }

    #[test]
    fn dump_signature_ignores_self_dumps_and_latches() {
        let mut d = DumpSignature::new(1_000);
        let benign = StreamEvent::Dump(DumpView {
            host: 0,
            at_ns: 10,
            caller_domain: 4,
            frames: 8,
            foreign_frames: 0,
        });
        assert!(d.observe(&benign).is_none());
        let hostile = StreamEvent::Dump(DumpView {
            host: 0,
            at_ns: 20,
            caller_domain: 0,
            frames: 64,
            foreign_frames: 40,
        });
        assert!(d.observe(&hostile).is_some());
        assert!(d.observe(&hostile).is_none(), "second identical dump is latched");
        // A different host fires independently.
        let other_host = StreamEvent::Dump(DumpView {
            host: 1,
            at_ns: 30,
            caller_domain: 0,
            frames: 64,
            foreign_frames: 40,
        });
        assert!(d.observe(&other_host).is_some());
    }

    #[test]
    fn replay_watch_window_slides() {
        let mut w = ReplayWatch::new(1_000, 3);
        let audit = |at_ns| {
            StreamEvent::Audit(crate::AuditView {
                host: 0,
                at_ns,
                request_id: 0x8000_0000_0000_0001,
                domain: 1,
                instance: 1,
                ordinal: 1,
                kind: AuditKind::MigrationStage(STAGE_REJECTED_STALE),
            })
        };
        // Three refusals, but spread wider than the window: silent.
        assert!(w.observe(&audit(0)).is_none());
        assert!(w.observe(&audit(2_000)).is_none());
        assert!(w.observe(&audit(4_000)).is_none());
        // Two more right away close the burst inside one window.
        assert!(w.observe(&audit(4_100)).is_none());
        assert!(w.observe(&audit(4_200)).is_some());
    }

    #[test]
    fn quote_storm_keys_on_verifier_and_carries_it() {
        let mut d = QuoteStorm::new(1_000, 4);
        let attest = |verifier, at_ns| {
            StreamEvent::Attest(crate::AttestView {
                host: 0,
                at_ns,
                verifier,
                instance: 3,
                verdict: 0,
            })
        };
        // Two verifiers interleaved: neither alone reaches the burst
        // until verifier 7's fourth submission inside the window.
        assert!(d.observe(&attest(7, 100)).is_none());
        assert!(d.observe(&attest(8, 110)).is_none());
        assert!(d.observe(&attest(7, 200)).is_none());
        assert!(d.observe(&attest(7, 300)).is_none());
        let a = d.observe(&attest(7, 400)).expect("storm");
        assert_eq!(a.domain, Some(7), "alert must implicate the verifier");
        assert_eq!(a.severity, Severity::Critical);
        // Latched per (host, verifier); the other verifier still can fire.
        assert!(d.observe(&attest(7, 500)).is_none());
        assert!(d.observe(&attest(8, 510)).is_none());
        assert!(d.observe(&attest(8, 520)).is_none());
        assert!(d.observe(&attest(8, 530)).is_some());
    }

    #[test]
    fn quote_storm_ignores_honest_cadence() {
        let mut d = QuoteStorm::new(1_000, 4);
        for i in 0..100u64 {
            // One submission per 10 windows of virtual time.
            let ev = StreamEvent::Attest(crate::AttestView {
                host: 0,
                at_ns: i * 10_000,
                verifier: 1,
                instance: 3,
                verdict: 0,
            });
            assert!(d.observe(&ev).is_none(), "honest cadence must stay silent");
        }
    }

    #[test]
    fn stale_quote_watch_mixes_attest_and_audit_sources() {
        let mut d = StaleQuoteWatch::new(10_000, 4);
        let stale = |at_ns| {
            StreamEvent::Attest(crate::AttestView {
                host: 0,
                at_ns,
                verifier: 5,
                instance: 3,
                verdict: VERDICT_STALE,
            })
        };
        let replay_audit = |at_ns| {
            StreamEvent::Audit(crate::AuditView {
                host: 0,
                at_ns,
                request_id: 0xABCD,
                domain: 5,
                instance: 3,
                ordinal: 0x16,
                kind: AuditKind::Denied(DENY_QUOTE_REPLAY),
            })
        };
        assert!(d.observe(&stale(100)).is_none());
        assert!(d.observe(&replay_audit(200)).is_none());
        assert!(d.observe(&stale(300)).is_none());
        assert!(d.observe(&replay_audit(400)).is_some(), "mixed burst fires");
        // Accepted verdicts never count.
        let mut clean = StaleQuoteWatch::new(10_000, 2);
        for i in 0..50u64 {
            let ev = StreamEvent::Attest(crate::AttestView {
                host: 0,
                at_ns: i,
                verifier: 1,
                instance: 3,
                verdict: 0,
            });
            assert!(clean.observe(&ev).is_none());
        }
    }

    #[test]
    fn slo_burn_relays_raise_and_clear_per_rule() {
        let mut d = SloBurn::new();
        let gauge = |name, value, at_ns| StreamEvent::Gauge { host: 9, at_ns, name, value };
        // Raise carries the rule and ratio; repeats stay quiet.
        let raise = d
            .observe(&gauge("slo_burn:migration-blackout", 240, 1_000))
            .expect("first burning sample raises");
        assert_eq!((raise.detector, raise.severity), ("slo-burn", Severity::Warning));
        assert!(raise.detail.contains("migration-blackout"), "{}", raise.detail);
        assert!(!raise.detail.starts_with("cleared"));
        assert!(d.observe(&gauge("slo_burn:migration-blackout", 300, 2_000)).is_none());
        // An unrelated rule tracks independently; plain gauges are not ours.
        assert!(d.observe(&gauge("slo_burn:verify-latency", 0, 2_500)).is_none());
        assert!(d.observe(&gauge("mirror_scrub_failures", 500, 2_600)).is_none());
        // Clear fires once with the bridge's expected prefix, then re-arms.
        let clear = d
            .observe(&gauge("slo_burn:migration-blackout", 0, 3_000))
            .expect("zero sample clears");
        assert!(clear.detail.starts_with("cleared"), "{}", clear.detail);
        assert!(d.observe(&gauge("slo_burn:migration-blackout", 0, 3_500)).is_none());
        assert!(d.observe(&gauge("slo_burn:migration-blackout", 110, 4_000)).is_some());
    }

    #[test]
    fn scrub_escalation_is_a_threshold_not_a_tripwire() {
        let mut s = ScrubEscalation::new(4);
        let gauge = |value| StreamEvent::Gauge {
            host: 0,
            at_ns: 1,
            name: "mirror_scrub_failures",
            value,
        };
        assert!(s.observe(&gauge(3)).is_none());
        let a = s.observe(&gauge(4)).expect("budget reached");
        assert_eq!(a.severity, Severity::Warning);
        assert!(s.observe(&gauge(100)).is_none(), "latched per host");
    }
}
